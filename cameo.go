// Package cameo is an autocorrelation-preserving lossy time series
// compressor: a from-scratch Go implementation of CAMEO (Muñiz-Cuza, Boehm,
// Pedersen — "CAMEO: Autocorrelation-Preserving Line Simplification for
// Lossy Time Series Compression", EDBT 2026, arXiv:2501.14432).
//
// CAMEO compresses a time series by greedily removing the points whose
// reconstruction (by linear interpolation) least perturbs the series'
// autocorrelation function (ACF) or partial autocorrelation function
// (PACF), guaranteeing a user-provided maximum deviation of the statistic.
// Preserving the ACF/PACF — rather than merely bounding pointwise error —
// keeps downstream analytics such as forecasting and anomaly detection
// accurate at much higher compression ratios.
//
// Basic usage:
//
//	res, err := cameo.Compress(values, cameo.Options{
//		Lags:    24,    // preserve one daily cycle of hourly data
//		Epsilon: 0.01,  // max mean-absolute ACF deviation
//	})
//	if err != nil { ... }
//	fmt.Println(res.CompressionRatio(), res.Deviation)
//	reconstructed := res.Compressed.Decompress()
//
// The package also exposes every baseline the paper evaluates against
// (Visvalingam-Whyatt, Turning Points, PIP, PMC, Swing, Sim-Piece, FFT,
// Gorilla, Chimp), the statistics substrate (ACF/PACF, quality measures,
// time-series features), forecasting models (Holt-Winters, STL-ETS/AR,
// DHR, LSTM), Matrix-Profile anomaly detection including the irregular
// variant (iMP), and generators replicating the paper's eight datasets.
//
// # Storage and codecs
//
// Store (see OpenStore) is an embedded sharded time-series database whose
// block compression is pluggable through the Codec interface. CAMEO is the
// default codec; the lossless XOR family (CodecGorilla, CodecChimp,
// CodecELF) trades ratio for bit-exact replay, and the pointwise-lossy
// segment family (CodecPMC, CodecSwing, CodecSimPiece) bounds per-value
// error instead of a statistic. Every persisted block carries a versioned
// self-describing header naming its codec, so one store can mix codecs
// across reopens and pre-codec stores stay readable. EncodeBlock and
// DecodeBlock expose the same framing for standalone files (used by the
// cameo CLI's -codec flag), and examples/codecs compares ratio, error, and
// speed of every registered codec on one dataset.
//
// # Serving
//
// The store can be served over HTTP: NewHandler returns the handler the
// cameod daemon (cmd/cameod) runs — batched ingest with backpressure,
// range queries streamed chunk-by-chunk off a cursor, downsampled
// aggregate queries riding the codec pushdown, and an operational
// surface (/healthz, /statusz, series listing) — and Serve manages the
// listen/drain lifecycle around it. See the README's "Serving" section
// for endpoints, knobs, and curl examples, and examples/server for a
// concurrent write+query client driving the service end to end.
package cameo

import (
	"repro/internal/acf"
	"repro/internal/core"
	"repro/internal/series"
	"repro/internal/stats"
)

// Options configures a CAMEO compression run. See the field documentation
// for the three problem variants (error-bounded, on-aggregates,
// compression-centric).
type Options = core.Options

// CoarseOptions configures coarse-grained (partitioned) parallel
// compression.
type CoarseOptions = core.CoarseOptions

// Result reports a compression outcome.
type Result = core.Result

// Statistic selects the preserved statistic.
type Statistic = core.Statistic

// Preserved statistics.
const (
	// StatACF preserves the autocorrelation function (default).
	StatACF = core.StatACF
	// StatPACF preserves the partial autocorrelation function.
	StatPACF = core.StatPACF
)

// Measure is a deviation measure D between statistic vectors (and between
// series).
type Measure = stats.Measure

// Deviation measures.
const (
	MAE       = stats.MeasureMAE
	MSE       = stats.MeasureMSE
	RMSE      = stats.MeasureRMSE
	NRMSE     = stats.MeasureNRMSE
	MAPE      = stats.MeasureMAPE
	SMAPE     = stats.MeasureSMAPE
	Chebyshev = stats.MeasureChebyshev
)

// AggFunc is a tumbling-window aggregation function for the on-aggregates
// problem variant.
type AggFunc = series.AggFunc

// Aggregation functions.
const (
	AggMean = series.AggMean
	AggSum  = series.AggSum
	AggMax  = series.AggMax
	AggMin  = series.AggMin
)

// Irregular is a compressed series: a strictly increasing subset of the
// original points. Decompress reconstructs the full series by linear
// interpolation.
type Irregular = series.Irregular

// Point is one retained sample.
type Point = series.Point

// Compress runs CAMEO on xs (paper Algorithm 1). The first and last points
// are always retained.
func Compress(xs []float64, opt Options) (*Result, error) {
	return core.Compress(xs, opt)
}

// CompressCoarse runs CAMEO with coarse-grained parallelization: the series
// is partitioned across goroutines with local deviation budgets and global
// synchronization rounds (paper §4.4). Combine with Options.Threads for the
// hybrid strategy.
func CompressCoarse(xs []float64, opt CoarseOptions) (*Result, error) {
	return core.CompressCoarse(xs, opt)
}

// CompressMulti compresses each channel of a multivariate series
// independently under the same options, bounding every channel's statistic
// deviation (the paper's multivariate extension). Channels run concurrently
// on up to workers goroutines.
func CompressMulti(channels [][]float64, opt Options, workers int) ([]*Result, error) {
	return core.CompressMulti(channels, opt, workers)
}

// Deviation recomputes the exact statistic deviation D(S(X), S(X')) between
// an original series and a compressed representation, for verification.
func Deviation(xs []float64, compressed *Irregular, opt Options) (float64, error) {
	return core.Deviation(xs, compressed, opt)
}

// InitialImpacts returns each point's initial ACF-removal impact (paper
// Algorithm 2); the first and last points report +Inf.
func InitialImpacts(xs []float64, opt Options) ([]float64, error) {
	return core.InitialImpacts(xs, opt)
}

// ACF computes the autocorrelation function of xs for lags 1..L using the
// paper's per-lag (Eq. 2) estimator.
func ACF(xs []float64, L int) []float64 { return acf.ACF(xs, L) }

// PACF computes the partial autocorrelation function for lags 1..L via the
// Durbin-Levinson recursion.
func PACF(xs []float64, L int) []float64 { return acf.PACF(xs, L) }

// Aggregate applies a tumbling-window aggregation (window kappa, function
// f) to xs, as used by the on-aggregates problem variant.
func Aggregate(xs []float64, kappa int, f AggFunc) []float64 {
	return series.Aggregate(xs, kappa, f)
}

// StreamCompressor compresses an unbounded series block-by-block with a
// per-block deviation guarantee — suited to IoT-style ingestion. Create
// with NewStreamCompressor, feed with Push, finish with Flush.
type StreamCompressor = core.StreamCompressor

// NewStreamCompressor builds a streaming compressor that cuts the input
// into blockSize-point blocks and compresses each independently under opt.
func NewStreamCompressor(opt Options, blockSize int) (*StreamCompressor, error) {
	return core.NewStreamCompressor(opt, blockSize)
}

// DecodeIrregular parses the compact binary format produced by
// Irregular.Encode (uvarint index deltas + XOR-compressed values).
func DecodeIrregular(data []byte) (*Irregular, error) {
	return series.DecodeIrregular(data)
}
