package cameo

import (
	"repro/internal/core"
	"repro/internal/tsdb"
)

// Store is an embedded time-series database that persists regularly
// sampled series as CAMEO-compressed, binary-encoded blocks. The engine is
// sharded and concurrent: series names hash across independent lock
// domains, full blocks compress on a bounded worker pool off the append
// path, and an LRU cache of decoded blocks serves repeated range queries
// from memory. Appends buffer in memory, full blocks compress under the
// configured statistic guarantee, and queries reconstruct only the blocks
// overlapping the requested range.
type Store = tsdb.DB

// StoreOptions configures a Store:
//
//   - Compression: the per-block CAMEO options (Lags and Epsilon or
//     TargetRatio required).
//   - BlockSize: samples per compressed block (default 4096).
//   - Shards: independent lock domains for series (default 16); appends to
//     series in different shards never contend. Shards=1 restores a single
//     global lock.
//   - Workers: block-compression pool size; 0 picks GOMAXPROCS, negative
//     disables the pool so appends compress inline (synchronous mode).
//   - CacheBlocks: LRU capacity, in blocks, of decoded reconstructions
//     kept for queries; 0 picks 128, negative disables caching.
type StoreOptions = tsdb.Options

// StoreStats summarizes one stored series (see Store.SeriesStats).
type StoreStats = tsdb.Stats

// StoreTotals aggregates engine-level counters — blocks/bytes written,
// cache hits and misses, and the compression queue backlog (see
// Store.Stats).
type StoreTotals = tsdb.DBStats

// ErrUnknownSeries is returned by Store queries for absent series names.
var ErrUnknownSeries = tsdb.ErrUnknownSeries

// ErrBadSeriesName is returned by Store.Append for series names that
// cannot name a directory of their own under the store root ("", ".", "..").
var ErrBadSeriesName = tsdb.ErrBadSeriesName

// OpenStore creates or reopens a compressed time-series store rooted at
// dir with default engine settings (16 shards, GOMAXPROCS compression
// workers, 128-block decoded cache). Use OpenStoreOptions to tune them.
func OpenStore(dir string, compression Options, blockSize int) (*Store, error) {
	return tsdb.Open(dir, tsdb.Options{
		Compression: core.Options(compression),
		BlockSize:   blockSize,
	})
}

// OpenStoreOptions creates or reopens a store with full control over the
// engine knobs in StoreOptions.
func OpenStoreOptions(dir string, opt StoreOptions) (*Store, error) {
	return tsdb.Open(dir, opt)
}
