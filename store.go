package cameo

import (
	"repro/internal/core"
	"repro/internal/tsdb"
)

// Store is an embedded time-series database that persists regularly
// sampled series as codec-compressed, binary-encoded blocks. The engine is
// sharded and concurrent: series names hash across independent lock
// domains, full blocks compress on a bounded worker pool off the append
// path, and a per-shard LRU cache of decoded blocks serves repeated range
// queries from memory (cold misses for one block are single-flighted, so
// concurrent queries never redundantly decode the same block). Appends
// buffer in memory, full blocks compress under the configured codec, and
// queries reconstruct only the blocks overlapping the requested range.
//
// Block compression is pluggable (see Codec): the default is CAMEO, whose
// lossy reconstruction preserves the series' autocorrelation structure
// within the configured bound; the lossless codecs (CodecGorilla,
// CodecChimp, CodecELF) make the store an exact-replay archive at a lower
// compression ratio, and the pointwise-lossy segment codecs (CodecPMC,
// CodecSwing, CodecSimPiece) bound per-value error instead. Every block
// file carries a self-describing header (magic, format version, codec
// ID, sample count, and — for the bit-stream codecs — a checkpoint
// sidecar enabling random access), so a store may mix blocks written
// under different codecs and format versions across reopens, and stores
// written by the pre-header engine remain fully readable (their
// headerless blocks decode as CAMEO).
//
// The read path is a streaming cursor architecture with pushdown:
//
//   - Query(name, from, to) materializes a range as one slice (a thin
//     wrapper that collects a cursor); QueryInto appends into a caller
//     buffer instead, amortizing the allocation across queries.
//   - Cursor(name, from, to) streams the range chunk by chunk without
//     materializing it: cache-resident blocks are yielded as sub-slices
//     with no copy, cold blocks of the segment codecs and CAMEO decode
//     only the overlapping samples (codec range pushdown), cold
//     bit-stream blocks seek via their checkpoint sidecar and decode
//     O(overlap + CheckpointInterval) samples, and blocks still
//     compressing are waited for only when reached.
//   - QueryAgg(name, from, to, step, f) answers downsampled aggregate
//     queries (one value per step-sample window, f one of AggMean,
//     AggSum, AggMax, AggMin): for cold blocks of the segment codecs and
//     CAMEO the sums/extrema are computed straight from the compressed
//     segment forms without materializing samples at all, and cold
//     bit-stream blocks fold their windows in one seek-assisted pass.
//   - QueryMulti / QueryAggMulti answer one query over several series at
//     once: per-series scans scatter across the worker pool (bounded by
//     QueryFanout) and gather in the caller's series order, each result's
//     Err carrying that series' failure instead of failing the batch.
//     MultiCursor is the streaming form. With ReadAhead set, a single
//     cursor additionally prefetches upcoming cold blocks on the pool
//     while the caller consumes earlier chunks.
//   - Series() returns the stored names in lexicographically sorted
//     order — a documented guarantee, stable across reopens.
//
// Long-running stores manage their own disk budget through background
// lifecycle jobs (see the lifecycle knobs in StoreOptions): compaction
// merges the under-filled blocks trickle ingest leaves behind into full
// ones with bit-identical reconstructions, retention trims each series to
// an age and the store to a byte budget, and rollup tiers materialize
// downsampled aggregates that QueryAgg answers from transparently. The
// jobs run on the same bounded worker pool as ingest compression when
// LifecycleInterval is set, or on demand via Maintain(); DeleteSeries
// removes one series (and its rollup tiers) atomically and durably.
type Store = tsdb.DB

// StoreCursor streams one query range chunk by chunk (see Store.Cursor):
// Next yields block-sized read-only chunks valid until the next call,
// Err reports the first resolution error, Close releases pooled buffers.
type StoreCursor = tsdb.Cursor

// StoreMultiCursor streams a multi-series scatter-gather query section by
// section in request order (see Store.MultiCursor): Section advances to
// the next series, Next yields its chunks, Err reports that section's
// failure, Close stops outstanding work and releases every pooled buffer.
type StoreMultiCursor = tsdb.MultiCursor

// MultiResult is one series' section of a Store.QueryMulti or
// Store.QueryAggMulti response; per-series failures land in Err so one
// bad series never fails the batch.
type MultiResult = tsdb.MultiResult

// StoreOptions configures a Store:
//
//   - Compression: the per-block CAMEO options (Lags and Epsilon or
//     TargetRatio required); consulted only when Codec is nil.
//   - Codec: the block compressor for newly written blocks. nil selects
//     CAMEO built from Compression; any Codec* constructor's result may be
//     supplied instead (Compression is then ignored). Reads always resolve
//     each block's codec from its on-disk header, so switching Codec
//     between opens never invalidates existing data.
//   - BlockSize: samples per compressed block (default 4096; must be at
//     least the codec's minimum — for CAMEO, 4x lags[*window]).
//   - Shards: independent lock domains for series (default 16); appends to
//     series in different shards never contend. Shards=1 restores a single
//     global lock.
//   - Workers: block-compression pool size; 0 picks GOMAXPROCS, negative
//     disables the pool so appends compress inline (synchronous mode).
//   - CacheBlocks: total LRU capacity, in blocks, of decoded
//     reconstructions kept for queries, split evenly across per-shard
//     caches (a single series always lives in one shard, so budget
//     Shards x its working set for hot-series scans); 0 picks 128,
//     negative disables caching.
//   - ReadAhead: cursor prefetch depth — while a query consumes one chunk,
//     up to this many upcoming cold blocks read and decode concurrently on
//     the worker pool into pooled buffers. The streamed samples are
//     bit-identical to the sequential path's. 0 (default) disables
//     prefetch, the right setting on single-core hosts; negative errors.
//   - QueryFanout: per-call concurrency cap of the multi-series read path
//     (QueryMulti, QueryAggMulti, MultiCursor); 0 picks the worker-pool
//     width, negative errors.
//   - CheckpointInterval: checkpoint spacing, in samples, recorded in the
//     sidecar of every bit-stream-coded block (gorilla, chimp, elf) so a
//     cold partial read seeks to the nearest checkpoint instead of
//     replaying the block front: 0 picks the codec default of 128,
//     negative disables checkpoints (version-1 blocks, no sidecar).
//     Smaller intervals cut cold point-read latency at ~11 sidecar bytes
//     per checkpoint; the compressed bit stream is identical under every
//     setting, so mixed-interval stores replay bit-identically.
//   - Streaming: spread each block's compression across the appends that
//     feed it instead of paying the whole cost at block-cut time — every
//     Append performs a small, latency-capped slice of the in-progress
//     block's compression, paced to finish just ahead of the next cut.
//     Blocks written this way are byte-identical to batch-compressed ones,
//     so readers, recovery, and compaction treat them identically.
//     Requires a codec with a streaming encode path (CAMEO).
//   - MaxAppendLatency: wall-clock cap on the compression slice one Append
//     performs in streaming mode (default 1ms); leftover work defers to
//     later appends or to the forced finish at the next cut.
//   - Retention: per-series age budget in samples; maintenance trims each
//     series to at most this many trailing samples (0 keeps everything).
//   - RetainBytes: store-wide compressed-byte budget; maintenance deletes
//     oldest blocks of the largest series first until under it (0 = no cap).
//   - CompactMinFill: blocks holding less than this fraction of BlockSize
//     are compaction candidates (0 picks 0.5; negative disables
//     compaction). Merged reconstructions are bit-identical to the
//     originals'.
//   - Rollups: pre-aggregated tiers (RollupSpec per step) materialized as
//     ordinary series named "<name>@<agg>:<step>" and stored losslessly;
//     QueryAgg answers tier-aligned queries from the coarsest satisfying
//     tier without touching raw blocks.
//   - LifecycleInterval: period of the background maintenance pass
//     (compaction, rollups, retention); 0 disables it — call
//     Store.Maintain explicitly instead.
type StoreOptions = tsdb.Options

// RollupSpec declares one pre-aggregated tier in StoreOptions.Rollups: a
// window width in samples (Step, at least 2), the aggregate functions to
// materialize (default mean/sum/min/max), and an optional per-tier
// Retention in rollup samples. Tiers are stored as ordinary series named
// "<base>@<agg>:<step>" under a lossless codec, so tier-served answers
// equal the aggregates of the raw reconstruction exactly.
type RollupSpec = tsdb.RollupSpec

// StoreStats summarizes one stored series (see Store.SeriesStats).
type StoreStats = tsdb.Stats

// StoreTotals aggregates engine-level counters — blocks/bytes written,
// per-shard cache hits/misses/single-flight waits, read-path pushdowns
// (RangeDecodes: cold partial decodes that skipped full reconstruction;
// AggPushdowns: blocks aggregated without materializing samples;
// CheckpointSeeks/CheckpointBytes: cold bit-stream reads served via the
// checkpoint sidecar and the compressed bytes they traversed;
// PrefetchHits/PrefetchWasted: readahead decodes consumed by the cursor
// versus completed but discarded; FanoutQueries: multi-series batch
// calls), the compression queue backlog, the append-latency histogram (Appends,
// AppendP50/AppendP99/AppendMax — log-spaced buckets, so the percentiles
// are conservative upper bounds within 2x; the max is exact), the
// streaming-ingest counters (StreamBlocks: blocks compressed incrementally
// on the append path; StreamForced: streaming blocks finished by a reader,
// Sync/Flush, or a cut outrunning the pacing), and the lifecycle totals
// (maintenance passes, blocks compacted, rollup samples materialized,
// blocks/bytes trimmed by retention, series deleted) — see Store.Stats.
type StoreTotals = tsdb.DBStats

// ErrUnknownSeries is returned by Store queries for absent series names.
var ErrUnknownSeries = tsdb.ErrUnknownSeries

// ErrBadSeriesName is returned by Store.Append for series names that
// cannot name a directory of their own under the store root ("", ".", "..").
var ErrBadSeriesName = tsdb.ErrBadSeriesName

// ErrInvalidRange is returned by Store.Query, QueryInto, Cursor, and
// QueryAgg when from > to: an inverted range is a caller bug and errors
// instead of yielding a silent empty result. Out-of-bounds ranges in the
// right order still clamp to the stored samples, and from == to is a
// legitimate empty range.
var ErrInvalidRange = tsdb.ErrInvalidRange

// OpenStore creates or reopens a compressed time-series store rooted at
// dir with default engine settings (CAMEO codec, 16 shards, GOMAXPROCS
// compression workers, 128-block decoded cache). Use OpenStoreOptions to
// tune them or select a different Codec.
func OpenStore(dir string, compression Options, blockSize int) (*Store, error) {
	return tsdb.Open(dir, tsdb.Options{
		Compression: core.Options(compression),
		BlockSize:   blockSize,
	})
}

// OpenStoreOptions creates or reopens a store with full control over the
// engine knobs in StoreOptions.
func OpenStoreOptions(dir string, opt StoreOptions) (*Store, error) {
	return tsdb.Open(dir, opt)
}
