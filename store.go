package cameo

import (
	"repro/internal/core"
	"repro/internal/tsdb"
)

// Store is a small embedded time-series database that persists regularly
// sampled series as CAMEO-compressed, binary-encoded blocks: appends buffer
// in memory, full blocks compress under the configured statistic guarantee,
// and queries reconstruct only the blocks overlapping the requested range.
type Store = tsdb.DB

// StoreOptions configures a Store: the per-block CAMEO options and the
// block size in samples.
type StoreOptions = tsdb.Options

// StoreStats summarizes one stored series.
type StoreStats = tsdb.Stats

// ErrUnknownSeries is returned by Store queries for absent series names.
var ErrUnknownSeries = tsdb.ErrUnknownSeries

// OpenStore creates or reopens a compressed time-series store rooted at dir.
func OpenStore(dir string, compression Options, blockSize int) (*Store, error) {
	return tsdb.Open(dir, tsdb.Options{
		Compression: core.Options(compression),
		BlockSize:   blockSize,
	})
}
