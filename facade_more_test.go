package cameo

import (
	"errors"
	"math"
	"path/filepath"
	"testing"
)

func TestFacadeAllSimplifiers(t *testing.T) {
	xs := demoSeries(300, 24, 0.5, 11)
	opt := SimplifyOptions{Lags: 24, Epsilon: 0.05}
	if r, err := RDP(xs, opt); err != nil || r.CompressionRatio() < 1 {
		t.Fatalf("RDP: %v", err)
	}
	if r, err := PIP(xs, PIPEuclidean, opt); err != nil || r.CompressionRatio() < 1 {
		t.Fatalf("PIPe: %v", err)
	}
	if _, err := TurningPoints(xs, TPMae, opt); err != nil && !errors.Is(err, ErrBoundExceeded) {
		t.Fatalf("TPm: %v", err)
	}
}

func TestFacadeAllLossyCompressors(t *testing.T) {
	xs := demoSeries(512, 32, 0.4, 12)
	for name, c := range map[string]*LossyCompressed{
		"swing":    Swing(xs, 1.0),
		"simpiece": SimPiece(xs, 1.0),
		"fft":      FFTTopK(xs, 20),
	} {
		recon := c.Decompress()
		if len(recon) != len(xs) {
			t.Fatalf("%s: recon length %d", name, len(recon))
		}
		if c.CompressionRatio() <= 0 {
			t.Fatalf("%s: CR %v", name, c.CompressionRatio())
		}
	}
}

func TestFacadeChimpRoundtrip(t *testing.T) {
	xs := demoSeries(200, 24, 0.5, 13)
	enc := Chimp(xs)
	dec, err := enc.Decompress()
	if err != nil {
		t.Fatal(err)
	}
	for i := range xs {
		if xs[i] != dec[i] {
			t.Fatalf("chimp roundtrip mismatch at %d", i)
		}
	}
}

func TestFacadeCompressMulti(t *testing.T) {
	channels := [][]float64{
		demoSeries(240, 24, 0.4, 14),
		demoSeries(240, 12, 0.4, 15),
	}
	results, err := CompressMulti(channels, Options{Lags: 24, Epsilon: 0.05}, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if r.CompressionRatio() <= 1 {
			t.Fatalf("channel %d did not compress", i)
		}
	}
}

func TestFacadeSTLForecastersAndAR(t *testing.T) {
	xs := demoSeries(600, 24, 0.4, 16)
	train, test := xs[:576], xs[576:]
	for _, m := range []Forecaster{NewSTLETS(24), NewSTLAR(24), &AR{}, &SES{}, &DHR{Period: 24}} {
		ev, err := EvaluateForecast(m, train, test, 24)
		if err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		if math.IsNaN(ev.MSMAPE) {
			t.Fatalf("%s: NaN mSMAPE", m.Name())
		}
	}
}

func TestFacadeLSTMSmoke(t *testing.T) {
	xs := demoSeries(200, 20, 0.1, 17)
	m := &LSTM{Window: 20, Hidden: 6, Epochs: 3, Seed: 1}
	if err := m.Fit(xs); err != nil {
		t.Fatal(err)
	}
	if fc := m.Forecast(5); len(fc) != 5 {
		t.Fatalf("forecast length %d", len(fc))
	}
}

func TestFacadeDetectDiscordAndMP(t *testing.T) {
	xs := demoSeries(1200, 40, 0.1, 18)
	for i := 800; i < 840; i++ {
		xs[i] += 15
	}
	loc, size := DetectDiscord(xs, []int{80})
	if size != 80 || loc < 700 || loc > 900 {
		t.Fatalf("discord at %d size %d", loc, size)
	}
	p := MatrixProfile(xs, 80)
	if l2, _ := p.Discord(); l2 < 700 || l2 > 900 {
		t.Fatalf("MP discord at %d", l2)
	}
}

func TestFacadeCompareFeatures(t *testing.T) {
	xs := demoSeries(400, 24, 0.3, 19)
	res, err := Compress(xs, Options{Lags: 24, TargetRatio: 5})
	if err != nil {
		t.Fatal(err)
	}
	d := CompareFeatures(xs, res.Compressed.Decompress(), 24)
	if d.ACF1 < 0 || math.IsNaN(d.NRMSE) {
		t.Fatalf("deviation: %+v", d)
	}
}

func TestFacadeCSVAndAggregate(t *testing.T) {
	xs := demoSeries(50, 10, 0.2, 20)
	path := filepath.Join(t.TempDir(), "x.csv")
	if err := SaveCSV(path, "v", xs); err != nil {
		t.Fatal(err)
	}
	back, err := LoadCSV(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(xs) {
		t.Fatalf("%d values", len(back))
	}
	agg := Aggregate(xs, 5, AggMax)
	if len(agg) != 10 {
		t.Fatalf("aggregate length %d", len(agg))
	}
}

func TestFacadeInitialImpactsAndPACF(t *testing.T) {
	xs := demoSeries(200, 20, 0.5, 21)
	imp, err := InitialImpacts(xs, Options{Lags: 20, Epsilon: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(imp[0], 1) {
		t.Fatal("first impact should be +Inf")
	}
	if p := PACF(xs, 5); len(p) != 5 {
		t.Fatalf("PACF length %d", len(p))
	}
}

func TestFacadeStreamingAndEncoding(t *testing.T) {
	xs := demoSeries(1200, 24, 0.4, 23)
	sc, err := NewStreamCompressor(Options{Lags: 24, Epsilon: 0.05}, 300)
	if err != nil {
		t.Fatal(err)
	}
	if err := sc.Push(xs...); err != nil {
		t.Fatal(err)
	}
	res, err := sc.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if res.CompressionRatio() <= 1 {
		t.Fatal("stream did not compress")
	}
	// Binary roundtrip through the compact encoding.
	data := res.Compressed.Encode()
	back, err := DecodeIrregular(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != res.Compressed.Len() {
		t.Fatalf("encode roundtrip lost points: %d vs %d", back.Len(), res.Compressed.Len())
	}
	// The binary form must undercut naive (index, value) storage — 128
	// bits per retained point. (Against the paper's 64-bit value-only
	// accounting the XOR coding only wins on low-entropy values.)
	if float64(len(data)*8) >= float64(res.Compressed.Len()*128) {
		t.Fatalf("encoding %d bits >= naive %d bits", len(data)*8, res.Compressed.Len()*128)
	}
}

func TestFacadeStore(t *testing.T) {
	dir := t.TempDir()
	store, err := OpenStore(dir, Options{Lags: 24, Epsilon: 0.05}, 256)
	if err != nil {
		t.Fatal(err)
	}
	xs := demoSeries(600, 24, 0.3, 24)
	if err := store.Append("s1", xs...); err != nil {
		t.Fatal(err)
	}
	got, err := store.Query("s1", 100, 200)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 100 {
		t.Fatalf("query returned %d samples", len(got))
	}
	if _, err := store.Query("absent", 0, 1); !errors.Is(err, ErrUnknownSeries) {
		t.Fatalf("expected ErrUnknownSeries, got %v", err)
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeElf(t *testing.T) {
	xs := make([]float64, 500)
	for i := range xs {
		xs[i] = math.Round(float64(i)*1.7) / 10
	}
	enc := Elf(xs)
	dec, err := enc.Decompress()
	if err != nil {
		t.Fatal(err)
	}
	for i := range xs {
		if dec[i] != xs[i] {
			t.Fatalf("elf roundtrip broken at %d", i)
		}
	}
	if enc.BitsPerValue() >= Gorilla(xs).BitsPerValue() {
		t.Fatalf("Elf %v should beat Gorilla %v on decimal data",
			enc.BitsPerValue(), Gorilla(xs).BitsPerValue())
	}
}

func TestFacadeCoarseAndStatistics(t *testing.T) {
	xs := demoSeries(2000, 48, 0.4, 22)
	res, err := CompressCoarse(xs, CoarseOptions{
		Options:    Options{Lags: 48, Epsilon: 0.02, Statistic: StatACF, Measure: MAE},
		Partitions: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.CompressionRatio() <= 1 {
		t.Fatal("coarse run did not compress")
	}
}

func TestFacadeCodecSelection(t *testing.T) {
	names := CodecNames()
	if len(names) != 7 {
		t.Fatalf("CodecNames = %v, want 7 codecs", names)
	}
	for _, name := range names {
		c, err := CodecByName(name)
		if err != nil {
			t.Fatalf("CodecByName(%q): %v", name, err)
		}
		if c.Name() != name {
			t.Fatalf("CodecByName(%q).Name = %q", name, c.Name())
		}
		if byID, err := CodecByID(c.ID()); err != nil || byID.Name() != name {
			t.Fatalf("CodecByID(%d) = %v, %v", c.ID(), byID, err)
		}
	}
	if _, err := CodecByName("lz4"); err == nil {
		t.Fatal("expected error for unknown codec name")
	}

	// A store opened with a lossless codec from the facade replays appends
	// bit-exactly across close/reopen.
	dir := filepath.Join(t.TempDir(), "store")
	xs := demoSeries(600, 24, 0.5, 13)
	store, err := OpenStoreOptions(dir, StoreOptions{Codec: CodecELF(), BlockSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Append("sensor", xs...); err != nil {
		t.Fatal(err)
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}
	store, err = OpenStoreOptions(dir, StoreOptions{Codec: CodecELF(), BlockSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	got, err := store.Query("sensor", 0, len(xs))
	if err != nil {
		t.Fatal(err)
	}
	for i := range xs {
		if got[i] != xs[i] {
			t.Fatalf("sample %d: %v != %v", i, got[i], xs[i])
		}
	}
	totals := store.Stats()
	if totals.CacheShards == 0 {
		t.Fatalf("expected per-shard caches in totals: %+v", totals)
	}
}

func TestFacadeEncodeDecodeBlock(t *testing.T) {
	xs := demoSeries(400, 24, 0.3, 14)
	data, err := EncodeBlock(CodecGorilla(), xs)
	if err != nil {
		t.Fatal(err)
	}
	if !IsBlockFormat(data) {
		t.Fatal("EncodeBlock output not sniffed as block format")
	}
	got, hdr, err := DecodeBlock(data)
	if err != nil {
		t.Fatal(err)
	}
	if hdr.N != len(xs) {
		t.Fatalf("header N = %d", hdr.N)
	}
	for i := range xs {
		if got[i] != xs[i] {
			t.Fatalf("sample %d: %v != %v", i, got[i], xs[i])
		}
	}
	if IsBlockFormat([]byte("index,value\n0,1\n")) {
		t.Fatal("CSV sniffed as block format")
	}
}
