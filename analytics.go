package cameo

import (
	"repro/internal/anomaly"
	"repro/internal/datasets"
	"repro/internal/features"
	"repro/internal/forecast"
)

// Forecaster is a univariate forecasting model (Fit then Forecast).
type Forecaster = forecast.Forecaster

// HoltWinters is additive triple exponential smoothing.
type HoltWinters = forecast.HoltWinters

// SES is simple exponential smoothing.
type SES = forecast.SES

// AR is a Yule-Walker autoregressive model (the ARIMA stand-in).
type AR = forecast.AR

// DHR is dynamic harmonic regression with AR errors.
type DHR = forecast.DHR

// LSTM is a from-scratch recurrent forecaster trained with Adam.
type LSTM = forecast.LSTM

// STLForecaster decomposes with STL and forecasts the seasonally adjusted
// part with an inner model.
type STLForecaster = forecast.STLForecaster

// NewSTLETS builds the STL-ETS pipeline of the paper's experiments.
func NewSTLETS(period int) *STLForecaster { return forecast.NewSTLETS(period) }

// NewSTLAR builds the STL-AR (ARIMA stand-in) pipeline.
func NewSTLAR(period int) *STLForecaster { return forecast.NewSTLAR(period) }

// EvaluateForecast trains the model on train and scores an h-step forecast
// against the raw actual values (mSMAPE, MSE, MAPE).
func EvaluateForecast(model Forecaster, train, actual []float64, h int) (*forecast.Evaluation, error) {
	return forecast.Evaluate(model, train, actual, h)
}

// SeasonalStrength is the STL-based seasonal strength in [0, 1].
func SeasonalStrength(xs []float64, period int) float64 {
	return forecast.SeasonalStrength(xs, period)
}

// MatrixProfile computes the z-normalized matrix profile (STOMP) for
// discord-based anomaly detection.
func MatrixProfile(xs []float64, m int) *anomaly.Profile {
	return anomaly.MatrixProfile(xs, m)
}

// IrregularMatrixProfile computes the paper's iMP directly over a
// compressed series' retained points, avoiding materialization.
func IrregularMatrixProfile(ir *Irregular, m int) *anomaly.Profile {
	return anomaly.IrregularMatrixProfile(ir, m)
}

// DetectDiscord sweeps segment sizes and returns the strongest discord's
// location and segment size.
func DetectDiscord(xs []float64, sizes []int) (loc, size int) {
	return anomaly.DetectDiscord(xs, sizes)
}

// Features extracts the tsfeatures-style feature vector (trend/seasonal
// strength, linearity, curvature, nonlinearity, ACF/PACF summaries).
func Features(xs []float64, period int) features.Vector {
	return features.Compute(xs, period)
}

// CompareFeatures computes per-feature deviations between an original and a
// reconstructed series (the Figure 1 study's x-axis).
func CompareFeatures(orig, recon []float64, period int) features.Deviation {
	return features.Compare(orig, recon, period)
}

// DatasetSpec describes one replica of the paper's eight datasets.
type DatasetSpec = datasets.Spec

// Datasets returns the eight dataset replicas of the paper's Table 1.
func Datasets() []DatasetSpec { return datasets.Replicas() }

// DatasetByName looks a replica up by its paper name.
func DatasetByName(name string) (DatasetSpec, error) { return datasets.ByName(name) }

// LoadCSV reads a numeric column from a CSV file (header auto-skipped).
func LoadCSV(path string, column int) ([]float64, error) { return datasets.LoadCSV(path, column) }

// SaveCSV writes values as a single-column CSV.
func SaveCSV(path, header string, xs []float64) error { return datasets.SaveCSV(path, header, xs) }
