package cameo

import (
	"context"
	"net/http"

	"repro/internal/server"
)

// ServerOptions configures the HTTP serving layer (see NewHandler and
// Serve). The zero value picks every default:
//
//   - MaxRequestBytes: per-request body cap (8 MiB); larger ingest
//     batches are refused with 413.
//   - MaxInflightIngestBytes: total body bytes of ingest requests being
//     processed at once (64 MiB); beyond it writes get 429 + Retry-After
//     — backpressure instead of unbounded buffering.
//   - IngestTimeout: bound on reading one write body (1m); keeps
//     slow-trickling uploads from pinning the in-flight budget (408).
//   - ReadHeaderTimeout / IdleTimeout: connection hygiene for Serve.
//   - DrainTimeout: bound on the graceful drain when Serve's context is
//     canceled (15s).
//   - SlowQueryThreshold / SlowQuerySample: the sampled slow-query log —
//     query requests at or over the threshold emit one JSON line to
//     LogWriter, every Nth occurrence (off by default).
//   - AccessLog / LogWriter: one structured JSON line per request (off),
//     written to LogWriter (os.Stderr by default).
type ServerOptions = server.Options

// NewHandler builds the HTTP handler serving a Store — the same service
// cmd/cameod runs, as an http.Handler embedders mount in their own mux:
//
//	POST   /api/v1/write      batched ingest ("series value" / "series ts
//	                          value" lines, or a JSON {"series":[...]} batch)
//	GET    /api/v1/query      raw range streamed as NDJSON or CSV straight
//	                          off a Store cursor (never materialized)
//	POST   /api/v1/query      batch form ({"series":[...],"from":..,"to":..}):
//	                          several series in one request, scattered across
//	                          the store's worker pool and streamed back as
//	                          per-series NDJSON sections in request order
//	GET    /api/v1/query_agg  downsampled windows via QueryAgg pushdown
//	POST   /api/v1/query_agg  batch aggregate form, one NDJSON line per series
//	GET    /api/v1/series     sorted series listing
//	DELETE /api/v1/series     drop one series and its rollup tiers (204;
//	                          404 for unknown names)
//	GET    /healthz, /statusz liveness; every metric family as flat JSON
//	GET    /metrics           Prometheus text exposition, same registry
//	GET    /debug/traces      ring of recent per-request stage timings
//
// The handler never closes the store; its lifecycle stays with the
// caller. Responses encode floats in shortest round-trip form, so parsed
// query results are bit-identical to calling Store.Query directly.
func NewHandler(store *Store, opt ServerOptions) http.Handler {
	return server.NewHandler(store, opt)
}

// Serve listens on addr and serves store over HTTP until ctx is
// canceled, then drains in-flight requests (bounded by opt.DrainTimeout)
// and returns. The store is not flushed or closed — callers typically
// Flush+Close it right after Serve returns, as cmd/cameod does.
func Serve(ctx context.Context, addr string, store *Store, opt ServerOptions) error {
	return server.Serve(ctx, addr, store, opt)
}
