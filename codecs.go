package cameo

import (
	"fmt"

	"repro/internal/codec"
	"repro/internal/core"
)

// Codec is a pluggable block compressor: it turns a dense block of float64
// samples into bytes and back. The Store compresses every block through
// one, selected via StoreOptions.Codec; the constructors below cover every
// compressor the package implements. Lossless codecs (Gorilla, Chimp, Elf)
// reproduce appended values bit-exactly — durability-grade storage — while
// lossy codecs (CAMEO, PMC, Swing, Sim-Piece) trade fidelity for much
// higher compression: CAMEO bounds the deviation of a downstream statistic
// (ACF/PACF), the segment codecs bound pointwise error. The Lossy() flag
// distinguishes the two at runtime.
type Codec = codec.Codec

// BlockHeader describes a decoded block: format version, codec ID, and
// sample count (see DecodeBlock).
type BlockHeader = codec.BlockHeader

// CodecCAMEO returns the autocorrelation-preserving lossy codec, the
// Store's default (opt as for Compress: Lags and Epsilon / TargetRatio
// required).
func CodecCAMEO(opt Options) Codec { return codec.NewCAMEO(core.Options(opt)) }

// CodecGorilla returns the lossless Facebook Gorilla XOR codec. Like all
// bit-stream codecs it writes a checkpoint sidecar (one mark every
// StoreOptions.CheckpointInterval samples, default 128) so partial block
// reads seek instead of replaying the whole block.
func CodecGorilla() Codec { return codec.Gorilla{} }

// CodecChimp returns the lossless Chimp XOR codec (checkpointed like
// CodecGorilla).
func CodecChimp() Codec { return codec.Chimp{} }

// CodecELF returns the lossless Elf erase-based XOR codec (strongest on
// short-decimal sensor readings; checkpointed like CodecGorilla).
func CodecELF() Codec { return codec.Elf{} }

// CodecPMC returns the Poor Man's Compression codec: piecewise-constant,
// lossy with per-value error at most relBound times each block's value
// range (0 selects the 1% default).
func CodecPMC(relBound float64) Codec { return codec.PMC{RelBound: relBound} }

// CodecSwing returns the Swing-filter codec: piecewise-linear, lossy with
// per-value error at most relBound times each block's value range (0
// selects the 1% default).
func CodecSwing(relBound float64) Codec { return codec.Swing{RelBound: relBound} }

// CodecSimPiece returns the Sim-Piece codec: piecewise-linear with merged
// shared slopes, lossy with per-value error at most relBound times each
// block's value range (0 selects the 1% default).
func CodecSimPiece(relBound float64) Codec { return codec.SimPiece{RelBound: relBound} }

// CodecByName resolves a codec by its registry name ("cameo", "gorilla",
// "chimp", "elf", "pmc", "swing", "simpiece") with default parameters.
// Note the default cameo instance can only decode — CAMEO needs
// compression options to encode, so use CodecCAMEO for writing.
func CodecByName(name string) (Codec, error) { return codec.ByName(name) }

// CodecNames lists the registered codec names, sorted.
func CodecNames() []string { return codec.Names() }

// CodecByID resolves a block header's codec ID to the registered codec.
func CodecByID(id uint8) (Codec, error) { return codec.ByID(id) }

// IsBlockFormat reports whether data begins with the block-format magic
// (see EncodeBlock).
func IsBlockFormat(data []byte) bool { return codec.IsBlockFormat(data) }

// EncodeBlock compresses one dense block with c and prepends the
// self-describing block header (magic, format version, codec ID, sample
// count) — the same framing the Store persists, so the output decodes with
// DecodeBlock on any build that registers the codec.
func EncodeBlock(c Codec, xs []float64) ([]byte, error) {
	return codec.EncodeBlock(c, xs)
}

// DecodeBlock parses a block produced by EncodeBlock (or a Store block
// file) and decodes it with the codec named by its header.
func DecodeBlock(data []byte) ([]float64, BlockHeader, error) {
	return codec.DecodeBlock(data)
}

// RangeAgg summarizes a sample range without materializing it: Sum, Min,
// Max, and Count (mean is Sum/Count). Returned by DecodeBlockAgg and used
// internally by Store.QueryAgg's codec pushdown.
type RangeAgg = codec.RangeAgg

// parseBlockPayload is the shared preamble of the block range/aggregate
// helpers: parse the self-describing header, resolve the codec, clamp the
// requested bounds to the block, and split off the checkpoint sidecar
// when the block carries one (nil otherwise). A clamped-empty range
// reports lo == hi.
func parseBlockPayload(data []byte, lo, hi int) (Codec, BlockHeader, []byte, []byte, int, int, error) {
	h, sidecar, payload, err := codec.SplitBlock(data)
	if err != nil {
		return nil, BlockHeader{}, nil, nil, 0, 0, err
	}
	c, err := codec.ByID(h.CodecID)
	if err != nil {
		return nil, h, nil, nil, 0, 0, err
	}
	lo = max(lo, 0)
	hi = min(hi, h.N)
	if lo > hi {
		lo = hi
	}
	return c, h, sidecar, payload, lo, hi, nil
}

// DecodeBlockRange decodes only samples [lo, hi) of a self-describing
// block (bounds clamped to the block). The segment codecs (PMC, Swing,
// Sim-Piece) and CAMEO evaluate just the pieces spanning the range, and
// the bit-stream lossless codecs (gorilla, chimp, elf) seek through their
// checkpoint sidecar and replay at most a checkpoint interval of extra
// samples — random access straight out of the compressed form either way.
// Checkpoint-less bit-stream blocks (written with checkpoints disabled,
// or by older builds) replay from the block front up to hi. The values
// are bit-identical to DecodeBlock(data)[lo:hi].
func DecodeBlockRange(data []byte, lo, hi int) ([]float64, BlockHeader, error) {
	c, h, sidecar, payload, lo, hi, err := parseBlockPayload(data, lo, hi)
	if err != nil || lo >= hi {
		return nil, h, err
	}
	if cd, ok := c.(codec.CheckpointDecoder); ok {
		xs, _, err := cd.DecodeRangeCheckpointed(payload, sidecar, h.N, lo, hi, nil)
		return xs, h, err
	}
	xs, err := codec.DecodeRange(c, payload, h.N, lo, hi, nil)
	return xs, h, err
}

// DecodeBlockWindowAggs aggregates consecutive step-sample windows of
// samples [lo, hi) of a self-describing block (bounds clamped; the last
// window may be partial), returning one RangeAgg per window — the
// downsampling shape of a dashboard query. For the segment codecs and
// CAMEO the whole grid is computed in ONE pass over the compressed piece
// stream (codec.AggDecoder.DecodeWindowAggs) with no samples
// materialized; the bit-stream codecs fold each window in one
// seek-assisted pass over the compressed stream, likewise without
// materializing the range; other codecs decode the range once and fold
// it.
func DecodeBlockWindowAggs(data []byte, lo, hi, step int) ([]RangeAgg, BlockHeader, error) {
	if step < 1 {
		return nil, BlockHeader{}, fmt.Errorf("cameo: window step must be at least 1, got %d", step)
	}
	c, h, sidecar, payload, lo, hi, err := parseBlockPayload(data, lo, hi)
	if err != nil || lo >= hi {
		return nil, h, err
	}
	aggs := make([]RangeAgg, (hi-lo+step-1)/step)
	for i := range aggs {
		aggs[i] = codec.NewRangeAgg()
	}
	if ad, ok := c.(codec.AggDecoder); ok {
		if err := ad.DecodeWindowAggs(payload, h.N, lo, hi, lo, step, aggs); err != nil {
			return nil, h, err
		}
		return aggs, h, nil
	}
	if cd, ok := c.(codec.CheckpointDecoder); ok {
		if _, err := cd.DecodeWindowAggsCheckpointed(payload, sidecar, h.N, lo, hi, lo, step, aggs); err != nil {
			return nil, h, err
		}
		return aggs, h, nil
	}
	xs, err := codec.DecodeRange(c, payload, h.N, lo, hi, nil)
	if err != nil {
		return nil, h, err
	}
	for i := range aggs {
		aggs[i].Add(xs[i*step : min((i+1)*step, len(xs))])
	}
	return aggs, h, nil
}

// DecodeBlockAgg aggregates samples [lo, hi) of a self-describing block
// (bounds clamped). For the segment codecs and CAMEO the result is
// computed from the compressed piece parameters alone, and the bit-stream
// codecs fold a single seek-assisted pass — no samples are materialized
// either way; other codecs decode the range first.
func DecodeBlockAgg(data []byte, lo, hi int) (RangeAgg, BlockHeader, error) {
	c, h, sidecar, payload, lo, hi, err := parseBlockPayload(data, lo, hi)
	if err != nil {
		return RangeAgg{}, h, err
	}
	if lo >= hi {
		return codec.NewRangeAgg(), h, nil
	}
	if cd, ok := c.(codec.CheckpointDecoder); ok {
		if _, isAgg := c.(codec.AggDecoder); !isAgg {
			aggs := []RangeAgg{codec.NewRangeAgg()}
			if _, err := cd.DecodeWindowAggsCheckpointed(payload, sidecar, h.N, lo, hi, lo, hi-lo, aggs); err != nil {
				return RangeAgg{}, h, err
			}
			return aggs[0], h, nil
		}
	}
	agg, err := codec.DecodeRangeAgg(c, payload, h.N, lo, hi)
	return agg, h, err
}
