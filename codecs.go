package cameo

import (
	"repro/internal/codec"
	"repro/internal/core"
)

// Codec is a pluggable block compressor: it turns a dense block of float64
// samples into bytes and back. The Store compresses every block through
// one, selected via StoreOptions.Codec; the constructors below cover every
// compressor the package implements. Lossless codecs (Gorilla, Chimp, Elf)
// reproduce appended values bit-exactly — durability-grade storage — while
// lossy codecs (CAMEO, PMC, Swing, Sim-Piece) trade fidelity for much
// higher compression: CAMEO bounds the deviation of a downstream statistic
// (ACF/PACF), the segment codecs bound pointwise error. The Lossy() flag
// distinguishes the two at runtime.
type Codec = codec.Codec

// BlockHeader describes a decoded block: format version, codec ID, and
// sample count (see DecodeBlock).
type BlockHeader = codec.BlockHeader

// CodecCAMEO returns the autocorrelation-preserving lossy codec, the
// Store's default (opt as for Compress: Lags and Epsilon / TargetRatio
// required).
func CodecCAMEO(opt Options) Codec { return codec.NewCAMEO(core.Options(opt)) }

// CodecGorilla returns the lossless Facebook Gorilla XOR codec.
func CodecGorilla() Codec { return codec.Gorilla{} }

// CodecChimp returns the lossless Chimp XOR codec.
func CodecChimp() Codec { return codec.Chimp{} }

// CodecELF returns the lossless Elf erase-based XOR codec (strongest on
// short-decimal sensor readings).
func CodecELF() Codec { return codec.Elf{} }

// CodecPMC returns the Poor Man's Compression codec: piecewise-constant,
// lossy with per-value error at most relBound times each block's value
// range (0 selects the 1% default).
func CodecPMC(relBound float64) Codec { return codec.PMC{RelBound: relBound} }

// CodecSwing returns the Swing-filter codec: piecewise-linear, lossy with
// per-value error at most relBound times each block's value range (0
// selects the 1% default).
func CodecSwing(relBound float64) Codec { return codec.Swing{RelBound: relBound} }

// CodecSimPiece returns the Sim-Piece codec: piecewise-linear with merged
// shared slopes, lossy with per-value error at most relBound times each
// block's value range (0 selects the 1% default).
func CodecSimPiece(relBound float64) Codec { return codec.SimPiece{RelBound: relBound} }

// CodecByName resolves a codec by its registry name ("cameo", "gorilla",
// "chimp", "elf", "pmc", "swing", "simpiece") with default parameters.
// Note the default cameo instance can only decode — CAMEO needs
// compression options to encode, so use CodecCAMEO for writing.
func CodecByName(name string) (Codec, error) { return codec.ByName(name) }

// CodecNames lists the registered codec names, sorted.
func CodecNames() []string { return codec.Names() }

// CodecByID resolves a block header's codec ID to the registered codec.
func CodecByID(id uint8) (Codec, error) { return codec.ByID(id) }

// IsBlockFormat reports whether data begins with the block-format magic
// (see EncodeBlock).
func IsBlockFormat(data []byte) bool { return codec.IsBlockFormat(data) }

// EncodeBlock compresses one dense block with c and prepends the
// self-describing block header (magic, format version, codec ID, sample
// count) — the same framing the Store persists, so the output decodes with
// DecodeBlock on any build that registers the codec.
func EncodeBlock(c Codec, xs []float64) ([]byte, error) {
	return codec.EncodeBlock(c, xs)
}

// DecodeBlock parses a block produced by EncodeBlock (or a Store block
// file) and decodes it with the codec named by its header.
func DecodeBlock(data []byte) ([]float64, BlockHeader, error) {
	return codec.DecodeBlock(data)
}
