// Package features computes the time-series features of the paper's
// Figure 1 motivation study [45]: trend and seasonal strength, linearity,
// curvature, nonlinearity, and the ACF/PACF summary features whose deviation
// under compression correlates with forecasting-accuracy impact.
package features

import (
	"math"

	"repro/internal/acf"
	"repro/internal/forecast"
	"repro/internal/stats"
)

// Vector is the feature set of one series.
type Vector struct {
	// Trend is the STL-based trend strength in [0, 1].
	Trend float64
	// Seasonal is the STL-based seasonal strength in [0, 1].
	Seasonal float64
	// Linearity and Curvature are the t and t^2 coefficients of an
	// orthogonal quadratic regression on the standardized series
	// (tsfeatures' linearity/curvature).
	Linearity float64
	Curvature float64
	// Nonlinearity is a Terasvirta-style neural test statistic: n * R^2 of
	// regressing AR(1) residuals on quadratic and cubic lag terms.
	Nonlinearity float64
	// ACF1 is the lag-1 autocorrelation.
	ACF1 float64
	// ACF10 is the sum of squares of the first 10 autocorrelations.
	ACF10 float64
	// PACF5 is the sum of squares of the first 5 partial autocorrelations.
	PACF5 float64
}

// Compute extracts the feature vector; period is the seasonal cycle used by
// the STL strengths.
func Compute(xs []float64, period int) Vector {
	var v Vector
	if len(xs) < 4 {
		return v
	}
	v.Trend = forecast.TrendStrength(xs, period)
	v.Seasonal = forecast.SeasonalStrength(xs, period)
	v.Linearity, v.Curvature = linearityCurvature(xs)
	v.Nonlinearity = nonlinearity(xs)
	a := acf.ACF(xs, 10)
	v.ACF1 = a[0]
	for _, r := range a {
		v.ACF10 += r * r
	}
	for _, p := range acf.PACF(xs, 5) {
		v.PACF5 += p * p
	}
	return v
}

// linearityCurvature regresses the standardized series on orthogonal linear
// and quadratic polynomials of scaled time and returns both coefficients.
func linearityCurvature(xs []float64) (lin, curv float64) {
	n := len(xs)
	zs, _, _ := stats.Standardize(xs)
	// Orthogonal polynomial basis over t = 0..n-1 (Gram-Schmidt on 1, t, t^2).
	t := make([]float64, n)
	for i := range t {
		t[i] = float64(i)
	}
	p1 := orthonormalize(t, nil)
	t2 := make([]float64, n)
	for i := range t2 {
		t2[i] = t[i] * t[i]
	}
	p2 := orthonormalize(t2, p1)
	for i := range zs {
		lin += p1[i] * zs[i]
		curv += p2[i] * zs[i]
	}
	return lin, curv
}

// orthonormalize centres v, removes its projection onto prev (if any), and
// scales to unit norm.
func orthonormalize(v []float64, prev []float64) []float64 {
	n := len(v)
	out := make([]float64, n)
	mean := stats.Mean(v)
	for i := range v {
		out[i] = v[i] - mean
	}
	if prev != nil {
		var dot float64
		for i := range out {
			dot += out[i] * prev[i]
		}
		for i := range out {
			out[i] -= dot * prev[i]
		}
	}
	var norm float64
	for _, x := range out {
		norm += x * x
	}
	norm = math.Sqrt(norm)
	if norm == 0 {
		return out
	}
	for i := range out {
		out[i] /= norm
	}
	return out
}

// nonlinearity computes a simplified Terasvirta neural test statistic: fit
// an AR(1), then regress its residuals on the squared and cubed lag; the
// statistic is n * R^2 (large values indicate nonlinear dependence).
func nonlinearity(xs []float64) float64 {
	n := len(xs)
	if n < 8 {
		return 0
	}
	zs, _, _ := stats.Standardize(xs)
	rows := n - 1
	X := make([][]float64, rows)
	y := make([]float64, rows)
	for i := 0; i < rows; i++ {
		X[i] = []float64{1, zs[i]}
		y[i] = zs[i+1]
	}
	beta, err := forecast.OLS(X, y)
	if err != nil {
		return 0
	}
	resid := make([]float64, rows)
	var ssTot float64
	for i := 0; i < rows; i++ {
		resid[i] = y[i] - beta[0] - beta[1]*zs[i]
		ssTot += resid[i] * resid[i]
	}
	if ssTot == 0 {
		return 0
	}
	X2 := make([][]float64, rows)
	for i := 0; i < rows; i++ {
		l := zs[i]
		X2[i] = []float64{1, l * l, l * l * l}
	}
	beta2, err := forecast.OLS(X2, resid)
	if err != nil {
		return 0
	}
	var ssRes float64
	for i := 0; i < rows; i++ {
		e := resid[i] - (beta2[0] + beta2[1]*X2[i][1] + beta2[2]*X2[i][2])
		ssRes += e * e
	}
	r2 := 1 - ssRes/ssTot
	if r2 < 0 {
		r2 = 0
	}
	return float64(rows) * r2
}

// Deviation returns the per-feature absolute deviation |f(a) - f(b)| — the
// x-axis of the Figure 1 correlation study.
type Deviation struct {
	Trend, Seasonal, Linearity, Curvature, Nonlinearity float64
	ACF1, ACF10, PACF5                                  float64
	NRMSE, PSNR                                         float64
}

// Compare computes feature deviations between an original and reconstructed
// series, plus the NRMSE/PSNR reconstruction-quality measures Figure 1
// contrasts them with.
func Compare(orig, recon []float64, period int) Deviation {
	fo := Compute(orig, period)
	fr := Compute(recon, period)
	d := Deviation{
		Trend:        math.Abs(fo.Trend - fr.Trend),
		Seasonal:     math.Abs(fo.Seasonal - fr.Seasonal),
		Linearity:    math.Abs(fo.Linearity - fr.Linearity),
		Curvature:    math.Abs(fo.Curvature - fr.Curvature),
		Nonlinearity: math.Abs(fo.Nonlinearity - fr.Nonlinearity),
		ACF1:         math.Abs(fo.ACF1 - fr.ACF1),
		ACF10:        math.Abs(fo.ACF10 - fr.ACF10),
		PACF5:        math.Abs(fo.PACF5 - fr.PACF5),
		NRMSE:        stats.NRMSE(orig, recon),
	}
	p := stats.PSNR(orig, recon)
	if math.IsInf(p, 0) {
		p = 200 // identical reconstruction: use a large finite ceiling
	}
	d.PSNR = p
	return d
}
