package features

import (
	"math"
	"math/rand"
	"testing"
)

func TestComputeTrendStrength(t *testing.T) {
	n := 300
	trended := make([]float64, n)
	rng := rand.New(rand.NewSource(1))
	flat := make([]float64, n)
	for i := range trended {
		trended[i] = float64(i)*0.5 + rng.NormFloat64()
		flat[i] = rng.NormFloat64()
	}
	ft := Compute(trended, 12)
	ff := Compute(flat, 12)
	if ft.Trend <= ff.Trend {
		t.Fatalf("trend strength ordering broken: %v <= %v", ft.Trend, ff.Trend)
	}
	if ft.Trend < 0.9 {
		t.Fatalf("strong trend scored %v", ft.Trend)
	}
}

func TestComputeSeasonalStrength(t *testing.T) {
	n, period := 480, 24
	seasonal := make([]float64, n)
	rng := rand.New(rand.NewSource(2))
	for i := range seasonal {
		seasonal[i] = 5*math.Sin(2*math.Pi*float64(i)/float64(period)) + 0.3*rng.NormFloat64()
	}
	f := Compute(seasonal, period)
	if f.Seasonal < 0.8 {
		t.Fatalf("seasonal strength = %v, want >= 0.8", f.Seasonal)
	}
	if f.ACF1 < 0.8 {
		t.Fatalf("ACF1 = %v, want >= 0.8 for smooth seasonal series", f.ACF1)
	}
}

func TestLinearityOnRamps(t *testing.T) {
	n := 200
	up := make([]float64, n)
	down := make([]float64, n)
	for i := range up {
		up[i] = float64(i)
		down[i] = -float64(i)
	}
	fu := Compute(up, 10)
	fd := Compute(down, 10)
	if fu.Linearity <= 0 || fd.Linearity >= 0 {
		t.Fatalf("linearity signs wrong: up %v down %v", fu.Linearity, fd.Linearity)
	}
	// A pure line has negligible curvature.
	if math.Abs(fu.Curvature) > 1e-6 {
		t.Fatalf("line curvature = %v, want ~0", fu.Curvature)
	}
}

func TestCurvatureOnParabola(t *testing.T) {
	n := 200
	par := make([]float64, n)
	for i := range par {
		x := float64(i) - float64(n)/2
		par[i] = x * x
	}
	f := Compute(par, 10)
	if math.Abs(f.Curvature) < 1 {
		t.Fatalf("parabola curvature = %v, want substantial", f.Curvature)
	}
}

func TestNonlinearityOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 2000
	linear := make([]float64, n)
	nonlin := make([]float64, n)
	for i := 1; i < n; i++ {
		linear[i] = 0.5*linear[i-1] + rng.NormFloat64()
		// Bounded nonlinear (sinusoidal) dependence on the lag.
		nonlin[i] = 1.8*math.Sin(1.2*nonlin[i-1]) + 0.3*rng.NormFloat64()
	}
	fl := Compute(linear, 10)
	fn := Compute(nonlin, 10)
	if fn.Nonlinearity <= fl.Nonlinearity {
		t.Fatalf("nonlinearity ordering broken: %v <= %v", fn.Nonlinearity, fl.Nonlinearity)
	}
}

func TestComputeTinySeries(t *testing.T) {
	f := Compute([]float64{1, 2}, 4)
	if f.ACF1 != 0 || f.Trend != 0 {
		t.Fatalf("tiny series should produce zero features, got %+v", f)
	}
}

func TestACF10AndPACF5NonNegative(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	xs := make([]float64, 500)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	f := Compute(xs, 24)
	if f.ACF10 < 0 || f.PACF5 < 0 {
		t.Fatalf("sum-of-squares features negative: %+v", f)
	}
}

func TestCompareIdenticalSeries(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	xs := make([]float64, 300)
	for i := range xs {
		xs[i] = 3*math.Sin(float64(i)/10) + 0.2*rng.NormFloat64()
	}
	d := Compare(xs, xs, 24)
	if d.ACF1 != 0 || d.NRMSE != 0 || d.Trend != 0 {
		t.Fatalf("identical series should have zero deviations: %+v", d)
	}
	if d.PSNR != 200 {
		t.Fatalf("identical PSNR ceiling = %v, want 200", d.PSNR)
	}
}

func TestCompareDegradesWithDistortion(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	n, period := 480, 24
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = 5*math.Sin(2*math.Pi*float64(i)/float64(period)) + 0.2*rng.NormFloat64()
	}
	mild := make([]float64, n)
	severe := make([]float64, n)
	for i := range xs {
		mild[i] = xs[i] + 0.1*rng.NormFloat64()
		severe[i] = xs[i] + 3*rng.NormFloat64()
	}
	dm := Compare(xs, mild, period)
	ds := Compare(xs, severe, period)
	if ds.ACF1 <= dm.ACF1 {
		t.Fatalf("ACF1 deviation should grow with distortion: %v <= %v", ds.ACF1, dm.ACF1)
	}
	if ds.NRMSE <= dm.NRMSE {
		t.Fatalf("NRMSE should grow with distortion: %v <= %v", ds.NRMSE, dm.NRMSE)
	}
}
