package metrics

import (
	"encoding/json"
	"strconv"
	"strings"
	"testing"
)

func testRegistry() (*Registry, *Histogram, *Counter, *Gauge) {
	var h Histogram
	var c Counter
	var g Gauge
	r := NewRegistry()
	r.Collect(func(e *Emitter) {
		e.Counter("demo_ops_total", "Operations completed.", c.Value())
		e.Gauge("demo_inflight", "In-flight operations.", float64(g.Value()))
		e.Histogram("demo_latency_seconds", "Operation latency.", 1e-9, h.Snapshot())
		e.CounterL("demo_by_kind_total", "Ops by kind.", Labels("kind", `a"b`), 3)
		e.CounterL("demo_by_kind_total", "Ops by kind.", Labels("kind", "plain"), 4)
	})
	return r, &h, &c, &g
}

// TestWritePrometheusFormat validates the rendered exposition text line by
// line: exactly one HELP and one TYPE per family, TYPE before samples,
// escaped label values, no duplicate family declarations, and cumulative
// non-decreasing histogram buckets ending in le="+Inf".
func TestWritePrometheusFormat(t *testing.T) {
	r, h, c, g := testRegistry()
	c.Add(10)
	g.Set(2)
	h.Observe(1500) // 1.5us
	h.Observe(3_000_000)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()

	helpSeen := map[string]bool{}
	typeSeen := map[string]string{}
	samples := map[string]bool{}
	var lastBucket float64
	var inHist bool
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		switch {
		case strings.HasPrefix(line, "# HELP "):
			name := strings.Fields(line)[2]
			if helpSeen[name] {
				t.Fatalf("duplicate HELP for %s", name)
			}
			helpSeen[name] = true
		case strings.HasPrefix(line, "# TYPE "):
			fields := strings.Fields(line)
			name, kind := fields[2], fields[3]
			if _, dup := typeSeen[name]; dup {
				t.Fatalf("duplicate TYPE for %s", name)
			}
			if !helpSeen[name] {
				t.Fatalf("TYPE before HELP for %s", name)
			}
			typeSeen[name] = kind
			inHist = kind == "histogram"
			lastBucket = -1
		default:
			if samples[line] {
				t.Fatalf("duplicate sample line: %s", line)
			}
			samples[line] = true
			if inHist && strings.Contains(line, "_bucket{") {
				v, err := strconv.ParseFloat(line[strings.LastIndexByte(line, ' ')+1:], 64)
				if err != nil {
					t.Fatalf("bad bucket value in %q: %v", line, err)
				}
				if v < lastBucket {
					t.Fatalf("bucket counts not cumulative: %q after %v", line, lastBucket)
				}
				lastBucket = v
			}
		}
	}
	for _, want := range []string{
		"# TYPE demo_ops_total counter",
		"# TYPE demo_inflight gauge",
		"# TYPE demo_latency_seconds histogram",
		"demo_ops_total 10",
		"demo_inflight 2",
		`demo_by_kind_total{kind="a\"b"} 3`,
		"demo_latency_seconds_count 2",
	} {
		if !strings.Contains(out, want+"\n") {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(out, `le="+Inf"`) {
		t.Fatalf("histogram missing +Inf bucket:\n%s", out)
	}
}

// TestJSONMatchesPrometheus pins the no-drift property: the JSON view is
// the same gather pass, so every scalar value must agree with the
// exposition text and histogram counts must match _count.
func TestJSONMatchesPrometheus(t *testing.T) {
	r, h, c, g := testRegistry()
	c.Add(42)
	g.Set(-1)
	for i := 0; i < 100; i++ {
		h.Observe(uint64(i) * 1000)
	}

	var jb strings.Builder
	if err := r.WriteJSON(&jb); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal([]byte(jb.String()), &doc); err != nil {
		t.Fatalf("JSON view is not valid JSON: %v\n%s", err, jb.String())
	}

	if v := doc["demo_ops_total"].(float64); v != 42 {
		t.Fatalf("json counter %v", v)
	}
	if v := doc["demo_inflight"].(float64); v != -1 {
		t.Fatalf("json gauge %v", v)
	}
	hist := doc["demo_latency_seconds"].(map[string]any)
	if v := hist["count"].(float64); v != 100 {
		t.Fatalf("json hist count %v", v)
	}
	byKind := doc["demo_by_kind_total"].(map[string]any)
	if v := byKind[`kind="plain"`].(float64); v != 4 {
		t.Fatalf("json labeled counter %v", v)
	}

	var pb strings.Builder
	if err := r.WritePrometheus(&pb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"demo_ops_total 42",
		"demo_inflight -1",
		"demo_latency_seconds_count 100",
		`demo_by_kind_total{kind="plain"} 4`,
	} {
		if !strings.Contains(pb.String(), want+"\n") {
			t.Fatalf("views disagree: exposition missing %q\n%s", want, pb.String())
		}
	}
}
