package metrics

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// TestHistogramEmpty pins the zero-sample edge: every summary statistic
// reads zero and the ordering invariant p50 <= p99 <= max holds trivially.
func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	s := h.Snapshot()
	if s.Count != 0 || s.Sum != 0 || s.Max != 0 {
		t.Fatalf("empty snapshot: %+v", s)
	}
	p50, p99, max := s.Summary()
	if p50 != 0 || p99 != 0 || max != 0 {
		t.Fatalf("empty summary: %d %d %d", p50, p99, max)
	}
}

// TestHistogramSingleSample pins the one-sample edge: a log bucket's
// upper bound can exceed the exact maximum, so the summary must clamp to
// it — p50 == p99 == max == the observed value.
func TestHistogramSingleSample(t *testing.T) {
	for _, v := range []uint64{0, 1, 5, 1000, 1<<40 + 7} {
		var h Histogram
		h.Observe(v)
		s := h.Snapshot()
		if s.Count != 1 || s.Sum != v || s.Max != v {
			t.Fatalf("Observe(%d): %+v", v, s)
		}
		p50, p99, max := s.Summary()
		if p50 != v || p99 != v || max != v {
			t.Fatalf("Observe(%d) summary: %d %d %d", v, p50, p99, max)
		}
	}
}

// TestHistogramOrderingInvariant checks p50 <= p99 <= max over skewed
// shapes where bucket upper bounds would otherwise cross.
func TestHistogramOrderingInvariant(t *testing.T) {
	var h Histogram
	for i := 0; i < 100; i++ {
		h.Observe(3) // all mass in one low bucket
	}
	h.Observe(1 << 30) // one outlier that IS the max
	p50, p99, max := h.Snapshot().Summary()
	if !(p50 <= p99 && p99 <= max) {
		t.Fatalf("ordering violated: p50=%d p99=%d max=%d", p50, p99, max)
	}
	if max != 1<<30 {
		t.Fatalf("max not exact: %d", max)
	}
	if p50 > 3 {
		// Band upper bound for value 3 is 3 (bits.Len64(3)=2, 2^2-1).
		t.Fatalf("p50 overshoots its band: %d", p50)
	}
}

// TestHistogramQuantileConservative: a quantile is the band's upper
// bound, so it never under-reports the true quantile and stays within 2x.
func TestHistogramQuantileConservative(t *testing.T) {
	var h Histogram
	for v := uint64(1); v <= 1000; v++ {
		h.Observe(v)
	}
	s := h.Snapshot()
	p50 := s.Quantile(0.50)
	if p50 < 500 {
		t.Fatalf("p50 under-reports: %d < 500", p50)
	}
	if p50 > 1023 { // band [512,1023] holds the true median
		t.Fatalf("p50 beyond its band: %d", p50)
	}
}

// TestHistogramMergeReset pins Merge (counts, sum, max all fold) and
// Reset (back to the zero state).
func TestHistogramMergeReset(t *testing.T) {
	var a, b Histogram
	for i := 0; i < 10; i++ {
		a.Observe(100)
		b.Observe(10000)
	}
	b.Observe(1 << 20)
	sa, sb := a.Snapshot(), b.Snapshot()
	sa.Merge(sb)
	if sa.Count != 21 {
		t.Fatalf("merged count %d", sa.Count)
	}
	if want := uint64(10*100 + 10*10000 + 1<<20); sa.Sum != want {
		t.Fatalf("merged sum %d, want %d", sa.Sum, want)
	}
	if sa.Max != 1<<20 {
		t.Fatalf("merged max %d", sa.Max)
	}
	// Merge must not disturb the source snapshot's ordering invariant.
	p50, p99, max := sa.Summary()
	if !(p50 <= p99 && p99 <= max) {
		t.Fatalf("merged ordering: %d %d %d", p50, p99, max)
	}

	a.Reset()
	if s := a.Snapshot(); s.Count != 0 || s.Sum != 0 || s.Max != 0 {
		t.Fatalf("reset left residue: %+v", s)
	}
}

// TestHistogramConcurrentObserve hammers one histogram from several
// goroutines (run under -race in CI) and checks nothing is lost: the
// bucket walk must account for every observation.
func TestHistogramConcurrentObserve(t *testing.T) {
	var h Histogram
	const goroutines, per = 8, 5000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(uint64(g*per + i))
			}
		}(g)
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != goroutines*per {
		t.Fatalf("lost observations: %d of %d", s.Count, goroutines*per)
	}
	if s.Max != goroutines*per-1 {
		t.Fatalf("max %d, want %d", s.Max, goroutines*per-1)
	}
}

// TestObserveDurationClampsNegative: clock steps must not underflow into
// the top bucket.
func TestObserveDurationClampsNegative(t *testing.T) {
	var h Histogram
	h.ObserveDuration(-time.Second)
	s := h.Snapshot()
	if s.Buckets[0] != 1 || s.Max != 0 {
		t.Fatalf("negative duration not clamped: %+v", s)
	}
}

// TestHotPathZeroAlloc enforces the package invariant the store's hot
// paths rely on: observing and counting never allocate.
func TestHotPathZeroAlloc(t *testing.T) {
	var h Histogram
	var c Counter
	var g Gauge
	if n := testing.AllocsPerRun(1000, func() {
		h.Observe(12345)
		h.ObserveDuration(250 * time.Microsecond)
		c.Inc()
		c.Add(3)
		g.Add(1)
		g.Set(7)
	}); n != 0 {
		t.Fatalf("hot-path instruments allocate: %v allocs/op", n)
	}
}

func TestCounterGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(9)
	if c.Value() != 10 {
		t.Fatalf("counter %d", c.Value())
	}
	var g Gauge
	g.Add(5)
	g.Add(-2)
	if g.Value() != 3 {
		t.Fatalf("gauge %d", g.Value())
	}
	g.Set(-7)
	if g.Value() != -7 {
		t.Fatalf("gauge %d", g.Value())
	}
}

// TestLabelsEscaping pins the exposition escaping rules for label values.
func TestLabelsEscaping(t *testing.T) {
	got := Labels("series", "a\\b\"c\nd")
	want := `series="a\\b\"c\nd"`
	if got != want {
		t.Fatalf("Labels = %s, want %s", got, want)
	}
	for _, bad := range [][]string{{"odd"}, {"bad-name", "v"}, {"", "v"}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Labels(%q) did not panic", bad)
				}
			}()
			Labels(bad...)
		}()
	}
}

// TestEmitterConflicts: re-declaring a family under another kind, or
// duplicating an exact sample, is a wiring bug and must panic rather
// than render invalid exposition output.
func TestEmitterConflicts(t *testing.T) {
	mustPanic := func(name string, fn func(e *Emitter)) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		r := NewRegistry()
		r.Collect(fn)
		r.WritePrometheus(&strings.Builder{})
	}
	mustPanic("kind conflict", func(e *Emitter) {
		e.Counter("x_total", "h", 1)
		e.Gauge("x_total", "h", 2)
	})
	mustPanic("duplicate sample", func(e *Emitter) {
		e.CounterL("x_total", "h", Labels("a", "1"), 1)
		e.CounterL("x_total", "h", Labels("a", "1"), 2)
	})
	mustPanic("scale conflict", func(e *Emitter) {
		var h Histogram
		e.HistogramL("x_seconds", "h", Labels("a", "1"), 1e-9, h.Snapshot())
		e.HistogramL("x_seconds", "h", Labels("a", "2"), 1, h.Snapshot())
	})
	mustPanic("invalid name", func(e *Emitter) {
		e.Counter("1bad", "h", 1)
	})
}
