package metrics

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// numBuckets is the fixed bucket count of Histogram: bucket b holds the
// observations v with bits.Len64(v) == b, i.e. power-of-two value bands
// (bucket 0 holds exactly the zero observations).
const numBuckets = 65

// Histogram is a fixed-shape log-spaced histogram of non-negative integer
// observations (nanoseconds, bytes — any unit the owner picks and keeps).
// It is the generalized form of the store's original append-latency
// histogram: the observe path is three atomic adds plus a CAS loop for the
// exact maximum, and it never allocates, so it can sit on hot paths
// without perturbing what it measures. Quantile estimates report a band's
// upper bound, so they are conservative (never under-report) and accurate
// to within 2x — the useful resolution for a tail-latency health signal;
// the maximum is tracked exactly. The zero value is ready to use.
type Histogram struct {
	buckets [numBuckets]atomic.Uint64
	sum     atomic.Uint64 // total of all observed values (exposition _sum)
	max     atomic.Uint64 // exact maximum observed value
}

// Observe records one observation. Safe for concurrent use; never
// allocates.
func (h *Histogram) Observe(v uint64) {
	h.buckets[bits.Len64(v)].Add(1)
	h.sum.Add(v)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

// ObserveDuration records a wall-time observation in nanoseconds,
// clamping negative durations (clock steps) to zero.
func (h *Histogram) ObserveDuration(d time.Duration) {
	ns := uint64(0)
	if d > 0 {
		ns = uint64(d)
	}
	h.Observe(ns)
}

// Reset zeroes the histogram. Concurrent observes may land between the
// stores, so a reset racing live traffic yields a small, self-consistent
// remainder rather than an exact zero; callers that need an exact reset
// must quiesce writers first (tests do).
func (h *Histogram) Reset() {
	for i := range h.buckets {
		h.buckets[i].Store(0)
	}
	h.sum.Store(0)
	h.max.Store(0)
}

// Snapshot walks the buckets once. Concurrent observes may land between
// bucket loads; the result is a consistent-enough health signal, not an
// exact census.
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
		s.Count += s.Buckets[i]
	}
	s.Sum = h.sum.Load()
	s.Max = h.max.Load()
	return s
}

// HistSnapshot is a point-in-time copy of a Histogram, detached from the
// live atomics so it can be merged, quantiled, and rendered without
// racing further observes.
type HistSnapshot struct {
	Buckets [numBuckets]uint64
	Count   uint64 // total observations (sum of Buckets)
	Sum     uint64 // total of observed values
	Max     uint64 // exact maximum observed value
}

// Merge folds another snapshot into s (for aggregating per-shard or
// per-endpoint histograms into one family).
func (s *HistSnapshot) Merge(o HistSnapshot) {
	for i := range s.Buckets {
		s.Buckets[i] += o.Buckets[i]
	}
	s.Count += o.Count
	s.Sum += o.Sum
	if o.Max > s.Max {
		s.Max = o.Max
	}
}

// Quantile returns the upper bound of the bucket holding the q-quantile
// observation (0 for an empty snapshot), clamped to the exact maximum so
// a quantile never reads above Max.
func (s HistSnapshot) Quantile(q float64) uint64 {
	if s.Count == 0 {
		return 0
	}
	rank := uint64(q * float64(s.Count))
	if rank >= s.Count {
		rank = s.Count - 1
	}
	var cum uint64
	for b, c := range s.Buckets {
		cum += c
		if cum > rank {
			ub := bucketUpperBound(b)
			if ub > s.Max {
				ub = s.Max
			}
			return ub
		}
	}
	return s.Max
}

// Summary returns the conservative (p50, p99, max) triple with the
// ordering invariant p50 <= p99 <= max enforced even at 0 or 1 samples,
// where a band's upper bound could otherwise cross the exact maximum.
func (s HistSnapshot) Summary() (p50, p99, max uint64) {
	max = s.Max
	p99 = s.Quantile(0.99)
	if p99 > max {
		p99 = max
	}
	p50 = s.Quantile(0.50)
	if p50 > p99 {
		p50 = p99
	}
	return p50, p99, max
}

// bucketUpperBound is the largest value bucket b can hold: 2^b - 1
// (bucket 0 holds only zero; the last bucket is unbounded and reports
// the maximum representable value).
func bucketUpperBound(b int) uint64 {
	if b == 0 {
		return 0
	}
	if b >= 64 {
		return math.MaxUint64
	}
	return 1<<uint(b) - 1
}
