// Package metrics is the engine's dependency-free instrumentation layer:
// atomic counters and gauges, a zero-allocation log-bucket histogram (the
// generalization of the store's append-latency histogram), and a registry
// that renders everything registered with it as Prometheus text exposition
// format — and, from the same gather pass, as a flat JSON document, so an
// HTTP layer can serve /metrics and a JSON status view that can never
// disagree with each other.
//
// The package deliberately has no dependency beyond the standard library
// and no background goroutines. Instruments are plain structs embedded in
// the subsystems they observe; the hot-path operations (Counter.Add,
// Gauge.Set, Histogram.Observe) are a handful of atomic operations and
// never allocate, so they can sit on the store's append and query paths
// without perturbing the latencies they measure. Rendering happens only
// when a scrape asks for it, via collector functions registered on a
// Registry.
package metrics

import "sync/atomic"

// Counter is a monotonically increasing counter. The zero value is ready
// to use; all methods are safe for concurrent use and allocation-free.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a value that can go up and down (in-flight requests, queue
// depth). The zero value is ready to use; all methods are safe for
// concurrent use and allocation-free.
type Gauge struct {
	v atomic.Int64
}

// Add moves the gauge by delta (negative to decrement).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Set replaces the gauge value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Value returns the current gauge value.
func (g *Gauge) Value() int64 { return g.v.Load() }
