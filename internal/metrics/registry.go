package metrics

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Kind is the exposition type of a metric family.
type Kind uint8

const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// Registry gathers metric families from registered collector functions
// and renders them. Both renderers run the same gather pass over the same
// collectors, so the Prometheus and JSON views of one registry are always
// two encodings of identical samples — they cannot drift apart the way
// independently hand-assembled views can.
type Registry struct {
	mu         sync.Mutex
	collectors []func(*Emitter)
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Collect registers a collector: a function called once per render that
// emits the current value of every family it owns. Collectors run in
// registration order, and the families they emit appear in emission
// order, so output is deterministic.
func (r *Registry) Collect(fn func(*Emitter)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.collectors = append(r.collectors, fn)
}

// gather runs every collector into a fresh emitter.
func (r *Registry) gather() *Emitter {
	r.mu.Lock()
	collectors := r.collectors
	r.mu.Unlock()
	e := &Emitter{fams: make(map[string]*family)}
	for _, fn := range collectors {
		fn(e)
	}
	return e
}

// WritePrometheus renders every registered family in Prometheus text
// exposition format (version 0.0.4): one HELP and one TYPE line per
// family, label values escaped, histogram families as cumulative
// _bucket{le=...} series plus _sum and _count.
func (r *Registry) WritePrometheus(w io.Writer) error {
	return r.gather().writePrometheus(w)
}

// WriteJSON renders the same gathered families as one flat JSON object:
// unlabeled counters and gauges as numbers, labeled families as an object
// keyed by the rendered label set, histograms as {count, sum, p50, p99,
// max} summaries in the same unit scale the exposition view uses.
func (r *Registry) WriteJSON(w io.Writer) error {
	return r.gather().writeJSON(w)
}

// scalar is one counter or gauge sample; hist is one histogram child.
type scalar struct {
	labels string // rendered `k="v",...` pairs; "" when unlabeled
	value  float64
}

type histSample struct {
	labels string
	snap   HistSnapshot
}

// family is one gathered metric family.
type family struct {
	name, help string
	kind       Kind
	scale      float64 // multiplies raw histogram units into exposition units
	scalars    []scalar
	hists      []histSample
}

// Emitter assembles families during one gather pass. Collector functions
// receive it and emit their current values; conflicting emissions —
// re-declaring a family under a different kind, or duplicating an exact
// (family, label set) sample — panic, because they are wiring bugs that
// would produce invalid exposition output.
type Emitter struct {
	order []string
	fams  map[string]*family
}

var nameOK = func(name string) bool {
	if name == "" {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(c >= '0' && c <= '9' && i > 0)
		if !ok {
			return false
		}
	}
	return true
}

func (e *Emitter) familyFor(name, help string, kind Kind, scale float64) *family {
	f, ok := e.fams[name]
	if !ok {
		if !nameOK(name) {
			panic(fmt.Sprintf("metrics: invalid family name %q", name))
		}
		f = &family{name: name, help: help, kind: kind, scale: scale}
		e.fams[name] = f
		e.order = append(e.order, name)
		return f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("metrics: family %q emitted as both %s and %s", name, f.kind, kind))
	}
	return f
}

func (f *family) checkDup(labels string) {
	for _, s := range f.scalars {
		if s.labels == labels {
			panic(fmt.Sprintf("metrics: duplicate sample %s{%s}", f.name, labels))
		}
	}
	for _, h := range f.hists {
		if h.labels == labels {
			panic(fmt.Sprintf("metrics: duplicate sample %s{%s}", f.name, labels))
		}
	}
}

// Labels renders key/value pairs into the canonical label string used by
// both output formats, escaping values per the exposition format rules
// (backslash, double quote, newline).
func Labels(pairs ...string) string {
	if len(pairs) == 0 {
		return ""
	}
	if len(pairs)%2 != 0 {
		panic("metrics: Labels takes key/value pairs")
	}
	var b strings.Builder
	for i := 0; i < len(pairs); i += 2 {
		if !nameOK(pairs[i]) {
			panic(fmt.Sprintf("metrics: invalid label name %q", pairs[i]))
		}
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(pairs[i])
		b.WriteString(`="`)
		escapeLabelValue(&b, pairs[i+1])
		b.WriteByte('"')
	}
	return b.String()
}

func escapeLabelValue(b *strings.Builder, v string) {
	for i := 0; i < len(v); i++ {
		switch v[i] {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(v[i])
		}
	}
}

// Counter emits an unlabeled counter sample.
func (e *Emitter) Counter(name, help string, v uint64) {
	e.CounterL(name, help, "", v)
}

// CounterL emits a counter sample under a label set rendered by Labels.
func (e *Emitter) CounterL(name, help, labels string, v uint64) {
	f := e.familyFor(name, help, KindCounter, 1)
	f.checkDup(labels)
	f.scalars = append(f.scalars, scalar{labels: labels, value: float64(v)})
}

// Gauge emits an unlabeled gauge sample.
func (e *Emitter) Gauge(name, help string, v float64) {
	e.GaugeL(name, help, "", v)
}

// GaugeL emits a gauge sample under a label set rendered by Labels.
func (e *Emitter) GaugeL(name, help, labels string, v float64) {
	f := e.familyFor(name, help, KindGauge, 1)
	f.checkDup(labels)
	f.scalars = append(f.scalars, scalar{labels: labels, value: v})
}

// Histogram emits an unlabeled histogram child. scale converts the
// histogram's raw units into exposition units (1e-9 turns nanosecond
// observations into the seconds Prometheus conventions expect; 1 keeps
// byte counts as bytes).
func (e *Emitter) Histogram(name, help string, scale float64, snap HistSnapshot) {
	e.HistogramL(name, help, "", scale, snap)
}

// HistogramL emits a histogram child under a label set rendered by Labels.
// Every child of one family must use the family's scale (the first one
// emitted wins; mixing scales within a family would render incomparable
// buckets, so it panics).
func (e *Emitter) HistogramL(name, help, labels string, scale float64, snap HistSnapshot) {
	f := e.familyFor(name, help, KindHistogram, scale)
	if f.scale != scale {
		panic(fmt.Sprintf("metrics: family %q emitted with scales %v and %v", name, f.scale, scale))
	}
	f.checkDup(labels)
	f.hists = append(f.hists, histSample{labels: labels, snap: snap})
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func (e *Emitter) writePrometheus(w io.Writer) error {
	var b strings.Builder
	for _, name := range e.order {
		f := e.fams[name]
		b.WriteString("# HELP ")
		b.WriteString(f.name)
		b.WriteByte(' ')
		escapeHelp(&b, f.help)
		b.WriteString("\n# TYPE ")
		b.WriteString(f.name)
		b.WriteByte(' ')
		b.WriteString(f.kind.String())
		b.WriteByte('\n')
		for _, s := range f.scalars {
			writeSample(&b, f.name, "", s.labels, formatFloat(s.value))
		}
		for _, h := range f.hists {
			writeHist(&b, f.name, h.labels, f.scale, h.snap)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func escapeHelp(b *strings.Builder, help string) {
	for i := 0; i < len(help); i++ {
		switch help[i] {
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(help[i])
		}
	}
}

// writeSample writes one `name[suffix]{labels} value` line.
func writeSample(b *strings.Builder, name, suffix, labels, value string) {
	b.WriteString(name)
	b.WriteString(suffix)
	if labels != "" {
		b.WriteByte('{')
		b.WriteString(labels)
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(value)
	b.WriteByte('\n')
}

// writeHist renders one histogram child: cumulative buckets from the
// first through the last non-empty band, a terminal +Inf bucket, then
// _sum and _count. Skipping the empty head and tail keeps a 65-band
// histogram readable; cumulative semantics make any bucket subset valid
// exposition.
func writeHist(b *strings.Builder, name, labels string, scale float64, s HistSnapshot) {
	lePrefix := labels
	if lePrefix != "" {
		lePrefix += ","
	}
	first, last := -1, -1
	for i, c := range s.Buckets {
		if c > 0 {
			if first < 0 {
				first = i
			}
			last = i
		}
	}
	var cum uint64
	if first >= 0 {
		for i := first; i <= last; i++ {
			cum += s.Buckets[i]
			le := formatFloat(float64(bucketUpperBound(i)) * scale)
			writeSample(b, name, "_bucket", lePrefix+`le="`+le+`"`, strconv.FormatUint(cum, 10))
		}
	}
	writeSample(b, name, "_bucket", lePrefix+`le="+Inf"`, strconv.FormatUint(s.Count, 10))
	writeSample(b, name, "_sum", labels, formatFloat(float64(s.Sum)*scale))
	writeSample(b, name, "_count", labels, strconv.FormatUint(s.Count, 10))
}

func (e *Emitter) writeJSON(w io.Writer) error {
	var b strings.Builder
	b.WriteString("{\n")
	for i, name := range e.order {
		if i > 0 {
			b.WriteString(",\n")
		}
		f := e.fams[name]
		b.WriteString("  ")
		b.WriteString(strconv.Quote(f.name))
		b.WriteString(": ")
		writeJSONFamily(&b, f)
	}
	b.WriteString("\n}\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// writeJSONFamily renders one family's value: a bare number for an
// unlabeled scalar, a {count,sum,p50,p99,max} object for an unlabeled
// histogram, and an object keyed by rendered label set when labeled.
func writeJSONFamily(b *strings.Builder, f *family) {
	unlabeled := len(f.scalars)+len(f.hists) == 1 &&
		(len(f.scalars) == 1 && f.scalars[0].labels == "" ||
			len(f.hists) == 1 && f.hists[0].labels == "")
	if unlabeled {
		if len(f.scalars) == 1 {
			b.WriteString(jsonNumber(f.scalars[0].value))
		} else {
			writeJSONHist(b, f.scale, f.hists[0].snap)
		}
		return
	}
	b.WriteByte('{')
	n := 0
	for _, s := range f.scalars {
		if n > 0 {
			b.WriteString(", ")
		}
		n++
		b.WriteString(strconv.Quote(s.labels))
		b.WriteString(": ")
		b.WriteString(jsonNumber(s.value))
	}
	for _, h := range f.hists {
		if n > 0 {
			b.WriteString(", ")
		}
		n++
		b.WriteString(strconv.Quote(h.labels))
		b.WriteString(": ")
		writeJSONHist(b, f.scale, h.snap)
	}
	b.WriteByte('}')
}

func writeJSONHist(b *strings.Builder, scale float64, s HistSnapshot) {
	p50, p99, max := s.Summary()
	fmt.Fprintf(b, `{"count":%d,"sum":%s,"p50":%s,"p99":%s,"max":%s}`,
		s.Count,
		jsonNumber(float64(s.Sum)*scale),
		jsonNumber(float64(p50)*scale),
		jsonNumber(float64(p99)*scale),
		jsonNumber(float64(max)*scale))
}

// jsonNumber formats a float for JSON (no Inf/NaN can reach here: counter
// and gauge inputs are finite, and histogram fields are scaled uint64s).
func jsonNumber(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// SortedLabelKeys returns the rendered label keys of a parsed JSON family
// object in sorted order — a convenience for tests and tooling that diff
// the JSON view against the exposition view.
func SortedLabelKeys(m map[string]any) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
