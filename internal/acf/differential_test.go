package acf

import (
	"math"
	"math/rand"
	"testing"
)

// Reference implementation of the pre-optimization hot path: hypothetical
// evaluation copies the five aggregate slices and applies the textbook
// branchy per-point update (the exact code this kernel replaced). The
// optimized path must reproduce it BIT FOR BIT — same floating-point
// operations in the same order — so compression results are unchanged.

type refAggs struct {
	n, L                    int
	lags                    []int // maintained lags (1..L when dense)
	sx, sxl, sxx, sx2, sx2l []float64
}

func refFromAggregates(a *Aggregates) *refAggs {
	r := &refAggs{
		n:    a.N,
		L:    a.L,
		sx:   append([]float64(nil), a.sx...),
		sxl:  append([]float64(nil), a.sxl...),
		sxx:  append([]float64(nil), a.sxx...),
		sx2:  append([]float64(nil), a.sx2...),
		sx2l: append([]float64(nil), a.sx2l...),
	}
	if a.lags == nil {
		for l := 1; l <= a.L; l++ {
			r.lags = append(r.lags, l)
		}
	} else {
		for _, l := range a.lags {
			r.lags = append(r.lags, int(l))
		}
	}
	return r
}

// refApplyTo is the original branchy Eq. 8/9 update loop (PR 2
// internal/acf/aggregates.go applyTo), generalized only to iterate the
// maintained lag set.
func (r *refAggs) refApplyTo(cur []float64, start int, deltas []float64, sx, sxl, sxx, sx2, sx2l []float64) {
	n := r.n
	m := len(deltas)
	for i, l := range r.lags {
		if l >= n {
			continue
		}
		var dsx, dsxl, dsxx, dsx2, dsx2l float64
		for j := 0; j < m; j++ {
			d := deltas[j]
			if d == 0 {
				continue
			}
			k := start + j
			x := cur[k]
			dsq := d * (2*x + d)
			if k <= n-1-l {
				dsx += d
				dsx2 += dsq
			}
			if k >= l {
				dsxl += d
				dsx2l += dsq
			}
			if k >= l {
				dsxx += d * cur[k-l]
			}
			if k+l < n {
				dsxx += d * cur[k+l]
				if j+l < m {
					dsxx += d * deltas[j+l]
				}
			}
		}
		sx[i] += dsx
		sxl[i] += dsxl
		sxx[i] += dsxx
		sx2[i] += dsx2
		sx2l[i] += dsx2l
	}
}

func (r *refAggs) apply(cur []float64, start int, deltas []float64) {
	r.refApplyTo(cur, start, deltas, r.sx, r.sxl, r.sxx, r.sx2, r.sx2l)
}

// hypothetical is the original copy-then-update evaluation.
func (r *refAggs) hypothetical(cur []float64, start int, deltas []float64) []float64 {
	sx := append([]float64(nil), r.sx...)
	sxl := append([]float64(nil), r.sxl...)
	sxx := append([]float64(nil), r.sxx...)
	sx2 := append([]float64(nil), r.sx2...)
	sx2l := append([]float64(nil), r.sx2l...)
	r.refApplyTo(cur, start, deltas, sx, sxl, sxx, sx2, sx2l)
	out := make([]float64, len(r.lags))
	for i, l := range r.lags {
		m := float64(r.n - l)
		out[i] = corrFromAggregates(m, sx[i], sxl[i], sxx[i], sx2[i], sx2l[i])
	}
	return out
}

func (r *refAggs) acf() []float64 {
	out := make([]float64, len(r.lags))
	for i, l := range r.lags {
		m := float64(r.n - l)
		out[i] = corrFromAggregates(m, r.sx[i], r.sxl[i], r.sxx[i], r.sx2[i], r.sx2l[i])
	}
	return out
}

func bitsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// TestHypotheticalBitIdenticalToReference fuzzes the optimized kernel
// against the reference implementation across boundary positions, gap
// widths, zero deltas, and lag-subset layouts, requiring exact bit
// equality of the hypothetical ACF and of the committed aggregates.
func TestHypotheticalBitIdenticalToReference(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 300; trial++ {
		n := 8 + rng.Intn(400)
		L := 1 + rng.Intn(64)
		xs := make([]float64, n)
		for i := range xs {
			switch trial % 3 {
			case 0:
				xs[i] = rng.NormFloat64() * 10
			case 1:
				xs[i] = 5 + 3*math.Sin(2*math.Pi*float64(i)/24) + 0.3*rng.NormFloat64()
			default:
				xs[i] = 42 // constant
			}
		}
		var agg *Aggregates
		if trial%4 == 3 {
			var lags []int
			for l := 1 + rng.Intn(L); l <= L; l += 1 + rng.Intn(8) {
				lags = append(lags, l)
			}
			if len(lags) == 0 {
				lags = []int{1}
			}
			agg = NewAggregatesLags(xs, lags)
		} else {
			agg = NewAggregates(xs, L)
		}
		ref := refFromAggregates(agg)
		sc := NewScratch(agg.Positions())
		cur := append([]float64(nil), xs...)
		for step := 0; step < 8; step++ {
			start := rng.Intn(n)
			width := 1 + rng.Intn(n-start)
			if width > 30 {
				width = 30
			}
			deltas := make([]float64, width)
			for i := range deltas {
				if rng.Intn(5) == 0 {
					deltas[i] = 0 // exercise the zero-delta skip
				} else {
					deltas[i] = rng.NormFloat64() * 4
				}
			}
			got := agg.HypotheticalACF(cur, start, deltas, sc)
			want := ref.hypothetical(cur, start, deltas)
			if !bitsEqual(got, want) {
				t.Fatalf("trial %d step %d (n=%d start=%d w=%d): hypothetical diverges from reference\n got %v\nwant %v",
					trial, step, n, start, width, got, want)
			}
			// Commit every other step so later evaluations run against
			// evolved aggregate state.
			if step%2 == 0 {
				agg.Apply(cur, start, deltas)
				ref.apply(cur, start, deltas)
				for i, d := range deltas {
					cur[start+i] += d
				}
				if !bitsEqual(agg.ACF(), ref.acf()) {
					t.Fatalf("trial %d step %d: committed ACF diverges from reference", trial, step)
				}
			}
		}
	}
}

// TestHypotheticalMAEMatchesSeparatePass checks the fused deviation
// accumulator against an explicit MAE over the returned vector.
func TestHypotheticalMAEMatchesSeparatePass(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	xs := make([]float64, 300)
	for i := range xs {
		xs[i] = math.Sin(float64(i)/7) + 0.2*rng.NormFloat64()
	}
	agg := NewAggregates(xs, 20)
	base := agg.ACF()
	sc := NewScratch(20)
	sc.SetBase(base)
	deltas := []float64{1.5, -0.5, 2, 0, -1}
	hyp := agg.HypotheticalACF(xs, 137, deltas, sc)
	var want float64
	for i := range hyp {
		want += math.Abs(hyp[i] - base[i])
	}
	if math.Float64bits(sc.DevSum()) != math.Float64bits(want) {
		t.Fatalf("fused MAE sum %v != separate pass %v", sc.DevSum(), want)
	}
}

// TestZeroAllocHypothetical locks in the zero-allocation property of the
// steady-state evaluation path.
func TestZeroAllocHypothetical(t *testing.T) {
	xs := seasonal(2000, 24, 0.5, 5)
	agg := NewAggregates(xs, 48)
	sc := NewScratch(48)
	deltas := []float64{1, -2, 0.5}
	if n := testing.AllocsPerRun(200, func() {
		agg.HypotheticalACF(xs, 900, deltas, sc)
	}); n != 0 {
		t.Fatalf("HypotheticalACF allocates %v per run, want 0", n)
	}
	if n := testing.AllocsPerRun(200, func() {
		agg.HypotheticalACF(xs, 1, deltas, sc) // boundary (segmented) path
	}); n != 0 {
		t.Fatalf("boundary HypotheticalACF allocates %v per run, want 0", n)
	}
}
