package acf

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func acfClose(a, b []float64, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Abs(a[i]-b[i]) > tol {
			return false
		}
	}
	return true
}

func TestAggregatesACFMatchesDirect(t *testing.T) {
	xs := seasonal(500, 24, 1.0, 11)
	agg := NewAggregates(xs, 30)
	if !acfClose(agg.ACF(), ACF(xs, 30), 1e-9) {
		t.Fatal("aggregate-form ACF != direct ACF")
	}
}

func TestAggregatesACFShortSeries(t *testing.T) {
	xs := []float64{1, 2}
	agg := NewAggregates(xs, 5)
	got := agg.ACF()
	want := ACF(xs, 5)
	if !acfClose(got, want, 1e-12) {
		t.Fatalf("short series ACF %v != %v", got, want)
	}
}

func TestApplySinglePointMatchesRecompute(t *testing.T) {
	xs := seasonal(300, 12, 0.5, 13)
	agg := NewAggregates(xs, 15)
	// Change one interior point.
	delta := 2.5
	agg.Apply(xs, 100, []float64{delta})
	xs[100] += delta
	if !acfClose(agg.ACF(), ACF(xs, 15), 1e-9) {
		t.Fatal("incremental single-point update diverges from recompute")
	}
}

func TestApplyBoundaryPoints(t *testing.T) {
	// Points within L of either boundary exercise the head/tail guards.
	xs := seasonal(100, 10, 0.3, 17)
	agg := NewAggregates(xs, 8)
	for _, idx := range []int{0, 1, 7, 92, 98, 99} {
		d := 1.0 + float64(idx)*0.1
		agg.Apply(xs, idx, []float64{d})
		xs[idx] += d
	}
	if !acfClose(agg.ACF(), ACF(xs, 8), 1e-9) {
		t.Fatal("boundary updates diverge from recompute")
	}
}

func TestApplyMultiPointGapMatchesRecompute(t *testing.T) {
	// A contiguous gap wider than L exercises the Eq. 9 cross term.
	xs := seasonal(400, 24, 0.5, 19)
	agg := NewAggregates(xs, 10)
	start := 150
	deltas := make([]float64, 30) // gap wider than L=10
	for i := range deltas {
		deltas[i] = math.Sin(float64(i)) * 3
	}
	agg.Apply(xs, start, deltas)
	for i, d := range deltas {
		xs[start+i] += d
	}
	if !acfClose(agg.ACF(), ACF(xs, 10), 1e-9) {
		t.Fatal("multi-point update diverges from recompute (cross-term bug?)")
	}
}

func TestApplyZeroDeltasNoop(t *testing.T) {
	xs := seasonal(200, 10, 0.5, 23)
	agg := NewAggregates(xs, 5)
	before := agg.ACF()
	agg.Apply(xs, 50, make([]float64, 20))
	if !acfClose(agg.ACF(), before, 0) {
		t.Fatal("zero deltas changed the aggregates")
	}
}

func TestHypotheticalDoesNotMutate(t *testing.T) {
	xs := seasonal(200, 10, 0.5, 29)
	agg := NewAggregates(xs, 6)
	sc := NewScratch(6)
	before := agg.ACF()
	hyp := agg.HypotheticalACF(xs, 80, []float64{5, -3, 2}, sc)
	if acfClose(hyp, before, 1e-15) {
		t.Fatal("hypothetical ACF should differ after a large change")
	}
	if !acfClose(agg.ACF(), before, 0) {
		t.Fatal("HypotheticalACF mutated the aggregates")
	}
}

func TestHypotheticalMatchesCommit(t *testing.T) {
	xs := seasonal(250, 12, 0.4, 31)
	agg := NewAggregates(xs, 8)
	sc := NewScratch(8)
	deltas := []float64{1, -2, 0.5, 3}
	hyp := append([]float64(nil), agg.HypotheticalACF(xs, 60, deltas, sc)...)
	agg.Apply(xs, 60, deltas)
	if !acfClose(hyp, agg.ACF(), 1e-12) {
		t.Fatal("hypothetical and committed ACF disagree")
	}
}

func TestCloneIndependence(t *testing.T) {
	xs := seasonal(100, 10, 0.5, 37)
	agg := NewAggregates(xs, 4)
	cl := agg.Clone()
	agg.Apply(xs, 50, []float64{10})
	if acfClose(agg.ACF(), cl.ACF(), 1e-15) {
		t.Fatal("clone shares state with original")
	}
}

// Property: a long random sequence of random contiguous updates keeps the
// incremental aggregates consistent with a from-scratch recompute. This is
// the central invariant CAMEO's correctness rests on (paper §4.2).
func TestIncrementalConsistencyProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 50 + rng.Intn(200)
		L := 1 + rng.Intn(20)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 10
		}
		agg := NewAggregates(xs, L)
		for step := 0; step < 25; step++ {
			start := rng.Intn(n)
			width := 1 + rng.Intn(n-start)
			if width > 40 {
				width = 40
			}
			deltas := make([]float64, width)
			for i := range deltas {
				deltas[i] = rng.NormFloat64() * 5
			}
			agg.Apply(xs, start, deltas)
			for i, d := range deltas {
				xs[start+i] += d
			}
		}
		return acfClose(agg.ACF(), ACF(xs, L), 1e-7)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: ACF values always stay within [-1, 1] (it is a correlation).
func TestACFRangeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(500)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 100
		}
		for _, v := range ACF(xs, 20) {
			if v < -1-1e-9 || v > 1+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkNewAggregates10k(b *testing.B) {
	xs := seasonal(10000, 48, 0.5, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NewAggregates(xs, 48)
	}
}

func BenchmarkHypotheticalACF(b *testing.B) {
	xs := seasonal(10000, 48, 0.5, 1)
	agg := NewAggregates(xs, 48)
	sc := NewScratch(48)
	deltas := []float64{1.5}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		agg.HypotheticalACF(xs, 5000, deltas, sc)
	}
}
