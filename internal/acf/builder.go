package acf

// Builder accumulates the dense lag-1..L aggregates of a series one sample
// at a time, in the exact floating-point operation order of the batch
// direct extractor (newAggregatesDirect): the running total/total2 and each
// per-lag cross-product sum grow in ascending sample order, and the prefix
// sums are snapshotted as the first L samples arrive. The suffix sums —
// which the batch extractor walks backwards from the end — are deferred to
// finalize time, where the same backwards loop runs over the (by then
// known) series tail. The result is bit-identical to NewAggregates on the
// same samples, which is what lets the streaming CAMEO engine spread the
// O(n*L) extraction across point arrivals without perturbing a single
// downstream impact evaluation.
//
// Cost is O(L) per sample; a Builder is reusable via Reset and performs no
// allocation after construction (finalize allocates the one Aggregates the
// batch path would have allocated anyway).
type Builder struct {
	// L is the dense lag depth the builder accumulates for.
	L int

	k      int     // samples consumed so far
	total  float64 // running sum of xs[0..k)
	total2 float64 // running sum of squares

	sxx []float64 // sxx[l-1] = sum_{t} xs[t]*xs[t+l], t ascending

	// Prefix snapshots: pref[l] = xs[0]+...+xs[l-1] accumulated in the
	// batch extractor's chain order (pref[l] = pref[l-1] + xs[l-1]).
	pref  []float64
	pref2 []float64

	ring []float64 // last L samples, ring[j%L] = xs[j]
}

// NewBuilder returns a builder for dense lags 1..L (L >= 1).
func NewBuilder(L int) *Builder {
	if L < 1 {
		panic("acf: Builder needs L >= 1")
	}
	return &Builder{
		L:     L,
		sxx:   make([]float64, L),
		pref:  make([]float64, L+1),
		pref2: make([]float64, L+1),
		ring:  make([]float64, L),
	}
}

// Reset re-arms the builder for a new series.
func (b *Builder) Reset() {
	b.k = 0
	b.total, b.total2 = 0, 0
	for i := range b.sxx {
		b.sxx[i] = 0
	}
	// pref/ring entries are overwritten before they are read.
}

// Len reports how many samples have been consumed.
func (b *Builder) Len() int { return b.k }

// Append consumes the next samples of the series, in order.
func (b *Builder) Append(xs ...float64) {
	L := b.L
	for _, x := range xs {
		k := b.k
		b.total += x
		b.total2 += x * x
		if k < L {
			b.pref[k+1] = b.pref[k] + x
			b.pref2[k+1] = b.pref2[k] + x*x
		}
		m := L
		if k < m {
			m = k
		}
		for l := 1; l <= m; l++ {
			b.sxx[l-1] += b.ring[(k-l)%L] * x
		}
		b.ring[k%L] = x
		b.k = k + 1
	}
}

// finalize materializes the aggregates. xs must be the full series the
// builder consumed (len(xs) == Len()); only its last L samples are read,
// for the backwards suffix accumulation the batch extractor performs.
func (b *Builder) finalize(xs []float64) *Aggregates {
	n := len(xs)
	if n != b.k {
		panic("acf: Builder.finalize: series length does not match samples consumed")
	}
	a := newAggregatesShell(n, b.L, nil)
	var suffix, suffix2 float64
	for l := 1; l <= b.L; l++ {
		if l >= n {
			// Fewer than one pair: all aggregates stay zero.
			break
		}
		i := l - 1
		suffix += xs[n-l]
		suffix2 += xs[n-l] * xs[n-l]
		a.sx[i] = b.total - suffix
		a.sx2[i] = b.total2 - suffix2
		a.sxl[i] = b.total - b.pref[l]
		a.sx2l[i] = b.total2 - b.pref2[l]
		a.sxx[i] = b.sxx[i]
	}
	return a
}

// NewDirectTrackerFromBuilder returns a direct tracker whose aggregates
// come from the incrementally accumulated builder sums, or nil when the
// batch constructor would not take the direct extraction path for this
// shape (FFT-worthy n/L combinations) — callers must then fall back to
// NewDirectTracker on the full series for bit-identical results.
func NewDirectTrackerFromBuilder(b *Builder, xs []float64) *DirectTracker {
	if b == nil || b.Len() != len(xs) || fftWorthIt(len(xs), b.L) {
		return nil
	}
	return &DirectTracker{agg: b.finalize(xs)}
}
