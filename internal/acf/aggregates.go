package acf

import "math"

// Aggregates maintains the five basic per-lag aggregates of paper Eq. 7 over
// a fixed-length series, enabling O(P) (single point) or O(P*m) (m-point
// gap) incremental recomputation of the ACF under value updates (paper Eq. 8
// and Eq. 9) instead of O(n*L) from scratch, where P is the number of
// maintained lag positions.
//
// Two maintenance shapes exist:
//
//   - dense (lags == nil): positions 0..L-1 hold lags 1..L, the paper's
//     default;
//   - compact (lags != nil): position i holds lags[i], a sorted set of
//     selected lags (Options.LagSubset, paper §5.5). Per-update cost drops
//     from O(L*m) to O(|lags|*m).
//
// The reconstruction of a line-simplified series always keeps its original
// length n — removing a point changes interior *values* via interpolation,
// never the length — so N is fixed for the lifetime of the struct.
type Aggregates struct {
	N int // series length (fixed)
	L int // largest maintained lag

	lags []int32 // maintained lags, ascending; nil = dense 1..L

	sx   []float64 // sum of head x_t, t in [0, n-l)
	sxl  []float64 // sum of tail x_{t+l}, t in [0, n-l)
	sxx  []float64 // sum of x_t * x_{t+l}
	sx2  []float64 // sum of head x_t^2
	sx2l []float64 // sum of tail x_{t+l}^2
}

// Positions returns the number of maintained lag positions P (L for dense
// aggregates, the subset size for compact ones).
func (a *Aggregates) Positions() int { return len(a.sx) }

// MaintainedLags returns the maintained lags in position order: 1..L for
// dense aggregates, the selected subset for compact ones. The returned slice
// must not be modified.
func (a *Aggregates) MaintainedLags() []int32 { return a.lags }

// newAggregatesShell allocates the aggregate arrays for a lag layout.
// lags, when non-nil, must be ascending, unique, and >= 1.
func newAggregatesShell(n, L int, lags []int32) *Aggregates {
	p := L
	if lags != nil {
		p = len(lags)
		L = 0
		if p > 0 {
			L = int(lags[p-1])
		}
	}
	return &Aggregates{
		N:    n,
		L:    L,
		lags: lags,
		sx:   make([]float64, p),
		sxl:  make([]float64, p),
		sxx:  make([]float64, p),
		sx2:  make([]float64, p),
		sx2l: make([]float64, p),
	}
}

// toLags32 validates and converts a sorted lag subset.
func toLags32(lags []int) []int32 {
	out := make([]int32, len(lags))
	prev := 0
	for i, l := range lags {
		if l <= prev {
			panic("acf: lag subset must be ascending, unique, and positive")
		}
		out[i] = int32(l)
		prev = l
	}
	return out
}

// NewAggregates extracts the dense aggregates from xs for lags 1..L in
// O(n*L) (paper function ExtractAggregates).
func NewAggregates(xs []float64, L int) *Aggregates {
	return newAggregatesDirect(xs, L, nil)
}

// NewAggregatesLags extracts compact aggregates for the given lag subset
// (ascending, unique, >= 1) in O(n*|lags|).
func NewAggregatesLags(xs []float64, lags []int) *Aggregates {
	return newAggregatesDirect(xs, 0, toLags32(lags))
}

func newAggregatesDirect(xs []float64, L int, lags []int32) *Aggregates {
	n := len(xs)
	a := newAggregatesShell(n, L, lags)
	// Head/tail sums derive from total minus a suffix/prefix; the cross
	// products need the per-lag pass.
	var total, total2 float64
	for _, x := range xs {
		total += x
		total2 += x * x
	}
	var suffix, suffix2, prefix, prefix2 float64
	if lags == nil {
		for l := 1; l <= L; l++ {
			if l >= n {
				// Fewer than one pair: all aggregates stay zero.
				break
			}
			i := l - 1
			suffix += xs[n-l]
			suffix2 += xs[n-l] * xs[n-l]
			prefix += xs[l-1]
			prefix2 += xs[l-1] * xs[l-1]
			a.sx[i] = total - suffix
			a.sx2[i] = total2 - suffix2
			a.sxl[i] = total - prefix
			a.sx2l[i] = total2 - prefix2
			var sxx float64
			for t := 0; t+l < n; t++ {
				sxx += xs[t] * xs[t+l]
			}
			a.sxx[i] = sxx
		}
		return a
	}
	// Compact: the prefix/suffix accumulators still walk every lag up to the
	// largest selected one (O(L) additions, preserving the dense summation
	// order bit-for-bit), but the O(n) cross-product pass runs only for
	// selected lags.
	p := 0
	for l := 1; l <= a.L && l < n; l++ {
		suffix += xs[n-l]
		suffix2 += xs[n-l] * xs[n-l]
		prefix += xs[l-1]
		prefix2 += xs[l-1] * xs[l-1]
		if p < len(lags) && int(lags[p]) == l {
			a.sx[p] = total - suffix
			a.sx2[p] = total2 - suffix2
			a.sxl[p] = total - prefix
			a.sx2l[p] = total2 - prefix2
			var sxx float64
			for t := 0; t+l < n; t++ {
				sxx += xs[t] * xs[t+l]
			}
			a.sxx[p] = sxx
			p++
		}
	}
	return a
}

// ACF evaluates paper Eq. 2 from the current aggregates into a fresh slice
// (position order: lags 1..L for dense aggregates, the subset for compact).
func (a *Aggregates) ACF() []float64 {
	out := make([]float64, len(a.sx))
	a.ACFInto(out)
	return out
}

// ACFInto evaluates the ACF into dst, which must have length Positions().
func (a *Aggregates) ACFInto(dst []float64) {
	if a.lags == nil {
		for i := range a.sx {
			m := float64(a.N - (i + 1))
			dst[i] = corrFromAggregates(m, a.sx[i], a.sxl[i], a.sxx[i], a.sx2[i], a.sx2l[i])
		}
		return
	}
	for i, l := range a.lags {
		m := float64(a.N - int(l))
		dst[i] = corrFromAggregates(m, a.sx[i], a.sxl[i], a.sxx[i], a.sx2[i], a.sx2l[i])
	}
}

// lagDeltas computes the Eq. 8/9 aggregate deltas of a contiguous value
// change for ONE lag l, returning the five per-lag accumulators. cur holds
// the values *before* the change.
//
// The boundary conditions of Eq. 8/9 — head membership k+l < n, tail
// membership k >= l, both-ends pair j+l < m — are monotone in j, so the
// delta range splits into at most four runs with a constant condition set.
// The branchy per-point loop of the textbook form becomes a boundary
// prologue/epilogue around a branch-free interior whose accumulators stay
// in registers. For every accumulator the addend sequence (ascending j;
// within one j the cross terms in tail, head, pair order) is exactly that
// of the branchy form, so the results are bit-identical.
func lagDeltas(cur []float64, n, start int, deltas []float64, l int) (dsx, dsxl, dsxx, dsx2, dsx2l float64) {
	m := len(deltas)
	if l <= start && l <= n-start-m {
		// Interior fast path (the steady-state case: the changed block sits
		// at least a lag away from both series ends): every delta is both a
		// head and a tail member, so the only split left is the pair cut.
		p1 := max(m-l, 0)
		for j := 0; j < p1; j++ {
			d := deltas[j]
			k := start + j
			x := cur[k]
			dsq := d * (2*x + d)
			dsx += d
			dsx2 += dsq
			dsxl += d
			dsx2l += dsq
			dsxx += d * cur[k-l]
			dsxx += d * cur[k+l]
			dsxx += d * deltas[j+l]
		}
		for j := p1; j < m; j++ {
			d := deltas[j]
			k := start + j
			x := cur[k]
			dsq := d * (2*x + d)
			dsx += d
			dsx2 += dsq
			dsxl += d
			dsx2l += dsq
			dsxx += d * cur[k-l]
			dsxx += d * cur[k+l]
		}
		return
	}
	// j-range limits of the three conditions, clamped to [0, m].
	jTail0 := min(max(l-start, 0), m)   // j >= jTail0: k >= l
	jHead1 := min(max(n-l-start, 0), m) // j <  jHead1: k+l < n
	jPair1 := min(jHead1, max(m-l, 0))  // j <  jPair1: pair term too
	// Sort the three cut points (3-element sorting network); segments
	// between consecutive cuts have a constant condition set.
	c0, c1, c2 := jTail0, jPair1, jHead1
	if c0 > c1 {
		c0, c1 = c1, c0
	}
	if c1 > c2 {
		c1, c2 = c2, c1
	}
	if c0 > c1 {
		c0, c1 = c1, c0
	}
	lo := 0
	for _, hi := range [4]int{c0, c1, c2, m} {
		if hi <= lo {
			continue
		}
		head := hi <= jHead1
		tail := lo >= jTail0
		pair := hi <= jPair1
		switch {
		case head && tail && pair:
			for j := lo; j < hi; j++ {
				d := deltas[j]
				k := start + j
				x := cur[k]
				dsq := d * (2*x + d) // (x+d)^2 - x^2
				dsx += d
				dsx2 += dsq
				dsxl += d
				dsx2l += dsq
				dsxx += d * cur[k-l]
				dsxx += d * cur[k+l]
				dsxx += d * deltas[j+l]
			}
		case head && tail:
			for j := lo; j < hi; j++ {
				d := deltas[j]
				k := start + j
				x := cur[k]
				dsq := d * (2*x + d)
				dsx += d
				dsx2 += dsq
				dsxl += d
				dsx2l += dsq
				dsxx += d * cur[k-l]
				dsxx += d * cur[k+l]
			}
		case head && pair:
			for j := lo; j < hi; j++ {
				d := deltas[j]
				k := start + j
				x := cur[k]
				dsx += d
				dsx2 += d * (2*x + d)
				dsxx += d * cur[k+l]
				dsxx += d * deltas[j+l]
			}
		case head:
			for j := lo; j < hi; j++ {
				d := deltas[j]
				k := start + j
				x := cur[k]
				dsx += d
				dsx2 += d * (2*x + d)
				dsxx += d * cur[k+l]
			}
		case tail:
			for j := lo; j < hi; j++ {
				d := deltas[j]
				k := start + j
				x := cur[k]
				dsxl += d
				dsx2l += d * (2*x + d)
				dsxx += d * cur[k-l]
			}
		}
		lo = hi
	}
	return
}

// Apply commits a contiguous block of value changes: the reconstruction
// values at indices [start, start+len(deltas)) change by deltas. cur must
// hold the reconstruction values *before* the change (the update rules of
// Eq. 8/9 are expressed in terms of old values); the caller updates cur
// afterwards.
func (a *Aggregates) Apply(cur []float64, start int, deltas []float64) {
	n := a.N
	if a.lags == nil {
		for i := range a.sx {
			l := i + 1
			if l >= n {
				break
			}
			dsx, dsxl, dsxx, dsx2, dsx2l := lagDeltas(cur, n, start, deltas, l)
			a.sx[i] += dsx
			a.sxl[i] += dsxl
			a.sxx[i] += dsxx
			a.sx2[i] += dsx2
			a.sx2l[i] += dsx2l
		}
		return
	}
	for i, l32 := range a.lags {
		l := int(l32)
		if l >= n {
			break
		}
		dsx, dsxl, dsxx, dsx2, dsx2l := lagDeltas(cur, n, start, deltas, l)
		a.sx[i] += dsx
		a.sxl[i] += dsxl
		a.sxx[i] += dsxx
		a.sx2[i] += dsx2
		a.sx2l[i] += dsx2l
	}
}

// Scratch holds reusable buffers for hypothetical (non-mutating) ACF
// evaluation. A Scratch must not be shared between goroutines; allocate one
// per worker.
type Scratch struct {
	acf     []float64
	base    []float64 // MAE reference vector (zeros unless SetBase is called)
	dev     float64   // sum |acf_i - base_i| of the last HypotheticalACF
	wdeltas []float64 // window-delta buffer (WindowTracker only)
}

// NewScratch allocates scratch buffers for a tracker with p lag positions.
func NewScratch(p int) *Scratch {
	return &Scratch{acf: make([]float64, p), base: make([]float64, p)}
}

// SetBase installs the reference vector the kernel accumulates the MAE
// deviation against: after every HypotheticalACF call, DevSum reports
// sum_i |acf_i - base_i| with the exact summation order of stats.MAE. The
// engine's impact evaluation reads it instead of re-scanning the ACF, which
// keeps the default MAE measure to a single pass. base must have length
// Positions() and is retained by reference.
func (sc *Scratch) SetBase(base []float64) { sc.base = base }

// DevSum returns sum_i |acf_i - base_i| of the last HypotheticalACF call.
func (sc *Scratch) DevSum() float64 { return sc.dev }

// HypotheticalACF evaluates the ACF the series would have after applying the
// given contiguous change, without mutating the aggregates. The returned
// slice aliases sc.acf and is valid until the next call with the same sc.
// Unlike the textbook formulation, no aggregate state is copied anywhere:
// each lag's delta accumulators are computed in registers and evaluated
// directly against the live aggregates, which is bit-identical to
// copy-then-update (both reduce to the same single addition per aggregate).
func (a *Aggregates) HypotheticalACF(cur []float64, start int, deltas []float64, sc *Scratch) []float64 {
	n := a.N
	m := len(deltas)
	// Lags up to lFast take the fused interior path below; keep it in sync
	// with lagDeltas's interior condition (l <= start && l <= n-start-m).
	lFast := min(start, n-start-m)
	// On the interior path every delta is both a head and a tail member, so
	// the dsx/dsxl and dsx2/dsx2l accumulators receive the same addend
	// sequence for EVERY lag — sum them once here instead of per lag. Only
	// the cross products remain lag-dependent.
	var ds, dsq2 float64
	if lFast >= 1 {
		for j := 0; j < m; j++ {
			d := deltas[j]
			x := cur[start+j]
			ds += d
			dsq2 += d * (2*x + d) // (x+d)^2 - x^2
		}
	}
	if a.lags == nil {
		// Interior lags run pairwise, fused and fully inlined: per lag only
		// the cross products dsxx are computed — a serial float-add chain,
		// so pairing lags runs two independent chains through the shared
		// j-loop (each lag's addend sequence is untouched, results stay
		// bit-identical) — and the Eq. 2 correlation (the body of
		// corrFromAggregates, replicated because a call per lag per
		// candidate would dominate) is evaluated directly against the live
		// aggregates, with the MAE deviation against sc.base accumulated in
		// the same pass. Keep the arithmetic in sync with acf.go.
		nFast := min(max(lFast, 0), len(a.sx))
		acfv := sc.acf[:nFast]
		sxv := a.sx[:nFast]
		sxlv := a.sxl[:nFast]
		sxxv := a.sxx[:nFast]
		sx2v := a.sx2[:nFast]
		sx2lv := a.sx2l[:nFast]
		bv := sc.base[:nFast]
		var dev float64
		nf := float64(n)
		if m == 1 && nFast > 0 {
			// Single-point gap (a third of steady-state evaluations): the
			// cross products collapse to two loads walking outward from the
			// changed point; pairing still overlaps the sqrt/div units.
			d := deltas[0]
			i := 0
			for ; i+1 < nFast; i += 2 {
				la := i + 1
				lb := i + 2
				dsxxA := d*cur[start-la] + d*cur[start+la]
				dsxxB := d*cur[start-lb] + d*cur[start+lb]
				mfA := nf - float64(i+1)
				sxA := sxv[i] + ds
				sxlA := sxlv[i] + ds
				sxxA := sxxv[i] + dsxxA
				sx2A := sx2v[i] + dsq2
				sx2lA := sx2lv[i] + dsq2
				numA := mfA*sxxA - sxA*sxlA
				paA := mfA * sx2A
				qaA := sxA * sxA
				vaA := paA - qaA
				pbA := mfA * sx2lA
				qbA := sxlA * sxlA
				vbA := pbA - qbA
				var rA float64
				if vaA <= tiny+1e-10*(paA+qaA) || vbA <= tiny+1e-10*(pbA+qbA) {
					rA = 0
				} else {
					rA = numA / math.Sqrt(vaA*vbA)
					if rA > 1 {
						rA = 1
					} else if rA < -1 {
						rA = -1
					}
				}
				dev += math.Abs(rA - bv[i])
				acfv[i] = rA

				mfB := nf - float64(i+1+1)
				sxB := sxv[i+1] + ds
				sxlB := sxlv[i+1] + ds
				sxxB := sxxv[i+1] + dsxxB
				sx2B := sx2v[i+1] + dsq2
				sx2lB := sx2lv[i+1] + dsq2
				numB := mfB*sxxB - sxB*sxlB
				paB := mfB * sx2B
				qaB := sxB * sxB
				vaB := paB - qaB
				pbB := mfB * sx2lB
				qbB := sxlB * sxlB
				vbB := pbB - qbB
				var rB float64
				if vaB <= tiny+1e-10*(paB+qaB) || vbB <= tiny+1e-10*(pbB+qbB) {
					rB = 0
				} else {
					rB = numB / math.Sqrt(vaB*vbB)
					if rB > 1 {
						rB = 1
					} else if rB < -1 {
						rB = -1
					}
				}
				dev += math.Abs(rB - bv[i+1])
				acfv[i+1] = rB

			}
			for ; i < nFast; i++ {
				l := i + 1
				dsxx := d*cur[start-l] + d*cur[start+l]
				r := a.corrDelta(i, n-(i+1), ds, dsq2, dsxx)
				dev += math.Abs(r - bv[i])
				acfv[i] = r

			}
		} else {
			i := 0
			for ; i+1 < nFast; i += 2 {
				la := i + 1
				lb := i + 2
				var dsxxA, dsxxB float64
				p1a := max(m-la, 0)
				p1b := max(m-lb, 0) // p1b <= p1a
				// Shifted views: cmX[j] = cur[start+j-lX], cpX[j] =
				// cur[start+j+lX], dpX[j] = deltas[j+lX]; in-range by the
				// interior condition.
				cmA := cur[start-la : start-la+m]
				cpA := cur[start+la : start+la+m]
				cmB := cur[start-lb : start-lb+m]
				cpB := cur[start+lb : start+lb+m]
				for j := 0; j < p1b; j++ {
					d := deltas[j]
					dsxxA += d * cmA[j]
					dsxxA += d * cpA[j]
					dsxxA += d * deltas[j+la]
					dsxxB += d * cmB[j]
					dsxxB += d * cpB[j]
					dsxxB += d * deltas[j+lb]
				}
				for j := p1b; j < p1a; j++ { // at most one iteration
					d := deltas[j]
					dsxxA += d * cmA[j]
					dsxxA += d * cpA[j]
					dsxxA += d * deltas[j+la]
					dsxxB += d * cmB[j]
					dsxxB += d * cpB[j]
				}
				for j := p1a; j < m; j++ {
					d := deltas[j]
					dsxxA += d * cmA[j]
					dsxxA += d * cpA[j]
					dsxxB += d * cmB[j]
					dsxxB += d * cpB[j]
				}
				mfA := nf - float64(i+1)
				sxA := sxv[i] + ds
				sxlA := sxlv[i] + ds
				sxxA := sxxv[i] + dsxxA
				sx2A := sx2v[i] + dsq2
				sx2lA := sx2lv[i] + dsq2
				numA := mfA*sxxA - sxA*sxlA
				paA := mfA * sx2A
				qaA := sxA * sxA
				vaA := paA - qaA
				pbA := mfA * sx2lA
				qbA := sxlA * sxlA
				vbA := pbA - qbA
				var rA float64
				if vaA <= tiny+1e-10*(paA+qaA) || vbA <= tiny+1e-10*(pbA+qbA) {
					rA = 0
				} else {
					rA = numA / math.Sqrt(vaA*vbA)
					if rA > 1 {
						rA = 1
					} else if rA < -1 {
						rA = -1
					}
				}
				dev += math.Abs(rA - bv[i])
				acfv[i] = rA

				mfB := nf - float64(i+1+1)
				sxB := sxv[i+1] + ds
				sxlB := sxlv[i+1] + ds
				sxxB := sxxv[i+1] + dsxxB
				sx2B := sx2v[i+1] + dsq2
				sx2lB := sx2lv[i+1] + dsq2
				numB := mfB*sxxB - sxB*sxlB
				paB := mfB * sx2B
				qaB := sxB * sxB
				vaB := paB - qaB
				pbB := mfB * sx2lB
				qbB := sxlB * sxlB
				vbB := pbB - qbB
				var rB float64
				if vaB <= tiny+1e-10*(paB+qaB) || vbB <= tiny+1e-10*(pbB+qbB) {
					rB = 0
				} else {
					rB = numB / math.Sqrt(vaB*vbB)
					if rB > 1 {
						rB = 1
					} else if rB < -1 {
						rB = -1
					}
				}
				dev += math.Abs(rB - bv[i+1])
				acfv[i+1] = rB

			}
			for ; i < nFast; i++ {
				l := i + 1
				var dsxx float64
				p1 := max(m-l, 0)
				for j := 0; j < p1; j++ {
					d := deltas[j]
					k := start + j
					dsxx += d * cur[k-l]
					dsxx += d * cur[k+l]
					dsxx += d * deltas[j+l]
				}
				for j := p1; j < m; j++ {
					d := deltas[j]
					k := start + j
					dsxx += d * cur[k-l]
					dsxx += d * cur[k+l]
				}
				r := a.corrDelta(i, n-(i+1), ds, dsq2, dsxx)
				dev += math.Abs(r - bv[i])
				acfv[i] = r

			}
		}
		for i := nFast; i < len(a.sx); i++ {
			l := i + 1
			var r float64
			if l >= n {
				// No pairs at this lag: the deltas cannot change it.
				mf := float64(n - l)
				r = corrFromAggregates(mf, a.sx[i], a.sxl[i], a.sxx[i], a.sx2[i], a.sx2l[i])
			} else {
				dsx, dsxl, dsxx, dsx2, dsx2l := lagDeltas(cur, n, start, deltas, l)
				mf := float64(n - l)
				r = corrFromAggregates(mf, a.sx[i]+dsx, a.sxl[i]+dsxl, a.sxx[i]+dsxx, a.sx2[i]+dsx2, a.sx2l[i]+dsx2l)
			}
			dev += math.Abs(r - sc.base[i])
			sc.acf[i] = r
		}
		sc.dev = dev
		return sc.acf
	}
	var dev float64
	for i, l32 := range a.lags {
		l := int(l32)
		var r float64
		switch {
		case l <= lFast:
			var dsxx float64
			p1 := max(m-l, 0)
			for j := 0; j < p1; j++ {
				d := deltas[j]
				k := start + j
				dsxx += d * cur[k-l]
				dsxx += d * cur[k+l]
				dsxx += d * deltas[j+l]
			}
			for j := p1; j < m; j++ {
				d := deltas[j]
				k := start + j
				dsxx += d * cur[k-l]
				dsxx += d * cur[k+l]
			}
			r = a.corrDelta(i, n-l, ds, dsq2, dsxx)
		case l >= n:
			r = corrFromAggregates(float64(n-l), a.sx[i], a.sxl[i], a.sxx[i], a.sx2[i], a.sx2l[i])
		default:
			dsx, dsxl, dsxx, dsx2, dsx2l := lagDeltas(cur, n, start, deltas, l)
			r = corrFromAggregates(float64(n-l), a.sx[i]+dsx, a.sxl[i]+dsxl, a.sxx[i]+dsxx, a.sx2[i]+dsx2, a.sx2l[i]+dsx2l)
		}
		dev += math.Abs(r - sc.base[i])
		sc.acf[i] = r
	}
	sc.dev = dev
	return sc.acf
}

// corrDelta evaluates the Eq. 2 correlation for position i after adding the
// interior-path delta accumulators to the live aggregates (dsx == dsxl == ds
// and dsx2 == dsx2l == dsq2 there, since head and tail membership coincide).
// This is corrFromAggregates(float64(mi), sx+ds, sxl+ds, sxx+dsxx, sx2+dsq2,
// sx2l+dsq2) with the variance products reused by the zero-variance guard —
// keep the arithmetic in sync with acf.go.
func (a *Aggregates) corrDelta(i, mi int, ds, dsq2, dsxx float64) float64 {
	mf := float64(mi)
	sx := a.sx[i] + ds
	sxl := a.sxl[i] + ds
	sxx := a.sxx[i] + dsxx
	sx2 := a.sx2[i] + dsq2
	sx2l := a.sx2l[i] + dsq2
	num := mf*sxx - sx*sxl
	pa := mf * sx2
	qa := sx * sx
	va := pa - qa
	pb := mf * sx2l
	qb := sxl * sxl
	vb := pb - qb
	if va <= tiny+1e-10*(pa+qa) || vb <= tiny+1e-10*(pb+qb) {
		return 0
	}
	r := num / math.Sqrt(va*vb)
	if r > 1 {
		r = 1
	} else if r < -1 {
		r = -1
	}
	return r
}

// Clone returns an independent deep copy of the aggregates.
func (a *Aggregates) Clone() *Aggregates {
	return &Aggregates{
		N:    a.N,
		L:    a.L,
		lags: a.lags, // immutable once built
		sx:   append([]float64(nil), a.sx...),
		sxl:  append([]float64(nil), a.sxl...),
		sxx:  append([]float64(nil), a.sxx...),
		sx2:  append([]float64(nil), a.sx2...),
		sx2l: append([]float64(nil), a.sx2l...),
	}
}
