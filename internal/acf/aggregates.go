package acf

// Aggregates maintains the five basic per-lag aggregates of paper Eq. 7 for
// lags 1..L over a fixed-length series, enabling O(L) (single point) or
// O(m*L) (m-point gap) incremental recomputation of the ACF under value
// updates (paper Eq. 8 and Eq. 9) instead of O(n*L) from scratch.
//
// The reconstruction of a line-simplified series always keeps its original
// length n — removing a point changes interior *values* via interpolation,
// never the length — so N is fixed for the lifetime of the struct.
//
// Index convention: slice index i holds lag l = i+1.
type Aggregates struct {
	N int // series length (fixed)
	L int // max lag

	sx   []float64 // sum of head x_t, t in [0, n-l)
	sxl  []float64 // sum of tail x_{t+l}, t in [0, n-l)
	sxx  []float64 // sum of x_t * x_{t+l}
	sx2  []float64 // sum of head x_t^2
	sx2l []float64 // sum of tail x_{t+l}^2
}

// NewAggregates extracts the aggregates from xs for lags 1..L in O(n*L)
// (paper function ExtractAggregates).
func NewAggregates(xs []float64, L int) *Aggregates {
	n := len(xs)
	a := &Aggregates{
		N:    n,
		L:    L,
		sx:   make([]float64, L),
		sxl:  make([]float64, L),
		sxx:  make([]float64, L),
		sx2:  make([]float64, L),
		sx2l: make([]float64, L),
	}
	// Head/tail sums derive from total minus a suffix/prefix; the cross
	// products need the per-lag pass.
	var total, total2 float64
	for _, x := range xs {
		total += x
		total2 += x * x
	}
	var suffix, suffix2, prefix, prefix2 float64
	for l := 1; l <= L; l++ {
		i := l - 1
		if l >= n {
			// Fewer than one pair: all aggregates stay zero.
			continue
		}
		suffix += xs[n-l]
		suffix2 += xs[n-l] * xs[n-l]
		prefix += xs[l-1]
		prefix2 += xs[l-1] * xs[l-1]
		a.sx[i] = total - suffix
		a.sx2[i] = total2 - suffix2
		a.sxl[i] = total - prefix
		a.sx2l[i] = total2 - prefix2
		var sxx float64
		for t := 0; t+l < n; t++ {
			sxx += xs[t] * xs[t+l]
		}
		a.sxx[i] = sxx
	}
	return a
}

// ACF evaluates paper Eq. 2 from the current aggregates into a fresh slice
// (lags 1..L).
func (a *Aggregates) ACF() []float64 {
	out := make([]float64, a.L)
	a.ACFInto(out)
	return out
}

// ACFInto evaluates the ACF into dst, which must have length L.
func (a *Aggregates) ACFInto(dst []float64) {
	for l := 1; l <= a.L; l++ {
		i := l - 1
		m := float64(a.N - l)
		dst[i] = corrFromAggregates(m, a.sx[i], a.sxl[i], a.sxx[i], a.sx2[i], a.sx2l[i])
	}
}

// Apply commits a contiguous block of value changes: the reconstruction
// values at indices [start, start+len(deltas)) change by deltas. cur must
// hold the reconstruction values *before* the change (the update rules of
// Eq. 8/9 are expressed in terms of old values); the caller updates cur
// afterwards. Zero deltas are skipped.
func (a *Aggregates) Apply(cur []float64, start int, deltas []float64) {
	a.applyTo(cur, start, deltas, a.sx, a.sxl, a.sxx, a.sx2, a.sx2l)
}

// applyTo applies the Eq. 8/9 update rules against the given aggregate
// slices (either the live ones or a scratch copy).
func (a *Aggregates) applyTo(cur []float64, start int, deltas []float64, sx, sxl, sxx, sx2, sx2l []float64) {
	n := a.N
	m := len(deltas)
	for l := 1; l <= a.L; l++ {
		i := l - 1
		if l >= n {
			continue
		}
		var dsx, dsxl, dsxx, dsx2, dsx2l float64
		for j := 0; j < m; j++ {
			d := deltas[j]
			if d == 0 {
				continue
			}
			k := start + j
			x := cur[k]
			dsq := d * (2*x + d) // (x+d)^2 - x^2
			if k <= n-1-l {      // k participates as a head element
				dsx += d
				dsx2 += dsq
			}
			if k >= l { // k participates as a tail element
				dsxl += d
				dsx2l += dsq
			}
			// Cross products with old neighbour values (Eq. 9 first sum).
			if k >= l {
				dsxx += d * cur[k-l]
			}
			if k+l < n {
				dsxx += d * cur[k+l]
				// Eq. 9 second sum: both ends of the pair changed.
				if j+l < m {
					dsxx += d * deltas[j+l]
				}
			}
		}
		sx[i] += dsx
		sxl[i] += dsxl
		sxx[i] += dsxx
		sx2[i] += dsx2
		sx2l[i] += dsx2l
	}
}

// Scratch holds reusable buffers for hypothetical (non-mutating) ACF
// evaluation. A Scratch must not be shared between goroutines; allocate one
// per worker.
type Scratch struct {
	sx, sxl, sxx, sx2, sx2l []float64
	acf                     []float64
	wdeltas                 []float64 // window-delta buffer (WindowTracker only)
}

// NewScratch allocates scratch buffers for an L-lag tracker.
func NewScratch(L int) *Scratch {
	return &Scratch{
		sx:   make([]float64, L),
		sxl:  make([]float64, L),
		sxx:  make([]float64, L),
		sx2:  make([]float64, L),
		sx2l: make([]float64, L),
		acf:  make([]float64, L),
	}
}

// HypotheticalACF evaluates the ACF the series would have after applying the
// given contiguous change, without mutating the aggregates. The returned
// slice aliases sc.acf and is valid until the next call with the same sc.
func (a *Aggregates) HypotheticalACF(cur []float64, start int, deltas []float64, sc *Scratch) []float64 {
	copy(sc.sx, a.sx)
	copy(sc.sxl, a.sxl)
	copy(sc.sxx, a.sxx)
	copy(sc.sx2, a.sx2)
	copy(sc.sx2l, a.sx2l)
	a.applyTo(cur, start, deltas, sc.sx, sc.sxl, sc.sxx, sc.sx2, sc.sx2l)
	for l := 1; l <= a.L; l++ {
		i := l - 1
		m := float64(a.N - l)
		sc.acf[i] = corrFromAggregates(m, sc.sx[i], sc.sxl[i], sc.sxx[i], sc.sx2[i], sc.sx2l[i])
	}
	return sc.acf
}

// Clone returns an independent deep copy of the aggregates.
func (a *Aggregates) Clone() *Aggregates {
	return &Aggregates{
		N:    a.N,
		L:    a.L,
		sx:   append([]float64(nil), a.sx...),
		sxl:  append([]float64(nil), a.sxl...),
		sxx:  append([]float64(nil), a.sxx...),
		sx2:  append([]float64(nil), a.sx2...),
		sx2l: append([]float64(nil), a.sx2l...),
	}
}
