package acf

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/series"
)

func TestDirectTrackerMatchesAggregates(t *testing.T) {
	xs := seasonal(300, 24, 0.5, 41)
	tr := NewDirectTracker(xs, 12)
	if tr.Lags() != 12 {
		t.Fatalf("Lags = %d", tr.Lags())
	}
	if !acfClose(tr.ACF(), ACF(xs, 12), 1e-9) {
		t.Fatal("direct tracker ACF mismatch")
	}
	sc := tr.NewScratch()
	deltas := []float64{2, -1}
	hyp := append([]float64(nil), tr.Hypothetical(xs, 100, deltas, sc)...)
	tr.Commit(xs, 100, deltas)
	xs[100] += 2
	xs[101] -= 1
	if !acfClose(hyp, ACF(xs, 12), 1e-9) {
		t.Fatal("hypothetical != committed recompute")
	}
}

func TestWindowTrackerMatchesAggregatedACF(t *testing.T) {
	xs := seasonal(24*40, 24, 0.5, 43)
	kappa := 4
	L := 6
	tr := NewWindowTracker(xs, kappa, series.AggMean, L)
	want := ACF(series.Aggregate(xs, kappa, series.AggMean), L)
	if !acfClose(tr.ACF(), want, 1e-9) {
		t.Fatal("window tracker initial ACF mismatch")
	}
}

func TestWindowTrackerCommitMean(t *testing.T) {
	xs := seasonal(200, 20, 0.5, 47)
	kappa, L := 5, 4
	tr := NewWindowTracker(xs, kappa, series.AggMean, L)
	// Change a block crossing window boundaries.
	start := 48
	deltas := []float64{3, -1, 2, 5, -2, 1, 4}
	tr.Commit(xs, start, deltas)
	for i, d := range deltas {
		xs[start+i] += d
	}
	want := ACF(series.Aggregate(xs, kappa, series.AggMean), L)
	if !acfClose(tr.ACF(), want, 1e-9) {
		t.Fatal("window tracker mean commit diverges from recompute")
	}
}

func TestWindowTrackerCommitMax(t *testing.T) {
	xs := seasonal(120, 12, 0.8, 53)
	kappa, L := 6, 3
	tr := NewWindowTracker(xs, kappa, series.AggMax, L)
	start := 30
	deltas := []float64{10, -20, 5}
	tr.Commit(xs, start, deltas)
	for i, d := range deltas {
		xs[start+i] += d
	}
	want := ACF(series.Aggregate(xs, kappa, series.AggMax), L)
	if !acfClose(tr.ACF(), want, 1e-9) {
		t.Fatal("window tracker max commit diverges from recompute")
	}
}

func TestWindowTrackerPartialLastWindow(t *testing.T) {
	// Length not divisible by kappa: the trailing partial window must be
	// aggregated over its actual length.
	xs := seasonal(103, 10, 0.5, 59)
	kappa, L := 10, 3
	tr := NewWindowTracker(xs, kappa, series.AggMean, L)
	start := 100 // inside the 3-point partial window
	deltas := []float64{7, -4, 2}
	tr.Commit(xs, start, deltas)
	for i, d := range deltas {
		xs[start+i] += d
	}
	want := ACF(series.Aggregate(xs, kappa, series.AggMean), L)
	if !acfClose(tr.ACF(), want, 1e-9) {
		t.Fatal("partial-window commit diverges from recompute")
	}
}

func TestWindowTrackerHypotheticalDoesNotMutate(t *testing.T) {
	xs := seasonal(200, 20, 0.5, 61)
	tr := NewWindowTracker(xs, 5, series.AggMean, 4)
	sc := tr.NewScratch()
	before := tr.ACF()
	_ = tr.Hypothetical(xs, 50, []float64{5, 5, 5}, sc)
	if !acfClose(tr.ACF(), before, 0) {
		t.Fatal("Hypothetical mutated window tracker state")
	}
}

// Property: for any random sequence of contiguous updates, the window
// tracker's ACF equals the ACF of the re-aggregated series.
func TestWindowTrackerConsistencyProperty(t *testing.T) {
	aggFuncs := []series.AggFunc{series.AggMean, series.AggSum, series.AggMax, series.AggMin}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 60 + rng.Intn(300)
		kappa := 2 + rng.Intn(8)
		L := 1 + rng.Intn(5)
		fn := aggFuncs[rng.Intn(len(aggFuncs))]
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 10
		}
		tr := NewWindowTracker(xs, kappa, fn, L)
		for step := 0; step < 15; step++ {
			start := rng.Intn(n)
			width := 1 + rng.Intn(n-start)
			if width > 25 {
				width = 25
			}
			deltas := make([]float64, width)
			for i := range deltas {
				deltas[i] = rng.NormFloat64() * 3
			}
			tr.Commit(xs, start, deltas)
			for i, d := range deltas {
				xs[start+i] += d
			}
		}
		want := ACF(series.Aggregate(xs, kappa, fn), L)
		return acfClose(tr.ACF(), want, 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestTrackerInterfaceCompliance(t *testing.T) {
	var _ Tracker = (*DirectTracker)(nil)
	var _ Tracker = (*WindowTracker)(nil)
	xs := seasonal(100, 10, 0.5, 67)
	trackers := []Tracker{
		NewDirectTracker(xs, 5),
		NewWindowTracker(xs, 4, series.AggMean, 5),
	}
	for _, tr := range trackers {
		if tr.Lags() != 5 {
			t.Fatalf("Lags = %d", tr.Lags())
		}
		acf := tr.ACF()
		for _, v := range acf {
			if math.IsNaN(v) {
				t.Fatal("tracker ACF contains NaN")
			}
		}
	}
}
