package acf

import (
	"math"
	"math/rand"
	"testing"
)

func builderSeries(n int, r *rand.Rand) []float64 {
	xs := make([]float64, n)
	phase := r.Float64() * 2 * math.Pi
	for i := range xs {
		xs[i] = math.Sin(2*math.Pi*float64(i)/48+phase) + 0.3*r.NormFloat64()
	}
	return xs
}

// TestBuilderMatchesBatchBitExact feeds series through the incremental
// builder in various chunkings and demands every aggregate equals the
// batch direct extractor bit-for-bit — the invariant the streaming CAMEO
// engine's differential guarantees rest on.
func TestBuilderMatchesBatchBitExact(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	for _, n := range []int{0, 1, 2, 5, 24, 25, 100, 501, 2048} {
		for _, L := range []int{1, 3, 24, 48, 200} {
			xs := builderSeries(n, r)
			want := NewAggregates(xs, L)
			for _, chunk := range []int{1, 7, 64, n + 1} {
				b := NewBuilder(L)
				b.Append(xs[:min(chunk, n)]...) // exercise Reset on reuse below
				b.Reset()
				for i := 0; i < n; i += chunk {
					b.Append(xs[i:min(i+chunk, n)]...)
				}
				if b.Len() != n {
					t.Fatalf("n=%d L=%d chunk=%d: Len=%d", n, L, chunk, b.Len())
				}
				got := b.finalize(xs)
				if got.N != want.N || got.L != want.L {
					t.Fatalf("n=%d L=%d chunk=%d: shape (%d,%d) want (%d,%d)",
						n, L, chunk, got.N, got.L, want.N, want.L)
				}
				for i := 0; i < len(want.sxx); i++ {
					if got.sx[i] != want.sx[i] || got.sx2[i] != want.sx2[i] ||
						got.sxl[i] != want.sxl[i] || got.sx2l[i] != want.sx2l[i] ||
						got.sxx[i] != want.sxx[i] {
						t.Fatalf("n=%d L=%d chunk=%d lag=%d: aggregates differ: got (%v %v %v %v %v) want (%v %v %v %v %v)",
							n, L, chunk, i+1,
							got.sx[i], got.sx2[i], got.sxl[i], got.sx2l[i], got.sxx[i],
							want.sx[i], want.sx2[i], want.sxl[i], want.sx2l[i], want.sxx[i])
					}
				}
			}
		}
	}
}

// TestDirectTrackerFromBuilder checks the constructor's fallback gate: nil
// on FFT-worthy shapes or length mismatch, a tracker with a bit-identical
// ACF otherwise.
func TestDirectTrackerFromBuilder(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	xs := builderSeries(512, r)

	b := NewBuilder(24)
	b.Append(xs...)
	tr := NewDirectTrackerFromBuilder(b, xs)
	if tr == nil {
		t.Fatal("direct shape (n=512, L=24): want a tracker, got nil")
	}
	want := NewDirectTracker(xs, 24).ACF()
	got := tr.ACF()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ACF[%d] = %v, want %v", i, got[i], want[i])
		}
	}

	// FFT-worthy: n=512 needs effLags >= 32*log2(512) = 288.
	bf := NewBuilder(300)
	bf.Append(xs...)
	if tr := NewDirectTrackerFromBuilder(bf, xs); tr != nil {
		t.Fatal("FFT-worthy shape (n=512, L=300): want nil fallback")
	}

	// Length mismatch.
	if tr := NewDirectTrackerFromBuilder(b, xs[:511]); tr != nil {
		t.Fatal("length mismatch: want nil")
	}
	if tr := NewDirectTrackerFromBuilder(nil, xs); tr != nil {
		t.Fatal("nil builder: want nil")
	}
}
