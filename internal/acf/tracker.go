package acf

import "repro/internal/series"

// Tracker is the abstraction CAMEO's core uses to maintain the preserved
// statistic: it reports the current ACF, evaluates the hypothetical ACF
// after a contiguous block of reconstruction-value changes, and commits such
// changes. Implementations: direct per-point tracking (Definition 1) and
// tumbling-window aggregate tracking (Definition 2). Both come in a dense
// shape (lags 1..L) and a compact shape (a selected lag subset, §5.5); all
// ACF vectors are in position order (lag i+1 at index i for dense, the i-th
// selected lag for compact).
type Tracker interface {
	// Lags returns the number of maintained lag positions (L for dense
	// trackers, the subset size for compact ones).
	Lags() int
	// ACF returns the current ACF into a fresh slice.
	ACF() []float64
	// ACFInto evaluates the current ACF into dst (length Lags()), avoiding
	// the allocation for callers that own a buffer.
	ACFInto(dst []float64)
	// Hypothetical returns the ACF after changing reconstruction values at
	// [start, start+len(deltas)) by deltas, without committing. cur holds
	// values before the change. The result may alias sc's buffers.
	Hypothetical(cur []float64, start int, deltas []float64, sc *Scratch) []float64
	// Commit applies the change to the tracked aggregates. cur holds values
	// before the change; the caller updates cur afterwards.
	Commit(cur []float64, start int, deltas []float64)
	// NewScratch allocates a scratch buffer sized for this tracker.
	NewScratch() *Scratch
}

// DirectTracker tracks the ACF of the series itself (Definition 1).
type DirectTracker struct {
	agg *Aggregates
}

// NewDirectTracker builds a direct tracker over xs for lags 1..L. The
// initial aggregate extraction picks the direct or FFT path automatically.
func NewDirectTracker(xs []float64, L int) *DirectTracker {
	return &DirectTracker{agg: NewAggregatesAuto(xs, L)}
}

// NewDirectTrackerLags builds a compact direct tracker maintaining only the
// given lags (ascending, unique, >= 1): per-update cost is O(|lags|*m)
// instead of O(L*m).
func NewDirectTrackerLags(xs []float64, lags []int) *DirectTracker {
	return &DirectTracker{agg: NewAggregatesAutoLags(xs, lags)}
}

// Lags returns the number of maintained lag positions.
func (d *DirectTracker) Lags() int { return d.agg.Positions() }

// ACF returns the current ACF.
func (d *DirectTracker) ACF() []float64 { return d.agg.ACF() }

// ACFInto evaluates the current ACF into dst.
func (d *DirectTracker) ACFInto(dst []float64) { d.agg.ACFInto(dst) }

// Hypothetical evaluates the post-change ACF without mutation.
func (d *DirectTracker) Hypothetical(cur []float64, start int, deltas []float64, sc *Scratch) []float64 {
	return d.agg.HypotheticalACF(cur, start, deltas, sc)
}

// Commit applies the change.
func (d *DirectTracker) Commit(cur []float64, start int, deltas []float64) {
	d.agg.Apply(cur, start, deltas)
}

// NewScratch allocates scratch sized for this tracker.
func (d *DirectTracker) NewScratch() *Scratch { return NewScratch(d.agg.Positions()) }

// WindowTracker tracks the ACF of Agg_kappa(X) — the Statistical Important
// Points on Aggregates problem (paper Definition 2, Eq. 10/11). It maintains
// the aggregated series a alongside the ACF aggregates of a.
type WindowTracker struct {
	agg   *Aggregates
	kappa int
	f     series.AggFunc
	a     []float64 // current aggregated values

	wbuf []float64 // scratch for window deltas (committed path)
}

// NewWindowTracker builds a tracker over the tumbling-window aggregation of
// xs with window size kappa, function f, and lags 1..L on the aggregated
// series.
func NewWindowTracker(xs []float64, kappa int, f series.AggFunc, L int) *WindowTracker {
	a := series.Aggregate(xs, kappa, f)
	return &WindowTracker{
		agg:   NewAggregatesAuto(a, L),
		kappa: kappa,
		f:     f,
		a:     a,
		wbuf:  make([]float64, 0, 16),
	}
}

// NewWindowTrackerLags builds a compact window tracker maintaining only the
// given lags of the aggregated series (ascending, unique, >= 1).
func NewWindowTrackerLags(xs []float64, kappa int, f series.AggFunc, lags []int) *WindowTracker {
	a := series.Aggregate(xs, kappa, f)
	return &WindowTracker{
		agg:   NewAggregatesAutoLags(a, lags),
		kappa: kappa,
		f:     f,
		a:     a,
		wbuf:  make([]float64, 0, 16),
	}
}

// Lags returns the number of maintained lag positions.
func (w *WindowTracker) Lags() int { return w.agg.Positions() }

// ACF returns the current ACF of the aggregated series.
func (w *WindowTracker) ACF() []float64 { return w.agg.ACF() }

// ACFInto evaluates the current ACF into dst.
func (w *WindowTracker) ACFInto(dst []float64) { w.agg.ACFInto(dst) }

// Kappa returns the window size.
func (w *WindowTracker) Kappa() int { return w.kappa }

// windowDeltas translates a contiguous block of X-value changes into the
// induced contiguous block of aggregate-value changes (Eq. 10/11): the first
// affected window index and the per-window deltas, written into buf (grown
// as needed) and returned. The window bounds advance incrementally and the
// aggregation-function dispatch is hoisted out of the per-window loop, so
// one evaluation derives each bound exactly once.
func (w *WindowTracker) windowDeltas(cur []float64, start int, deltas []float64, buf []float64) (int, []float64) {
	kappa := w.kappa
	end := start + len(deltas)
	w0 := start / kappa
	w1 := (end - 1) / kappa
	buf = buf[:0]
	lo := w0 * kappa
	switch w.f {
	case series.AggSum, series.AggMean:
		// Additive: the aggregate delta is the sum of member deltas
		// (scaled by the window length for the mean), as in Eq. 11.
		isMean := w.f == series.AggMean
		for wi := w0; wi <= w1; wi++ {
			hi := min(lo+kappa, len(cur))
			var d float64
			for t := max(lo, start); t < min(hi, end); t++ {
				d += deltas[t-start]
			}
			if isMean {
				d /= float64(hi - lo)
			}
			buf = append(buf, d)
			lo += kappa
		}
	default:
		// Semi-additive (max/min): recompute the window over the new
		// values (Eq. 11 discussion: Delta a_i = Agg(x-hat) - a_i).
		for wi := w0; wi <= w1; wi++ {
			hi := min(lo+kappa, len(cur))
			buf = append(buf, w.aggregateWindow(cur, lo, hi, start, deltas)-w.a[wi])
			lo += kappa
		}
	}
	return w0, buf
}

// aggregateWindow applies the aggregation function to window [lo,hi) using
// post-change values. The window splits into the sub-ranges outside and
// inside the changed block, each scanned branch-free.
func (w *WindowTracker) aggregateWindow(cur []float64, lo, hi, start int, deltas []float64) float64 {
	oLo := min(max(lo, start), hi)
	oHi := max(min(hi, start+len(deltas)), oLo)
	switch w.f {
	case series.AggMax:
		m := cur[lo]
		if lo >= oLo && lo < oHi {
			m += deltas[lo-start]
		}
		for t := lo + 1; t < oLo; t++ {
			if v := cur[t]; v > m {
				m = v
			}
		}
		for t := max(lo+1, oLo); t < oHi; t++ {
			if v := cur[t] + deltas[t-start]; v > m {
				m = v
			}
		}
		for t := max(lo+1, oHi); t < hi; t++ {
			if v := cur[t]; v > m {
				m = v
			}
		}
		return m
	case series.AggMin:
		m := cur[lo]
		if lo >= oLo && lo < oHi {
			m += deltas[lo-start]
		}
		for t := lo + 1; t < oLo; t++ {
			if v := cur[t]; v < m {
				m = v
			}
		}
		for t := max(lo+1, oLo); t < oHi; t++ {
			if v := cur[t] + deltas[t-start]; v < m {
				m = v
			}
		}
		for t := max(lo+1, oHi); t < hi; t++ {
			if v := cur[t]; v < m {
				m = v
			}
		}
		return m
	default:
		var s float64
		for t := lo; t < oLo; t++ {
			s += cur[t]
		}
		for t := oLo; t < oHi; t++ {
			s += cur[t] + deltas[t-start]
		}
		for t := oHi; t < hi; t++ {
			s += cur[t]
		}
		if w.f == series.AggMean {
			s /= float64(hi - lo)
		}
		return s
	}
}

// Hypothetical evaluates the post-change ACF of the aggregated series
// without mutation.
func (w *WindowTracker) Hypothetical(cur []float64, start int, deltas []float64, sc *Scratch) []float64 {
	w0, ad := w.windowDeltas(cur, start, deltas, sc.wdeltas)
	sc.wdeltas = ad // keep grown buffer
	return w.agg.HypotheticalACF(w.a, w0, ad, sc)
}

// Commit applies the change to the aggregated series and its ACF aggregates.
func (w *WindowTracker) Commit(cur []float64, start int, deltas []float64) {
	w0, ad := w.windowDeltas(cur, start, deltas, w.wbuf)
	w.wbuf = ad
	w.agg.Apply(w.a, w0, ad)
	for i, d := range ad {
		w.a[w0+i] += d
	}
}

// NewScratch allocates scratch sized for this tracker.
func (w *WindowTracker) NewScratch() *Scratch {
	sc := NewScratch(w.agg.Positions())
	sc.wdeltas = make([]float64, 0, 16)
	return sc
}
