package acf

import "repro/internal/series"

// Tracker is the abstraction CAMEO's core uses to maintain the preserved
// statistic: it reports the current ACF, evaluates the hypothetical ACF
// after a contiguous block of reconstruction-value changes, and commits such
// changes. Implementations: direct per-point tracking (Definition 1) and
// tumbling-window aggregate tracking (Definition 2).
type Tracker interface {
	// Lags returns the number of maintained lags L.
	Lags() int
	// ACF returns the current ACF (lags 1..L) into a fresh slice.
	ACF() []float64
	// Hypothetical returns the ACF after changing reconstruction values at
	// [start, start+len(deltas)) by deltas, without committing. cur holds
	// values before the change. The result may alias sc's buffers.
	Hypothetical(cur []float64, start int, deltas []float64, sc *Scratch) []float64
	// Commit applies the change to the tracked aggregates. cur holds values
	// before the change; the caller updates cur afterwards.
	Commit(cur []float64, start int, deltas []float64)
	// NewScratch allocates a scratch buffer sized for this tracker.
	NewScratch() *Scratch
}

// DirectTracker tracks the ACF of the series itself (Definition 1).
type DirectTracker struct {
	agg *Aggregates
}

// NewDirectTracker builds a direct tracker over xs for lags 1..L. The
// initial aggregate extraction picks the direct or FFT path automatically.
func NewDirectTracker(xs []float64, L int) *DirectTracker {
	return &DirectTracker{agg: NewAggregatesAuto(xs, L)}
}

// Lags returns L.
func (d *DirectTracker) Lags() int { return d.agg.L }

// ACF returns the current ACF.
func (d *DirectTracker) ACF() []float64 { return d.agg.ACF() }

// Hypothetical evaluates the post-change ACF without mutation.
func (d *DirectTracker) Hypothetical(cur []float64, start int, deltas []float64, sc *Scratch) []float64 {
	return d.agg.HypotheticalACF(cur, start, deltas, sc)
}

// Commit applies the change.
func (d *DirectTracker) Commit(cur []float64, start int, deltas []float64) {
	d.agg.Apply(cur, start, deltas)
}

// NewScratch allocates scratch for L lags.
func (d *DirectTracker) NewScratch() *Scratch { return NewScratch(d.agg.L) }

// WindowTracker tracks the ACF of Agg_kappa(X) — the Statistical Important
// Points on Aggregates problem (paper Definition 2, Eq. 10/11). It maintains
// the aggregated series a alongside the ACF aggregates of a.
type WindowTracker struct {
	agg   *Aggregates
	kappa int
	f     series.AggFunc
	a     []float64 // current aggregated values

	wbuf []float64 // scratch for window deltas (committed path)
}

// NewWindowTracker builds a tracker over the tumbling-window aggregation of
// xs with window size kappa, function f, and lags 1..L on the aggregated
// series.
func NewWindowTracker(xs []float64, kappa int, f series.AggFunc, L int) *WindowTracker {
	a := series.Aggregate(xs, kappa, f)
	return &WindowTracker{
		agg:   NewAggregatesAuto(a, L),
		kappa: kappa,
		f:     f,
		a:     a,
		wbuf:  make([]float64, 0, 16),
	}
}

// Lags returns L.
func (w *WindowTracker) Lags() int { return w.agg.L }

// ACF returns the current ACF of the aggregated series.
func (w *WindowTracker) ACF() []float64 { return w.agg.ACF() }

// Kappa returns the window size.
func (w *WindowTracker) Kappa() int { return w.kappa }

// windowDeltas translates a contiguous block of X-value changes into the
// induced contiguous block of aggregate-value changes (Eq. 10/11): the first
// affected window index and the per-window deltas, written into buf (grown
// as needed) and returned.
func (w *WindowTracker) windowDeltas(cur []float64, start int, deltas []float64, buf []float64) (int, []float64) {
	w0 := start / w.kappa
	w1 := (start + len(deltas) - 1) / w.kappa
	buf = buf[:0]
	for wi := w0; wi <= w1; wi++ {
		lo := wi * w.kappa
		hi := lo + w.kappa
		if hi > len(cur) {
			hi = len(cur)
		}
		var d float64
		switch w.f {
		case series.AggSum, series.AggMean:
			// Additive: the aggregate delta is the sum of member deltas
			// (scaled by the window length for the mean), as in Eq. 11.
			for t := max(lo, start); t < min(hi, start+len(deltas)); t++ {
				d += deltas[t-start]
			}
			if w.f == series.AggMean {
				d /= float64(hi - lo)
			}
		default:
			// Semi-additive (max/min): recompute the window over the new
			// values (Eq. 11 discussion: Delta a_i = Agg(x-hat) - a_i).
			newAgg := w.aggregateWindow(cur, lo, hi, start, deltas)
			d = newAgg - w.a[wi]
		}
		buf = append(buf, d)
	}
	return w0, buf
}

// aggregateWindow applies the aggregation function to window [lo,hi) using
// post-change values.
func (w *WindowTracker) aggregateWindow(cur []float64, lo, hi, start int, deltas []float64) float64 {
	val := func(t int) float64 {
		v := cur[t]
		if t >= start && t < start+len(deltas) {
			v += deltas[t-start]
		}
		return v
	}
	switch w.f {
	case series.AggMax:
		m := val(lo)
		for t := lo + 1; t < hi; t++ {
			if v := val(t); v > m {
				m = v
			}
		}
		return m
	case series.AggMin:
		m := val(lo)
		for t := lo + 1; t < hi; t++ {
			if v := val(t); v < m {
				m = v
			}
		}
		return m
	default:
		var s float64
		for t := lo; t < hi; t++ {
			s += val(t)
		}
		if w.f == series.AggMean {
			s /= float64(hi - lo)
		}
		return s
	}
}

// Hypothetical evaluates the post-change ACF of the aggregated series
// without mutation.
func (w *WindowTracker) Hypothetical(cur []float64, start int, deltas []float64, sc *Scratch) []float64 {
	w0, ad := w.windowDeltas(cur, start, deltas, sc.wdeltas)
	sc.wdeltas = ad // keep grown buffer
	return w.agg.HypotheticalACF(w.a, w0, ad, sc)
}

// Commit applies the change to the aggregated series and its ACF aggregates.
func (w *WindowTracker) Commit(cur []float64, start int, deltas []float64) {
	w0, ad := w.windowDeltas(cur, start, deltas, w.wbuf)
	w.wbuf = ad
	w.agg.Apply(w.a, w0, ad)
	for i, d := range ad {
		w.a[w0+i] += d
	}
}

// NewScratch allocates scratch sized for this tracker.
func (w *WindowTracker) NewScratch() *Scratch {
	sc := NewScratch(w.agg.L)
	sc.wdeltas = make([]float64, 0, 16)
	return sc
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
