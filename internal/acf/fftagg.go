package acf

import (
	"math"

	"repro/internal/fft"
)

// NewAggregatesAuto extracts the Eq. 7 aggregates like NewAggregates but
// switches to an FFT-based computation of the lagged cross products when
// the lag count is large: the full autocorrelation sequence
// sum_t x_t*x_{t+l} for all lags at once is the inverse transform of
// |FFT(x)|^2 (Wiener-Khinchin), costing O(n log n) instead of O(n*L).
// The direct pass does one multiply-add per (t, l) pair while the FFT path
// pays roughly three complex transforms of length 2n, so the crossover sits
// near L ~ 32*log2(n) (measured; see the package benchmarks). The paper's
// motivating 21,600-lag daily-seasonality example (§3) is far beyond it.
func NewAggregatesAuto(xs []float64, L int) *Aggregates {
	if fftWorthIt(len(xs), L) {
		return newAggregatesFFT(xs, L, nil)
	}
	return NewAggregates(xs, L)
}

// NewAggregatesAutoLags is NewAggregatesAuto for a compact lag subset
// (ascending, unique, >= 1): the direct pass costs one multiply-add per
// (t, selected lag) pair, so the FFT crossover is judged on the subset size,
// not the largest lag.
func NewAggregatesAutoLags(xs []float64, lags []int) *Aggregates {
	if fftWorthIt(len(xs), len(lags)) {
		return newAggregatesFFT(xs, 0, toLags32(lags))
	}
	return NewAggregatesLags(xs, lags)
}

// fftWorthIt decides direct vs FFT extraction for an effective lag count.
func fftWorthIt(n, effLags int) bool {
	return n >= 64 && float64(effLags) >= 32*math.Log2(float64(n))
}

// newAggregatesFFT computes the aggregates with the FFT cross-product path.
// lags selects the compact shape (nil = dense 1..L, as for newAggregatesShell).
func newAggregatesFFT(xs []float64, L int, lags []int32) *Aggregates {
	n := len(xs)
	a := newAggregatesShell(n, L, lags)
	var total, total2 float64
	for _, x := range xs {
		total += x
		total2 += x * x
	}
	var suffix, suffix2, prefix, prefix2 float64
	p := 0
	for l := 1; l <= a.L && l < n; l++ {
		suffix += xs[n-l]
		suffix2 += xs[n-l] * xs[n-l]
		prefix += xs[l-1]
		prefix2 += xs[l-1] * xs[l-1]
		i := -1
		if lags == nil {
			i = l - 1
		} else if p < len(lags) && int(lags[p]) == l {
			i = p
			p++
		}
		if i >= 0 {
			a.sx[i] = total - suffix
			a.sx2[i] = total2 - suffix2
			a.sxl[i] = total - prefix
			a.sx2l[i] = total2 - prefix2
		}
	}
	// Wiener-Khinchin: zero-pad to >= 2n to make the circular convolution
	// linear, then sxx_l = ifft(|fft(x)|^2)[l].
	m := 1
	for m < 2*n {
		m <<= 1
	}
	cx := make([]complex128, m)
	for i, v := range xs {
		cx[i] = complex(v, 0)
	}
	coeffs := fft.Forward(cx)
	for i, c := range coeffs {
		re, im := real(c), imag(c)
		coeffs[i] = complex(re*re+im*im, 0)
	}
	auto := fft.Inverse(coeffs)
	if lags == nil {
		for l := 1; l <= a.L && l < n; l++ {
			a.sxx[l-1] = real(auto[l])
		}
	} else {
		for i, l := range lags {
			if int(l) < n {
				a.sxx[i] = real(auto[l])
			}
		}
	}
	return a
}
