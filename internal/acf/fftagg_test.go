package acf

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFFTAggregatesMatchDirect(t *testing.T) {
	xs := seasonal(5000, 48, 1.0, 71)
	direct := NewAggregates(xs, 100)
	viaFFT := newAggregatesFFT(xs, 100, nil)
	if !acfClose(direct.ACF(), viaFFT.ACF(), 1e-7) {
		t.Fatal("FFT aggregate path diverges from direct computation")
	}
}

func TestFFTAggregatesShortSeries(t *testing.T) {
	xs := []float64{1, 2, 3}
	direct := NewAggregates(xs, 10)
	viaFFT := newAggregatesFFT(xs, 10, nil)
	if !acfClose(direct.ACF(), viaFFT.ACF(), 1e-9) {
		t.Fatal("FFT path wrong on short series")
	}
}

func TestNewAggregatesAutoSelectsPath(t *testing.T) {
	// Small input: identical to the direct path (it IS the direct path).
	xs := seasonal(500, 24, 0.5, 72)
	auto := NewAggregatesAuto(xs, 24)
	direct := NewAggregates(xs, 24)
	if !acfClose(auto.ACF(), direct.ACF(), 0) {
		t.Fatal("auto path differs on small input")
	}
}

func TestFFTAggregatesSupportIncrementalUpdates(t *testing.T) {
	// The FFT-built aggregates must behave identically under Apply.
	xs := seasonal(2000, 24, 0.5, 73)
	agg := newAggregatesFFT(xs, 50, nil)
	deltas := []float64{2, -1, 0.5}
	agg.Apply(xs, 700, deltas)
	for i, d := range deltas {
		xs[700+i] += d
	}
	if !acfClose(agg.ACF(), ACF(xs, 50), 1e-7) {
		t.Fatal("incremental update on FFT-built aggregates diverges")
	}
}

// Property: both construction paths agree for arbitrary series and lags.
func TestFFTAggregatesEquivalenceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 20 + rng.Intn(2000)
		L := 1 + rng.Intn(60)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 50
		}
		return acfClose(NewAggregates(xs, L).ACF(), newAggregatesFFT(xs, L, nil).ACF(), 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAggregatesDirect100kx365(b *testing.B) {
	xs := seasonal(100000, 365, 0.5, 74)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NewAggregates(xs, 365)
	}
}

func BenchmarkAggregatesFFT100kx365(b *testing.B) {
	xs := seasonal(100000, 365, 0.5, 74)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		newAggregatesFFT(xs, 365, nil)
	}
}
