package acf

import (
	"math"
	"math/rand"
	"testing"
)

func seasonal(n, period int, noise float64, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = 10 + 5*math.Sin(2*math.Pi*float64(i)/float64(period)) + noise*rng.NormFloat64()
	}
	return xs
}

func TestACFLagOneOfAlternatingSeries(t *testing.T) {
	// Perfectly alternating series has lag-1 ACF of -1.
	xs := make([]float64, 100)
	for i := range xs {
		if i%2 == 0 {
			xs[i] = 1
		} else {
			xs[i] = -1
		}
	}
	got := ACF(xs, 2)
	if math.Abs(got[0]-(-1)) > 1e-9 {
		t.Fatalf("ACF1 = %v, want -1", got[0])
	}
	if math.Abs(got[1]-1) > 1e-9 {
		t.Fatalf("ACF2 = %v, want 1", got[1])
	}
}

func TestACFPeriodicPeaksAtPeriod(t *testing.T) {
	period := 24
	xs := seasonal(24*20, period, 0, 1)
	a := ACF(xs, period)
	// The ACF at the full period should be ~1, higher than at half period.
	if a[period-1] < 0.95 {
		t.Fatalf("ACF at period = %v, want ~1", a[period-1])
	}
	if a[period/2-1] > -0.9 {
		t.Fatalf("ACF at half period = %v, want ~-1", a[period/2-1])
	}
}

func TestACFConstantSeriesIsZero(t *testing.T) {
	xs := make([]float64, 50)
	for i := range xs {
		xs[i] = 3.14
	}
	for _, v := range ACF(xs, 5) {
		if v != 0 {
			t.Fatalf("constant series ACF = %v, want 0", v)
		}
	}
}

func TestACFLagBeyondLength(t *testing.T) {
	xs := []float64{1, 2, 3}
	a := ACF(xs, 10)
	if len(a) != 10 {
		t.Fatalf("len = %d", len(a))
	}
	for l := 3; l < 10; l++ {
		if a[l] != 0 {
			t.Fatalf("ACF beyond length = %v at lag %d, want 0", a[l], l+1)
		}
	}
}

func TestACFWhiteNoiseNearZero(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	xs := make([]float64, 20000)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	for l, v := range ACF(xs, 10) {
		if math.Abs(v) > 0.05 {
			t.Fatalf("white-noise ACF lag %d = %v, want ~0", l+1, v)
		}
	}
}

func TestACFStationaryMatchesDirectOnLongStationarySeries(t *testing.T) {
	xs := seasonal(5000, 50, 0.5, 3)
	a1 := ACF(xs, 50)
	a2 := ACFStationary(xs, 50)
	for l := 0; l < 50; l++ {
		if math.Abs(a1[l]-a2[l]) > 0.05 {
			t.Fatalf("lag %d: direct %v vs stationary %v differ too much", l+1, a1[l], a2[l])
		}
	}
}

func TestACFStationaryEmptyAndConstant(t *testing.T) {
	if got := ACFStationary(nil, 3); len(got) != 3 {
		t.Fatalf("len = %d", len(got))
	}
	xs := []float64{2, 2, 2, 2}
	for _, v := range ACFStationary(xs, 2) {
		if v != 0 {
			t.Fatalf("constant stationary ACF = %v", v)
		}
	}
}

func TestPACFAR1Process(t *testing.T) {
	// For an AR(1) process, PACF cuts off after lag 1.
	rng := rand.New(rand.NewSource(5))
	n := 50000
	phi := 0.7
	xs := make([]float64, n)
	for i := 1; i < n; i++ {
		xs[i] = phi*xs[i-1] + rng.NormFloat64()
	}
	p := PACF(xs, 5)
	if math.Abs(p[0]-phi) > 0.05 {
		t.Fatalf("PACF1 = %v, want ~%v", p[0], phi)
	}
	for l := 1; l < 5; l++ {
		if math.Abs(p[l]) > 0.05 {
			t.Fatalf("PACF lag %d = %v, want ~0 for AR(1)", l+1, p[l])
		}
	}
}

func TestPACFAR2Process(t *testing.T) {
	// AR(2): PACF lag 2 should recover phi2, lag 3+ near zero.
	rng := rand.New(rand.NewSource(6))
	n := 50000
	phi1, phi2 := 0.5, 0.3
	xs := make([]float64, n)
	for i := 2; i < n; i++ {
		xs[i] = phi1*xs[i-1] + phi2*xs[i-2] + rng.NormFloat64()
	}
	p := PACF(xs, 4)
	if math.Abs(p[1]-phi2) > 0.05 {
		t.Fatalf("PACF2 = %v, want ~%v", p[1], phi2)
	}
	if math.Abs(p[2]) > 0.05 || math.Abs(p[3]) > 0.05 {
		t.Fatalf("PACF3/4 = %v/%v, want ~0", p[2], p[3])
	}
}

func TestPACFFromACFFirstLagIdentity(t *testing.T) {
	rho := []float64{0.6, 0.3, 0.1}
	p := PACFFromACF(rho)
	if p[0] != 0.6 {
		t.Fatalf("PACF1 = %v, want rho1", p[0])
	}
}

func TestPACFFromACFEmpty(t *testing.T) {
	if got := PACFFromACF(nil); len(got) != 0 {
		t.Fatalf("PACF(nil) len = %d", len(got))
	}
}

func TestPACFFromACFDegenerateDenominator(t *testing.T) {
	// rho1 = 1 makes the lag-2 denominator zero; recursion must stop, not NaN.
	p := PACFFromACF([]float64{1, 1, 1})
	if p[0] != 1 {
		t.Fatalf("PACF1 = %v", p[0])
	}
	for _, v := range p {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("degenerate PACF contains %v", v)
		}
	}
}
