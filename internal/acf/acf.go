// Package acf implements the autocorrelation (ACF) and partial
// autocorrelation (PACF) machinery at the core of CAMEO (paper §2.4, §4.2):
// direct estimators, the aggregate form of the ACF (Eq. 2) whose basic
// aggregates (Eq. 7) can be maintained incrementally under point updates
// (Eq. 8, 9), the windowed-aggregation variant (Eq. 10, 11), and the
// Durbin-Levinson recursion for the PACF (Eq. 3).
package acf

import "math"

// tiny guards divisions: per-lag variances below this are treated as zero
// (constant sub-series have undefined autocorrelation; we report 0).
const tiny = 1e-12

// ACF computes the autocorrelation function for lags 1..L using the
// non-stationary estimator of paper Eq. 1/Eq. 2: per-lag Pearson correlation
// between X[0:n-l] and X[l:n]. The returned slice has length L; index i
// holds lag i+1. Lags with l >= n or zero variance yield 0.
func ACF(xs []float64, L int) []float64 {
	out := make([]float64, L)
	n := len(xs)
	for l := 1; l <= L; l++ {
		if l >= n {
			break
		}
		out[l-1] = lagCorr(xs, l)
	}
	return out
}

// lagCorr returns the Pearson correlation between the head X[0:n-l] and the
// lagged tail X[l:n].
func lagCorr(xs []float64, l int) float64 {
	n := len(xs)
	m := n - l
	var sx, sxl, sxx, sx2, sx2l float64
	for t := 0; t < m; t++ {
		a, b := xs[t], xs[t+l]
		sx += a
		sxl += b
		sxx += a * b
		sx2 += a * a
		sx2l += b * b
	}
	return corrFromAggregates(float64(m), sx, sxl, sxx, sx2, sx2l)
}

// corrFromAggregates evaluates paper Eq. 2 given the five basic aggregates
// over m lag pairs. The zero-variance guard is relative to the magnitude of
// the aggregate products: the subtraction m*sx2 - sx^2 cancels
// catastrophically on (near-)constant series, so an absolute threshold
// would misclassify them.
func corrFromAggregates(m, sx, sxl, sxx, sx2, sx2l float64) float64 {
	if m <= 1 {
		return 0
	}
	num := m*sxx - sx*sxl
	va := m*sx2 - sx*sx
	vb := m*sx2l - sxl*sxl
	if va <= tiny+1e-10*(m*sx2+sx*sx) || vb <= tiny+1e-10*(m*sx2l+sxl*sxl) {
		return 0
	}
	r := num / math.Sqrt(va*vb)
	// Clamp rounding overshoot: a correlation is in [-1, 1] by definition.
	if r > 1 {
		r = 1
	} else if r < -1 {
		r = -1
	}
	return r
}

// ACFStationary computes the classical stationary estimator of paper Eq. 1:
//
//	ACF_l = 1/((n-l) * sigma^2) * sum_t (x_t - mu)(x_{t+l} - mu)
//
// with the global mean mu and population variance sigma^2. It is provided
// for reference and comparison; CAMEO itself maintains the Eq. 2 form.
func ACFStationary(xs []float64, L int) []float64 {
	out := make([]float64, L)
	n := len(xs)
	if n == 0 {
		return out
	}
	var mu float64
	for _, x := range xs {
		mu += x
	}
	mu /= float64(n)
	var v float64
	for _, x := range xs {
		d := x - mu
		v += d * d
	}
	v /= float64(n)
	if v <= tiny {
		return out
	}
	for l := 1; l <= L && l < n; l++ {
		var s float64
		for t := 0; t+l < n; t++ {
			s += (xs[t] - mu) * (xs[t+l] - mu)
		}
		out[l-1] = s / (float64(n-l) * v)
	}
	return out
}

// PACF computes the partial autocorrelation function for lags 1..L from a
// series, via the Durbin-Levinson recursion on its ACF (paper Eq. 3).
func PACF(xs []float64, L int) []float64 {
	return PACFFromACF(ACF(xs, L))
}

// PACFFromACF runs the Durbin-Levinson recursion (paper Eq. 3) on an ACF
// vector (lags 1..L) and returns the PACF vector (lags 1..L):
//
//	phi_{1,1} = rho_1
//	phi_{l,l} = (rho_l - sum_{k<l} phi_{l-1,k} rho_{l-k})
//	            / (1 - sum_{k<l} phi_{l-1,k} rho_k)
//	phi_{l,k} = phi_{l-1,k} - phi_{l,l} phi_{l-1,l-k}
//
// Degenerate denominators (|den| <= tiny) yield a 0 coefficient at that lag
// and stop the recursion, mirroring the behaviour of statistical packages on
// numerically singular systems.
func PACFFromACF(rho []float64) []float64 {
	L := len(rho)
	return PACFFromACFInto(rho, make([]float64, L), make([]float64, L+1), make([]float64, L+1))
}

// PACFFromACFInto is PACFFromACF writing into caller-owned buffers: out must
// have length len(rho), phiPrev and phiCur length len(rho)+1. It returns out
// and performs no allocation, which keeps per-candidate PACF evaluation off
// the heap in CAMEO's hot loop (§5.5).
func PACFFromACFInto(rho, out, phiPrev, phiCur []float64) []float64 {
	L := len(rho)
	out = out[:L]
	clear(out)
	if L == 0 {
		return out
	}
	phiPrev = phiPrev[:L+1] // phi_{l-1,k}
	phiCur = phiCur[:L+1]   // phi_{l,k}
	clear(phiPrev)
	clear(phiCur)
	out[0] = rho[0]
	phiPrev[1] = rho[0]
	for l := 2; l <= L; l++ {
		var num, den float64
		num = rho[l-1]
		den = 1.0
		for k := 1; k < l; k++ {
			num -= phiPrev[k] * rho[l-k-1]
			den -= phiPrev[k] * rho[k-1]
		}
		if math.Abs(den) <= tiny {
			break
		}
		pll := num / den
		out[l-1] = pll
		for k := 1; k < l; k++ {
			phiCur[k] = phiPrev[k] - pll*phiPrev[l-k]
		}
		phiCur[l] = pll
		copy(phiPrev[:l+1], phiCur[:l+1])
	}
	return out
}
