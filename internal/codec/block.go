package codec

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Versioned on-disk block format. Every block the tsdb engine persists is
//
//	magic 0xC0 0xDC | format version (1 byte) | codec ID (1 byte) |
//	uvarint sample count | codec payload                       (version 1)
//
//	magic 0xC0 0xDC | format version (1 byte) | codec ID (1 byte) |
//	uvarint sample count | uvarint sidecar length |
//	checkpoint sidecar | codec payload                         (version 2)
//
// The header is what makes codecs pluggable per block: a store can mix
// blocks written under different codecs (e.g. after switching Options.Codec
// between opens) and every block remains self-describing. Version 2 adds a
// random-access sidecar section between header and payload — the bit-stream
// codecs store periodic checkpoint marks there so partial reads can seek —
// and is written only when a codec actually produces one; blocks without a
// sidecar stay byte-identical to version 1, and version 1 blocks parse
// exactly as before (SidecarLen 0). Blocks from the pre-header engine carry
// no header — they are raw CAMEO irregular-series encodings, recognized by
// their own "CAM1" magic — and stay readable; the tsdb layer handles that
// fallback, keyed on ErrNotBlockFormat.
const (
	blockMagic0 = 0xC0
	blockMagic1 = 0xDC

	// BlockFormatVersion is the newest header version written and the
	// highest one decoders accept; bumping it is how an incompatible
	// layout change keeps old builds from misreading new stores.
	BlockFormatVersion = 2

	// blockVersionPlain is the sidecar-less layout; blocks whose codec
	// emits no sidecar are still written under it, byte-identical to
	// pre-version-2 builds.
	blockVersionPlain = 1

	// blockVersionSidecar adds the uvarint-length-prefixed sidecar
	// section between header and payload.
	blockVersionSidecar = 2

	// MaxBlockSamples caps the per-block sample count a header may claim
	// (2^27 samples = 1 GiB decoded). Far above any real block size, it
	// keeps a corrupt or hostile header from provoking a huge allocation
	// before payload validation gets a chance to fail.
	MaxBlockSamples = 1 << 27

	// MaxSidecarBytes caps the sidecar length a header may claim, in the
	// same spirit as MaxBlockSamples.
	MaxSidecarBytes = 1 << 26

	// MaxHeaderLen is the largest encoded header: magic + version + codec
	// ID + two maximal uvarints. Reading this many bytes of a block file
	// is always enough to parse its header (not its sidecar, whose length
	// the parsed header then reports).
	MaxHeaderLen = 4 + 2*binary.MaxVarintLen64
)

// BlockHeader is the parsed fixed part of a block file.
type BlockHeader struct {
	Version    uint8
	CodecID    uint8
	N          int // dense sample count of the payload
	SidecarLen int // bytes of checkpoint sidecar between header and payload
}

// ErrNotBlockFormat is returned by ParseBlockHeader when the data does not
// start with the block magic — for the tsdb engine that means a legacy
// headerless CAMEO block (or garbage, which the legacy decode then rejects).
var ErrNotBlockFormat = errors.New("codec: not in block format")

// ErrBadBlock is returned for structurally invalid block headers and
// payloads that do not decode to the promised sample count.
var ErrBadBlock = errors.New("codec: malformed block")

// appendHeader prepends the version-1 (sidecar-less) block header to a
// codec payload.
func appendHeader(c Codec, n int, payload []byte) []byte {
	hdr := make([]byte, 0, MaxHeaderLen+len(payload))
	hdr = append(hdr, blockMagic0, blockMagic1, blockVersionPlain, c.ID())
	hdr = binary.AppendUvarint(hdr, uint64(n))
	return append(hdr, payload...)
}

// appendHeaderSidecar prepends the block header to a payload and its
// checkpoint sidecar, choosing the leanest layout: an empty sidecar writes
// a version-1 block (byte-identical to pre-sidecar builds), a non-empty one
// writes version 2.
func appendHeaderSidecar(c Codec, n int, sidecar, payload []byte) []byte {
	if len(sidecar) == 0 {
		return appendHeader(c, n, payload)
	}
	hdr := make([]byte, 0, MaxHeaderLen+len(sidecar)+len(payload))
	hdr = append(hdr, blockMagic0, blockMagic1, blockVersionSidecar, c.ID())
	hdr = binary.AppendUvarint(hdr, uint64(n))
	hdr = binary.AppendUvarint(hdr, uint64(len(sidecar)))
	hdr = append(hdr, sidecar...)
	return append(hdr, payload...)
}

// encodePayload compresses xs, returning the payload plus the checkpoint
// sidecar for codecs that emit one (nil for the rest).
func encodePayload(c Codec, xs []float64) (payload, sidecar []byte, err error) {
	if ce, ok := c.(CheckpointEncoder); ok {
		return ce.EncodeCheckpointed(xs)
	}
	payload, err = c.Encode(xs)
	return payload, nil, err
}

// EncodeBlock compresses xs with c and prepends the versioned block header
// (including the checkpoint sidecar for codecs that emit one).
func EncodeBlock(c Codec, xs []float64) ([]byte, error) {
	if len(xs) > MaxBlockSamples {
		return nil, fmt.Errorf("%w: %d samples exceeds the %d-sample block cap", ErrBadBlock, len(xs), MaxBlockSamples)
	}
	payload, sidecar, err := encodePayload(c, xs)
	if err != nil {
		return nil, err
	}
	return appendHeaderSidecar(c, len(xs), sidecar, payload), nil
}

// ParseBlockHeader parses the header of a block file, returning it and the
// offset at which the codec payload begins (past the sidecar, for version 2
// blocks). Data not starting with the block magic yields ErrNotBlockFormat;
// recognized-but-invalid headers (unknown version, reserved codec ID,
// absurd sample count or sidecar length, truncation) yield ErrBadBlock.
// Parsing is prefix-tolerant: it needs only the first MaxHeaderLen bytes,
// so the returned offset may exceed len(data) when a version-2 prefix is
// parsed without its sidecar — SplitBlock does the full-buffer validation.
func ParseBlockHeader(data []byte) (BlockHeader, int, error) {
	if len(data) < 2 || data[0] != blockMagic0 || data[1] != blockMagic1 {
		return BlockHeader{}, 0, ErrNotBlockFormat
	}
	if len(data) < 5 {
		return BlockHeader{}, 0, fmt.Errorf("%w: truncated header (%d bytes)", ErrBadBlock, len(data))
	}
	h := BlockHeader{Version: data[2], CodecID: data[3]}
	if h.Version == 0 || h.Version > BlockFormatVersion {
		return BlockHeader{}, 0, fmt.Errorf("%w: unsupported format version %d", ErrBadBlock, h.Version)
	}
	if h.CodecID == 0 {
		return BlockHeader{}, 0, fmt.Errorf("%w: reserved codec ID 0", ErrBadBlock)
	}
	n, k := binary.Uvarint(data[4:])
	if k <= 0 {
		return BlockHeader{}, 0, fmt.Errorf("%w: bad sample count varint", ErrBadBlock)
	}
	if n > MaxBlockSamples {
		return BlockHeader{}, 0, fmt.Errorf("%w: sample count %d exceeds the %d-sample block cap", ErrBadBlock, n, MaxBlockSamples)
	}
	h.N = int(n)
	off := 4 + k
	if h.Version >= blockVersionSidecar {
		sc, k2 := binary.Uvarint(data[off:])
		if k2 <= 0 {
			return BlockHeader{}, 0, fmt.Errorf("%w: bad sidecar length varint", ErrBadBlock)
		}
		if sc > MaxSidecarBytes {
			return BlockHeader{}, 0, fmt.Errorf("%w: sidecar length %d exceeds the %d-byte cap", ErrBadBlock, sc, MaxSidecarBytes)
		}
		h.SidecarLen = int(sc)
		off += k2 + h.SidecarLen
	}
	return h, off, nil
}

// SplitBlock parses a complete block file into its header, checkpoint
// sidecar (nil for version-1 blocks), and codec payload, validating that
// the buffer actually contains the sidecar the header claims. Readers that
// hold the whole file should use it instead of ParseBlockHeader + slicing.
func SplitBlock(data []byte) (BlockHeader, []byte, []byte, error) {
	h, off, err := ParseBlockHeader(data)
	if err != nil {
		return BlockHeader{}, nil, nil, err
	}
	if off > len(data) {
		return BlockHeader{}, nil, nil, fmt.Errorf("%w: truncated sidecar (%d of %d bytes)", ErrBadBlock, len(data)-(off-h.SidecarLen), h.SidecarLen)
	}
	var sidecar []byte
	if h.SidecarLen > 0 {
		sidecar = data[off-h.SidecarLen : off]
	}
	return h, sidecar, data[off:], nil
}

// IsBlockFormat reports whether data begins with the block-format magic —
// a cheap sniff for callers (the CLI) that accept both block files and
// other formats. True does not imply the block is valid, only that it
// should be parsed as one.
func IsBlockFormat(data []byte) bool {
	return len(data) >= 2 && data[0] == blockMagic0 && data[1] == blockMagic1
}

// DecodeBlock parses a block file and decodes its payload with the codec
// registered for the header's ID.
func DecodeBlock(data []byte) ([]float64, BlockHeader, error) {
	h, _, payload, err := SplitBlock(data)
	if err != nil {
		return nil, BlockHeader{}, err
	}
	c, err := ByID(h.CodecID)
	if err != nil {
		return nil, h, err
	}
	xs, err := c.Decode(payload, h.N)
	if err != nil {
		return nil, h, err
	}
	return xs, h, nil
}

// ReconEncoder is an optional Codec capability: codecs that can hand back
// the decoded reconstruction as a by-product of encoding (CAMEO builds the
// retained-point set either way) implement it so callers avoid a separate
// decode pass. EncodeBlockRecon consults it.
type ReconEncoder interface {
	// EncodeWithRecon returns the encoded payload and the reconstruction a
	// subsequent Decode would produce. recon must not alias xs.
	EncodeWithRecon(xs []float64) (data []byte, recon []float64, err error)
}

// EncodeBlockRecon is EncodeBlock plus the payload offset past the header
// and the block's decoded reconstruction (what a reader of the persisted
// block will observe): codecs providing EncodeWithRecon supply it
// directly, lossless codecs copy the input, and remaining lossy codecs pay
// one decode. The reconstruction never aliases xs, so callers may cache it
// while mutating their input buffers.
func EncodeBlockRecon(c Codec, xs []float64) (data []byte, hdrOff int, recon []float64, err error) {
	if len(xs) > MaxBlockSamples {
		return nil, 0, nil, fmt.Errorf("%w: %d samples exceeds the %d-sample block cap", ErrBadBlock, len(xs), MaxBlockSamples)
	}
	if re, ok := c.(ReconEncoder); ok {
		payload, recon, err := re.EncodeWithRecon(xs)
		if err != nil {
			return nil, 0, nil, err
		}
		data = appendHeader(c, len(xs), payload)
		return data, len(data) - len(payload), recon, nil
	}
	payload, sidecar, err := encodePayload(c, xs)
	if err != nil {
		return nil, 0, nil, err
	}
	data = appendHeaderSidecar(c, len(xs), sidecar, payload)
	hdrOff = len(data) - len(payload)
	if !c.Lossy() {
		return data, hdrOff, append([]float64(nil), xs...), nil
	}
	recon, err = c.Decode(payload, len(xs))
	if err != nil {
		return nil, 0, nil, err
	}
	return data, hdrOff, recon, nil
}
