package codec

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
)

// rangeCodecs returns every registered codec in an encode-capable
// configuration, for the range/aggregate differential tests.
func rangeCodecs() []Codec {
	return []Codec{
		NewCAMEO(core.Options{Lags: 12, Epsilon: 0.05}),
		Gorilla{},
		Chimp{},
		Elf{},
		PMC{},
		Swing{},
		SimPiece{},
	}
}

func rangeSeries(n int) []float64 {
	rng := rand.New(rand.NewSource(7))
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = 20 + 8*math.Sin(2*math.Pi*float64(i)/48) + 0.4*rng.NormFloat64()
	}
	return xs
}

// TestDecodeRangeMatchesDecode pins DecodeRange — native or fallback — to
// the corresponding slice of the full decode, bit for bit, across every
// codec and a sweep of ranges including the empty and single-sample edges.
func TestDecodeRangeMatchesDecode(t *testing.T) {
	xs := rangeSeries(600)
	n := len(xs)
	ranges := [][2]int{
		{0, n}, {0, 0}, {n, n}, {0, 1}, {n - 1, n}, {1, n - 1},
		{17, 18}, {0, 300}, {300, n}, {123, 457}, {599, 600}, {250, 250},
	}
	for _, c := range rangeCodecs() {
		payload, err := c.Encode(xs)
		if err != nil {
			t.Fatalf("%s: encode: %v", c.Name(), err)
		}
		full, err := c.Decode(payload, n)
		if err != nil {
			t.Fatalf("%s: decode: %v", c.Name(), err)
		}
		_, native := c.(RangeDecoder)
		for _, r := range ranges {
			lo, hi := r[0], r[1]
			got, err := DecodeRange(c, payload, n, lo, hi, nil)
			if err != nil {
				t.Fatalf("%s: DecodeRange(%d,%d): %v", c.Name(), lo, hi, err)
			}
			if len(got) != hi-lo {
				t.Fatalf("%s: DecodeRange(%d,%d) returned %d samples", c.Name(), lo, hi, len(got))
			}
			for i, v := range got {
				if v != full[lo+i] {
					t.Fatalf("%s (native=%v): DecodeRange(%d,%d)[%d] = %v, Decode slice has %v",
						c.Name(), native, lo, hi, i, v, full[lo+i])
				}
			}
		}
		// dst append semantics: existing contents stay in place.
		dst := []float64{-1, -2}
		got, err := DecodeRange(c, payload, n, 5, 10, dst)
		if err != nil {
			t.Fatalf("%s: DecodeRange with dst: %v", c.Name(), err)
		}
		if len(got) != 7 || got[0] != -1 || got[1] != -2 || got[2] != full[5] {
			t.Fatalf("%s: DecodeRange must append to dst, got %v", c.Name(), got[:3])
		}
	}
}

// TestSegmentCodecsAreRangeDecoders pins the capability set: the segment
// codecs and CAMEO decode ranges and aggregates natively from the payload
// alone (RangeDecoder/AggDecoder); the bit-stream lossless codecs cannot —
// their payload cannot seek — but serve partial reads through the
// checkpoint-sidecar interfaces instead.
func TestSegmentCodecsAreRangeDecoders(t *testing.T) {
	for _, c := range rangeCodecs() {
		_, rd := c.(RangeDecoder)
		_, ad := c.(AggDecoder)
		_, ce := c.(CheckpointEncoder)
		_, cd := c.(CheckpointDecoder)
		_, cc := c.(CheckpointConfigurable)
		wantNative := c.Lossy() // exactly the segment/line codecs here
		if rd != wantNative || ad != wantNative {
			t.Errorf("%s: RangeDecoder=%v AggDecoder=%v, want both %v", c.Name(), rd, ad, wantNative)
		}
		wantCkpt := !c.Lossy() // exactly the bit-stream codecs here
		if ce != wantCkpt || cd != wantCkpt || cc != wantCkpt {
			t.Errorf("%s: CheckpointEncoder=%v CheckpointDecoder=%v CheckpointConfigurable=%v, want all %v",
				c.Name(), ce, cd, cc, wantCkpt)
		}
	}
}

// TestDecodeRangeAgg checks the pushdown aggregates against folding the
// materialized range: count/min/max exactly (the closed forms evaluate the
// same endpoint expressions decoding uses), sum within a small relative
// tolerance (arithmetic-series order differs from left-to-right).
func TestDecodeRangeAgg(t *testing.T) {
	xs := rangeSeries(600)
	n := len(xs)
	ranges := [][2]int{{0, n}, {0, 1}, {n - 1, n}, {123, 457}, {7, 7}, {0, 48}, {571, 600}}
	for _, c := range rangeCodecs() {
		payload, err := c.Encode(xs)
		if err != nil {
			t.Fatalf("%s: encode: %v", c.Name(), err)
		}
		full, err := c.Decode(payload, n)
		if err != nil {
			t.Fatalf("%s: decode: %v", c.Name(), err)
		}
		for _, r := range ranges {
			lo, hi := r[0], r[1]
			got, err := DecodeRangeAgg(c, payload, n, lo, hi)
			if err != nil {
				t.Fatalf("%s: DecodeRangeAgg(%d,%d): %v", c.Name(), lo, hi, err)
			}
			want := NewRangeAgg()
			want.Add(full[lo:hi])
			if got.Count != want.Count {
				t.Fatalf("%s: agg(%d,%d) count %d, want %d", c.Name(), lo, hi, got.Count, want.Count)
			}
			if got.Count == 0 {
				continue
			}
			if got.Min != want.Min || got.Max != want.Max {
				t.Fatalf("%s: agg(%d,%d) min/max %v/%v, want %v/%v",
					c.Name(), lo, hi, got.Min, got.Max, want.Min, want.Max)
			}
			if tol := 1e-9 * (math.Abs(want.Sum) + 1); math.Abs(got.Sum-want.Sum) > tol {
				t.Fatalf("%s: agg(%d,%d) sum %v, want %v", c.Name(), lo, hi, got.Sum, want.Sum)
			}
		}
	}
}

// TestDecodeWindowAggs pins the one-pass windowed pushdown against the
// per-window DecodeRangeAgg on every native AggDecoder, across aligned
// and unaligned grids (anchors before the fold range, partial first and
// last windows) — the access pattern QueryAgg issues per block.
func TestDecodeWindowAggs(t *testing.T) {
	xs := rangeSeries(600)
	n := len(xs)
	cases := []struct{ lo, hi, anchor, step int }{
		{0, n, 0, 50},
		{0, n, 0, n},        // one window covering everything
		{0, n, 0, 7},        // partial last window
		{123, 457, 100, 60}, /* anchor before lo: partial first window */
		{123, 457, 123, 1},  // one-sample windows
		{37, 41, 0, 100},    // range inside one window
	}
	for _, c := range rangeCodecs() {
		ad, ok := c.(AggDecoder)
		if !ok {
			continue
		}
		payload, err := c.Encode(xs)
		if err != nil {
			t.Fatalf("%s: encode: %v", c.Name(), err)
		}
		for _, tc := range cases {
			k0 := (tc.lo - tc.anchor) / tc.step
			kEnd := (tc.hi - 1 - tc.anchor) / tc.step
			aggs := make([]RangeAgg, kEnd-k0+1)
			for i := range aggs {
				aggs[i] = NewRangeAgg()
			}
			if err := ad.DecodeWindowAggs(payload, n, tc.lo, tc.hi, tc.anchor, tc.step, aggs); err != nil {
				t.Fatalf("%s: DecodeWindowAggs(%+v): %v", c.Name(), tc, err)
			}
			for i := range aggs {
				k := k0 + i
				wlo := max(tc.lo, tc.anchor+k*tc.step)
				whi := min(tc.hi, tc.anchor+(k+1)*tc.step)
				want, err := ad.DecodeRangeAgg(payload, n, wlo, whi)
				if err != nil {
					t.Fatal(err)
				}
				got := aggs[i]
				if got.Count != want.Count || got.Min != want.Min || got.Max != want.Max {
					t.Fatalf("%s: window %d of %+v: got %+v, want %+v", c.Name(), k, tc, got, want)
				}
				if math.Abs(got.Sum-want.Sum) > 1e-9*(math.Abs(want.Sum)+1) {
					t.Fatalf("%s: window %d sum %v, want %v", c.Name(), k, got.Sum, want.Sum)
				}
			}
		}
		// Validation: short accumulator slices and bad grids are rejected.
		one := []RangeAgg{NewRangeAgg()}
		if err := ad.DecodeWindowAggs(payload, n, 0, n, 0, 50, one); err == nil {
			t.Errorf("%s: accepted too few window accumulators", c.Name())
		}
		if err := ad.DecodeWindowAggs(payload, n, 10, 20, 15, 5, one); err == nil {
			t.Errorf("%s: accepted an anchor beyond the range start", c.Name())
		}
		if err := ad.DecodeWindowAggs(payload, n, 0, 10, 0, 0, one); err == nil {
			t.Errorf("%s: accepted step 0", c.Name())
		}
	}
}

// TestDecodeRangeBadBounds rejects out-of-range requests on every codec.
func TestDecodeRangeBadBounds(t *testing.T) {
	xs := rangeSeries(100)
	for _, c := range rangeCodecs() {
		payload, err := c.Encode(xs)
		if err != nil {
			t.Fatalf("%s: encode: %v", c.Name(), err)
		}
		for _, r := range [][2]int{{-1, 10}, {5, 4}, {0, 101}, {101, 101}} {
			if _, err := DecodeRange(c, payload, len(xs), r[0], r[1], nil); err == nil {
				t.Errorf("%s: DecodeRange(%d,%d) accepted bad bounds", c.Name(), r[0], r[1])
			}
			if _, err := DecodeRangeAgg(c, payload, len(xs), r[0], r[1]); err == nil {
				t.Errorf("%s: DecodeRangeAgg(%d,%d) accepted bad bounds", c.Name(), r[0], r[1])
			}
		}
	}
}

// TestRangeAggMerge checks that merging partial aggregates equals
// aggregating the concatenation.
func TestRangeAggMerge(t *testing.T) {
	xs := rangeSeries(200)
	whole := NewRangeAgg()
	whole.Add(xs)
	split := NewRangeAgg()
	for _, cut := range [][2]int{{0, 13}, {13, 13}, {13, 150}, {150, 200}} {
		part := NewRangeAgg()
		part.Add(xs[cut[0]:cut[1]])
		split.Merge(part)
	}
	if split.Count != whole.Count || split.Min != whole.Min || split.Max != whole.Max {
		t.Fatalf("merge mismatch: %+v vs %+v", split, whole)
	}
	if math.Abs(split.Sum-whole.Sum) > 1e-9*(math.Abs(whole.Sum)+1) {
		t.Fatalf("merge sum %v, want %v", split.Sum, whole.Sum)
	}
	empty := NewRangeAgg()
	if empty.Min != math.Inf(1) || empty.Max != math.Inf(-1) || empty.Count != 0 {
		t.Fatalf("NewRangeAgg not the identity: %+v", empty)
	}
}

// TestCAMEODecodeRangeConstantAndSparse exercises CAMEO range decoding on
// the hold regions (before the first and after the last retained point)
// that a generic mid-block range misses.
func TestCAMEODecodeRangeConstantAndSparse(t *testing.T) {
	c := NewCAMEO(core.Options{Lags: 4, Epsilon: 0.5})
	// A constant series compresses to very few points with long holds.
	xs := make([]float64, 200)
	for i := range xs {
		xs[i] = 42.5
	}
	payload, err := c.Encode(xs)
	if err != nil {
		t.Fatal(err)
	}
	full, err := c.Decode(payload, len(xs))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range [][2]int{{0, 3}, {197, 200}, {0, 200}, {50, 150}} {
		got, err := c.DecodeRange(payload, len(xs), r[0], r[1], nil)
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range got {
			if v != full[r[0]+i] {
				t.Fatalf("range (%d,%d)[%d] = %v, want %v", r[0], r[1], i, v, full[r[0]+i])
			}
		}
		agg, err := c.DecodeRangeAgg(payload, len(xs), r[0], r[1])
		if err != nil {
			t.Fatal(err)
		}
		if agg.Count != r[1]-r[0] || agg.Min != 42.5 || agg.Max != 42.5 {
			t.Fatalf("agg(%d,%d) = %+v", r[0], r[1], agg)
		}
	}
}
