package codec

import (
	"encoding/binary"
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
)

// testCAMEO returns an encoding-capable CAMEO codec with small, fast
// options.
func testCAMEO() *CAMEO {
	return NewCAMEO(core.Options{Lags: 24, Epsilon: 0.05})
}

// encoders lists one encoding-capable instance of every registered codec.
func encoders() []Codec {
	return []Codec{
		testCAMEO(),
		Gorilla{},
		Chimp{},
		Elf{},
		PMC{},
		Swing{},
		SimPiece{},
	}
}

// sineSeries is a finite, compressible test block.
func sineSeries(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = 20 + 8*math.Sin(2*math.Pi*float64(i)/24) + 0.3*rng.NormFloat64()
	}
	return xs
}

func TestRegistryResolvesEveryBuiltin(t *testing.T) {
	want := []string{"cameo", "chimp", "elf", "gorilla", "pmc", "simpiece", "swing"}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Names() = %v, want %v", got, want)
		}
	}
	for _, c := range encoders() {
		byID, err := ByID(c.ID())
		if err != nil {
			t.Fatalf("ByID(%d): %v", c.ID(), err)
		}
		if byID.Name() != c.Name() {
			t.Fatalf("ByID(%d) = %q, want %q", c.ID(), byID.Name(), c.Name())
		}
		byName, err := ByName(c.Name())
		if err != nil {
			t.Fatalf("ByName(%q): %v", c.Name(), err)
		}
		if byName.ID() != c.ID() {
			t.Fatalf("ByName(%q).ID = %d, want %d", c.Name(), byName.ID(), c.ID())
		}
	}
	if _, err := ByID(200); !errors.Is(err, ErrUnknownCodec) {
		t.Fatalf("ByID(200) = %v, want ErrUnknownCodec", err)
	}
	if _, err := ByName("zstd"); !errors.Is(err, ErrUnknownCodec) {
		t.Fatalf("ByName(zstd) = %v, want ErrUnknownCodec", err)
	}
}

func TestEveryCodecRoundTripsThroughBlocks(t *testing.T) {
	xs := sineSeries(600, 3)
	lo, hi := xs[0], xs[0]
	for _, v := range xs {
		lo, hi = math.Min(lo, v), math.Max(hi, v)
	}
	for _, c := range encoders() {
		data, err := EncodeBlock(c, xs)
		if err != nil {
			t.Fatalf("%s: EncodeBlock: %v", c.Name(), err)
		}
		h, off, err := ParseBlockHeader(data)
		if err != nil {
			t.Fatalf("%s: ParseBlockHeader: %v", c.Name(), err)
		}
		// Codecs that emit a checkpoint sidecar (the bit-stream family, on a
		// block larger than the default interval) write version 2; the rest
		// stay on the byte-identical version-1 layout.
		wantVer := uint8(blockVersionPlain)
		if _, ok := c.(CheckpointEncoder); ok {
			wantVer = blockVersionSidecar
		}
		if h.Version != wantVer || h.CodecID != c.ID() || h.N != len(xs) {
			t.Fatalf("%s: header %+v, want version %d", c.Name(), h, wantVer)
		}
		if (h.SidecarLen > 0) != (wantVer == blockVersionSidecar) {
			t.Fatalf("%s: sidecar length %d under version %d", c.Name(), h.SidecarLen, h.Version)
		}
		if off <= 4 || off > MaxHeaderLen+h.SidecarLen {
			t.Fatalf("%s: payload offset %d", c.Name(), off)
		}
		got, gotHdr, err := DecodeBlock(data)
		if err != nil {
			t.Fatalf("%s: DecodeBlock: %v", c.Name(), err)
		}
		if gotHdr != h {
			t.Fatalf("%s: DecodeBlock header %+v != %+v", c.Name(), gotHdr, h)
		}
		if len(got) != len(xs) {
			t.Fatalf("%s: decoded %d samples, want %d", c.Name(), len(got), len(xs))
		}
		switch {
		case !c.Lossy():
			for i := range xs {
				if got[i] != xs[i] {
					t.Fatalf("%s: lossless mismatch at %d: %v != %v", c.Name(), i, got[i], xs[i])
				}
			}
		case c.Name() == "cameo":
			// CAMEO bounds the ACF deviation, not pointwise error; just
			// sanity-check the reconstruction stays in a generous envelope.
			for i := range xs {
				if math.Abs(got[i]-xs[i]) > (hi - lo) {
					t.Fatalf("cameo: wild value at %d: %v vs %v", i, got[i], xs[i])
				}
			}
		default:
			// Segment codecs guarantee per-value error <= DefaultRelBound
			// of the block's value range.
			bound := DefaultRelBound*(hi-lo) + 1e-12
			for i := range xs {
				if math.Abs(got[i]-xs[i]) > bound {
					t.Fatalf("%s: error %v at %d exceeds bound %v", c.Name(), math.Abs(got[i]-xs[i]), i, bound)
				}
			}
		}
	}
}

func TestLosslessCodecsHandleHostileFloats(t *testing.T) {
	xs := []float64{0, math.Copysign(0, -1), math.NaN(), math.Inf(1), math.Inf(-1),
		math.MaxFloat64, math.SmallestNonzeroFloat64, 1e-300, -1e300, math.Pi, math.Pi}
	for _, c := range []Codec{Gorilla{}, Chimp{}, Elf{}} {
		data, err := EncodeBlock(c, xs)
		if err != nil {
			t.Fatalf("%s: %v", c.Name(), err)
		}
		got, _, err := DecodeBlock(data)
		if err != nil {
			t.Fatalf("%s: %v", c.Name(), err)
		}
		for i := range xs {
			if math.Float64bits(got[i]) != math.Float64bits(xs[i]) {
				t.Fatalf("%s: bit mismatch at %d: %x != %x", c.Name(), i,
					math.Float64bits(got[i]), math.Float64bits(xs[i]))
			}
		}
	}
}

func TestLossySegmentCodecsRejectNonFinite(t *testing.T) {
	for _, c := range []Codec{PMC{}, Swing{}, SimPiece{}} {
		if _, err := c.Encode([]float64{1, math.NaN(), 3}); err == nil {
			t.Fatalf("%s: expected error for NaN input", c.Name())
		}
		if _, err := c.Encode([]float64{1, math.Inf(1), 3}); err == nil {
			t.Fatalf("%s: expected error for Inf input", c.Name())
		}
	}
}

func TestParseBlockHeaderRejectsCorruption(t *testing.T) {
	good, err := EncodeBlock(Gorilla{}, sineSeries(64, 4))
	if err != nil {
		t.Fatal(err)
	}

	if _, _, err := ParseBlockHeader([]byte{'C', 'A', 'M', '1'}); !errors.Is(err, ErrNotBlockFormat) {
		t.Fatalf("legacy magic: %v, want ErrNotBlockFormat", err)
	}
	if _, _, err := ParseBlockHeader(nil); !errors.Is(err, ErrNotBlockFormat) {
		t.Fatalf("empty: %v, want ErrNotBlockFormat", err)
	}
	if _, _, err := ParseBlockHeader(good[:3]); !errors.Is(err, ErrBadBlock) {
		t.Fatalf("truncated header: %v, want ErrBadBlock", err)
	}

	mut := append([]byte(nil), good...)
	mut[2] = 99 // unsupported version
	if _, _, err := ParseBlockHeader(mut); !errors.Is(err, ErrBadBlock) {
		t.Fatalf("bad version: %v, want ErrBadBlock", err)
	}

	mut = append([]byte(nil), good...)
	mut[3] = 0 // reserved codec ID
	if _, _, err := ParseBlockHeader(mut); !errors.Is(err, ErrBadBlock) {
		t.Fatalf("codec ID 0: %v, want ErrBadBlock", err)
	}

	mut = append([]byte(nil), good...)
	mut[3] = 250 // unregistered codec ID: header parses, decode must fail
	if _, _, err := ParseBlockHeader(mut); err != nil {
		t.Fatalf("unknown codec ID should still parse: %v", err)
	}
	if _, _, err := DecodeBlock(mut); !errors.Is(err, ErrUnknownCodec) {
		t.Fatalf("unknown codec ID: %v, want ErrUnknownCodec", err)
	}

	// Absurd sample count: magic+version+codec then a huge uvarint.
	huge := []byte{blockMagic0, blockMagic1, 1, byte(IDGorilla), 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F}
	if _, _, err := ParseBlockHeader(huge); !errors.Is(err, ErrBadBlock) {
		t.Fatalf("huge N: %v, want ErrBadBlock", err)
	}

	// Truncated payload must fail decode with a clear error, not panic.
	if _, _, err := DecodeBlock(good[:len(good)-3]); err == nil {
		t.Fatal("truncated payload decoded successfully")
	}
}

func TestSegmentPayloadValidation(t *testing.T) {
	xs := sineSeries(100, 5)
	for _, c := range []Codec{PMC{}, Swing{}, SimPiece{}} {
		payload, err := c.Encode(xs)
		if err != nil {
			t.Fatal(err)
		}
		// Wrong sample count: segments no longer cover n.
		if _, err := c.Decode(payload, len(xs)+1); !errors.Is(err, ErrBadBlock) {
			t.Fatalf("%s: n mismatch: %v, want ErrBadBlock", c.Name(), err)
		}
		// Truncation mid-stream.
		if _, err := c.Decode(payload[:len(payload)-5], len(xs)); !errors.Is(err, ErrBadBlock) {
			t.Fatalf("%s: truncated: %v, want ErrBadBlock", c.Name(), err)
		}
		// Trailing garbage.
		if _, err := c.Decode(append(append([]byte(nil), payload...), 0xAB), len(xs)); !errors.Is(err, ErrBadBlock) {
			t.Fatalf("%s: trailing bytes: %v, want ErrBadBlock", c.Name(), err)
		}
	}
}

func TestCAMEOZeroValueDecodesButCannotEncode(t *testing.T) {
	xs := sineSeries(400, 6)
	enc := testCAMEO()
	data, err := EncodeBlock(enc, xs)
	if err != nil {
		t.Fatal(err)
	}
	_, off, err := ParseBlockHeader(data)
	if err != nil {
		t.Fatal(err)
	}
	var zero CAMEO
	if _, err := zero.Decode(data[off:], len(xs)); err != nil {
		t.Fatalf("zero-value decode: %v", err)
	}
	if _, err := zero.Encode(xs); err == nil {
		t.Fatal("zero-value encode should fail (no options)")
	}
	// Sample-count mismatch against the header is rejected.
	if _, err := enc.Decode(data[off:], len(xs)-1); !errors.Is(err, ErrBadBlock) {
		t.Fatalf("n mismatch: %v, want ErrBadBlock", err)
	}
}

func TestEncodeBlockReconMatchesDecode(t *testing.T) {
	xs := sineSeries(500, 8)
	for _, c := range encoders() {
		data, hdrOff, recon, err := EncodeBlockRecon(c, xs)
		if err != nil {
			t.Fatalf("%s: %v", c.Name(), err)
		}
		if _, off, err := ParseBlockHeader(data); err != nil || off != hdrOff {
			t.Fatalf("%s: reported offset %d, parsed %d (%v)", c.Name(), hdrOff, off, err)
		}
		dec, _, err := DecodeBlock(data)
		if err != nil {
			t.Fatalf("%s: %v", c.Name(), err)
		}
		if len(recon) != len(dec) {
			t.Fatalf("%s: recon %d samples, decode %d", c.Name(), len(recon), len(dec))
		}
		for i := range dec {
			if recon[i] != dec[i] {
				t.Fatalf("%s: recon[%d] = %v, decode = %v", c.Name(), i, recon[i], dec[i])
			}
		}
		// The recon must be an independent copy: mutating the input after
		// encoding (as the tsdb tail buffer does) must not corrupt it.
		before := recon[0]
		xs[0] += 1000
		if recon[0] != before {
			t.Fatalf("%s: recon aliases the input", c.Name())
		}
		xs[0] -= 1000
	}
}

func TestMinBlock(t *testing.T) {
	if got := MinBlock(Gorilla{}); got != 1 {
		t.Fatalf("gorilla MinBlock = %d, want 1", got)
	}
	c := NewCAMEO(core.Options{Lags: 24, Epsilon: 0.01})
	if got := MinBlock(c); got != 96 {
		t.Fatalf("cameo MinBlock = %d, want 96", got)
	}
	c = NewCAMEO(core.Options{Lags: 10, Epsilon: 0.01, AggWindow: 4})
	if got := MinBlock(c); got != 160 {
		t.Fatalf("aggregated cameo MinBlock = %d, want 160", got)
	}
}

func TestEmptyBlockRoundTrips(t *testing.T) {
	for _, c := range []Codec{Gorilla{}, Chimp{}, Elf{}, PMC{}, Swing{}, SimPiece{}} {
		data, err := EncodeBlock(c, nil)
		if err != nil {
			t.Fatalf("%s: %v", c.Name(), err)
		}
		got, h, err := DecodeBlock(data)
		if err != nil {
			t.Fatalf("%s: %v", c.Name(), err)
		}
		if h.N != 0 || len(got) != 0 {
			t.Fatalf("%s: n=%d len=%d", c.Name(), h.N, len(got))
		}
	}
}

// TestHostileCountsCannotProvokeGiantAllocations replays the attack the
// allocation caps exist for: tiny buffers whose headers claim huge sample
// or point counts must fail fast with an error, not allocate gigabytes.
func TestHostileCountsCannotProvokeGiantAllocations(t *testing.T) {
	// Valid block header (cameo, small N) over a CAM1 payload claiming
	// 2^31-1 samples in 2^31-1 points.
	payload := []byte{'C', 'A', 'M', '1'}
	payload = binary.AppendUvarint(payload, 1<<31-1) // n
	payload = binary.AppendUvarint(payload, 1<<31-1) // point count
	hostile := appendHeader(&CAMEO{}, 64, payload)
	if _, _, err := DecodeBlock(hostile); err == nil {
		t.Fatal("hostile CAMEO payload decoded successfully")
	}
	// Same payload decoded directly with a huge claimed n.
	var zero CAMEO
	if _, err := zero.Decode(payload, 1<<31-1); err == nil {
		t.Fatal("hostile count accepted by CAMEO.Decode")
	}
}
