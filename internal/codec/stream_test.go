package codec

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
)

// TestCAMEOStreamByteIdentical proves the streaming satellite invariant at
// the block level: a block compressed through the stream session, in any
// advance quantum, serializes to exactly the bytes EncodeBlockRecon
// produces, with the same header offset and reconstruction — so every
// existing reader (cursor, RangeDecoder, QueryAgg) decodes streamed blocks
// unchanged.
func TestCAMEOStreamByteIdentical(t *testing.T) {
	c := NewCAMEO(core.Options{Lags: 24, Epsilon: 0.05})
	var se StreamEncoder = c // compile-time capability check
	bs, err := se.NewBlockStream()
	if err != nil {
		t.Fatal(err)
	}
	defer bs.Close()

	r := rand.New(rand.NewSource(4))
	for blk := 0; blk < 3; blk++ { // session reuse across blocks
		xs := make([]float64, 2048)
		for i := range xs {
			xs[i] = math.Sin(2*math.Pi*float64(i)/96) + 0.3*r.NormFloat64()
		}
		want, wantOff, wantRecon, err := EncodeBlockRecon(c, xs)
		if err != nil {
			t.Fatal(err)
		}
		for _, quantum := range []int{97, 1 << 30} {
			if err := bs.Begin(xs); err != nil {
				t.Fatal(err)
			}
			if _, _, err := bs.Payload(); err == nil {
				t.Fatal("Payload succeeded before the block finished")
			}
			for {
				if _, done := bs.Advance(quantum); done {
					break
				}
			}
			got, gotOff, gotRecon, err := EncodeStreamBlock(c, bs, len(xs))
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("blk=%d q=%d: streamed block bytes differ from batch (%d vs %d bytes)", blk, quantum, len(got), len(want))
			}
			if gotOff != wantOff {
				t.Fatalf("blk=%d q=%d: hdrOff %d != %d", blk, quantum, gotOff, wantOff)
			}
			if len(gotRecon) != len(wantRecon) {
				t.Fatalf("blk=%d q=%d: recon length %d != %d", blk, quantum, len(gotRecon), len(wantRecon))
			}
			for i := range wantRecon {
				if gotRecon[i] != wantRecon[i] {
					t.Fatalf("blk=%d q=%d: recon[%d] = %v != %v", blk, quantum, i, gotRecon[i], wantRecon[i])
				}
			}
			// And the standard reader path accepts it.
			hdr, off, err := ParseBlockHeader(got)
			if err != nil {
				t.Fatal(err)
			}
			if hdr.N != len(xs) || off != gotOff {
				t.Fatalf("blk=%d q=%d: header (n=%d off=%d) want (n=%d off=%d)", blk, quantum, hdr.N, off, len(xs), gotOff)
			}
			dec, err := c.Decode(got[off:], hdr.N)
			if err != nil {
				t.Fatal(err)
			}
			for i := range dec {
				if dec[i] != wantRecon[i] {
					t.Fatalf("blk=%d q=%d: decode[%d] = %v != %v", blk, quantum, i, dec[i], wantRecon[i])
				}
			}
		}
	}
}

// TestCAMEOStreamNeedsOptions pins the zero-value guard.
func TestCAMEOStreamNeedsOptions(t *testing.T) {
	var c CAMEO
	if _, err := c.NewBlockStream(); err == nil {
		t.Fatal("zero-value CAMEO produced a block stream")
	}
}
