package codec

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/lossy"
)

// The pointwise-lossy adapters wrap the segment-based compressors of
// internal/lossy (PMC, Swing, Sim-Piece). Each guarantees a per-value
// reconstruction error of at most RelBound times the block's value range,
// and serializes its segments as
//
//	uvarint segment count | per segment: uvarint length + model floats
//
// with starts implied by cumulative lengths, so decoding needs no
// parameters — the error bound only shapes encoding. These codecs reject
// non-finite input: NaN poisons their window comparisons, silently
// absorbing the whole block into one garbage segment.

// DefaultRelBound is the per-value error bound used when a lossy segment
// codec's RelBound is zero: 1% of the block's value range.
const DefaultRelBound = 0.01

// segErrBound maps a relative bound to the absolute per-value bound for
// one block, rejecting non-finite samples.
func segErrBound(xs []float64, rel float64) (float64, error) {
	if rel == 0 {
		rel = DefaultRelBound
	}
	if rel < 0 || math.IsNaN(rel) {
		return 0, fmt.Errorf("codec: RelBound must be non-negative, got %v", rel)
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for i, v := range xs {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return 0, fmt.Errorf("codec: non-finite value at index %d (lossy segment codecs need finite input)", i)
		}
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	rng := hi - lo
	if !(rng > 0) { // empty or constant block
		rng = 1
	}
	return rel * rng, nil
}

// segWriter appends length-prefixed segment records.
type segWriter struct{ buf []byte }

func (w *segWriter) count(c int)  { w.buf = binary.AppendUvarint(w.buf, uint64(c)) }
func (w *segWriter) length(l int) { w.buf = binary.AppendUvarint(w.buf, uint64(l)) }
func (w *segWriter) float(v float64) {
	w.buf = binary.LittleEndian.AppendUint64(w.buf, math.Float64bits(v))
}
func (w *segWriter) bytes() []byte    { return w.buf }
func newSegWriter(cap int) *segWriter { return &segWriter{buf: make([]byte, 0, cap)} }

// segReader parses length-prefixed segment records with bounds checking.
type segReader struct {
	data []byte
	off  int
}

func (r *segReader) uvarint() (int, error) {
	v, k := binary.Uvarint(r.data[r.off:])
	if k <= 0 || v > MaxBlockSamples {
		return 0, fmt.Errorf("%w: bad segment varint", ErrBadBlock)
	}
	r.off += k
	return int(v), nil
}

func (r *segReader) float() (float64, error) {
	if r.off+8 > len(r.data) {
		return 0, fmt.Errorf("%w: truncated segment float", ErrBadBlock)
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(r.data[r.off:]))
	r.off += 8
	return v, nil
}

func (r *segReader) done() error {
	if r.off != len(r.data) {
		return fmt.Errorf("%w: %d trailing bytes after segments", ErrBadBlock, len(r.data)-r.off)
	}
	return nil
}

// decodeSegments validates n, parses the segment stream, and emits each
// segment with its cumulative start — the shared decode shape of the three
// segment codecs, which differ only in their segment struct and float
// count.
func decodeSegments(data []byte, n, floatsPer int, emit func(start, length int, fs []float64)) error {
	if n < 0 || n > MaxBlockSamples {
		return fmt.Errorf("%w: bad sample count %d", ErrBadBlock, n)
	}
	lengths, floats, err := readSegments(data, n, floatsPer)
	if err != nil {
		return err
	}
	start := 0
	for i := range lengths {
		emit(start, lengths[i], floats[i])
		start += lengths[i]
	}
	return nil
}

// readSegments parses count and per-segment (length, floatsPer floats),
// validating that lengths are positive and sum exactly to n.
func readSegments(data []byte, n, floatsPer int) (lengths []int, floats [][]float64, err error) {
	r := &segReader{data: data}
	count, err := r.uvarint()
	if err != nil {
		return nil, nil, err
	}
	// Each segment needs at least 1 varint byte + 8 bytes per float, so a
	// count beyond this is structurally impossible — reject before
	// allocating for it.
	if count > (len(data)-r.off)/(1+8*floatsPer)+1 {
		return nil, nil, fmt.Errorf("%w: segment count %d exceeds payload", ErrBadBlock, count)
	}
	lengths = make([]int, count)
	floats = make([][]float64, count)
	total := 0
	for i := 0; i < count; i++ {
		l, err := r.uvarint()
		if err != nil {
			return nil, nil, err
		}
		if l < 1 || l > n-total {
			return nil, nil, fmt.Errorf("%w: segment %d length %d overruns block of %d", ErrBadBlock, i, l, n)
		}
		total += l
		lengths[i] = l
		fs := make([]float64, floatsPer)
		for j := range fs {
			if fs[j], err = r.float(); err != nil {
				return nil, nil, err
			}
		}
		floats[i] = fs
	}
	if total != n {
		return nil, nil, fmt.Errorf("%w: segments cover %d of %d samples", ErrBadBlock, total, n)
	}
	if err := r.done(); err != nil {
		return nil, nil, err
	}
	return lengths, floats, nil
}

// PMC is Poor Man's Compression: piecewise-constant segments, each stored
// as one length + one value. Lossy with per-value error <= RelBound x the
// block's value range.
type PMC struct {
	// RelBound is the per-value error bound as a fraction of the block's
	// value range (0 selects DefaultRelBound).
	RelBound float64
}

// Name returns "pmc".
func (PMC) Name() string { return "pmc" }

// ID returns IDPMC.
func (PMC) ID() uint8 { return IDPMC }

// Lossy reports true.
func (PMC) Lossy() bool { return true }

// Encode compresses the block into constant segments.
func (c PMC) Encode(xs []float64) ([]byte, error) {
	eb, err := segErrBound(xs, c.RelBound)
	if err != nil {
		return nil, err
	}
	segs := lossy.PMCSegments(xs, eb)
	w := newSegWriter(2 + 10*len(segs))
	w.count(len(segs))
	for _, s := range segs {
		w.length(s.Length)
		w.float(s.Value)
	}
	return w.bytes(), nil
}

// Decode reconstructs the dense block from the segment stream.
func (PMC) Decode(data []byte, n int) ([]float64, error) {
	var segs []lossy.PMCSegment
	err := decodeSegments(data, n, 1, func(start, length int, fs []float64) {
		segs = append(segs, lossy.PMCSegment{Start: start, Length: length, Value: fs[0]})
	})
	if err != nil {
		return nil, err
	}
	return lossy.PMCDecode(n, segs), nil
}

// DecodeRange evaluates only the constant segments overlapping [lo, hi),
// appending to dst. Bit-identical to the corresponding slice of Decode.
func (PMC) DecodeRange(data []byte, n, lo, hi int, dst []float64) ([]float64, error) {
	if err := checkRange(n, lo, hi); err != nil {
		return nil, err
	}
	err := decodeSegments(data, n, 1, func(start, length int, fs []float64) {
		for t := max(lo, start); t < min(hi, start+length); t++ {
			dst = append(dst, fs[0])
		}
	})
	if err != nil {
		return nil, err
	}
	return dst, nil
}

// DecodeRangeAgg computes sum/min/max/count over [lo, hi) from the
// constant segment parameters alone; no samples are materialized.
func (c PMC) DecodeRangeAgg(data []byte, n, lo, hi int) (RangeAgg, error) {
	return oneWindowAgg(c, data, n, lo, hi)
}

// DecodeWindowAggs folds [lo, hi) into step-sample windows in one pass
// over the constant segments; no samples are materialized.
func (PMC) DecodeWindowAggs(data []byte, n, lo, hi, anchor, step int, aggs []RangeAgg) error {
	if err := checkWindows(n, lo, hi, anchor, step, aggs); err != nil {
		return err
	}
	wa := newWindowAccs(lo, anchor, step, aggs)
	return decodeSegments(data, n, 1, func(start, length int, fs []float64) {
		if t0, t1 := max(lo, start), min(hi, start+length); t0 < t1 {
			wa.addConst(t0, t1, fs[0])
		}
	})
}

// oneWindowAgg adapts a DecodeWindowAggs implementation to the
// single-range DecodeRangeAgg shape.
func oneWindowAgg(ad AggDecoder, data []byte, n, lo, hi int) (RangeAgg, error) {
	if err := checkRange(n, lo, hi); err != nil {
		return RangeAgg{}, err
	}
	agg := [1]RangeAgg{NewRangeAgg()}
	if lo == hi {
		return agg[0], nil
	}
	if err := ad.DecodeWindowAggs(data, n, lo, hi, lo, hi-lo, agg[:]); err != nil {
		return RangeAgg{}, err
	}
	return agg[0], nil
}

// linearRange appends the overlap of [lo, hi) with each linear segment of
// a 2-float stream (base fs[0], slope fs[1], value base + slope*(t-start))
// — the shared range-decode of Swing and Sim-Piece, whose dense decoders
// evaluate exactly this expression.
func linearRange(data []byte, n, lo, hi int, dst []float64) ([]float64, error) {
	if err := checkRange(n, lo, hi); err != nil {
		return nil, err
	}
	err := decodeSegments(data, n, 2, func(start, length int, fs []float64) {
		for t := max(lo, start); t < min(hi, start+length); t++ {
			dst = append(dst, fs[0]+fs[1]*float64(t-start))
		}
	})
	if err != nil {
		return nil, err
	}
	return dst, nil
}

// linearWindowAggs folds [lo, hi) of a 2-float linear segment stream into
// step-sample windows in one closed-form pass — the shared aggregate
// pushdown of Swing and Sim-Piece.
func linearWindowAggs(data []byte, n, lo, hi, anchor, step int, aggs []RangeAgg) error {
	if err := checkWindows(n, lo, hi, anchor, step, aggs); err != nil {
		return err
	}
	wa := newWindowAccs(lo, anchor, step, aggs)
	return decodeSegments(data, n, 2, func(start, length int, fs []float64) {
		if t0, t1 := max(lo, start), min(hi, start+length); t0 < t1 {
			wa.addLinear(t0, t1, start, fs[0], fs[1])
		}
	})
}

// Swing is the Swing filter: piecewise-linear segments anchored at their
// first point, each stored as length + start value + slope. Lossy with
// per-value error <= RelBound x the block's value range.
type Swing struct {
	// RelBound is the per-value error bound as a fraction of the block's
	// value range (0 selects DefaultRelBound).
	RelBound float64
}

// Name returns "swing".
func (Swing) Name() string { return "swing" }

// ID returns IDSwing.
func (Swing) ID() uint8 { return IDSwing }

// Lossy reports true.
func (Swing) Lossy() bool { return true }

// Encode compresses the block into linear segments.
func (c Swing) Encode(xs []float64) ([]byte, error) {
	eb, err := segErrBound(xs, c.RelBound)
	if err != nil {
		return nil, err
	}
	segs := lossy.SwingSegments(xs, eb)
	w := newSegWriter(2 + 18*len(segs))
	w.count(len(segs))
	for _, s := range segs {
		w.length(s.Length)
		w.float(s.StartValue)
		w.float(s.Slope)
	}
	return w.bytes(), nil
}

// Decode reconstructs the dense block from the segment stream.
func (Swing) Decode(data []byte, n int) ([]float64, error) {
	var segs []lossy.SwingSegment
	err := decodeSegments(data, n, 2, func(start, length int, fs []float64) {
		segs = append(segs, lossy.SwingSegment{Start: start, Length: length, StartValue: fs[0], Slope: fs[1]})
	})
	if err != nil {
		return nil, err
	}
	return lossy.SwingDecode(n, segs), nil
}

// DecodeRange evaluates only the linear segments overlapping [lo, hi),
// appending to dst. Bit-identical to the corresponding slice of Decode.
func (Swing) DecodeRange(data []byte, n, lo, hi int, dst []float64) ([]float64, error) {
	return linearRange(data, n, lo, hi, dst)
}

// DecodeRangeAgg computes sum/min/max/count over [lo, hi) from the linear
// segment parameters alone; no samples are materialized.
func (c Swing) DecodeRangeAgg(data []byte, n, lo, hi int) (RangeAgg, error) {
	return oneWindowAgg(c, data, n, lo, hi)
}

// DecodeWindowAggs folds [lo, hi) into step-sample windows in one pass
// over the linear segments; no samples are materialized.
func (Swing) DecodeWindowAggs(data []byte, n, lo, hi, anchor, step int, aggs []RangeAgg) error {
	return linearWindowAggs(data, n, lo, hi, anchor, step, aggs)
}

// SimPiece is the Sim-Piece compressor: piecewise-linear segments with
// epsilon-quantized intercepts and merged shared slopes, each stored as
// length + intercept + slope. (The serialized form stores the intercept
// and slope per segment rather than Sim-Piece's grouped table, trading a
// few bytes for a self-delimiting stream.) Lossy with per-value error <=
// RelBound x the block's value range.
type SimPiece struct {
	// RelBound is the per-value error bound as a fraction of the block's
	// value range (0 selects DefaultRelBound).
	RelBound float64
}

// Name returns "simpiece".
func (SimPiece) Name() string { return "simpiece" }

// ID returns IDSimPiece.
func (SimPiece) ID() uint8 { return IDSimPiece }

// Lossy reports true.
func (SimPiece) Lossy() bool { return true }

// Encode compresses the block into merged linear segments.
func (c SimPiece) Encode(xs []float64) ([]byte, error) {
	eb, err := segErrBound(xs, c.RelBound)
	if err != nil {
		return nil, err
	}
	segs, _ := lossy.SimPieceSegments(xs, eb)
	w := newSegWriter(2 + 18*len(segs))
	w.count(len(segs))
	for _, s := range segs {
		w.length(s.Length)
		w.float(s.B)
		w.float(s.A)
	}
	return w.bytes(), nil
}

// Decode reconstructs the dense block from the segment stream.
func (SimPiece) Decode(data []byte, n int) ([]float64, error) {
	var segs []lossy.SPSegment
	err := decodeSegments(data, n, 2, func(start, length int, fs []float64) {
		segs = append(segs, lossy.SPSegment{Start: start, Length: length, B: fs[0], A: fs[1]})
	})
	if err != nil {
		return nil, err
	}
	return lossy.SPDecode(n, segs), nil
}

// DecodeRange evaluates only the merged linear segments overlapping
// [lo, hi), appending to dst. Bit-identical to the corresponding slice of
// Decode.
func (SimPiece) DecodeRange(data []byte, n, lo, hi int, dst []float64) ([]float64, error) {
	return linearRange(data, n, lo, hi, dst)
}

// DecodeRangeAgg computes sum/min/max/count over [lo, hi) from the merged
// linear segment parameters alone; no samples are materialized.
func (c SimPiece) DecodeRangeAgg(data []byte, n, lo, hi int) (RangeAgg, error) {
	return oneWindowAgg(c, data, n, lo, hi)
}

// DecodeWindowAggs folds [lo, hi) into step-sample windows in one pass
// over the merged linear segments; no samples are materialized.
func (SimPiece) DecodeWindowAggs(data []byte, n, lo, hi, anchor, step int, aggs []RangeAgg) error {
	return linearWindowAggs(data, n, lo, hi, anchor, step, aggs)
}
