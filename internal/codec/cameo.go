package codec

import (
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/series"
)

// CAMEO is the autocorrelation-preserving lossy codec: blocks are
// compressed with core.Compress under Opt and stored as the compact
// irregular-series encoding (uvarint index deltas + XOR-compressed values).
// It is the engine's default codec and the only one whose fidelity target
// is a downstream statistic (ACF/PACF deviation) rather than pointwise
// error.
//
// Each codec instance owns a pool of core.Compressor engines keyed, by
// construction, to its option set: concurrent block encoders (the tsdb
// worker pool) check an engine out per block and return it, so steady-state
// block compression reuses the engine's reconstruction buffers, heap
// arrays, and evaluation scratch instead of reallocating them per block.
//
// The zero value decodes any CAMEO block (decoding needs no options) but
// cannot encode; use NewCAMEO for an encoding-capable instance. A CAMEO
// must not be copied after first use (it contains a sync.Pool).
type CAMEO struct {
	Opt core.Options

	engines sync.Pool // *core.Compressor
}

// NewCAMEO returns a CAMEO codec compressing under opt (Lags and Epsilon /
// TargetRatio required, as for core.Compress).
func NewCAMEO(opt core.Options) *CAMEO { return &CAMEO{Opt: opt} }

// Name returns "cameo".
func (*CAMEO) Name() string { return "cameo" }

// ID returns IDCAMEO.
func (*CAMEO) ID() uint8 { return IDCAMEO }

// Lossy reports true: decoding linearly interpolates between retained
// points.
func (*CAMEO) Lossy() bool { return true }

// MinBlock is the smallest block the configured statistic can be estimated
// on (the streaming minimum 4x lags, scaled by the aggregation window).
func (c *CAMEO) MinBlock() int {
	m := 4 * c.Opt.Lags
	if c.Opt.AggWindow >= 2 {
		m *= c.Opt.AggWindow
	}
	if m < 1 {
		m = 1
	}
	return m
}

// Encode compresses one block under the configured options.
func (c *CAMEO) Encode(xs []float64) ([]byte, error) {
	data, _, err := c.EncodeWithRecon(xs)
	return data, err
}

// EncodeWithRecon compresses one block and returns the reconstruction the
// retained points interpolate to, saving callers the decode round-trip.
func (c *CAMEO) EncodeWithRecon(xs []float64) ([]byte, []float64, error) {
	cmp, _ := c.engines.Get().(*core.Compressor)
	if cmp == nil {
		var err error
		cmp, err = core.NewCompressor(c.Opt)
		if err != nil {
			return nil, nil, fmt.Errorf("codec: cameo needs compression options (use NewCAMEO): %w", err)
		}
	}
	res, err := cmp.Compress(xs)
	c.engines.Put(cmp)
	if err != nil {
		return nil, nil, err
	}
	return res.Compressed.Encode(), res.Compressed.Decompress(), nil
}

// Decode parses the irregular-series encoding and reconstructs the dense
// block by linear interpolation. The sample count is validated against the
// block cap and the payload's own header before the dense reconstruction
// is allocated, so a hostile count cannot provoke a giant allocation.
func (c *CAMEO) Decode(data []byte, n int) ([]float64, error) {
	if n < 0 || n > MaxBlockSamples {
		return nil, fmt.Errorf("%w: bad sample count %d", ErrBadBlock, n)
	}
	ir, err := series.DecodeIrregular(data)
	if err != nil {
		return nil, err
	}
	if ir.N != n {
		return nil, fmt.Errorf("%w: cameo payload holds %d samples, header says %d", ErrBadBlock, ir.N, n)
	}
	return ir.Decompress(), nil
}
