package codec

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/series"
)

// CAMEO is the autocorrelation-preserving lossy codec: blocks are
// compressed with core.Compress under Opt and stored as the compact
// irregular-series encoding (uvarint index deltas + XOR-compressed values).
// It is the engine's default codec and the only one whose fidelity target
// is a downstream statistic (ACF/PACF deviation) rather than pointwise
// error.
//
// Each codec instance owns a pool of core.Compressor engines keyed, by
// construction, to its option set: concurrent block encoders (the tsdb
// worker pool) check an engine out per block and return it, so steady-state
// block compression reuses the engine's reconstruction buffers, heap
// arrays, and evaluation scratch instead of reallocating them per block.
//
// The zero value decodes any CAMEO block (decoding needs no options) but
// cannot encode; use NewCAMEO for an encoding-capable instance. A CAMEO
// must not be copied after first use (it contains a sync.Pool).
type CAMEO struct {
	Opt core.Options

	engines sync.Pool // *core.Compressor
}

// NewCAMEO returns a CAMEO codec compressing under opt (Lags and Epsilon /
// TargetRatio required, as for core.Compress).
func NewCAMEO(opt core.Options) *CAMEO { return &CAMEO{Opt: opt} }

// Name returns "cameo".
func (*CAMEO) Name() string { return "cameo" }

// ID returns IDCAMEO.
func (*CAMEO) ID() uint8 { return IDCAMEO }

// Lossy reports true: decoding linearly interpolates between retained
// points.
func (*CAMEO) Lossy() bool { return true }

// MinBlock is the smallest block the configured statistic can be estimated
// on (the streaming minimum 4x lags, scaled by the aggregation window).
func (c *CAMEO) MinBlock() int {
	m := 4 * c.Opt.Lags
	if c.Opt.AggWindow >= 2 {
		m *= c.Opt.AggWindow
	}
	if m < 1 {
		m = 1
	}
	return m
}

// Encode compresses one block under the configured options.
func (c *CAMEO) Encode(xs []float64) ([]byte, error) {
	data, _, err := c.EncodeWithRecon(xs)
	return data, err
}

// EncodeWithRecon compresses one block and returns the reconstruction the
// retained points interpolate to, saving callers the decode round-trip.
func (c *CAMEO) EncodeWithRecon(xs []float64) ([]byte, []float64, error) {
	cmp, _ := c.engines.Get().(*core.Compressor)
	if cmp == nil {
		var err error
		cmp, err = core.NewCompressor(c.Opt)
		if err != nil {
			return nil, nil, fmt.Errorf("codec: cameo needs compression options (use NewCAMEO): %w", err)
		}
	}
	res, err := cmp.Compress(xs)
	c.engines.Put(cmp)
	if err != nil {
		return nil, nil, err
	}
	return res.Compressed.Encode(), res.Compressed.Decompress(), nil
}

// NewBlockStream returns an incremental encode session backed by a
// core.StreamEngine: the session compresses one block at a time in bounded
// work steps, producing exactly the points (and therefore exactly the
// payload bytes) batch Encode would.
func (c *CAMEO) NewBlockStream() (BlockStream, error) {
	se, err := core.NewStreamEngine(c.Opt)
	if err != nil {
		return nil, fmt.Errorf("codec: cameo needs compression options (use NewCAMEO): %w", err)
	}
	return &cameoStream{se: se}, nil
}

// cameoStream adapts core.StreamEngine to the BlockStream interface.
type cameoStream struct {
	se *core.StreamEngine
}

func (s *cameoStream) Begin(xs []float64) error       { return s.se.Begin(xs) }
func (s *cameoStream) Advance(budget int) (int, bool) { return s.se.Advance(budget) }
func (s *cameoStream) Close()                         { s.se.Close() }
func (s *cameoStream) Payload() ([]byte, []float64, error) {
	res := s.se.Result()
	if res == nil {
		return nil, nil, fmt.Errorf("codec: cameo stream: block not finished")
	}
	return res.Compressed.Encode(), res.Compressed.Decompress(), nil
}

// Decode parses the irregular-series encoding and reconstructs the dense
// block by linear interpolation. The sample count is validated against the
// block cap and the payload's own header before the dense reconstruction
// is allocated, so a hostile count cannot provoke a giant allocation.
func (c *CAMEO) Decode(data []byte, n int) ([]float64, error) {
	if n < 0 || n > MaxBlockSamples {
		return nil, fmt.Errorf("%w: bad sample count %d", ErrBadBlock, n)
	}
	ir, err := c.parse(data, n)
	if err != nil {
		return nil, err
	}
	return ir.Decompress(), nil
}

// parse decodes and validates the irregular payload against the header's
// sample count.
func (c *CAMEO) parse(data []byte, n int) (*series.Irregular, error) {
	ir, err := series.DecodeIrregular(data)
	if err != nil {
		return nil, err
	}
	if ir.N != n {
		return nil, fmt.Errorf("%w: cameo payload holds %d samples, header says %d", ErrBadBlock, ir.N, n)
	}
	return ir, nil
}

// DecodeRange interpolates only the retained points spanning [lo, hi),
// appending the reconstruction to dst — parsing stays O(points), but
// evaluation drops from O(n) to O(hi-lo). Bit-identical to the
// corresponding slice of Decode.
func (c *CAMEO) DecodeRange(data []byte, n, lo, hi int, dst []float64) ([]float64, error) {
	if err := checkRange(n, lo, hi); err != nil {
		return nil, err
	}
	ir, err := c.parse(data, n)
	if err != nil {
		return nil, err
	}
	return ir.DecompressRange(lo, hi, dst), nil
}

// DecodeRangeAgg computes sum/min/max/count over [lo, hi) from the
// retained points alone: the reconstruction is piecewise linear (constant
// before the first and after the last point), so each piece contributes in
// closed form and no samples are materialized.
func (c *CAMEO) DecodeRangeAgg(data []byte, n, lo, hi int) (RangeAgg, error) {
	return oneWindowAgg(c, data, n, lo, hi)
}

// DecodeWindowAggs folds [lo, hi) into step-sample windows in one pass
// over the retained points; no samples are materialized.
func (c *CAMEO) DecodeWindowAggs(data []byte, n, lo, hi, anchor, step int, aggs []RangeAgg) error {
	if err := checkWindows(n, lo, hi, anchor, step, aggs); err != nil {
		return err
	}
	ir, err := c.parse(data, n)
	if err != nil {
		return err
	}
	wa := newWindowAccs(lo, anchor, step, aggs)
	pts := ir.Points
	if len(pts) == 0 {
		wa.addConst(lo, hi, 0) // Decompress yields zeros for an empty point set
		return nil
	}
	// Constant hold before the first retained point.
	if head := min(hi, pts[0].Index); head > lo {
		wa.addConst(lo, head, pts[0].Value)
	}
	// Interior linear segments between consecutive retained points. Each
	// covers indices [a.Index, b.Index) with v(t) = a.Value + slope*(t -
	// a.Index) — the same expression Decompress evaluates.
	last := pts[len(pts)-1]
	if lo < last.Index && hi > pts[0].Index {
		j := sort.Search(len(pts), func(i int) bool { return pts[i].Index > max(lo, pts[0].Index) })
		for ; j < len(pts); j++ {
			a, b := pts[j-1], pts[j]
			if a.Index >= hi {
				break
			}
			// Every remaining pair overlaps: b.Index > lo by the search
			// start condition and increasing indices, and a.Index < hi per
			// the break above.
			t0, t1 := max(lo, a.Index), min(hi, b.Index)
			slope := (b.Value - a.Value) / float64(b.Index-a.Index)
			wa.addLinear(t0, t1, a.Index, a.Value, slope)
		}
	}
	// Constant hold from the last retained point on.
	if tail := max(lo, last.Index); tail < hi {
		wa.addConst(tail, hi, last.Value)
	}
	return nil
}
