package codec

import (
	"errors"
	"fmt"

	"repro/internal/series"
)

// Block merging is the codec-level half of tsdb compaction: adjacent
// under-filled blocks are coalesced into one full block whose decoded
// reconstruction is exactly the concatenation of the source
// reconstructions — queries must be bit-identical before and after a
// compaction, so a merge may never re-run a lossy fit over the samples.
//
// Two families merge natively without touching a single sample:
//
//   - CAMEO payloads are retained-point sets interpolated linearly, held
//     constant before the first and after the last point. Concatenating
//     the point lists alone would replace those constant holds with a
//     linear ramp across the block seam, so each source block's point set
//     is first normalized to pin its endpoints (duplicate-value boundary
//     points have slope zero, reproducing the constant hold exactly).
//   - The segment codecs (PMC, Swing, Sim-Piece) serialize
//     length-prefixed segment records whose starts are implied by
//     cumulative lengths, so merging is re-emitting the records with a
//     summed count.
//
// Lossless codecs need no capability: decode, concatenate, re-encode is
// exact by definition. Lossy codecs without a native merge cannot be
// merged at all (re-encoding would move samples), which MergeBlocks
// reports as ErrCannotMerge so the storage layer can skip those blocks.

// ErrCannotMerge is returned by MergeBlocks for lossy codecs that do not
// implement BlockMerger: re-encoding their decoded samples would change
// the reconstruction, violating the merge contract.
var ErrCannotMerge = errors.New("codec: codec cannot merge blocks")

// BlockMerger is an optional Codec capability: merging the payloads of
// adjacent blocks into one payload whose decode is bit-identical to the
// concatenation of the source decodes. ns[i] is the dense sample count of
// payloads[i]; the result decodes to sum(ns) samples.
type BlockMerger interface {
	MergePayloads(payloads [][]byte, ns []int) ([]byte, error)
}

// MergeBlocks merges adjacent block payloads under one codec and returns
// a complete block file image (versioned header + merged payload). The
// decode of the result is bit-identical to concatenating the decodes of
// the inputs: natively-merging codecs re-combine their compressed forms,
// lossless codecs round-trip through samples, and other lossy codecs get
// ErrCannotMerge.
func MergeBlocks(c Codec, payloads [][]byte, ns []int) ([]byte, error) {
	if len(payloads) != len(ns) {
		return nil, fmt.Errorf("%w: %d payloads with %d sample counts", ErrBadBlock, len(payloads), len(ns))
	}
	if len(payloads) < 2 {
		return nil, fmt.Errorf("%w: merging needs at least 2 blocks, got %d", ErrBadBlock, len(payloads))
	}
	total := 0
	for i, n := range ns {
		if n < 1 {
			return nil, fmt.Errorf("%w: block %d has %d samples", ErrBadBlock, i, n)
		}
		total += n
	}
	if total > MaxBlockSamples {
		return nil, fmt.Errorf("%w: merged block of %d samples exceeds the %d-sample cap", ErrBadBlock, total, MaxBlockSamples)
	}
	payload, sidecar, err := mergePayloads(c, payloads, ns, total)
	if err != nil {
		return nil, err
	}
	return appendHeaderSidecar(c, total, sidecar, payload), nil
}

// mergePayloads merges the source payloads and, for checkpoint-emitting
// codecs, regenerates the checkpoint sidecar for the merged block (the
// source sidecars describe bit offsets that no longer hold after a
// re-encode, so they are rebuilt from scratch, never spliced).
func mergePayloads(c Codec, payloads [][]byte, ns []int, total int) ([]byte, []byte, error) {
	if bm, ok := c.(BlockMerger); ok {
		payload, err := bm.MergePayloads(payloads, ns)
		return payload, nil, err
	}
	if c.Lossy() {
		return nil, nil, fmt.Errorf("%w: %q", ErrCannotMerge, c.Name())
	}
	xs := make([]float64, 0, total)
	for i, p := range payloads {
		dense, err := c.Decode(p, ns[i])
		if err != nil {
			return nil, nil, fmt.Errorf("merging block %d: %w", i, err)
		}
		xs = append(xs, dense...)
	}
	return encodePayload(c, xs)
}

// MergePayloads concatenates CAMEO retained-point sets, normalizing each
// source block's endpoints first so the merged reconstruction reproduces
// the per-block constant holds bit-for-bit (a boundary pair with equal
// values interpolates with slope zero). Point indices shift by the
// cumulative sample counts of the preceding blocks.
func (c *CAMEO) MergePayloads(payloads [][]byte, ns []int) ([]byte, error) {
	total := 0
	var pts []series.Point
	for i, p := range payloads {
		ir, err := c.parse(p, ns[i])
		if err != nil {
			return nil, fmt.Errorf("merging cameo block %d: %w", i, err)
		}
		pts = appendNormalized(pts, ir, total)
		total += ir.N
	}
	merged, err := series.NewIrregular(total, pts)
	if err != nil {
		return nil, err
	}
	return merged.Encode(), nil
}

// appendNormalized appends ir's points shifted by off, pinning the
// block's first and last sample indices: Decompress holds the boundary
// values constant outside the retained span, and only an explicit
// equal-value point pair reproduces that hold once neighbors exist on the
// other side of the seam. An empty point set decompresses to zeros, so it
// normalizes to zero-valued endpoints.
func appendNormalized(pts []series.Point, ir *series.Irregular, off int) []series.Point {
	src := ir.Points
	if len(src) == 0 {
		pts = append(pts, series.Point{Index: off, Value: 0})
		if ir.N > 1 {
			pts = append(pts, series.Point{Index: off + ir.N - 1, Value: 0})
		}
		return pts
	}
	if src[0].Index > 0 {
		pts = append(pts, series.Point{Index: off, Value: src[0].Value})
	}
	for _, p := range src {
		pts = append(pts, series.Point{Index: off + p.Index, Value: p.Value})
	}
	if last := src[len(src)-1]; last.Index < ir.N-1 {
		pts = append(pts, series.Point{Index: off + ir.N - 1, Value: last.Value})
	}
	return pts
}

// mergeSegmentPayloads re-emits the validated segment records of each
// payload under a summed count — starts are implied by cumulative
// lengths, so concatenated records decode to concatenated blocks.
func mergeSegmentPayloads(payloads [][]byte, ns []int, floatsPer int) ([]byte, error) {
	type parsed struct {
		lengths []int
		floats  [][]float64
	}
	blocks := make([]parsed, len(payloads))
	count, size := 0, 0
	for i, p := range payloads {
		lengths, floats, err := readSegments(p, ns[i], floatsPer)
		if err != nil {
			return nil, fmt.Errorf("merging segment block %d: %w", i, err)
		}
		blocks[i] = parsed{lengths: lengths, floats: floats}
		count += len(lengths)
		size += len(p)
	}
	w := newSegWriter(size + 4)
	w.count(count)
	for _, b := range blocks {
		for i, l := range b.lengths {
			w.length(l)
			for _, f := range b.floats[i] {
				w.float(f)
			}
		}
	}
	return w.bytes(), nil
}

// MergePayloads concatenates PMC constant-segment streams.
func (PMC) MergePayloads(payloads [][]byte, ns []int) ([]byte, error) {
	return mergeSegmentPayloads(payloads, ns, 1)
}

// MergePayloads concatenates Swing linear-segment streams.
func (Swing) MergePayloads(payloads [][]byte, ns []int) ([]byte, error) {
	return mergeSegmentPayloads(payloads, ns, 2)
}

// MergePayloads concatenates Sim-Piece linear-segment streams.
func (SimPiece) MergePayloads(payloads [][]byte, ns []int) ([]byte, error) {
	return mergeSegmentPayloads(payloads, ns, 2)
}
