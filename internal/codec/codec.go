// Package codec defines the pluggable block-compression layer of the tsdb
// engine: a Codec turns a dense block of float64 samples into bytes and
// back, and a registry maps stable one-byte codec IDs (persisted in every
// block header) to implementations. The engine, facade, CLI, and benchmarks
// all select compressors through this one interface, so adding a method is
// one adapter plus a registration — no storage-layer changes.
//
// Adapters are provided for every compressor the repo implements: CAMEO
// itself (lossy, autocorrelation-preserving), the lossless XOR family
// (Gorilla, Chimp, Elf), and the pointwise-error-bounded lossy family
// (PMC, Swing, Sim-Piece). Lossless codecs reproduce input bit-exactly;
// lossy codecs trade pointwise or statistic fidelity for ratio, which the
// Lossy capability flag exposes so callers can refuse lossy storage for
// workloads that need exact replay.
package codec

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// Codec compresses dense sample blocks. Implementations must be safe for
// concurrent use by multiple goroutines: the tsdb engine encodes blocks on
// a worker pool and decodes on every query goroutine.
type Codec interface {
	// Name is the codec's stable lowercase identifier ("cameo", "gorilla",
	// ...), used by CLI flags and facade lookups.
	Name() string
	// ID is the codec's stable one-byte identifier persisted in block
	// headers. IDs are forever: reusing or renumbering one corrupts every
	// store written with it.
	ID() uint8
	// Lossy reports whether decoding returns an approximation of the
	// encoded samples (true) or the exact values (false).
	Lossy() bool
	// Encode compresses one block of samples.
	Encode(xs []float64) ([]byte, error)
	// Decode reverses Encode. n is the sample count recorded alongside the
	// payload (block headers store it); implementations validate that the
	// payload actually yields n samples.
	Decode(data []byte, n int) ([]float64, error)
}

// Registered codec IDs. ID 0 is reserved as invalid so a zeroed header
// never aliases a real codec.
const (
	IDCAMEO    uint8 = 1
	IDGorilla  uint8 = 2
	IDChimp    uint8 = 3
	IDElf      uint8 = 4
	IDPMC      uint8 = 5
	IDSwing    uint8 = 6
	IDSimPiece uint8 = 7
)

// ErrUnknownCodec is returned by registry lookups for unregistered IDs or
// names (e.g. a store written by a newer build with more codecs).
var ErrUnknownCodec = errors.New("codec: unknown codec")

var (
	regMu     sync.RWMutex
	regByID   = map[uint8]Codec{}
	regByName = map[string]Codec{}
)

// Register adds a codec to the global registry, panicking on ID or name
// collisions (registration is a program-wiring error, not a runtime
// condition). The built-in codecs register themselves; callers only need
// Register for out-of-tree implementations.
func Register(c Codec) {
	regMu.Lock()
	defer regMu.Unlock()
	if c.ID() == 0 {
		panic("codec: ID 0 is reserved")
	}
	if prev, ok := regByID[c.ID()]; ok {
		panic(fmt.Sprintf("codec: ID %d already registered by %q", c.ID(), prev.Name()))
	}
	if _, ok := regByName[c.Name()]; ok {
		panic(fmt.Sprintf("codec: name %q already registered", c.Name()))
	}
	regByID[c.ID()] = c
	regByName[c.Name()] = c
}

// ByID resolves a block header's codec ID to a registered codec.
func ByID(id uint8) (Codec, error) {
	regMu.RLock()
	defer regMu.RUnlock()
	c, ok := regByID[id]
	if !ok {
		return nil, fmt.Errorf("%w: id %d", ErrUnknownCodec, id)
	}
	return c, nil
}

// ByName resolves a codec name (as used by CLI flags) to a registered
// codec. The returned instance carries default parameters; parameterized
// codecs (CAMEO options, lossy error bounds) are usually constructed
// directly instead.
func ByName(name string) (Codec, error) {
	regMu.RLock()
	defer regMu.RUnlock()
	c, ok := regByName[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownCodec, name)
	}
	return c, nil
}

// Names lists the registered codec names, sorted.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	names := make([]string, 0, len(regByName))
	for n := range regByName {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Registered returns every registered codec, sorted by ID — the stable
// iteration order observability surfaces (per-codec decode histograms)
// key their instruments on.
func Registered() []Codec {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]Codec, 0, len(regByID))
	for _, c := range regByID {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID() < out[j].ID() })
	return out
}

// MinBlocker is an optional Codec capability: codecs that cannot encode
// arbitrarily small blocks (CAMEO needs enough samples to estimate its
// statistic) report their minimum here. MinBlock consults it.
type MinBlocker interface {
	MinBlock() int
}

// MinBlock returns the smallest block length a codec can encode (1 when
// the codec imposes no minimum).
func MinBlock(c Codec) int {
	if mb, ok := c.(MinBlocker); ok {
		return mb.MinBlock()
	}
	return 1
}

func init() {
	Register(&CAMEO{})
	Register(Gorilla{})
	Register(Chimp{})
	Register(Elf{})
	Register(PMC{})
	Register(Swing{})
	Register(SimPiece{})
}
