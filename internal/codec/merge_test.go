package codec

import (
	"errors"
	"math/rand"
	"testing"
)

// encodeBlocks compresses the chunks of xs at the given cut points and
// returns per-block payloads, sample counts, and the concatenation of the
// per-block reconstructions (what queries observed before a merge).
func encodeBlocks(t *testing.T, c Codec, xs []float64, cuts []int) (payloads [][]byte, ns []int, recon []float64) {
	t.Helper()
	prev := 0
	for _, cut := range append(cuts, len(xs)) {
		block := xs[prev:cut]
		prev = cut
		payload, err := c.Encode(block)
		if err != nil {
			t.Fatalf("%s: Encode: %v", c.Name(), err)
		}
		dense, err := c.Decode(payload, len(block))
		if err != nil {
			t.Fatalf("%s: Decode: %v", c.Name(), err)
		}
		payloads = append(payloads, payload)
		ns = append(ns, len(block))
		recon = append(recon, dense...)
	}
	return payloads, ns, recon
}

// TestMergeBlocksBitIdentical is the merge contract for every builtin
// codec: decoding a merged block yields exactly the concatenation of the
// source blocks' reconstructions, so a compaction can never change what a
// query returns.
func TestMergeBlocksBitIdentical(t *testing.T) {
	for _, c := range encoders() {
		t.Run(c.Name(), func(t *testing.T) {
			xs := sineSeries(700, 42)
			payloads, ns, want := encodeBlocks(t, c, xs, []int{150, 250, 500})
			data, err := MergeBlocks(c, payloads, ns)
			if err != nil {
				t.Fatalf("MergeBlocks: %v", err)
			}
			got, hdr, err := DecodeBlock(data)
			if err != nil {
				t.Fatalf("DecodeBlock(merged): %v", err)
			}
			if hdr.CodecID != c.ID() || hdr.N != len(xs) {
				t.Fatalf("merged header = %+v, want codec %d, n %d", hdr, c.ID(), len(xs))
			}
			if len(got) != len(want) {
				t.Fatalf("merged decode has %d samples, want %d", len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("%s: merged sample %d = %v, per-block reconstruction %v", c.Name(), i, got[i], want[i])
				}
			}
		})
	}
}

// TestMergeBlocksRandomCuts fuzzes the seam handling: random block
// boundaries (including tiny blocks that CAMEO stores verbatim-ish and
// segment codecs cover with one record) must still merge bit-identically.
func TestMergeBlocksRandomCuts(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, c := range encoders() {
		for round := 0; round < 10; round++ {
			n := 50 + rng.Intn(400)
			xs := sineSeries(n, int64(round))
			var cuts []int
			for pos := 1 + rng.Intn(60); pos < n; pos += 1 + rng.Intn(60) {
				cuts = append(cuts, pos)
			}
			if len(cuts) == 0 {
				cuts = []int{n / 2}
			}
			payloads, ns, want := encodeBlocks(t, c, xs, cuts)
			data, err := MergeBlocks(c, payloads, ns)
			if err != nil {
				t.Fatalf("%s round %d: MergeBlocks: %v", c.Name(), round, err)
			}
			got, _, err := DecodeBlock(data)
			if err != nil {
				t.Fatalf("%s round %d: DecodeBlock: %v", c.Name(), round, err)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("%s round %d (cuts %v): sample %d = %v, want %v", c.Name(), round, cuts, i, got[i], want[i])
				}
			}
		}
	}
}

func TestMergeBlocksRefusesUnmergeableLossy(t *testing.T) {
	// A lossy codec without BlockMerger must be refused rather than
	// silently re-fit (embedding PMC would re-expose its merge, so the
	// test codec forwards only the Codec methods).
	c := lossyNoMerge{inner: PMC{}}
	xs := sineSeries(200, 1)
	payloads, ns, _ := encodeBlocks(t, c, xs, []int{100})
	_, err := MergeBlocks(c, payloads, ns)
	if !errors.Is(err, ErrCannotMerge) {
		t.Fatalf("MergeBlocks on unmergeable lossy codec: err = %v, want ErrCannotMerge", err)
	}
}

type lossyNoMerge struct{ inner PMC }

func (c lossyNoMerge) Name() string                        { return "nomerge" }
func (c lossyNoMerge) ID() uint8                           { return 200 }
func (c lossyNoMerge) Lossy() bool                         { return true }
func (c lossyNoMerge) Encode(xs []float64) ([]byte, error) { return c.inner.Encode(xs) }
func (c lossyNoMerge) Decode(data []byte, n int) ([]float64, error) {
	return c.inner.Decode(data, n)
}

func TestMergeBlocksRejectsBadArgs(t *testing.T) {
	c := Gorilla{}
	payload, err := c.Encode([]float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := MergeBlocks(c, [][]byte{payload}, []int{3}); err == nil {
		t.Fatal("MergeBlocks accepted a single block")
	}
	if _, err := MergeBlocks(c, [][]byte{payload, payload}, []int{3}); err == nil {
		t.Fatal("MergeBlocks accepted mismatched payload/count lists")
	}
	if _, err := MergeBlocks(c, [][]byte{payload, payload}, []int{3, 0}); err == nil {
		t.Fatal("MergeBlocks accepted an empty block")
	}
}
