package codec

import "fmt"

// StreamEncoder is an optional Codec capability: codecs that can spread a
// block's compression across small bounded work steps implement it, which
// is what the tsdb streaming ingest mode (Options.Streaming) paces append
// latency with. Blocks produced through a stream are byte-identical to the
// batch Encode path, so every existing reader decodes them unchanged.
type StreamEncoder interface {
	Codec
	// NewBlockStream returns a fresh stream session. Sessions are
	// single-goroutine and reusable across blocks (one block in flight at
	// a time); callers own their lifecycle and must Close them.
	NewBlockStream() (BlockStream, error)
}

// BlockStream incrementally compresses one block at a time. The protocol
// is Begin → Advance (repeatedly, until done) → Payload, then Begin again
// for the next block. A work unit is codec-defined but roughly constant
// cost (for CAMEO: one ACF-impact evaluation), so callers can convert a
// latency budget into a unit budget with a running ns/unit estimate.
type BlockStream interface {
	// Begin starts a new block over xs. The stream copies what it needs;
	// xs is not retained.
	Begin(xs []float64) error
	// Advance performs up to budget work units, reporting units actually
	// used and whether the block is finished. At least one unit of
	// progress is made per call on an unfinished block.
	Advance(budget int) (used int, done bool)
	// Payload returns the finished block's codec payload and dense
	// reconstruction. It fails if the block is not finished.
	Payload() (payload []byte, recon []float64, err error)
	// Close releases session resources; the stream must not be used after.
	Close()
}

// EncodeStreamBlock wraps a finished stream's payload in the versioned
// block header, exactly as EncodeBlockRecon would for the same samples:
// streamed blocks are self-describing and byte-identical to batch-encoded
// ones. n is the dense sample count of the block the stream compressed.
// (Streaming codecs emit plain payloads, never checkpoint sidecars — the
// only StreamEncoder, CAMEO, is a ReconEncoder, which batch-encodes
// sidecar-less too.)
func EncodeStreamBlock(c Codec, bs BlockStream, n int) (data []byte, hdrOff int, recon []float64, err error) {
	if n > MaxBlockSamples {
		return nil, 0, nil, fmt.Errorf("%w: %d samples exceeds the %d-sample block cap", ErrBadBlock, n, MaxBlockSamples)
	}
	payload, recon, err := bs.Payload()
	if err != nil {
		return nil, 0, nil, err
	}
	data = appendHeader(c, n, payload)
	return data, len(data) - len(payload), recon, nil
}
