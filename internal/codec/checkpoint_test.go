package codec

import (
	"math"
	"testing"
)

func bitstreamCodecs() []Codec {
	return []Codec{Gorilla{}, Chimp{}, Elf{}}
}

// TestCheckpointedBlockLayout pins the on-disk format contract: the
// default interval emits a version-2 block with a sidecar, a negative
// interval emits a byte-identical version-1 block (what older builds
// wrote), and both decode to the same samples.
func TestCheckpointedBlockLayout(t *testing.T) {
	xs := sineSeries(600, 3)
	for _, c := range bitstreamCodecs() {
		cc := c.(CheckpointConfigurable)
		v2, err := EncodeBlock(c, xs)
		if err != nil {
			t.Fatal(err)
		}
		h, sidecar, payload, err := SplitBlock(v2)
		if err != nil {
			t.Fatalf("%s: %v", c.Name(), err)
		}
		if h.Version != blockVersionSidecar || len(sidecar) == 0 {
			t.Fatalf("%s: default interval wrote header %+v with %d sidecar bytes", c.Name(), h, len(sidecar))
		}
		v1, err := EncodeBlock(cc.WithCheckpointInterval(-1), xs)
		if err != nil {
			t.Fatal(err)
		}
		h1, sidecar1, payload1, err := SplitBlock(v1)
		if err != nil {
			t.Fatalf("%s: %v", c.Name(), err)
		}
		if h1.Version != blockVersionPlain || len(sidecar1) != 0 {
			t.Fatalf("%s: disabled checkpoints wrote header %+v with %d sidecar bytes", c.Name(), h1, len(sidecar1))
		}
		if string(payload) != string(payload1) {
			t.Fatalf("%s: checkpointing changed the compressed payload", c.Name())
		}
		for _, blk := range [][]byte{v2, v1} {
			dec, dh, err := DecodeBlock(blk)
			if err != nil {
				t.Fatalf("%s: %v", c.Name(), err)
			}
			if dh.N != len(xs) || len(dec) != len(xs) {
				t.Fatalf("%s: decoded %d of %d samples", c.Name(), len(dec), len(xs))
			}
			for i := range xs {
				if math.Float64bits(dec[i]) != math.Float64bits(xs[i]) {
					t.Fatalf("%s: sample %d differs", c.Name(), i)
				}
			}
		}
	}
}

// TestDecodeRangeCheckpointedMatchesFullDecode is the codec-level
// differential: the checkpointed range decode of a framed block must be
// bit-identical to full-decode-then-slice, with and without a sidecar
// (a nil sidecar degrades to replay-from-front, still exact).
func TestDecodeRangeCheckpointedMatchesFullDecode(t *testing.T) {
	xs := sineSeries(1000, 9)
	for _, c := range bitstreamCodecs() {
		blk, err := EncodeBlock(c.(CheckpointConfigurable).WithCheckpointInterval(64), xs)
		if err != nil {
			t.Fatal(err)
		}
		_, sidecar, payload, err := SplitBlock(blk)
		if err != nil {
			t.Fatal(err)
		}
		cd := c.(CheckpointDecoder)
		for _, side := range [][]byte{sidecar, nil} {
			for _, r := range [][2]int{{0, 1000}, {0, 1}, {999, 1000}, {300, 301}, {128, 640}, {500, 500}} {
				lo, hi := r[0], r[1]
				got, bits, err := cd.DecodeRangeCheckpointed(payload, side, len(xs), lo, hi, nil)
				if err != nil {
					t.Fatalf("%s [%d,%d): %v", c.Name(), lo, hi, err)
				}
				if len(got) != hi-lo || (hi > lo && bits <= 0) {
					t.Fatalf("%s [%d,%d): %d values, %d bits", c.Name(), lo, hi, len(got), bits)
				}
				for i, v := range got {
					if math.Float64bits(v) != math.Float64bits(xs[lo+i]) {
						t.Fatalf("%s sidecar=%v [%d,%d): sample %d differs", c.Name(), side != nil, lo, hi, lo+i)
					}
				}
			}
		}
	}
}

// TestDecodeWindowAggsCheckpointedMatchesFold compares the streaming
// window fold against materialize-then-fold over the same grid — the
// folds must agree bit-for-bit (same accumulation order).
func TestDecodeWindowAggsCheckpointedMatchesFold(t *testing.T) {
	xs := sineSeries(1000, 5)
	for _, c := range bitstreamCodecs() {
		blk, err := EncodeBlock(c.(CheckpointConfigurable).WithCheckpointInterval(64), xs)
		if err != nil {
			t.Fatal(err)
		}
		_, sidecar, payload, err := SplitBlock(blk)
		if err != nil {
			t.Fatal(err)
		}
		cd := c.(CheckpointDecoder)
		for _, tc := range []struct{ lo, hi, anchor, step int }{
			{0, 1000, 0, 100},
			{150, 900, 100, 64},
			{700, 1000, 0, 33},
			{512, 640, 512, 128},
		} {
			nw := (tc.hi-1-tc.anchor)/tc.step - (tc.lo-tc.anchor)/tc.step + 1
			got := make([]RangeAgg, nw)
			want := make([]RangeAgg, nw)
			for i := range got {
				got[i], want[i] = NewRangeAgg(), NewRangeAgg()
			}
			bits, err := cd.DecodeWindowAggsCheckpointed(payload, sidecar, len(xs), tc.lo, tc.hi, tc.anchor, tc.step, got)
			if err != nil {
				t.Fatalf("%s %+v: %v", c.Name(), tc, err)
			}
			if bits <= 0 {
				t.Fatalf("%s %+v: %d bits traversed", c.Name(), tc, bits)
			}
			w0 := (tc.lo - tc.anchor) / tc.step
			for i := tc.lo; i < tc.hi; i++ {
				a := &want[(i-tc.anchor)/tc.step-w0]
				v := xs[i]
				a.Sum += v
				if v < a.Min {
					a.Min = v
				}
				if v > a.Max {
					a.Max = v
				}
				a.Count++
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("%s %+v: window %d: %+v != %+v", c.Name(), tc, i, got[i], want[i])
				}
			}
		}
	}
}

// TestCheckpointedDecodeRejectsCorruptSidecar: a mangled sidecar must
// surface ErrBadBlock, never a panic or silently wrong samples.
func TestCheckpointedDecodeRejectsCorruptSidecar(t *testing.T) {
	xs := sineSeries(500, 1)
	for _, c := range bitstreamCodecs() {
		blk, err := EncodeBlock(c.(CheckpointConfigurable).WithCheckpointInterval(32), xs)
		if err != nil {
			t.Fatal(err)
		}
		_, sidecar, payload, err := SplitBlock(blk)
		if err != nil {
			t.Fatal(err)
		}
		bad := append([]byte(nil), sidecar...)
		bad[0] = 0 // interval 0 is invalid
		cd := c.(CheckpointDecoder)
		if _, _, err := cd.DecodeRangeCheckpointed(payload, bad, len(xs), 10, 20, nil); err == nil {
			t.Fatalf("%s: corrupt sidecar accepted by DecodeRangeCheckpointed", c.Name())
		}
		aggs := []RangeAgg{NewRangeAgg()}
		if _, err := cd.DecodeWindowAggsCheckpointed(payload, bad, len(xs), 10, 20, 10, 10, aggs); err == nil {
			t.Fatalf("%s: corrupt sidecar accepted by DecodeWindowAggsCheckpointed", c.Name())
		}
		// The full decode never consults the sidecar, so a corrupt one must
		// not break DecodeBlock — it only guards the seek path.
		if dec, _, err := DecodeBlock(blk); err != nil || len(dec) != len(xs) {
			t.Fatalf("%s: full decode of a checkpointed block failed: %v", c.Name(), err)
		}
	}
}

// TestMergeBlocksRegeneratesSidecar: compaction merges of bit-stream
// blocks must emit a fresh sidecar describing the merged stream, and the
// checkpointed range decode of the merged block must match the
// concatenated source decodes.
func TestMergeBlocksRegeneratesSidecar(t *testing.T) {
	for _, c := range bitstreamCodecs() {
		xs := sineSeries(700, 11)
		var payloads [][]byte
		var ns []int
		for _, cut := range [][2]int{{0, 200}, {200, 450}, {450, 700}} {
			p, err := c.Encode(xs[cut[0]:cut[1]])
			if err != nil {
				t.Fatal(err)
			}
			payloads = append(payloads, p)
			ns = append(ns, cut[1]-cut[0])
		}
		merged, err := MergeBlocks(c, payloads, ns)
		if err != nil {
			t.Fatalf("%s: %v", c.Name(), err)
		}
		h, sidecar, payload, err := SplitBlock(merged)
		if err != nil {
			t.Fatalf("%s: %v", c.Name(), err)
		}
		if h.Version != blockVersionSidecar || len(sidecar) == 0 {
			t.Fatalf("%s: merged block lost its sidecar: %+v", c.Name(), h)
		}
		if h.N != len(xs) {
			t.Fatalf("%s: merged N = %d, want %d", c.Name(), h.N, len(xs))
		}
		got, bits, err := c.(CheckpointDecoder).DecodeRangeCheckpointed(payload, sidecar, h.N, 600, 700, nil)
		if err != nil {
			t.Fatalf("%s: %v", c.Name(), err)
		}
		for i, v := range got {
			if math.Float64bits(v) != math.Float64bits(xs[600+i]) {
				t.Fatalf("%s: merged sample %d differs", c.Name(), 600+i)
			}
		}
		full, err := c.Encode(xs)
		if err != nil {
			t.Fatal(err)
		}
		if fullBits := len(full) * 8; bits >= fullBits/2 {
			t.Fatalf("%s: tail read of merged block traversed %d of ~%d bits — sidecar not regenerated for the merged stream", c.Name(), bits, fullBits)
		}
	}
}

// TestConfigureCheckpointInterval pins the knob plumbing helper: it
// reconfigures checkpoint-capable codecs, leaves others untouched, and
// k == 0 is a no-op.
func TestConfigureCheckpointInterval(t *testing.T) {
	g := ConfigureCheckpointInterval(Gorilla{}, 32)
	if g.(Gorilla).Interval != 32 {
		t.Fatalf("interval not applied: %+v", g)
	}
	if c := ConfigureCheckpointInterval(Gorilla{Interval: 16}, 0); c.(Gorilla).Interval != 16 {
		t.Fatalf("k=0 should leave the codec unchanged: %+v", c)
	}
	p := PMC{RelBound: 0.5}
	if c := ConfigureCheckpointInterval(p, 32); c != Codec(p) {
		t.Fatalf("non-checkpoint codec changed: %+v", c)
	}
}
