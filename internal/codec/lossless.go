package codec

import (
	"fmt"

	"repro/internal/lossless"
)

// The lossless adapters wrap the XOR-family encoders of internal/lossless.
// They reproduce every float64 bit-exactly (including NaN payloads and
// infinities), so a store using them is a durability-grade archive: queries
// replay exactly what was appended, at the cost of ~5-20x less compression
// than the lossy codecs on smooth sensor data.
//
// Each adapter carries an Interval knob selecting its checkpoint spacing
// (see CheckpointEncoder): 0 uses DefaultCheckpointInterval, negative
// disables checkpointing, positive checkpoints every Interval samples. The
// knob only adds or removes the sidecar — the XOR bit stream itself is
// identical under every setting, so blocks written with different intervals
// (or none) replay bit-identically.

// losslessDecode runs one of the internal/lossless decoders and validates
// the sample count against the block header.
func losslessDecode(method string, data []byte, n int) ([]float64, error) {
	if n < 0 || n > MaxBlockSamples {
		return nil, fmt.Errorf("%w: bad sample count %d", ErrBadBlock, n)
	}
	enc := lossless.Encoded{Method: method, N: n, Data: data}
	xs, err := enc.Decompress()
	if err != nil {
		return nil, err
	}
	if len(xs) != n {
		return nil, fmt.Errorf("%w: %s payload decoded to %d samples, header says %d", ErrBadBlock, method, len(xs), n)
	}
	return xs, nil
}

// checkpointInterval maps the adapter knob onto the encoder argument:
// 0 = default spacing, negative = disabled.
func checkpointInterval(k int) int {
	if k == 0 {
		return DefaultCheckpointInterval
	}
	if k < 0 {
		return 0
	}
	return k
}

// appendSidecar serializes a checkpoint recorder (nil stays nil, keeping
// the block on the version-1 layout).
func appendSidecar(ck *lossless.Checkpoints) []byte {
	if ck == nil {
		return nil
	}
	return ck.AppendBinary(nil)
}

// parseSidecar deserializes a block's checkpoint sidecar; an absent sidecar
// yields a nil Checkpoints, which the range decoders treat as "replay from
// the front". Malformed sidecars are reported as ErrBadBlock.
func parseSidecar(sidecar []byte, n int) (*lossless.Checkpoints, error) {
	if len(sidecar) == 0 {
		return nil, nil
	}
	ck, err := lossless.ParseCheckpoints(sidecar, n)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadBlock, err)
	}
	return ck, nil
}

// losslessDecodeRange implements DecodeRangeCheckpointed for the XOR family:
// seek via the sidecar, replay to lo, append [lo, hi) to dst.
func losslessDecodeRange(method string, payload, sidecar []byte, n, lo, hi int, dst []float64) ([]float64, int, error) {
	if err := checkRange(n, lo, hi); err != nil {
		return nil, 0, err
	}
	ck, err := parseSidecar(sidecar, n)
	if err != nil {
		return nil, 0, err
	}
	bits, err := lossless.DecompressRange(method, payload, n, ck, lo, hi, func(v float64) {
		dst = append(dst, v)
	})
	if err != nil {
		return nil, 0, err
	}
	return dst, bits, nil
}

// losslessWindowAggs implements DecodeWindowAggsCheckpointed for the XOR
// family: one seek-assisted pass over [lo, hi), folding each decoded sample
// into its window accumulator (same left-to-right order as the dense
// fallback, so results are bit-identical to materialize-then-fold).
func losslessWindowAggs(method string, payload, sidecar []byte, n, lo, hi, anchor, step int, aggs []RangeAgg) (int, error) {
	if err := checkWindows(n, lo, hi, anchor, step, aggs); err != nil {
		return 0, err
	}
	if lo >= hi {
		return 0, nil
	}
	ck, err := parseSidecar(sidecar, n)
	if err != nil {
		return 0, err
	}
	k0 := (lo - anchor) / step
	t := lo
	return lossless.DecompressRange(method, payload, n, ck, lo, hi, func(v float64) {
		a := &aggs[(t-anchor)/step-k0]
		a.Sum += v
		if v < a.Min {
			a.Min = v
		}
		if v > a.Max {
			a.Max = v
		}
		a.Count++
		t++
	})
}

// Gorilla is the Facebook Gorilla XOR codec: lossless, fastest of the
// family, strongest on series with many repeated or slowly-drifting values.
// Interval is the checkpoint spacing (0 = DefaultCheckpointInterval,
// negative = no checkpoints).
type Gorilla struct{ Interval int }

// Name returns "gorilla".
func (Gorilla) Name() string { return "gorilla" }

// ID returns IDGorilla.
func (Gorilla) ID() uint8 { return IDGorilla }

// Lossy reports false.
func (Gorilla) Lossy() bool { return false }

// Encode compresses the block with the Gorilla XOR scheme.
func (Gorilla) Encode(xs []float64) ([]byte, error) {
	return lossless.Gorilla(xs).Data, nil
}

// Decode reverses Encode.
func (Gorilla) Decode(data []byte, n int) ([]float64, error) {
	return losslessDecode("gorilla", data, n)
}

// EncodeCheckpointed compresses the block and emits the checkpoint sidecar.
func (g Gorilla) EncodeCheckpointed(xs []float64) ([]byte, []byte, error) {
	enc, ck := lossless.GorillaCheckpointed(xs, checkpointInterval(g.Interval))
	return enc.Data, appendSidecar(ck), nil
}

// DecodeRangeCheckpointed decodes samples [lo, hi) via the sidecar.
func (Gorilla) DecodeRangeCheckpointed(payload, sidecar []byte, n, lo, hi int, dst []float64) ([]float64, int, error) {
	return losslessDecodeRange("gorilla", payload, sidecar, n, lo, hi, dst)
}

// DecodeWindowAggsCheckpointed folds samples [lo, hi) into step windows via
// the sidecar.
func (Gorilla) DecodeWindowAggsCheckpointed(payload, sidecar []byte, n, lo, hi, anchor, step int, aggs []RangeAgg) (int, error) {
	return losslessWindowAggs("gorilla", payload, sidecar, n, lo, hi, anchor, step, aggs)
}

// WithCheckpointInterval returns the codec with checkpoint spacing k.
func (Gorilla) WithCheckpointInterval(k int) Codec { return Gorilla{Interval: k} }

// Chimp is the Chimp XOR codec: lossless, typically denser than Gorilla on
// series without long runs of identical values. Interval is the checkpoint
// spacing (0 = DefaultCheckpointInterval, negative = no checkpoints).
type Chimp struct{ Interval int }

// Name returns "chimp".
func (Chimp) Name() string { return "chimp" }

// ID returns IDChimp.
func (Chimp) ID() uint8 { return IDChimp }

// Lossy reports false.
func (Chimp) Lossy() bool { return false }

// Encode compresses the block with the Chimp XOR scheme.
func (Chimp) Encode(xs []float64) ([]byte, error) {
	return lossless.Chimp(xs).Data, nil
}

// Decode reverses Encode.
func (Chimp) Decode(data []byte, n int) ([]float64, error) {
	return losslessDecode("chimp", data, n)
}

// EncodeCheckpointed compresses the block and emits the checkpoint sidecar.
func (c Chimp) EncodeCheckpointed(xs []float64) ([]byte, []byte, error) {
	enc, ck := lossless.ChimpCheckpointed(xs, checkpointInterval(c.Interval))
	return enc.Data, appendSidecar(ck), nil
}

// DecodeRangeCheckpointed decodes samples [lo, hi) via the sidecar.
func (Chimp) DecodeRangeCheckpointed(payload, sidecar []byte, n, lo, hi int, dst []float64) ([]float64, int, error) {
	return losslessDecodeRange("chimp", payload, sidecar, n, lo, hi, dst)
}

// DecodeWindowAggsCheckpointed folds samples [lo, hi) into step windows via
// the sidecar.
func (Chimp) DecodeWindowAggsCheckpointed(payload, sidecar []byte, n, lo, hi, anchor, step int, aggs []RangeAgg) (int, error) {
	return losslessWindowAggs("chimp", payload, sidecar, n, lo, hi, anchor, step, aggs)
}

// WithCheckpointInterval returns the codec with checkpoint spacing k.
func (Chimp) WithCheckpointInterval(k int) Codec { return Chimp{Interval: k} }

// Elf is the erase-based lossless codec: short-decimal values get their
// redundant mantissa bits zeroed before XOR coding (and exactly restored on
// decode), making it the strongest lossless choice for sensor readings
// rounded to a few digits. Interval is the checkpoint spacing (0 =
// DefaultCheckpointInterval, negative = no checkpoints).
type Elf struct{ Interval int }

// Name returns "elf".
func (Elf) Name() string { return "elf" }

// ID returns IDElf.
func (Elf) ID() uint8 { return IDElf }

// Lossy reports false.
func (Elf) Lossy() bool { return false }

// Encode compresses the block with the Elf erase + XOR scheme.
func (Elf) Encode(xs []float64) ([]byte, error) {
	return lossless.Elf(xs).Data, nil
}

// Decode reverses Encode.
func (Elf) Decode(data []byte, n int) ([]float64, error) {
	return losslessDecode("elf", data, n)
}

// EncodeCheckpointed compresses the block and emits the checkpoint sidecar.
func (e Elf) EncodeCheckpointed(xs []float64) ([]byte, []byte, error) {
	enc, ck := lossless.ElfCheckpointed(xs, checkpointInterval(e.Interval))
	return enc.Data, appendSidecar(ck), nil
}

// DecodeRangeCheckpointed decodes samples [lo, hi) via the sidecar.
func (Elf) DecodeRangeCheckpointed(payload, sidecar []byte, n, lo, hi int, dst []float64) ([]float64, int, error) {
	return losslessDecodeRange("elf", payload, sidecar, n, lo, hi, dst)
}

// DecodeWindowAggsCheckpointed folds samples [lo, hi) into step windows via
// the sidecar.
func (Elf) DecodeWindowAggsCheckpointed(payload, sidecar []byte, n, lo, hi, anchor, step int, aggs []RangeAgg) (int, error) {
	return losslessWindowAggs("elf", payload, sidecar, n, lo, hi, anchor, step, aggs)
}

// WithCheckpointInterval returns the codec with checkpoint spacing k.
func (Elf) WithCheckpointInterval(k int) Codec { return Elf{Interval: k} }
