package codec

import (
	"fmt"

	"repro/internal/lossless"
)

// The lossless adapters wrap the XOR-family encoders of internal/lossless.
// They reproduce every float64 bit-exactly (including NaN payloads and
// infinities), so a store using them is a durability-grade archive: queries
// replay exactly what was appended, at the cost of ~5-20x less compression
// than the lossy codecs on smooth sensor data.

// losslessDecode runs one of the internal/lossless decoders and validates
// the sample count against the block header.
func losslessDecode(method string, data []byte, n int) ([]float64, error) {
	if n < 0 || n > MaxBlockSamples {
		return nil, fmt.Errorf("%w: bad sample count %d", ErrBadBlock, n)
	}
	enc := lossless.Encoded{Method: method, N: n, Data: data}
	xs, err := enc.Decompress()
	if err != nil {
		return nil, err
	}
	if len(xs) != n {
		return nil, fmt.Errorf("%w: %s payload decoded to %d samples, header says %d", ErrBadBlock, method, len(xs), n)
	}
	return xs, nil
}

// Gorilla is the Facebook Gorilla XOR codec: lossless, fastest of the
// family, strongest on series with many repeated or slowly-drifting values.
type Gorilla struct{}

// Name returns "gorilla".
func (Gorilla) Name() string { return "gorilla" }

// ID returns IDGorilla.
func (Gorilla) ID() uint8 { return IDGorilla }

// Lossy reports false.
func (Gorilla) Lossy() bool { return false }

// Encode compresses the block with the Gorilla XOR scheme.
func (Gorilla) Encode(xs []float64) ([]byte, error) {
	return lossless.Gorilla(xs).Data, nil
}

// Decode reverses Encode.
func (Gorilla) Decode(data []byte, n int) ([]float64, error) {
	return losslessDecode("gorilla", data, n)
}

// Chimp is the Chimp XOR codec: lossless, typically denser than Gorilla on
// series without long runs of identical values.
type Chimp struct{}

// Name returns "chimp".
func (Chimp) Name() string { return "chimp" }

// ID returns IDChimp.
func (Chimp) ID() uint8 { return IDChimp }

// Lossy reports false.
func (Chimp) Lossy() bool { return false }

// Encode compresses the block with the Chimp XOR scheme.
func (Chimp) Encode(xs []float64) ([]byte, error) {
	return lossless.Chimp(xs).Data, nil
}

// Decode reverses Encode.
func (Chimp) Decode(data []byte, n int) ([]float64, error) {
	return losslessDecode("chimp", data, n)
}

// Elf is the erase-based lossless codec: short-decimal values get their
// redundant mantissa bits zeroed before XOR coding (and exactly restored on
// decode), making it the strongest lossless choice for sensor readings
// rounded to a few digits.
type Elf struct{}

// Name returns "elf".
func (Elf) Name() string { return "elf" }

// ID returns IDElf.
func (Elf) ID() uint8 { return IDElf }

// Lossy reports false.
func (Elf) Lossy() bool { return false }

// Encode compresses the block with the Elf erase + XOR scheme.
func (Elf) Encode(xs []float64) ([]byte, error) {
	return lossless.Elf(xs).Data, nil
}

// Decode reverses Encode.
func (Elf) Decode(data []byte, n int) ([]float64, error) {
	return losslessDecode("elf", data, n)
}
