package codec

import (
	"math"
	"testing"

	"repro/internal/core"
)

// fuzzSeed produces a few valid encodings so the fuzzers start from
// structurally interesting corpora.
func fuzzSeed(f *testing.F, c Codec) {
	f.Helper()
	for _, xs := range [][]float64{
		nil,
		{1.5},
		{1, 1, 1, 1, 1},
		{20.5, 21.25, 19.75, 20.0, 22.5, 18.25, 20.5, 21.0},
	} {
		if data, err := EncodeBlock(c, xs); err == nil {
			f.Add(data)
		}
	}
}

// FuzzParseBlockHeader asserts header parsing never panics and that a
// parse-accepted header keeps its promises (offset within data bounds or
// equal to a truncation-detectable position, sane N).
func FuzzParseBlockHeader(f *testing.F) {
	fuzzSeed(f, Gorilla{})
	f.Add([]byte{blockMagic0, blockMagic1, 1, 1, 0x80})
	f.Fuzz(func(t *testing.T, data []byte) {
		h, off, err := ParseBlockHeader(data)
		if err != nil {
			return
		}
		if h.N < 0 || h.N > MaxBlockSamples {
			t.Fatalf("accepted absurd N %d", h.N)
		}
		if off < 5 || off > len(data) {
			t.Fatalf("payload offset %d outside data of %d bytes", off, len(data))
		}
		if h.CodecID == 0 || h.Version == 0 || h.Version > BlockFormatVersion {
			t.Fatalf("accepted invalid header %+v", h)
		}
	})
}

// FuzzDecodeBlock asserts the full header+registry+payload decode path
// never panics on arbitrary bytes, and that success implies the promised
// sample count.
func FuzzDecodeBlock(f *testing.F) {
	for _, c := range []Codec{Gorilla{}, Chimp{}, Elf{}, PMC{}, Swing{}, SimPiece{}} {
		fuzzSeed(f, c)
	}
	if data, err := EncodeBlock(NewCAMEO(testOptions()), seedSeries()); err == nil {
		f.Add(data)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		xs, h, err := DecodeBlock(data)
		if err != nil {
			return
		}
		if len(xs) != h.N {
			t.Fatalf("decoded %d samples, header says %d", len(xs), h.N)
		}
	})
}

// FuzzCodecDecodersDirect drives every registered codec's Decode with
// arbitrary payloads and sample counts: malformed input must error, never
// panic or over-allocate into an OOM.
func FuzzCodecDecodersDirect(f *testing.F) {
	for _, c := range []Codec{Gorilla{}, PMC{}, Swing{}} {
		if payload, err := c.Encode(seedSeries()); err == nil {
			f.Add(payload, uint16(len(seedSeries())), c.ID())
		}
	}
	f.Fuzz(func(t *testing.T, payload []byte, n uint16, id uint8) {
		c, err := ByID(id)
		if err != nil {
			return
		}
		xs, err := c.Decode(payload, int(n))
		if err == nil && len(xs) != int(n) {
			t.Fatalf("%s: decoded %d samples, promised %d", c.Name(), len(xs), n)
		}
	})
}

func testOptions() core.Options {
	return core.Options{Lags: 8, Epsilon: 0.1}
}

func seedSeries() []float64 {
	xs := make([]float64, 64)
	for i := range xs {
		xs[i] = 10 + 3*math.Sin(float64(i)/5)
	}
	return xs
}
