package codec

import (
	"math"
	"testing"

	"repro/internal/core"
)

// fuzzSeed produces a few valid encodings so the fuzzers start from
// structurally interesting corpora.
func fuzzSeed(f *testing.F, c Codec) {
	f.Helper()
	for _, xs := range [][]float64{
		nil,
		{1.5},
		{1, 1, 1, 1, 1},
		{20.5, 21.25, 19.75, 20.0, 22.5, 18.25, 20.5, 21.0},
	} {
		if data, err := EncodeBlock(c, xs); err == nil {
			f.Add(data)
		}
	}
}

// FuzzParseBlockHeader asserts header parsing never panics and that a
// parse-accepted header keeps its promises: sane N and sidecar length, the
// header fields themselves inside the buffer (ParseBlockHeader is prefix-
// tolerant, so a version-2 offset may point past a buffer that lacks the
// claimed sidecar — SplitBlock must then refuse instead of slicing wild).
func FuzzParseBlockHeader(f *testing.F) {
	fuzzSeed(f, Gorilla{})
	fuzzSeed(f, Gorilla{Interval: 2}) // sidecar-bearing version-2 seeds
	f.Add([]byte{blockMagic0, blockMagic1, 1, 1, 0x80})
	f.Add([]byte{blockMagic0, blockMagic1, 2, 2, 0x08, 0x7F})
	f.Fuzz(func(t *testing.T, data []byte) {
		h, off, err := ParseBlockHeader(data)
		if err != nil {
			return
		}
		if h.N < 0 || h.N > MaxBlockSamples {
			t.Fatalf("accepted absurd N %d", h.N)
		}
		if h.SidecarLen < 0 || h.SidecarLen > MaxSidecarBytes {
			t.Fatalf("accepted absurd sidecar length %d", h.SidecarLen)
		}
		if off < 5 || off-h.SidecarLen > len(data) {
			t.Fatalf("header end %d outside data of %d bytes", off-h.SidecarLen, len(data))
		}
		sh, sidecar, payload, err := SplitBlock(data)
		if err != nil {
			if off <= len(data) {
				t.Fatalf("SplitBlock refused a fully present block: %v", err)
			}
			return
		}
		if sh != h || len(sidecar) != h.SidecarLen || len(payload) != len(data)-off {
			t.Fatalf("SplitBlock %+v (%d sidecar, %d payload) disagrees with ParseBlockHeader %+v (off %d)",
				sh, len(sidecar), len(payload), h, off)
		}
	})
}

// FuzzDecodeBlock asserts the full header+registry+payload decode path
// never panics on arbitrary bytes, and that success implies the promised
// sample count.
func FuzzDecodeBlock(f *testing.F) {
	for _, c := range []Codec{Gorilla{}, Chimp{}, Elf{}, PMC{}, Swing{}, SimPiece{}} {
		fuzzSeed(f, c)
	}
	if data, err := EncodeBlock(NewCAMEO(testOptions()), seedSeries()); err == nil {
		f.Add(data)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		xs, h, err := DecodeBlock(data)
		if err != nil {
			return
		}
		if len(xs) != h.N {
			t.Fatalf("decoded %d samples, header says %d", len(xs), h.N)
		}
	})
}

// FuzzCodecDecodersDirect drives every registered codec's Decode with
// arbitrary payloads and sample counts: malformed input must error, never
// panic or over-allocate into an OOM.
func FuzzCodecDecodersDirect(f *testing.F) {
	for _, c := range []Codec{Gorilla{}, PMC{}, Swing{}} {
		if payload, err := c.Encode(seedSeries()); err == nil {
			f.Add(payload, uint16(len(seedSeries())), c.ID())
		}
	}
	f.Fuzz(func(t *testing.T, payload []byte, n uint16, id uint8) {
		c, err := ByID(id)
		if err != nil {
			return
		}
		xs, err := c.Decode(payload, int(n))
		if err == nil && len(xs) != int(n) {
			t.Fatalf("%s: decoded %d samples, promised %d", c.Name(), len(xs), n)
		}
	})
}

func testOptions() core.Options {
	return core.Options{Lags: 8, Epsilon: 0.1}
}

func seedSeries() []float64 {
	xs := make([]float64, 64)
	for i := range xs {
		xs[i] = 10 + 3*math.Sin(float64(i)/5)
	}
	return xs
}
