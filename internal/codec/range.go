package codec

import (
	"fmt"
	"math"

	"repro/internal/series"
)

// Random-access capabilities. The segment codecs (PMC, Swing, Sim-Piece)
// and CAMEO's irregular line form are random-access by construction: their
// compressed payload is a list of closed-form pieces, so any subrange of
// the block can be evaluated without reconstructing the rest, and simple
// aggregates (sum/min/max/count) over a range follow from the piece
// parameters without materializing samples at all. The bit-stream lossless
// codecs (Gorilla, Chimp, Elf) get random access a different way: their
// encoders emit a checkpoint sidecar (bit offset + decoder state every k
// samples, stored in the version-2 block section) that lets a partial read
// seek to the last checkpoint before the range and replay O(overlap + k)
// samples instead of the whole block. Those sidecar-consuming decodes use
// the Checkpoint* interfaces below, which take the payload and sidecar
// separately; checkpoint-less blocks fall back to a full decode, so callers
// can use one code path for every codec and still get the partial-decode
// win where the format allows it.

// RangeDecoder is an optional Codec capability: decoding only samples
// [lo, hi) of a block. DecodeRange and the tsdb cursor consult it.
type RangeDecoder interface {
	// DecodeRange appends the decoded samples [lo, hi) of a block to dst
	// and returns the extended slice (dst may be nil). n is the block's
	// dense sample count from its header; 0 <= lo <= hi <= n is required.
	// The appended values must be bit-identical to Decode(data, n)[lo:hi].
	DecodeRange(data []byte, n, lo, hi int, dst []float64) ([]float64, error)
}

// AggDecoder is an optional Codec capability: computing sum/min/max/count
// over sample ranges directly from the compressed form, without
// materializing any samples. DecodeRangeAgg consults it.
type AggDecoder interface {
	// DecodeRangeAgg aggregates samples [lo, hi) of a block. n is the
	// block's dense sample count; 0 <= lo <= hi <= n is required.
	DecodeRangeAgg(data []byte, n, lo, hi int) (RangeAgg, error)

	// DecodeWindowAggs folds samples [lo, hi) of a block into consecutive
	// step-sample windows, parsing the payload once — the downsampling
	// shape: window k covers the intersection of [lo, hi) with
	// [anchor+k*step, anchor+(k+1)*step), and the window containing lo
	// merges into aggs[0], the next into aggs[1], and so on (merges, not
	// overwrites, so one grid can span blocks). anchor <= lo aligns the
	// grid across blocks; aggs must hold every window touching [lo, hi).
	DecodeWindowAggs(data []byte, n, lo, hi, anchor, step int, aggs []RangeAgg) error
}

// DefaultCheckpointInterval is the checkpoint spacing (in samples) the
// bit-stream codecs use when none is configured: every 128 samples costs
// ~11-20 sidecar bytes per mark (well under 2% of a typical XOR stream)
// and bounds a cold partial read's replay overhead at 127 samples.
const DefaultCheckpointInterval = 128

// CheckpointEncoder is an optional Codec capability: encoding a block
// together with a checkpoint sidecar that EncodeBlock stores in the
// version-2 sidecar section. A nil sidecar (checkpointing disabled, or a
// block too small to earn a mark) downgrades the block to the version-1
// layout. The payload must be byte-identical to Encode's.
type CheckpointEncoder interface {
	EncodeCheckpointed(xs []float64) (payload, sidecar []byte, err error)
}

// CheckpointDecoder is an optional Codec capability: serving partial reads
// of a block by seeking through its checkpoint sidecar. Both methods accept
// a nil sidecar (degrading to a front-to-hi replay — still cheaper than a
// full decode) and return the number of stream bits actually traversed, the
// observability currency behind DB.Stats.CheckpointBytes and the
// O(overlap + k) cost tests.
type CheckpointDecoder interface {
	// DecodeRangeCheckpointed appends the decoded samples [lo, hi) to dst.
	// The appended values must be bit-identical to Decode(payload, n)[lo:hi].
	DecodeRangeCheckpointed(payload, sidecar []byte, n, lo, hi int, dst []float64) ([]float64, int, error)

	// DecodeWindowAggsCheckpointed folds samples [lo, hi) into consecutive
	// step-sample windows without materializing the block, with the same
	// grid contract as AggDecoder.DecodeWindowAggs.
	DecodeWindowAggsCheckpointed(payload, sidecar []byte, n, lo, hi, anchor, step int, aggs []RangeAgg) (int, error)
}

// CheckpointConfigurable is an optional Codec capability: returning a copy
// of the codec with a different checkpoint interval. ConfigureCheckpointInterval
// consults it so option plumbing does not need to know codec types.
type CheckpointConfigurable interface {
	// WithCheckpointInterval returns the codec with checkpoint spacing k:
	// positive = every k samples, negative = disabled, 0 = codec default.
	WithCheckpointInterval(k int) Codec
}

// ConfigureCheckpointInterval returns c reconfigured to checkpoint spacing
// k where the codec supports it, and c unchanged otherwise (or when k is 0,
// which means "keep the codec's current setting").
func ConfigureCheckpointInterval(c Codec, k int) Codec {
	if k == 0 {
		return c
	}
	if cc, ok := c.(CheckpointConfigurable); ok {
		return cc.WithCheckpointInterval(k)
	}
	return c
}

// RangeAgg summarizes a sample range: the aggregates a codec can push down
// (sum, min, max, count). Mean is Sum/Count. The zero Count value carries
// Min=+Inf and Max=-Inf so partial results merge with Merge; construct
// with NewRangeAgg.
type RangeAgg struct {
	Count int
	Sum   float64
	Min   float64
	Max   float64
}

// NewRangeAgg returns the empty aggregate (identity element of Merge).
func NewRangeAgg() RangeAgg {
	return RangeAgg{Min: math.Inf(1), Max: math.Inf(-1)}
}

// Merge folds another partial aggregate into a.
func (a *RangeAgg) Merge(b RangeAgg) {
	a.Count += b.Count
	a.Sum += b.Sum
	if b.Min < a.Min {
		a.Min = b.Min
	}
	if b.Max > a.Max {
		a.Max = b.Max
	}
}

// Eval maps the aggregate to the scalar a window query reports: mean is
// Sum/Count, sum/max/min their fields. The single source of the mapping —
// the tsdb engine and the CLI both evaluate windows through it. Unknown
// functions (and mean over an empty window) yield NaN; callers validate f
// up front.
func (a RangeAgg) Eval(f series.AggFunc) float64 {
	switch f {
	case series.AggMean:
		return a.Sum / float64(a.Count)
	case series.AggSum:
		return a.Sum
	case series.AggMax:
		return a.Max
	case series.AggMin:
		return a.Min
	}
	return math.NaN()
}

// Add folds dense samples into a (the materialized fallback of the codec
// pushdown, and the path for cache-resident or in-flight blocks).
func (a *RangeAgg) Add(xs []float64) {
	for _, v := range xs {
		a.Sum += v
		if v < a.Min {
			a.Min = v
		}
		if v > a.Max {
			a.Max = v
		}
	}
	a.Count += len(xs)
}

// addConst folds a run of cnt samples all equal to v.
func (a *RangeAgg) addConst(v float64, cnt int) {
	if cnt <= 0 {
		return
	}
	a.Sum += v * float64(cnt)
	if v < a.Min {
		a.Min = v
	}
	if v > a.Max {
		a.Max = v
	}
	a.Count += cnt
}

// addLinear folds cnt samples of the linear piece v(k) = v0 + slope*k for
// k = k0, k0+1, ..., k0+cnt-1 — the closed form shared by Swing,
// Sim-Piece, and CAMEO's interpolation segments. The sum uses the
// arithmetic-series identity; min and max sit at the endpoints of a
// linear piece, evaluated with the same expression decoding uses so they
// match materialized values bit-for-bit.
func (a *RangeAgg) addLinear(v0, slope float64, k0, cnt int) {
	if cnt <= 0 {
		return
	}
	first := v0 + slope*float64(k0)
	last := v0 + slope*float64(k0+cnt-1)
	a.Sum += float64(cnt)*v0 + slope*(float64(k0)+float64(k0+cnt-1))*float64(cnt)/2
	lo, hi := first, last
	if hi < lo {
		lo, hi = hi, lo
	}
	if lo < a.Min {
		a.Min = lo
	}
	if hi > a.Max {
		a.Max = hi
	}
	a.Count += cnt
}

// windowAccs distributes closed-form pieces onto a step-sample window
// grid, splitting each piece at window boundaries — the shared machinery
// behind every DecodeWindowAggs implementation. Indices are absolute
// (block-relative) sample positions; the grid is anchored so that window
// k covers [anchor+k*step, anchor+(k+1)*step), and aggs[0] is the window
// containing the fold range's lo.
type windowAccs struct {
	anchor, step, k0 int
	aggs             []RangeAgg
}

func newWindowAccs(lo, anchor, step int, aggs []RangeAgg) windowAccs {
	return windowAccs{anchor: anchor, step: step, k0: (lo - anchor) / step, aggs: aggs}
}

// addConst folds a constant run: value v for t in [t0, t1).
func (w *windowAccs) addConst(t0, t1 int, v float64) {
	for t0 < t1 {
		k := (t0 - w.anchor) / w.step
		end := min(t1, w.anchor+(k+1)*w.step)
		w.aggs[k-w.k0].addConst(v, end-t0)
		t0 = end
	}
}

// addLinear folds a linear piece: value v0 + slope*(t-base) for t in
// [t0, t1).
func (w *windowAccs) addLinear(t0, t1, base int, v0, slope float64) {
	for t0 < t1 {
		k := (t0 - w.anchor) / w.step
		end := min(t1, w.anchor+(k+1)*w.step)
		w.aggs[k-w.k0].addLinear(v0, slope, t0-base, end-t0)
		t0 = end
	}
}

// checkWindows validates a DecodeWindowAggs request: a well-formed
// subrange, a grid whose anchor does not trail into it, and enough
// accumulators for every window the range touches.
func checkWindows(n, lo, hi, anchor, step int, aggs []RangeAgg) error {
	if err := checkRange(n, lo, hi); err != nil {
		return err
	}
	if step < 1 {
		return fmt.Errorf("codec: window step must be at least 1, got %d", step)
	}
	if anchor > lo {
		return fmt.Errorf("codec: window anchor %d beyond range start %d", anchor, lo)
	}
	if hi > lo {
		if need := (hi-1-anchor)/step - (lo-anchor)/step + 1; need > len(aggs) {
			return fmt.Errorf("codec: %d window accumulators for a range touching %d windows", len(aggs), need)
		}
	}
	return nil
}

// checkRange validates a block subrange request.
func checkRange(n, lo, hi int) error {
	if n < 0 || n > MaxBlockSamples {
		return fmt.Errorf("%w: bad sample count %d", ErrBadBlock, n)
	}
	if lo < 0 || hi < lo || hi > n {
		return fmt.Errorf("codec: bad range [%d,%d) of a %d-sample block", lo, hi, n)
	}
	return nil
}

// DecodeRange decodes samples [lo, hi) of a block, appending to dst:
// natively for codecs implementing RangeDecoder, by decode-then-slice for
// the rest (the bit-stream lossless codecs, which cannot seek). Either way
// the appended values are bit-identical to Decode(data, n)[lo:hi].
func DecodeRange(c Codec, data []byte, n, lo, hi int, dst []float64) ([]float64, error) {
	if rd, ok := c.(RangeDecoder); ok {
		return rd.DecodeRange(data, n, lo, hi, dst)
	}
	if err := checkRange(n, lo, hi); err != nil {
		return nil, err
	}
	xs, err := c.Decode(data, n)
	if err != nil {
		return nil, err
	}
	return append(dst, xs[lo:hi]...), nil
}

// DecodeRangeAgg aggregates samples [lo, hi) of a block: natively for
// codecs implementing AggDecoder (no samples materialized), by range
// decoding for the rest. The native sums are evaluated in closed form per
// piece, so they can differ from a materialized left-to-right sum in the
// last few ulps; min, max, and count are exact.
func DecodeRangeAgg(c Codec, data []byte, n, lo, hi int) (RangeAgg, error) {
	if ad, ok := c.(AggDecoder); ok {
		return ad.DecodeRangeAgg(data, n, lo, hi)
	}
	xs, err := DecodeRange(c, data, n, lo, hi, nil)
	if err != nil {
		return RangeAgg{}, err
	}
	agg := NewRangeAgg()
	agg.Add(xs)
	return agg, nil
}
