package forecast

import "math"

// Loess smooths ys with locally-weighted linear regression (tricube kernel)
// over a window of the given span (number of neighbours, >= 3). It returns
// the fitted value at every index — the workhorse of the STL decomposition
// [19].
func Loess(ys []float64, span int) []float64 {
	n := len(ys)
	out := make([]float64, n)
	if n == 0 {
		return out
	}
	if span < 3 {
		span = 3
	}
	if span > n {
		span = n
	}
	for i := 0; i < n; i++ {
		lo := i - span/2
		if lo < 0 {
			lo = 0
		}
		hi := lo + span
		if hi > n {
			hi = n
			lo = hi - span
		}
		out[i] = loessPoint(ys, lo, hi, i)
	}
	return out
}

// loessPoint fits a weighted linear regression over [lo, hi) and evaluates
// it at t.
func loessPoint(ys []float64, lo, hi, t int) float64 {
	maxDist := math.Max(float64(t-lo), float64(hi-1-t))
	if maxDist == 0 {
		return ys[t]
	}
	var sw, swx, swy, swxx, swxy float64
	for j := lo; j < hi; j++ {
		d := math.Abs(float64(j-t)) / maxDist
		w := tricube(d)
		x := float64(j - t)
		sw += w
		swx += w * x
		swy += w * ys[j]
		swxx += w * x * x
		swxy += w * x * ys[j]
	}
	den := sw*swxx - swx*swx
	if math.Abs(den) < 1e-12*(sw*swxx+swx*swx+1e-300) {
		if sw == 0 {
			return ys[t]
		}
		return swy / sw // degenerate: weighted mean
	}
	// Evaluate at x = 0 (the centre point t).
	intercept := (swy*swxx - swx*swxy) / den
	return intercept
}

// tricube is the classic LOESS kernel (1 - d^3)^3 for d in [0, 1].
func tricube(d float64) float64 {
	if d >= 1 {
		// Keep a tiny positive weight so windows with an extreme point at
		// the boundary remain well-conditioned.
		return 1e-6
	}
	u := 1 - d*d*d
	return u * u * u
}

// STLResult holds an additive seasonal-trend decomposition:
// data = Trend + Seasonal + Remainder.
type STLResult struct {
	Trend     []float64
	Seasonal  []float64
	Remainder []float64
}

// STL computes a simplified Seasonal-Trend decomposition using LOESS [19]:
// cycle-subseries smoothing extracts the seasonal component, LOESS over the
// deseasonalized series extracts the trend, iterated twice. period is the
// seasonal cycle length; series shorter than two periods get a trend-only
// decomposition.
func STL(xs []float64, period int) *STLResult {
	n := len(xs)
	res := &STLResult{
		Trend:     make([]float64, n),
		Seasonal:  make([]float64, n),
		Remainder: make([]float64, n),
	}
	if n == 0 {
		return res
	}
	if period < 2 || n < 2*period {
		copy(res.Trend, Loess(xs, max(3, n/4)))
		for i := range xs {
			res.Remainder[i] = xs[i] - res.Trend[i]
		}
		return res
	}
	trend := make([]float64, n)
	seasonal := make([]float64, n)
	detr := make([]float64, n)
	deseas := make([]float64, n)
	trendSpan := oddAtLeast(int(1.5*float64(period)) + 1)
	for iter := 0; iter < 2; iter++ {
		// 1. Detrend.
		for i := range xs {
			detr[i] = xs[i] - trend[i]
		}
		// 2. Cycle-subseries smooth -> raw seasonal.
		cycleSubseriesSmooth(detr, seasonal, period)
		// 3. Low-pass filter the raw seasonal and subtract it, so any trend
		// leaking into the cycle subseries is pushed back to the trend
		// component (the classic STL steps 3-4).
		lp := movingAverage(seasonal, period)
		lp = movingAverage(lp, period)
		lp = movingAverage(lp, 3)
		for i := range seasonal {
			seasonal[i] -= lp[i]
		}
		centreSeasonal(seasonal, period)
		// 4. Deseasonalize and smooth for trend.
		for i := range xs {
			deseas[i] = xs[i] - seasonal[i]
		}
		copy(trend, Loess(deseas, trendSpan))
	}
	copy(res.Trend, trend)
	copy(res.Seasonal, seasonal)
	for i := range xs {
		res.Remainder[i] = xs[i] - trend[i] - seasonal[i]
	}
	return res
}

// cycleSubseriesSmooth smooths each phase's subseries with LOESS and writes
// the result back in phase order.
func cycleSubseriesSmooth(detr, seasonal []float64, period int) {
	n := len(detr)
	for phase := 0; phase < period; phase++ {
		var sub []float64
		for i := phase; i < n; i += period {
			sub = append(sub, detr[i])
		}
		span := len(sub)/2 + 1
		if span < 3 {
			span = 3
		}
		sm := Loess(sub, span)
		k := 0
		for i := phase; i < n; i += period {
			seasonal[i] = sm[k]
			k++
		}
	}
}

// movingAverage returns the centred moving average of window w; edge
// windows shrink to the available span.
func movingAverage(xs []float64, w int) []float64 {
	n := len(xs)
	out := make([]float64, n)
	if w < 1 {
		w = 1
	}
	half := w / 2
	for i := 0; i < n; i++ {
		lo := i - half
		if lo < 0 {
			lo = 0
		}
		hi := i + half + 1
		if hi > n {
			hi = n
		}
		var s float64
		for j := lo; j < hi; j++ {
			s += xs[j]
		}
		out[i] = s / float64(hi-lo)
	}
	return out
}

// centreSeasonal removes the mean of each full cycle so the seasonal
// component sums to ~0 over a period.
func centreSeasonal(seasonal []float64, period int) {
	n := len(seasonal)
	var mean float64
	for _, v := range seasonal {
		mean += v
	}
	mean /= float64(n)
	for i := range seasonal {
		seasonal[i] -= mean
	}
}

// SeasonalStrength returns the STL-based seasonal strength of Wang, Smith
// and Hyndman [91]: max(0, 1 - Var(remainder)/Var(seasonal+remainder)).
func SeasonalStrength(xs []float64, period int) float64 {
	dec := STL(xs, period)
	return strengthOf(dec.Seasonal, dec.Remainder)
}

// TrendStrength is the analogous trend statistic:
// max(0, 1 - Var(remainder)/Var(trend+remainder)).
func TrendStrength(xs []float64, period int) float64 {
	dec := STL(xs, period)
	return strengthOf(dec.Trend, dec.Remainder)
}

func strengthOf(component, remainder []float64) float64 {
	vr := variance(remainder)
	sum := make([]float64, len(component))
	for i := range sum {
		sum[i] = component[i] + remainder[i]
	}
	vs := variance(sum)
	if vs <= 0 {
		return 0
	}
	s := 1 - vr/vs
	if s < 0 {
		return 0
	}
	if s > 1 {
		return 1
	}
	return s
}

func variance(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var m float64
	for _, x := range xs {
		m += x
	}
	m /= float64(len(xs))
	var v float64
	for _, x := range xs {
		d := x - m
		v += d * d
	}
	return v / float64(len(xs))
}

func oddAtLeast(v int) int {
	if v%2 == 0 {
		v++
	}
	return v
}
