// Package forecast implements the forecasting models the paper's
// experiments (§5.8) train on compressed data: exponential smoothing
// (SES/Holt/Holt-Winters), STL decomposition with LOESS, autoregressive
// models fit by Yule-Walker (the ARIMA stand-in; see DESIGN.md
// substitutions), dynamic harmonic regression, and a from-scratch LSTM.
package forecast

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned when a least-squares system cannot be solved.
var ErrSingular = errors.New("forecast: singular normal equations")

// OLS solves min ||X b - y||^2 via the normal equations with partial-pivot
// Gaussian elimination, adding a tiny ridge for numerical robustness.
// X is row-major: len(y) rows, p columns.
func OLS(X [][]float64, y []float64) ([]float64, error) {
	n := len(X)
	if n == 0 || n != len(y) {
		return nil, fmt.Errorf("forecast: OLS needs matching non-empty rows, got %d x, %d y", n, len(y))
	}
	p := len(X[0])
	if p == 0 || n < p {
		return nil, fmt.Errorf("forecast: OLS needs at least as many rows (%d) as columns (%d)", n, p)
	}
	// A = X'X + ridge, b = X'y.
	A := make([][]float64, p)
	for i := range A {
		A[i] = make([]float64, p+1)
	}
	for r := 0; r < n; r++ {
		row := X[r]
		if len(row) != p {
			return nil, fmt.Errorf("forecast: ragged design matrix at row %d", r)
		}
		for i := 0; i < p; i++ {
			for j := i; j < p; j++ {
				A[i][j] += row[i] * row[j]
			}
			A[i][p] += row[i] * y[r]
		}
	}
	var scale float64
	for i := 0; i < p; i++ {
		for j := 0; j < i; j++ {
			A[i][j] = A[j][i]
		}
		scale += A[i][i]
	}
	ridge := 1e-10 * (scale/float64(p) + 1)
	for i := 0; i < p; i++ {
		A[i][i] += ridge
	}
	return solveLinear(A)
}

// solveLinear solves the p x (p+1) augmented system in place.
func solveLinear(A [][]float64) ([]float64, error) {
	p := len(A)
	for col := 0; col < p; col++ {
		// Partial pivot.
		piv := col
		for r := col + 1; r < p; r++ {
			if math.Abs(A[r][col]) > math.Abs(A[piv][col]) {
				piv = r
			}
		}
		if math.Abs(A[piv][col]) < 1e-300 {
			return nil, ErrSingular
		}
		A[col], A[piv] = A[piv], A[col]
		inv := 1 / A[col][col]
		for r := 0; r < p; r++ {
			if r == col {
				continue
			}
			f := A[r][col] * inv
			if f == 0 {
				continue
			}
			for c := col; c <= p; c++ {
				A[r][c] -= f * A[col][c]
			}
		}
	}
	out := make([]float64, p)
	for i := 0; i < p; i++ {
		out[i] = A[i][p] / A[i][i]
		if math.IsNaN(out[i]) || math.IsInf(out[i], 0) {
			return nil, ErrSingular
		}
	}
	return out, nil
}
