package forecast

import (
	"fmt"

	"repro/internal/stats"
)

// Evaluation reports a compress-train-forecast experiment for one model:
// the model is trained on (possibly reconstructed) data and its forecast is
// scored against the raw held-out tail, exactly as the paper's EXP1-EXP3.
type Evaluation struct {
	Model   string
	Horizon int
	MSMAPE  float64
	MSE     float64
	MAPE    float64
}

// Evaluate trains the model on train and scores an h-step forecast against
// actual (the raw future values; len(actual) >= h).
func Evaluate(model Forecaster, train, actual []float64, h int) (*Evaluation, error) {
	if len(actual) < h {
		return nil, fmt.Errorf("forecast: need %d actuals, have %d", h, len(actual))
	}
	if err := model.Fit(train); err != nil {
		return nil, fmt.Errorf("forecast: fitting %s: %w", model.Name(), err)
	}
	fc := model.Forecast(h)
	truth := actual[:h]
	return &Evaluation{
		Model:   model.Name(),
		Horizon: h,
		MSMAPE:  stats.MSMAPE(truth, fc),
		MSE:     stats.MSE(truth, fc),
		MAPE:    stats.MAPE(truth, fc),
	}, nil
}

// SplitTrainTest splits xs into a training prefix and an h-point test tail.
func SplitTrainTest(xs []float64, h int) (train, test []float64, err error) {
	if h <= 0 || h >= len(xs) {
		return nil, nil, fmt.Errorf("forecast: horizon %d out of range for %d points", h, len(xs))
	}
	return xs[:len(xs)-h], xs[len(xs)-h:], nil
}
