package forecast

import (
	"math"
	"math/rand"
)

// LSTM is a compact single-layer LSTM forecaster [36] trained from scratch
// with truncated backpropagation through time and Adam: sliding windows of
// Window standardized values predict the next value; multi-step forecasts
// iterate the one-step model. It is intentionally small — the paper's EXP2
// and EXP3 only need a representative recurrent model whose accuracy
// depends on the temporal structure the compressors preserve.
type LSTM struct {
	// Window is the input window length (default: 24).
	Window int
	// Hidden is the hidden state size (default: 16).
	Hidden int
	// Epochs is the number of training epochs (default: 40).
	Epochs int
	// LearningRate is Adam's step size (default: 0.01).
	LearningRate float64
	// Seed makes training deterministic (default: 1).
	Seed int64

	p        lstmParams
	mean     float64
	std      float64
	histo    []float64 // last Window standardized values
	zlo, zhi float64   // standardized training envelope (for clamping)
	fitted   bool
}

// lstmParams holds the trainable parameters; gate order is [i, f, o, g].
type lstmParams struct {
	H  int
	Wx []float64 // 4H x 1
	Wh []float64 // 4H x H
	B  []float64 // 4H
	Wy []float64 // H
	By float64
}

func newLSTMParams(h int, rng *rand.Rand) lstmParams {
	p := lstmParams{
		H:  h,
		Wx: make([]float64, 4*h),
		Wh: make([]float64, 4*h*h),
		B:  make([]float64, 4*h),
		Wy: make([]float64, h),
	}
	scale := 1 / math.Sqrt(float64(h))
	for i := range p.Wx {
		p.Wx[i] = rng.NormFloat64() * scale
	}
	for i := range p.Wh {
		p.Wh[i] = rng.NormFloat64() * scale
	}
	for i := range p.Wy {
		p.Wy[i] = rng.NormFloat64() * scale
	}
	// Positive forget-gate bias: the standard trick for gradient flow.
	for j := h; j < 2*h; j++ {
		p.B[j] = 1
	}
	return p
}

// vector returns all parameters as one flat slice view for the optimizer.
func (p *lstmParams) flatLen() int { return len(p.Wx) + len(p.Wh) + len(p.B) + len(p.Wy) + 1 }

// Name returns "LSTM".
func (l *LSTM) Name() string { return "LSTM" }

func (l *LSTM) defaults() {
	if l.Window <= 0 {
		l.Window = 24
	}
	if l.Hidden <= 0 {
		l.Hidden = 16
	}
	if l.Epochs <= 0 {
		l.Epochs = 40
	}
	if l.LearningRate <= 0 {
		l.LearningRate = 0.01
	}
	if l.Seed == 0 {
		l.Seed = 1
	}
}

// Fit trains the network on all sliding windows of xs.
func (l *LSTM) Fit(xs []float64) error {
	l.defaults()
	if len(xs) < l.Window+2 {
		return ErrTooShort
	}
	// Standardize for stable optimization.
	var mean float64
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	var sd float64
	for _, x := range xs {
		d := x - mean
		sd += d * d
	}
	sd = math.Sqrt(sd / float64(len(xs)))
	if sd == 0 {
		sd = 1
	}
	zs := make([]float64, len(xs))
	for i, x := range xs {
		zs[i] = (x - mean) / sd
	}
	l.mean, l.std = mean, sd

	rng := rand.New(rand.NewSource(l.Seed))
	l.p = newLSTMParams(l.Hidden, rng)
	opt := newAdam(l.p.flatLen(), l.LearningRate)
	grad := make([]float64, l.p.flatLen())

	nSamples := len(zs) - l.Window
	// Cap per-epoch samples so training time stays bounded on long series.
	maxPerEpoch := 512
	order := rng.Perm(nSamples)
	ws := newLSTMWorkspace(l.Window, l.Hidden)
	for epoch := 0; epoch < l.Epochs; epoch++ {
		if epoch > 0 {
			rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		}
		count := nSamples
		if count > maxPerEpoch {
			count = maxPerEpoch
		}
		for s := 0; s < count; s++ {
			start := order[s]
			window := zs[start : start+l.Window]
			target := zs[start+l.Window]
			for i := range grad {
				grad[i] = 0
			}
			l.p.backward(window, target, grad, ws)
			opt.step(&l.p, grad)
		}
	}
	l.histo = append([]float64(nil), zs[len(zs)-l.Window:]...)
	l.zlo, l.zhi = zs[0], zs[0]
	for _, z := range zs {
		if z < l.zlo {
			l.zlo = z
		}
		if z > l.zhi {
			l.zhi = z
		}
	}
	l.fitted = true
	return nil
}

// Forecast iterates one-step predictions h times.
func (l *LSTM) Forecast(h int) []float64 {
	out := make([]float64, h)
	if !l.fitted {
		return out
	}
	ws := newLSTMWorkspace(l.Window, l.Hidden)
	hist := append([]float64(nil), l.histo...)
	// Iterated one-step forecasting can diverge when the input distribution
	// shifts (e.g. heavily compressed training data); clamp each prediction
	// to the training envelope widened by half its span.
	margin := (l.zhi - l.zlo) / 2
	lo, hi := l.zlo-margin, l.zhi+margin
	for i := 0; i < h; i++ {
		y := l.p.forward(hist[len(hist)-l.Window:], ws)
		if y < lo {
			y = lo
		} else if y > hi {
			y = hi
		}
		out[i] = y*l.std + l.mean
		hist = append(hist, y)
	}
	return out
}

// lstmWorkspace stores per-step activations for BPTT.
type lstmWorkspace struct {
	W, H                   int
	hs, cs                 [][]float64 // h_t, c_t for t = 0..W (index 0 = initial zeros)
	ig, fg, og, gg         [][]float64 // post-activation gates per step
	dh, dc, dhNext, dcNext []float64
}

func newLSTMWorkspace(w, h int) *lstmWorkspace {
	ws := &lstmWorkspace{W: w, H: h}
	alloc := func() [][]float64 {
		m := make([][]float64, w+1)
		for i := range m {
			m[i] = make([]float64, h)
		}
		return m
	}
	ws.hs, ws.cs = alloc(), alloc()
	ws.ig, ws.fg, ws.og, ws.gg = alloc(), alloc(), alloc(), alloc()
	ws.dh = make([]float64, h)
	ws.dc = make([]float64, h)
	ws.dhNext = make([]float64, h)
	ws.dcNext = make([]float64, h)
	return ws
}

func sigmoid(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

// forward runs the cell over the window and returns the scalar prediction.
func (p *lstmParams) forward(window []float64, ws *lstmWorkspace) float64 {
	H := p.H
	for i := range ws.hs[0] {
		ws.hs[0][i] = 0
		ws.cs[0][i] = 0
	}
	for t, x := range window {
		hPrev, cPrev := ws.hs[t], ws.cs[t]
		hCur, cCur := ws.hs[t+1], ws.cs[t+1]
		for j := 0; j < H; j++ {
			zi := p.Wx[j]*x + p.B[j]
			zf := p.Wx[H+j]*x + p.B[H+j]
			zo := p.Wx[2*H+j]*x + p.B[2*H+j]
			zg := p.Wx[3*H+j]*x + p.B[3*H+j]
			rowI := j * H
			rowF := (H + j) * H
			rowO := (2*H + j) * H
			rowG := (3*H + j) * H
			for k := 0; k < H; k++ {
				hk := hPrev[k]
				zi += p.Wh[rowI+k] * hk
				zf += p.Wh[rowF+k] * hk
				zo += p.Wh[rowO+k] * hk
				zg += p.Wh[rowG+k] * hk
			}
			i := sigmoid(zi)
			f := sigmoid(zf)
			o := sigmoid(zo)
			g := math.Tanh(zg)
			c := f*cPrev[j] + i*g
			hCur[j] = o * math.Tanh(c)
			cCur[j] = c
			ws.ig[t+1][j], ws.fg[t+1][j], ws.og[t+1][j], ws.gg[t+1][j] = i, f, o, g
		}
	}
	y := p.By
	last := ws.hs[len(window)]
	for j := 0; j < H; j++ {
		y += p.Wy[j] * last[j]
	}
	return y
}

// backward accumulates the MSE-loss gradient for one sample into grad
// (layout: Wx, Wh, B, Wy, By) and returns the loss.
func (p *lstmParams) backward(window []float64, target float64, grad []float64, ws *lstmWorkspace) float64 {
	H := p.H
	W := len(window)
	y := p.forward(window, ws)
	diff := y - target
	loss := diff * diff

	gWx := grad[:4*H]
	gWh := grad[4*H : 4*H+4*H*H]
	gB := grad[4*H+4*H*H : 8*H+4*H*H]
	gWy := grad[8*H+4*H*H : 9*H+4*H*H]

	dy := 2 * diff
	last := ws.hs[W]
	for j := 0; j < H; j++ {
		gWy[j] += dy * last[j]
		ws.dhNext[j] = dy * p.Wy[j]
		ws.dcNext[j] = 0
	}
	grad[len(grad)-1] += dy // By

	for t := W; t >= 1; t-- {
		x := window[t-1]
		hPrev, cPrev := ws.hs[t-1], ws.cs[t-1]
		copy(ws.dh, ws.dhNext)
		copy(ws.dc, ws.dcNext)
		for j := range ws.dhNext {
			ws.dhNext[j] = 0
			ws.dcNext[j] = 0
		}
		for j := 0; j < H; j++ {
			i := ws.ig[t][j]
			f := ws.fg[t][j]
			o := ws.og[t][j]
			g := ws.gg[t][j]
			c := ws.cs[t][j]
			tc := math.Tanh(c)
			dh := ws.dh[j]
			dc := ws.dc[j] + dh*o*(1-tc*tc)
			do := dh * tc
			di := dc * g
			dg := dc * i
			df := dc * cPrev[j]
			// Pre-activation gradients.
			dzi := di * i * (1 - i)
			dzf := df * f * (1 - f)
			dzo := do * o * (1 - o)
			dzg := dg * (1 - g*g)
			// Parameter gradients.
			gWx[j] += dzi * x
			gWx[H+j] += dzf * x
			gWx[2*H+j] += dzo * x
			gWx[3*H+j] += dzg * x
			gB[j] += dzi
			gB[H+j] += dzf
			gB[2*H+j] += dzo
			gB[3*H+j] += dzg
			rowI := j * H
			rowF := (H + j) * H
			rowO := (2*H + j) * H
			rowG := (3*H + j) * H
			for k := 0; k < H; k++ {
				hk := hPrev[k]
				gWh[rowI+k] += dzi * hk
				gWh[rowF+k] += dzf * hk
				gWh[rowO+k] += dzo * hk
				gWh[rowG+k] += dzg * hk
				ws.dhNext[k] += dzi*p.Wh[rowI+k] + dzf*p.Wh[rowF+k] +
					dzo*p.Wh[rowO+k] + dzg*p.Wh[rowG+k]
			}
			ws.dcNext[j] = dc * f
		}
	}
	return loss
}

// adam is a standard Adam optimizer over the flattened parameter vector.
type adam struct {
	lr, b1, b2, eps float64
	m, v            []float64
	t               int
}

func newAdam(n int, lr float64) *adam {
	return &adam{lr: lr, b1: 0.9, b2: 0.999, eps: 1e-8, m: make([]float64, n), v: make([]float64, n)}
}

// step applies one Adam update to the parameters given the gradient.
func (a *adam) step(p *lstmParams, grad []float64) {
	a.t++
	bc1 := 1 - math.Pow(a.b1, float64(a.t))
	bc2 := 1 - math.Pow(a.b2, float64(a.t))
	idx := 0
	update := func(w []float64) {
		for i := range w {
			g := grad[idx]
			a.m[idx] = a.b1*a.m[idx] + (1-a.b1)*g
			a.v[idx] = a.b2*a.v[idx] + (1-a.b2)*g*g
			mhat := a.m[idx] / bc1
			vhat := a.v[idx] / bc2
			w[i] -= a.lr * mhat / (math.Sqrt(vhat) + a.eps)
			idx++
		}
	}
	update(p.Wx)
	update(p.Wh)
	update(p.B)
	update(p.Wy)
	// By is the final scalar.
	g := grad[idx]
	a.m[idx] = a.b1*a.m[idx] + (1-a.b1)*g
	a.v[idx] = a.b2*a.v[idx] + (1-a.b2)*g*g
	p.By -= a.lr * (a.m[idx] / bc1) / (math.Sqrt(a.v[idx]/bc2) + a.eps)
}
