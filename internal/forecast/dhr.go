package forecast

import (
	"errors"
	"math"
)

// DHR is Dynamic Harmonic Regression [97, 44]: a linear regression of the
// series on an intercept, a linear time term, and K Fourier harmonic pairs
// of the seasonal period, with an AR model on the regression errors — the
// paper's DHR-ARIMA configuration (EXP3) with the AR stand-in.
type DHR struct {
	// Period is the seasonal cycle length (required).
	Period int
	// K is the number of Fourier harmonic pairs (default min(6, Period/2)).
	K int

	beta  []float64 // intercept, slope, then cos/sin pairs
	arErr *AR
	n     int
	fit   bool
}

// Name returns "DHR-AR".
func (d *DHR) Name() string { return "DHR-AR" }

// Fit solves the harmonic regression and fits the AR error model.
func (d *DHR) Fit(xs []float64) error {
	if d.Period < 2 {
		return errors.New("forecast: DHR needs Period >= 2")
	}
	if len(xs) < 2*d.Period {
		return ErrTooShort
	}
	k := d.K
	if k <= 0 {
		k = 6
	}
	if k > d.Period/2 {
		k = d.Period / 2
	}
	if k < 1 {
		k = 1
	}
	n := len(xs)
	p := 2 + 2*k
	X := make([][]float64, n)
	for t := 0; t < n; t++ {
		row := make([]float64, p)
		row[0] = 1
		row[1] = float64(t) / float64(n) // scaled trend term
		for j := 1; j <= k; j++ {
			ang := 2 * math.Pi * float64(j) * float64(t) / float64(d.Period)
			row[2*j] = math.Cos(ang)
			row[2*j+1] = math.Sin(ang)
		}
		X[t] = row
	}
	beta, err := OLS(X, xs)
	if err != nil {
		return err
	}
	d.beta = beta
	d.K = k
	d.n = n
	// AR on the regression errors captures short-range dependence.
	resid := make([]float64, n)
	for t := 0; t < n; t++ {
		resid[t] = xs[t] - d.regValue(t)
	}
	d.arErr = &AR{MaxOrder: 10}
	if err := d.arErr.Fit(resid); err != nil {
		d.arErr = nil // fall back to pure regression
	}
	d.fit = true
	return nil
}

// regValue evaluates the fitted regression at absolute time t.
func (d *DHR) regValue(t int) float64 {
	v := d.beta[0] + d.beta[1]*float64(t)/float64(d.n)
	for j := 1; j <= d.K; j++ {
		ang := 2 * math.Pi * float64(j) * float64(t) / float64(d.Period)
		v += d.beta[2*j]*math.Cos(ang) + d.beta[2*j+1]*math.Sin(ang)
	}
	return v
}

// Forecast extrapolates the regression and adds the AR error forecast.
func (d *DHR) Forecast(h int) []float64 {
	out := make([]float64, h)
	if !d.fit {
		return out
	}
	var errFC []float64
	if d.arErr != nil {
		errFC = d.arErr.Forecast(h)
	}
	for i := 0; i < h; i++ {
		out[i] = d.regValue(d.n + i)
		if errFC != nil {
			out[i] += errFC[i]
		}
	}
	return out
}
