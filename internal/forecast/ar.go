package forecast

import (
	"math"

	"repro/internal/acf"
)

// AR is an autoregressive model of order P fit by Yule-Walker equations
// (solved with the Durbin-Levinson recursion). With P == 0 the order is
// selected by AIC up to MaxOrder. It serves as the repository's ARIMA
// stand-in: differencing/MA structure is approximated by the STL pipelines
// that detrend before fitting (see DESIGN.md substitutions).
type AR struct {
	// P is the fixed order; 0 selects by AIC.
	P int
	// MaxOrder bounds AIC selection (default 20).
	MaxOrder int

	coefs []float64 // phi_1..phi_p
	mean  float64
	hist  []float64 // last p observations, most recent last
	fit   bool
}

// Name returns "AR".
func (m *AR) Name() string { return "AR" }

// Fit estimates coefficients by Yule-Walker.
func (m *AR) Fit(xs []float64) error {
	if len(xs) < 3 {
		return ErrTooShort
	}
	maxP := m.P
	if maxP <= 0 {
		maxP = m.MaxOrder
		if maxP <= 0 {
			maxP = 20
		}
	}
	if maxP > len(xs)/3 {
		maxP = len(xs) / 3
	}
	if maxP < 1 {
		maxP = 1
	}
	var mean float64
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	rho := acf.ACFStationary(xs, maxP)

	// Durbin-Levinson gives coefficients and innovation variance for every
	// order 1..maxP in one sweep; pick by AIC when the order is free.
	n := float64(len(xs))
	var v float64
	for _, x := range xs {
		d := x - mean
		v += d * d
	}
	v /= n
	if v <= 0 {
		// Constant series: forecast the mean with order 1, zero coefs.
		m.coefs = []float64{0}
		m.mean = mean
		m.hist = tailCopy(xs, 1)
		m.fit = true
		return nil
	}

	phiPrev := make([]float64, maxP+1)
	phiCur := make([]float64, maxP+1)
	sigma2 := v
	bestAIC := math.Inf(1)
	var bestCoefs []float64
	order := m.P
	phiPrev[1] = rho0(rho, 1)
	sigma2 *= 1 - phiPrev[1]*phiPrev[1]
	considerAR(&bestAIC, &bestCoefs, phiPrev[1:2], sigma2, n, order == 0 || order == 1, 1)
	for p := 2; p <= maxP; p++ {
		var num, den float64
		num = rho0(rho, p)
		den = 1.0
		for k := 1; k < p; k++ {
			num -= phiPrev[k] * rho0(rho, p-k)
			den -= phiPrev[k] * rho0(rho, k)
		}
		if math.Abs(den) < 1e-12 {
			break
		}
		pkk := num / den
		for k := 1; k < p; k++ {
			phiCur[k] = phiPrev[k] - pkk*phiPrev[p-k]
		}
		phiCur[p] = pkk
		copy(phiPrev[:p+1], phiCur[:p+1])
		sigma2 *= 1 - pkk*pkk
		if sigma2 <= 0 {
			sigma2 = 1e-12
		}
		considerAR(&bestAIC, &bestCoefs, phiPrev[1:p+1], sigma2, n, order == 0 || order == p, p)
	}
	if bestCoefs == nil {
		bestCoefs = []float64{rho0(rho, 1)}
	}
	m.coefs = bestCoefs
	m.mean = mean
	m.hist = tailCopy(xs, len(bestCoefs))
	m.fit = true
	return nil
}

// considerAR updates the AIC-best coefficient set.
func considerAR(bestAIC *float64, bestCoefs *[]float64, coefs []float64, sigma2, n float64, eligible bool, p int) {
	if !eligible {
		return
	}
	aic := n*math.Log(sigma2) + 2*float64(p)
	if aic < *bestAIC {
		*bestAIC = aic
		*bestCoefs = append([]float64(nil), coefs...)
	}
}

// rho0 indexes an ACF slice (lags 1..L) safely.
func rho0(rho []float64, lag int) float64 {
	if lag < 1 || lag > len(rho) {
		return 0
	}
	return rho[lag-1]
}

// Order returns the fitted order.
func (m *AR) Order() int { return len(m.coefs) }

// Forecast iterates the AR recursion h steps ahead.
func (m *AR) Forecast(h int) []float64 {
	out := make([]float64, h)
	if !m.fit {
		return out
	}
	p := len(m.coefs)
	hist := append([]float64(nil), m.hist...)
	for i := 0; i < h; i++ {
		var v float64
		for k := 1; k <= p; k++ {
			var prev float64
			if len(hist) >= k {
				prev = hist[len(hist)-k]
			}
			v += m.coefs[k-1] * (prev - m.mean)
		}
		v += m.mean
		out[i] = v
		hist = append(hist, v)
	}
	return out
}

// tailCopy returns the last k values (or fewer if xs is shorter).
func tailCopy(xs []float64, k int) []float64 {
	if k > len(xs) {
		k = len(xs)
	}
	return append([]float64(nil), xs[len(xs)-k:]...)
}
