package forecast

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/stats"
)

func seasonalTrend(n, period int, noise float64, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = 20 + 0.01*float64(i) + 8*math.Sin(2*math.Pi*float64(i)/float64(period)) + noise*rng.NormFloat64()
	}
	return xs
}

func TestOLSExactFit(t *testing.T) {
	// y = 3 + 2x, exactly recoverable.
	X := [][]float64{{1, 0}, {1, 1}, {1, 2}, {1, 3}}
	y := []float64{3, 5, 7, 9}
	b, err := OLS(X, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(b[0]-3) > 1e-6 || math.Abs(b[1]-2) > 1e-6 {
		t.Fatalf("beta = %v, want [3 2]", b)
	}
}

func TestOLSValidation(t *testing.T) {
	if _, err := OLS(nil, nil); err == nil {
		t.Fatal("expected error on empty input")
	}
	if _, err := OLS([][]float64{{1, 2}}, []float64{1}); err == nil {
		t.Fatal("expected error with fewer rows than columns")
	}
	if _, err := OLS([][]float64{{1}, {1, 2}}, []float64{1, 2}); err == nil {
		t.Fatal("expected error on ragged matrix")
	}
}

func TestOLSCollinearRidged(t *testing.T) {
	// Perfectly collinear columns: ridge keeps it solvable and finite.
	X := [][]float64{{1, 2}, {2, 4}, {3, 6}, {4, 8}}
	y := []float64{1, 2, 3, 4}
	b, err := OLS(X, y)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range b {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("non-finite coefficient %v", v)
		}
	}
}

func TestLoessSmoothsNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := 400
	clean := make([]float64, n)
	noisy := make([]float64, n)
	for i := range clean {
		clean[i] = math.Sin(float64(i) / 30)
		noisy[i] = clean[i] + 0.3*rng.NormFloat64()
	}
	sm := Loess(noisy, 31)
	if stats.RMSE(clean, sm) >= stats.RMSE(clean, noisy)*0.7 {
		t.Fatalf("LOESS did not reduce noise: %v vs %v", stats.RMSE(clean, sm), stats.RMSE(clean, noisy))
	}
}

func TestLoessPreservesLinear(t *testing.T) {
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = 2 + 0.5*float64(i)
	}
	sm := Loess(xs, 21)
	for i := range xs {
		if math.Abs(sm[i]-xs[i]) > 1e-6 {
			t.Fatalf("LOESS distorted a line at %d: %v vs %v", i, sm[i], xs[i])
		}
	}
}

func TestLoessEdgeCases(t *testing.T) {
	if got := Loess(nil, 5); len(got) != 0 {
		t.Fatal("empty input")
	}
	got := Loess([]float64{1, 2}, 99)
	if len(got) != 2 {
		t.Fatal("short input")
	}
}

func TestSTLRecoversSeasonalAmplitude(t *testing.T) {
	xs := seasonalTrend(600, 24, 0.3, 2)
	dec := STL(xs, 24)
	// Reconstruction identity.
	for i := range xs {
		sum := dec.Trend[i] + dec.Seasonal[i] + dec.Remainder[i]
		if math.Abs(sum-xs[i]) > 1e-9 {
			t.Fatalf("decomposition does not sum back at %d", i)
		}
	}
	// Seasonal amplitude ~8.
	if amp := stats.Max(dec.Seasonal) - stats.Min(dec.Seasonal); amp < 10 || amp > 22 {
		t.Fatalf("seasonal amplitude = %v, want ~16", amp)
	}
	// Remainder should be small relative to the seasonal swing.
	if stats.Std(dec.Remainder) > 1.5 {
		t.Fatalf("remainder std = %v, want < 1.5", stats.Std(dec.Remainder))
	}
}

func TestSTLShortSeriesTrendOnly(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	dec := STL(xs, 12)
	for i := range xs {
		if dec.Seasonal[i] != 0 {
			t.Fatal("short series should have zero seasonal component")
		}
	}
}

func TestSeasonalStrengthOrdering(t *testing.T) {
	strong := seasonalTrend(480, 24, 0.2, 3)
	rng := rand.New(rand.NewSource(4))
	weak := make([]float64, 480)
	for i := range weak {
		weak[i] = rng.NormFloat64()
	}
	ss, sw := SeasonalStrength(strong, 24), SeasonalStrength(weak, 24)
	if ss <= sw {
		t.Fatalf("seasonal strength ordering broken: strong %v <= weak %v", ss, sw)
	}
	if ss < 0.8 {
		t.Fatalf("strongly seasonal series scored %v, want >= 0.8", ss)
	}
}

func TestSESForecastsLevel(t *testing.T) {
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = 5
	}
	var m SES
	if err := m.Fit(xs); err != nil {
		t.Fatal(err)
	}
	for _, v := range m.Forecast(3) {
		if math.Abs(v-5) > 1e-9 {
			t.Fatalf("SES forecast %v, want 5", v)
		}
	}
}

func TestSESTooShort(t *testing.T) {
	var m SES
	if err := m.Fit([]float64{1}); err != ErrTooShort {
		t.Fatalf("expected ErrTooShort, got %v", err)
	}
}

func TestHoltWintersBeatsSESOnSeasonalData(t *testing.T) {
	xs := seasonalTrend(480, 24, 0.3, 5)
	train, test, err := SplitTrainTest(xs, 24)
	if err != nil {
		t.Fatal(err)
	}
	hw := &HoltWinters{Period: 24}
	evHW, err := Evaluate(hw, train, test, 24)
	if err != nil {
		t.Fatal(err)
	}
	evSES, err := Evaluate(&SES{}, train, test, 24)
	if err != nil {
		t.Fatal(err)
	}
	if evHW.MSE >= evSES.MSE {
		t.Fatalf("HW MSE %v >= SES MSE %v on seasonal data", evHW.MSE, evSES.MSE)
	}
}

func TestHoltWintersPhaseAlignment(t *testing.T) {
	// Pure sine, no noise: the forecast must continue the cycle in phase.
	period := 12
	n := 20*period + 5 // deliberately not a multiple of the period
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = math.Sin(2 * math.Pi * float64(i) / float64(period))
	}
	hw := &HoltWinters{Period: period}
	if err := hw.Fit(xs); err != nil {
		t.Fatal(err)
	}
	fc := hw.Forecast(period)
	for i := 0; i < period; i++ {
		want := math.Sin(2 * math.Pi * float64(n+i) / float64(period))
		if math.Abs(fc[i]-want) > 0.25 {
			t.Fatalf("phase misalignment at step %d: %v vs %v", i, fc[i], want)
		}
	}
}

func TestARRecoversAR1Coefficient(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	n := 20000
	xs := make([]float64, n)
	for i := 1; i < n; i++ {
		xs[i] = 0.8*xs[i-1] + rng.NormFloat64()
	}
	m := &AR{P: 1}
	if err := m.Fit(xs); err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.coefs[0]-0.8) > 0.05 {
		t.Fatalf("phi = %v, want ~0.8", m.coefs[0])
	}
}

func TestARAICSelectsReasonableOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 20000
	xs := make([]float64, n)
	for i := 2; i < n; i++ {
		xs[i] = 0.5*xs[i-1] + 0.3*xs[i-2] + rng.NormFloat64()
	}
	m := &AR{}
	if err := m.Fit(xs); err != nil {
		t.Fatal(err)
	}
	if m.Order() < 2 || m.Order() > 6 {
		t.Fatalf("AIC picked order %d for an AR(2) process", m.Order())
	}
}

func TestARForecastDecaysToMean(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	xs := make([]float64, 5000)
	for i := 1; i < len(xs); i++ {
		xs[i] = 10 + 0.6*(xs[i-1]-10) + rng.NormFloat64()
	}
	m := &AR{P: 1}
	if err := m.Fit(xs); err != nil {
		t.Fatal(err)
	}
	fc := m.Forecast(200)
	if math.Abs(fc[199]-10) > 1 {
		t.Fatalf("long-horizon AR forecast %v, want ~10 (mean reversion)", fc[199])
	}
}

func TestARConstantSeries(t *testing.T) {
	xs := make([]float64, 50)
	for i := range xs {
		xs[i] = 3
	}
	m := &AR{}
	if err := m.Fit(xs); err != nil {
		t.Fatal(err)
	}
	for _, v := range m.Forecast(5) {
		if math.Abs(v-3) > 1e-9 {
			t.Fatalf("constant AR forecast %v, want 3", v)
		}
	}
}

func TestSTLForecasterBeatsInnerAloneOnSeasonal(t *testing.T) {
	xs := seasonalTrend(600, 24, 0.4, 9)
	train, test, _ := SplitTrainTest(xs, 24)
	stlar := NewSTLAR(24)
	evSTL, err := Evaluate(stlar, train, test, 24)
	if err != nil {
		t.Fatal(err)
	}
	evAR, err := Evaluate(&AR{MaxOrder: 5}, train, test, 24)
	if err != nil {
		t.Fatal(err)
	}
	if evSTL.MSE >= evAR.MSE {
		t.Fatalf("STL-AR MSE %v >= bare AR(<=5) MSE %v on seasonal data", evSTL.MSE, evAR.MSE)
	}
}

func TestSTLForecasterNames(t *testing.T) {
	if got := NewSTLETS(12).Name(); got != "STL-SES" {
		t.Fatalf("Name = %q", got)
	}
	if got := NewSTLAR(12).Name(); got != "STL-AR" {
		t.Fatalf("Name = %q", got)
	}
}

func TestDHRTracksSeasonalCycle(t *testing.T) {
	xs := seasonalTrend(720, 24, 0.3, 10)
	train, test, _ := SplitTrainTest(xs, 24)
	d := &DHR{Period: 24}
	ev, err := Evaluate(d, train, test, 24)
	if err != nil {
		t.Fatal(err)
	}
	// The seasonal swing is +-8; a model ignoring it has MSE ~32.
	if ev.MSE > 8 {
		t.Fatalf("DHR MSE = %v, want < 8", ev.MSE)
	}
}

func TestDHRNeedsPeriod(t *testing.T) {
	d := &DHR{}
	if err := d.Fit(seasonalTrend(100, 10, 0.1, 11)); err == nil {
		t.Fatal("expected error without Period")
	}
}

func TestLSTMLearnsSine(t *testing.T) {
	period := 20
	n := 400
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = math.Sin(2 * math.Pi * float64(i) / float64(period))
	}
	m := &LSTM{Window: period, Hidden: 12, Epochs: 30, Seed: 3}
	train, test, _ := SplitTrainTest(xs, period)
	ev, err := Evaluate(m, train, test, period)
	if err != nil {
		t.Fatal(err)
	}
	// Sine has variance 0.5; demand substantially better than predicting 0.
	if ev.MSE > 0.2 {
		t.Fatalf("LSTM MSE on sine = %v, want < 0.2", ev.MSE)
	}
}

func TestLSTMDeterministicWithSeed(t *testing.T) {
	xs := seasonalTrend(300, 24, 0.2, 12)
	a := &LSTM{Window: 24, Hidden: 8, Epochs: 5, Seed: 7}
	b := &LSTM{Window: 24, Hidden: 8, Epochs: 5, Seed: 7}
	if err := a.Fit(xs); err != nil {
		t.Fatal(err)
	}
	if err := b.Fit(xs); err != nil {
		t.Fatal(err)
	}
	fa, fb := a.Forecast(10), b.Forecast(10)
	for i := range fa {
		if fa[i] != fb[i] {
			t.Fatal("LSTM training not deterministic for equal seeds")
		}
	}
}

func TestLSTMTooShort(t *testing.T) {
	m := &LSTM{Window: 24}
	if err := m.Fit(make([]float64, 10)); err != ErrTooShort {
		t.Fatalf("expected ErrTooShort, got %v", err)
	}
}

func TestLSTMGradientCheck(t *testing.T) {
	// Numerical gradient check on a tiny network: the analytic BPTT
	// gradient must match central differences.
	rng := rand.New(rand.NewSource(13))
	p := newLSTMParams(3, rng)
	ws := newLSTMWorkspace(4, 3)
	window := []float64{0.5, -0.3, 0.8, 0.1}
	target := 0.4
	grad := make([]float64, p.flatLen())
	p.backward(window, target, grad, ws)

	eps := 1e-6
	checkSlice := func(name string, w []float64, offset int) {
		for _, idx := range []int{0, len(w) / 2, len(w) - 1} {
			orig := w[idx]
			w[idx] = orig + eps
			yp := p.forward(window, ws)
			lp := (yp - target) * (yp - target)
			w[idx] = orig - eps
			ym := p.forward(window, ws)
			lm := (ym - target) * (ym - target)
			w[idx] = orig
			num := (lp - lm) / (2 * eps)
			if math.Abs(num-grad[offset+idx]) > 1e-4*(1+math.Abs(num)) {
				t.Fatalf("%s[%d]: numeric %v vs analytic %v", name, idx, num, grad[offset+idx])
			}
		}
	}
	H := 3
	checkSlice("Wx", p.Wx, 0)
	checkSlice("Wh", p.Wh, 4*H)
	checkSlice("B", p.B, 4*H+4*H*H)
	checkSlice("Wy", p.Wy, 8*H+4*H*H)
}

func TestEvaluateErrors(t *testing.T) {
	xs := seasonalTrend(100, 10, 0.1, 14)
	if _, err := Evaluate(&SES{}, xs, xs[:2], 5); err == nil {
		t.Fatal("expected error with insufficient actuals")
	}
	if _, _, err := SplitTrainTest(xs, 0); err == nil {
		t.Fatal("expected error for zero horizon")
	}
	if _, _, err := SplitTrainTest(xs, 100); err == nil {
		t.Fatal("expected error for horizon == length")
	}
}
