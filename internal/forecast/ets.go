package forecast

import (
	"errors"
	"math"
)

// Forecaster is a univariate model that fits a training series and
// extrapolates h steps beyond its end.
type Forecaster interface {
	// Name identifies the model in experiment output.
	Name() string
	// Fit trains on xs.
	Fit(xs []float64) error
	// Forecast returns h out-of-sample predictions. Fit must succeed first.
	Forecast(h int) []float64
}

// ErrTooShort is returned when a series cannot support the model.
var ErrTooShort = errors.New("forecast: series too short for model")

// SES is simple exponential smoothing with grid-fitted alpha.
type SES struct {
	alpha float64
	level float64
	fit   bool
}

// Name returns "SES".
func (s *SES) Name() string { return "SES" }

// Fit selects alpha by one-step-ahead SSE over a small grid.
func (s *SES) Fit(xs []float64) error {
	if len(xs) < 2 {
		return ErrTooShort
	}
	bestSSE := math.Inf(1)
	for a := 0.05; a <= 0.95; a += 0.05 {
		level := xs[0]
		var sse float64
		for _, x := range xs[1:] {
			e := x - level
			sse += e * e
			level += a * e
		}
		if sse < bestSSE {
			bestSSE = sse
			s.alpha = a
			s.level = level
		}
	}
	s.fit = true
	return nil
}

// Forecast returns the flat level h times.
func (s *SES) Forecast(h int) []float64 {
	out := make([]float64, h)
	for i := range out {
		out[i] = s.level
	}
	return out
}

// HoltWinters is additive triple exponential smoothing [15]: level, trend
// and seasonal states with parameters fitted by one-step-ahead SSE over a
// coarse grid — the model of the paper's EXP1.
type HoltWinters struct {
	// Period is the seasonal cycle length (required, >= 2).
	Period int

	alpha, beta, gamma float64
	level, trend       float64
	seasonal           []float64
	n                  int // training length, for seasonal phase alignment
	fit                bool
}

// Name returns "HoltWinters".
func (hw *HoltWinters) Name() string { return "HoltWinters" }

// Fit grid-searches (alpha, beta, gamma) and keeps the best final state.
func (hw *HoltWinters) Fit(xs []float64) error {
	m := hw.Period
	if m < 2 {
		return errors.New("forecast: HoltWinters needs Period >= 2")
	}
	if len(xs) < 2*m+2 {
		return ErrTooShort
	}
	grid := []float64{0.05, 0.15, 0.3, 0.5, 0.7}
	small := []float64{0.01, 0.05, 0.15, 0.3}
	bestSSE := math.Inf(1)
	for _, a := range grid {
		for _, b := range small {
			for _, g := range small {
				sse, level, trend, seas := hwRun(xs, m, a, b, g)
				if sse < bestSSE {
					bestSSE = sse
					hw.alpha, hw.beta, hw.gamma = a, b, g
					hw.level, hw.trend = level, trend
					hw.seasonal = seas
				}
			}
		}
	}
	hw.n = len(xs)
	hw.fit = true
	return nil
}

// hwRun runs additive Holt-Winters once, returning the one-step SSE and the
// final state.
func hwRun(xs []float64, m int, a, b, g float64) (sse, level, trend float64, seasonal []float64) {
	// Initial states: first-cycle mean level, mean cycle-to-cycle trend,
	// first-cycle seasonal offsets.
	var l0 float64
	for _, x := range xs[:m] {
		l0 += x
	}
	l0 /= float64(m)
	var t0 float64
	for i := 0; i < m; i++ {
		t0 += (xs[m+i] - xs[i]) / float64(m)
	}
	t0 /= float64(m)
	seasonal = make([]float64, m)
	for i := 0; i < m; i++ {
		seasonal[i] = xs[i] - l0
	}
	level, trend = l0, t0
	for t := m; t < len(xs); t++ {
		si := t % m
		pred := level + trend + seasonal[si]
		e := xs[t] - pred
		sse += e * e
		newLevel := level + trend + a*e
		trend += b * a * e
		seasonal[si] += g * e
		level = newLevel
	}
	return sse, level, trend, seasonal
}

// Forecast extrapolates level+trend with the fitted seasonal pattern.
func (hw *HoltWinters) Forecast(h int) []float64 {
	out := make([]float64, h)
	if !hw.fit {
		return out
	}
	m := hw.Period
	for i := 0; i < h; i++ {
		out[i] = hw.level + float64(i+1)*hw.trend + hw.seasonal[(hw.n+i)%m]
	}
	return out
}
