package forecast

import "errors"

// STLForecaster implements the paper's STL-ETS and STL-ARIMA pipelines
// [19, 44]: decompose the series with STL, forecast the seasonally adjusted
// part (trend + remainder) with the inner model, and re-add the last
// seasonal cycle.
type STLForecaster struct {
	// Period is the seasonal cycle length (required).
	Period int
	// Inner forecasts the seasonally adjusted series. Defaults to &AR{}
	// (the ARIMA stand-in); use &SES{} or &HoltWinters{} for STL-ETS.
	Inner Forecaster

	seasonal []float64
	n        int
	fit      bool
}

// NewSTLETS builds the paper's STL-ETS configuration.
func NewSTLETS(period int) *STLForecaster {
	return &STLForecaster{Period: period, Inner: &SES{}}
}

// NewSTLAR builds the paper's STL-ARIMA configuration with the AR stand-in.
func NewSTLAR(period int) *STLForecaster {
	return &STLForecaster{Period: period, Inner: &AR{}}
}

// Name reports the composite model name.
func (s *STLForecaster) Name() string {
	inner := "AR"
	if s.Inner != nil {
		inner = s.Inner.Name()
	}
	return "STL-" + inner
}

// Fit decomposes and trains the inner model on the seasonally adjusted part.
func (s *STLForecaster) Fit(xs []float64) error {
	if s.Period < 2 {
		return errors.New("forecast: STLForecaster needs Period >= 2")
	}
	if len(xs) < 2*s.Period {
		return ErrTooShort
	}
	if s.Inner == nil {
		s.Inner = &AR{}
	}
	dec := STL(xs, s.Period)
	adjusted := make([]float64, len(xs))
	for i := range xs {
		adjusted[i] = dec.Trend[i] + dec.Remainder[i]
	}
	if err := s.Inner.Fit(adjusted); err != nil {
		return err
	}
	s.seasonal = dec.Seasonal
	s.n = len(xs)
	s.fit = true
	return nil
}

// Forecast adds the naively repeated last seasonal cycle to the inner
// model's forecast.
func (s *STLForecaster) Forecast(h int) []float64 {
	out := s.Inner.Forecast(h)
	if !s.fit {
		return out
	}
	m := s.Period
	// lastCycle[j] sits at absolute position n-m+j, which is congruent to
	// n+j (mod m); forecast step i sits at n+i, so it reuses lastCycle[i%m].
	lastCycle := s.seasonal[s.n-m:]
	for i := 0; i < h; i++ {
		out[i] += lastCycle[i%m]
	}
	return out
}
