package anomaly

// DetectDiscord finds the top discord over a sweep of segment sizes and
// returns the location and size with the maximum nearest-neighbour distance
// — the paper's protocol ("segment sizes ranging from 75 to 125, select the
// one with the maximum distance" [81]).
func DetectDiscord(xs []float64, sizes []int) (loc, size int) {
	bestV := -1.0
	loc, size = -1, 0
	for _, m := range sizes {
		if m < 2 || len(xs) < 2*m {
			continue
		}
		p := MatrixProfile(xs, m)
		i, v := p.Discord()
		if i >= 0 && v > bestV {
			bestV = v
			loc, size = i, m
		}
	}
	return loc, size
}

// UCRHit reports whether a predicted discord location counts as a correct
// detection under the UCR convention [93]: the prediction must fall within
// the true anomaly span widened by max(100, anomaly length) on both sides.
func UCRHit(predicted, trueStart, trueEnd int) bool {
	if predicted < 0 {
		return false
	}
	tol := trueEnd - trueStart
	if tol < 100 {
		tol = 100
	}
	return predicted >= trueStart-tol && predicted <= trueEnd+tol
}

// UCRScore runs discord detection on every case and returns the fraction of
// correct detections (higher is better).
func UCRScore(cases []ucrCase, sizes []int) float64 {
	if len(cases) == 0 {
		return 0
	}
	hits := 0
	for _, c := range cases {
		loc, _ := DetectDiscord(c.Data(), sizes)
		start, end := c.Span()
		if UCRHit(loc, start, end) {
			hits++
		}
	}
	return float64(hits) / float64(len(cases))
}

// ucrCase abstracts a labelled anomaly case so the scorer does not depend
// on the datasets package.
type ucrCase interface {
	Data() []float64
	Span() (start, end int)
}
