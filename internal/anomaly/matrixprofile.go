// Package anomaly implements the Matrix Profile [95] machinery of the
// paper's anomaly-detection study (§5.9): the standard z-normalized profile
// for discord detection and UCR-scoring, the naive O(N^2 m) rMP reference,
// and the irregular-series iMP that computes distances directly over the
// retained points of a compressed series in O(N^2 m') with m' << m.
package anomaly

import (
	"math"

	"repro/internal/series"
)

// Profile is a matrix profile: per starting index, the distance to the
// nearest non-trivial matching subsequence.
type Profile struct {
	// M is the subsequence length.
	M int
	// Dist[i] is the minimum distance from subsequence i to any other
	// subsequence outside the trivial-match exclusion zone.
	Dist []float64
}

// Discord returns the index and profile value of the top discord — the
// subsequence farthest from its nearest neighbour.
func (p *Profile) Discord() (int, float64) {
	best, bestV := -1, math.Inf(-1)
	for i, v := range p.Dist {
		if !math.IsInf(v, 0) && v > bestV {
			best, bestV = i, v
		}
	}
	return best, bestV
}

// MatrixProfile computes the z-normalized matrix profile with the STOMP
// running-dot-product optimization (O(N^2) total): the standard discord
// detector of the accuracy experiment (Figure 13 left).
func MatrixProfile(xs []float64, m int) *Profile {
	n := len(xs) - m + 1
	p := &Profile{M: m, Dist: make([]float64, max(n, 0))}
	if n <= 1 {
		for i := range p.Dist {
			p.Dist[i] = math.Inf(1)
		}
		return p
	}
	// Running means and stds of all windows.
	means, stds := rollingStats(xs, m)
	excl := m / 2
	for i := range p.Dist {
		p.Dist[i] = math.Inf(1)
	}
	// STOMP: maintain dot products QT[j] = dot(xs[i:i+m], xs[j:j+m]) as i
	// advances.
	qt := make([]float64, n)
	for j := 0; j < n; j++ {
		var s float64
		for k := 0; k < m; k++ {
			s += xs[k] * xs[j+k]
		}
		qt[j] = s
	}
	first := append([]float64(nil), qt...) // QT for i=0, reused per column
	for i := 0; i < n; i++ {
		if i > 0 {
			// Update in place from the previous row, descending j.
			for j := n - 1; j >= 1; j-- {
				qt[j] = qt[j-1] - xs[i-1]*xs[j-1] + xs[i+m-1]*xs[j+m-1]
			}
			qt[0] = first[i]
		}
		for j := 0; j < n; j++ {
			if absInt(i-j) < excl || i == j {
				continue
			}
			d := znormDist(qt[j], means[i], stds[i], means[j], stds[j], m)
			if d < p.Dist[i] {
				p.Dist[i] = d
			}
		}
	}
	return p
}

// znormDist converts a dot product into the z-normalized Euclidean distance.
func znormDist(dot, mi, si, mj, sj float64, m int) float64 {
	if si == 0 || sj == 0 {
		// A constant window matches any constant window exactly and is
		// maximally far from everything else in z-norm space.
		if si == 0 && sj == 0 {
			return 0
		}
		return math.Sqrt(2 * float64(m))
	}
	mf := float64(m)
	v := 2 * mf * (1 - (dot-mf*mi*mj)/(mf*si*sj))
	if v < 0 {
		v = 0
	}
	return math.Sqrt(v)
}

// rollingStats returns per-window means and population stds.
func rollingStats(xs []float64, m int) (means, stds []float64) {
	n := len(xs) - m + 1
	means = make([]float64, n)
	stds = make([]float64, n)
	var sum, sum2 float64
	for k := 0; k < m; k++ {
		sum += xs[k]
		sum2 += xs[k] * xs[k]
	}
	for i := 0; i < n; i++ {
		if i > 0 {
			sum += xs[i+m-1] - xs[i-1]
			sum2 += xs[i+m-1]*xs[i+m-1] - xs[i-1]*xs[i-1]
		}
		mu := sum / float64(m)
		v := sum2/float64(m) - mu*mu
		if v < 0 {
			v = 0
		}
		means[i] = mu
		stds[i] = math.Sqrt(v)
	}
	return means, stds
}

// NaiveMatrixProfile is the O(N^2 m) plain-Euclidean reference ("rMP" in
// Figure 13 right): it recomputes every pairwise segment distance from
// scratch over the regular series.
func NaiveMatrixProfile(xs []float64, m int) *Profile {
	n := len(xs) - m + 1
	p := &Profile{M: m, Dist: make([]float64, max(n, 0))}
	excl := m / 2
	for i := 0; i < n; i++ {
		best := math.Inf(1)
		for j := 0; j < n; j++ {
			if absInt(i-j) < excl || i == j {
				continue
			}
			var s float64
			for k := 0; k < m; k++ {
				d := xs[i+k] - xs[j+k]
				s += d * d
			}
			if s < best {
				best = s
			}
		}
		p.Dist[i] = math.Sqrt(best)
	}
	return p
}

// IrregularMatrixProfile is the paper's iMP: the same all-pairs Euclidean
// profile, but evaluated only at the m' retained points inside each query
// segment (the other segment's values come from interpolation on demand),
// reducing the complexity to O(N^2 m'). Distances are scaled by m/m' so
// magnitudes stay comparable to the dense profile.
func IrregularMatrixProfile(ir *series.Irregular, m int) *Profile {
	n := ir.N - m + 1
	p := &Profile{M: m, Dist: make([]float64, max(n, 0))}
	if n <= 0 || len(ir.Points) == 0 {
		for i := range p.Dist {
			p.Dist[i] = math.Inf(1)
		}
		return p
	}
	pts := ir.Points
	excl := m / 2
	// O(1) interpolation lookup: for every absolute position, the index of
	// the retained point at-or-before it. This indexes the compressed
	// representation without materializing any values.
	segOf := make([]int32, ir.N)
	{
		s := int32(0)
		for t := 0; t < ir.N; t++ {
			for int(s)+1 < len(pts) && pts[s+1].Index <= t {
				s++
			}
			segOf[t] = s
		}
	}
	valueAt := func(t int) float64 {
		s := segOf[t]
		p := pts[s]
		// t <= p.Index covers exact hits and positions before the first
		// retained point (held, matching Irregular.ValueAt).
		if t <= p.Index || int(s)+1 >= len(pts) {
			return p.Value
		}
		q := pts[s+1]
		return p.Value + (q.Value-p.Value)*float64(t-p.Index)/float64(q.Index-p.Index)
	}
	// For the query side we only visit retained points; precompute, for
	// every segment start i, the range of retained points inside [i, i+m).
	// Two-pointer sweep keeps this O(N + P).
	lo := 0
	hi := 0
	for i := 0; i < n; i++ {
		for lo < len(pts) && pts[lo].Index < i {
			lo++
		}
		if hi < lo {
			hi = lo
		}
		for hi < len(pts) && pts[hi].Index < i+m {
			hi++
		}
		best := math.Inf(1)
		cnt := hi - lo
		if cnt == 0 {
			// No retained point in the query segment: its reconstruction is
			// one straight line; compare its two interpolated endpoints.
			cnt = 2
		}
		for j := 0; j < n; j++ {
			if absInt(i-j) < excl || i == j {
				continue
			}
			var s float64
			if hi > lo {
				for k := lo; k < hi; k++ {
					off := pts[k].Index - i
					d := pts[k].Value - valueAt(j+off)
					s += d * d
				}
			} else {
				for _, off := range [2]int{0, m - 1} {
					d := valueAt(i+off) - valueAt(j+off)
					s += d * d
				}
			}
			if s < best {
				best = s
			}
		}
		p.Dist[i] = math.Sqrt(best * float64(m) / float64(cnt))
	}
	return p
}

func absInt(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
