package anomaly

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/datasets"
	"repro/internal/series"
)

func sineWithSpike(n, period, spikeAt, spikeLen int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = math.Sin(2*math.Pi*float64(i)/float64(period)) + 0.05*rng.NormFloat64()
	}
	for i := spikeAt; i < spikeAt+spikeLen && i < n; i++ {
		xs[i] += 3 * math.Sin(math.Pi*float64(i-spikeAt)/float64(spikeLen))
	}
	return xs
}

func TestMatrixProfileFindsPlantedDiscord(t *testing.T) {
	xs := sineWithSpike(2000, 50, 1200, 60, 1)
	p := MatrixProfile(xs, 100)
	loc, v := p.Discord()
	if v <= 0 {
		t.Fatal("degenerate discord value")
	}
	if loc < 1100 || loc > 1300 {
		t.Fatalf("discord at %d, want near 1200", loc)
	}
}

func TestMatrixProfileMatchesNaiveZnormOrdering(t *testing.T) {
	// STOMP and the naive profile use different normalizations, but both
	// must rank the planted discord region on top.
	xs := sineWithSpike(800, 40, 500, 50, 2)
	mp := MatrixProfile(xs, 80)
	np := NaiveMatrixProfile(xs, 80)
	li, _ := mp.Discord()
	lj, _ := np.Discord()
	if absInt(li-500) > 120 || absInt(lj-500) > 120 {
		t.Fatalf("discords at %d (stomp) and %d (naive), want ~500", li, lj)
	}
}

func TestMatrixProfileSelfMatchExcluded(t *testing.T) {
	// A perfectly periodic series has near-zero profile everywhere when
	// trivial matches are excluded (each cycle matches another cycle).
	n, period := 1000, 50
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = math.Sin(2 * math.Pi * float64(i) / float64(period))
	}
	p := MatrixProfile(xs, period)
	_, v := p.Discord()
	if v > 0.5 {
		t.Fatalf("periodic series discord value %v, want ~0", v)
	}
}

func TestMatrixProfileTinyInput(t *testing.T) {
	p := MatrixProfile([]float64{1, 2, 3}, 3)
	if len(p.Dist) != 1 || !math.IsInf(p.Dist[0], 1) {
		t.Fatalf("single-window profile = %v", p.Dist)
	}
	loc, _ := p.Discord()
	if loc != -1 {
		t.Fatalf("discord of degenerate profile = %d, want -1", loc)
	}
}

func TestMatrixProfileConstantSeries(t *testing.T) {
	xs := make([]float64, 300)
	for i := range xs {
		xs[i] = 2
	}
	p := MatrixProfile(xs, 50)
	for i, v := range p.Dist {
		if math.IsNaN(v) {
			t.Fatalf("NaN at %d on constant series", i)
		}
	}
}

func TestNaiveMatrixProfileFindsSpike(t *testing.T) {
	xs := sineWithSpike(600, 40, 380, 40, 3)
	p := NaiveMatrixProfile(xs, 80)
	loc, _ := p.Discord()
	if absInt(loc-380) > 100 {
		t.Fatalf("naive discord at %d, want ~380", loc)
	}
}

func TestIrregularMatrixProfileOnDenseMatchesNaive(t *testing.T) {
	// With every point retained, iMP computes exactly the naive profile.
	xs := sineWithSpike(400, 40, 250, 40, 4)
	ir := series.FromDense(xs)
	a := NaiveMatrixProfile(xs, 60)
	b := IrregularMatrixProfile(ir, 60)
	if len(a.Dist) != len(b.Dist) {
		t.Fatal("length mismatch")
	}
	for i := range a.Dist {
		if math.Abs(a.Dist[i]-b.Dist[i]) > 1e-9 {
			t.Fatalf("profile mismatch at %d: %v vs %v", i, a.Dist[i], b.Dist[i])
		}
	}
}

func TestIrregularMatrixProfileFindsDiscordOnCompressed(t *testing.T) {
	xs := sineWithSpike(1200, 50, 800, 60, 5)
	// Keep every 4th point (CR 4) plus endpoints.
	var pts []series.Point
	for i := 0; i < len(xs); i += 4 {
		pts = append(pts, series.Point{Index: i, Value: xs[i]})
	}
	if pts[len(pts)-1].Index != len(xs)-1 {
		pts = append(pts, series.Point{Index: len(xs) - 1, Value: xs[len(xs)-1]})
	}
	ir := &series.Irregular{N: len(xs), Points: pts}
	p := IrregularMatrixProfile(ir, 100)
	loc, _ := p.Discord()
	if absInt(loc-800) > 150 {
		t.Fatalf("iMP discord at %d, want ~800", loc)
	}
}

func TestIrregularMatrixProfileSparseSegments(t *testing.T) {
	// Very aggressive compression: some segments contain no retained point.
	xs := sineWithSpike(500, 50, 300, 50, 6)
	pts := []series.Point{{Index: 0, Value: xs[0]}}
	for i := 60; i < len(xs); i += 60 {
		pts = append(pts, series.Point{Index: i, Value: xs[i]})
	}
	pts = append(pts, series.Point{Index: len(xs) - 1, Value: xs[len(xs)-1]})
	ir := &series.Irregular{N: len(xs), Points: pts}
	p := IrregularMatrixProfile(ir, 40)
	for i, v := range p.Dist {
		if math.IsNaN(v) {
			t.Fatalf("NaN at %d with sparse segments", i)
		}
	}
}

func TestDetectDiscordSweep(t *testing.T) {
	xs := sineWithSpike(1500, 60, 900, 80, 7)
	loc, size := DetectDiscord(xs, []int{75, 100, 125})
	if loc < 0 {
		t.Fatal("no discord found")
	}
	if size != 75 && size != 100 && size != 125 {
		t.Fatalf("size = %d", size)
	}
	if absInt(loc-900) > 200 {
		t.Fatalf("sweep discord at %d, want ~900", loc)
	}
}

func TestDetectDiscordDegenerateSizes(t *testing.T) {
	xs := sineWithSpike(100, 20, 60, 10, 8)
	loc, _ := DetectDiscord(xs, []int{1, 500})
	if loc != -1 {
		t.Fatalf("expected no detection with unusable sizes, got %d", loc)
	}
}

func TestUCRHitTolerance(t *testing.T) {
	if !UCRHit(450, 500, 520) {
		t.Fatal("prediction within -100 tolerance should hit")
	}
	if !UCRHit(620, 500, 520) {
		t.Fatal("prediction within +100 tolerance should hit")
	}
	if UCRHit(399, 500, 520) {
		t.Fatal("prediction outside tolerance should miss")
	}
	if UCRHit(-1, 500, 520) {
		t.Fatal("no prediction should miss")
	}
	// Wide anomaly: tolerance grows to its length.
	if !UCRHit(280, 500, 900) {
		t.Fatal("tolerance should extend to the anomaly length")
	}
}

type suiteCase struct{ c datasets.AnomalyCase }

func (s suiteCase) Data() []float64  { return s.c.Data }
func (s suiteCase) Span() (int, int) { return s.c.Start, s.c.End }

func TestUCRScoreOnSuite(t *testing.T) {
	suite := datasets.AnomalySuite(8, 1500, 9)
	cases := make([]ucrCase, len(suite))
	for i, c := range suite {
		cases[i] = suiteCase{c}
	}
	score := UCRScore(cases, []int{75, 100, 125})
	if score < 0.5 {
		t.Fatalf("UCR score on raw suite = %v, want >= 0.5", score)
	}
}

func TestUCRScoreEmpty(t *testing.T) {
	if got := UCRScore(nil, []int{100}); got != 0 {
		t.Fatalf("empty suite score = %v", got)
	}
}
