// Package pheap provides an indexed binary min-heap over dense int32 point
// ids keyed by float64 importance values. It supports Pop, Push, and Fix
// (update-key) in O(log n) plus O(n) Floyd heapify — the operations CAMEO's
// Algorithm 1 and the bottom-up line-simplification baselines need.
package pheap

// Heap is an indexed binary min-heap over point indices keyed by their
// current ACF-impact estimate. It supports Pop, Push and Fix (update-key) in
// O(log n), the operations Algorithm 1 needs (heapify via Floyd's method,
// ReHeap via Fix).
type Heap struct {
	keys  []float64 // key per point index (only meaningful while in heap)
	items []int32   // heap array of point indices
	pos   []int32   // point index -> heap slot, -1 if absent
}

// New builds a heap over the given point indices and keys using
// Floyd's bottom-up heapify in O(n).
func New(n int, points []int32, keys []float64) *Heap {
	h := &Heap{}
	h.Reset(n, points, keys)
	return h
}

// Reset re-initializes the heap in place over a new point set, reusing the
// item and position arrays when their capacity suffices. Callers that
// rebuild a heap per compressed block (the pooled CAMEO engines) stay off
// the allocator this way. points is copied; keys is retained by reference,
// as in New.
func (h *Heap) Reset(n int, points []int32, keys []float64) {
	h.keys = keys
	h.items = append(h.items[:0], points...)
	if cap(h.pos) < n {
		h.pos = make([]int32, n)
	}
	h.pos = h.pos[:n]
	for i := range h.pos {
		h.pos[i] = -1
	}
	for slot, p := range h.items {
		h.pos[p] = int32(slot)
	}
	for i := len(h.items)/2 - 1; i >= 0; i-- {
		h.siftDown(i)
	}
}

// Len returns the number of points currently in the heap.
func (h *Heap) Len() int { return len(h.items) }

// PeekKey returns the minimum key without removing it. Call only when
// Len() > 0.
func (h *Heap) PeekKey() float64 { return h.keys[h.items[0]] }

// Pop removes and returns the point with the minimum key.
func (h *Heap) Pop() (point int32, key float64) {
	p := h.items[0]
	k := h.keys[p]
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	h.pos[h.items[0]] = 0
	h.items = h.items[:last]
	h.pos[p] = -1
	if last > 0 {
		h.siftDown(0)
	}
	return p, k
}

// Push inserts a point with the given key. The point must not be in the heap.
func (h *Heap) Push(p int32, key float64) {
	h.keys[p] = key
	h.items = append(h.items, p)
	h.pos[p] = int32(len(h.items) - 1)
	h.siftUp(len(h.items) - 1)
}

// Fix updates the key of a point already in the heap and restores heap
// order. It is a no-op for points not in the heap (e.g. already removed).
func (h *Heap) Fix(p int32, key float64) {
	slot := h.pos[p]
	if slot < 0 {
		return
	}
	old := h.keys[p]
	h.keys[p] = key
	switch {
	case key < old:
		h.siftUp(int(slot))
	case key > old:
		h.siftDown(int(slot))
	}
}

// Contains reports whether point p is currently in the heap.
func (h *Heap) Contains(p int32) bool { return h.pos[p] >= 0 }

// Key returns the current key of point p (meaningful only if Contains(p)).
func (h *Heap) Key(p int32) float64 { return h.keys[p] }

func (h *Heap) siftUp(i int) {
	item := h.items[i]
	key := h.keys[item]
	for i > 0 {
		parent := (i - 1) / 2
		if h.keys[h.items[parent]] <= key {
			break
		}
		h.items[i] = h.items[parent]
		h.pos[h.items[i]] = int32(i)
		i = parent
	}
	h.items[i] = item
	h.pos[item] = int32(i)
}

func (h *Heap) siftDown(i int) {
	n := len(h.items)
	item := h.items[i]
	key := h.keys[item]
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		small := l
		if r := l + 1; r < n && h.keys[h.items[r]] < h.keys[h.items[l]] {
			small = r
		}
		if h.keys[h.items[small]] >= key {
			break
		}
		h.items[i] = h.items[small]
		h.pos[h.items[i]] = int32(i)
		i = small
	}
	h.items[i] = item
	h.pos[item] = int32(i)
}
