package pheap

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func buildHeap(keys []float64) *Heap {
	n := len(keys)
	pts := make([]int32, n)
	ks := make([]float64, n)
	for i := range pts {
		pts[i] = int32(i)
		ks[i] = keys[i]
	}
	return New(n, pts, ks)
}

func TestHeapPopsInOrder(t *testing.T) {
	keys := []float64{5, 3, 8, 1, 9, 2, 7}
	h := buildHeap(keys)
	var got []float64
	for h.Len() > 0 {
		_, k := h.Pop()
		got = append(got, k)
	}
	if !sort.Float64sAreSorted(got) {
		t.Fatalf("heap pops out of order: %v", got)
	}
	if len(got) != len(keys) {
		t.Fatalf("popped %d items, want %d", len(got), len(keys))
	}
}

func TestHeapFixDecrease(t *testing.T) {
	h := buildHeap([]float64{5, 3, 8, 1})
	h.Fix(2, 0.5) // 8 -> 0.5, should become the min
	p, k := h.Pop()
	if p != 2 || k != 0.5 {
		t.Fatalf("Pop = (%d, %v), want (2, 0.5)", p, k)
	}
}

func TestHeapFixIncrease(t *testing.T) {
	h := buildHeap([]float64{5, 3, 8, 1})
	h.Fix(3, 100) // 1 -> 100, min becomes 3 at point 1
	p, k := h.Pop()
	if p != 1 || k != 3 {
		t.Fatalf("Pop = (%d, %v), want (1, 3)", p, k)
	}
}

func TestHeapFixAbsentIsNoop(t *testing.T) {
	h := buildHeap([]float64{2, 1})
	p, _ := h.Pop()
	h.Fix(p, -100) // already popped: must not corrupt the heap
	q, k := h.Pop()
	if q == p {
		t.Fatal("popped the same point twice")
	}
	if k != 2 {
		t.Fatalf("remaining key = %v, want 2", k)
	}
}

func TestHeapPushAfterPop(t *testing.T) {
	h := buildHeap([]float64{4, 6})
	p, _ := h.Pop() // point 0, key 4
	h.Push(p, 10)
	if !h.Contains(p) {
		t.Fatal("pushed point not contained")
	}
	q, k := h.Pop()
	if q != 1 || k != 6 {
		t.Fatalf("Pop = (%d, %v), want (1, 6)", q, k)
	}
	q, k = h.Pop()
	if q != 0 || k != 10 {
		t.Fatalf("Pop = (%d, %v), want (0, 10)", q, k)
	}
}

func TestHeapPeekKey(t *testing.T) {
	h := buildHeap([]float64{9, 2, 5})
	if h.PeekKey() != 2 {
		t.Fatalf("PeekKey = %v, want 2", h.PeekKey())
	}
	if h.Len() != 3 {
		t.Fatalf("PeekKey must not remove (len=%d)", h.Len())
	}
}

func TestHeapContainsAndKey(t *testing.T) {
	h := buildHeap([]float64{1, 2})
	if !h.Contains(0) || !h.Contains(1) {
		t.Fatal("Contains false for present points")
	}
	if h.Key(1) != 2 {
		t.Fatalf("Key(1) = %v", h.Key(1))
	}
	h.Pop()
	if h.Contains(0) {
		t.Fatal("Contains true after pop")
	}
}

// Property: after any sequence of random Fix operations, pops come out in
// non-decreasing key order and each point appears exactly once.
func TestHeapRandomOperationsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(100)
		keys := make([]float64, n)
		for i := range keys {
			keys[i] = rng.Float64() * 100
		}
		h := buildHeap(keys)
		for op := 0; op < 50; op++ {
			p := int32(rng.Intn(n))
			h.Fix(p, rng.Float64()*100)
		}
		seen := make(map[int32]bool)
		prev := -1.0
		for h.Len() > 0 {
			p, k := h.Pop()
			if seen[p] || k < prev {
				return false
			}
			seen[p] = true
			prev = k
		}
		return len(seen) == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestHeapOpsZeroAllocs locks in the zero-allocation property of the
// steady-state heap operations (Fix during reHeap, Pop/Push during the
// greedy loop): after construction, none of them may touch the allocator.
func TestHeapOpsZeroAllocs(t *testing.T) {
	const n = 1024
	points := make([]int32, 0, n)
	keys := make([]float64, n)
	for i := 0; i < n; i++ {
		points = append(points, int32(i))
		keys[i] = float64((i * 7919) % n)
	}
	h := New(n, points, keys)
	if a := testing.AllocsPerRun(100, func() {
		h.Fix(513, h.Key(513)*0.99)
		h.Fix(514, h.Key(514)*1.01)
	}); a != 0 {
		t.Fatalf("Fix allocates %v per run, want 0", a)
	}
	if a := testing.AllocsPerRun(100, func() {
		p, k := h.Pop()
		h.Push(p, k)
	}); a != 0 {
		t.Fatalf("Pop+Push allocates %v per run, want 0", a)
	}
	// Reset reuses the arrays: no per-reset growth either.
	if a := testing.AllocsPerRun(50, func() {
		h.Reset(n, points, keys)
	}); a != 0 {
		t.Fatalf("Reset allocates %v per run, want 0", a)
	}
}
