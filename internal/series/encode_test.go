package series

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randomIrregular(seed int64, maxN int) *Irregular {
	rng := rand.New(rand.NewSource(seed))
	n := 2 + rng.Intn(maxN)
	var pts []Point
	v := rng.NormFloat64() * 100
	for i := 0; i < n; i++ {
		if i == 0 || i == n-1 || rng.Float64() < 0.25 {
			v += rng.NormFloat64()
			pts = append(pts, Point{Index: i, Value: v})
		}
	}
	return &Irregular{N: n, Points: pts}
}

func TestEncodeDecodeRoundtrip(t *testing.T) {
	ir := randomIrregular(1, 500)
	data := ir.Encode()
	back, err := DecodeIrregular(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.N != ir.N || len(back.Points) != len(ir.Points) {
		t.Fatalf("header mismatch: N %d/%d, points %d/%d", back.N, ir.N, len(back.Points), len(ir.Points))
	}
	for i := range ir.Points {
		if back.Points[i] != ir.Points[i] {
			t.Fatalf("point %d: %+v != %+v", i, back.Points[i], ir.Points[i])
		}
	}
}

func TestEncodeEmptySeries(t *testing.T) {
	ir := &Irregular{N: 0}
	back, err := DecodeIrregular(ir.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if back.N != 0 || back.Len() != 0 {
		t.Fatalf("empty roundtrip: %+v", back)
	}
}

func TestEncodeBeatsNaiveStorage(t *testing.T) {
	// Smooth sensor values: the XOR value coding plus varint deltas should
	// use far fewer than 64 bits (value) + 64 bits (index) per point.
	rng := rand.New(rand.NewSource(2))
	var pts []Point
	v := 20.0
	for i := 0; i < 4000; i += 4 {
		v += math.Round(rng.NormFloat64()*4) / 4
		pts = append(pts, Point{Index: i, Value: v})
	}
	ir := &Irregular{N: 4000, Points: pts}
	naive := len(pts) * 16 // 8 bytes value + 8 bytes index
	if got := len(ir.Encode()); got >= naive {
		t.Fatalf("encoding %d bytes >= naive %d", got, naive)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		{1, 2, 3},
		[]byte("CAM2xxxxxx"),
		[]byte("CAM1"),               // truncated header
		append([]byte("CAM1"), 0xFF), // bad varint
	}
	for i, c := range cases {
		if _, err := DecodeIrregular(c); err == nil {
			t.Fatalf("case %d: expected error", i)
		}
	}
}

func TestDecodeRejectsTruncatedValues(t *testing.T) {
	ir := randomIrregular(3, 200)
	data := ir.Encode()
	if _, err := DecodeIrregular(data[:len(data)-2]); err == nil {
		t.Fatal("expected error for truncated stream")
	}
}

func TestDecodeRejectsImplausibleHeader(t *testing.T) {
	// Claim more points than the series length.
	buf := append([]byte("CAM1"), 5) // n = 5
	buf = append(buf, 200)           // 200 points > n+1
	if _, err := DecodeIrregular(buf); err == nil {
		t.Fatal("expected implausible-header error")
	}
}

// Property: encode/decode roundtrips arbitrary irregular series exactly,
// including special float values.
func TestEncodeRoundtripProperty(t *testing.T) {
	f := func(seed int64) bool {
		ir := randomIrregular(seed, 300)
		// Inject special values at retained points.
		if len(ir.Points) > 2 {
			ir.Points[1].Value = math.Inf(-1)
		}
		back, err := DecodeIrregular(ir.Encode())
		if err != nil {
			return false
		}
		if back.N != ir.N || len(back.Points) != len(ir.Points) {
			return false
		}
		for i := range ir.Points {
			a, b := ir.Points[i], back.Points[i]
			if a.Index != b.Index || math.Float64bits(a.Value) != math.Float64bits(b.Value) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeHeader(t *testing.T) {
	ir := FromDense([]float64{1.5, 2.5, 3.5, 4.5, 5.5})
	enc := ir.Encode()
	// The full encoding and a HeaderLen prefix must both yield N.
	for _, data := range [][]byte{enc, enc[:min(len(enc), HeaderLen)]} {
		n, err := DecodeHeader(data)
		if err != nil {
			t.Fatal(err)
		}
		if n != 5 {
			t.Fatalf("DecodeHeader N = %d, want 5", n)
		}
	}
	if _, err := DecodeHeader([]byte("garbage")); err == nil {
		t.Fatal("expected error for bad magic")
	}
	if _, err := DecodeHeader(enc[:5]); err == nil {
		t.Fatal("expected error for truncated header")
	}
}
