package series

import "math"

// AggFunc identifies a tumbling-window aggregation function Agg_kappa
// (paper Definition 2). Only additive / semi-additive functions are
// supported so the CAMEO aggregates can be maintained incrementally.
type AggFunc int

// Supported aggregation functions.
const (
	AggMean AggFunc = iota
	AggSum
	AggMax
	AggMin
)

// String returns the function's name.
func (f AggFunc) String() string {
	switch f {
	case AggMean:
		return "mean"
	case AggSum:
		return "sum"
	case AggMax:
		return "max"
	case AggMin:
		return "min"
	default:
		return "unknown"
	}
}

// Apply reduces one window to its aggregate value.
func (f AggFunc) Apply(window []float64) float64 {
	if len(window) == 0 {
		return math.NaN()
	}
	switch f {
	case AggMean:
		var s float64
		for _, v := range window {
			s += v
		}
		return s / float64(len(window))
	case AggSum:
		var s float64
		for _, v := range window {
			s += v
		}
		return s
	case AggMax:
		m := window[0]
		for _, v := range window[1:] {
			if v > m {
				m = v
			}
		}
		return m
	case AggMin:
		m := window[0]
		for _, v := range window[1:] {
			if v < m {
				m = v
			}
		}
		return m
	default:
		return math.NaN()
	}
}

// Aggregate applies f over consecutive tumbling windows of kappa points
// (paper Eq. 5: Agg_kappa(X) = [a_1 ... a_{n/kappa}]). A trailing partial
// window is aggregated over its actual length.
func Aggregate(xs []float64, kappa int, f AggFunc) []float64 {
	if kappa <= 1 {
		return append([]float64(nil), xs...)
	}
	nOut := (len(xs) + kappa - 1) / kappa
	out := make([]float64, 0, nOut)
	for i := 0; i < len(xs); i += kappa {
		end := i + kappa
		if end > len(xs) {
			end = len(xs)
		}
		out = append(out, f.Apply(xs[i:end]))
	}
	return out
}
