package series

import "testing"

// FuzzDecodeIrregular hammers the binary decoder with arbitrary bytes: it
// must reject or parse, never panic, and every accepted parse must be a
// valid irregular series that re-encodes.
func FuzzDecodeIrregular(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("CAM1"))
	f.Add((&Irregular{N: 0}).Encode())
	f.Add((&Irregular{N: 5, Points: []Point{{0, 1.5}, {4, -2}}}).Encode())
	f.Add((&Irregular{N: 100, Points: []Point{{0, 0}, {50, 3.25}, {99, 7}}}).Encode())
	f.Fuzz(func(t *testing.T, data []byte) {
		ir, err := DecodeIrregular(data)
		if err != nil {
			return
		}
		// Accepted parses must satisfy the container invariants.
		for i := 1; i < len(ir.Points); i++ {
			if ir.Points[i].Index <= ir.Points[i-1].Index {
				t.Fatalf("decoded non-increasing indices at %d", i)
			}
		}
		if len(ir.Points) > 0 && ir.Points[len(ir.Points)-1].Index >= ir.N {
			t.Fatal("decoded index out of range")
		}
		// And round-trip through Encode again.
		back, err := DecodeIrregular(ir.Encode())
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if back.N != ir.N || len(back.Points) != len(ir.Points) {
			t.Fatal("re-encode changed shape")
		}
	})
}
