package series

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewIrregularValidates(t *testing.T) {
	if _, err := NewIrregular(5, []Point{{0, 1}, {0, 2}}); err == nil {
		t.Fatal("expected error on duplicate indices")
	}
	if _, err := NewIrregular(5, []Point{{2, 1}, {1, 2}}); err == nil {
		t.Fatal("expected error on decreasing indices")
	}
	if _, err := NewIrregular(5, []Point{{-1, 1}}); err == nil {
		t.Fatal("expected error on negative index")
	}
	if _, err := NewIrregular(5, []Point{{5, 1}}); err == nil {
		t.Fatal("expected error on index == n")
	}
	if _, err := NewIrregular(-1, nil); err == nil {
		t.Fatal("expected error on negative n")
	}
	ir, err := NewIrregular(5, []Point{{0, 1}, {4, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if ir.Len() != 2 {
		t.Fatalf("Len = %d", ir.Len())
	}
}

func TestCompressionRatio(t *testing.T) {
	ir := &Irregular{N: 100, Points: []Point{{0, 0}, {50, 1}, {99, 2}}}
	want := 100.0 / 3.0
	if got := ir.CompressionRatio(); math.Abs(got-want) > 1e-12 {
		t.Fatalf("CR = %v, want %v", got, want)
	}
}

func TestDecompressEndpointsAndMidpoint(t *testing.T) {
	ir := &Irregular{N: 5, Points: []Point{{0, 0}, {4, 8}}}
	got := ir.Decompress()
	want := []float64{0, 2, 4, 6, 8}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("Decompress[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestDecompressHoldsBeyondEnds(t *testing.T) {
	ir := &Irregular{N: 6, Points: []Point{{2, 5}, {3, 7}}}
	got := ir.Decompress()
	want := []float64{5, 5, 5, 7, 7, 7}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Decompress[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestValueAtMatchesDecompress(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 200
	var pts []Point
	for i := 0; i < n; i++ {
		if i == 0 || i == n-1 || rng.Float64() < 0.2 {
			pts = append(pts, Point{i, rng.NormFloat64() * 10})
		}
	}
	ir := &Irregular{N: n, Points: pts}
	dense := ir.Decompress()
	for t2 := 0; t2 < n; t2++ {
		if math.Abs(ir.ValueAt(t2)-dense[t2]) > 1e-9 {
			t.Fatalf("ValueAt(%d) = %v, Decompress = %v", t2, ir.ValueAt(t2), dense[t2])
		}
	}
}

func TestValueAtEmpty(t *testing.T) {
	ir := &Irregular{N: 3}
	if got := ir.ValueAt(1); got != 0 {
		t.Fatalf("ValueAt on empty = %v", got)
	}
}

func TestDecompressZeroLength(t *testing.T) {
	ir := &Irregular{N: 0}
	if got := ir.Decompress(); len(got) != 0 {
		t.Fatalf("Decompress len = %d", len(got))
	}
}

func TestFromDenseRoundtrip(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5}
	ir := FromDense(xs)
	got := ir.Decompress()
	for i := range xs {
		if got[i] != xs[i] {
			t.Fatalf("roundtrip[%d] = %v, want %v", i, got[i], xs[i])
		}
	}
	if ir.CompressionRatio() != 1 {
		t.Fatalf("CR of identity = %v", ir.CompressionRatio())
	}
}

func TestValuesIndices(t *testing.T) {
	ir := &Irregular{N: 10, Points: []Point{{1, 1.5}, {4, -2}, {9, 3}}}
	v := ir.Values()
	idx := ir.Indices()
	if len(v) != 3 || v[1] != -2 || idx[2] != 9 {
		t.Fatalf("Values/Indices wrong: %v %v", v, idx)
	}
}

func TestCloneIsDeep(t *testing.T) {
	ir := &Irregular{N: 3, Points: []Point{{0, 1}, {2, 2}}}
	c := ir.Clone()
	c.Points[0].Value = 99
	if ir.Points[0].Value == 99 {
		t.Fatal("Clone shares backing array")
	}
}

func TestLerp(t *testing.T) {
	if got := Lerp(0, 0, 10, 100, 3); got != 30 {
		t.Fatalf("Lerp = %v, want 30", got)
	}
	if got := Lerp(5, 2, 7, 4, 6); got != 3 {
		t.Fatalf("Lerp = %v, want 3", got)
	}
}

// Property: decompression preserves every retained point exactly.
func TestDecompressPreservesRetainedProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(300)
		pts := []Point{{0, rng.NormFloat64()}}
		for i := 1; i < n-1; i++ {
			if rng.Float64() < 0.3 {
				pts = append(pts, Point{i, rng.NormFloat64()})
			}
		}
		pts = append(pts, Point{n - 1, rng.NormFloat64()})
		ir := &Irregular{N: n, Points: pts}
		dense := ir.Decompress()
		for _, p := range pts {
			if dense[p.Index] != p.Value {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: interpolated values lie within the convex hull of the two
// surrounding retained values.
func TestInterpolationBoundedProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(100)
		pts := []Point{{0, rng.NormFloat64() * 5}, {n - 1, rng.NormFloat64() * 5}}
		ir := &Irregular{N: n, Points: pts}
		lo := math.Min(pts[0].Value, pts[1].Value)
		hi := math.Max(pts[0].Value, pts[1].Value)
		for t2 := 0; t2 < n; t2++ {
			v := ir.ValueAt(t2)
			if v < lo-1e-9 || v > hi+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestAggregateMean(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6}
	got := Aggregate(xs, 2, AggMean)
	want := []float64{1.5, 3.5, 5.5}
	if len(got) != len(want) {
		t.Fatalf("len = %d", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("agg[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestAggregatePartialWindow(t *testing.T) {
	xs := []float64{2, 4, 6, 8, 10}
	got := Aggregate(xs, 2, AggSum)
	want := []float64{6, 14, 10}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("agg[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestAggregateMaxMin(t *testing.T) {
	xs := []float64{1, 5, 2, -3}
	if got := Aggregate(xs, 2, AggMax); got[0] != 5 || got[1] != 2 {
		t.Fatalf("max agg = %v", got)
	}
	if got := Aggregate(xs, 2, AggMin); got[0] != 1 || got[1] != -3 {
		t.Fatalf("min agg = %v", got)
	}
}

func TestAggregateKappaOneIsCopy(t *testing.T) {
	xs := []float64{1, 2, 3}
	got := Aggregate(xs, 1, AggMean)
	if &got[0] == &xs[0] {
		t.Fatal("Aggregate should copy for kappa <= 1")
	}
	for i := range xs {
		if got[i] != xs[i] {
			t.Fatalf("copy mismatch at %d", i)
		}
	}
}

func TestAggFuncStringAndEmptyWindow(t *testing.T) {
	for f, want := range map[AggFunc]string{AggMean: "mean", AggSum: "sum", AggMax: "max", AggMin: "min", AggFunc(9): "unknown"} {
		if got := f.String(); got != want {
			t.Errorf("String = %q, want %q", got, want)
		}
	}
	if got := AggMean.Apply(nil); !math.IsNaN(got) {
		t.Fatalf("Apply(nil) = %v, want NaN", got)
	}
	if got := AggFunc(9).Apply([]float64{1}); !math.IsNaN(got) {
		t.Fatalf("unknown Apply = %v, want NaN", got)
	}
}
