package series

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"math/bits"
)

// Binary encoding of an Irregular series: a practical storage format that
// beats the paper's 64-bits-per-retained-point accounting by delta-encoding
// indices as uvarints and XOR-compressing values Gorilla-style.
//
// Layout:
//
//	magic "CAM1" | uvarint N | uvarint P (point count)
//	P x uvarint index deltas (first delta from -1)
//	XOR-compressed values (first raw, then per-value control bits)

// encodeMagic identifies the format version.
var encodeMagic = [4]byte{'C', 'A', 'M', '1'}

// ErrBadEncoding is returned when decoding malformed bytes.
var ErrBadEncoding = errors.New("series: malformed encoding")

// Encode serializes the irregular series compactly.
func (ir *Irregular) Encode() []byte {
	buf := make([]byte, 0, 16+len(ir.Points)*6)
	buf = append(buf, encodeMagic[:]...)
	buf = binary.AppendUvarint(buf, uint64(ir.N))
	buf = binary.AppendUvarint(buf, uint64(len(ir.Points)))
	prev := -1
	for _, p := range ir.Points {
		buf = binary.AppendUvarint(buf, uint64(p.Index-prev))
		prev = p.Index
	}
	buf = append(buf, encodeValues(ir.Points)...)
	return buf
}

// encodeValues XOR-compresses the point values (Gorilla scheme, inlined to
// keep package series dependency-free).
func encodeValues(pts []Point) []byte {
	w := bitAppender{}
	var prev uint64
	prevLead, prevTrail := -1, -1
	for i, p := range pts {
		cur := math.Float64bits(p.Value)
		if i == 0 {
			w.bits(cur, 64)
			prev = cur
			continue
		}
		xor := prev ^ cur
		prev = cur
		if xor == 0 {
			w.bit(0)
			continue
		}
		w.bit(1)
		lead := bits.LeadingZeros64(xor)
		trail := bits.TrailingZeros64(xor)
		if lead > 31 {
			lead = 31
		}
		if prevLead >= 0 && lead >= prevLead && trail >= prevTrail {
			w.bit(0)
			w.bits(xor>>uint(prevTrail), uint(64-prevLead-prevTrail))
		} else {
			w.bit(1)
			sig := 64 - lead - trail
			w.bits(uint64(lead), 5)
			w.bits(uint64(sig-1), 6)
			w.bits(xor>>uint(trail), uint(sig))
			prevLead, prevTrail = lead, trail
		}
	}
	return w.bytes()
}

// HeaderLen is the maximum encoded header size: the magic plus two
// uvarints. Reading this many bytes of an Encode result is always enough
// for DecodeHeader.
const HeaderLen = 4 + 2*binary.MaxVarintLen64

// decodeHeader parses the magic and the two header uvarints, returning the
// dense length, the point count, and the remaining bytes.
func decodeHeader(data []byte) (n, cnt uint64, rest []byte, err error) {
	if len(data) < 6 || data[0] != 'C' || data[1] != 'A' || data[2] != 'M' || data[3] != '1' {
		return 0, 0, nil, ErrBadEncoding
	}
	rest = data[4:]
	n, k := binary.Uvarint(rest)
	if k <= 0 {
		return 0, 0, nil, ErrBadEncoding
	}
	rest = rest[k:]
	cnt, k = binary.Uvarint(rest)
	if k <= 0 {
		return 0, 0, nil, ErrBadEncoding
	}
	rest = rest[k:]
	if cnt > n+1 || n > math.MaxInt32 {
		return 0, 0, nil, fmt.Errorf("series: implausible header (n=%d, points=%d): %w", n, cnt, ErrBadEncoding)
	}
	return n, cnt, rest, nil
}

// DecodeHeader returns the dense length N of an Encode result from its
// header alone — the first HeaderLen bytes suffice — without decoding
// points. Storage layers use it to index blocks in O(1) per block.
func DecodeHeader(data []byte) (int, error) {
	n, _, _, err := decodeHeader(data)
	if err != nil {
		return 0, err
	}
	return int(n), nil
}

// DecodeIrregular parses bytes produced by Encode.
func DecodeIrregular(data []byte) (*Irregular, error) {
	n, cnt, rest, err := decodeHeader(data)
	if err != nil {
		return nil, err
	}
	// Every point costs at least one index-delta byte, so a count beyond
	// the remaining payload is structurally impossible. Rejecting it here
	// bounds every allocation below by the input size — a hostile header
	// in a tiny buffer cannot provoke a giant allocation.
	if cnt > uint64(len(rest)) {
		return nil, fmt.Errorf("series: point count %d exceeds payload (%d bytes): %w", cnt, len(rest), ErrBadEncoding)
	}
	indices := make([]int, cnt)
	prev := -1
	for i := range indices {
		d, k := binary.Uvarint(rest)
		if k <= 0 {
			return nil, ErrBadEncoding
		}
		rest = rest[k:]
		prev += int(d)
		indices[i] = prev
	}
	values, err := decodeValues(rest, int(cnt))
	if err != nil {
		return nil, err
	}
	pts := make([]Point, cnt)
	for i := range pts {
		pts[i] = Point{Index: indices[i], Value: values[i]}
	}
	return NewIrregular(int(n), pts)
}

// decodeValues reverses encodeValues.
func decodeValues(data []byte, cnt int) ([]float64, error) {
	r := bitTaker{data: data, left: 8}
	out := make([]float64, 0, cnt)
	var prev uint64
	prevLead, prevTrail := -1, -1
	for i := 0; i < cnt; i++ {
		if i == 0 {
			v, err := r.bits(64)
			if err != nil {
				return nil, err
			}
			prev = v
			out = append(out, math.Float64frombits(v))
			continue
		}
		b, err := r.bits(1)
		if err != nil {
			return nil, err
		}
		if b == 0 {
			out = append(out, math.Float64frombits(prev))
			continue
		}
		ctl, err := r.bits(1)
		if err != nil {
			return nil, err
		}
		var xor uint64
		if ctl == 0 {
			if prevLead < 0 {
				return nil, ErrBadEncoding
			}
			v, err := r.bits(uint(64 - prevLead - prevTrail))
			if err != nil {
				return nil, err
			}
			xor = v << uint(prevTrail)
		} else {
			lead, err := r.bits(5)
			if err != nil {
				return nil, err
			}
			sigM1, err := r.bits(6)
			if err != nil {
				return nil, err
			}
			sig := int(sigM1) + 1
			trail := 64 - int(lead) - sig
			if trail < 0 {
				return nil, ErrBadEncoding
			}
			v, err := r.bits(uint(sig))
			if err != nil {
				return nil, err
			}
			xor = v << uint(trail)
			prevLead, prevTrail = int(lead), trail
		}
		prev ^= xor
		out = append(out, math.Float64frombits(prev))
	}
	return out, nil
}

// bitAppender is a minimal MSB-first bit writer.
type bitAppender struct {
	buf  []byte
	cur  byte
	free uint
}

func (w *bitAppender) bit(b uint64) {
	if w.free == 0 {
		w.free = 8
	}
	w.cur = w.cur<<1 | byte(b&1)
	w.free--
	if w.free == 0 {
		w.buf = append(w.buf, w.cur)
		w.cur = 0
		w.free = 8
	}
}

func (w *bitAppender) bits(v uint64, n uint) {
	for i := int(n) - 1; i >= 0; i-- {
		w.bit(v >> uint(i))
	}
}

func (w *bitAppender) bytes() []byte {
	out := w.buf
	if w.free > 0 && w.free < 8 {
		out = append(out, w.cur<<w.free)
	}
	return out
}

// bitTaker is the matching MSB-first bit reader.
type bitTaker struct {
	data []byte
	pos  int
	left uint
}

func (r *bitTaker) bits(n uint) (uint64, error) {
	var v uint64
	for i := uint(0); i < n; i++ {
		if r.pos >= len(r.data) {
			return 0, ErrBadEncoding
		}
		r.left--
		v = v<<1 | uint64(r.data[r.pos]>>r.left)&1
		if r.left == 0 {
			r.pos++
			r.left = 8
		}
	}
	return v, nil
}
