// Package series provides the time-series containers shared by the CAMEO
// core and every baseline: dense regular series, irregular (index, value)
// point sets produced by line-simplification compressors, and the linear
// interpolation used for decompression (paper §4.1).
package series

import (
	"errors"
	"fmt"
	"sort"
)

// ErrUnsorted is returned when an irregular series' indices are not strictly
// increasing.
var ErrUnsorted = errors.New("series: point indices must be strictly increasing")

// Point is one retained sample of an irregular series: the position in the
// original regular series and its value.
type Point struct {
	Index int
	Value float64
}

// Irregular is the compressed representation produced by line-simplification
// methods: a strictly increasing subset of the original points.
type Irregular struct {
	N      int     // length of the original series
	Points []Point // retained points, strictly increasing Index
}

// NewIrregular validates and wraps a retained point set.
func NewIrregular(n int, pts []Point) (*Irregular, error) {
	if n < 0 {
		return nil, fmt.Errorf("series: negative length %d", n)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Index <= pts[i-1].Index {
			return nil, ErrUnsorted
		}
	}
	if len(pts) > 0 && (pts[0].Index < 0 || pts[len(pts)-1].Index >= n) {
		return nil, fmt.Errorf("series: point index out of range [0,%d)", n)
	}
	return &Irregular{N: n, Points: pts}, nil
}

// Len returns the number of retained points.
func (ir *Irregular) Len() int { return len(ir.Points) }

// CompressionRatio returns n / retained (paper §2.1). A series compressed to
// zero points reports +Inf semantics via a very large value; callers should
// avoid zero-point series (the algorithms always keep the endpoints).
func (ir *Irregular) CompressionRatio() float64 {
	if len(ir.Points) == 0 {
		return float64(ir.N)
	}
	return float64(ir.N) / float64(len(ir.Points))
}

// Values returns just the retained values in order.
func (ir *Irregular) Values() []float64 {
	out := make([]float64, len(ir.Points))
	for i, p := range ir.Points {
		out[i] = p.Value
	}
	return out
}

// Indices returns just the retained indices in order.
func (ir *Irregular) Indices() []int {
	out := make([]int, len(ir.Points))
	for i, p := range ir.Points {
		out[i] = p.Index
	}
	return out
}

// ValueAt evaluates the linearly interpolated reconstruction at index t
// without materializing the full series. Indices outside the retained span
// are extrapolated by holding the nearest endpoint.
func (ir *Irregular) ValueAt(t int) float64 {
	pts := ir.Points
	if len(pts) == 0 {
		return 0
	}
	if t <= pts[0].Index {
		return pts[0].Value
	}
	if t >= pts[len(pts)-1].Index {
		return pts[len(pts)-1].Value
	}
	// Binary search for the segment containing t.
	j := sort.Search(len(pts), func(i int) bool { return pts[i].Index >= t })
	if pts[j].Index == t {
		return pts[j].Value
	}
	return Lerp(pts[j-1].Index, pts[j-1].Value, pts[j].Index, pts[j].Value, t)
}

// Decompress reconstructs the full regular series by linear interpolation
// between consecutive retained points — the paper's decompression strategy
// (§4.1). The result has length ir.N.
func (ir *Irregular) Decompress() []float64 {
	out := make([]float64, ir.N)
	pts := ir.Points
	if ir.N == 0 {
		return out
	}
	if len(pts) == 0 {
		return out
	}
	// Hold the first value before the first retained index.
	for t := 0; t < pts[0].Index; t++ {
		out[t] = pts[0].Value
	}
	for s := 0; s+1 < len(pts); s++ {
		a, b := pts[s], pts[s+1]
		out[a.Index] = a.Value
		span := float64(b.Index - a.Index)
		slope := (b.Value - a.Value) / span
		for t := a.Index + 1; t < b.Index; t++ {
			out[t] = a.Value + slope*float64(t-a.Index)
		}
	}
	last := pts[len(pts)-1]
	for t := last.Index; t < ir.N; t++ {
		out[t] = last.Value
	}
	return out
}

// DecompressRange appends the reconstruction of indices [lo, hi) to dst
// and returns the extended slice, evaluating only the retained points that
// span the range — the random-access form of Decompress. The arithmetic
// mirrors Decompress exactly (same slope form, same rounding), so the
// output is bit-identical to Decompress()[lo:hi] at a cost of
// O(log points + (hi-lo)) instead of O(N). Out-of-range bounds are
// clamped to [0, N).
func (ir *Irregular) DecompressRange(lo, hi int, dst []float64) []float64 {
	if lo < 0 {
		lo = 0
	}
	if hi > ir.N {
		hi = ir.N
	}
	if lo >= hi {
		return dst
	}
	pts := ir.Points
	if len(pts) == 0 {
		return append(dst, make([]float64, hi-lo)...)
	}
	t := lo
	// Hold the first value before the first retained index.
	for ; t < hi && t < pts[0].Index; t++ {
		dst = append(dst, pts[0].Value)
	}
	last := pts[len(pts)-1]
	if t < hi && t < last.Index {
		// Locate the segment containing t: the first point past t closes
		// it. t >= pts[0].Index here, so j >= 1.
		j := sort.Search(len(pts), func(i int) bool { return pts[i].Index > t })
		for t < hi && t < last.Index {
			a, b := pts[j-1], pts[j]
			span := float64(b.Index - a.Index)
			slope := (b.Value - a.Value) / span
			if t == a.Index {
				dst = append(dst, a.Value)
				t++
			}
			for ; t < hi && t < b.Index; t++ {
				dst = append(dst, a.Value+slope*float64(t-a.Index))
			}
			j++
		}
	}
	// Hold the last value from the last retained index on.
	for ; t < hi; t++ {
		dst = append(dst, last.Value)
	}
	return dst
}

// Lerp linearly interpolates the value at t on the segment
// (x0, y0) -> (x1, y1). x0 must differ from x1.
func Lerp(x0 int, y0 float64, x1 int, y1 float64, t int) float64 {
	return y0 + (y1-y0)*float64(t-x0)/float64(x1-x0)
}

// Clone returns a deep copy of the irregular series.
func (ir *Irregular) Clone() *Irregular {
	return &Irregular{N: ir.N, Points: append([]Point(nil), ir.Points...)}
}

// FromDense builds the trivial (uncompressed) irregular representation of a
// dense series: every point retained.
func FromDense(xs []float64) *Irregular {
	pts := make([]Point, len(xs))
	for i, v := range xs {
		pts[i] = Point{Index: i, Value: v}
	}
	return &Irregular{N: len(xs), Points: pts}
}
