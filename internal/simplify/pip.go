package simplify

import (
	"math"

	"repro/internal/pheap"
	"repro/internal/series"
)

// PIPVariant selects the importance (distance) function of the Perceptually
// Important Points method [18, 33].
type PIPVariant int

// PIP distance functions.
const (
	// PIPVertical measures the vertical distance to the line between the
	// two adjacent selected PIPs (PIPv).
	PIPVertical PIPVariant = iota
	// PIPEuclidean measures the sum of Euclidean distances to the two
	// adjacent selected PIPs (PIPe).
	PIPEuclidean
	// PIPPerpendicular measures the perpendicular distance to the line
	// between the adjacent PIPs — the Ramer-Douglas-Peucker criterion,
	// exposed through RDP.
	PIPPerpendicular
)

// PIP runs the Perceptually Important Points method [18, 33] adapted to the
// ACF constraint. PIPs are selected top-down, starting from the endpoints'
// straight line and repeatedly inserting the most important remaining point,
// until the ACF deviation of the partial reconstruction drops within the
// bound (or, in compression-centric mode, until the point budget n/ratio is
// reached).
func PIP(xs []float64, v PIPVariant, opt Options) (*Result, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	n := len(xs)
	if n <= 2 {
		return &Result{Compressed: series.FromDense(xs)}, nil
	}

	// Start from the two-endpoint reconstruction.
	recon0 := make([]float64, n)
	slope := (xs[n-1] - xs[0]) / float64(n-1)
	for i := range recon0 {
		recon0[i] = xs[0] + slope*float64(i)
	}
	c := newConstraint(xs, recon0, opt)

	selected := make([]bool, n)
	selected[0], selected[n-1] = true, true
	selectedCnt := 2

	// gapOf maps the best candidate of each open gap to its bounds.
	type gap struct{ l, r int }
	gapOf := make(map[int32]gap, 16)
	keys := make([]float64, n)
	h := pheap.New(n, nil, keys)

	pushGap := func(l, r int) {
		p, d := bestCandidate(xs, l, r, v)
		if p < 0 {
			return
		}
		gapOf[int32(p)] = gap{l, r}
		h.Push(int32(p), -d) // min-heap: negate for max-importance-first
	}
	pushGap(0, n-1)

	maxPoints := n
	if opt.TargetRatio > 0 {
		maxPoints = int(float64(n) / opt.TargetRatio)
		if maxPoints < 2 {
			maxPoints = 2
		}
	}

	var buf []float64
	for h.Len() > 0 {
		if opt.TargetRatio == 0 && c.dev <= opt.Epsilon {
			break // constraint satisfied: maximum compression at the bound
		}
		if selectedCnt >= maxPoints {
			break
		}
		p32, _ := h.Pop()
		g := gapOf[p32]
		delete(gapOf, p32)
		p := int(p32)
		start, d := c.splitDeltas(g.l, p, g.r, xs[p], buf)
		buf = d
		dev := c.hypothetical(start, d)
		c.commit(start, d, dev)
		selected[p] = true
		selectedCnt++
		pushGap(g.l, p)
		pushGap(p, g.r)
	}

	if opt.TargetRatio == 0 && c.dev > opt.Epsilon {
		return pipResult(xs, selected, c), ErrBoundExceeded
	}
	return pipResult(xs, selected, c), nil
}

// RDP runs Ramer-Douglas-Peucker [23, 78] — top-down selection by maximum
// perpendicular distance — under the same ACF-constraint adaptation.
func RDP(xs []float64, opt Options) (*Result, error) {
	return PIP(xs, PIPPerpendicular, opt)
}

// bestCandidate scans the open gap (l, r) of the original series and returns
// the interior point with maximum importance, or (-1, 0) for empty gaps.
func bestCandidate(xs []float64, l, r int, v PIPVariant) (int, float64) {
	best, bestD := -1, math.Inf(-1)
	x0, x1 := xs[l], xs[r]
	span := float64(r - l)
	slope := (x1 - x0) / span
	// Precompute the perpendicular normalizer once per gap.
	norm := math.Hypot(span, x1-x0)
	for p := l + 1; p < r; p++ {
		var d float64
		switch v {
		case PIPVertical:
			d = math.Abs(xs[p] - (x0 + slope*float64(p-l)))
		case PIPEuclidean:
			d = math.Hypot(float64(p-l), xs[p]-x0) + math.Hypot(float64(r-p), xs[p]-x1)
		default: // PIPPerpendicular
			// Distance from (p, xs[p]) to the line through (l,x0)-(r,x1).
			d = math.Abs(float64(p-l)*(x1-x0)-(xs[p]-x0)*span) / norm
		}
		if d > bestD {
			best, bestD = p, d
		}
	}
	return best, bestD
}

// pipResult snapshots the selected points.
func pipResult(xs []float64, selected []bool, c *constraint) *Result {
	pts := make([]series.Point, 0, 16)
	for i := range xs {
		if selected[i] {
			pts = append(pts, series.Point{Index: i, Value: xs[i]})
		}
	}
	return &Result{
		Compressed: &series.Irregular{N: len(xs), Points: pts},
		Deviation:  c.dev,
	}
}
