package simplify

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/acf"
	"repro/internal/series"
	"repro/internal/stats"
)

func seasonalSeries(n, period int, noise float64, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = 10 + 5*math.Sin(2*math.Pi*float64(i)/float64(period)) + noise*rng.NormFloat64()
	}
	return xs
}

// exactDeviation recomputes the ACF deviation of a result from scratch.
func exactDeviation(xs []float64, r *Result, opt Options) float64 {
	recon := r.Compressed.Decompress()
	a, b := xs, recon
	if opt.AggWindow >= 2 {
		a = series.Aggregate(xs, opt.AggWindow, opt.AggFunc)
		b = series.Aggregate(recon, opt.AggWindow, opt.AggFunc)
	}
	return opt.Measure.Eval(acf.ACF(a, opt.Lags), acf.ACF(b, opt.Lags))
}

func TestOptionsValidate(t *testing.T) {
	bad := []Options{
		{},
		{Lags: -1, Epsilon: 0.1},
		{Lags: 5},
		{Lags: 5, Epsilon: -0.1},
		{Lags: 5, TargetRatio: 0.5},
		{Lags: 5, Epsilon: 0.1, AggWindow: 1},
	}
	for i, opt := range bad {
		if err := opt.Validate(); err == nil {
			t.Errorf("case %d: expected error for %+v", i, opt)
		}
	}
	good := Options{Lags: 5, Epsilon: 0.1}
	if err := good.Validate(); err != nil {
		t.Errorf("unexpected error: %v", err)
	}
}

func TestVWRespectsBound(t *testing.T) {
	xs := seasonalSeries(500, 24, 0.8, 1)
	opt := Options{Lags: 24, Epsilon: 0.02}
	res, err := VW(xs, opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.CompressionRatio() <= 1 {
		t.Fatal("VW removed nothing")
	}
	if dev := exactDeviation(xs, res, opt); dev > 0.02+1e-9 {
		t.Fatalf("VW deviation %v exceeds bound", dev)
	}
	if math.Abs(res.Deviation-exactDeviation(xs, res, opt)) > 1e-6 {
		t.Fatalf("tracked deviation %v != exact %v", res.Deviation, exactDeviation(xs, res, opt))
	}
}

func TestVWCompressionGrowsWithEpsilon(t *testing.T) {
	xs := seasonalSeries(400, 24, 0.5, 2)
	small, err := VW(xs, Options{Lags: 24, Epsilon: 0.005})
	if err != nil {
		t.Fatal(err)
	}
	large, err := VW(xs, Options{Lags: 24, Epsilon: 0.08})
	if err != nil {
		t.Fatal(err)
	}
	if large.CompressionRatio() < small.CompressionRatio() {
		t.Fatalf("CR did not grow: %v -> %v", small.CompressionRatio(), large.CompressionRatio())
	}
}

func TestVWTargetRatio(t *testing.T) {
	xs := seasonalSeries(400, 20, 0.5, 3)
	res, err := VW(xs, Options{Lags: 20, TargetRatio: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.CompressionRatio() < 5 {
		t.Fatalf("CR = %v, want >= 5", res.CompressionRatio())
	}
}

func TestVWRemovesFlatTrianglesFirst(t *testing.T) {
	// On a series with one sharp spike, VW should keep the spike longest.
	xs := make([]float64, 101)
	xs[50] = 100 // spike
	res, err := VW(xs, Options{Lags: 5, TargetRatio: 10})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, p := range res.Compressed.Points {
		if p.Index == 50 {
			found = true
		}
	}
	if !found {
		t.Fatal("VW dropped the spike before flat points")
	}
}

func TestTurningPointsKeepsDirectionChanges(t *testing.T) {
	xs := seasonalSeries(200, 20, 0, 4) // noiseless sine: TPs at extrema
	res, err := TurningPoints(xs, TPSum, Options{Lags: 20, Epsilon: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if res.CompressionRatio() < 2 {
		t.Fatalf("TP CR = %v, want >= 2 on smooth sine", res.CompressionRatio())
	}
}

func TestTurningPointsBoundViolationReported(t *testing.T) {
	// A sawtooth-free monotone ramp with heavy noise removed: craft a series
	// where dropping all non-TPs must distort the ACF beyond a tiny bound.
	rng := rand.New(rand.NewSource(5))
	xs := make([]float64, 400)
	for i := range xs {
		// smooth long oscillation + tiny jitter => most points non-TP after
		// jitter but reconstruction skips real curvature
		xs[i] = math.Sin(2*math.Pi*float64(i)/100) + 0.001*rng.NormFloat64()
	}
	_, err := TurningPoints(xs, TPSum, Options{Lags: 100, Epsilon: 1e-9})
	if !errors.Is(err, ErrBoundExceeded) {
		t.Fatalf("expected ErrBoundExceeded, got %v", err)
	}
}

func TestTurningPointsVariantsBothBounded(t *testing.T) {
	xs := seasonalSeries(500, 24, 0.8, 6)
	for _, v := range []TPVariant{TPSum, TPMae} {
		opt := Options{Lags: 24, Epsilon: 0.05}
		res, err := TurningPoints(xs, v, opt)
		if err != nil {
			if errors.Is(err, ErrBoundExceeded) {
				continue // legitimate outcome for TP
			}
			t.Fatal(err)
		}
		if dev := exactDeviation(xs, res, opt); dev > 0.05+1e-9 {
			t.Fatalf("variant %d deviation %v exceeds bound", v, dev)
		}
	}
}

func TestPIPVariantsRespectBound(t *testing.T) {
	xs := seasonalSeries(400, 24, 0.8, 7)
	for _, v := range []PIPVariant{PIPVertical, PIPEuclidean, PIPPerpendicular} {
		opt := Options{Lags: 24, Epsilon: 0.02}
		res, err := PIP(xs, v, opt)
		if err != nil {
			t.Fatalf("variant %d: %v", v, err)
		}
		if dev := exactDeviation(xs, res, opt); dev > 0.02+1e-9 {
			t.Fatalf("variant %d deviation %v exceeds bound", v, dev)
		}
		if res.CompressionRatio() <= 1 {
			t.Fatalf("variant %d removed nothing", v)
		}
	}
}

func TestPIPTargetRatioBudget(t *testing.T) {
	xs := seasonalSeries(300, 20, 0.5, 8)
	res, err := PIP(xs, PIPVertical, Options{Lags: 20, TargetRatio: 6})
	if err != nil {
		t.Fatal(err)
	}
	if res.CompressionRatio() < 6 {
		t.Fatalf("CR = %v, want >= 6", res.CompressionRatio())
	}
}

func TestPIPSelectsSpikeFirst(t *testing.T) {
	xs := make([]float64, 101)
	xs[30] = 50
	res, err := PIP(xs, PIPVertical, Options{Lags: 5, TargetRatio: 25})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, p := range res.Compressed.Points {
		if p.Index == 30 {
			found = true
		}
	}
	if !found {
		t.Fatal("PIP did not select the most salient point first")
	}
}

func TestRDPEquivalentToPerpendicularPIP(t *testing.T) {
	xs := seasonalSeries(200, 20, 0.5, 9)
	opt := Options{Lags: 20, Epsilon: 0.05}
	a, err := RDP(xs, opt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := PIP(xs, PIPPerpendicular, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Compressed.Points) != len(b.Compressed.Points) {
		t.Fatal("RDP != PIP(perpendicular)")
	}
}

func TestTinySeriesAllMethods(t *testing.T) {
	xs := []float64{1, 2}
	opt := Options{Lags: 2, Epsilon: 0.1}
	for name, run := range map[string]func() (*Result, error){
		"vw":  func() (*Result, error) { return VW(xs, opt) },
		"tp":  func() (*Result, error) { return TurningPoints(xs, TPSum, opt) },
		"pip": func() (*Result, error) { return PIP(xs, PIPVertical, opt) },
	} {
		res, err := run()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Compressed.Len() != 2 {
			t.Fatalf("%s: retained %d points", name, res.Compressed.Len())
		}
	}
}

func TestWindowAggregateConstraint(t *testing.T) {
	xs := seasonalSeries(960, 96, 0.5, 10)
	opt := Options{Lags: 8, Epsilon: 0.01, AggWindow: 12, AggFunc: series.AggMean}
	res, err := VW(xs, opt)
	if err != nil {
		t.Fatal(err)
	}
	if dev := exactDeviation(xs, res, opt); dev > 0.01+1e-9 {
		t.Fatalf("aggregated deviation %v exceeds bound", dev)
	}
}

// Property: every method keeps endpoints, original values, and the bound.
func TestMethodInvariantsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 30 + rng.Intn(150)
		period := 5 + rng.Intn(20)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = math.Sin(2*math.Pi*float64(i)/float64(period)) + 0.3*rng.NormFloat64()
		}
		opt := Options{Lags: 2 + rng.Intn(8), Epsilon: 0.005 + rng.Float64()*0.05}
		runs := []func() (*Result, error){
			func() (*Result, error) { return VW(xs, opt) },
			func() (*Result, error) { return TurningPoints(xs, TPVariant(rng.Intn(2)), opt) },
			func() (*Result, error) { return PIP(xs, PIPVariant(rng.Intn(3)), opt) },
		}
		for _, run := range runs {
			res, err := run()
			if err != nil && !errors.Is(err, ErrBoundExceeded) {
				return false
			}
			pts := res.Compressed.Points
			if pts[0].Index != 0 || pts[len(pts)-1].Index != n-1 {
				return false
			}
			for _, p := range pts {
				if p.Value != xs[p.Index] {
					return false
				}
			}
			if err == nil && exactDeviation(xs, res, opt) > opt.Epsilon+1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestMeasureVariantsSupported(t *testing.T) {
	xs := seasonalSeries(300, 24, 0.5, 11)
	for _, m := range []stats.Measure{stats.MeasureMAE, stats.MeasureRMSE, stats.MeasureChebyshev} {
		opt := Options{Lags: 24, Epsilon: 0.03, Measure: m}
		res, err := VW(xs, opt)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if dev := exactDeviation(xs, res, opt); dev > 0.03+1e-9 {
			t.Fatalf("%v: deviation %v exceeds bound", m, dev)
		}
	}
}
