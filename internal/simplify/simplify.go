// Package simplify implements the line-simplification baselines the paper
// compares CAMEO against (§2.2, §5.1), each adapted to support the ACF
// deviation constraint: Visvalingam-Whyatt (VW), Turning Points (TPs/TPm),
// Perceptually Important Points (PIPv/PIPe), and Ramer-Douglas-Peucker
// (RDP, via the perpendicular-distance PIP variant).
//
// The adaptation mirrors the paper's: each method keeps its own geometric
// ranking criterion, while the ACF deviation of the running reconstruction
// is maintained incrementally (reusing the CAMEO aggregate machinery) and
// checked against the bound before committing each step.
package simplify

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/acf"
	"repro/internal/series"
	"repro/internal/stats"
)

// ErrBoundExceeded is returned when a method cannot satisfy the requested
// ACF bound at all — e.g. Turning Points' initial phase already deviates
// beyond epsilon (observed by the paper on Pedestrian and SolarPower). The
// accompanying Result still describes the attempted compression.
var ErrBoundExceeded = errors.New("simplify: ACF error bound cannot be met")

// Options configures a constrained line-simplification run. Exactly like
// CAMEO's options but without CAMEO-specific knobs.
type Options struct {
	// Lags is the number of ACF lags L to constrain (required).
	Lags int
	// Epsilon bounds the ACF deviation. Ignored when TargetRatio is set.
	Epsilon float64
	// TargetRatio, when positive, switches to compression-centric mode:
	// simplify until |X|/|X'| reaches the ratio, ignoring Epsilon.
	TargetRatio float64
	// Measure is the deviation measure D (default MAE).
	Measure stats.Measure
	// AggWindow, when >= 2, constrains the ACF of tumbling-window
	// aggregates (window AggWindow, function AggFunc) instead.
	AggWindow int
	// AggFunc is the aggregation function (default mean).
	AggFunc series.AggFunc
}

// Validate checks the options.
func (o *Options) Validate() error {
	if o.Lags <= 0 {
		return fmt.Errorf("simplify: Lags must be positive, got %d", o.Lags)
	}
	if o.Epsilon < 0 || math.IsNaN(o.Epsilon) {
		return fmt.Errorf("simplify: Epsilon must be non-negative, got %v", o.Epsilon)
	}
	if o.TargetRatio < 0 || (o.TargetRatio > 0 && o.TargetRatio < 1) {
		return fmt.Errorf("simplify: TargetRatio must be >= 1, got %v", o.TargetRatio)
	}
	if o.Epsilon == 0 && o.TargetRatio == 0 {
		return errors.New("simplify: set Epsilon and/or TargetRatio")
	}
	if o.AggWindow == 1 || o.AggWindow < 0 {
		return fmt.Errorf("simplify: AggWindow must be 0 or >= 2, got %d", o.AggWindow)
	}
	return nil
}

// Result reports a constrained simplification outcome.
type Result struct {
	// Compressed holds the retained points.
	Compressed *series.Irregular
	// Deviation is the final ACF deviation D(S(X'), S(X)).
	Deviation float64
}

// CompressionRatio returns |X| / |X'|.
func (r *Result) CompressionRatio() float64 { return r.Compressed.CompressionRatio() }

// constraint tracks the ACF deviation of a running reconstruction against
// the base statistic of the original series, using the incremental
// aggregates of paper §4.2.
type constraint struct {
	tr      acf.Tracker
	sc      *acf.Scratch
	cur     []float64 // current reconstruction
	base    []float64 // S(X) of the original series
	measure stats.Measure
	dev     float64 // deviation of the committed state
}

// newConstraint builds a tracker over reconstruction recon0 with the base
// statistic taken from the original xs.
func newConstraint(xs, recon0 []float64, opt Options) *constraint {
	var tr acf.Tracker
	if opt.AggWindow >= 2 {
		tr = acf.NewWindowTracker(recon0, opt.AggWindow, opt.AggFunc, opt.Lags)
	} else {
		tr = acf.NewDirectTracker(recon0, opt.Lags)
	}
	baseData := xs
	if opt.AggWindow >= 2 {
		baseData = series.Aggregate(xs, opt.AggWindow, opt.AggFunc)
	}
	c := &constraint{
		tr:      tr,
		sc:      tr.NewScratch(),
		cur:     append([]float64(nil), recon0...),
		base:    acf.ACF(baseData, opt.Lags),
		measure: opt.Measure,
	}
	acfBuf := make([]float64, tr.Lags())
	c.tr.ACFInto(acfBuf)
	c.dev = c.measure.Eval(acfBuf, c.base)
	if math.IsNaN(c.dev) {
		c.dev = math.Inf(1)
	}
	return c
}

// hypothetical returns the deviation the reconstruction would have after
// the contiguous change, without committing.
func (c *constraint) hypothetical(start int, deltas []float64) float64 {
	hyp := c.tr.Hypothetical(c.cur, start, deltas, c.sc)
	v := c.measure.Eval(hyp, c.base)
	if math.IsNaN(v) {
		return math.Inf(1)
	}
	return v
}

// commit applies the change and records the new deviation.
func (c *constraint) commit(start int, deltas []float64, dev float64) {
	c.tr.Commit(c.cur, start, deltas)
	for i, d := range deltas {
		c.cur[start+i] += d
	}
	c.dev = dev
}

// gapDeltas writes into buf the value changes that re-interpolating the open
// interval (l, r) on the straight segment l->r would cause, and returns
// (start, deltas).
func (c *constraint) gapDeltas(l, r int, buf []float64) (int, []float64) {
	start := l + 1
	m := r - start
	if cap(buf) < m {
		buf = make([]float64, m)
	}
	d := buf[:m]
	y0, y1 := c.cur[l], c.cur[r]
	slope := (y1 - y0) / float64(r-l)
	for t := 0; t < m; t++ {
		interp := y0 + slope*float64(start+t-l)
		d[t] = interp - c.cur[start+t]
	}
	return start, d
}

// splitDeltas writes into buf the changes that inserting point (p, value)
// into gap (l, r) would cause: the interval re-interpolates as two segments
// l->p and p->r. Used by the top-down (PIP/RDP) methods.
func (c *constraint) splitDeltas(l, p, r int, value float64, buf []float64) (int, []float64) {
	start := l + 1
	m := r - start
	if cap(buf) < m {
		buf = make([]float64, m)
	}
	d := buf[:m]
	y0, yp, y1 := c.cur[l], value, c.cur[r]
	slopeL := (yp - y0) / float64(p-l)
	slopeR := (y1 - yp) / float64(r-p)
	for t := start; t < r; t++ {
		var interp float64
		switch {
		case t < p:
			interp = y0 + slopeL*float64(t-l)
		case t == p:
			interp = yp
		default:
			interp = yp + slopeR*float64(t-p)
		}
		d[t-start] = interp - c.cur[t]
	}
	return start, d
}
