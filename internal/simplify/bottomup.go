package simplify

import (
	"math"

	"repro/internal/pheap"
	"repro/internal/series"
)

// VW runs the Visvalingam-Whyatt algorithm [90] adapted to the ACF
// constraint: points are ranked by the area of the triangle they form with
// their alive neighbours and removed smallest-first; a removal that would
// push the ACF deviation past the bound is skipped permanently.
func VW(xs []float64, opt Options) (*Result, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	return bottomUpRun(xs, opt, nil, vwArea)
}

// TPVariant selects the Turning Points evaluation function [83].
type TPVariant int

// Turning Points evaluation functions.
const (
	// TPSum ranks turning points by the sum of absolute value differences
	// to their alive neighbours (TPs in the paper's figures).
	TPSum TPVariant = iota
	// TPMae ranks turning points by the mean absolute reconstruction error
	// their removal would introduce over the gap (TPm).
	TPMae
)

// TurningPoints runs the Turning Points algorithm [83] adapted to the ACF
// constraint. Its initial phase removes every non-turning point outright;
// if that alone exceeds the bound the method cannot satisfy the constraint
// and ErrBoundExceeded is returned alongside the attempted result (the
// paper observes exactly this failure on Pedestrian and SolarPower).
func TurningPoints(xs []float64, v TPVariant, opt Options) (*Result, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	keep := turningPointMask(xs)
	imp := tpSumImportance
	if v == TPMae {
		imp = tpMaeImportance
	}
	return bottomUpRun(xs, opt, keep, imp)
}

// turningPointMask returns keep[i] == true for endpoints and points where
// the series changes direction (paper §2.2).
func turningPointMask(xs []float64) []bool {
	n := len(xs)
	keep := make([]bool, n)
	if n == 0 {
		return keep
	}
	keep[0] = true
	keep[n-1] = true
	for i := 1; i < n-1; i++ {
		dl := xs[i] - xs[i-1]
		dr := xs[i+1] - xs[i]
		if (dl > 0 && dr < 0) || (dl < 0 && dr > 0) {
			keep[i] = true
		}
	}
	return keep
}

// bottomUpState carries the shared state of a bottom-up removal run.
type bottomUpState struct {
	xs          []float64
	c           *constraint
	left, right []int32
	removed     []bool
	buf         []float64
}

// importanceFunc ranks a candidate for removal (smaller = removed earlier).
type importanceFunc func(s *bottomUpState, p int32) float64

// vwArea is the Visvalingam-Whyatt triangle area over alive neighbours.
func vwArea(s *bottomUpState, p int32) float64 {
	l, r := s.left[p], s.right[p]
	// 2*area of triangle ((l,x_l), (p,x_p), (r,x_r)).
	a := s.xs[l]*float64(p-r) + s.xs[p]*float64(r-l) + s.xs[r]*float64(l-p)
	return math.Abs(a) / 2
}

// tpSumImportance is the TPs evaluation: sum of absolute value differences.
func tpSumImportance(s *bottomUpState, p int32) float64 {
	l, r := s.left[p], s.right[p]
	return math.Abs(s.xs[p]-s.xs[l]) + math.Abs(s.xs[p]-s.xs[r])
}

// tpMaeImportance is the TPm evaluation: mean absolute error the removal
// would introduce over the re-interpolated gap.
func tpMaeImportance(s *bottomUpState, p int32) float64 {
	l, r := s.left[p], s.right[p]
	_, d := s.c.gapDeltas(int(l), int(r), s.buf)
	var sum float64
	for _, v := range d {
		sum += math.Abs(v)
	}
	if len(d) == 0 {
		return 0
	}
	return sum / float64(len(d))
}

// bottomUpRun is the generic constrained bottom-up removal driver. keepMask,
// when non-nil, marks points that survive the method's initial phase
// (Turning Points); all other interior points are removed outright first.
func bottomUpRun(xs []float64, opt Options, keepMask []bool, imp importanceFunc) (*Result, error) {
	n := len(xs)
	if n <= 2 {
		return &Result{Compressed: series.FromDense(xs)}, nil
	}
	s := &bottomUpState{
		xs:      xs,
		c:       newConstraint(xs, xs, opt),
		left:    make([]int32, n),
		right:   make([]int32, n),
		removed: make([]bool, n),
	}
	for i := 0; i < n; i++ {
		s.left[i] = int32(i - 1)
		s.right[i] = int32(i + 1)
	}
	aliveCnt := n

	// Initial phase (Turning Points): drop every interior non-turning point.
	if keepMask != nil {
		for i := 1; i < n-1; i++ {
			if keepMask[i] {
				continue
			}
			l, r := s.left[i], s.right[i]
			start, d := s.c.gapDeltas(int(l), int(r), s.buf)
			dev := s.c.hypothetical(start, d)
			s.c.commit(start, d, dev)
			s.right[l] = int32(r)
			s.left[r] = int32(l)
			s.removed[i] = true
			aliveCnt--
		}
		if opt.TargetRatio == 0 && s.c.dev > opt.Epsilon {
			return resultFrom(s, xs), ErrBoundExceeded
		}
	}

	// Rank the remaining interior candidates.
	var points []int32
	keys := make([]float64, n)
	for i := 1; i < n-1; i++ {
		if s.removed[i] {
			continue
		}
		p := int32(i)
		points = append(points, p)
		keys[p] = imp(s, p)
	}
	h := pheap.New(n, points, keys)

	for h.Len() > 0 {
		if opt.TargetRatio > 0 && float64(n) >= opt.TargetRatio*float64(aliveCnt) {
			break
		}
		p, _ := h.Pop()
		l, r := s.left[p], s.right[p]
		start, d := s.c.gapDeltas(int(l), int(r), s.buf)
		dev := s.c.hypothetical(start, d)
		if opt.TargetRatio == 0 && dev > opt.Epsilon {
			// This removal would break the bound: skip it permanently and
			// try the next-ranked candidate.
			continue
		}
		s.c.commit(start, d, dev)
		s.right[l] = r
		s.left[r] = l
		s.removed[p] = true
		aliveCnt--
		// Only the two adjacent points' geometry changed.
		if l > 0 && h.Contains(l) {
			h.Fix(l, imp(s, l))
		}
		if int(r) < n-1 && h.Contains(r) {
			h.Fix(r, imp(s, r))
		}
	}
	return resultFrom(s, xs), nil
}

// resultFrom snapshots the retained points of a bottom-up run.
func resultFrom(s *bottomUpState, xs []float64) *Result {
	pts := make([]series.Point, 0, 16)
	for i := range xs {
		if !s.removed[i] {
			pts = append(pts, series.Point{Index: i, Value: xs[i]})
		}
	}
	return &Result{
		Compressed: &series.Irregular{N: len(xs), Points: pts},
		Deviation:  s.c.dev,
	}
}
