package core
