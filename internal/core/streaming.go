package core

import (
	"errors"
	"runtime"

	"repro/internal/acf"
)

// StreamEngine spreads one block's CAMEO compression (Algorithm 1) across
// many small, bounded work steps so an ingest path can pay for compression
// incrementally as points arrive instead of all at once at block-cut time.
//
// The engine is a deterministic time-slicing of the batch engine: Advance
// performs exactly the operations batch Compress would perform, in the
// same order, just paused and resumed at work-unit boundaries. The
// retained points, deviation, and iteration count are therefore
// bit-identical to Compress(xs, opt) — the per-point error bound and the
// ACF-deviation budget hold not just approximately but exactly, and the
// encoded block is byte-identical to the batch encoder's.
//
// One work unit is one impact evaluation (or one sample fed to the
// incremental aggregate builder / initial-impact pass), the dominant cost
// of the algorithm; callers pace ingest by granting unit budgets sized to
// their latency target.
//
// A StreamEngine is reusable across blocks (Begin re-arms it) and is NOT
// safe for concurrent use. Close releases the persistent eval workers when
// Options.Threads >= 2; a finalizer backstops forgotten Closes.
type StreamEngine struct {
	opt     Options
	eng     *engine
	builder *acf.Builder

	phase streamPhase
	fed   int // samples fed to the builder
	built int // initial impacts computed
	res   *Result
}

type streamPhase int

const (
	streamIdle    streamPhase = iota
	streamAggs                // feeding the incremental aggregate builder
	streamTracker             // one-step tracker build (shapes the builder can't serve)
	streamImpacts             // chunked Alg. 2 initial impacts
	streamRun                 // budgeted Alg. 1 removal loop
	streamDone
)

// NewStreamEngine returns a streaming engine for opt.
func NewStreamEngine(opt Options) (*StreamEngine, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	s := &StreamEngine{opt: opt}
	if opt.Threads >= 2 {
		runtime.SetFinalizer(s, (*StreamEngine).Close)
	}
	return s, nil
}

// Begin arms the engine for a new block. It performs the O(n) input copy
// and buffer set-up; all O(n*L) and removal work is deferred to Advance.
// xs must stay untouched by the caller until the block is done (the
// engine copies it, so mutation after Begin is safe but pointless).
func (s *StreamEngine) Begin(xs []float64) error {
	if s.phase != streamIdle && s.phase != streamDone {
		return errors.New("core: StreamEngine.Begin: previous block not finished")
	}
	if err := checkFinite(xs); err != nil {
		return err
	}
	if s.eng == nil {
		s.eng = &engine{}
	}
	s.eng.resetPre(xs, s.opt)
	s.res = nil
	s.fed, s.built = 0, 0
	// The incremental builder reproduces the batch direct extractor
	// bit-for-bit, so it is usable exactly when the batch path would pick
	// direct extraction: plain dense-ACF shapes that are not FFT-worthy
	// (the from-builder constructor re-checks the FFT gate at install
	// time). Windowed or lag-subset trackers fall back to a single-step
	// batch build — still off the block-cut critical path, just not
	// sample-sliced.
	if s.opt.AggWindow < 2 && len(s.opt.LagSubset) == 0 {
		if s.builder == nil || s.builder.L != s.eng.trackLags {
			s.builder = acf.NewBuilder(s.eng.trackLags)
		} else {
			s.builder.Reset()
		}
		s.phase = streamAggs
	} else {
		s.builder = nil
		s.phase = streamTracker
	}
	return nil
}

// Advance performs up to budget work units of compression and reports how
// many it used and whether the block is finished. Progress is guaranteed:
// every call on an unfinished block performs at least one unit. A finished
// block's result is available via Result until the next Begin.
func (s *StreamEngine) Advance(budget int) (used int, done bool) {
	if budget < 1 {
		budget = 1
	}
	e := s.eng
	for used < budget {
		switch s.phase {
		case streamAggs:
			k := min(budget-used, e.n-s.fed)
			s.builder.Append(e.orig[s.fed : s.fed+k]...)
			s.fed += k
			used += k
			if s.fed == e.n {
				if tr := acf.NewDirectTrackerFromBuilder(s.builder, e.orig); tr != nil {
					e.installTracker(tr)
				} else {
					// FFT-worthy shape: match the batch extractor.
					e.installTracker(e.buildTracker(e.orig))
				}
				s.phase = streamImpacts
			}
		case streamTracker:
			e.installTracker(e.buildTracker(e.orig))
			used += e.n // one unsliced step; charge its O(n*L) cost coarsely
			s.phase = streamImpacts
		case streamImpacts:
			k := min(budget-used, len(e.points)-s.built)
			e.initImpacts(s.built, s.built+k)
			s.built += k
			used += k
			if s.built == len(e.points) {
				e.armHeap()
				s.phase = streamRun
			}
		case streamRun:
			reason, u := e.run(stopConditions{
				epsilon:     s.opt.Epsilon,
				targetRatio: s.opt.TargetRatio,
				maxUnits:    budget - used,
			})
			used += u
			if reason == runBudget {
				return used, false
			}
			s.res = e.result()
			s.phase = streamDone
			return used, true
		case streamDone:
			return used, true
		default: // streamIdle: nothing armed
			return used, false
		}
	}
	return used, s.phase == streamDone
}

// Finish runs the block to completion on the calling goroutine.
func (s *StreamEngine) Finish() {
	if s.phase == streamIdle {
		return
	}
	for {
		if _, done := s.Advance(1 << 20); done {
			return
		}
	}
}

// Done reports whether the current block has finished.
func (s *StreamEngine) Done() bool { return s.phase == streamDone }

// Result returns the finished block's compression result, or nil if no
// block is finished. Valid until the next Begin.
func (s *StreamEngine) Result() *Result { return s.res }

// Close releases the persistent eval workers. The engine must not be used
// afterwards. Safe to call more than once.
func (s *StreamEngine) Close() {
	if s.eng != nil {
		s.eng.close()
		s.eng = nil
	}
	s.phase = streamIdle
	runtime.SetFinalizer(s, nil)
}
