package core

import "runtime"

// Compressor runs repeated CAMEO compressions under one fixed option set,
// pooling the engine between runs: the reconstruction buffers, neighbour
// pointers, removal flags, heap arrays, per-thread evaluation scratch, and
// (with Threads >= 2) the persistent eval workers all survive from block to
// block instead of being reallocated per call. The tsdb/codec layer drives
// one Compressor per worker slot, so steady-state block compression stays
// off the allocator.
//
// A Compressor is not safe for concurrent use; pool instances (sync.Pool)
// for concurrent block streams. Close releases the eval workers — for
// engines with Threads >= 2 a finalizer backstops Close, so instances
// dropped by a pool cannot leak goroutines.
type Compressor struct {
	opt Options
	eng *engine
}

// NewCompressor validates the options and returns a reusable compressor.
func NewCompressor(opt Options) (*Compressor, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	c := &Compressor{opt: opt}
	if opt.Threads >= 2 {
		runtime.SetFinalizer(c, (*Compressor).Close)
	}
	return c, nil
}

// Compress is Compress for the configured options, reusing the pooled
// engine. Results are independent of engine reuse: a fresh engine and a
// recycled one produce bit-identical retained points.
func (c *Compressor) Compress(xs []float64) (*Result, error) {
	if err := checkFinite(xs); err != nil {
		return nil, err
	}
	if c.eng == nil {
		c.eng = newEngine(xs, c.opt)
	} else {
		c.eng.reset(xs, c.opt)
	}
	c.eng.run(stopConditions{
		epsilon:     c.opt.Epsilon,
		targetRatio: c.opt.TargetRatio,
	})
	return c.eng.result(), nil
}

// Close stops the engine's eval workers. The Compressor may be reused
// afterwards (the next Compress re-arms it), but Close must be called — or
// the instance left to the GC, which finalizes it — once it is no longer
// needed, when Threads >= 2.
func (c *Compressor) Close() {
	if c.eng != nil {
		c.eng.close()
		c.eng = nil
	}
}
