package core

import (
	"math"
	"sort"
	"sync"

	"repro/internal/acf"
	"repro/internal/pheap"
	"repro/internal/series"
	"repro/internal/stats"
)

// Compress runs the CAMEO algorithm (paper Algorithm 1) on xs and returns
// the retained points. The first and last points are always kept.
func Compress(xs []float64, opt Options) (*Result, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	if err := checkFinite(xs); err != nil {
		return nil, err
	}
	eng := newEngine(xs, opt)
	defer eng.close()
	eng.run(stopConditions{
		epsilon:     opt.Epsilon,
		targetRatio: opt.TargetRatio,
	})
	return eng.result(), nil
}

// stopConditions bundles the halting rules of the three problem variants.
type stopConditions struct {
	epsilon     float64 // 0 = unbounded deviation (Definition 3)
	targetRatio float64 // 0 = no ratio stop
	maxRemovals int     // 0 = unlimited
	maxUnits    int     // 0 = unlimited; work-unit budget (impact evaluations)
}

// runStop reports why run returned.
type runStop int

const (
	runDone   runStop = iota // heap exhausted: every interior point removed
	runBound                 // least-impact candidate violates epsilon (terminal)
	runRatio                 // target compression ratio reached (terminal)
	runBudget                // maxRemovals/maxUnits exhausted (resumable)
)

// evalCtx is per-goroutine scratch for impact evaluation. After warm-up a
// context is allocation-free: every buffer an evaluation needs lives here or
// in the tracker scratch.
type evalCtx struct {
	sc      *acf.Scratch
	deltas  []float64
	featBuf []float64
	pacf    []float64 // Durbin-Levinson scratch (StatPACF only)
	phiPrev []float64
	phiCur  []float64
}

// parTask assigns one chunk of the shared point list to eval worker w.
type parTask struct{ w, lo, hi int }

// engine holds the mutable state of one CAMEO run. It is resumable: run may
// be called repeatedly with progressively looser stop conditions, which the
// coarse-grained parallelization exploits (paper §4.4). It is also
// reusable: reset re-arms every buffer for a new input without reallocating
// (Compressor pools engines across blocks). close releases the eval
// workers; an engine must not be used after close.
type engine struct {
	opt  Options
	n    int
	cur  []float64 // current reconstruction values
	orig []float64 // original values (alive points always equal orig)

	left, right []int32 // alive-neighbour pointers (paper §4.3)
	removed     []bool

	tracker acf.Tracker
	base    []float64 // base feature vector S(X)
	heap    *pheap.Heap

	// Lag-subset projection (Options.LagSubset, §5.5). For StatACF the
	// tracker itself is compact (it maintains only the selected lags) and
	// subPos maps each user-ordered subset entry to its tracker position;
	// for StatPACF the tracker is dense but truncated at the largest
	// selected lag (the recursion is prefix-structured).
	sub    []int
	subPos []int

	// Tracker shape derived from opt by resetPre, consumed by buildTracker
	// (and by StreamEngine, which substitutes an incrementally built
	// tracker when the shape allows it).
	trackLags   int   // dense tracker depth
	compactLags []int // non-nil: compact StatACF subset tracker

	// fastMAE marks the default configuration (ACF statistic, no subset,
	// MAE measure): the acf kernel then accumulates the deviation against
	// base while evaluating, and impact reads it via Scratch.DevSum instead
	// of running feature projection + Measure.Eval passes.
	fastMAE bool

	ctxs []*evalCtx // ctxs[0] is the main goroutine's

	// Persistent eval workers (Threads >= 2): goroutines started once per
	// engine that evaluate chunks of parPoints into parKeys, replacing a
	// per-reHeap goroutine fan-out.
	parTasks  chan parTask
	parWG     sync.WaitGroup
	parPoints []int32
	parKeys   []float64

	acfBuf []float64 // base-ACF buffer (reset only)
	keys   []float64 // heap keys, indexed by point id
	points []int32   // interior point list for the initial heap build
	neigh  []int32   // reHeap neighbour buffer
	reKeys []float64 // reHeap key buffer (parallel path)

	dev        float64 // deviation of the committed state
	removedCnt int
	iterations int
	hops       int
}

// newEngine initializes state and builds the impact heap (paper Alg. 2).
// Options must be validated and xs finite (the exported callers check).
func newEngine(xs []float64, opt Options) *engine {
	e := &engine{}
	e.reset(xs, opt)
	return e
}

// reset (re)initializes the engine for a new input series, reusing every
// internal buffer whose capacity suffices. opt must stay structurally
// identical across resets of one engine (same Lags/Statistic/LagSubset/
// AggWindow/Threads), which Compressor guarantees by construction.
//
// It is split into four stages so StreamEngine can spread the set-up cost
// across point arrivals: resetPre -> installTracker -> initImpacts ->
// armHeap. Composing them here keeps the batch path bit-identical to the
// streaming one (same operations in the same order).
func (e *engine) reset(xs []float64, opt Options) {
	e.resetPre(xs, opt)
	e.installTracker(e.buildTracker(e.orig))
	e.initImpacts(0, len(e.points))
	e.armHeap()
}

// resetPre performs the tracker-independent part of reset: copies the
// input, re-arms pointer/flag buffers, derives the tracker shape
// (trackLags/compactLags) and builds the interior point list. O(n).
func (e *engine) resetPre(xs []float64, opt Options) {
	n := len(xs)
	e.opt = opt
	e.n = n
	e.cur = append(e.cur[:0], xs...)
	e.orig = append(e.orig[:0], xs...)
	e.left = grow(e.left, n)
	e.right = grow(e.right, n)
	e.removed = grow(e.removed, n)
	e.keys = grow(e.keys, n)
	e.dev, e.removedCnt, e.iterations = 0, 0, 0
	e.hops = opt.BlockHops
	if e.hops == 0 {
		e.hops = defaultBlockHops(n)
	}

	e.trackLags = opt.Lags
	e.compactLags = nil
	e.sub, e.subPos = nil, nil
	if len(opt.LagSubset) > 0 {
		e.sub = opt.LagSubset
		if opt.Statistic == StatACF {
			e.compactLags = uniqueSortedLags(opt.LagSubset)
			e.subPos = subsetPositions(opt.LagSubset, e.compactLags)
		} else {
			// PACF truncates at the largest selected lag (§5.5): the
			// Durbin-Levinson recursion only ever reads the ACF prefix.
			e.trackLags = maxLag(opt.LagSubset)
		}
	}

	for i := 0; i < n; i++ {
		e.left[i] = int32(i - 1)
		e.right[i] = int32(i + 1)
		e.removed[i] = false
	}

	// Interior point list for the initial heap build; first and last
	// points never enter the heap (their impact is infinite). points[i] =
	// i+1, so the positional key slice keys[1:n-1] doubles as the
	// by-point-id layout the heap indexes into.
	if cap(e.points) < n {
		e.points = make([]int32, 0, n)
	}
	e.points = e.points[:0]
	for i := 1; i < n-1; i++ {
		e.points = append(e.points, int32(i))
	}
	if n > 0 {
		e.keys[0] = 0
		e.keys[n-1] = 0
	}
}

// buildTracker constructs the ACF tracker for the shape resetPre derived.
// O(n*L) (or O(n log n) on FFT-worthy shapes).
func (e *engine) buildTracker(xs []float64) acf.Tracker {
	switch {
	case e.opt.AggWindow >= 2 && e.compactLags != nil:
		return acf.NewWindowTrackerLags(xs, e.opt.AggWindow, e.opt.AggFunc, e.compactLags)
	case e.opt.AggWindow >= 2:
		return acf.NewWindowTracker(xs, e.opt.AggWindow, e.opt.AggFunc, e.trackLags)
	case e.compactLags != nil:
		return acf.NewDirectTrackerLags(xs, e.compactLags)
	default:
		return acf.NewDirectTracker(xs, e.trackLags)
	}
}

// installTracker adopts tr as the engine's tracker and derives everything
// downstream of it: eval contexts (created once per engine), the base
// feature vector, and the fastMAE kernel mode.
func (e *engine) installTracker(tr acf.Tracker) {
	e.tracker = tr

	if e.ctxs == nil {
		threads := e.opt.Threads
		if threads < 1 {
			threads = 1
		}
		e.ctxs = make([]*evalCtx, threads)
		for i := range e.ctxs {
			e.ctxs[i] = e.newEvalCtx()
		}
		if threads > 1 {
			e.startWorkers()
		}
	}

	e.acfBuf = grow(e.acfBuf, e.tracker.Lags())
	e.tracker.ACFInto(e.acfBuf)
	e.base = append(e.base[:0], e.feature(e.acfBuf, e.ctxs[0])...)
	e.fastMAE = e.opt.Statistic == StatACF && len(e.opt.LagSubset) == 0 && e.opt.Measure == stats.MeasureMAE
	if e.fastMAE {
		for _, ctx := range e.ctxs {
			ctx.sc.SetBase(e.base)
		}
	}
}

// initImpacts computes the Alg. 2 initial impacts for the interior points
// in positions [lo, hi) of the point list, in parallel chunks when
// Threads > 1. Callable in slices: impacts of distinct points are
// independent, so chunked calls produce the same keys as one full call.
func (e *engine) initImpacts(lo, hi int) {
	if hi > lo {
		e.impactInto(e.points[lo:hi], e.keys[1+lo:1+hi])
	}
}

// armHeap heapifies the computed initial impacts.
func (e *engine) armHeap() {
	if e.heap == nil {
		e.heap = pheap.New(e.n, e.points, e.keys[:e.n])
	} else {
		e.heap.Reset(e.n, e.points, e.keys[:e.n])
	}
}

// newEvalCtx allocates one evaluation context sized for the engine's
// tracker and feature shape.
func (e *engine) newEvalCtx() *evalCtx {
	p := e.tracker.Lags()
	ctx := &evalCtx{sc: e.tracker.NewScratch()}
	featLen := p
	if e.sub != nil {
		featLen = len(e.sub)
	}
	ctx.featBuf = make([]float64, featLen)
	if e.opt.Statistic == StatPACF {
		ctx.pacf = make([]float64, p)
		ctx.phiPrev = make([]float64, p+1)
		ctx.phiCur = make([]float64, p+1)
	}
	return ctx
}

// close stops the persistent eval workers. The engine must not be used
// afterwards. Safe to call more than once.
func (e *engine) close() {
	if e.parTasks != nil {
		close(e.parTasks)
		e.parTasks = nil
	}
}

// feature maps a tracker ACF vector (position order) to the preserved
// statistic's feature vector, using only ctx-owned buffers. For PACF the
// Durbin-Levinson recursion is applied (O(L^2), paper §5.5); a LagSubset
// projects onto the selected lags in their user-given order.
func (e *engine) feature(acfVec []float64, ctx *evalCtx) []float64 {
	if e.opt.Statistic == StatPACF {
		src := acf.PACFFromACFInto(acfVec, ctx.pacf, ctx.phiPrev, ctx.phiCur)
		if e.sub == nil {
			return src
		}
		buf := ctx.featBuf[:len(e.sub)]
		for i, l := range e.sub {
			buf[i] = src[l-1]
		}
		return buf
	}
	if e.sub == nil {
		return acfVec
	}
	buf := ctx.featBuf[:len(e.sub)]
	for i, p := range e.subPos {
		buf[i] = acfVec[p]
	}
	return buf
}

// maxLag returns the largest lag in a subset.
func maxLag(sub []int) int {
	m := 0
	for _, l := range sub {
		if l > m {
			m = l
		}
	}
	return m
}

// uniqueSortedLags returns the sorted, deduplicated lag subset — the
// compact tracker's position order.
func uniqueSortedLags(sub []int) []int {
	out := append([]int(nil), sub...)
	sort.Ints(out)
	w := 0
	for i, l := range out {
		if i == 0 || l != out[w-1] {
			out[w] = l
			w++
		}
	}
	return out[:w]
}

// subsetPositions maps each user-ordered subset entry to its position in
// the sorted compact layout.
func subsetPositions(sub, sorted []int) []int {
	pos := make([]int, len(sub))
	for i, l := range sub {
		pos[i] = sort.SearchInts(sorted, l)
	}
	return pos
}

// gapDeltas computes the contiguous value changes caused by removing alive
// point p: every index strictly between p's alive neighbours l and r is
// re-interpolated on the straight segment l->r (paper Fig. 4). Returns the
// start index and the deltas written into ctx.deltas.
func (e *engine) gapDeltas(p int32, ctx *evalCtx) (int, []float64) {
	l, r := e.left[p], e.right[p]
	start := int(l) + 1
	m := int(r) - start
	if cap(ctx.deltas) < m {
		ctx.deltas = make([]float64, m)
	}
	d := ctx.deltas[:m]
	y0, y1 := e.cur[l], e.cur[r]
	span := float64(r - l)
	slope := (y1 - y0) / span
	for t := 0; t < m; t++ {
		interp := y0 + slope*float64(start+t-int(l))
		d[t] = interp - e.cur[start+t]
	}
	ctx.deltas = d
	return start, d
}

// impact returns D(S(X'_p), S(X)) — the deviation from the ORIGINAL
// statistic that committing the removal of p would produce (Alg. 1 checks
// the bound against the raw ACF P_L, so impacts are absolute deviations,
// not marginal changes). Steady-state evaluations perform no heap
// allocation.
func (e *engine) impact(p int32, ctx *evalCtx) float64 {
	start, d := e.gapDeltas(p, ctx)
	hyp := e.tracker.Hypothetical(e.cur, start, d, ctx.sc)
	var v float64
	if e.fastMAE {
		// The kernel accumulated sum |hyp_i - base_i| while evaluating;
		// dividing by the lag count is exactly stats.MAE(hyp, base).
		v = ctx.sc.DevSum() / float64(len(e.base))
	} else {
		feat := e.feature(hyp, ctx)
		v = e.opt.Measure.Eval(feat, e.base)
	}
	if math.IsNaN(v) {
		return math.Inf(1)
	}
	return v
}

// run removes points until a stop condition fires. It may be called again
// with looser conditions to resume; a runBudget return resumes exactly
// where it left off (the budgeted call performs the same operations in the
// same order as an unbudgeted one, so resumed runs are bit-identical to
// batch runs). Returns why it stopped and the number of work units spent —
// one unit per impact evaluation, the currency StreamEngine paces by.
func (e *engine) run(stop stopConditions) (runStop, int) {
	alive := e.n - e.removedCnt
	removedThisCall := 0
	units := 0
	for e.heap.Len() > 0 {
		if stop.targetRatio > 0 && float64(e.n) >= stop.targetRatio*float64(alive) {
			return runRatio, units
		}
		if stop.maxRemovals > 0 && removedThisCall >= stop.maxRemovals {
			return runBudget, units
		}
		if stop.maxUnits > 0 && units >= stop.maxUnits {
			return runBudget, units
		}
		p, key := e.heap.Pop()
		e.iterations++

		// Blocking leaves stale keys on far-away points; revalidate the
		// popped candidate so the bound check is exact. If its true impact
		// now exceeds the next candidate's key, push it back and try that
		// one instead (lazy revalidation; converges because keys become
		// exact on re-push and state does not change between pops).
		exact := e.impact(p, e.ctxs[0])
		units++
		if !e.opt.NoRevalidate && e.heap.Len() > 0 && exact > e.heap.PeekKey() && exact > key {
			e.heap.Push(p, exact)
			continue
		}
		if stop.epsilon > 0 && exact > stop.epsilon {
			// Even the least-impact candidate violates the bound: stop
			// (Alg. 1). Re-insert so a resumed run can reconsider it.
			e.heap.Push(p, exact)
			return runBound, units
		}
		e.remove(p, exact)
		units += len(e.neigh)
		alive--
		removedThisCall++
	}
	return runDone, units
}

// remove commits the removal of p: updates aggregates, reconstruction
// values, neighbour pointers, and re-heaps the blocking neighbourhood.
func (e *engine) remove(p int32, exactDev float64) {
	ctx := e.ctxs[0]
	start, d := e.gapDeltas(p, ctx)
	e.tracker.Commit(e.cur, start, d)
	for i, dv := range d {
		e.cur[start+i] += dv
	}
	l, r := e.left[p], e.right[p]
	e.right[l] = r
	e.left[r] = l
	e.removed[p] = true
	e.removedCnt++
	e.dev = exactDev
	e.reHeap(p)
}

// reHeap recomputes the impact of the h alive neighbours on each side of
// the removed point (paper §4.3 blocking; §4.4 fine-grained parallelism).
// The neighbour and key buffers persist across calls, so steady-state
// re-heaping allocates nothing.
func (e *engine) reHeap(p int32) {
	l, r := e.left[p], e.right[p]
	hops := e.hops
	if hops < 0 {
		hops = e.n // unbounded: update every remaining point
	}
	neigh := e.neigh[:0]
	for i, q := 0, l; i < hops && q > 0; i++ {
		neigh = append(neigh, q)
		q = e.left[q]
	}
	for i, q := 0, r; i < hops && int(q) < e.n-1; i++ {
		neigh = append(neigh, q)
		q = e.right[q]
	}
	e.neigh = neigh
	if len(neigh) == 0 {
		return
	}
	if cap(e.reKeys) < len(neigh) {
		e.reKeys = make([]float64, len(neigh))
	}
	keys := e.reKeys[:len(neigh)]
	e.impactInto(neigh, keys)
	for i, q := range neigh {
		e.heap.Fix(q, keys[i])
	}
}

// impactInto fills keys[i] = impact(points[i]). Small batches run on the
// calling goroutine; larger ones are chunked across the persistent eval
// workers, with the caller working chunk 0 itself.
func (e *engine) impactInto(points []int32, keys []float64) {
	t := len(e.ctxs)
	if t <= 1 || len(points) < 4*t {
		ctx := e.ctxs[0]
		for i, p := range points {
			keys[i] = e.impact(p, ctx)
		}
		return
	}
	e.parPoints, e.parKeys = points, keys
	chunk := (len(points) + t - 1) / t
	for w := 1; w < t; w++ {
		lo := w * chunk
		if lo >= len(points) {
			break
		}
		e.parWG.Add(1)
		e.parTasks <- parTask{w: w, lo: lo, hi: min(lo+chunk, len(points))}
	}
	ctx := e.ctxs[0]
	for i := 0; i < min(chunk, len(points)); i++ {
		keys[i] = e.impact(points[i], ctx)
	}
	e.parWG.Wait()
}

// startWorkers launches the persistent eval workers (one per extra
// context). They live until close.
func (e *engine) startWorkers() {
	e.parTasks = make(chan parTask)
	for w := 1; w < len(e.ctxs); w++ {
		go e.evalWorker()
	}
}

func (e *engine) evalWorker() {
	for t := range e.parTasks {
		points, keys := e.parPoints, e.parKeys
		ctx := e.ctxs[t.w]
		for i := t.lo; i < t.hi; i++ {
			keys[i] = e.impact(points[i], ctx)
		}
		e.parWG.Done()
	}
}

// result snapshots the retained points.
func (e *engine) result() *Result {
	pts := make([]series.Point, 0, e.n-e.removedCnt)
	for i := 0; i < e.n; i++ {
		if !e.removed[i] {
			pts = append(pts, series.Point{Index: i, Value: e.orig[i]})
		}
	}
	ir := &series.Irregular{N: e.n, Points: pts}
	return &Result{
		Compressed: ir,
		Deviation:  e.dev,
		Removed:    e.removedCnt,
		Iterations: e.iterations,
	}
}

// InitialImpacts returns the Alg. 2 initial ACF-impact of every point
// (endpoints +Inf), used by the Figure 3 skew study.
func InitialImpacts(xs []float64, opt Options) ([]float64, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	eng := newEngine(xs, opt)
	defer eng.close()
	out := make([]float64, len(xs))
	if len(xs) == 0 {
		return out, nil
	}
	out[0] = math.Inf(1)
	out[len(xs)-1] = math.Inf(1)
	for i := 1; i < len(xs)-1; i++ {
		out[i] = eng.heap.Key(int32(i))
	}
	return out, nil
}

// grow returns s resized to length n, reallocating only when the capacity
// is insufficient. Contents are unspecified; callers overwrite.
func grow[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}
