package core

import (
	"math"
	"sync"

	"repro/internal/acf"
	"repro/internal/pheap"
	"repro/internal/series"
)

// Compress runs the CAMEO algorithm (paper Algorithm 1) on xs and returns
// the retained points. The first and last points are always kept.
func Compress(xs []float64, opt Options) (*Result, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	if err := checkFinite(xs); err != nil {
		return nil, err
	}
	eng, err := newEngine(xs, opt)
	if err != nil {
		return nil, err
	}
	eng.run(stopConditions{
		epsilon:     opt.Epsilon,
		targetRatio: opt.TargetRatio,
	})
	return eng.result(), nil
}

// stopConditions bundles the halting rules of the three problem variants.
type stopConditions struct {
	epsilon     float64 // 0 = unbounded deviation (Definition 3)
	targetRatio float64 // 0 = no ratio stop
	maxRemovals int     // 0 = unlimited
}

// evalCtx is per-goroutine scratch for impact evaluation.
type evalCtx struct {
	sc      *acf.Scratch
	deltas  []float64
	featBuf []float64
}

// engine holds the mutable state of one CAMEO run. It is resumable: run may
// be called repeatedly with progressively looser stop conditions, which the
// coarse-grained parallelization exploits (paper §4.4).
type engine struct {
	opt  Options
	n    int
	cur  []float64 // current reconstruction values
	orig []float64 // original values (alive points always equal orig)

	left, right []int32 // alive-neighbour pointers (paper §4.3)
	removed     []bool

	tracker acf.Tracker
	base    []float64 // base feature vector S(X)
	heap    *pheap.Heap

	ctxs []*evalCtx // ctxs[0] is the main goroutine's

	dev        float64 // deviation of the committed state
	removedCnt int
	iterations int
	hops       int
}

// newEngine initializes state and builds the impact heap (paper Alg. 2).
func newEngine(xs []float64, opt Options) (*engine, error) {
	n := len(xs)
	e := &engine{
		opt:     opt,
		n:       n,
		cur:     append([]float64(nil), xs...),
		orig:    append([]float64(nil), xs...),
		left:    make([]int32, n),
		right:   make([]int32, n),
		removed: make([]bool, n),
		hops:    opt.BlockHops,
	}
	if e.hops == 0 {
		e.hops = defaultBlockHops(n)
	}
	if opt.AggWindow >= 2 {
		e.tracker = acf.NewWindowTracker(xs, opt.AggWindow, opt.AggFunc, opt.Lags)
	} else {
		e.tracker = acf.NewDirectTracker(xs, opt.Lags)
	}
	threads := opt.Threads
	if threads < 1 {
		threads = 1
	}
	e.ctxs = make([]*evalCtx, threads)
	for i := range e.ctxs {
		e.ctxs[i] = &evalCtx{
			sc:      e.tracker.NewScratch(),
			featBuf: make([]float64, opt.Lags),
		}
	}
	for i := 0; i < n; i++ {
		e.left[i] = int32(i - 1)
		e.right[i] = int32(i + 1)
	}
	e.base = e.feature(e.tracker.ACF(), make([]float64, opt.Lags))

	// Initial impacts for all interior points (Alg. 2), computed in
	// parallel chunks when Threads > 1; first and last points never enter
	// the heap (their impact is infinite).
	keys := make([]float64, n)
	points := make([]int32, 0, max(0, n-2))
	for i := 1; i < n-1; i++ {
		points = append(points, int32(i))
	}
	e.forEachParallel(points, func(ctx *evalCtx, p int32) {
		keys[p] = e.impact(p, ctx)
	})
	e.heap = pheap.New(n, points, keys)
	return e, nil
}

// feature maps an ACF vector to the preserved statistic's feature vector.
// For PACF the Durbin-Levinson recursion is applied (O(L^2), paper §5.5);
// a LagSubset projects the result onto the selected lags only — and, since
// the recursion is prefix-structured, it is truncated at the largest
// selected lag, which is the §5.5 speed remedy ("preserving specific lags
// to enhance execution speed").
func (e *engine) feature(acfVec, buf []float64) []float64 {
	sub := e.opt.LagSubset
	src := acfVec
	if e.opt.Statistic == StatPACF {
		if len(sub) > 0 {
			src = acf.PACFFromACF(acfVec[:maxLag(sub)])
		} else {
			src = acf.PACFFromACF(acfVec)
		}
	}
	if len(sub) > 0 {
		for i, l := range sub {
			buf[i] = src[l-1]
		}
		return buf[:len(sub)]
	}
	copy(buf, src)
	return buf[:len(src)]
}

// maxLag returns the largest lag in a subset.
func maxLag(sub []int) int {
	m := 0
	for _, l := range sub {
		if l > m {
			m = l
		}
	}
	return m
}

// gapDeltas computes the contiguous value changes caused by removing alive
// point p: every index strictly between p's alive neighbours l and r is
// re-interpolated on the straight segment l->r (paper Fig. 4). Returns the
// start index and the deltas written into ctx.deltas.
func (e *engine) gapDeltas(p int32, ctx *evalCtx) (int, []float64) {
	l, r := e.left[p], e.right[p]
	start := int(l) + 1
	m := int(r) - start
	if cap(ctx.deltas) < m {
		ctx.deltas = make([]float64, m)
	}
	d := ctx.deltas[:m]
	y0, y1 := e.cur[l], e.cur[r]
	span := float64(r - l)
	slope := (y1 - y0) / span
	for t := 0; t < m; t++ {
		interp := y0 + slope*float64(start+t-int(l))
		d[t] = interp - e.cur[start+t]
	}
	ctx.deltas = d
	return start, d
}

// impact returns D(S(X'_p), S(X)) — the deviation from the ORIGINAL
// statistic that committing the removal of p would produce (Alg. 1 checks
// the bound against the raw ACF P_L, so impacts are absolute deviations,
// not marginal changes).
func (e *engine) impact(p int32, ctx *evalCtx) float64 {
	start, d := e.gapDeltas(p, ctx)
	hyp := e.tracker.Hypothetical(e.cur, start, d, ctx.sc)
	feat := e.feature(hyp, ctx.featBuf)
	v := e.opt.Measure.Eval(feat, e.base)
	if math.IsNaN(v) {
		return math.Inf(1)
	}
	return v
}

// run removes points until a stop condition fires. It may be called again
// with looser conditions to resume.
func (e *engine) run(stop stopConditions) {
	alive := e.n - e.removedCnt
	removedThisCall := 0
	for e.heap.Len() > 0 {
		if stop.targetRatio > 0 && float64(e.n) >= stop.targetRatio*float64(alive) {
			return
		}
		if stop.maxRemovals > 0 && removedThisCall >= stop.maxRemovals {
			return
		}
		p, key := e.heap.Pop()
		e.iterations++

		// Blocking leaves stale keys on far-away points; revalidate the
		// popped candidate so the bound check is exact. If its true impact
		// now exceeds the next candidate's key, push it back and try that
		// one instead (lazy revalidation; converges because keys become
		// exact on re-push and state does not change between pops).
		exact := e.impact(p, e.ctxs[0])
		if !e.opt.NoRevalidate && e.heap.Len() > 0 && exact > e.heap.PeekKey() && exact > key {
			e.heap.Push(p, exact)
			continue
		}
		if stop.epsilon > 0 && exact > stop.epsilon {
			// Even the least-impact candidate violates the bound: stop
			// (Alg. 1). Re-insert so a resumed run can reconsider it.
			e.heap.Push(p, exact)
			return
		}
		e.remove(p, exact)
		alive--
		removedThisCall++
	}
}

// remove commits the removal of p: updates aggregates, reconstruction
// values, neighbour pointers, and re-heaps the blocking neighbourhood.
func (e *engine) remove(p int32, exactDev float64) {
	ctx := e.ctxs[0]
	start, d := e.gapDeltas(p, ctx)
	e.tracker.Commit(e.cur, start, d)
	for i, dv := range d {
		e.cur[start+i] += dv
	}
	l, r := e.left[p], e.right[p]
	e.right[l] = r
	e.left[r] = l
	e.removed[p] = true
	e.removedCnt++
	e.dev = exactDev
	e.reHeap(p)
}

// reHeap recomputes the impact of the h alive neighbours on each side of
// the removed point (paper §4.3 blocking; §4.4 fine-grained parallelism).
func (e *engine) reHeap(p int32) {
	l, r := e.left[p], e.right[p]
	hops := e.hops
	if hops < 0 {
		hops = e.n // unbounded: update every remaining point
	}
	neigh := make([]int32, 0, 2*hops)
	for i, q := 0, l; i < hops && q > 0; i++ {
		neigh = append(neigh, q)
		q = e.left[q]
	}
	for i, q := 0, r; i < hops && int(q) < e.n-1; i++ {
		neigh = append(neigh, q)
		q = e.right[q]
	}
	if len(neigh) == 0 {
		return
	}
	if len(e.ctxs) > 1 && len(neigh) >= 4*len(e.ctxs) {
		keys := make([]float64, len(neigh))
		e.forEachParallelIdx(neigh, func(ctx *evalCtx, i int) {
			keys[i] = e.impact(neigh[i], ctx)
		})
		for i, q := range neigh {
			e.heap.Fix(q, keys[i])
		}
		return
	}
	for _, q := range neigh {
		e.heap.Fix(q, e.impact(q, e.ctxs[0]))
	}
}

// forEachParallel runs fn over the points, chunked across the engine's
// evaluation contexts. Heap mutation must happen outside fn.
func (e *engine) forEachParallel(points []int32, fn func(ctx *evalCtx, p int32)) {
	e.forEachParallelIdx(points, func(ctx *evalCtx, i int) { fn(ctx, points[i]) })
}

func (e *engine) forEachParallelIdx(points []int32, fn func(ctx *evalCtx, i int)) {
	T := len(e.ctxs)
	if T <= 1 || len(points) < 2*T {
		for i := range points {
			fn(e.ctxs[0], i)
		}
		return
	}
	var wg sync.WaitGroup
	chunk := (len(points) + T - 1) / T
	for w := 0; w < T; w++ {
		lo := w * chunk
		if lo >= len(points) {
			break
		}
		hi := lo + chunk
		if hi > len(points) {
			hi = len(points)
		}
		wg.Add(1)
		go func(ctx *evalCtx, lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				fn(ctx, i)
			}
		}(e.ctxs[w], lo, hi)
	}
	wg.Wait()
}

// result snapshots the retained points.
func (e *engine) result() *Result {
	pts := make([]series.Point, 0, e.n-e.removedCnt)
	for i := 0; i < e.n; i++ {
		if !e.removed[i] {
			pts = append(pts, series.Point{Index: i, Value: e.orig[i]})
		}
	}
	ir := &series.Irregular{N: e.n, Points: pts}
	return &Result{
		Compressed: ir,
		Deviation:  e.dev,
		Removed:    e.removedCnt,
		Iterations: e.iterations,
	}
}

// InitialImpacts returns the Alg. 2 initial ACF-impact of every point
// (endpoints +Inf), used by the Figure 3 skew study.
func InitialImpacts(xs []float64, opt Options) ([]float64, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	eng, err := newEngine(xs, opt)
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(xs))
	if len(xs) == 0 {
		return out, nil
	}
	out[0] = math.Inf(1)
	out[len(xs)-1] = math.Inf(1)
	for i := 1; i < len(xs)-1; i++ {
		out[i] = eng.heap.Key(int32(i))
	}
	return out, nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
