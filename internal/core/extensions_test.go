package core

import (
	"math"
	"testing"

	"repro/internal/acf"
	"repro/internal/stats"
)

func TestLagSubsetValidation(t *testing.T) {
	xs := seasonalSeries(100, 10, 0.1, 31)
	if _, err := Compress(xs, Options{Lags: 10, Epsilon: 0.1, LagSubset: []int{0}}); err == nil {
		t.Fatal("expected error for lag 0")
	}
	if _, err := Compress(xs, Options{Lags: 10, Epsilon: 0.1, LagSubset: []int{11}}); err == nil {
		t.Fatal("expected error for lag > Lags")
	}
}

func TestLagSubsetBoundHolds(t *testing.T) {
	xs := seasonalSeries(480, 24, 0.8, 32)
	subset := []int{1, 12, 24} // seasonal lags only
	opt := Options{Lags: 24, Epsilon: 0.01, LagSubset: subset}
	res, err := Compress(xs, opt)
	if err != nil {
		t.Fatal(err)
	}
	// Verify the bound on exactly the projected lags.
	base := acf.ACF(xs, 24)
	recon := acf.ACF(res.Compressed.Decompress(), 24)
	var a, b []float64
	for _, l := range subset {
		a = append(a, base[l-1])
		b = append(b, recon[l-1])
	}
	if dev := stats.MAE(a, b); dev > 0.01+1e-9 {
		t.Fatalf("subset deviation %v exceeds bound", dev)
	}
	// And via the exported helper, which must project identically.
	dev, err := Deviation(xs, res.Compressed, opt)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(dev-res.Deviation) > 1e-6 {
		t.Fatalf("Deviation %v != reported %v", dev, res.Deviation)
	}
}

func TestLagSubsetCompressesMoreThanFull(t *testing.T) {
	// Under the Chebyshev measure the subset constraint is strictly weaker
	// (max over 3 lags <= max over all 24), so CR should not drop much.
	// (Under MAE the subset is NOT weaker: the mean is over fewer, typically
	// harder lags — that is the fidelity/speed trade-off of §5.5.)
	xs := seasonalSeries(600, 24, 0.8, 33)
	full, err := Compress(xs, Options{Lags: 24, Epsilon: 0.01, Measure: stats.MeasureChebyshev})
	if err != nil {
		t.Fatal(err)
	}
	sub, err := Compress(xs, Options{
		Lags: 24, Epsilon: 0.01, Measure: stats.MeasureChebyshev,
		LagSubset: []int{1, 12, 24},
	})
	if err != nil {
		t.Fatal(err)
	}
	if sub.CompressionRatio() < full.CompressionRatio()*0.9 {
		t.Fatalf("subset CR %v < full CR %v", sub.CompressionRatio(), full.CompressionRatio())
	}
}

func TestNoRevalidateStillBounded(t *testing.T) {
	xs := seasonalSeries(400, 24, 0.8, 34)
	opt := Options{Lags: 24, Epsilon: 0.02, NoRevalidate: true, BlockHops: 1}
	res, err := Compress(xs, opt)
	if err != nil {
		t.Fatal(err)
	}
	dev, err := Deviation(xs, res.Compressed, opt)
	if err != nil {
		t.Fatal(err)
	}
	if dev > 0.02+1e-9 {
		t.Fatalf("ablated run deviation %v exceeds bound", dev)
	}
}

func TestCompressMultiAllChannelsBounded(t *testing.T) {
	channels := [][]float64{
		seasonalSeries(300, 24, 0.5, 35),
		seasonalSeries(300, 12, 0.8, 36),
		seasonalSeries(300, 6, 0.3, 37),
	}
	opt := Options{Lags: 24, Epsilon: 0.02}
	results, err := CompressMulti(channels, opt, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("%d results", len(results))
	}
	for i, res := range results {
		dev, err := Deviation(channels[i], res.Compressed, opt)
		if err != nil {
			t.Fatal(err)
		}
		if dev > 0.02+1e-9 {
			t.Fatalf("channel %d deviation %v exceeds bound", i, dev)
		}
	}
}

func TestCompressMultiMatchesSequential(t *testing.T) {
	channels := [][]float64{
		seasonalSeries(200, 20, 0.5, 38),
		seasonalSeries(200, 20, 0.5, 39),
	}
	opt := Options{Lags: 20, Epsilon: 0.02}
	par, err := CompressMulti(channels, opt, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i, ch := range channels {
		seq, err := Compress(ch, opt)
		if err != nil {
			t.Fatal(err)
		}
		if len(seq.Compressed.Points) != len(par[i].Compressed.Points) {
			t.Fatalf("channel %d differs between parallel and sequential", i)
		}
	}
}

func TestCompressMultiValidation(t *testing.T) {
	if _, err := CompressMulti([][]float64{{1, 2, 3}}, Options{}, 1); err == nil {
		t.Fatal("expected validation error")
	}
	out, err := CompressMulti(nil, Options{Lags: 3, Epsilon: 0.1}, 1)
	if err != nil || len(out) != 0 {
		t.Fatalf("empty input: %v, %d", err, len(out))
	}
}
