package core

import (
	"fmt"
	"sync"
)

// CompressMulti compresses each channel of a multivariate series
// independently under the same options — the paper's multivariate
// extension (§1: "our framework is extensible to multivariate time
// series"): every channel's ACF/PACF deviation is bounded by Epsilon on its
// own statistic. Channels run concurrently on up to workers goroutines
// (workers < 2 runs sequentially).
func CompressMulti(channels [][]float64, opt Options, workers int) ([]*Result, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	results := make([]*Result, len(channels))
	errs := make([]error, len(channels))
	if workers < 1 {
		workers = 1
	}
	if workers > len(channels) {
		workers = len(channels)
	}
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for i, ch := range channels {
		wg.Add(1)
		go func(i int, ch []float64) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			results[i], errs[i] = Compress(ch, opt)
		}(i, ch)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("core: channel %d: %w", i, err)
		}
	}
	return results, nil
}
