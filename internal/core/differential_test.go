package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/acf"
	"repro/internal/pheap"
	"repro/internal/series"
	"repro/internal/stats"
)

// referenceCompress reimplements the pre-optimization CAMEO pipeline (PR 2
// internal/core/cameo.go): a dense full-L tracker regardless of LagSubset,
// allocating feature projection (PACFFromACF + copy), per-candidate
// hypothetical evaluation through the generic measure, and the same greedy
// loop with lazy revalidation and blocking. Together with the acf-level
// reference test (which pins the aggregate kernel itself bit-for-bit
// against the old branchy update), it proves the rebuilt engine — compact
// trackers, fused MAE path, pooled buffers, persistent workers — retains
// exactly the same points.
type refEngine struct {
	opt         Options
	n           int
	cur, orig   []float64
	left, right []int32
	removed     []bool
	tracker     acf.Tracker
	base        []float64
	heap        *pheap.Heap
	sc          *acf.Scratch
	deltas      []float64
	featBuf     []float64
	dev         float64
	removedCnt  int
	iterations  int
	hops        int
}

func refFeature(opt Options, acfVec, buf []float64) []float64 {
	sub := opt.LagSubset
	src := acfVec
	if opt.Statistic == StatPACF {
		if len(sub) > 0 {
			src = acf.PACFFromACF(acfVec[:maxLag(sub)])
		} else {
			src = acf.PACFFromACF(acfVec)
		}
	}
	if len(sub) > 0 {
		for i, l := range sub {
			buf[i] = src[l-1]
		}
		return buf[:len(sub)]
	}
	copy(buf, src)
	return buf[:len(src)]
}

func newRefEngine(xs []float64, opt Options) *refEngine {
	n := len(xs)
	e := &refEngine{
		opt:     opt,
		n:       n,
		cur:     append([]float64(nil), xs...),
		orig:    append([]float64(nil), xs...),
		left:    make([]int32, n),
		right:   make([]int32, n),
		removed: make([]bool, n),
		hops:    opt.BlockHops,
		featBuf: make([]float64, opt.Lags),
	}
	if e.hops == 0 {
		e.hops = defaultBlockHops(n)
	}
	if opt.AggWindow >= 2 {
		e.tracker = acf.NewWindowTracker(xs, opt.AggWindow, opt.AggFunc, opt.Lags)
	} else {
		e.tracker = acf.NewDirectTracker(xs, opt.Lags)
	}
	e.sc = e.tracker.NewScratch()
	for i := 0; i < n; i++ {
		e.left[i] = int32(i - 1)
		e.right[i] = int32(i + 1)
	}
	e.base = append([]float64(nil), refFeature(opt, e.tracker.ACF(), make([]float64, opt.Lags))...)
	keys := make([]float64, n)
	points := make([]int32, 0, max(0, n-2))
	for i := 1; i < n-1; i++ {
		points = append(points, int32(i))
	}
	for _, p := range points {
		keys[p] = e.impact(p)
	}
	e.heap = pheap.New(n, points, keys)
	return e
}

func (e *refEngine) gapDeltas(p int32) (int, []float64) {
	l, r := e.left[p], e.right[p]
	start := int(l) + 1
	m := int(r) - start
	if cap(e.deltas) < m {
		e.deltas = make([]float64, m)
	}
	d := e.deltas[:m]
	y0, y1 := e.cur[l], e.cur[r]
	slope := (y1 - y0) / float64(r-l)
	for t := 0; t < m; t++ {
		d[t] = y0 + slope*float64(start+t-int(l)) - e.cur[start+t]
	}
	e.deltas = d
	return start, d
}

func (e *refEngine) impact(p int32) float64 {
	start, d := e.gapDeltas(p)
	hyp := e.tracker.Hypothetical(e.cur, start, d, e.sc)
	feat := refFeature(e.opt, hyp, e.featBuf)
	v := e.opt.Measure.Eval(feat, e.base)
	if math.IsNaN(v) {
		return math.Inf(1)
	}
	return v
}

func (e *refEngine) run(epsilon, targetRatio float64) {
	alive := e.n - e.removedCnt
	for e.heap.Len() > 0 {
		if targetRatio > 0 && float64(e.n) >= targetRatio*float64(alive) {
			return
		}
		p, key := e.heap.Pop()
		e.iterations++
		exact := e.impact(p)
		if !e.opt.NoRevalidate && e.heap.Len() > 0 && exact > e.heap.PeekKey() && exact > key {
			e.heap.Push(p, exact)
			continue
		}
		if epsilon > 0 && exact > epsilon {
			e.heap.Push(p, exact)
			return
		}
		start, d := e.gapDeltas(p)
		e.tracker.Commit(e.cur, start, d)
		for i, dv := range d {
			e.cur[start+i] += dv
		}
		l, r := e.left[p], e.right[p]
		e.right[l] = r
		e.left[r] = l
		e.removed[p] = true
		e.removedCnt++
		e.dev = exact
		e.reHeap(p)
		alive--
	}
}

func (e *refEngine) reHeap(p int32) {
	l, r := e.left[p], e.right[p]
	hops := e.hops
	if hops < 0 {
		hops = e.n
	}
	for i, q := 0, l; i < hops && q > 0; i++ {
		e.heap.Fix(q, e.impact(q))
		q = e.left[q]
	}
	for i, q := 0, r; i < hops && int(q) < e.n-1; i++ {
		e.heap.Fix(q, e.impact(q))
		q = e.right[q]
	}
}

func referenceCompress(xs []float64, opt Options) *Result {
	e := newRefEngine(xs, opt)
	e.run(opt.Epsilon, opt.TargetRatio)
	pts := make([]series.Point, 0, e.n-e.removedCnt)
	for i := 0; i < e.n; i++ {
		if !e.removed[i] {
			pts = append(pts, series.Point{Index: i, Value: e.orig[i]})
		}
	}
	return &Result{
		Compressed: &series.Irregular{N: e.n, Points: pts},
		Deviation:  e.dev,
		Removed:    e.removedCnt,
		Iterations: e.iterations,
	}
}

func diffSeries(kind string, n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	xs := make([]float64, n)
	for i := range xs {
		switch kind {
		case "random":
			xs[i] = rng.NormFloat64() * 10
		case "seasonal":
			xs[i] = 10 + 5*math.Sin(2*math.Pi*float64(i)/24) + 0.5*rng.NormFloat64()
		default: // constant
			xs[i] = 7
		}
	}
	return xs
}

// TestOptimizedMatchesReference is the differential acceptance test: the
// optimized hot path must retain bit-identical points (same indices, same
// values, same deviation, same iteration count) as the pre-optimization
// pipeline across statistics, tracker shapes, and lag-subset
// configurations, on seeded random, seasonal, and constant series.
func TestOptimizedMatchesReference(t *testing.T) {
	configs := []struct {
		name string
		opt  Options
	}{
		{"acf-eps", Options{Lags: 16, Epsilon: 0.02}},
		{"acf-ratio", Options{Lags: 16, TargetRatio: 6}},
		{"acf-subset", Options{Lags: 24, Epsilon: 0.05, LagSubset: []int{1, 12, 24}}},
		{"acf-subset-unordered", Options{Lags: 24, Epsilon: 0.05, LagSubset: []int{24, 1, 12, 12}}},
		{"pacf-eps", Options{Lags: 10, Epsilon: 0.05, Statistic: StatPACF}},
		{"pacf-subset", Options{Lags: 16, Epsilon: 0.05, Statistic: StatPACF, LagSubset: []int{2, 8}}},
		{"window-mean", Options{Lags: 6, Epsilon: 0.02, AggWindow: 5, AggFunc: series.AggMean}},
		{"window-max", Options{Lags: 6, Epsilon: 0.05, AggWindow: 5, AggFunc: series.AggMax}},
		{"window-subset", Options{Lags: 6, Epsilon: 0.05, AggWindow: 5, AggFunc: series.AggMean, LagSubset: []int{2, 6}}},
		{"chebyshev", Options{Lags: 16, Epsilon: 0.05, Measure: stats.MeasureChebyshev}},
		{"no-revalidate", Options{Lags: 16, Epsilon: 0.02, NoRevalidate: true}},
		{"unblocked", Options{Lags: 12, TargetRatio: 5, BlockHops: -1}},
	}
	for _, kind := range []string{"random", "seasonal", "constant"} {
		for _, cfg := range configs {
			xs := diffSeries(kind, 700, 42)
			got, err := Compress(xs, cfg.opt)
			if err != nil {
				t.Fatalf("%s/%s: %v", kind, cfg.name, err)
			}
			want := referenceCompress(xs, cfg.opt)
			if got.Removed != want.Removed || got.Iterations != want.Iterations {
				t.Fatalf("%s/%s: removed/iterations %d/%d, reference %d/%d",
					kind, cfg.name, got.Removed, got.Iterations, want.Removed, want.Iterations)
			}
			if math.Float64bits(got.Deviation) != math.Float64bits(want.Deviation) {
				t.Fatalf("%s/%s: deviation %x, reference %x",
					kind, cfg.name, math.Float64bits(got.Deviation), math.Float64bits(want.Deviation))
			}
			if len(got.Compressed.Points) != len(want.Compressed.Points) {
				t.Fatalf("%s/%s: %d points, reference %d",
					kind, cfg.name, len(got.Compressed.Points), len(want.Compressed.Points))
			}
			for i, p := range got.Compressed.Points {
				q := want.Compressed.Points[i]
				if p.Index != q.Index || math.Float64bits(p.Value) != math.Float64bits(q.Value) {
					t.Fatalf("%s/%s: point %d = (%d,%x), reference (%d,%x)",
						kind, cfg.name, i, p.Index, math.Float64bits(p.Value), q.Index, math.Float64bits(q.Value))
				}
			}
		}
	}
}

// TestCompressorMatchesCompress proves engine pooling is observation-free:
// a reused Compressor yields bit-identical results to fresh Compress calls,
// including across different block lengths.
func TestCompressorMatchesCompress(t *testing.T) {
	opt := Options{Lags: 12, Epsilon: 0.05}
	cmp, err := NewCompressor(opt)
	if err != nil {
		t.Fatal(err)
	}
	defer cmp.Close()
	for i, n := range []int{300, 700, 300, 128, 700} {
		xs := diffSeries("seasonal", n, int64(i+1))
		got, err := cmp.Compress(xs)
		if err != nil {
			t.Fatal(err)
		}
		want, err := Compress(xs, opt)
		if err != nil {
			t.Fatal(err)
		}
		if got.Removed != want.Removed || len(got.Compressed.Points) != len(want.Compressed.Points) ||
			math.Float64bits(got.Deviation) != math.Float64bits(want.Deviation) {
			t.Fatalf("block %d (n=%d): pooled result differs from fresh Compress", i, n)
		}
		for j, p := range got.Compressed.Points {
			q := want.Compressed.Points[j]
			if p.Index != q.Index || math.Float64bits(p.Value) != math.Float64bits(q.Value) {
				t.Fatalf("block %d: point %d differs", i, j)
			}
		}
	}
}

// TestThreadedMatchesSerial pins the persistent-worker path to the serial
// one: parallel impact evaluation must not change results.
func TestThreadedMatchesSerial(t *testing.T) {
	xs := diffSeries("seasonal", 900, 3)
	serial, err := Compress(xs, Options{Lags: 16, Epsilon: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	threaded, err := Compress(xs, Options{Lags: 16, Epsilon: 0.02, Threads: 4})
	if err != nil {
		t.Fatal(err)
	}
	if serial.Removed != threaded.Removed || serial.Iterations != threaded.Iterations {
		t.Fatalf("threaded run diverges: removed %d/%d iterations %d/%d",
			threaded.Removed, serial.Removed, threaded.Iterations, serial.Iterations)
	}
	for i, p := range serial.Compressed.Points {
		q := threaded.Compressed.Points[i]
		if p.Index != q.Index {
			t.Fatalf("point %d differs", i)
		}
	}
}

// TestImpactEvalZeroAllocs locks in the headline property: steady-state
// impact evaluation — gap interpolation, hypothetical ACF, feature
// projection, deviation measure — performs zero heap allocations for the
// direct tracker, and for PACF once the Durbin-Levinson scratch is warm.
func TestImpactEvalZeroAllocs(t *testing.T) {
	for _, tc := range []struct {
		name string
		opt  Options
	}{
		{"acf-direct", Options{Lags: 48, Epsilon: 0.01}},
		{"acf-subset", Options{Lags: 48, Epsilon: 0.01, LagSubset: []int{1, 24, 48}}},
		{"pacf", Options{Lags: 24, Epsilon: 0.01, Statistic: StatPACF}},
		{"window", Options{Lags: 8, Epsilon: 0.01, AggWindow: 6, AggFunc: series.AggMean}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			xs := diffSeries("seasonal", 2000, 9)
			eng := newEngine(xs, tc.opt)
			defer eng.close()
			ctx := eng.ctxs[0]
			// Warm the window-delta buffer once (it grows on first use).
			eng.impact(1000, ctx)
			if n := testing.AllocsPerRun(100, func() {
				eng.impact(1000, ctx)
			}); n != 0 {
				t.Fatalf("impact allocates %v per run, want 0", n)
			}
		})
	}
}
