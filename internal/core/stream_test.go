package core

import (
	"math"
	"testing"

	"repro/internal/acf"
	"repro/internal/stats"
)

func TestStreamCompressorValidatesBlockSize(t *testing.T) {
	if _, err := NewStreamCompressor(Options{Lags: 24, Epsilon: 0.01}, 50); err == nil {
		t.Fatal("expected error for too-small block")
	}
	if _, err := NewStreamCompressor(Options{}, 1000); err == nil {
		t.Fatal("expected error for invalid options")
	}
	if _, err := NewStreamCompressor(Options{Lags: 24, Epsilon: 0.01, AggWindow: 4, AggFunc: 0}, 300); err == nil {
		t.Fatal("expected error for too-small aggregated block")
	}
}

func TestStreamMatchesBlockwiseBatch(t *testing.T) {
	xs := seasonalSeries(1000, 24, 0.5, 41)
	opt := Options{Lags: 24, Epsilon: 0.02}
	sc, err := NewStreamCompressor(opt, 250)
	if err != nil {
		t.Fatal(err)
	}
	// Push in awkward chunk sizes.
	for i := 0; i < len(xs); i += 37 {
		end := i + 37
		if end > len(xs) {
			end = len(xs)
		}
		if err := sc.Push(xs[i:end]...); err != nil {
			t.Fatal(err)
		}
	}
	res, err := sc.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if res.Compressed.N != len(xs) {
		t.Fatalf("stream N = %d", res.Compressed.N)
	}
	// Per-block guarantee: every 250-point block's ACF deviation is bounded.
	recon := res.Compressed.Decompress()
	for b := 0; b+250 <= len(xs); b += 250 {
		orig := acf.ACF(xs[b:b+250], 24)
		got := acf.ACF(recon[b:b+250], 24)
		if dev := stats.MAE(orig, got); dev > 0.02+1e-9 {
			t.Fatalf("block at %d deviates %v", b, dev)
		}
	}
	if res.CompressionRatio() <= 1.5 {
		t.Fatalf("stream CR = %v", res.CompressionRatio())
	}
}

func TestStreamFlushShortTailVerbatim(t *testing.T) {
	opt := Options{Lags: 4, Epsilon: 0.05}
	sc, err := NewStreamCompressor(opt, 64)
	if err != nil {
		t.Fatal(err)
	}
	if err := sc.Push(1, 2, 3); err != nil { // far below 4*Lags
		t.Fatal(err)
	}
	res, err := sc.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if res.Compressed.N != 3 || res.Compressed.Len() != 3 {
		t.Fatalf("short tail not verbatim: N=%d len=%d", res.Compressed.N, res.Compressed.Len())
	}
}

func TestStreamReusableAfterFlush(t *testing.T) {
	xs := seasonalSeries(600, 24, 0.3, 42)
	opt := Options{Lags: 24, Epsilon: 0.05}
	sc, err := NewStreamCompressor(opt, 200)
	if err != nil {
		t.Fatal(err)
	}
	if err := sc.Push(xs[:300]...); err != nil {
		t.Fatal(err)
	}
	first, err := sc.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if err := sc.Push(xs[300:]...); err != nil {
		t.Fatal(err)
	}
	second, err := sc.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if first.Compressed.N != 300 || second.Compressed.N != 300 {
		t.Fatalf("reuse broken: N %d / %d", first.Compressed.N, second.Compressed.N)
	}
}

func TestStreamRejectsNonFinite(t *testing.T) {
	sc, err := NewStreamCompressor(Options{Lags: 4, Epsilon: 0.05}, 64)
	if err != nil {
		t.Fatal(err)
	}
	block := make([]float64, 64)
	block[10] = math.NaN()
	if err := sc.Push(block...); err == nil {
		t.Fatal("expected non-finite error")
	}
	// Subsequent calls keep reporting the sticky error.
	if err := sc.Push(1); err == nil {
		t.Fatal("expected sticky error")
	}
	if _, err := sc.Flush(); err == nil {
		t.Fatal("expected sticky error on flush")
	}
}

func TestCompressRejectsNonFinite(t *testing.T) {
	xs := seasonalSeries(100, 10, 0.1, 43)
	xs[50] = math.Inf(1)
	if _, err := Compress(xs, Options{Lags: 10, Epsilon: 0.01}); err == nil {
		t.Fatal("expected error for Inf input")
	}
	xs[50] = math.NaN()
	if _, err := Compress(xs, Options{Lags: 10, Epsilon: 0.01}); err == nil {
		t.Fatal("expected error for NaN input")
	}
}

// TestStreamSmallPushesMatchBulkPush drives the offset-cursor consumption
// path: one value per Push must yield exactly the result of a single bulk
// Push, across many block boundaries and buffer compactions.
func TestStreamSmallPushesMatchBulkPush(t *testing.T) {
	xs := seasonalSeries(2100, 24, 0.5, 43)
	opt := Options{Lags: 24, Epsilon: 0.02}

	small, err := NewStreamCompressor(opt, 100)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range xs {
		if err := small.Push(v); err != nil {
			t.Fatal(err)
		}
	}
	resSmall, err := small.Flush()
	if err != nil {
		t.Fatal(err)
	}

	bulk, err := NewStreamCompressor(opt, 100)
	if err != nil {
		t.Fatal(err)
	}
	if err := bulk.Push(xs...); err != nil {
		t.Fatal(err)
	}
	resBulk, err := bulk.Flush()
	if err != nil {
		t.Fatal(err)
	}

	if resSmall.Compressed.N != resBulk.Compressed.N {
		t.Fatalf("N: small %d, bulk %d", resSmall.Compressed.N, resBulk.Compressed.N)
	}
	if len(resSmall.Compressed.Points) != len(resBulk.Compressed.Points) {
		t.Fatalf("points: small %d, bulk %d", len(resSmall.Compressed.Points), len(resBulk.Compressed.Points))
	}
	for i, p := range resSmall.Compressed.Points {
		q := resBulk.Compressed.Points[i]
		if p != q {
			t.Fatalf("point %d: small %+v, bulk %+v", i, p, q)
		}
	}
}

// BenchmarkStreamSmallPushes measures per-value Push cost over a long
// stream (the O(n^2) compaction regression would dominate this).
func BenchmarkStreamSmallPushes(b *testing.B) {
	xs := seasonalSeries(100, 24, 0.5, 44)
	opt := Options{Lags: 24, Epsilon: 0.05}
	sc, err := NewStreamCompressor(opt, 4096)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sc.Push(xs[i%len(xs)]); err != nil {
			b.Fatal(err)
		}
	}
}
