package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/acf"
	"repro/internal/series"
	"repro/internal/stats"
)

func seasonalSeries(n, period int, noise float64, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = 10 + 5*math.Sin(2*math.Pi*float64(i)/float64(period)) + noise*rng.NormFloat64()
	}
	return xs
}

func TestCompressValidatesOptions(t *testing.T) {
	xs := seasonalSeries(100, 10, 0.1, 1)
	cases := []Options{
		{},                                     // no lags
		{Lags: 5},                              // no stop condition
		{Lags: 5, Epsilon: -1},                 // negative epsilon
		{Lags: 5, TargetRatio: 0.5},            // ratio < 1
		{Lags: 5, Epsilon: 0.1, AggWindow: 1},  // invalid window
		{Lags: 5, Epsilon: 0.1, AggWindow: -3}, // negative window
		{Lags: 5, Epsilon: 0.1, Statistic: Statistic(9)},
	}
	for i, opt := range cases {
		if _, err := Compress(xs, opt); err == nil {
			t.Errorf("case %d: expected validation error for %+v", i, opt)
		}
	}
}

func TestCompressKeepsEndpoints(t *testing.T) {
	xs := seasonalSeries(200, 24, 0.5, 2)
	res, err := Compress(xs, Options{Lags: 24, Epsilon: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	pts := res.Compressed.Points
	if pts[0].Index != 0 || pts[len(pts)-1].Index != len(xs)-1 {
		t.Fatalf("endpoints not preserved: first %d last %d", pts[0].Index, pts[len(pts)-1].Index)
	}
}

func TestCompressRespectsEpsilonBound(t *testing.T) {
	xs := seasonalSeries(500, 24, 1.0, 3)
	for _, eps := range []float64{0.001, 0.01, 0.05} {
		opt := Options{Lags: 24, Epsilon: eps}
		res, err := Compress(xs, opt)
		if err != nil {
			t.Fatal(err)
		}
		// The reported deviation must respect the bound...
		if res.Deviation > eps {
			t.Fatalf("eps=%v: reported deviation %v exceeds bound", eps, res.Deviation)
		}
		// ...and so must the exact deviation recomputed from scratch.
		dev, err := Deviation(xs, res.Compressed, opt)
		if err != nil {
			t.Fatal(err)
		}
		if dev > eps+1e-9 {
			t.Fatalf("eps=%v: exact deviation %v exceeds bound", eps, dev)
		}
	}
}

func TestCompressLargerEpsilonCompressesMore(t *testing.T) {
	xs := seasonalSeries(600, 24, 0.5, 4)
	small, err := Compress(xs, Options{Lags: 24, Epsilon: 0.005})
	if err != nil {
		t.Fatal(err)
	}
	large, err := Compress(xs, Options{Lags: 24, Epsilon: 0.08})
	if err != nil {
		t.Fatal(err)
	}
	if large.CompressionRatio() < small.CompressionRatio() {
		t.Fatalf("CR(eps=0.08)=%v < CR(eps=0.005)=%v", large.CompressionRatio(), small.CompressionRatio())
	}
}

func TestCompressSmoothSeriesCompressesWell(t *testing.T) {
	// A pure noiseless sine is almost perfectly linear between close points:
	// CAMEO should remove a large fraction at a small ACF budget.
	xs := seasonalSeries(480, 48, 0, 5)
	res, err := Compress(xs, Options{Lags: 48, Epsilon: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if res.CompressionRatio() < 3 {
		t.Fatalf("CR = %v, want >= 3 on a noiseless sine", res.CompressionRatio())
	}
}

func TestCompressTargetRatioMode(t *testing.T) {
	xs := seasonalSeries(400, 20, 0.5, 6)
	res, err := Compress(xs, Options{Lags: 20, TargetRatio: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.CompressionRatio() < 4 {
		t.Fatalf("CR = %v, want >= 4", res.CompressionRatio())
	}
	// Should not wildly overshoot: one removal past the threshold at most.
	alive := len(res.Compressed.Points)
	if float64(len(xs))/float64(alive+1) >= 4.05 {
		t.Fatalf("overshot the target ratio: alive=%d", alive)
	}
}

func TestCompressEpsilonPlusRatioCap(t *testing.T) {
	// Table 3 setup: bound + halt at CR 10.
	xs := seasonalSeries(1000, 48, 0.2, 7)
	res, err := Compress(xs, Options{Lags: 48, Epsilon: 0.5, TargetRatio: 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.CompressionRatio() > 10.5 {
		t.Fatalf("ratio cap ignored: CR = %v", res.CompressionRatio())
	}
	if res.Deviation > 0.5 {
		t.Fatalf("bound ignored: dev = %v", res.Deviation)
	}
}

func TestCompressTinySeries(t *testing.T) {
	for _, xs := range [][]float64{{}, {1}, {1, 2}} {
		res, err := Compress(xs, Options{Lags: 3, Epsilon: 0.1})
		if err != nil {
			t.Fatal(err)
		}
		if res.Removed != 0 {
			t.Fatalf("removed %d points from len-%d series", res.Removed, len(xs))
		}
	}
}

func TestCompressConstantSeries(t *testing.T) {
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = 7
	}
	res, err := Compress(xs, Options{Lags: 5, Epsilon: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	// A constant series has zero ACF everywhere; every removal has zero
	// impact, so everything but the endpoints should go.
	if len(res.Compressed.Points) != 2 {
		t.Fatalf("constant series retained %d points, want 2", len(res.Compressed.Points))
	}
	recon := res.Compressed.Decompress()
	for _, v := range recon {
		if v != 7 {
			t.Fatalf("reconstruction = %v, want 7", v)
		}
	}
}

func TestCompressPACFMode(t *testing.T) {
	xs := seasonalSeries(300, 12, 0.5, 8)
	opt := Options{Lags: 12, Epsilon: 0.02, Statistic: StatPACF}
	res, err := Compress(xs, opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Removed == 0 {
		t.Fatal("PACF mode removed nothing")
	}
	// Verify the PACF deviation bound exactly.
	basePACF := acf.PACF(xs, 12)
	reconPACF := acf.PACF(res.Compressed.Decompress(), 12)
	if dev := stats.MAE(basePACF, reconPACF); dev > 0.02+1e-9 {
		t.Fatalf("PACF deviation %v exceeds bound", dev)
	}
}

func TestCompressWindowAggregateMode(t *testing.T) {
	xs := seasonalSeries(960, 96, 0.5, 9)
	opt := Options{Lags: 8, Epsilon: 0.01, AggWindow: 12, AggFunc: series.AggMean}
	res, err := Compress(xs, opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Removed == 0 {
		t.Fatal("aggregate mode removed nothing")
	}
	// Exact check on the aggregated ACF.
	dev, err := Deviation(xs, res.Compressed, opt)
	if err != nil {
		t.Fatal(err)
	}
	if dev > 0.01+1e-9 {
		t.Fatalf("aggregated ACF deviation %v exceeds bound", dev)
	}
	// Aggregate mode should compress more than direct mode at the same
	// epsilon (it constrains a much smaller feature vector).
	direct, err := Compress(xs, Options{Lags: 96, Epsilon: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if res.CompressionRatio() < direct.CompressionRatio()*0.8 {
		t.Logf("note: aggregate CR %v vs direct CR %v", res.CompressionRatio(), direct.CompressionRatio())
	}
}

func TestCompressMeasureVariants(t *testing.T) {
	xs := seasonalSeries(300, 24, 0.5, 10)
	for _, m := range []stats.Measure{stats.MeasureMAE, stats.MeasureRMSE, stats.MeasureChebyshev} {
		res, err := Compress(xs, Options{Lags: 24, Epsilon: 0.02, Measure: m})
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if res.Removed == 0 {
			t.Fatalf("%v: removed nothing", m)
		}
		base := acf.ACF(xs, 24)
		recon := acf.ACF(res.Compressed.Decompress(), 24)
		if dev := m.Eval(base, recon); dev > 0.02+1e-9 {
			t.Fatalf("%v deviation %v exceeds bound", m, dev)
		}
	}
}

func TestCompressBlockingVariantsStayBounded(t *testing.T) {
	xs := seasonalSeries(400, 24, 0.8, 11)
	for _, hops := range []int{1, 5, 0, -1} {
		opt := Options{Lags: 24, Epsilon: 0.02, BlockHops: hops}
		res, err := Compress(xs, opt)
		if err != nil {
			t.Fatal(err)
		}
		dev, err := Deviation(xs, res.Compressed, opt)
		if err != nil {
			t.Fatal(err)
		}
		if dev > 0.02+1e-9 {
			t.Fatalf("hops=%d: deviation %v exceeds bound", hops, dev)
		}
	}
}

func TestCompressNoBlockingAtLeastAsGood(t *testing.T) {
	// Without blocking every impact is always fresh, so the compression
	// ratio should be at least that of aggressive blocking (within noise).
	xs := seasonalSeries(300, 24, 0.8, 12)
	full, err := Compress(xs, Options{Lags: 24, Epsilon: 0.02, BlockHops: -1})
	if err != nil {
		t.Fatal(err)
	}
	tiny, err := Compress(xs, Options{Lags: 24, Epsilon: 0.02, BlockHops: 1})
	if err != nil {
		t.Fatal(err)
	}
	if full.CompressionRatio() < tiny.CompressionRatio()*0.7 {
		t.Fatalf("no-blocking CR %v much worse than 1-hop CR %v", full.CompressionRatio(), tiny.CompressionRatio())
	}
}

func TestCompressFineGrainedThreadsSameBound(t *testing.T) {
	xs := seasonalSeries(600, 48, 0.5, 13)
	opt := Options{Lags: 48, Epsilon: 0.02, Threads: 4}
	res, err := Compress(xs, opt)
	if err != nil {
		t.Fatal(err)
	}
	dev, err := Deviation(xs, res.Compressed, opt)
	if err != nil {
		t.Fatal(err)
	}
	if dev > 0.02+1e-9 {
		t.Fatalf("threaded run deviation %v exceeds bound", dev)
	}
	// Fine-grained parallelism must not change the algorithm's output:
	// impacts are computed identically, only concurrently.
	seq, err := Compress(xs, Options{Lags: 48, Epsilon: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	if len(seq.Compressed.Points) != len(res.Compressed.Points) {
		t.Fatalf("threaded result differs: %d vs %d points", len(res.Compressed.Points), len(seq.Compressed.Points))
	}
	for i := range seq.Compressed.Points {
		if seq.Compressed.Points[i] != res.Compressed.Points[i] {
			t.Fatalf("threaded result differs at %d", i)
		}
	}
}

func TestInitialImpactsShape(t *testing.T) {
	xs := seasonalSeries(200, 20, 0.5, 14)
	imp, err := InitialImpacts(xs, Options{Lags: 20, Epsilon: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if len(imp) != len(xs) {
		t.Fatalf("len = %d", len(imp))
	}
	if !math.IsInf(imp[0], 1) || !math.IsInf(imp[len(imp)-1], 1) {
		t.Fatal("endpoint impacts must be +Inf")
	}
	for i := 1; i < len(imp)-1; i++ {
		if imp[i] < 0 || math.IsNaN(imp[i]) {
			t.Fatalf("impact[%d] = %v", i, imp[i])
		}
	}
}

func TestInitialImpactsSkewed(t *testing.T) {
	// Figure 3: importance should be heavily skewed — most points cheap,
	// few expensive. Check a noisy seasonal series has max >> median.
	xs := seasonalSeries(1000, 24, 1.0, 15)
	imp, err := InitialImpacts(xs, Options{Lags: 24, Epsilon: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	interior := imp[1 : len(imp)-1]
	med := stats.Median(interior)
	max := stats.Max(interior)
	if max < 3*med {
		t.Fatalf("importance not skewed: max=%v median=%v", max, med)
	}
}

func TestDeviationHelperMatchesReported(t *testing.T) {
	xs := seasonalSeries(300, 24, 0.5, 16)
	opt := Options{Lags: 24, Epsilon: 0.03}
	res, err := Compress(xs, opt)
	if err != nil {
		t.Fatal(err)
	}
	dev, err := Deviation(xs, res.Compressed, opt)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(dev-res.Deviation) > 1e-6 {
		t.Fatalf("Deviation helper %v != reported %v", dev, res.Deviation)
	}
}

// Property: for random series and random epsilon, the bound always holds
// exactly, endpoints are kept, and retained points carry original values.
func TestCompressInvariantsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 20 + rng.Intn(200)
		period := 5 + rng.Intn(20)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = math.Sin(2*math.Pi*float64(i)/float64(period)) + 0.3*rng.NormFloat64()
		}
		L := 2 + rng.Intn(10)
		eps := 0.001 + rng.Float64()*0.05
		opt := Options{Lags: L, Epsilon: eps}
		res, err := Compress(xs, opt)
		if err != nil {
			return false
		}
		pts := res.Compressed.Points
		if pts[0].Index != 0 || pts[len(pts)-1].Index != n-1 {
			return false
		}
		for _, p := range pts {
			if p.Value != xs[p.Index] {
				return false
			}
		}
		dev, err := Deviation(xs, res.Compressed, opt)
		if err != nil {
			return false
		}
		return dev <= eps+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
