package core

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"repro/internal/acf"
	"repro/internal/series"
)

// CoarseOptions configures the coarse-grained parallelization (paper §4.4):
// the series is split into Partitions consecutive chunks, each compressed
// independently by a single-threaded CAMEO engine within a local deviation
// budget of BudgetFactor*Epsilon/Partitions; synchronization rounds check
// the exact global deviation and redistribute budget, guaranteeing the
// global bound is never exceeded.
type CoarseOptions struct {
	Options

	// Partitions is the number of coarse chunks T (and worker goroutines).
	Partitions int

	// BudgetFactor is the p in the paper's local threshold p*eps/T.
	// Defaults to 1.
	BudgetFactor float64

	// GrowthFactor controls how aggressively local budgets are relaxed
	// between synchronization rounds. Defaults to 2.
	GrowthFactor float64
}

// CompressCoarse runs CAMEO with coarse-grained parallelization. The
// deviation bound Epsilon is required (the local-budget scheme is defined in
// terms of it). Fine-grained parallelism inside each partition is enabled by
// Options.Threads, yielding the paper's hybrid strategy (Figure 11).
func CompressCoarse(xs []float64, opt CoarseOptions) (*Result, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	if opt.Epsilon <= 0 {
		return nil, errors.New("core: coarse-grained parallelization requires Epsilon > 0")
	}
	T := opt.Partitions
	if T < 1 {
		T = 1
	}
	// Every partition needs at least a handful of points to be worth a
	// worker; shrink T on small inputs.
	for T > 1 && len(xs)/T < 8 {
		T--
	}
	if T <= 1 {
		return Compress(xs, opt.Options)
	}
	if opt.BudgetFactor <= 0 {
		opt.BudgetFactor = 1
	}
	if opt.GrowthFactor <= 1 {
		opt.GrowthFactor = 2
	}

	n := len(xs)
	base, err := globalFeature(xs, opt.Options)
	if err != nil {
		return nil, err
	}

	// Build one resumable engine per partition.
	bounds := make([]int, T+1)
	for w := 0; w <= T; w++ {
		bounds[w] = w * n / T
	}
	engines := make([]*engine, T)
	for w := 0; w < T; w++ {
		engines[w] = newEngine(xs[bounds[w]:bounds[w+1]], opt.Options)
	}
	defer func() {
		for _, eng := range engines {
			eng.close()
		}
	}()

	snapshot := func(dev float64) *Result {
		var pts []series.Point
		iters := 0
		for w, eng := range engines {
			off := bounds[w]
			for i := 0; i < eng.n; i++ {
				if !eng.removed[i] {
					pts = append(pts, series.Point{Index: off + i, Value: eng.orig[i]})
				}
			}
			iters += eng.iterations
		}
		ir := &series.Irregular{N: n, Points: pts}
		return &Result{
			Compressed: ir,
			Deviation:  dev,
			Removed:    n - len(pts),
			Iterations: iters,
		}
	}

	best := snapshot(0)
	// Start the ramp at half the paper's p*eps/T local threshold: rounds
	// cannot be rewound, so a first-round overshoot would forfeit all
	// compression; the controller recovers the other half within a round
	// or two.
	budget := 0.5 * opt.BudgetFactor * opt.Epsilon / float64(T)
	prevRemoved := 0
	globalCur := make([]float64, n)
	for round := 0; ; round++ {
		// Run every partition up to its current local budget, in parallel.
		var wg sync.WaitGroup
		for _, eng := range engines {
			wg.Add(1)
			go func(eng *engine) {
				defer wg.Done()
				eng.run(stopConditions{epsilon: budget, targetRatio: opt.TargetRatio})
			}(eng)
		}
		wg.Wait()

		// Synchronization: exact global deviation from the merged
		// reconstruction (paper Example 2's global aggregate check).
		for w, eng := range engines {
			copy(globalCur[bounds[w]:bounds[w+1]], eng.cur)
		}
		dev, err := deviationFrom(globalCur, base, opt.Options)
		if err != nil {
			return nil, err
		}
		if dev > opt.Epsilon {
			// The last round overshot the global bound: discard it and
			// return the last known-good snapshot.
			return best, nil
		}
		best = snapshot(dev)
		if best.Removed == prevRemoved {
			return best, nil // no progress: every partition is exhausted
		}
		prevRemoved = best.Removed
		// Local deviations do not sum to the global one, so local budgets
		// may legitimately exceed Epsilon while the global deviation stays
		// below it; keep relaxing until the global check itself binds.
		// Damped proportional controller: extrapolate the budget toward 90%
		// of the global bound. The deviation responds superlinearly to the
		// local budget (late removals bridge wider gaps), so the ratio is
		// square-root damped; GrowthFactor caps the step and a 5% floor
		// keeps rounds progressing. Overshooting costs only the last round
		// (the snapshot is returned).
		scale := 1.05
		if dev > 0 {
			scale = math.Sqrt(0.9 * opt.Epsilon / dev)
		}
		if scale > opt.GrowthFactor {
			scale = opt.GrowthFactor
		}
		if scale < 1.05 {
			scale = 1.05
		}
		budget *= scale
	}
}

// globalFeature computes the preserved feature vector S(X) for the full
// series under the given options.
func globalFeature(xs []float64, opt Options) ([]float64, error) {
	data := xs
	if opt.AggWindow >= 2 {
		data = series.Aggregate(xs, opt.AggWindow, opt.AggFunc)
	}
	feat := acf.ACF(data, opt.Lags)
	if opt.Statistic == StatPACF {
		if sub := opt.LagSubset; len(sub) > 0 {
			feat = acf.PACFFromACF(feat[:maxLag(sub)])
		} else {
			feat = acf.PACFFromACF(feat)
		}
	}
	if sub := opt.LagSubset; len(sub) > 0 {
		out := make([]float64, len(sub))
		for i, l := range sub {
			out[i] = feat[l-1]
		}
		return out, nil
	}
	return feat, nil
}

// deviationFrom computes D(S(reconstruction), base) for a full
// reconstruction vector.
func deviationFrom(recon []float64, base []float64, opt Options) (float64, error) {
	feat, err := globalFeature(recon, opt)
	if err != nil {
		return 0, err
	}
	return opt.Measure.Eval(feat, base), nil
}

// Deviation computes the exact statistic deviation D(S(X), S(X')) between
// an original series and a compressed representation's reconstruction under
// the given options. Exported for constraint verification in tests,
// experiments, and baseline drivers.
func Deviation(xs []float64, compressed *series.Irregular, opt Options) (float64, error) {
	if opt.Lags <= 0 {
		return 0, fmt.Errorf("core: Lags must be positive, got %d", opt.Lags)
	}
	base, err := globalFeature(xs, opt)
	if err != nil {
		return 0, err
	}
	return deviationFrom(compressed.Decompress(), base, opt)
}
