package core

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/series"
	"repro/internal/stats"
)

// Statistic selects the preserved statistic S (paper Definition 1).
type Statistic int

// Supported statistics.
const (
	// StatACF preserves the autocorrelation function (the paper's default).
	StatACF Statistic = iota
	// StatPACF preserves the partial autocorrelation function via the
	// Durbin-Levinson recursion — O(L^2) per evaluation (paper §5.5).
	StatPACF
)

// String returns the statistic's name.
func (s Statistic) String() string {
	switch s {
	case StatACF:
		return "ACF"
	case StatPACF:
		return "PACF"
	default:
		return "unknown"
	}
}

// Options configures a CAMEO compression run. The zero value is not valid:
// Lags must be positive and at least one of Epsilon / TargetRatio set.
type Options struct {
	// Lags is the number of ACF/PACF lags L to preserve (required).
	Lags int

	// Epsilon bounds the deviation D(S(X), S(X')) <= Epsilon
	// (Definitions 1 and 2). Ignored if zero and TargetRatio is set.
	Epsilon float64

	// TargetRatio, when positive, switches to (or combines with) the
	// compression-centric formulation (Definition 3): removal halts once
	// |X| / |X'| >= TargetRatio. When Epsilon is also positive, the bound
	// still holds and the ratio acts as an early stop (used by the paper's
	// runtime experiments, §5.5).
	TargetRatio float64

	// Statistic selects ACF (default) or PACF preservation.
	Statistic Statistic

	// Measure is the deviation measure D (default MAE, the paper's default).
	Measure stats.Measure

	// AggWindow, when >= 2, preserves the statistic on tumbling-window
	// aggregates of the series (Definition 2) with window size kappa =
	// AggWindow and function AggFunc.
	AggWindow int

	// AggFunc is the aggregation function for AggWindow (default mean).
	AggFunc series.AggFunc

	// BlockHops is the blocking neighbourhood size h (paper §4.3): after a
	// removal only the h nearest alive neighbours on each side get their
	// impact recomputed. 0 selects the default 5*ceil(log2 n); negative
	// disables blocking (update every remaining point — "w/b" in Table 3).
	BlockHops int

	// Threads enables fine-grained parallelization (paper §4.4): impact
	// recomputation inside ReHeap and the initial heap build are split
	// across this many goroutines. Values < 2 run single-threaded.
	Threads int

	// LagSubset, when non-empty, constrains only the listed lags (1-based,
	// each <= Lags) instead of all of 1..Lags — the paper's proposed
	// speed/fidelity trade-off of "preserving specific lags" (§5.5), useful
	// for targeting exactly the seasonal lags a forecaster relies on.
	LagSubset []int

	// NoRevalidate disables the exact impact recomputation of the popped
	// heap candidate (an ablation knob: stale blocked impacts are then
	// trusted as-is, trading guarantee sharpness for fewer evaluations;
	// the deviation bound still holds because the bound check itself uses
	// the recomputed value only when revalidation is on — with it off, the
	// check uses a fresh evaluation too, only the re-push-and-retry step is
	// skipped).
	NoRevalidate bool
}

// ErrNoStopCondition is returned when neither Epsilon nor TargetRatio is set.
var ErrNoStopCondition = errors.New("core: set Epsilon and/or TargetRatio")

// Validate checks the options for consistency.
func (o *Options) Validate() error {
	if o.Lags <= 0 {
		return fmt.Errorf("core: Lags must be positive, got %d", o.Lags)
	}
	if o.Epsilon < 0 || math.IsNaN(o.Epsilon) {
		return fmt.Errorf("core: Epsilon must be non-negative, got %v", o.Epsilon)
	}
	if o.TargetRatio < 0 || math.IsNaN(o.TargetRatio) {
		return fmt.Errorf("core: TargetRatio must be non-negative, got %v", o.TargetRatio)
	}
	if o.Epsilon == 0 && o.TargetRatio == 0 {
		return ErrNoStopCondition
	}
	if o.TargetRatio > 0 && o.TargetRatio < 1 {
		return fmt.Errorf("core: TargetRatio must be >= 1, got %v", o.TargetRatio)
	}
	if o.Statistic != StatACF && o.Statistic != StatPACF {
		return fmt.Errorf("core: unknown statistic %d", int(o.Statistic))
	}
	if o.AggWindow == 1 {
		return errors.New("core: AggWindow must be 0 (direct) or >= 2")
	}
	if o.AggWindow < 0 {
		return fmt.Errorf("core: AggWindow must be non-negative, got %d", o.AggWindow)
	}
	for _, l := range o.LagSubset {
		if l < 1 || l > o.Lags {
			return fmt.Errorf("core: LagSubset entry %d outside [1, %d]", l, o.Lags)
		}
	}
	return nil
}

// defaultBlockHops returns the default blocking neighbourhood 5*ceil(log2 n)
// — the paper finds factors of log n between 5 and 15 near-optimal (§5.4).
func defaultBlockHops(n int) int {
	if n <= 2 {
		return 1
	}
	h := 5 * int(math.Ceil(math.Log2(float64(n))))
	if h < 1 {
		h = 1
	}
	return h
}

// Result reports the outcome of a compression run.
type Result struct {
	// Compressed holds the retained points.
	Compressed *series.Irregular
	// Deviation is the final D(S(X), S(X')) of the committed result.
	Deviation float64
	// Removed is the number of points eliminated.
	Removed int
	// Iterations counts heap pops (including revalidation re-pushes).
	Iterations int
}

// CompressionRatio returns |X| / |X'| for the result.
func (r *Result) CompressionRatio() float64 { return r.Compressed.CompressionRatio() }
