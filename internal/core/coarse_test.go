package core

import (
	"testing"

	"repro/internal/series"
)

func TestCompressCoarseRequiresEpsilon(t *testing.T) {
	xs := seasonalSeries(100, 10, 0.5, 21)
	_, err := CompressCoarse(xs, CoarseOptions{
		Options:    Options{Lags: 10, TargetRatio: 4},
		Partitions: 2,
	})
	if err == nil {
		t.Fatal("expected error without Epsilon")
	}
}

func TestCompressCoarseBoundHolds(t *testing.T) {
	xs := seasonalSeries(2000, 48, 0.5, 22)
	opt := CoarseOptions{
		Options:    Options{Lags: 48, Epsilon: 0.02},
		Partitions: 4,
	}
	res, err := CompressCoarse(xs, opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Removed == 0 {
		t.Fatal("coarse run removed nothing")
	}
	dev, err := Deviation(xs, res.Compressed, opt.Options)
	if err != nil {
		t.Fatal(err)
	}
	if dev > 0.02+1e-9 {
		t.Fatalf("coarse deviation %v exceeds bound", dev)
	}
}

func TestCompressCoarseSinglePartitionFallsBack(t *testing.T) {
	xs := seasonalSeries(300, 24, 0.5, 23)
	res, err := CompressCoarse(xs, CoarseOptions{
		Options:    Options{Lags: 24, Epsilon: 0.02},
		Partitions: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	seq, err := Compress(xs, Options{Lags: 24, Epsilon: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Compressed.Points) != len(seq.Compressed.Points) {
		t.Fatalf("T=1 coarse (%d pts) != sequential (%d pts)",
			len(res.Compressed.Points), len(seq.Compressed.Points))
	}
}

func TestCompressCoarseTinyInputShrinksPartitions(t *testing.T) {
	xs := seasonalSeries(20, 5, 0.2, 24)
	res, err := CompressCoarse(xs, CoarseOptions{
		Options:    Options{Lags: 5, Epsilon: 0.05},
		Partitions: 16, // far more partitions than sensible
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Compressed.N != len(xs) {
		t.Fatalf("N = %d", res.Compressed.N)
	}
}

func TestCompressCoarseKeepsPartitionEndpoints(t *testing.T) {
	xs := seasonalSeries(400, 24, 0.5, 25)
	T := 4
	res, err := CompressCoarse(xs, CoarseOptions{
		Options:    Options{Lags: 24, Epsilon: 0.05},
		Partitions: T,
	})
	if err != nil {
		t.Fatal(err)
	}
	retained := make(map[int]bool, len(res.Compressed.Points))
	for _, p := range res.Compressed.Points {
		retained[p.Index] = true
	}
	for w := 0; w <= T; w++ {
		b := w * len(xs) / T
		if b == len(xs) {
			b--
		}
		if !retained[b] && !retained[b-1] {
			// Each partition keeps its own endpoints; boundary b is the
			// first point of partition w and b-1 the last of partition w-1.
			t.Fatalf("partition boundary near %d lost", b)
		}
	}
}

func TestCompressCoarseWindowAggregates(t *testing.T) {
	xs := seasonalSeries(2400, 240, 0.5, 26)
	opt := CoarseOptions{
		Options: Options{
			Lags: 10, Epsilon: 0.02,
			AggWindow: 24, AggFunc: series.AggMean,
		},
		Partitions: 3,
	}
	res, err := CompressCoarse(xs, opt)
	if err != nil {
		t.Fatal(err)
	}
	dev, err := Deviation(xs, res.Compressed, opt.Options)
	if err != nil {
		t.Fatal(err)
	}
	if dev > 0.02+1e-9 {
		t.Fatalf("coarse aggregate deviation %v exceeds bound", dev)
	}
}

func TestCompressCoarseHybridThreads(t *testing.T) {
	xs := seasonalSeries(1200, 48, 0.5, 27)
	opt := CoarseOptions{
		Options:    Options{Lags: 48, Epsilon: 0.02, Threads: 2},
		Partitions: 2,
	}
	res, err := CompressCoarse(xs, opt)
	if err != nil {
		t.Fatal(err)
	}
	dev, err := Deviation(xs, res.Compressed, opt.Options)
	if err != nil {
		t.Fatal(err)
	}
	if dev > 0.02+1e-9 {
		t.Fatalf("hybrid deviation %v exceeds bound", dev)
	}
}
