package core

import (
	"math"
	"math/rand"
	"testing"
)

// streamTestSeries generates the differential corpus: the series families
// the ISSUE calls out (random, seasonal, constant) plus hostile-but-finite
// float patterns (denormals, huge magnitude swings, long zero runs).
func streamTestSeries(kind string, n int, seed int64) []float64 {
	r := rand.New(rand.NewSource(seed))
	xs := make([]float64, n)
	switch kind {
	case "random":
		for i := range xs {
			xs[i] = r.NormFloat64() * 10
		}
	case "seasonal":
		for i := range xs {
			xs[i] = 5*math.Sin(2*math.Pi*float64(i)/48) + math.Cos(2*math.Pi*float64(i)/12) + 0.2*r.NormFloat64()
		}
	case "constant":
		for i := range xs {
			xs[i] = 42.5
		}
	case "hostile":
		for i := range xs {
			switch i % 5 {
			case 0:
				xs[i] = math.SmallestNonzeroFloat64 * float64(1+r.Intn(1000))
			case 1:
				xs[i] = r.NormFloat64() * 1e15
			case 2:
				xs[i] = 0
			case 3:
				xs[i] = -r.Float64() * 1e-300
			default:
				xs[i] = math.Nextafter(1, 2) * float64(r.Intn(3)-1)
			}
		}
	default:
		panic("unknown series kind " + kind)
	}
	return xs
}

func sameResult(t *testing.T, label string, got, want *Result) {
	t.Helper()
	if got.Removed != want.Removed || got.Iterations != want.Iterations || got.Deviation != want.Deviation {
		t.Fatalf("%s: counters differ: got (removed=%d iter=%d dev=%v) want (removed=%d iter=%d dev=%v)",
			label, got.Removed, got.Iterations, got.Deviation, want.Removed, want.Iterations, want.Deviation)
	}
	if got.Compressed.N != want.Compressed.N || len(got.Compressed.Points) != len(want.Compressed.Points) {
		t.Fatalf("%s: shape differs: got n=%d pts=%d want n=%d pts=%d", label,
			got.Compressed.N, len(got.Compressed.Points), want.Compressed.N, len(want.Compressed.Points))
	}
	for i, p := range want.Compressed.Points {
		q := got.Compressed.Points[i]
		if q.Index != p.Index || q.Value != p.Value {
			t.Fatalf("%s: point %d differs: got (%d,%v) want (%d,%v)", label, i, q.Index, q.Value, p.Index, p.Value)
		}
	}
}

// TestStreamEngineMatchesBatch is the tentpole differential: for every
// series family, option shape, and advance quantum, the streaming engine
// must retain exactly the batch engine's points with the same deviation —
// bit-identical, not merely within tolerance. This is what makes the
// per-point error bound and ACF budget of streaming mode inherit batch
// mode's guarantees outright.
func TestStreamEngineMatchesBatch(t *testing.T) {
	opts := []Options{
		{Lags: 24, Epsilon: 0.05},
		{Lags: 24, Epsilon: 0.05, Threads: 2},
		{Lags: 12, TargetRatio: 4},
		{Lags: 24, Epsilon: 0.02, Statistic: StatPACF},
		{Lags: 24, Epsilon: 0.05, LagSubset: []int{1, 5, 24}},
		{Lags: 24, Epsilon: 0.05, AggWindow: 4},
		{Lags: 400, Epsilon: 0.05}, // FFT-worthy: exercises the builder fallback
	}
	for _, kind := range []string{"random", "seasonal", "constant", "hostile"} {
		for oi, opt := range opts {
			xs := streamTestSeries(kind, 512, int64(100+oi))
			want, err := Compress(xs, opt)
			if err != nil {
				t.Fatalf("%s/opt%d: batch: %v", kind, oi, err)
			}
			se, err := NewStreamEngine(opt)
			if err != nil {
				t.Fatalf("%s/opt%d: NewStreamEngine: %v", kind, oi, err)
			}
			// Single-unit quanta are the strongest ordering probe but cost
			// ~n Advance calls per block; exercise them on the default
			// config and spot-check the exotic ones with coarser quanta.
			quanta := []int{1, 7, 64, 1 << 30}
			if oi > 0 {
				quanta = []int{7, 1 << 30}
			}
			for _, quantum := range quanta {
				if err := se.Begin(xs); err != nil {
					t.Fatalf("%s/opt%d/q%d: Begin: %v", kind, oi, quantum, err)
				}
				steps := 0
				for {
					used, done := se.Advance(quantum)
					steps++
					if used < 1 {
						t.Fatalf("%s/opt%d/q%d: Advance made no progress", kind, oi, quantum)
					}
					if done {
						break
					}
					if steps > 1<<22 {
						t.Fatalf("%s/opt%d/q%d: no convergence after %d steps", kind, oi, quantum, steps)
					}
				}
				if !se.Done() {
					t.Fatalf("%s/opt%d/q%d: Done() false after completion", kind, oi, quantum)
				}
				sameResult(t, kind, se.Result(), want)
			}
			se.Close()
		}
	}
}

// TestStreamEngineErrorBound verifies the Definition 3 guarantee directly
// on streaming output: the deviation reported never exceeds epsilon, and
// recomputing the ACF deviation of the reconstruction from scratch agrees.
func TestStreamEngineErrorBound(t *testing.T) {
	opt := Options{Lags: 24, Epsilon: 0.05}
	se, err := NewStreamEngine(opt)
	if err != nil {
		t.Fatal(err)
	}
	defer se.Close()
	for _, kind := range []string{"random", "seasonal", "hostile"} {
		xs := streamTestSeries(kind, 768, 7)
		if err := se.Begin(xs); err != nil {
			t.Fatal(err)
		}
		se.Finish()
		res := se.Result()
		if res.Deviation > opt.Epsilon {
			t.Fatalf("%s: deviation %v exceeds epsilon %v", kind, res.Deviation, opt.Epsilon)
		}
		dev, err := Deviation(xs, res.Compressed, opt)
		if err != nil {
			t.Fatal(err)
		}
		if dev > opt.Epsilon {
			t.Fatalf("%s: recomputed deviation %v exceeds epsilon %v", kind, dev, opt.Epsilon)
		}
	}
}

// TestStreamEngineMisuse pins the guard rails: double Begin, non-finite
// input, Result before completion.
func TestStreamEngineMisuse(t *testing.T) {
	se, err := NewStreamEngine(Options{Lags: 8, Epsilon: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	defer se.Close()
	if err := se.Begin([]float64{1, math.NaN(), 3}); err == nil {
		t.Fatal("Begin accepted NaN input")
	}
	xs := streamTestSeries("seasonal", 256, 1)
	if err := se.Begin(xs); err != nil {
		t.Fatalf("Begin after rejected input: %v", err)
	}
	if se.Result() != nil {
		t.Fatal("Result non-nil before completion")
	}
	if _, done := se.Advance(1); done {
		t.Fatal("256-sample block done after one unit")
	}
	if err := se.Begin(xs); err == nil {
		t.Fatal("Begin accepted while a block was in flight")
	}
	se.Finish()
	if se.Result() == nil {
		t.Fatal("Result nil after Finish")
	}
	if err := se.Begin(xs); err != nil {
		t.Fatalf("Begin on finished engine: %v", err)
	}
	se.Finish()
}

// FuzzStreamVsBatch drives the differential with fuzzer-chosen values,
// epsilon, and advance quantum. Non-finite inputs must be rejected by both
// paths; finite ones must produce bit-identical results.
func FuzzStreamVsBatch(f *testing.F) {
	f.Add(uint64(1), 0.05, 3, 64)
	f.Add(uint64(42), 0.5, 1, 200)
	f.Add(uint64(7), 0.001, 1000, 33)
	f.Fuzz(func(t *testing.T, seed uint64, eps float64, quantum, n int) {
		if n < 0 || n > 512 {
			n = 512
		}
		if quantum < 1 {
			quantum = 1
		}
		if !(eps > 0) || eps > 1e6 {
			eps = 0.05
		}
		r := rand.New(rand.NewSource(int64(seed)))
		xs := make([]float64, n)
		for i := range xs {
			switch r.Intn(8) {
			case 0:
				xs[i] = r.NormFloat64() * 1e12
			case 1:
				xs[i] = r.Float64() * 1e-200
			default:
				xs[i] = math.Sin(float64(i)/9) + r.NormFloat64()
			}
		}
		opt := Options{Lags: 16, Epsilon: eps}
		want, batchErr := Compress(xs, opt)
		se, err := NewStreamEngine(opt)
		if err != nil {
			t.Fatal(err)
		}
		defer se.Close()
		if err := se.Begin(xs); err != nil {
			if batchErr == nil {
				t.Fatalf("stream rejected what batch accepted: %v", err)
			}
			return
		}
		if batchErr != nil {
			t.Fatalf("stream accepted what batch rejected: %v", batchErr)
		}
		for {
			if _, done := se.Advance(quantum); done {
				break
			}
		}
		sameResult(t, "fuzz", se.Result(), want)
	})
}
