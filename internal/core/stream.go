package core

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/series"
)

// StreamCompressor compresses an unbounded series block-by-block: values
// are buffered until BlockSize points accumulate, each full block is
// compressed independently with the configured options, and the retained
// points are emitted with stream-global indices. Per-block independence
// bounds latency and memory for IoT-style ingestion (the paper's motivating
// deployment) while the per-block ACF guarantee still holds; block
// boundaries always retain their end points, so concatenated reconstruction
// is seamless.
type StreamCompressor struct {
	opt       Options
	blockSize int
	cmp       *Compressor // pooled engine reused across blocks

	buf      []float64 // buffered values; buf[off:] is the live backlog
	off      int       // cursor of consumed values within buf
	out      []series.Point
	consumed int // total values fully processed into out
	dev      float64
	err      error
}

// NewStreamCompressor validates the options and sizes the block buffer.
// blockSize must hold enough points for the statistic (>= 4x the lag count,
// or 4x lags*window for the aggregated variant).
func NewStreamCompressor(opt Options, blockSize int) (*StreamCompressor, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	minBlock := 4 * opt.Lags
	if opt.AggWindow >= 2 {
		minBlock = 4 * opt.Lags * opt.AggWindow
	}
	if blockSize < minBlock {
		return nil, fmt.Errorf("core: blockSize %d too small for the statistic (need >= %d)", blockSize, minBlock)
	}
	cmp, err := NewCompressor(opt)
	if err != nil {
		return nil, err
	}
	return &StreamCompressor{opt: opt, blockSize: blockSize, cmp: cmp}, nil
}

// Push appends values to the stream, compressing every completed block.
// Completed blocks are consumed via an offset cursor rather than by
// re-copying the backlog down after each block, so a long burst of small
// Pushes costs O(n) total instead of O(n^2).
func (s *StreamCompressor) Push(values ...float64) error {
	if s.err != nil {
		return s.err
	}
	s.buf = append(s.buf, values...)
	for len(s.buf)-s.off >= s.blockSize {
		if err := s.flushBlock(s.buf[s.off : s.off+s.blockSize]); err != nil {
			s.err = err
			return err
		}
		s.off += s.blockSize
	}
	// Compact once the consumed prefix dominates the buffer: each value is
	// moved at most once per halving, keeping the amortized cost constant
	// while the buffer's capacity stays bounded by the live remainder.
	if s.off > 0 && s.off*2 >= len(s.buf) {
		n := copy(s.buf, s.buf[s.off:])
		s.buf = s.buf[:n]
		s.off = 0
	}
	return nil
}

// flushBlock compresses one full block (on the stream's pooled engine) and
// appends its points globally.
func (s *StreamCompressor) flushBlock(block []float64) error {
	res, err := s.cmp.Compress(block)
	if err != nil {
		return err
	}
	for _, p := range res.Compressed.Points {
		s.out = append(s.out, series.Point{Index: s.consumed + p.Index, Value: p.Value})
	}
	s.consumed += len(block)
	if res.Deviation > s.dev {
		s.dev = res.Deviation
	}
	return nil
}

// Flush compresses any buffered tail (shorter blocks get compressed as-is
// when long enough, or stored verbatim otherwise) and returns the stream's
// compressed representation. The compressor is reusable afterwards: state
// resets to empty.
func (s *StreamCompressor) Flush() (*Result, error) {
	if s.err != nil {
		return nil, s.err
	}
	if tail := s.buf[s.off:]; len(tail) > 0 {
		minBlock := 2 * s.opt.Lags
		if s.opt.AggWindow >= 2 {
			minBlock = 2 * s.opt.Lags * s.opt.AggWindow
		}
		if len(tail) >= minBlock {
			if err := s.flushBlock(tail); err != nil {
				return nil, err
			}
		} else {
			// Too short for a meaningful statistic: keep verbatim.
			for i, v := range tail {
				s.out = append(s.out, series.Point{Index: s.consumed + i, Value: v})
			}
			s.consumed += len(tail)
		}
	}
	s.buf = s.buf[:0]
	s.off = 0
	n := s.consumed
	pts := s.out
	dev := s.dev
	s.out = nil
	s.consumed = 0
	s.dev = 0
	ir, err := series.NewIrregular(n, pts)
	if err != nil {
		return nil, err
	}
	return &Result{
		Compressed: ir,
		Deviation:  dev,
		Removed:    n - len(pts),
	}, nil
}

// ErrNonFinite is returned when input contains NaN or infinities, which
// would silently poison the incremental aggregates.
var ErrNonFinite = errors.New("core: input contains non-finite values")

// checkFinite scans xs for NaN/Inf.
func checkFinite(xs []float64) error {
	for i, v := range xs {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("%w (index %d)", ErrNonFinite, i)
		}
	}
	return nil
}
