// Package experiments contains the runners that regenerate every table and
// figure of the paper's evaluation (§5), shared by cmd/experiments and the
// repository's benchmark suite. Each runner prints the same rows/series the
// paper reports; EXPERIMENTS.md records the expected shape next to measured
// results.
package experiments

import (
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"text/tabwriter"

	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/simplify"
	"repro/internal/stats"
)

// Config scales and directs an experiment run.
type Config struct {
	// Out receives the experiment's table output (default os.Stdout).
	Out io.Writer
	// Scale multiplies dataset lengths (default 0.1); experiments clamp to
	// sensible minima/maxima so the shapes survive downscaling.
	Scale float64
	// MaxN caps any generated series length (default 40000).
	MaxN int
	// Seed drives all generators (default 1).
	Seed int64
	// Quick further trims sweeps for smoke tests and benchmarks.
	Quick bool
}

func (c Config) withDefaults() Config {
	if c.Out == nil {
		c.Out = os.Stdout
	}
	if c.Scale <= 0 {
		c.Scale = 0.1
	}
	if c.MaxN <= 0 {
		c.MaxN = 40000
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Runner regenerates one paper artifact.
type Runner func(Config) error

// Registry maps experiment ids (fig6, tab2, ...) to runners.
func Registry() map[string]Runner {
	return map[string]Runner{
		"tab1":   Table1,
		"fig1":   Figure1,
		"fig3":   Figure3,
		"fig6":   Figure6,
		"fig7":   Figure7,
		"tab2":   Table2,
		"fig8":   Figure8,
		"fig9":   Figure9,
		"tab3":   Table3,
		"tab4":   Table4,
		"fig10a": Figure10a,
		"fig10b": Figure10b,
		"fig11":  Figure11,
		"fig12a": Figure12a,
		"fig12b": Figure12b,
		"fig12c": Figure12c,
		"fig13":  Figure13,
		"pacf":   PACFRuntime,
	}
}

// IDs returns the registry keys sorted.
func IDs() []string {
	reg := Registry()
	ids := make([]string, 0, len(reg))
	for id := range reg {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// scaledLength computes the replica length for a spec under the config,
// keeping at least a handful of seasonal periods.
func scaledLength(s datasets.Spec, cfg Config) int {
	n := int(float64(s.Length) * cfg.Scale)
	min := 6 * s.Period
	if s.Group2() {
		// Group-2 lags act on aggregated windows: make sure the aggregated
		// series has enough points for its lag count too.
		if m := 4 * s.Lags * s.AggWindow; m > min {
			min = m
		}
	} else if m := 8 * s.Lags; m > min {
		min = m
	}
	if n < min {
		n = min
	}
	if n > cfg.MaxN {
		n = cfg.MaxN
	}
	if n > s.Length {
		n = s.Length
	}
	return n
}

// genData generates the scaled replica for a spec.
func genData(s datasets.Spec, cfg Config) []float64 {
	return s.GenerateN(scaledLength(s, cfg), cfg.Seed)
}

// coreOptions builds CAMEO options matching a dataset's Table 1 statistic
// configuration.
func coreOptions(s datasets.Spec, eps float64) core.Options {
	return core.Options{
		Lags:      s.Lags,
		Epsilon:   eps,
		AggWindow: s.AggWindow,
		AggFunc:   s.AggFunc,
		Measure:   stats.MeasureMAE,
	}
}

// simplifyOptions is the baseline equivalent of coreOptions.
func simplifyOptions(s datasets.Spec, eps float64) simplify.Options {
	return simplify.Options{
		Lags:      s.Lags,
		Epsilon:   eps,
		AggWindow: s.AggWindow,
		AggFunc:   s.AggFunc,
		Measure:   stats.MeasureMAE,
	}
}

// epsGrid returns the per-dataset ACF-MAE sweep mirroring the paper's
// x-axis scales (Figure 6/7): 1e-1 for the small group-1 datasets and
// AUSElecDem, 1e-2 for Humidity and IRBioTemp, 1e-3 for SolarPower.
func epsGrid(name string, quick bool) []float64 {
	var top float64
	switch name {
	case "Humidity", "IRBioTemp":
		top = 0.01
	case "SolarPower":
		top = 0.001
	default:
		top = 0.1
	}
	fracs := []float64{0.125, 0.25, 0.5, 0.75, 1.0}
	if quick {
		fracs = []float64{0.25, 1.0}
	}
	out := make([]float64, len(fracs))
	for i, f := range fracs {
		out[i] = top * f
	}
	return out
}

// newTable starts a tabwriter with a header row.
func newTable(w io.Writer, cols ...interface{}) *tabwriter.Writer {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, rowString(cols...))
	return tw
}

// row writes one table row.
func row(tw *tabwriter.Writer, cols ...interface{}) {
	fmt.Fprintln(tw, rowString(cols...))
}

func rowString(cols ...interface{}) string {
	s := ""
	for i, c := range cols {
		if i > 0 {
			s += "\t"
		}
		switch v := c.(type) {
		case float64:
			s += formatFloat(v)
		default:
			s += fmt.Sprint(v)
		}
	}
	return s
}

// formatFloat prints floats compactly (4 significant digits, scientific for
// extremes).
func formatFloat(v float64) string {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return fmt.Sprint(v)
	}
	a := math.Abs(v)
	if a != 0 && (a < 1e-3 || a >= 1e6) {
		return fmt.Sprintf("%.3e", v)
	}
	return fmt.Sprintf("%.4g", v)
}

// group1Specs returns the paper's direct-ACF datasets.
func group1Specs() []datasets.Spec {
	return []datasets.Spec{
		datasets.ElecPower(), datasets.MinTemp(),
		datasets.Pedestrian(), datasets.UKElecDem(),
	}
}

// group2Specs returns the on-aggregates datasets.
func group2Specs() []datasets.Spec {
	return []datasets.Spec{
		datasets.AUSElecDem(), datasets.Humidity(),
		datasets.IRBioTemp(), datasets.SolarPower(),
	}
}
