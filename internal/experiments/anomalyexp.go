package experiments

import (
	"errors"
	"fmt"
	"math"
	"time"

	"repro/internal/anomaly"
	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/lossy"
	"repro/internal/simplify"
)

// Figure13 regenerates both panels of Figure 13.
//
// Left: UCR-score of Matrix-Profile discord detection on compressed data as
// the compression ratio increases, for CAMEO, VW, SWING, PMC and FFT over a
// UCR-style anomaly suite.
// Expected shape: CAMEO preserves the score best up to ~28x, degrading
// beyond ~30x (outlier points carry little ACF weight); VW retains extreme
// outliers implicitly.
//
// Right: execution time of the Matrix-Profile core over regular (rMP,
// O(N^2 m)) vs irregular (iMP, O(N^2 m')) series as the compression ratio
// grows, plus CAMEO's compression time at those ratios.
// Expected shape: iMP time drops steeply with CR; compression time is
// negligible against the analytics saving.
func Figure13(cfg Config) error {
	cfg = cfg.withDefaults()
	if err := figure13Left(cfg); err != nil {
		return err
	}
	return figure13Right(cfg)
}

func figure13Left(cfg Config) error {
	fmt.Fprintln(cfg.Out, "## Figure 13 (left) — UCR-score vs compression ratio")
	tw := newTable(cfg.Out, "CR", "method", "UCR-score")
	nCases, length := 20, 4000
	sizes := []int{75, 100, 125}
	ratios := []float64{5, 10, 20, 28, 35}
	if cfg.Quick {
		nCases, length = 4, 1500
		sizes = []int{100}
		ratios = []float64{10}
	}
	suite := datasets.AnomalySuite(nCases, length, cfg.Seed)

	type method struct {
		name string
		run  func(xs []float64, cr float64) ([]float64, error)
	}
	lags := 50 // the suite's base periods are 40-120; 50 lags capture them
	methods := []method{
		{"CAMEO", func(xs []float64, cr float64) ([]float64, error) {
			res, err := core.Compress(xs, core.Options{Lags: lags, TargetRatio: cr})
			if err != nil {
				return nil, err
			}
			return res.Compressed.Decompress(), nil
		}},
		{"VW", func(xs []float64, cr float64) ([]float64, error) {
			r, err := simplify.VW(xs, simplify.Options{Lags: lags, TargetRatio: cr})
			if err != nil && !errors.Is(err, simplify.ErrBoundExceeded) {
				return nil, err
			}
			return r.Compressed.Decompress(), nil
		}},
		{"SWING", func(xs []float64, cr float64) ([]float64, error) {
			return lossy.SearchRatio(xs, lossy.SwingCompressor{}, cr, searchIters(cfg)).Decompress(), nil
		}},
		{"PMC", func(xs []float64, cr float64) ([]float64, error) {
			return lossy.SearchRatio(xs, lossy.PMCCompressor{}, cr, searchIters(cfg)).Decompress(), nil
		}},
		{"FFT", func(xs []float64, cr float64) ([]float64, error) {
			return lossy.SearchRatio(xs, lossy.FFTCompressor{}, cr, searchIters(cfg)).Decompress(), nil
		}},
	}
	for _, cr := range ratios {
		for _, m := range methods {
			hits := 0
			for _, c := range suite {
				recon, err := m.run(c.Data, cr)
				if err != nil {
					return fmt.Errorf("%s: %w", m.name, err)
				}
				loc, _ := anomaly.DetectDiscord(recon, sizes)
				if anomaly.UCRHit(loc, c.Start, c.End) {
					hits++
				}
			}
			row(tw, cr, m.name, float64(hits)/float64(len(suite)))
		}
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintln(cfg.Out)
	return nil
}

func figure13Right(cfg Config) error {
	fmt.Fprintln(cfg.Out, "## Figure 13 (right) — rMP vs iMP execution time")
	tw := newTable(cfg.Out, "n", "CR", "variant", "seconds", "compress-s")
	p := 12 // the paper sweeps p = 10..16 and reports p = 14
	if cfg.Quick {
		p = 10
	}
	n := 1 << p
	m := 150
	xs := syntheticMPSeries(n, cfg.Seed)

	start := time.Now()
	anomaly.NaiveMatrixProfile(xs, m)
	row(tw, n, 1, "rMP", time.Since(start).Seconds(), 0.0)

	ratios := []float64{5, 10, 20, 50, 100}
	if cfg.Quick {
		ratios = []float64{10}
	}
	for _, cr := range ratios {
		cStart := time.Now()
		res, err := core.Compress(xs, core.Options{Lags: 50, TargetRatio: cr})
		if err != nil {
			return err
		}
		compressSecs := time.Since(cStart).Seconds()
		start := time.Now()
		anomaly.IrregularMatrixProfile(res.Compressed, m)
		row(tw, n, res.CompressionRatio(), "iMP", time.Since(start).Seconds(), compressSecs)
	}
	return tw.Flush()
}

// syntheticMPSeries builds the 2^p-point seasonal series of the iMP timing
// study.
func syntheticMPSeries(n int, seed int64) []float64 {
	xs := make([]float64, n)
	rng := newDeterministicNoise(seed)
	for i := range xs {
		xs[i] = math.Sin(2*math.Pi*float64(i)/128) +
			0.5*math.Sin(2*math.Pi*float64(i)/37) + 0.1*rng()
	}
	return xs
}

// newDeterministicNoise is a tiny LCG so the timing series does not depend
// on math/rand's global state.
func newDeterministicNoise(seed int64) func() float64 {
	state := uint64(seed)*2862933555777941757 + 3037000493
	return func() float64 {
		state = state*6364136223846793005 + 1442695040888963407
		return float64(int64(state>>11))/float64(1<<52) - 1
	}
}
