package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// quickConfig keeps every runner fast enough for CI.
func quickConfig(buf *bytes.Buffer) Config {
	return Config{Out: buf, Scale: 0.02, MaxN: 3000, Seed: 1, Quick: true}
}

func TestRegistryComplete(t *testing.T) {
	// One runner per paper artifact: Tables 1-4 and Figures 1, 3, 6-13.
	want := []string{
		"tab1", "tab2", "tab3", "tab4",
		"fig1", "fig3", "fig6", "fig7", "fig8", "fig9",
		"fig10a", "fig10b", "fig11", "fig12a", "fig12b", "fig12c", "fig13",
		"pacf",
	}
	reg := Registry()
	if len(reg) != len(want) {
		t.Fatalf("registry has %d entries, want %d", len(reg), len(want))
	}
	for _, id := range want {
		if reg[id] == nil {
			t.Errorf("missing runner %q", id)
		}
	}
	if len(IDs()) != len(want) {
		t.Fatalf("IDs() size mismatch")
	}
}

// TestAllRunnersQuick executes every experiment end-to-end in quick mode
// and checks each produces a non-trivial table mentioning its artifact.
func TestAllRunnersQuick(t *testing.T) {
	headers := map[string]string{
		"tab1": "Table 1", "tab2": "Table 2", "tab3": "Table 3", "tab4": "Table 4",
		"fig1": "Figure 1", "fig3": "Figure 3", "fig6": "Figure 6", "fig7": "Figure 7",
		"fig8": "Figure 8", "fig9": "Figure 9", "fig10a": "Figure 10a",
		"fig10b": "Figure 10b", "fig11": "Figure 11", "fig12a": "Figure 12a",
		"fig12b": "Figure 12b", "fig12c": "Figure 12c", "fig13": "Figure 13",
		"pacf": "PACF preservation",
	}
	for id, run := range Registry() {
		id, run := id, run
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			var buf bytes.Buffer
			if err := run(quickConfig(&buf)); err != nil {
				t.Fatalf("%s failed: %v", id, err)
			}
			out := buf.String()
			if !strings.Contains(out, headers[id]) {
				t.Fatalf("%s output missing header %q:\n%s", id, headers[id], out)
			}
			if lines := strings.Count(out, "\n"); lines < 3 {
				t.Fatalf("%s output too small (%d lines):\n%s", id, lines, out)
			}
		})
	}
}

func TestScaledLengthBounds(t *testing.T) {
	for _, spec := range allSpecs(Config{Scale: 0.001, MaxN: 40000, Seed: 1}.withDefaults()) {
		cfg := Config{Scale: 0.001, MaxN: 40000, Seed: 1}.withDefaults()
		n := scaledLength(spec, cfg)
		if n < 4*spec.Lags && !spec.Group2() {
			t.Errorf("%s scaled to %d points for %d lags", spec.Name, n, spec.Lags)
		}
		if n > cfg.MaxN {
			t.Errorf("%s exceeded MaxN: %d", spec.Name, n)
		}
	}
}

func TestEpsGridScales(t *testing.T) {
	if g := epsGrid("SolarPower", false); g[len(g)-1] != 0.001 {
		t.Fatalf("SolarPower grid top = %v", g[len(g)-1])
	}
	if g := epsGrid("Humidity", false); g[len(g)-1] != 0.01 {
		t.Fatalf("Humidity grid top = %v", g[len(g)-1])
	}
	if g := epsGrid("ElecPower", false); g[len(g)-1] != 0.1 {
		t.Fatalf("ElecPower grid top = %v", g[len(g)-1])
	}
	if g := epsGrid("ElecPower", true); len(g) != 2 {
		t.Fatalf("quick grid size = %d", len(g))
	}
}

func TestFormatFloat(t *testing.T) {
	cases := map[float64]string{
		1.23456:  "1.235",
		0.000012: "1.200e-05",
		1234567:  "1.235e+06",
	}
	for v, want := range cases {
		if got := formatFloat(v); got != want {
			t.Errorf("formatFloat(%v) = %q, want %q", v, got, want)
		}
	}
}
