package experiments

import (
	"fmt"
	"math"
	"time"

	"repro/internal/core"
	"repro/internal/datasets"
)

// PACFRuntime regenerates the paper's §5.5 "PACF Preservation Runtime
// Analysis" (a textual result, not a figure): preserving the PACF costs a
// Durbin-Levinson recursion (O(L^2)) per impact evaluation, making it
// several times slower than ACF preservation at the same blocking size,
// while the compression ratio stays comparable. The paper reports ~6x on
// ElecPower at 10*log n hops; the runner also demonstrates the proposed
// remedy — preserving only a subset of lags (Options.LagSubset).
func PACFRuntime(cfg Config) error {
	cfg = cfg.withDefaults()
	fmt.Fprintln(cfg.Out, "## §5.5 PACF preservation — runtime vs ACF preservation")
	tw := newTable(cfg.Out, "dataset", "statistic", "seconds", "slowdown", "CR")
	specs := []datasets.Spec{datasets.ElecPower(), datasets.Pedestrian()}
	if cfg.Quick {
		specs = specs[:1]
	}
	for _, spec := range specs {
		xs := genData(spec, cfg)
		logn := int(math.Ceil(math.Log2(float64(len(xs)))))
		eps := 0.01

		run := func(name string, stat core.Statistic, subset []int) (float64, float64, error) {
			opt := coreOptions(spec, eps)
			opt.Statistic = stat
			opt.BlockHops = 10 * logn
			opt.LagSubset = subset
			start := time.Now()
			res, err := core.Compress(xs, opt)
			if err != nil {
				return 0, 0, err
			}
			return time.Since(start).Seconds(), res.CompressionRatio(), nil
		}

		acfSecs, acfCR, err := run("ACF", core.StatACF, nil)
		if err != nil {
			return err
		}
		row(tw, spec.Name, "ACF", acfSecs, 1.0, acfCR)

		pacfSecs, pacfCR, err := run("PACF", core.StatPACF, nil)
		if err != nil {
			return err
		}
		row(tw, spec.Name, "PACF", pacfSecs, pacfSecs/acfSecs, pacfCR)

		// The paper's proposed future-work remedy: constrain only low lags,
		// which truncates the prefix-structured Durbin-Levinson recursion.
		subset := []int{1, spec.Lags / 4, spec.Lags / 2}
		subSecs, subCR, err := run("PACF-subset", core.StatPACF, subset)
		if err != nil {
			return err
		}
		row(tw, spec.Name, "PACF lags {1,L/4,L/2}", subSecs, subSecs/acfSecs, subCR)
	}
	return tw.Flush()
}
