package experiments

import (
	"fmt"
	"math"
	"time"

	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/lossy"
	"repro/internal/simplify"
)

// tab3Eps returns the paper's Table 3 error bounds: 0.01 for the small
// datasets, 0.001 for the large ones.
func tab3Eps(spec datasets.Spec) float64 {
	if spec.Length > 100000 {
		return 0.001
	}
	return 0.01
}

// Table3 regenerates Table 3: single-threaded compression times of every
// baseline and of CAMEO at blocking sizes 1, log n ... 10 log n and without
// blocking, with the compression ratio capped at 10.
// Expected shape: PMC/FFT fastest; CAMEO at 1 hop comparable to the other
// line simplifiers; time grows ~linearly with hops; no blocking ("w/b") is
// orders of magnitude slower.
func Table3(cfg Config) error {
	cfg = cfg.withDefaults()
	fmt.Fprintln(cfg.Out, "## Table 3 — Compression times (seconds), CR capped at 10")
	tw := newTable(cfg.Out, "dataset", "method", "seconds")
	for _, spec := range allSpecs(cfg) {
		xs := genData(spec, cfg)
		eps := tab3Eps(spec)

		for _, c := range lossyBaselines() {
			start := time.Now()
			lossy.SearchRatio(xs, c, 10, 6)
			row(tw, spec.Name, c.Name(), time.Since(start).Seconds())
		}

		sOpt := simplifyOptions(spec, eps)
		sOpt.TargetRatio = 10
		start := time.Now()
		if _, err := simplify.TurningPoints(xs, simplify.TPSum, sOpt); err != nil && err != simplify.ErrBoundExceeded {
			return err
		}
		row(tw, spec.Name, "TP", time.Since(start).Seconds())
		start = time.Now()
		if _, err := simplify.PIP(xs, simplify.PIPVertical, sOpt); err != nil {
			return err
		}
		row(tw, spec.Name, "PIP", time.Since(start).Seconds())
		start = time.Now()
		if _, err := simplify.VW(xs, sOpt); err != nil {
			return err
		}
		row(tw, spec.Name, "VW", time.Since(start).Seconds())

		logn := int(math.Ceil(math.Log2(float64(len(xs)))))
		hops := []struct {
			name string
			h    int
		}{
			{"CAMEO h=1", 1},
			{"CAMEO h=log n", logn},
			{"CAMEO h=3log n", 3 * logn},
			{"CAMEO h=5log n", 5 * logn},
			{"CAMEO h=7log n", 7 * logn},
			{"CAMEO h=10log n", 10 * logn},
			{"CAMEO w/b", -1},
		}
		if cfg.Quick {
			hops = []struct {
				name string
				h    int
			}{{"CAMEO h=1", 1}, {"CAMEO h=log n", logn}, {"CAMEO w/b", -1}}
		}
		for _, hc := range hops {
			if hc.h < 0 && len(xs) > 12000 {
				// The paper itself finds unblocked CAMEO "infeasible for
				// real-life applications" (Table 3 w/b column, hours on the
				// large datasets); cap it to keep the harness usable.
				row(tw, spec.Name, hc.name, "skipped (n > 12000)")
				continue
			}
			opt := coreOptions(spec, eps)
			opt.TargetRatio = 10
			opt.BlockHops = hc.h
			start := time.Now()
			if _, err := core.Compress(xs, opt); err != nil {
				return err
			}
			row(tw, spec.Name, hc.name, time.Since(start).Seconds())
		}
	}
	return tw.Flush()
}

// Table4 regenerates Table 4: decompression times at 10x compression.
// Expected shape: line-simplification interpolation (CAMEO) fastest; FFT
// slowest (O(n log n) inverse transform).
func Table4(cfg Config) error {
	cfg = cfg.withDefaults()
	fmt.Fprintln(cfg.Out, "## Table 4 — Decompression times (ms) at 10x compression")
	tw := newTable(cfg.Out, "dataset", "method", "ms")
	for _, spec := range group2Specs() {
		xs := genData(spec, cfg)
		for _, c := range lossyBaselines() {
			comp := lossy.SearchRatio(xs, c, 10, 6)
			start := time.Now()
			comp.Decompress()
			row(tw, spec.Name, c.Name(), float64(time.Since(start).Microseconds())/1000)
		}
		opt := coreOptions(spec, tab3Eps(spec))
		opt.Epsilon = 0
		opt.TargetRatio = 10
		res, err := core.Compress(xs, opt)
		if err != nil {
			return err
		}
		start := time.Now()
		res.Compressed.Decompress()
		row(tw, spec.Name, "CAMEO", float64(time.Since(start).Microseconds())/1000)
	}
	return tw.Flush()
}

// Figure10a regenerates Figure 10a: fine-grained parallel speedup vs thread
// count for hop sizes log n ... 10 log n on MinTemp and SolarPower.
// Expected shape: speedups grow with hop size and lag count; tiny hop
// neighbourhoods can even slow down (thread overhead).
func Figure10a(cfg Config) error {
	cfg = cfg.withDefaults()
	fmt.Fprintln(cfg.Out, "## Figure 10a — Fine-grained parallel speedup")
	tw := newTable(cfg.Out, "dataset", "hops", "threads", "seconds", "speedup")
	threads := []int{1, 2, 4, 8}
	if cfg.Quick {
		threads = []int{1, 4}
	}
	for _, spec := range []datasets.Spec{datasets.MinTemp(), datasets.SolarPower()} {
		xs := genData(spec, cfg)
		logn := int(math.Ceil(math.Log2(float64(len(xs)))))
		hopSet := []int{logn, 5 * logn, 10 * logn}
		if cfg.Quick {
			hopSet = []int{5 * logn}
		}
		for _, hops := range hopSet {
			base := math.NaN()
			for _, t := range threads {
				opt := coreOptions(spec, tab3Eps(spec))
				opt.TargetRatio = 10
				opt.BlockHops = hops
				opt.Threads = t
				start := time.Now()
				if _, err := core.Compress(xs, opt); err != nil {
					return err
				}
				secs := time.Since(start).Seconds()
				if t == 1 {
					base = secs
				}
				row(tw, spec.Name, hops, t, secs, base/secs)
			}
		}
	}
	return tw.Flush()
}

// Figure10b regenerates Figure 10b: coarse-grained speedup, resulting ACF
// error (must stay below the bound), and compression ratio relative to
// single-threaded, on Humidity and IRBioTemp.
// Expected shape: multi-x speedups; ACF error below the constraint at all
// thread counts; CR within a small factor of single-threaded (sometimes
// higher).
func Figure10b(cfg Config) error {
	cfg = cfg.withDefaults()
	fmt.Fprintln(cfg.Out, "## Figure 10b — Coarse-grained parallelization")
	tw := newTable(cfg.Out, "dataset", "threads", "seconds", "speedup", "ACF-err", "rel-CR")
	threads := []int{1, 2, 4, 8, 16}
	if cfg.Quick {
		threads = []int{1, 4}
	}
	for _, spec := range []datasets.Spec{datasets.Humidity(), datasets.IRBioTemp()} {
		xs := genData(spec, cfg)
		// The paper uses eps = 1e-4 on the full-size datasets; scale-invariant
		// enough to reuse directly.
		eps := 1e-4
		var baseSecs, baseCR float64
		for _, t := range threads {
			opt := core.CoarseOptions{Options: coreOptions(spec, eps), Partitions: t}
			start := time.Now()
			res, err := core.CompressCoarse(xs, opt)
			if err != nil {
				return err
			}
			secs := time.Since(start).Seconds()
			dev, err := core.Deviation(xs, res.Compressed, opt.Options)
			if err != nil {
				return err
			}
			if t == 1 {
				baseSecs, baseCR = secs, res.CompressionRatio()
			}
			row(tw, spec.Name, t, secs, baseSecs/secs, dev, res.CompressionRatio()/baseCR)
		}
	}
	return tw.Flush()
}

// Figure11 regenerates Figure 11: the joint fine x coarse speedup grid at
// hop size 10 log n on four datasets.
// Expected shape: multiplicative gains, strongest where the lag count is
// high (MinTemp); most of the speedup from the coarse axis elsewhere.
func Figure11(cfg Config) error {
	cfg = cfg.withDefaults()
	fmt.Fprintln(cfg.Out, "## Figure 11 — Hybrid fine x coarse speedup grid")
	tw := newTable(cfg.Out, "dataset", "fine", "coarse", "seconds", "speedup")
	grid := []int{1, 2, 4, 8}
	if cfg.Quick {
		grid = []int{1, 4}
	}
	specs := []datasets.Spec{
		datasets.MinTemp(), datasets.IRBioTemp(),
		datasets.Humidity(), datasets.SolarPower(),
	}
	if cfg.Quick {
		specs = specs[:2]
	}
	for _, spec := range specs {
		xs := genData(spec, cfg)
		logn := int(math.Ceil(math.Log2(float64(len(xs)))))
		eps := tab3Eps(spec)
		var base float64
		for _, fine := range grid {
			for _, coarse := range grid {
				opt := core.CoarseOptions{Options: coreOptions(spec, eps), Partitions: coarse}
				opt.BlockHops = 10 * logn
				opt.Threads = fine
				opt.TargetRatio = 10
				start := time.Now()
				if _, err := core.CompressCoarse(xs, opt); err != nil {
					return err
				}
				secs := time.Since(start).Seconds()
				if fine == 1 && coarse == 1 {
					base = secs
				}
				row(tw, spec.Name, fine, coarse, secs, base/secs)
			}
		}
	}
	return tw.Flush()
}
