package experiments

import (
	"fmt"
	"math"

	"repro/internal/acf"
	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/features"
	"repro/internal/forecast"
	"repro/internal/lossy"
	"repro/internal/series"
	"repro/internal/stats"
)

// Table1 regenerates Table 1: the summary statistics of the (replica)
// datasets — length, lag configuration, ACF1/ACF10/PACF5, value range,
// median, sigma, step probabilities, mean delta.
// Expected shape: all replicas strongly autocorrelated (ACF1 >= ~0.75);
// SolarPower dominated by equal steps; group-2 datasets configured as
// "L on kappa".
func Table1(cfg Config) error {
	cfg = cfg.withDefaults()
	fmt.Fprintln(cfg.Out, "## Table 1 — Dataset summary (synthetic replicas at scaled length)")
	tw := newTable(cfg.Out, "dataset", "n", "lags", "ACF1", "ACF10", "PACF5",
		"min", "range", "median", "sigma", "p-up", "p-eq", "p-down", "mean-delta")
	for _, spec := range datasets.Replicas() {
		xs := genData(spec, cfg)
		data := xs
		if spec.Group2() {
			data = aggregated(xs, spec)
		}
		a := acf.ACF(data, 10)
		var acf10 float64
		for _, r := range a {
			acf10 += r * r
		}
		var pacf5 float64
		for _, p := range acf.PACF(data, 5) {
			pacf5 += p * p
		}
		d := stats.Describe(xs)
		lagCfg := fmt.Sprint(spec.Lags)
		if spec.Group2() {
			lagCfg = fmt.Sprintf("%d on %d", spec.Lags, spec.AggWindow)
		}
		row(tw, spec.Name, d.Length, lagCfg, a[0], acf10, pacf5,
			d.Min, d.Range, d.Median, d.Std, d.PUp, d.PEq, d.PDown, d.MeanDelta)
	}
	return tw.Flush()
}

// Figure3 regenerates Figure 3: the skew of initial ACF importance across
// points of four series.
// Expected shape: heavily right-skewed — median importance near zero, the
// top points an order of magnitude above.
func Figure3(cfg Config) error {
	cfg = cfg.withDefaults()
	fmt.Fprintln(cfg.Out, "## Figure 3 — Initial ACF-importance skew")
	tw := newTable(cfg.Out, "dataset", "n", "q50", "q90", "q99", "max", "max/q50")
	specs := []datasets.Spec{
		datasets.ElecPower(), datasets.MinTemp(),
		datasets.Pedestrian(), datasets.UKElecDem(),
	}
	for _, spec := range specs {
		xs := genData(spec, cfg)
		imp, err := core.InitialImpacts(xs, coreOptions(spec, 0.01))
		if err != nil {
			return err
		}
		interior := imp[1 : len(imp)-1]
		q50 := stats.Quantile(interior, 0.5)
		q90 := stats.Quantile(interior, 0.9)
		q99 := stats.Quantile(interior, 0.99)
		mx := stats.Max(interior)
		ratio := math.Inf(1)
		if q50 > 0 {
			ratio = mx / q50
		}
		row(tw, spec.Name, len(xs), q50, q90, q99, mx, ratio)
	}
	return tw.Flush()
}

// Figure1 regenerates the Figure 1 motivation study: compress three dataset
// families with the DFT (FFT) compressor at a range of levels, measure the
// impact on STL-ETS forecasting accuracy (mSMAPE), and correlate that
// impact with the deviation of each statistical feature across levels.
// Expected shape: ACF1/ACF10/PACF5 deviations correlate more strongly with
// forecasting impact than NRMSE and PSNR.
func Figure1(cfg Config) error {
	cfg = cfg.withDefaults()
	fmt.Fprintln(cfg.Out, "## Figure 1 — Correlation of feature deviations with forecasting impact")
	tw := newTable(cfg.Out, "dataset", "Trend", "Linearity", "Curvature", "Nonlin",
		"PSNR", "NRMSE", "ACF10", "ACF1", "PACF5")

	// Three seasonal families stand in for Pedestrian/Rideshare/AirQuality
	// (only Pedestrian is replicable from Table 1; see DESIGN.md).
	specs := []datasets.Spec{
		datasets.Pedestrian(), datasets.ElecPower(), datasets.UKElecDem(),
	}
	levels := []float64{0.3, 0.45, 0.6, 0.7, 0.8, 0.9, 0.95}
	nSeries := 4 // pool several series per family, like the paper's archives
	if cfg.Quick {
		levels = []float64{0.5, 0.9}
		nSeries = 1
	}
	horizon := 24
	avg := make([]float64, 9)
	for _, spec := range specs {
		var impact []float64
		devs := make([][]float64, 9) // per-feature deviation samples
		for s := 0; s < nSeries; s++ {
			xs := spec.GenerateN(scaledLength(spec, cfg), cfg.Seed+int64(s))
			train, test, err := forecast.SplitTrainTest(xs, horizon)
			if err != nil {
				return err
			}
			baseEv, err := forecast.Evaluate(forecast.NewSTLETS(spec.Period), train, test, horizon)
			if err != nil {
				return err
			}
			for _, lvl := range levels {
				comp := (lossy.FFTCompressor{}).CompressParam(train, lvl)
				recon := comp.Decompress()
				ev, err := forecast.Evaluate(forecast.NewSTLETS(spec.Period), recon, test, horizon)
				if err != nil {
					continue
				}
				impact = append(impact, math.Abs(ev.MSMAPE-baseEv.MSMAPE))
				fd := features.Compare(train, recon, spec.Period)
				for i, v := range devVector(fd) {
					devs[i] = append(devs[i], v)
				}
			}
		}
		cols := make([]interface{}, 0, 10)
		cols = append(cols, spec.Name)
		for i := range devs {
			r := stats.Pearson(devs[i], impact)
			if math.IsNaN(r) {
				r = 0
			}
			if i == 4 { // PSNR improves as distortion falls: use |r|
				r = math.Abs(r)
			}
			avg[i] += r / float64(len(specs))
			cols = append(cols, r)
		}
		row(tw, cols...)
	}
	cols := make([]interface{}, 0, 10)
	cols = append(cols, "Average")
	for _, v := range avg {
		cols = append(cols, v)
	}
	row(tw, cols...)
	return tw.Flush()
}

// devVector orders feature deviations as the Figure 1 columns.
func devVector(d features.Deviation) []float64 {
	return []float64{
		d.Trend, d.Linearity, d.Curvature, d.Nonlinearity,
		d.PSNR, d.NRMSE, d.ACF10, d.ACF1, d.PACF5,
	}
}

// aggregated applies a spec's window aggregation.
func aggregated(xs []float64, spec datasets.Spec) []float64 {
	if !spec.Group2() {
		return xs
	}
	return series.Aggregate(xs, spec.AggWindow, spec.AggFunc)
}
