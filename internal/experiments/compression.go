package experiments

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/lossless"
	"repro/internal/lossy"
	"repro/internal/simplify"
	"repro/internal/stats"
)

// Figure6 regenerates the paper's Figure 6: compression ratio as the ACF
// error bound increases, CAMEO vs the line-simplification baselines
// (VW, TPs, TPm, PIPv, PIPe) on all eight datasets.
// Expected shape: CAMEO dominates at every bound; TP fails outright on
// Pedestrian and SolarPower.
func Figure6(cfg Config) error {
	cfg = cfg.withDefaults()
	fmt.Fprintln(cfg.Out, "## Figure 6 — Compression ratio vs ACF error bound (line simplification)")
	tw := newTable(cfg.Out, "dataset", "eps", "method", "CR", "ACF-MAE")
	specs := allSpecs(cfg)
	for _, spec := range specs {
		xs := genData(spec, cfg)
		for _, eps := range epsGrid(spec.Name, cfg.Quick) {
			res, err := core.Compress(xs, coreOptions(spec, eps))
			if err != nil {
				return err
			}
			row(tw, spec.Name, eps, "CAMEO", res.CompressionRatio(), res.Deviation)

			sOpt := simplifyOptions(spec, eps)
			for _, b := range []struct {
				name string
				run  func() (*simplify.Result, error)
			}{
				{"VW", func() (*simplify.Result, error) { return simplify.VW(xs, sOpt) }},
				{"TPs", func() (*simplify.Result, error) { return simplify.TurningPoints(xs, simplify.TPSum, sOpt) }},
				{"TPm", func() (*simplify.Result, error) { return simplify.TurningPoints(xs, simplify.TPMae, sOpt) }},
				{"PIPv", func() (*simplify.Result, error) { return simplify.PIP(xs, simplify.PIPVertical, sOpt) }},
				{"PIPe", func() (*simplify.Result, error) { return simplify.PIP(xs, simplify.PIPEuclidean, sOpt) }},
			} {
				r, err := b.run()
				if errors.Is(err, simplify.ErrBoundExceeded) {
					row(tw, spec.Name, eps, b.name, "-", r.Deviation)
					continue
				}
				if err != nil {
					return fmt.Errorf("%s on %s: %w", b.name, spec.Name, err)
				}
				row(tw, spec.Name, eps, b.name, r.CompressionRatio(), r.Deviation)
			}
		}
	}
	return tw.Flush()
}

// Figure7 regenerates Figure 7: CAMEO vs the lossy compressor baselines
// (PMC, SWING, SP, FFT) whose parameters are found by trial-and-error
// search under the ACF bound.
// Expected shape: CAMEO wins overall; FFT can win on low-frequency
// datasets (Pedestrian, UKElecDem); SWING/SP can win at large bounds on
// ElecPower/Humidity.
func Figure7(cfg Config) error {
	cfg = cfg.withDefaults()
	fmt.Fprintln(cfg.Out, "## Figure 7 — Compression ratio vs ACF error bound (lossy compressors)")
	tw := newTable(cfg.Out, "dataset", "eps", "method", "CR", "ACF-MAE")
	for _, spec := range allSpecs(cfg) {
		xs := genData(spec, cfg)
		for _, eps := range epsGrid(spec.Name, cfg.Quick) {
			res, err := core.Compress(xs, coreOptions(spec, eps))
			if err != nil {
				return err
			}
			row(tw, spec.Name, eps, "CAMEO", res.CompressionRatio(), res.Deviation)
			bOpt := boundOptions(spec, eps, cfg)
			for _, c := range lossyBaselines() {
				found := lossy.SearchACFBound(xs, c, bOpt)
				if found == nil {
					row(tw, spec.Name, eps, c.Name(), "-", "-")
					continue
				}
				row(tw, spec.Name, eps, c.Name(), found.Compressed.CompressionRatio(), found.Deviation)
			}
		}
	}
	return tw.Flush()
}

// Table2 regenerates Table 2: bits/value of the lossless codecs vs VW and
// CAMEO (64 bits per retained point), with the error bound that achieves a
// lower bits/value than both Gorilla and Chimp.
// Expected shape: VW and CAMEO beat both codecs at small eps on every
// dataset, CAMEO at equal-or-smaller eps than VW.
func Table2(cfg Config) error {
	cfg = cfg.withDefaults()
	fmt.Fprintln(cfg.Out, "## Table 2 — Bits/value of lossless codecs vs VW and CAMEO")
	tw := newTable(cfg.Out, "dataset", "Gorilla b/v", "Chimp b/v", "Elf b/v", "VW b/v", "VW eps", "CAMEO b/v", "CAMEO eps")
	ladder := []float64{1e-5, 5e-5, 1e-4, 5e-4, 1e-3, 3e-3, 5e-3, 7e-3, 1e-2}
	if cfg.Quick {
		ladder = []float64{1e-3, 1e-2}
	}
	for _, spec := range allSpecs(cfg) {
		xs := genData(spec, cfg)
		g := lossless.Gorilla(xs).BitsPerValue()
		c := lossless.Chimp(xs).BitsPerValue()
		el := lossless.Elf(xs).BitsPerValue()
		target := math.Min(g, c)

		vwBits, vwEps := bitsBelow(target, ladder, func(eps float64) (float64, error) {
			r, err := simplify.VW(xs, simplifyOptions(spec, eps))
			if err != nil {
				return math.Inf(1), err
			}
			return 64 / r.CompressionRatio(), nil
		})
		camBits, camEps := bitsBelow(target, ladder, func(eps float64) (float64, error) {
			r, err := core.Compress(xs, coreOptions(spec, eps))
			if err != nil {
				return math.Inf(1), err
			}
			return 64 / r.CompressionRatio(), nil
		})
		row(tw, spec.Name, g, c, el, vwBits, vwEps, camBits, camEps)
	}
	return tw.Flush()
}

// bitsBelow walks the eps ladder from tightest to loosest and returns the
// first bits/value below target together with its eps; if none qualifies it
// returns the best achieved.
func bitsBelow(target float64, ladder []float64, eval func(eps float64) (float64, error)) (float64, float64) {
	bestBits, bestEps := math.Inf(1), math.NaN()
	for _, eps := range ladder {
		bits, err := eval(eps)
		if err != nil {
			continue
		}
		if bits < bestBits {
			bestBits, bestEps = bits, eps
		}
		if bits < target {
			return bits, eps
		}
	}
	return bestBits, bestEps
}

// Figure8 regenerates Figure 8: reconstruction NRMSE as the compression
// ratio increases, for every method in compression-centric mode.
// Expected shape: no single winner; CAMEO mid-pack and never worst; PIPe
// often worst among line simplifiers.
func Figure8(cfg Config) error {
	cfg = cfg.withDefaults()
	fmt.Fprintln(cfg.Out, "## Figure 8 — NRMSE vs compression ratio")
	tw := newTable(cfg.Out, "dataset", "CR-target", "method", "CR", "NRMSE")
	ratios := []float64{2, 5, 10, 20}
	if cfg.Quick {
		ratios = []float64{5}
	}
	for _, spec := range allSpecs(cfg) {
		xs := genData(spec, cfg)
		for _, cr := range ratios {
			emit := func(name string, recon []float64, got float64) {
				row(tw, spec.Name, cr, name, got, stats.NRMSE(xs, recon))
			}
			res, err := core.Compress(xs, core.Options{
				Lags: spec.Lags, TargetRatio: cr,
				AggWindow: spec.AggWindow, AggFunc: spec.AggFunc,
			})
			if err != nil {
				return err
			}
			emit("CAMEO", res.Compressed.Decompress(), res.CompressionRatio())

			sOpt := simplify.Options{Lags: spec.Lags, TargetRatio: cr, AggWindow: spec.AggWindow, AggFunc: spec.AggFunc}
			if r, err := simplify.VW(xs, sOpt); err == nil {
				emit("VW", r.Compressed.Decompress(), r.CompressionRatio())
			}
			if r, err := simplify.PIP(xs, simplify.PIPVertical, sOpt); err == nil {
				emit("PIPv", r.Compressed.Decompress(), r.CompressionRatio())
			}
			if r, err := simplify.PIP(xs, simplify.PIPEuclidean, sOpt); err == nil {
				emit("PIPe", r.Compressed.Decompress(), r.CompressionRatio())
			}
			for _, c := range lossyBaselines() {
				comp := lossy.SearchRatio(xs, c, cr, searchIters(cfg))
				emit(c.Name(), comp.Decompress(), comp.CompressionRatio())
			}
		}
	}
	return tw.Flush()
}

// Figure9 regenerates Figure 9: compression ratio under different blocking
// neighbourhood sizes (n/2, sqrt n, 15 log n ... log n) on four datasets.
// Expected shape: factors 5-15 of log n match near-exhaustive updating;
// bare log n is visibly worse.
func Figure9(cfg Config) error {
	cfg = cfg.withDefaults()
	fmt.Fprintln(cfg.Out, "## Figure 9 — Compression ratio under blocking sizes")
	tw := newTable(cfg.Out, "dataset", "eps", "blocking", "hops", "CR")
	specs := []datasets.Spec{
		datasets.Pedestrian(), datasets.UKElecDem(),
		datasets.AUSElecDem(), datasets.Humidity(),
	}
	// The n/2 and sqrt(n) settings are near-exhaustive re-ranking (that is
	// the point of the comparison) and therefore quadratic: cap this
	// micro-benchmark's series length so the sweep stays tractable.
	if cfg.MaxN > 4000 {
		cfg.MaxN = 4000
	}
	for _, spec := range specs {
		xs := genData(spec, cfg)
		n := len(xs)
		logn := int(math.Ceil(math.Log2(float64(n))))
		blockings := []struct {
			name    string
			hops    int
			noReval bool
		}{
			{"n/2", n / 2, false},
			{"sqrt(n)", int(math.Sqrt(float64(n))), false},
			{"15*log(n)", 15 * logn, false},
			{"10*log(n)", 10 * logn, false},
			{"5*log(n)", 5 * logn, false},
			{"log(n)", logn, false},
			// Ablation: with pop-revalidation disabled, small neighbourhoods
			// degrade visibly — the paper's original log(n) observation.
			// Our always-on revalidation largely closes that gap.
			{"log(n) no-reval", logn, true},
		}
		if cfg.Quick {
			blockings = blockings[4:] // 5*log(n), log(n), ablation
		}
		grid := epsGrid(spec.Name, cfg.Quick)
		for _, eps := range grid {
			for _, b := range blockings {
				opt := coreOptions(spec, eps)
				opt.BlockHops = b.hops
				opt.NoRevalidate = b.noReval
				if spec.Group2() {
					// Paper §5.4: multiply hops by the aggregation window so
					// the neighbourhood covers the aggregated lags.
					opt.BlockHops = b.hops * spec.AggWindow
				}
				res, err := core.Compress(xs, opt)
				if err != nil {
					return err
				}
				row(tw, spec.Name, eps, b.name, opt.BlockHops, res.CompressionRatio())
			}
		}
	}
	return tw.Flush()
}

// allSpecs trims the heavy group-2 datasets in quick mode.
func allSpecs(cfg Config) []datasets.Spec {
	if cfg.Quick {
		return []datasets.Spec{datasets.ElecPower(), datasets.Pedestrian(), datasets.AUSElecDem()}
	}
	return datasets.Replicas()
}

// lossyBaselines returns the four knob-driven baselines.
func lossyBaselines() []lossy.Compressor {
	return []lossy.Compressor{
		lossy.PMCCompressor{}, lossy.SwingCompressor{},
		lossy.SimPieceCompressor{}, lossy.FFTCompressor{},
	}
}

// boundOptions builds the search options matching a dataset's statistic
// configuration.
func boundOptions(spec datasets.Spec, eps float64, cfg Config) lossy.BoundOptions {
	return lossy.BoundOptions{
		Lags: spec.Lags, Epsilon: eps, Measure: stats.MeasureMAE,
		AggWindow: spec.AggWindow, AggFunc: spec.AggFunc,
		Iters: searchIters(cfg),
	}
}

func searchIters(cfg Config) int {
	if cfg.Quick {
		return 8
	}
	return 18
}
