package experiments

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/forecast"
	"repro/internal/lossy"
	"repro/internal/simplify"
	"repro/internal/stats"
)

// fcMethod compresses a training series to (roughly) a target ratio and
// returns its reconstruction for model training.
type fcMethod struct {
	name string
	run  func(xs []float64, cr float64) ([]float64, float64, error)
}

// cameoRatioMethod is CAMEO in compression-centric mode with measure D.
func cameoRatioMethod(name string, lags int, measure stats.Measure) fcMethod {
	return fcMethod{name: name, run: func(xs []float64, cr float64) ([]float64, float64, error) {
		res, err := core.Compress(xs, core.Options{Lags: lags, TargetRatio: cr, Measure: measure})
		if err != nil {
			return nil, 0, err
		}
		return res.Compressed.Decompress(), res.CompressionRatio(), nil
	}}
}

// simplifyRatioMethod wraps a line-simplification baseline.
func simplifyRatioMethod(name string, lags int, run func(xs []float64, opt simplify.Options) (*simplify.Result, error)) fcMethod {
	return fcMethod{name: name, run: func(xs []float64, cr float64) ([]float64, float64, error) {
		r, err := run(xs, simplify.Options{Lags: lags, TargetRatio: cr})
		if err != nil && !errors.Is(err, simplify.ErrBoundExceeded) {
			return nil, 0, err
		}
		return r.Compressed.Decompress(), r.CompressionRatio(), nil
	}}
}

// lossyRatioMethod wraps a knob-driven lossy baseline.
func lossyRatioMethod(c lossy.Compressor, iters int) fcMethod {
	return fcMethod{name: c.Name(), run: func(xs []float64, cr float64) ([]float64, float64, error) {
		comp := lossy.SearchRatio(xs, c, cr, iters)
		return comp.Decompress(), comp.CompressionRatio(), nil
	}}
}

// Figure12a regenerates EXP1 (Figure 12a): forecast MSE/MAPE vs compression
// ratio for CAMEO under four deviation measures (MAE, RMSE, MAPE, CHEB)
// against TP, VW, and PIP, on Box-Cox-stabilized, standardized
// Pedestrian-style chunks with a Holt-Winters forecaster.
// Expected shape: CAMEO variants hold accuracy longest; CHEB best, MAPE
// worst among them.
func Figure12a(cfg Config) error {
	cfg = cfg.withDefaults()
	fmt.Fprintln(cfg.Out, "## Figure 12a — EXP1: forecast accuracy vs CR (measure variants)")
	tw := newTable(cfg.Out, "CR", "method", "MSE", "MAPE")
	spec := datasets.Pedestrian()
	lags := spec.Lags
	horizon := 24
	ratios := []float64{2, 4, 6, 8, 10}
	nChunks := 4
	if cfg.Quick {
		ratios = []float64{4}
		nChunks = 1
	}
	methods := []fcMethod{
		cameoRatioMethod("CAMEO-MAE", lags, stats.MeasureMAE),
		cameoRatioMethod("CAMEO-RMSE", lags, stats.MeasureRMSE),
		cameoRatioMethod("CAMEO-MAPE", lags, stats.MeasureMAPE),
		cameoRatioMethod("CAMEO-CHEB", lags, stats.MeasureChebyshev),
		simplifyRatioMethod("VW", lags, simplify.VW),
		simplifyRatioMethod("TP", lags, func(xs []float64, opt simplify.Options) (*simplify.Result, error) {
			return simplify.TurningPoints(xs, simplify.TPSum, opt)
		}),
		simplifyRatioMethod("PIP", lags, func(xs []float64, opt simplify.Options) (*simplify.Result, error) {
			return simplify.PIP(xs, simplify.PIPVertical, opt)
		}),
	}

	chunkLen := 1440 // 60 days of hourly data per chunk
	for _, cr := range ratios {
		sums := make(map[string][2]float64)
		counts := make(map[string]int)
		for chunk := 0; chunk < nChunks; chunk++ {
			raw := spec.GenerateN(chunkLen, cfg.Seed+int64(chunk))
			// EXP1 preprocessing: Box-Cox then standardization.
			shifted := make([]float64, len(raw))
			for i, v := range raw {
				shifted[i] = v + 1 // counts contain zeros; shift into domain
			}
			lam := stats.GuerreroLambda(shifted, spec.Period)
			bc, err := stats.BoxCox(shifted, lam)
			if err != nil {
				return err
			}
			zs, _, _ := stats.Standardize(bc)
			train, test, err := forecast.SplitTrainTest(zs, horizon)
			if err != nil {
				return err
			}
			for _, m := range methods {
				recon, _, err := m.run(train, cr)
				if err != nil {
					return fmt.Errorf("%s: %w", m.name, err)
				}
				ev, err := forecast.Evaluate(&forecast.HoltWinters{Period: spec.Period}, recon, test, horizon)
				if err != nil {
					continue
				}
				s := sums[m.name]
				s[0] += ev.MSE
				s[1] += ev.MAPE
				sums[m.name] = s
				counts[m.name]++
			}
		}
		for _, m := range methods {
			if counts[m.name] == 0 {
				continue
			}
			n := float64(counts[m.name])
			row(tw, cr, m.name, sums[m.name][0]/n, sums[m.name][1]/n)
		}
	}
	return tw.Flush()
}

// Figure12b regenerates EXP2 (Figure 12b): mSMAPE vs compression ratio for
// three forecasting models (LSTM, STL-ETS, STL-AR) across CAMEO, VW and the
// lossy baselines on Pedestrian-style series, trained on compressed data and
// scored against raw data.
// Expected shape: CAMEO preserves (sometimes improves) accuracy through
// ~10x; VW close behind; error-bound methods degrade faster.
func Figure12b(cfg Config) error {
	cfg = cfg.withDefaults()
	fmt.Fprintln(cfg.Out, "## Figure 12b — EXP2: mSMAPE vs CR per forecasting model")
	tw := newTable(cfg.Out, "model", "CR", "method", "mSMAPE")
	spec := datasets.Pedestrian()
	horizon := 24
	ratios := []float64{2, 5, 10, 20}
	nSeries := 3
	if cfg.Quick {
		ratios = []float64{5}
		nSeries = 1
	}
	methods := []fcMethod{
		cameoRatioMethod("CAMEO", spec.Lags, stats.MeasureMAE),
		simplifyRatioMethod("VW", spec.Lags, simplify.VW),
		lossyRatioMethod(lossy.PMCCompressor{}, searchIters(cfg)),
		lossyRatioMethod(lossy.SwingCompressor{}, searchIters(cfg)),
		lossyRatioMethod(lossy.SimPieceCompressor{}, searchIters(cfg)),
		lossyRatioMethod(lossy.FFTCompressor{}, searchIters(cfg)),
	}
	models := []func() forecast.Forecaster{
		func() forecast.Forecaster {
			return &forecast.LSTM{Window: spec.Period, Hidden: 12, Epochs: lstmEpochs(cfg), Seed: cfg.Seed}
		},
		func() forecast.Forecaster { return forecast.NewSTLETS(spec.Period) },
		func() forecast.Forecaster { return forecast.NewSTLAR(spec.Period) },
	}
	n := 1440
	for mi, mk := range models {
		name := mk().Name()
		_ = mi
		for _, cr := range ratios {
			sums := make(map[string]float64)
			counts := make(map[string]int)
			for s := 0; s < nSeries; s++ {
				raw := spec.GenerateN(n, cfg.Seed+int64(100+s))
				train, test, err := forecast.SplitTrainTest(raw, horizon)
				if err != nil {
					return err
				}
				for _, m := range methods {
					recon, _, err := m.run(train, cr)
					if err != nil {
						return fmt.Errorf("%s: %w", m.name, err)
					}
					ev, err := forecast.Evaluate(mk(), recon, test, horizon)
					if err != nil {
						continue
					}
					sums[m.name] += ev.MSMAPE
					counts[m.name]++
				}
			}
			for _, m := range methods {
				if counts[m.name] == 0 {
					continue
				}
				row(tw, name, cr, m.name, sums[m.name]/float64(counts[m.name]))
			}
		}
	}
	return tw.Flush()
}

// Figure12c regenerates EXP3 (Figure 12c): mSMAPE up to ~100x compression
// on the highly seasonal UKElecDem, SolarPower and MinTemp replicas, CAMEO
// vs VW, with DHR-AR and LSTM models.
// Expected shape: CAMEO holds forecasting accuracy essentially flat to
// 100x; VW degrades earlier.
func Figure12c(cfg Config) error {
	cfg = cfg.withDefaults()
	fmt.Fprintln(cfg.Out, "## Figure 12c — EXP3: highly seasonal data to 100x compression")
	tw := newTable(cfg.Out, "dataset", "model", "CR", "method", "mSMAPE", "seasonal-strength")
	specs := []datasets.Spec{datasets.UKElecDem(), datasets.SolarPower(), datasets.MinTemp()}
	ratios := []float64{10, 25, 50, 100}
	if cfg.Quick {
		specs = specs[:1]
		ratios = []float64{25}
	}
	for _, spec := range specs {
		// Forecast horizon and model period follow the dataset's seasonal
		// structure; group-2 datasets are evaluated on their aggregates,
		// consistent with their Table 1 configuration. Aggregation divides
		// the length by kappa, so group-2 replicas are generated long enough
		// that the aggregated series still holds ~40 seasonal periods
		// (otherwise the compressed training sets degenerate).
		rawN := scaledLength(spec, cfg)
		if spec.Group2() {
			if want := 40 * spec.Period; rawN < want {
				rawN = want
			}
			if rawN > spec.Length {
				rawN = spec.Length
			}
		}
		xs := spec.GenerateN(rawN, cfg.Seed)
		data := aggregated(xs, spec)
		period := spec.Period
		if spec.Group2() {
			period = spec.Period / spec.AggWindow
		}
		if period < 2 {
			period = 2
		}
		horizon := period
		train, test, err := forecast.SplitTrainTest(data, horizon)
		if err != nil {
			return err
		}
		strength := forecast.SeasonalStrength(data, period)
		methods := []fcMethod{
			cameoRatioMethod("CAMEO", period, stats.MeasureMAE),
			simplifyRatioMethod("VW", period, simplify.VW),
		}
		models := []func() forecast.Forecaster{
			func() forecast.Forecaster { return &forecast.DHR{Period: period} },
			func() forecast.Forecaster {
				return &forecast.LSTM{Window: period, Hidden: 12, Epochs: lstmEpochs(cfg), Seed: cfg.Seed}
			},
		}
		for _, mk := range models {
			name := mk().Name()
			for _, cr := range ratios {
				for _, m := range methods {
					recon, gotCR, err := m.run(train, cr)
					if err != nil {
						return fmt.Errorf("%s: %w", m.name, err)
					}
					ev, err := forecast.Evaluate(mk(), recon, test, horizon)
					if err != nil {
						continue
					}
					_ = gotCR
					row(tw, spec.Name, name, cr, m.name, ev.MSMAPE, strength)
				}
			}
		}
	}
	return tw.Flush()
}

func lstmEpochs(cfg Config) int {
	if cfg.Quick {
		return 6
	}
	return 25
}
