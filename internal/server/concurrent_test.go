package server

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/tsdb"
)

// getBody / postBody are error-returning client helpers safe to call from
// non-test goroutines (t.Fatal is not).
func getBody(url string) (int, string, error) {
	resp, err := http.Get(url)
	if err != nil {
		return 0, "", err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	return resp.StatusCode, string(data), err
}

func postBody(url, contentType, body string) (int, string, error) {
	resp, err := http.Post(url, contentType, strings.NewReader(body))
	if err != nil {
		return 0, "", err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	return resp.StatusCode, string(data), err
}

// TestConcurrentIngestAndStreamingQueries is the serving-path stress test
// (run under -race by CI): N writer clients push batches over HTTP while
// M reader clients stream overlapping NDJSON queries and aggregate
// queries from the same httptest server. Afterwards every series' full
// HTTP response must be bit-identical to a direct Store.Query.
func TestConcurrentIngestAndStreamingQueries(t *testing.T) {
	db, err := tsdb.Open(t.TempDir(), testDBOptions(nil))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	srv := httptest.NewServer(NewHandler(db, Options{}))
	defer srv.Close()

	const (
		writers   = 4
		readers   = 3
		batches   = 12
		batchSize = 150
	)
	seriesName := func(w int) string { return fmt.Sprintf("load/w%d", w) }
	escaped := func(w int) string { return "load%2Fw" + strconv.Itoa(w) }

	// Seed every series so readers never race the first batch.
	data := make([][]float64, writers)
	for w := range writers {
		data[w] = sensorData(batches*batchSize, int64(100+w))
		if err := db.Append(seriesName(w), data[w][:batchSize]...); err != nil {
			t.Fatal(err)
		}
	}

	var writerWG, readerWG sync.WaitGroup
	var done atomic.Bool
	errc := make(chan error, writers+readers)
	for w := range writers {
		writerWG.Add(1)
		go func() {
			defer writerWG.Done()
			for b := 1; b < batches; b++ {
				chunk := data[w][b*batchSize : (b+1)*batchSize]
				var body strings.Builder
				ct := "text/plain"
				if b%2 == 0 { // alternate the two write forms
					ct = "application/json"
					body.WriteString(`{"series":[{"name":"` + seriesName(w) + `","values":[`)
					for i, v := range chunk {
						if i > 0 {
							body.WriteByte(',')
						}
						body.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
					}
					body.WriteString(`]}]}`)
				} else {
					for _, v := range chunk {
						body.WriteString(seriesName(w))
						body.WriteByte(' ')
						body.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
						body.WriteByte('\n')
					}
				}
				st, resp, err := postBody(srv.URL+"/api/v1/write", ct, body.String())
				if err != nil || st != http.StatusOK {
					errc <- fmt.Errorf("writer %d batch %d: status %d, %v, %s", w, b, st, err, resp)
					return
				}
			}
		}()
	}
	for r := range readers {
		readerWG.Add(1)
		go func() {
			defer readerWG.Done()
			for i := 0; !done.Load(); i++ {
				w := (r + i) % writers
				from := (i % 5) * 37
				st, body, err := getBody(fmt.Sprintf("%s/api/v1/query?series=%s&from=%d", srv.URL, escaped(w), from))
				if err != nil || st != http.StatusOK {
					errc <- fmt.Errorf("reader %d: query status %d, %v: %s", r, st, err, body)
					return
				}
				if _, err := parseNDJSONBody(body, from); err != nil {
					errc <- fmt.Errorf("reader %d: %w", r, err)
					return
				}
				st, body, err = getBody(fmt.Sprintf("%s/api/v1/query_agg?series=%s&step=48", srv.URL, escaped(w)))
				if err != nil || st != http.StatusOK {
					errc <- fmt.Errorf("reader %d: query_agg status %d, %v: %s", r, st, err, body)
					return
				}
			}
		}()
	}
	writerWG.Wait()
	done.Store(true)
	readerWG.Wait()
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}

	// Settle and verify: the HTTP view of every series is bit-identical
	// to the direct store view, and nothing was lost under concurrency.
	if err := db.Sync(); err != nil {
		t.Fatal(err)
	}
	for w := range writers {
		want, err := db.Query(seriesName(w), 0, batches*batchSize)
		if err != nil {
			t.Fatal(err)
		}
		if len(want) != batches*batchSize {
			t.Fatalf("series %d: %d samples in store, want %d", w, len(want), batches*batchSize)
		}
		st, body := httpGet(t, srv.URL+"/api/v1/query?series="+escaped(w))
		if st != http.StatusOK {
			t.Fatalf("final query w%d: %d", w, st)
		}
		sameBits(t, fmt.Sprintf("final series w%d", w), parseNDJSON(t, body, 0), want)
	}
}

// TestServeGracefulShutdown exercises the daemon lifecycle at the
// listener level: Serve answers requests until its context is canceled,
// drains, and returns; afterwards the port no longer accepts work and the
// store is still the caller's to flush.
func TestServeGracefulShutdown(t *testing.T) {
	db, err := tsdb.Open(t.TempDir(), testDBOptions(nil))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	served := make(chan error, 1)
	go func() { served <- serveListener(ctx, ln, db, Options{DrainTimeout: 5 * time.Second}) }()
	base := "http://" + ln.Addr().String()

	if st, resp, _ := httpPost(t, base+"/api/v1/write", "text/plain", "s 1\ns 2\ns 3\n"); st != http.StatusOK {
		t.Fatalf("write before shutdown: %d %s", st, resp)
	}
	if st, _ := httpGet(t, base+"/healthz"); st != http.StatusOK {
		t.Fatalf("healthz: %d", st)
	}

	cancel()
	select {
	case err := <-served:
		if err != nil {
			t.Fatalf("Serve returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Serve did not return after cancel")
	}
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Fatal("listener still accepting after shutdown")
	}
	// The store remains usable (and flushable) by its owner.
	if got, err := db.Query("s", 0, 3); err != nil || len(got) != 3 {
		t.Fatalf("store after shutdown: %v, %v", got, err)
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
}
