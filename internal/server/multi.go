package server

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"
)

// multiQueryRequest is the JSON body of the batch query endpoints:
// a list of series plus the same range (and, for query_agg, step/aggfn)
// parameters the single-series GET forms take. Omitted from/to default
// exactly like the GET forms (0 and the series end).
type multiQueryRequest struct {
	Series []string `json:"series"`
	From   *int     `json:"from"`
	To     *int     `json:"to"`
	Step   int      `json:"step"`
	AggFn  string   `json:"aggfn"`

	from, to int // resolved bounds
}

// decodeMultiRequest reads and validates a batch query body. The body
// rides the same MaxRequestBytes admission cap as ingest (413 beyond
// it); malformed JSON, an empty series list, or an inverted range is the
// caller's fault (400). Request-level validation happens here so a bad
// batch is refused before any store work; per-series failures later
// stream as in-body error lines instead.
func (s *Server) decodeMultiRequest(w http.ResponseWriter, r *http.Request) (multiQueryRequest, bool) {
	var req multiQueryRequest
	body := http.MaxBytesReader(w, r.Body, s.opt.MaxRequestBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			httpError(w, err)
		} else {
			http.Error(w, "invalid JSON body: "+err.Error(), http.StatusBadRequest)
		}
		return req, false
	}
	if len(req.Series) == 0 {
		http.Error(w, "\"series\" must list at least one series", http.StatusBadRequest)
		return req, false
	}
	req.from, req.to = 0, queryEnd
	if req.From != nil {
		req.from = *req.From
	}
	if req.To != nil {
		req.to = *req.To
	}
	if req.from > req.to {
		http.Error(w, fmt.Sprintf("invalid range: from %d > to %d", req.from, req.to), http.StatusBadRequest)
		return req, false
	}
	return req, true
}

// handleQueryMulti answers a batch raw query over several series in one
// request: the store scatters the per-series scans across its worker
// pool (bounded by the query fan-out), and the response streams the
// sections back in request order as NDJSON, chunk by chunk —
//
//	{"series":<name>,"start":<abs index>,"values":[v,...]}   per chunk
//	{"series":<name>,"start":<start>,"values":[]}            empty section
//	{"series":<name>,"error":<message>}                      failed section
//
// so server-side state stays O(chunk · fanout) regardless of how many
// series or samples the batch covers. Every requested series appears,
// in order, duplicates included. Per-series failures (an unknown
// series among known ones, say) are in-body lines, not a status code:
// once the batch is admitted the response is a 200 stream, and callers
// check each section.
func (s *Server) handleQueryMulti(w http.ResponseWriter, r *http.Request) {
	st := stageTimer{t: traceFrom(r.Context()), name: "admission", at: time.Now()}
	req, ok := s.decodeMultiRequest(w, r)
	if !ok {
		return
	}
	st.next("cursor_open")
	m, err := s.db.MultiCursor(req.Series, req.from, req.to)
	if err != nil {
		httpError(w, err)
		return
	}
	defer m.Close()
	st.stop()
	w.Header().Set("Content-Type", "application/x-ndjson")
	bw := bufio.NewWriterSize(w, 32<<10)
	flusher, _ := w.(http.Flusher)
	lineBuf := encodeBufs.Get().(*[]byte)
	line := (*lineBuf)[:0]
	defer func() { *lineBuf = line[:0]; encodeBufs.Put(lineBuf) }()
	for {
		if _, ok := m.Section(); !ok {
			break
		}
		nameJSON, _ := json.Marshal(m.Series())
		pos := m.Start()
		wrote := false
		for {
			chunk, ok := m.Next()
			if !ok {
				break
			}
			line = line[:0]
			line = append(line, `{"series":`...)
			line = append(line, nameJSON...)
			line = append(line, `,"start":`...)
			line = strconv.AppendInt(line, int64(pos), 10)
			line = append(line, `,"values":[`...)
			for i, v := range chunk {
				if i > 0 {
					line = append(line, ',')
				}
				line = appendJSONFloat(line, v)
			}
			line = append(line, "]}\n"...)
			if _, err := bw.Write(line); err != nil {
				s.queryAborted.Add(1)
				return
			}
			pos += len(chunk)
			// Hand the chunk on before gathering the next, like the
			// single-series stream: decoded bytes never wait on storage.
			if bw.Flush() != nil {
				s.queryAborted.Add(1)
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
			wrote = true
		}
		line = line[:0]
		if err := m.Err(); err != nil {
			msg, _ := json.Marshal(err.Error())
			line = append(line, `{"series":`...)
			line = append(line, nameJSON...)
			line = append(line, `,"error":`...)
			line = append(line, msg...)
			line = append(line, "}\n"...)
		} else if !wrote {
			// An empty section still gets a line, so the response always
			// carries exactly as many sections as the request listed series.
			line = append(line, `{"series":`...)
			line = append(line, nameJSON...)
			line = append(line, `,"start":`...)
			line = strconv.AppendInt(line, int64(pos), 10)
			line = append(line, `,"values":[]}`...)
			line = append(line, '\n')
		}
		if len(line) > 0 {
			if _, err := bw.Write(line); err != nil {
				s.queryAborted.Add(1)
				return
			}
		}
	}
	if bw.Flush() != nil {
		s.queryAborted.Add(1)
	}
}

// handleQueryAggMulti is the batch form of /api/v1/query_agg: one
// request aggregates several series (fanned out store-side, bounded by
// the query fan-out), answered as NDJSON with one line per series in
// request order —
//
//	{"series":<name>,"step":<step>,"aggfn":<fn>,"values":[v,...]}
//	{"series":<name>,"error":<message>}
//
// Aggregate results are one value per window — already tiny — so each
// series' line is written whole, like the single-series form.
func (s *Server) handleQueryAggMulti(w http.ResponseWriter, r *http.Request) {
	st := stageTimer{t: traceFrom(r.Context()), name: "admission", at: time.Now()}
	req, ok := s.decodeMultiRequest(w, r)
	if !ok {
		return
	}
	if req.Step < 1 {
		http.Error(w, fmt.Sprintf("\"step\" must be at least 1, got %d", req.Step), http.StatusBadRequest)
		return
	}
	f, err := parseAggFunc(req.AggFn)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	st.next("resolve")
	results, err := s.db.QueryAggMulti(req.Series, req.from, req.to, req.Step, f)
	if err != nil {
		httpError(w, err)
		return
	}
	st.stop()
	w.Header().Set("Content-Type", "application/x-ndjson")
	bw := bufio.NewWriterSize(w, 32<<10)
	lineBuf := encodeBufs.Get().(*[]byte)
	line := (*lineBuf)[:0]
	defer func() { *lineBuf = line[:0]; encodeBufs.Put(lineBuf) }()
	for _, res := range results {
		nameJSON, _ := json.Marshal(res.Name)
		line = line[:0]
		line = append(line, `{"series":`...)
		line = append(line, nameJSON...)
		if res.Err != nil {
			msg, _ := json.Marshal(res.Err.Error())
			line = append(line, `,"error":`...)
			line = append(line, msg...)
			line = append(line, "}\n"...)
		} else {
			line = append(line, `,"step":`...)
			line = strconv.AppendInt(line, int64(req.Step), 10)
			line = append(line, `,"aggfn":"`...)
			line = append(line, aggName(f)...)
			line = append(line, `","values":[`...)
			for i, v := range res.Values {
				if i > 0 {
					line = append(line, ',')
				}
				line = appendJSONFloat(line, v)
			}
			line = append(line, "]}\n"...)
		}
		if _, err := bw.Write(line); err != nil {
			s.queryAborted.Add(1)
			return
		}
	}
	if bw.Flush() != nil {
		s.queryAborted.Add(1)
	}
}
