package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

// TestMetricsEndpointCoversStats pins /metrics against a direct DB.Stats
// read: the exposition must carry the store families with the exact
// values Stats reports, plus the HTTP families the middleware maintains,
// under the exposition content type.
func TestMetricsEndpointCoversStats(t *testing.T) {
	db, srv := newTestServer(t, nil, Options{}, map[string][]float64{
		"m": sensorData(1200, 1),
	})
	if status, _ := httpGet(t, srv.URL+"/api/v1/query?series=m&from=0&to=1200"); status != http.StatusOK {
		t.Fatalf("query: %d", status)
	}

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("/metrics Content-Type = %q", ct)
	}
	out := readAll(t, resp)

	s := db.Stats()
	pin := func(format string, args ...any) {
		t.Helper()
		line := fmt.Sprintf(format, args...)
		if !strings.Contains(out, line+"\n") {
			t.Fatalf("exposition missing %q\n%s", line, out)
		}
	}
	pin("cameo_store_series %d", s.Series)
	pin("cameo_store_samples %d", s.Samples)
	pin("cameo_store_blocks_written_total %d", s.BlocksWritten)
	pin("cameo_store_append_latency_seconds_count %d", s.Appends)
	pin(`cameo_http_requests_total{endpoint="query",status="2xx"} 1`)
	pin(`cameo_http_inflight_requests{endpoint="query"} 0`)
	pin("cameo_http_points_ingested_total 0")
	if !strings.Contains(out, `cameo_http_request_seconds_bucket{endpoint="query",le=`) {
		t.Fatalf("no latency buckets for the query endpoint:\n%s", out)
	}
	// /metrics instruments itself too: this scrape is in flight while the
	// gauge renders.
	pin(`cameo_http_inflight_requests{endpoint="metrics"} 1`)
}

// TestStatuszMatchesMetrics is the anti-drift pin for the two views: both
// render the same gather pass, so a family sampled in the exposition must
// carry the identical value in the statusz JSON (over stable-at-rest
// counters — the store is quiescent between the two fetches).
func TestStatuszMatchesMetrics(t *testing.T) {
	_, srv := newTestServer(t, nil, Options{}, map[string][]float64{
		"m": sensorData(900, 2),
	})
	resp, err := http.Get(srv.URL + "/statusz")
	if err != nil {
		t.Fatal(err)
	}
	ct := resp.Header.Get("Content-Type")
	resp.Body.Close()
	if ct != "application/json" {
		t.Fatalf("/statusz Content-Type = %q", ct)
	}

	snap := statuszServer(t, srv.URL)
	_, expo := httpGet(t, srv.URL+"/metrics")
	for _, family := range []string{"cameo_store_series", "cameo_store_samples", "cameo_store_blocks_written_total"} {
		want := fmt.Sprintf("%s %v\n", family, snap.num(t, family))
		if !strings.Contains(expo, want) {
			t.Fatalf("statusz and /metrics disagree on %s: statusz %v, exposition:\n%s",
				family, snap.num(t, family), expo)
		}
	}
}

func readAll(t *testing.T, resp *http.Response) string {
	t.Helper()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// TestRequestIDPropagation pins the trace-ID contract: an inbound
// X-Request-Id is honored and echoed back; absent one, the server issues
// an ID; and the finished request's trace appears under that ID in
// /debug/traces with its stage timings.
func TestRequestIDPropagation(t *testing.T) {
	_, srv := newTestServer(t, nil, Options{}, map[string][]float64{
		"m": sensorData(600, 3),
	})

	req, err := http.NewRequest("GET", srv.URL+"/api/v1/query?series=m&from=0&to=600", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Request-Id", "upstream-42")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	readAll(t, resp)
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-Id"); got != "upstream-42" {
		t.Fatalf("inbound request ID not echoed: got %q", got)
	}

	resp, err = http.Get(srv.URL + "/api/v1/query_agg?series=m&from=0&to=600&step=100")
	if err != nil {
		t.Fatal(err)
	}
	readAll(t, resp)
	resp.Body.Close()
	issued := resp.Header.Get("X-Request-Id")
	if len(issued) != 16 {
		t.Fatalf("issued request ID %q, want 16 hex chars", issued)
	}

	status, body := httpGet(t, srv.URL+"/debug/traces")
	if status != http.StatusOK {
		t.Fatalf("/debug/traces: %d", status)
	}
	var traces []struct {
		ID       string  `json:"trace_id"`
		Endpoint string  `json:"endpoint"`
		Status   int     `json:"status"`
		Duration float64 `json:"duration_ms"`
		Stages   []struct {
			Name     string  `json:"name"`
			Duration float64 `json:"duration_ms"`
		} `json:"stages"`
	}
	if err := json.Unmarshal([]byte(body), &traces); err != nil {
		t.Fatalf("/debug/traces: %v in %s", err, body)
	}
	byID := map[string]int{}
	for i, tr := range traces {
		byID[tr.ID] = i
	}
	i, ok := byID["upstream-42"]
	if !ok {
		t.Fatalf("trace for upstream-42 not in ring: %s", body)
	}
	tr := traces[i]
	if tr.Endpoint != "query" || tr.Status != http.StatusOK {
		t.Fatalf("query trace: %+v", tr)
	}
	stages := map[string]bool{}
	for _, st := range tr.Stages {
		stages[st.Name] = true
	}
	for _, want := range []string{"admission", "cursor_open", "resolve", "encode_flush"} {
		if !stages[want] {
			t.Fatalf("query trace missing stage %q: %+v", want, tr.Stages)
		}
	}
	if _, ok := byID[issued]; !ok {
		t.Fatalf("trace for issued ID %q not in ring", issued)
	}
}

// logCapture is a mutex-free io.Writer for the log tests: noteFinished
// serializes writes under the server's own log mutex.
type logCapture struct {
	lines []string
}

func (c *logCapture) Write(p []byte) (int, error) {
	c.lines = append(c.lines, string(p))
	return len(p), nil
}

// logRecord is one parsed access/slow-query log line.
type logRecord struct {
	Log      string  `json:"log"`
	TraceID  string  `json:"trace_id"`
	Endpoint string  `json:"endpoint"`
	Status   int     `json:"status"`
	Bytes    int64   `json:"bytes"`
	Duration float64 `json:"duration_ms"`
}

// TestAccessLog pins the structured access log: one single-line JSON
// record per request carrying the trace ID, endpoint, status, response
// bytes, and duration.
func TestAccessLog(t *testing.T) {
	cap := &logCapture{}
	_, srv := newTestServer(t, nil, Options{AccessLog: true, LogWriter: cap}, map[string][]float64{
		"m": sensorData(600, 4),
	})
	req, err := http.NewRequest("GET", srv.URL+"/api/v1/query?series=m&from=0&to=10", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Request-Id", "logged-1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	readAll(t, resp)
	resp.Body.Close()
	if status, _ := httpGet(t, srv.URL+"/api/v1/query?series=absent&from=0&to=10"); status != http.StatusNotFound {
		t.Fatalf("absent series: %d", status)
	}

	if len(cap.lines) != 2 {
		t.Fatalf("access log lines = %d, want 2: %q", len(cap.lines), cap.lines)
	}
	var rec logRecord
	if err := json.Unmarshal([]byte(cap.lines[0]), &rec); err != nil {
		t.Fatalf("access line: %v in %q", err, cap.lines[0])
	}
	if rec.Log != "access" || rec.TraceID != "logged-1" || rec.Endpoint != "query" ||
		rec.Status != http.StatusOK || rec.Bytes == 0 || rec.Duration <= 0 {
		t.Fatalf("access record: %+v", rec)
	}
	if !strings.HasSuffix(cap.lines[0], "}\n") || strings.Count(cap.lines[0], "\n") != 1 {
		t.Fatalf("access line not single-line JSON: %q", cap.lines[0])
	}
	if err := json.Unmarshal([]byte(cap.lines[1]), &rec); err != nil {
		t.Fatal(err)
	}
	if rec.Status != http.StatusNotFound {
		t.Fatalf("404 access record: %+v", rec)
	}
}

// TestSlowQueryLogSampling pins the slow-query log knobs: only query
// endpoints over the threshold log, sampled every Nth occurrence, and
// non-query endpoints never do no matter how slow.
func TestSlowQueryLogSampling(t *testing.T) {
	cap := &logCapture{}
	// Threshold 0ns-adjacent: every query is "slow", so sampling is the
	// only filter under test.
	_, srv := newTestServer(t, nil, Options{
		SlowQueryThreshold: time.Nanosecond,
		SlowQuerySample:    2,
		LogWriter:          cap,
	}, map[string][]float64{"m": sensorData(600, 5)})

	for i := 0; i < 4; i++ {
		if status, _ := httpGet(t, srv.URL+"/api/v1/query?series=m&from=0&to=600"); status != http.StatusOK {
			t.Fatalf("query %d: %d", i, status)
		}
	}
	// Non-query endpoints are exempt regardless of duration.
	httpGet(t, srv.URL+"/api/v1/series")
	httpGet(t, srv.URL+"/healthz")

	if len(cap.lines) != 2 {
		t.Fatalf("slow-query log lines = %d, want 2 (4 slow queries sampled 1-in-2): %q",
			len(cap.lines), cap.lines)
	}
	for _, line := range cap.lines {
		var rec logRecord
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("slow-query line: %v in %q", err, line)
		}
		if rec.Log != "slow_query" || rec.Endpoint != "query" {
			t.Fatalf("slow-query record: %+v", rec)
		}
	}
}

// TestStatusClassCounting pins the status-class mapping: a 404 lands in
// the 4xx counter of its endpoint, not 2xx.
func TestStatusClassCounting(t *testing.T) {
	_, srv := newTestServer(t, nil, Options{}, map[string][]float64{
		"m": sensorData(600, 6),
	})
	if status, _ := httpGet(t, srv.URL+"/api/v1/query?series=absent&from=0&to=10"); status != http.StatusNotFound {
		t.Fatalf("absent series: %d", status)
	}
	snap := statuszServer(t, srv.URL)
	if n := snap.labeled(t, "cameo_http_requests_total", `endpoint="query",status="4xx"`); n != 1 {
		t.Fatalf("query 4xx = %v, want 1", n)
	}
	if n := snap.labeled(t, "cameo_http_requests_total", `endpoint="query",status="2xx"`); n != 0 {
		t.Fatalf("query 2xx = %v, want 0", n)
	}
}
