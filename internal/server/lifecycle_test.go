package server

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/tsdb"
)

func httpDelete(t *testing.T, url string) (int, string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("DELETE %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("DELETE %s: reading body: %v", url, err)
	}
	return resp.StatusCode, string(body)
}

// statuszView is the parsed flat /statusz object: one key per metric
// family, numbers for unlabeled scalars, nested objects keyed by
// rendered label set for labeled families.
type statuszView map[string]json.RawMessage

// statuszServer fetches /statusz and parses the flat family map.
func statuszServer(t *testing.T, base string) statuszView {
	t.Helper()
	status, body := httpGet(t, base+"/statusz")
	if status != http.StatusOK {
		t.Fatalf("statusz: %d", status)
	}
	var v statuszView
	if err := json.Unmarshal([]byte(body), &v); err != nil {
		t.Fatalf("statusz: %v in %s", err, body)
	}
	return v
}

// num returns an unlabeled scalar family's value.
func (v statuszView) num(t *testing.T, family string) float64 {
	t.Helper()
	raw, ok := v[family]
	if !ok {
		t.Fatalf("statusz: family %q absent", family)
	}
	var f float64
	if err := json.Unmarshal(raw, &f); err != nil {
		t.Fatalf("statusz: family %q not a number: %s", family, raw)
	}
	return f
}

// labeled returns one child of a labeled scalar family by its rendered
// label set (e.g. `endpoint="write",status="2xx"`).
func (v statuszView) labeled(t *testing.T, family, labels string) float64 {
	t.Helper()
	raw, ok := v[family]
	if !ok {
		t.Fatalf("statusz: family %q absent", family)
	}
	var children map[string]float64
	if err := json.Unmarshal(raw, &children); err != nil {
		t.Fatalf("statusz: family %q not a labeled object: %s", family, raw)
	}
	f, ok := children[labels]
	if !ok {
		t.Fatalf("statusz: family %q has no child {%s}: %s", family, labels, raw)
	}
	return f
}

// TestDeleteSeriesEndpoint covers the admin surface: DELETE drops exactly
// the named series, answers 404 for unknown names (including the one just
// deleted), and the counters move.
func TestDeleteSeriesEndpoint(t *testing.T) {
	_, srv := newTestServer(t, nil, Options{}, map[string][]float64{
		"keep": sensorData(600, 1), "drop": sensorData(700, 2),
	})

	if status, body := httpDelete(t, srv.URL+"/api/v1/series"); status != http.StatusBadRequest {
		t.Fatalf("missing series param: %d (%s), want 400", status, body)
	}
	if status, body := httpDelete(t, srv.URL+"/api/v1/series?series=nope"); status != http.StatusNotFound {
		t.Fatalf("unknown series: %d (%s), want 404", status, body)
	}
	if status, body := httpDelete(t, srv.URL+"/api/v1/series?series=drop"); status != http.StatusNoContent {
		t.Fatalf("delete: %d (%s), want 204", status, body)
	}
	// The dropped series is gone from the listing and from queries; the
	// survivor still answers.
	status, body := httpGet(t, srv.URL+"/api/v1/series")
	if status != http.StatusOK {
		t.Fatalf("series: %d", status)
	}
	var names []string
	if err := json.Unmarshal([]byte(body), &names); err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 || names[0] != "keep" {
		t.Fatalf("series after delete = %v, want [keep]", names)
	}
	if status, _ := httpGet(t, srv.URL+"/api/v1/query?series=drop&from=0&to=100"); status != http.StatusNotFound {
		t.Fatalf("query of deleted series: %d, want 404", status)
	}
	if status, _ := httpGet(t, srv.URL+"/api/v1/query?series=keep&from=0&to=100"); status != http.StatusOK {
		t.Fatalf("query of surviving series: %d, want 200", status)
	}
	// Deleting twice is a 404, not a vacuous success.
	if status, _ := httpDelete(t, srv.URL+"/api/v1/series?series=drop"); status != http.StatusNotFound {
		t.Fatalf("double delete: %d, want 404", status)
	}
	if n := statuszServer(t, srv.URL).num(t, "cameo_http_series_deletes_total"); n != 1 {
		t.Fatalf("series deletes = %v, want 1", n)
	}
}

// TestQueryStreamStartsAtTrimBase is the regression for chunk labelling
// on a retention-trimmed store: a from=0 query clamps to the trim base,
// and the NDJSON start indices must name the samples actually returned —
// not relabel the retained suffix as starting at 0.
func TestQueryStreamStartsAtTrimBase(t *testing.T) {
	opt := testDBOptions(nil)
	opt.Workers = -1
	opt.Retention = 1024
	db, err := tsdb.Open(t.TempDir(), opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Append("s", sensorData(4096, 5)...); err != nil {
		t.Fatal(err)
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := db.Maintain(); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewHandler(db, Options{}))
	t.Cleanup(func() {
		srv.Close()
		db.Close()
	})
	status, body := httpGet(t, srv.URL+"/api/v1/query?series=s&from=0&to=4096")
	if status != http.StatusOK {
		t.Fatalf("query: %d", status)
	}
	const base = 4096 - 1024
	got := parseNDJSON(t, body, base) // fails unless chunks are contiguous from base
	if len(got) != 1024 {
		t.Fatalf("trimmed-store query returned %d samples, want 1024", len(got))
	}
	// CSV rows must carry the same re-anchored indices.
	status, body = httpGet(t, srv.URL+"/api/v1/query?series=s&from=0&to=4096&format=csv")
	if status != http.StatusOK {
		t.Fatalf("csv query: %d", status)
	}
	if got := parseCSV(t, body, base); len(got) != 1024 {
		t.Fatalf("csv trimmed-store query returned %d samples, want 1024", len(got))
	}
}

// TestQueryAbortedCounter is the regression for the silently-dropped
// client: a streaming query whose reader disconnects mid-body must bump
// query_aborted rather than vanish without an operator-visible trace.
func TestQueryAbortedCounter(t *testing.T) {
	// Enough samples that the NDJSON body (~19 bytes/sample) dwarfs the
	// 32 KiB handler buffer plus kernel TCP buffers, so the handler is
	// still writing when the client hangs up.
	_, srv := newTestServer(t, nil, Options{}, map[string][]float64{
		"s": sensorData(1<<18, 3),
	})
	if n := statuszServer(t, srv.URL).num(t, "cameo_http_query_aborted_total"); n != 0 {
		t.Fatalf("query aborted = %v before any abort", n)
	}
	resp, err := http.Get(srv.URL + "/api/v1/query?series=s&from=0&to=999999999")
	if err != nil {
		t.Fatal(err)
	}
	// Read one buffer's worth to be sure streaming started, then hang up.
	if _, err := io.ReadFull(resp.Body, make([]byte, 4096)); err != nil {
		t.Fatalf("reading stream prefix: %v", err)
	}
	resp.Body.Close()
	// The handler notices the dead connection on its next write/flush;
	// poll statusz until the abort lands.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if n := statuszServer(t, srv.URL).num(t, "cameo_http_query_aborted_total"); n >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("query_aborted never incremented after mid-stream disconnect")
		}
		time.Sleep(10 * time.Millisecond)
	}
	// The connection-level failure path must not have been double-counted
	// as a request failure elsewhere: a fresh, fully-read query still works.
	status, body := httpGet(t, srv.URL+"/api/v1/query?series=s&from=0&to=512")
	if status != http.StatusOK {
		t.Fatalf("follow-up query: %d", status)
	}
	if got := parseNDJSON(t, body, 0); len(got) != 512 {
		t.Fatalf("follow-up query returned %d samples, want 512", len(got))
	}
}
