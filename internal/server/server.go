// Package server exposes a tsdb.DB over HTTP: a concurrent
// ingest/query service with the same contract as the embedded store.
//
// The surface is deliberately small and streaming-first:
//
//	POST   /api/v1/write      batched ingest (newline text or JSON batch)
//	GET    /api/v1/query      raw range, streamed as NDJSON or CSV chunks
//	POST   /api/v1/query      batch form: several series in one request,
//	                          scattered across the store's worker pool and
//	                          streamed back as per-series NDJSON sections
//	GET    /api/v1/query_agg  downsampled windows via QueryAgg pushdown
//	POST   /api/v1/query_agg  batch aggregate form, one NDJSON line per series
//	GET    /api/v1/series     sorted series listing
//	DELETE /api/v1/series     drop one series (and its rollup tiers)
//	GET    /healthz           liveness probe
//	GET    /statusz           every metric family as one flat JSON object
//	GET    /metrics           Prometheus text exposition of the same registry
//	GET    /debug/traces      ring of recent per-request stage timings
//
// Ingest groups points per series and issues one DB.Append per series per
// request, so a 10k-point batch costs a handful of Append calls, not 10k.
// Two admission controls bound memory instead of letting a burst OOM the
// process: each request body is capped at Options.MaxRequestBytes (413
// beyond it), and the total bytes of ingest requests being buffered at
// once is capped at Options.MaxInflightIngestBytes — excess writers get
// 429 with a Retry-After hint, which is the backpressure signal.
//
// Queries never materialize the requested range server-side: the handler
// walks a tsdb.Cursor and encodes chunk by chunk into the response, so a
// million-sample scan holds one block's worth of samples in memory, and
// cache-resident blocks stream without even that copy. Aggregate queries
// map straight onto QueryAgg, riding the codec pushdown for cold blocks.
//
// Store errors map onto statuses: tsdb.ErrBadSeriesName and
// tsdb.ErrInvalidRange are the caller's fault (400), tsdb.ErrUnknownSeries
// is 404, an overlong body is 413, and anything else is a 500. Hostile
// series names ("", ".", "..", their escaped spellings) are rejected by
// the store's own validation before any filesystem path is formed.
//
// Observability rides a single metrics.Registry shared by /metrics
// (Prometheus text) and /statusz (JSON) — both render the same gather
// pass, so the two views cannot disagree. Every route runs inside the
// instrument middleware: request counts by status class, latency
// histograms, and in-flight gauges per endpoint, plus a per-request
// trace (ID from X-Request-Id or freshly issued) whose stage timings
// land in the /debug/traces ring and, when configured, the access and
// sampled slow-query logs.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net"
	"net/http"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
	"repro/internal/tsdb"
)

// Options configures the HTTP layer. The zero value picks every default.
type Options struct {
	// MaxRequestBytes caps one request body (default 8 MiB). Larger
	// ingest batches are refused with 413; split them client-side.
	MaxRequestBytes int64
	// MaxInflightIngestBytes caps the total request-body bytes of all
	// ingest requests being processed at once (default 64 MiB). Beyond
	// it new writes receive 429 + Retry-After instead of buffering
	// without bound — backpressure, not OOM. Requests without a
	// Content-Length reserve MaxRequestBytes.
	MaxInflightIngestBytes int64
	// IngestTimeout bounds reading one write request's body (default
	// 1m; negative disables). A write holds its in-flight reservation
	// while its body uploads, so without this bound slow-trickling
	// clients could pin the whole ingest budget and starve legitimate
	// writers; a client exceeding it gets 408.
	IngestTimeout time.Duration
	// ReadHeaderTimeout bounds how long a connection may take to send
	// its request header (default 10s; used by Serve, not NewHandler).
	ReadHeaderTimeout time.Duration
	// IdleTimeout closes keep-alive connections idle this long (default
	// 2m; used by Serve).
	IdleTimeout time.Duration
	// DrainTimeout bounds the graceful-shutdown drain of in-flight
	// requests once Serve's context is canceled (default 15s).
	DrainTimeout time.Duration
	// SlowQueryThreshold turns on the slow-query log: query-path requests
	// at or over this wall time emit one JSON line to LogWriter (default
	// 0 = off).
	SlowQueryThreshold time.Duration
	// SlowQuerySample logs every Nth slow query (default 1 = every one),
	// so a persistent slowdown can't turn the log into its own hot path.
	SlowQuerySample int
	// AccessLog emits one JSON line per request to LogWriter (default
	// off).
	AccessLog bool
	// LogWriter receives access and slow-query log lines (default
	// os.Stderr). Lines are written whole under a mutex, so any io.Writer
	// works.
	LogWriter io.Writer
}

func (o *Options) withDefaults() {
	if o.MaxRequestBytes <= 0 {
		o.MaxRequestBytes = 8 << 20
	}
	if o.MaxInflightIngestBytes <= 0 {
		o.MaxInflightIngestBytes = 64 << 20
	}
	if o.IngestTimeout == 0 {
		o.IngestTimeout = time.Minute
	}
	if o.ReadHeaderTimeout <= 0 {
		o.ReadHeaderTimeout = 10 * time.Second
	}
	if o.IdleTimeout <= 0 {
		o.IdleTimeout = 2 * time.Minute
	}
	if o.DrainTimeout <= 0 {
		o.DrainTimeout = 15 * time.Second
	}
	if o.SlowQuerySample <= 0 {
		o.SlowQuerySample = 1
	}
	if o.LogWriter == nil {
		o.LogWriter = os.Stderr
	}
}

// Server is the handler state behind NewHandler: the store, the admission
// accounting, the metrics registry /metrics and /statusz render, and the
// trace ring behind /debug/traces.
type Server struct {
	db  *tsdb.DB
	opt Options
	mux *http.ServeMux
	reg *metrics.Registry

	endpoints []*endpointMetrics // fixed at NewHandler; the server collector walks it
	traces    traceRing
	logMu     sync.Mutex // serializes whole log lines onto opt.LogWriter
	slowSeen  atomic.Uint64

	inflightIngest atomic.Int64 // reserved ingest body bytes currently in flight

	ingestBytes    metrics.Counter // write request body bytes read
	pointsIngested atomic.Uint64
	throttled      atomic.Uint64 // writes refused with 429 by the in-flight cap
	queryAborted   atomic.Uint64 // streaming queries cut short by a client write failure
	seriesDeletes  atomic.Uint64 // series dropped via DELETE /api/v1/series
}

// NewHandler builds the HTTP handler for a store. The store stays owned
// by the caller (the handler never closes it), so embedders can mount the
// returned handler in their own mux next to their other routes.
func NewHandler(db *tsdb.DB, opt Options) http.Handler {
	opt.withDefaults()
	s := &Server{db: db, opt: opt, mux: http.NewServeMux(), reg: metrics.NewRegistry()}
	route := func(pattern, endpoint string, isQuery bool, h http.HandlerFunc) {
		s.mux.HandleFunc(pattern, s.instrument(newEndpointMetrics(endpoint, isQuery), h))
	}
	route("POST /api/v1/write", "write", false, s.handleWrite)
	route("GET /api/v1/query", "query", true, s.handleQuery)
	route("POST /api/v1/query", "query_multi", true, s.handleQueryMulti)
	route("GET /api/v1/query_agg", "query_agg", true, s.handleQueryAgg)
	route("POST /api/v1/query_agg", "query_agg_multi", true, s.handleQueryAggMulti)
	route("GET /api/v1/series", "series", false, s.handleSeries)
	route("DELETE /api/v1/series", "series_delete", false, s.handleDeleteSeries)
	route("GET /healthz", "healthz", false, s.handleHealthz)
	route("GET /statusz", "statusz", false, s.handleStatusz)
	route("GET /metrics", "metrics", false, s.handleMetrics)
	route("GET /debug/traces", "traces", false, s.handleTraces)
	db.RegisterMetrics(s.reg)
	s.registerServerMetrics(s.reg)
	return s
}

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// httpError maps a store error onto its HTTP status: invalid input is the
// caller's fault (400), an absent series is 404, an overlong body 413,
// everything else a 500.
func httpError(w http.ResponseWriter, err error) {
	var mbe *http.MaxBytesError
	switch {
	case errors.Is(err, tsdb.ErrBadSeriesName), errors.Is(err, tsdb.ErrInvalidRange):
		http.Error(w, err.Error(), http.StatusBadRequest)
	case errors.Is(err, tsdb.ErrUnknownSeries):
		http.Error(w, err.Error(), http.StatusNotFound)
	case errors.As(err, &mbe):
		http.Error(w, err.Error(), http.StatusRequestEntityTooLarge)
	default:
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Write([]byte("ok\n"))
}

func (s *Server) handleSeries(w http.ResponseWriter, r *http.Request) {
	names := s.db.Series()
	if names == nil {
		names = []string{}
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(names)
}

// handleDeleteSeries drops one series — and, when rollups are configured,
// its materialized tiers — atomically with respect to queries and ingest.
// Deletion is irreversible, so it answers 404 for an unknown name rather
// than succeeding vacuously: a typo'd automation script should hear about
// it, not silently "succeed" forever.
func (s *Server) handleDeleteSeries(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("series")
	if name == "" {
		http.Error(w, "parameter \"series\" is required", http.StatusBadRequest)
		return
	}
	if err := s.db.DeleteSeries(name); err != nil {
		httpError(w, err)
		return
	}
	s.seriesDeletes.Add(1)
	w.WriteHeader(http.StatusNoContent)
}

// Serve listens on addr and serves the store until ctx is canceled, then
// shuts down gracefully: in-flight requests drain (bounded by
// opt.DrainTimeout) before Serve returns. The store itself is not flushed
// or closed — it belongs to the caller, who typically Flush+Closes it
// right after Serve returns (cmd/cameod does exactly that).
func Serve(ctx context.Context, addr string, db *tsdb.DB, opt Options) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return serveListener(ctx, ln, db, opt)
}

// serveListener is Serve after the bind — split out so tests (and
// embedders with their own net.Listener) can drive the lifecycle against
// an OS-assigned port.
func serveListener(ctx context.Context, ln net.Listener, db *tsdb.DB, opt Options) error {
	opt.withDefaults()
	srv := &http.Server{
		Handler:           NewHandler(db, opt),
		ReadHeaderTimeout: opt.ReadHeaderTimeout,
		IdleTimeout:       opt.IdleTimeout,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		return err // listener failed before shutdown was requested
	case <-ctx.Done():
	}
	drain, cancel := context.WithTimeout(context.Background(), opt.DrainTimeout)
	defer cancel()
	err := srv.Shutdown(drain)
	if err != nil {
		srv.Close() // drain timed out; cut the stragglers loose
	}
	<-errc // always http.ErrServerClosed after Shutdown/Close
	return err
}
