package server

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/tsdb"
)

// testCodecs enumerates one encode-capable instance of every registered
// codec, mirroring the tsdb read-path differentials: the HTTP layer must
// be transparent for all of them.
func testCodecs() map[string]codec.Codec {
	return map[string]codec.Codec{
		"cameo":    codec.NewCAMEO(core.Options{Lags: 24, Epsilon: 0.05}),
		"gorilla":  codec.Gorilla{},
		"chimp":    codec.Chimp{},
		"elf":      codec.Elf{},
		"pmc":      codec.PMC{},
		"swing":    codec.Swing{},
		"simpiece": codec.SimPiece{},
	}
}

func testDBOptions(c codec.Codec) tsdb.Options {
	return tsdb.Options{
		Compression: core.Options{Lags: 24, Epsilon: 0.05},
		BlockSize:   512,
		Codec:       c,
		Shards:      4,
		Workers:     2,
		CacheBlocks: 16,
	}
}

func sensorData(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = 10 + 5*math.Sin(2*math.Pi*float64(i)/24) + 0.5*rng.NormFloat64()
	}
	return xs
}

// newTestServer opens a store, fills one series, and fronts it with an
// httptest server. The caller gets both ends for differential checks.
func newTestServer(t *testing.T, c codec.Codec, opt Options, fill map[string][]float64) (*tsdb.DB, *httptest.Server) {
	t.Helper()
	db, err := tsdb.Open(t.TempDir(), testDBOptions(c))
	if err != nil {
		t.Fatal(err)
	}
	for name, xs := range fill {
		if err := db.Append(name, xs...); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Sync(); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewHandler(db, opt))
	t.Cleanup(func() {
		srv.Close()
		db.Close()
	})
	return db, srv
}

func httpGet(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: reading body: %v", url, err)
	}
	return resp.StatusCode, string(body)
}

// parseNDJSONBody reassembles a streamed /api/v1/query NDJSON body,
// checking the chunk start indices are contiguous from wantStart. Error-
// returning so concurrent readers can use it off the test goroutine.
func parseNDJSONBody(body string, wantStart int) ([]float64, error) {
	var out []float64
	next := wantStart
	sc := bufio.NewScanner(strings.NewReader(body))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var chunk struct {
			Start  *int      `json:"start"`
			Values []float64 `json:"values"`
			Error  string    `json:"error"`
		}
		if err := json.Unmarshal(sc.Bytes(), &chunk); err != nil {
			return nil, fmt.Errorf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		if chunk.Error != "" {
			return nil, fmt.Errorf("NDJSON stream error: %s", chunk.Error)
		}
		if chunk.Start == nil || *chunk.Start != next {
			return nil, fmt.Errorf("chunk start = %v, want %d", chunk.Start, next)
		}
		out = append(out, chunk.Values...)
		next += len(chunk.Values)
	}
	return out, sc.Err()
}

func parseNDJSON(t *testing.T, body string, wantStart int) []float64 {
	t.Helper()
	out, err := parseNDJSONBody(body, wantStart)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// parseCSV reassembles a streamed /api/v1/query CSV body.
func parseCSV(t *testing.T, body string, wantStart int) []float64 {
	t.Helper()
	lines := strings.Split(strings.TrimSuffix(body, "\n"), "\n")
	if len(lines) == 0 || lines[0] != "index,value" {
		t.Fatalf("missing CSV header in %q", body[:min(len(body), 60)])
	}
	var out []float64
	for i, line := range lines[1:] {
		if strings.HasPrefix(line, "#") {
			t.Fatalf("CSV stream error: %s", line)
		}
		idxStr, valStr, ok := strings.Cut(line, ",")
		if !ok {
			t.Fatalf("bad CSV row %q", line)
		}
		idx, err := strconv.Atoi(idxStr)
		if err != nil || idx != wantStart+i {
			t.Fatalf("CSV row %d has index %q, want %d", i, idxStr, wantStart+i)
		}
		v, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			t.Fatalf("CSV row %d: %v", i, err)
		}
		out = append(out, v)
	}
	return out
}

func sameBits(t *testing.T, what string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d samples, want %d", what, len(got), len(want))
	}
	for i := range want {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("%s: sample %d = %v (bits %x), want %v (bits %x)",
				what, i, got[i], math.Float64bits(got[i]), want[i], math.Float64bits(want[i]))
		}
	}
}

// TestQueryBitIdenticalAllCodecs is the acceptance differential: for
// every registered codec, the HTTP query response — NDJSON and CSV, cold
// and warm — parses back to exactly the float64s a direct Query returns,
// and query_agg matches QueryAgg the same way.
func TestQueryBitIdenticalAllCodecs(t *testing.T) {
	for name, c := range testCodecs() {
		t.Run(name, func(t *testing.T) {
			total := 3*512 + 100 // durable blocks + verbatim tail
			xs := sensorData(total, 7)
			db, srv := newTestServer(t, c, Options{}, map[string][]float64{"sensor/a": xs})
			ranges := [][2]int{{0, total}, {100, 612}, {511, 513}, {3 * 512, total}, {0, 1}}
			for _, r := range ranges {
				want, err := db.Query("sensor/a", r[0], r[1])
				if err != nil {
					t.Fatal(err)
				}
				for _, pass := range []string{"cold", "warm"} {
					status, body := httpGet(t, fmt.Sprintf("%s/api/v1/query?series=%s&from=%d&to=%d",
						srv.URL, "sensor%2Fa", r[0], r[1]))
					if status != http.StatusOK {
						t.Fatalf("query [%d,%d) %s: status %d: %s", r[0], r[1], pass, status, body)
					}
					sameBits(t, fmt.Sprintf("ndjson [%d,%d) %s", r[0], r[1], pass), parseNDJSON(t, body, r[0]), want)
				}
				status, body := httpGet(t, fmt.Sprintf("%s/api/v1/query?series=%s&from=%d&to=%d&format=csv",
					srv.URL, "sensor%2Fa", r[0], r[1]))
				if status != http.StatusOK {
					t.Fatalf("csv query [%d,%d): status %d: %s", r[0], r[1], status, body)
				}
				sameBits(t, fmt.Sprintf("csv [%d,%d)", r[0], r[1]), parseCSV(t, body, r[0]), want)
			}

			// Aggregate windows, default and explicit aggfns.
			for _, aggfn := range []string{"", "mean", "sum", "max", "min"} {
				f, err := parseAggFunc(aggfn)
				if err != nil {
					t.Fatal(err)
				}
				want, err := db.QueryAgg("sensor/a", 40, total-30, 60, f)
				if err != nil {
					t.Fatal(err)
				}
				url := fmt.Sprintf("%s/api/v1/query_agg?series=%s&from=40&to=%d&step=60", srv.URL, "sensor%2Fa", total-30)
				if aggfn != "" {
					url += "&aggfn=" + aggfn
				}
				status, body := httpGet(t, url)
				if status != http.StatusOK {
					t.Fatalf("query_agg %q: status %d: %s", aggfn, status, body)
				}
				var resp struct {
					Series string    `json:"series"`
					Step   int       `json:"step"`
					AggFn  string    `json:"aggfn"`
					Values []float64 `json:"values"`
				}
				if err := json.Unmarshal([]byte(body), &resp); err != nil {
					t.Fatalf("query_agg %q: %v in %s", aggfn, err, body)
				}
				if resp.Series != "sensor/a" || resp.Step != 60 {
					t.Fatalf("query_agg echo: %+v", resp)
				}
				sameBits(t, "query_agg "+aggfn, resp.Values, want)
			}
		})
	}
}

// TestQueryErrorStatus pins the streaming error contract: a resolution
// failure before any bytes reached the client is a proper 5xx, while a
// failure after streaming began (status already sent) poisons the body
// with an error line instead of passing off a truncated response as
// complete.
func TestQueryErrorStatus(t *testing.T) {
	opt := testDBOptions(nil)
	opt.CacheBlocks = -1 // every read hits the disk files
	dir := t.TempDir()
	db, err := tsdb.Open(dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := db.Append("s", sensorData(2*512, 11)...); err != nil {
		t.Fatal(err)
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewHandler(db, Options{}))
	defer srv.Close()

	// Truncate the SECOND block's file: a query spanning both streams the
	// first chunk fine, then fails mid-body — 200 with an error line.
	second := filepath.Join(dir, "s", "000000000512.blk")
	if err := os.Truncate(second, 2); err != nil {
		t.Fatal(err)
	}
	status, body := httpGet(t, srv.URL+"/api/v1/query?series=s&from=0&to=1024")
	if status != http.StatusOK {
		t.Fatalf("mid-stream failure: status %d, want 200 (already streaming)", status)
	}
	if _, err := parseNDJSONBody(body, 0); err == nil || !strings.Contains(body, `"error"`) {
		t.Fatalf("mid-stream failure not surfaced in body: %v\n%s", err, body)
	}
	status, body = httpGet(t, srv.URL+"/api/v1/query?series=s&from=0&to=1024&format=csv")
	if status != http.StatusOK || !strings.Contains(body, "# error:") {
		t.Fatalf("mid-stream CSV failure: status %d, body %q", status, body[max(0, len(body)-80):])
	}

	// Truncate the FIRST block too: now the very first chunk fails before
	// anything was flushed, so the client must see a real error status.
	first := filepath.Join(dir, "s", "000000000000.blk")
	if err := os.Truncate(first, 2); err != nil {
		t.Fatal(err)
	}
	for _, format := range []string{"", "&format=csv"} {
		status, body = httpGet(t, srv.URL+"/api/v1/query?series=s&from=0&to=1024"+format)
		if status != http.StatusInternalServerError {
			t.Fatalf("pre-stream failure (%q): status %d (%s), want 500", format, status, body)
		}
	}
}

// TestOperationalEndpoints covers the non-query surface: series listing,
// health, and the statusz counters (including the DB.Stats passthrough).
func TestOperationalEndpoints(t *testing.T) {
	_, srv := newTestServer(t, nil, Options{}, map[string][]float64{
		"b/two": sensorData(700, 1), "a/one": sensorData(600, 2),
	})

	status, body := httpGet(t, srv.URL+"/healthz")
	if status != http.StatusOK || body != "ok\n" {
		t.Fatalf("healthz: %d %q", status, body)
	}

	status, body = httpGet(t, srv.URL+"/api/v1/series")
	if status != http.StatusOK {
		t.Fatalf("series: %d %s", status, body)
	}
	var names []string
	if err := json.Unmarshal([]byte(body), &names); err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 || names[0] != "a/one" || names[1] != "b/two" {
		t.Fatalf("series listing = %v, want sorted [a/one b/two]", names)
	}

	// Exercise a cold partial query so pushdown counters move, then check
	// statusz reflects both the engine and the HTTP layer through the
	// shared metrics registry.
	if _, body := httpGet(t, srv.URL+"/api/v1/query?series=a%2Fone&from=10&to=50"); body == "" {
		t.Fatal("empty query body")
	}
	if status, _ := httpGet(t, srv.URL+"/api/v1/query_agg?series=a%2Fone&step=50"); status != http.StatusOK {
		t.Fatalf("query_agg: %d", status)
	}
	snap := statuszServer(t, srv.URL)
	if series := snap.num(t, "cameo_store_series"); series != 2 {
		t.Fatalf("statusz series = %v, want 2", series)
	}
	if samples := snap.num(t, "cameo_store_samples"); samples != 1300 {
		t.Fatalf("statusz samples = %v, want 1300", samples)
	}
	// The append-latency histogram rides the same registry as a summary
	// object.
	var appendLat struct {
		Count uint64  `json:"count"`
		P99   float64 `json:"p99"`
		Max   float64 `json:"max"`
	}
	if err := json.Unmarshal(snap["cameo_store_append_latency_seconds"], &appendLat); err != nil {
		t.Fatalf("statusz append latency: %v", err)
	}
	if appendLat.Count == 0 || appendLat.Max == 0 || appendLat.P99 > appendLat.Max {
		t.Fatalf("statusz append-latency summary: %+v", appendLat)
	}
	if n := snap.labeled(t, "cameo_http_requests_total", `endpoint="query",status="2xx"`); n != 1 {
		t.Fatalf("query 2xx requests = %v, want 1", n)
	}
	if n := snap.labeled(t, "cameo_http_requests_total", `endpoint="query_agg",status="2xx"`); n != 1 {
		t.Fatalf("query_agg 2xx requests = %v, want 1", n)
	}
}
