package server

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"

	"repro/internal/tsdb"
)

func httpPost(t *testing.T, url, contentType, body string) (int, string, http.Header) {
	t.Helper()
	resp, err := http.Post(url, contentType, strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("POST %s: reading body: %v", url, err)
	}
	return resp.StatusCode, string(data), resp.Header
}

// TestWriteFormsAndBatching checks both ingest forms land the same data:
// the text form (with and without timestamps, interleaved series,
// comments) and the JSON batch form, each grouped into one Append per
// series.
func TestWriteFormsAndBatching(t *testing.T) {
	db, srv := newTestServer(t, nil, Options{}, nil)

	// Text form: interleaved series, stamped out of line order for "a"
	// (the stamps must reorder it), a comment, and a blank line.
	body := strings.Join([]string{
		"# hourly readings",
		"a 3 30.5",
		"b 1.25",
		"a 1 10.5",
		"",
		"a 2 20.5",
		"b 2.25",
	}, "\n")
	status, resp, _ := httpPost(t, srv.URL+"/api/v1/write", "text/plain", body)
	if status != http.StatusOK {
		t.Fatalf("text write: %d %s", status, resp)
	}
	if !strings.Contains(resp, `"series":2`) || !strings.Contains(resp, `"points":5`) {
		t.Fatalf("write ack = %s", resp)
	}
	got, err := db.Query("a", 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 10.5 || got[1] != 20.5 || got[2] != 30.5 {
		t.Fatalf("stamped text points out of order: %v", got)
	}
	if got, _ := db.Query("b", 0, 2); len(got) != 2 || got[0] != 1.25 || got[1] != 2.25 {
		t.Fatalf("unstamped text points: %v", got)
	}

	// JSON batch form, including a repeated name that must append in
	// entry order.
	status, resp, _ = httpPost(t, srv.URL+"/api/v1/write", "application/json",
		`{"series":[{"name":"c","values":[1,2]},{"name":"c","values":[3]}]}`)
	if status != http.StatusOK {
		t.Fatalf("json write: %d %s", status, resp)
	}
	if got, _ := db.Query("c", 0, 3); len(got) != 3 || got[2] != 3 {
		t.Fatalf("json batch points: %v", got)
	}

	// Malformed bodies are the caller's fault.
	for name, tc := range map[string]struct{ ct, body string }{
		"empty":        {"text/plain", "\n# nothing\n"},
		"extra-fields": {"text/plain", "a 1 2 3 4"},
		"bad-value":    {"text/plain", "a eleven"},
		"bad-stamp":    {"text/plain", "a 1.5e nope"},
		"bad-json":     {"application/json", `{"series":[`},
		"no-series":    {"application/json", `{"series":[]}`},
		"no-values":    {"application/json", `{"series":[{"name":"x","values":[]}]}`},
		"unknown-key":  {"application/json", `{"metrics":[]}`},
	} {
		if status, resp, _ := httpPost(t, srv.URL+"/api/v1/write", tc.ct, tc.body); status != http.StatusBadRequest {
			t.Fatalf("%s: status %d (%s), want 400", name, status, resp)
		}
	}
}

// TestIngestBounds pins the two admission controls: an over-long body is
// 413 (request cap), and a body that would push the in-flight ingest
// total past its cap is 429 with a Retry-After hint (backpressure).
func TestIngestBounds(t *testing.T) {
	_, srv := newTestServer(t, nil, Options{MaxRequestBytes: 256}, nil)
	big := strings.Repeat("series-name 1.25\n", 64) // ~1 KiB > 256
	status, _, _ := httpPost(t, srv.URL+"/api/v1/write", "text/plain", big)
	if status != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: status %d, want 413", status)
	}
	// With a declared Content-Length the refusal must short-circuit as
	// 413, not 429 — telling the client to retry an over-cap body would
	// have it retry forever.
	req, err := http.NewRequest("POST", srv.URL+"/api/v1/write", strings.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	req.ContentLength = int64(len(big))
	req.Header.Set("Content-Type", "text/plain")
	httpResp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	httpResp.Body.Close()
	if httpResp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("declared oversized length: status %d, want 413", httpResp.StatusCode)
	}

	// A single body bigger than the whole in-flight budget can never be
	// admitted: permanent 413, not retry-forever 429.
	_, srv2 := newTestServer(t, nil, Options{MaxInflightIngestBytes: 64}, nil)
	status, resp, _ := httpPost(t, srv2.URL+"/api/v1/write", "text/plain", strings.Repeat("s 1\n", 100))
	if status != http.StatusRequestEntityTooLarge {
		t.Fatalf("budget-exceeding write: status %d (%s), want 413", status, resp)
	}
	// Small writes still fit under the in-flight cap.
	if status, resp, _ := httpPost(t, srv2.URL+"/api/v1/write", "text/plain", "s 1\ns 2\n"); status != http.StatusOK {
		t.Fatalf("small write after refusal: %d %s", status, resp)
	}
}

// TestIngestBackpressure429 drives the 429 path deterministically: one
// write holds a 40-byte reservation (its body dribbles through a pipe)
// while a second, individually admissible write pushes the in-flight
// total past the cap and must be throttled with Retry-After — then
// succeed once the first completes.
func TestIngestBackpressure429(t *testing.T) {
	db, srv := newTestServer(t, nil, Options{MaxInflightIngestBytes: 64}, nil)

	body := strings.Repeat("s 1\n", 10) // exactly 40 bytes
	pr, pw := io.Pipe()
	req, err := http.NewRequest("POST", srv.URL+"/api/v1/write", pr)
	if err != nil {
		t.Fatal(err)
	}
	req.ContentLength = int64(len(body))
	req.Header.Set("Content-Type", "text/plain")
	firstDone := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			firstDone <- err
			return
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			firstDone <- fmt.Errorf("held write finished with %d", resp.StatusCode)
			return
		}
		firstDone <- nil
	}()

	// Wait until the handler has reserved the held request's bytes.
	deadline := time.Now().Add(5 * time.Second)
	for {
		inflight := statuszServer(t, srv.URL).num(t, "cameo_http_inflight_ingest_bytes")
		if inflight == float64(len(body)) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("held reservation never appeared (inflight %v)", inflight)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// 40 reserved + 40 requested > 64: throttled, with the retry hint.
	status, resp, hdr := httpPost(t, srv.URL+"/api/v1/write", "text/plain", body)
	if status != http.StatusTooManyRequests {
		t.Fatalf("write during held reservation: status %d (%s), want 429", status, resp)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}

	// Release the held request; the retried write is then admitted.
	if _, err := pw.Write([]byte(body)); err != nil {
		t.Fatal(err)
	}
	pw.Close()
	if err := <-firstDone; err != nil {
		t.Fatal(err)
	}
	if status, resp, _ := httpPost(t, srv.URL+"/api/v1/write", "text/plain", body); status != http.StatusOK {
		t.Fatalf("retry after release: %d %s", status, resp)
	}
	if got, err := db.Query("s", 0, 20); err != nil || len(got) != 20 {
		t.Fatalf("both admitted writes should have landed: %d samples, %v", len(got), err)
	}
}

// TestIngestTimeout408 pins the reservation-lifetime bound: a write whose
// body trickles in slower than IngestTimeout is cut off with 408 and its
// in-flight reservation is released, so drip-feeding clients cannot pin
// the ingest budget.
func TestIngestTimeout408(t *testing.T) {
	_, srv := newTestServer(t, nil, Options{IngestTimeout: 150 * time.Millisecond}, nil)

	pr, pw := io.Pipe()
	defer pw.Close()
	req, err := http.NewRequest("POST", srv.URL+"/api/v1/write", pr)
	if err != nil {
		t.Fatal(err)
	}
	req.ContentLength = 40
	req.Header.Set("Content-Type", "text/plain")
	resp, err := http.DefaultClient.Do(req) // body never arrives
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestTimeout {
		t.Fatalf("stalled body: status %d, want 408", resp.StatusCode)
	}

	// The reservation was released with the request.
	if inflight := statuszServer(t, srv.URL).num(t, "cameo_http_inflight_ingest_bytes"); inflight != 0 {
		t.Fatalf("reservation leaked: %v bytes still in flight", inflight)
	}
}

// TestHostileSeriesNames drives the PR 1 path-traversal fixes through the
// HTTP boundary: names that cannot be store directories ("", ".", "..",
// and the percent-encoded spelling that URL decoding turns into "..")
// must come back 400/404 without any path outside the store root — or
// inside it — being created.
func TestHostileSeriesNames(t *testing.T) {
	root := t.TempDir()
	dir := root + "/store"
	db, err := tsdb.Open(dir, testDBOptions(nil))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	srv := httptest.NewServer(NewHandler(db, Options{}))
	defer srv.Close()

	outside, err := os.ReadDir(root)
	if err != nil {
		t.Fatal(err)
	}

	for _, name := range []string{"..", "."} {
		status, resp, _ := httpPost(t, srv.URL+"/api/v1/write", "text/plain", name+" 1.5\n")
		if status != http.StatusBadRequest {
			t.Fatalf("write to %q: status %d (%s), want 400", name, status, resp)
		}
	}
	// A batch mixing a valid series with a hostile one is rejected whole:
	// names are validated before the first Append, so the valid series
	// must not have landed a prefix (a retry would duplicate it).
	status0, resp0, _ := httpPost(t, srv.URL+"/api/v1/write", "text/plain", "good 1.5\n.. 2.5\n")
	if status0 != http.StatusBadRequest {
		t.Fatalf("mixed hostile batch: status %d (%s), want 400", status0, resp0)
	}
	if _, err := db.Query("good", 0, 1); err == nil {
		t.Fatal("valid series of a rejected batch was partially applied")
	}
	// An empty name is not expressible in the line form (it parses as a
	// field-count error, still 400); the JSON form can express it and
	// must hit the store's name validation.
	status, resp, _ := httpPost(t, srv.URL+"/api/v1/write", "application/json",
		`{"series":[{"name":"","values":[1.5]}]}`)
	if status != http.StatusBadRequest {
		t.Fatalf("write to empty name: status %d (%s), want 400", status, resp)
	}
	status, resp, _ = httpPost(t, srv.URL+"/api/v1/write", "application/json",
		`{"series":[{"name":"..","values":[1.5]}]}`)
	if status != http.StatusBadRequest {
		t.Fatalf("JSON write to ..: status %d (%s), want 400", status, resp)
	}

	// On the read side hostile names are simply unknown series: no
	// filesystem path is ever formed from them. %2E%2E decodes to ".."
	// in the query parameter.
	for _, q := range []string{"..", "%2E%2E", "."} {
		if status, _ := httpGet(t, srv.URL+"/api/v1/query?series="+q); status != http.StatusNotFound {
			t.Fatalf("query for %q: status %d, want 404", q, status)
		}
		if status, _ := httpGet(t, srv.URL+"/api/v1/query_agg?series="+q+"&step=4"); status != http.StatusNotFound {
			t.Fatalf("query_agg for %q: status %d, want 404", q, status)
		}
	}

	// A name that merely *contains* dot-dot is legitimate and must land
	// escaped inside the store root.
	if status, resp, _ := httpPost(t, srv.URL+"/api/v1/write", "text/plain", "../evil 4.5\n"); status != http.StatusOK {
		t.Fatalf("write to ../evil: %d %s", status, resp)
	}
	if got, err := db.Query("../evil", 0, 1); err != nil || len(got) != 1 {
		t.Fatalf("round-trip of ../evil: %v, %v", got, err)
	}

	// Nothing appeared outside the store directory, and no hostile
	// directory appeared inside it.
	after, err := os.ReadDir(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != len(outside) {
		t.Fatalf("store root's parent changed: %d entries, was %d", len(after), len(outside))
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.Name() != "..%2Fevil" {
			t.Fatalf("unexpected store entry %q", e.Name())
		}
	}
}
