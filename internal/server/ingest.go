package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"mime"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/tsdb"
)

// seriesBatch is one series' grouped points within a write request.
type seriesBatch struct {
	name   string
	values []float64
	stamps []int64 // optional per-point timestamps (line form only)
}

// writeRequest is the JSON batch form of POST /api/v1/write:
//
//	{"series": [{"name": "hall/temp", "values": [20.1, 20.3]}]}
type writeRequest struct {
	Series []struct {
		Name   string    `json:"name"`
		Values []float64 `json:"values"`
	} `json:"series"`
}

// writeResponse acknowledges a write: how many series and points landed.
type writeResponse struct {
	Series int `json:"series"`
	Points int `json:"points"`
}

// handleWrite is the batched ingest endpoint. Admission control first —
// the request's bytes are reserved against the in-flight cap before any
// buffering, so a burst of writers is throttled with 429 instead of
// growing the heap — then the body is parsed (text lines or JSON batch),
// grouped per series, and appended with one DB.Append call per series.
// Series names are validated before the first Append, so a batch naming
// an invalid series is rejected whole; a failure past that point (disk,
// compression) can still leave earlier series of the batch applied — the
// store is append-only, so clients should not blindly re-send a batch
// that failed with a 5xx.
func (s *Server) handleWrite(w http.ResponseWriter, r *http.Request) {
	st := stageTimer{t: traceFrom(r.Context()), name: "admission", at: time.Now()}
	if r.ContentLength > s.opt.MaxRequestBytes {
		// Destined for 413 no matter what; saying 429 "retry later" would
		// have the client re-send a request that can never succeed (and
		// burn in-flight budget each time).
		http.Error(w, fmt.Sprintf("request body %d bytes over the %d-byte cap",
			r.ContentLength, s.opt.MaxRequestBytes), http.StatusRequestEntityTooLarge)
		return
	}
	reserve := r.ContentLength
	if reserve < 0 {
		reserve = s.opt.MaxRequestBytes // unknown (chunked) length reserves the worst case
	}
	if reserve > s.opt.MaxInflightIngestBytes {
		// The reservation alone exceeds the whole in-flight budget: no
		// amount of retrying can admit it, so answer 413 (shrink the
		// batch, or declare a Content-Length if this was chunked), not a
		// retry-later 429.
		http.Error(w, fmt.Sprintf("request reserves %d bytes, over the %d-byte in-flight ingest budget",
			reserve, s.opt.MaxInflightIngestBytes), http.StatusRequestEntityTooLarge)
		return
	}
	if s.inflightIngest.Add(reserve) > s.opt.MaxInflightIngestBytes {
		s.inflightIngest.Add(-reserve)
		s.throttled.Add(1)
		w.Header().Set("Retry-After", "1")
		http.Error(w, "ingest over capacity, retry later", http.StatusTooManyRequests)
		return
	}
	defer s.inflightIngest.Add(-reserve)

	if s.opt.IngestTimeout > 0 {
		// The reservation above lives until this request completes; bound
		// how long a slow-trickling body can hold it, or a handful of
		// drip-feeding clients could pin the whole ingest budget. Best
		// effort: a transport without deadline support just skips it.
		_ = http.NewResponseController(w).SetReadDeadline(time.Now().Add(s.opt.IngestTimeout))
	}
	st.next("read_body")
	r.Body = http.MaxBytesReader(w, r.Body, s.opt.MaxRequestBytes)
	body, err := io.ReadAll(r.Body)
	s.ingestBytes.Add(uint64(len(body)))
	if err != nil {
		if errors.Is(err, os.ErrDeadlineExceeded) {
			http.Error(w, "reading request body timed out", http.StatusRequestTimeout)
			return
		}
		httpError(w, err)
		return
	}
	st.next("parse")
	var batches []seriesBatch
	if isJSONRequest(r) {
		batches, err = parseJSONBatch(body)
	} else {
		batches, err = parseLineBatch(body)
	}
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	// Validate every name before the first Append: a batch naming an
	// invalid series fails whole instead of landing a prefix and then
	// duplicating it when the client retries.
	for _, b := range batches {
		if err := tsdb.ValidateSeriesName(b.name); err != nil {
			httpError(w, err)
			return
		}
	}
	st.next("append")
	points := 0
	for _, b := range batches {
		if err := s.db.Append(b.name, b.values...); err != nil {
			httpError(w, err)
			return
		}
		points += len(b.values)
	}
	st.stop()
	s.pointsIngested.Add(uint64(points))
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(writeResponse{Series: len(batches), Points: points})
}

func isJSONRequest(r *http.Request) bool {
	ct, _, err := mime.ParseMediaType(r.Header.Get("Content-Type"))
	return err == nil && (ct == "application/json" || strings.HasSuffix(ct, "+json"))
}

// parseJSONBatch decodes the JSON batch form, preserving entry order;
// repeated names append in order of appearance.
func parseJSONBatch(body []byte) ([]seriesBatch, error) {
	var req writeRequest
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return nil, fmt.Errorf("invalid JSON batch: %w", err)
	}
	if len(req.Series) == 0 {
		return nil, fmt.Errorf("invalid JSON batch: no series entries")
	}
	grouped := make(map[string]int)
	var batches []seriesBatch
	for i, e := range req.Series {
		if len(e.Values) == 0 {
			return nil, fmt.Errorf("series entry %d (%q): no values", i, e.Name)
		}
		j, ok := grouped[e.Name]
		if !ok {
			j = len(batches)
			grouped[e.Name] = j
			batches = append(batches, seriesBatch{name: e.Name})
		}
		batches[j].values = append(batches[j].values, e.Values...)
	}
	return batches, nil
}

// parseLineBatch decodes the newline-delimited text form. Each line is
//
//	<series> <value>
//	<series> <ts> <value>
//
// with whitespace-separated fields; blank lines and '#' comments are
// skipped. The store addresses samples by position, so a timestamp is not
// persisted — it orders the batch: a series' points are sorted by ts
// (stably, so equal stamps keep line order) before being appended, which
// lets collectors emit interleaved readings without caring about line
// order. Series whose names contain whitespace must use the JSON form.
//
// Parsing stays on the []byte body (no whole-body string copy — the
// in-flight admission cap accounts each request's bytes once, so the
// parser must not double them); only each line's small tokens convert,
// and a known series name converts without allocating via the compiler's
// map-lookup optimization.
func parseLineBatch(body []byte) ([]seriesBatch, error) {
	grouped := make(map[string]int)
	var batches []seriesBatch
	lineNo := 0
	for line := range bytes.Lines(body) {
		lineNo++
		line = bytes.TrimSpace(line)
		if len(line) == 0 || line[0] == '#' {
			continue
		}
		fields := bytes.Fields(line)
		if len(fields) < 2 || len(fields) > 3 {
			return nil, fmt.Errorf("line %d: want \"series value\" or \"series ts value\", got %d fields", lineNo, len(fields))
		}
		var stamp int64
		hasStamp := len(fields) == 3
		if hasStamp {
			var err error
			if stamp, err = strconv.ParseInt(string(fields[1]), 10, 64); err != nil {
				return nil, fmt.Errorf("line %d: bad timestamp %q: %v", lineNo, fields[1], err)
			}
		} else {
			// Un-stamped lines keep arrival order: stamp with the running
			// line number so mixing the two forms stays well-defined.
			stamp = int64(lineNo)
		}
		val, err := strconv.ParseFloat(string(fields[len(fields)-1]), 64)
		if err != nil {
			return nil, fmt.Errorf("line %d: bad value %q: %v", lineNo, fields[len(fields)-1], err)
		}
		j, ok := grouped[string(fields[0])] // no alloc on lookup hit
		if !ok {
			name := string(fields[0])
			j = len(batches)
			grouped[name] = j
			batches = append(batches, seriesBatch{name: name})
		}
		batches[j].values = append(batches[j].values, val)
		batches[j].stamps = append(batches[j].stamps, stamp)
	}
	if len(batches) == 0 {
		return nil, fmt.Errorf("empty write: no data lines")
	}
	for i := range batches {
		sort.Stable(stampedBatch{batches[i].stamps, batches[i].values})
	}
	return batches, nil
}

// stampedBatch sorts one series' values by their timestamps in lockstep.
type stampedBatch struct {
	stamps []int64
	values []float64
}

func (b stampedBatch) Len() int           { return len(b.values) }
func (b stampedBatch) Less(i, j int) bool { return b.stamps[i] < b.stamps[j] }
func (b stampedBatch) Swap(i, j int) {
	b.stamps[i], b.stamps[j] = b.stamps[j], b.stamps[i]
	b.values[i], b.values[j] = b.values[j], b.values[i]
}
