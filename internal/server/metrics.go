package server

import (
	"context"
	"net/http"
	"time"

	"repro/internal/metrics"
)

// endpointMetrics is one route's fixed instrument set. Everything the
// per-request path touches — the in-flight gauge, the latency histogram,
// the per-status-class counters — is a preallocated atomic, and the label
// strings are rendered once at construction, so instrumenting a request
// allocates nothing beyond what the handler itself does.
type endpointMetrics struct {
	name     string
	labels   string // rendered endpoint="<name>" label set
	isQuery  bool   // participates in the slow-query log
	inflight metrics.Gauge
	latency  metrics.Histogram
	status   [5]metrics.Counter // by status class: index 0 = 1xx ... 4 = 5xx
}

// statusClassNames index the per-endpoint status counters; the endpoint
// label is prepended per endpoint at gather time.
var statusClassNames = [5]string{"1xx", "2xx", "3xx", "4xx", "5xx"}

func newEndpointMetrics(name string, isQuery bool) *endpointMetrics {
	return &endpointMetrics{
		name:    name,
		labels:  metrics.Labels("endpoint", name),
		isQuery: isQuery,
	}
}

// statusWriter captures the status code and body bytes of a response for
// the instrument middleware. It forwards Flush (the streaming query
// handler flushes per chunk) and exposes the wrapped writer via Unwrap,
// so http.NewResponseController still reaches the underlying
// connection's deadline controls (the ingest read deadline relies on
// that).
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (sw *statusWriter) WriteHeader(code int) {
	if sw.status == 0 {
		sw.status = code
	}
	sw.ResponseWriter.WriteHeader(code)
}

func (sw *statusWriter) Write(b []byte) (int, error) {
	if sw.status == 0 {
		sw.status = http.StatusOK
	}
	n, err := sw.ResponseWriter.Write(b)
	sw.bytes += int64(n)
	return n, err
}

func (sw *statusWriter) Flush() {
	if f, ok := sw.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

func (sw *statusWriter) Unwrap() http.ResponseWriter { return sw.ResponseWriter }

// instrument wraps one route handler with the request middleware: a
// trace (ID from X-Request-Id or freshly issued, echoed back in the
// response header) threaded through the request context for stage
// timings, the in-flight gauge held across the call, and the latency
// histogram and status-class counter recorded at completion. The
// finished trace lands in the /debug/traces ring and, as configured, the
// access and slow-query logs.
func (s *Server) instrument(ep *endpointMetrics, h http.HandlerFunc) http.HandlerFunc {
	s.endpoints = append(s.endpoints, ep)
	return func(w http.ResponseWriter, r *http.Request) {
		t := &trace{
			ID:       r.Header.Get("X-Request-Id"),
			Endpoint: ep.name,
			Target:   r.Method + " " + r.URL.RequestURI(),
			Start:    time.Now(),
		}
		if t.ID == "" {
			t.ID = newTraceID()
		}
		w.Header().Set("X-Request-Id", t.ID)
		sw := &statusWriter{ResponseWriter: w}
		ep.inflight.Add(1)
		h(sw, r.WithContext(context.WithValue(r.Context(), traceCtxKey{}, t)))
		d := time.Since(t.Start)
		ep.inflight.Add(-1)
		ep.latency.ObserveDuration(d)
		status := sw.status
		if status == 0 {
			status = http.StatusOK // handler wrote nothing: net/http sends 200
		}
		if class := status/100 - 1; class >= 0 && class < len(ep.status) {
			ep.status[class].Inc()
		}
		t.Status = status
		t.Bytes = sw.bytes
		t.Duration = milliFloat(d)
		s.noteFinished(t, ep.isQuery)
	}
}

// registerServerMetrics registers the HTTP layer's collector: per-endpoint
// request counts by status class, latency histograms, and in-flight
// gauges, plus the ingest/throttle/abort counters the handlers maintain.
func (s *Server) registerServerMetrics(reg *metrics.Registry) {
	reg.Collect(func(e *metrics.Emitter) {
		for _, ep := range s.endpoints {
			for class, name := range statusClassNames {
				e.CounterL("cameo_http_requests_total",
					"HTTP requests completed, by endpoint and status class.",
					metrics.Labels("endpoint", ep.name, "status", name),
					ep.status[class].Value())
			}
			e.HistogramL("cameo_http_request_seconds",
				"HTTP request wall time by endpoint.",
				ep.labels, 1e-9, ep.latency.Snapshot())
			e.GaugeL("cameo_http_inflight_requests",
				"Requests currently being served, by endpoint.",
				ep.labels, float64(ep.inflight.Value()))
		}
		e.Counter("cameo_http_ingest_bytes_total",
			"Write request body bytes read.", s.ingestBytes.Value())
		e.Counter("cameo_http_points_ingested_total",
			"Samples accepted by POST /api/v1/write.", s.pointsIngested.Load())
		e.Counter("cameo_http_throttled_writes_total",
			"Writes refused with 429 by the in-flight ingest cap.", s.throttled.Load())
		e.Counter("cameo_http_query_aborted_total",
			"Streaming queries cut short by a client write failure.", s.queryAborted.Load())
		e.Counter("cameo_http_series_deletes_total",
			"Series dropped via DELETE /api/v1/series.", s.seriesDeletes.Load())
		e.Gauge("cameo_http_inflight_ingest_bytes",
			"Reserved ingest body bytes currently in flight.", float64(s.inflightIngest.Load()))
	})
}

// handleMetrics serves the Prometheus text exposition of the shared
// registry — the same gather pass /statusz renders as JSON, so the two
// views cannot disagree.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.reg.WritePrometheus(w)
}

// handleStatusz serves the same gathered families as one flat JSON
// object (histograms as {count, sum, p50, p99, max} summaries).
func (s *Server) handleStatusz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	s.reg.WriteJSON(w)
}
