package server

import (
	"bufio"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/url"
	"strconv"
	"sync"
	"time"

	"repro/internal/series"
)

// queryEnd is the default for an omitted "to" parameter: far past any
// series, so the store's clamp reads to the series end.
const queryEnd = math.MaxInt / 2

// encodeBufs recycles the per-request encode buffers of the query
// handlers across requests — each buffer regrows to a block's worth of
// rendered floats, which is real allocation pressure under a
// dashboard-style query storm. Pointers, not slices, so Put does not
// box a fresh header per request.
var encodeBufs = sync.Pool{New: func() any { b := make([]byte, 0, 16<<10); return &b }}

// intParam parses an optional integer query parameter.
func intParam(q url.Values, key string, def int) (int, error) {
	s := q.Get(key)
	if s == "" {
		return def, nil
	}
	v, err := strconv.Atoi(s)
	if err != nil {
		return 0, fmt.Errorf("parameter %q: invalid integer %q", key, s)
	}
	return v, nil
}

// parseAggFunc maps the aggfn parameter onto the shared aggregation enum.
func parseAggFunc(name string) (series.AggFunc, error) {
	switch name {
	case "", "mean":
		return series.AggMean, nil
	case "sum":
		return series.AggSum, nil
	case "max":
		return series.AggMax, nil
	case "min":
		return series.AggMin, nil
	}
	return 0, fmt.Errorf("parameter \"aggfn\": unknown aggregate %q (want mean, sum, max, min)", name)
}

// rangeParams validates the parameters shared by the query endpoints.
// Validation happens here, at the API boundary, so a malformed request is
// answered 400 with a parameter-level message before touching the store —
// and the store's own checks (ErrInvalidRange, step/aggfn validation in
// QueryAgg) remain as the second line behind it.
func rangeParams(q url.Values) (name string, from, to int, err error) {
	name = q.Get("series")
	if name == "" {
		return "", 0, 0, fmt.Errorf("parameter \"series\" is required")
	}
	if from, err = intParam(q, "from", 0); err != nil {
		return "", 0, 0, err
	}
	if to, err = intParam(q, "to", queryEnd); err != nil {
		return "", 0, 0, err
	}
	if from > to {
		return "", 0, 0, fmt.Errorf("invalid range: from %d > to %d", from, to)
	}
	return name, from, to, nil
}

// appendJSONFloat appends v in the shortest decimal form that parses back
// to the identical float64 — responses round-trip bit-for-bit. JSON has
// no literal for non-finite values, so those encode as the strings "NaN",
// "+Inf", "-Inf" (strconv.ParseFloat accepts all three spellings back).
func appendJSONFloat(b []byte, v float64) []byte {
	if math.IsNaN(v) {
		return append(b, `"NaN"`...)
	}
	if math.IsInf(v, 1) {
		return append(b, `"+Inf"`...)
	}
	if math.IsInf(v, -1) {
		return append(b, `"-Inf"`...)
	}
	return strconv.AppendFloat(b, v, 'g', -1, 64)
}

// handleQuery streams the raw reconstruction of one range straight off a
// store cursor: each cursor chunk (at most one block) is encoded and
// flushed before the next is resolved, so the response is O(chunk) in
// server memory regardless of the range length, and cache-resident blocks
// stream without being copied at all.
//
// Formats (format=ndjson, the default, or format=csv):
//
//	ndjson: {"start":<abs index>,"values":[v,...]} per chunk
//	csv:    "index,value" header, then one sample per row
//
// Floats are encoded in shortest round-trip form, so a client parsing the
// response recovers bit-identical float64s to a direct Store.Query. An
// error after streaming began cannot change the status code anymore; it
// terminates the body with an {"error":...} line (ndjson) or an
// "# error: ..." comment row (csv).
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	tr := traceFrom(r.Context())
	st := stageTimer{t: tr, name: "admission", at: time.Now()}
	q := r.URL.Query()
	name, from, to, err := rangeParams(q)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	format := q.Get("format")
	if format == "" {
		format = "ndjson"
	}
	if format != "ndjson" && format != "csv" {
		http.Error(w, fmt.Sprintf("parameter \"format\": want ndjson or csv, got %q", format), http.StatusBadRequest)
		return
	}
	st.next("cursor_open")
	cur, err := s.db.Cursor(name, from, to)
	if err != nil {
		httpError(w, err)
		return
	}
	defer cur.Close()
	st.stop()

	if format == "csv" {
		w.Header().Set("Content-Type", "text/csv; charset=utf-8")
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson")
	}
	bw := bufio.NewWriterSize(w, 32<<10)
	flusher, _ := w.(http.Flusher)
	// Absolute index of the next sample the cursor yields. Cursor.Start,
	// not the request's from: the store clamps the range to the retained
	// suffix (negative from, or history below a retention trim base), and
	// chunk start indices must label the samples actually returned.
	pos := cur.Start()
	flushed := false // whether any bytes (and so the 200 status) reached the client
	lineBuf := encodeBufs.Get().(*[]byte)
	line := (*lineBuf)[:0]
	defer func() { *lineBuf = line[:0]; encodeBufs.Put(lineBuf) }()
	if format == "csv" {
		bw.WriteString("index,value\n")
	}
	for {
		// resolve covers block lookup/decode inside the cursor; encode_flush
		// covers rendering plus pushing bytes at the client. Accumulated per
		// chunk, so the trace splits a slow scan into "storage was slow"
		// versus "the client (or encoding) was slow".
		resolveStart := time.Now()
		chunk, ok := cur.Next()
		tr.addStage("resolve", time.Since(resolveStart))
		if !ok {
			break
		}
		encodeStart := time.Now()
		line = line[:0]
		if format == "csv" {
			for i, v := range chunk {
				line = strconv.AppendInt(line, int64(pos+i), 10)
				line = append(line, ',')
				line = strconv.AppendFloat(line, v, 'g', -1, 64)
				line = append(line, '\n')
			}
		} else {
			line = append(line, `{"start":`...)
			line = strconv.AppendInt(line, int64(pos), 10)
			line = append(line, `,"values":[`...)
			for i, v := range chunk {
				if i > 0 {
					line = append(line, ',')
				}
				line = appendJSONFloat(line, v)
			}
			line = append(line, "]}\n"...)
		}
		if _, err := bw.Write(line); err != nil {
			// Client went away; nothing left to tell it — but the abort is
			// still an operator signal (a dashboard timing out mid-scan looks
			// exactly like this), so it counts before the handler bails.
			s.queryAborted.Add(1)
			return
		}
		pos += len(chunk)
		// Hand the chunk to the client before resolving the next block, so
		// slow storage never stalls bytes already decoded.
		if bw.Flush() != nil {
			s.queryAborted.Add(1)
			return
		}
		flushed = true
		if flusher != nil {
			flusher.Flush()
		}
		tr.addStage("encode_flush", time.Since(encodeStart))
	}
	if err := cur.Err(); err != nil {
		if !flushed {
			// Nothing has reached the client yet (at most an unflushed CSV
			// header sits in bw), so the status code is still ours to set:
			// report the failure properly instead of a 200 with an error
			// body.
			httpError(w, err)
			return
		}
		// Too late for a status code; poison the body instead of letting a
		// truncated response read as a complete one.
		if format == "csv" {
			fmt.Fprintf(bw, "# error: %v\n", err)
		} else {
			msg, _ := json.Marshal(err.Error())
			fmt.Fprintf(bw, "{\"error\":%s}\n", msg)
		}
	}
	if bw.Flush() != nil {
		s.queryAborted.Add(1)
	}
}

// handleQueryAgg answers downsampled aggregate queries by mapping
// step/aggfn straight onto Store.QueryAgg, so cold blocks of the segment
// codecs and CAMEO aggregate via codec pushdown without materializing
// samples. The result is one value per step-sample window — already tiny
// — so unlike /query it is returned as a single JSON document.
func (s *Server) handleQueryAgg(w http.ResponseWriter, r *http.Request) {
	st := stageTimer{t: traceFrom(r.Context()), name: "admission", at: time.Now()}
	q := r.URL.Query()
	name, from, to, err := rangeParams(q)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if q.Get("step") == "" {
		http.Error(w, "parameter \"step\" is required", http.StatusBadRequest)
		return
	}
	step, err := intParam(q, "step", 0)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if step < 1 {
		http.Error(w, fmt.Sprintf("parameter \"step\": must be at least 1, got %d", step), http.StatusBadRequest)
		return
	}
	f, err := parseAggFunc(q.Get("aggfn"))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	st.next("resolve")
	vals, err := s.db.QueryAgg(name, from, to, step, f)
	if err != nil {
		httpError(w, err)
		return
	}
	st.stop()
	w.Header().Set("Content-Type", "application/json")
	// Hand-encode the float array so values keep their shortest
	// round-trip form (and non-finite aggregates of non-finite data do
	// not abort the marshal).
	nameJSON, _ := json.Marshal(name)
	bodyBuf := encodeBufs.Get().(*[]byte)
	body := (*bodyBuf)[:0]
	defer func() { *bodyBuf = body[:0]; encodeBufs.Put(bodyBuf) }()
	body = append(body, `{"series":`...)
	body = append(body, nameJSON...)
	body = append(body, `,"step":`...)
	body = strconv.AppendInt(body, int64(step), 10)
	body = append(body, `,"aggfn":"`...)
	body = append(body, aggName(f)...)
	body = append(body, `","values":[`...)
	for i, v := range vals {
		if i > 0 {
			body = append(body, ',')
		}
		body = appendJSONFloat(body, v)
	}
	body = append(body, "]}\n"...)
	w.Write(body)
}

func aggName(f series.AggFunc) string {
	switch f {
	case series.AggSum:
		return "sum"
	case series.AggMax:
		return "max"
	case series.AggMin:
		return "min"
	default:
		return "mean"
	}
}
