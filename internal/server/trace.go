package server

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// trace is the per-request record behind /debug/traces, the slow-query
// log, and the access log: a request-scoped ID (honoring an inbound
// X-Request-Id, so one ID follows a request across proxies), the coarse
// outcome the middleware fills at completion, and the named stage
// timings the handlers record along the way (admission, cursor open,
// per-block resolve, encode/flush for the query path). A trace is
// written by one handler goroutine; it is only shared once finished.
type trace struct {
	ID       string       `json:"trace_id"`
	Endpoint string       `json:"endpoint"`
	Target   string       `json:"target"` // method + path + query
	Status   int          `json:"status"`
	Bytes    int64        `json:"bytes"` // response body bytes written
	Start    time.Time    `json:"start"`
	Duration milliFloat   `json:"duration_ms"`
	Stages   []traceStage `json:"stages,omitempty"`
}

type traceStage struct {
	Name     string     `json:"name"`
	Duration milliFloat `json:"duration_ms"`
}

// milliFloat renders a time.Duration as fractional milliseconds in JSON —
// the unit log pipelines expect — without a float field in the struct.
type milliFloat time.Duration

func (m milliFloat) MarshalJSON() ([]byte, error) {
	return json.Marshal(float64(time.Duration(m)) / float64(time.Millisecond))
}

// addStage accumulates d into the named stage (stages are few, so a
// linear scan beats a map and allocates only on first use of a name).
// Safe on a nil trace so handlers can run uninstrumented in tests.
func (t *trace) addStage(name string, d time.Duration) {
	if t == nil {
		return
	}
	for i := range t.Stages {
		if t.Stages[i].Name == name {
			t.Stages[i].Duration += milliFloat(d)
			return
		}
	}
	t.Stages = append(t.Stages, traceStage{Name: name, Duration: milliFloat(d)})
}

// stageTimer times one stage: stop it (or re-arm with next) at each
// boundary. now is captured at arm time so a stage's cost includes
// everything since the previous boundary.
type stageTimer struct {
	t    *trace
	name string
	at   time.Time
}

func (st *stageTimer) next(name string) {
	now := time.Now()
	st.t.addStage(st.name, now.Sub(st.at))
	st.name, st.at = name, now
}

func (st *stageTimer) stop() {
	st.t.addStage(st.name, time.Since(st.at))
}

type traceCtxKey struct{}

// traceFrom returns the request's trace, or nil when the handler runs
// outside the instrument middleware (direct handler tests).
func traceFrom(ctx context.Context) *trace {
	t, _ := ctx.Value(traceCtxKey{}).(*trace)
	return t
}

// traceIDCounter seeds the fallback ID path when the system randomness
// source fails (never expected, but an ID must still be unique-ish).
var traceIDCounter atomic.Uint64

// newTraceID returns a 16-hex-char request ID.
func newTraceID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		n := traceIDCounter.Add(1)
		for i := range b {
			b[i] = byte(n >> (8 * i))
		}
	}
	return hex.EncodeToString(b[:])
}

// traceRingSize bounds /debug/traces: recent enough to debug "what just
// happened", small enough to be memory-irrelevant.
const traceRingSize = 64

// traceRing keeps the most recent finished traces.
type traceRing struct {
	mu   sync.Mutex
	buf  [traceRingSize]*trace
	next int // buf index the next trace lands in
	n    int // traces stored, up to traceRingSize
}

func (r *traceRing) add(t *trace) {
	r.mu.Lock()
	r.buf[r.next] = t
	r.next = (r.next + 1) % traceRingSize
	if r.n < traceRingSize {
		r.n++
	}
	r.mu.Unlock()
}

// snapshot returns the stored traces, newest first.
func (r *traceRing) snapshot() []*trace {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*trace, 0, r.n)
	for i := 1; i <= r.n; i++ {
		out = append(out, r.buf[(r.next-i+traceRingSize)%traceRingSize])
	}
	return out
}

// handleTraces serves the ring as a JSON array, newest first.
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(s.traces.snapshot())
}

// logLine serializes one trace as a single JSON line under the log mutex
// (concurrent requests must not interleave bytes within a line).
func (s *Server) logLine(kind string, t *trace) {
	rec := struct {
		Kind string `json:"log"`
		*trace
	}{Kind: kind, trace: t}
	line, err := json.Marshal(rec)
	if err != nil {
		return
	}
	line = append(line, '\n')
	s.logMu.Lock()
	s.opt.LogWriter.Write(line)
	s.logMu.Unlock()
}

// noteFinished routes one finished trace to the ring and, as configured,
// the access log (every request) and the sampled slow-query log (query
// endpoints over the threshold, every SlowQuerySample'th occurrence).
func (s *Server) noteFinished(t *trace, isQuery bool) {
	s.traces.add(t)
	if s.opt.AccessLog {
		s.logLine("access", t)
	}
	if isQuery && s.opt.SlowQueryThreshold > 0 && time.Duration(t.Duration) >= s.opt.SlowQueryThreshold {
		if n := s.slowSeen.Add(1); (n-1)%uint64(s.opt.SlowQuerySample) == 0 {
			s.logLine("slow_query", t)
		}
	}
}
