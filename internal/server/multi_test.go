package server

import (
	"bufio"
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"repro/internal/series"
)

// batchSection is one series' reassembled section of a batch NDJSON
// response: the concatenated chunk values, the start of the first chunk,
// or the in-body error.
type batchSection struct {
	Series string
	Start  int
	Values []float64
	Err    string
}

// parseBatchNDJSON reassembles a POST /api/v1/query response: lines for
// the same series arriving back to back collapse into one section, chunk
// starts must be contiguous, and section order is preserved.
func parseBatchNDJSON(t *testing.T, body string) []batchSection {
	t.Helper()
	var out []batchSection
	sc := bufio.NewScanner(strings.NewReader(body))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var line struct {
			Series string    `json:"series"`
			Start  *int      `json:"start"`
			Values []float64 `json:"values"`
			Error  string    `json:"error"`
		}
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		if line.Error != "" {
			out = append(out, batchSection{Series: line.Series, Err: line.Error})
			continue
		}
		if line.Start == nil {
			t.Fatalf("line without start or error: %q", sc.Text())
		}
		if n := len(out); n > 0 && out[n-1].Series == line.Series && out[n-1].Err == "" &&
			out[n-1].Start+len(out[n-1].Values) == *line.Start {
			out[n-1].Values = append(out[n-1].Values, line.Values...)
			continue
		}
		out = append(out, batchSection{Series: line.Series, Start: *line.Start, Values: line.Values})
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestBatchQueryMatchesSingle is the HTTP half of the fan-out
// differential: one POST /api/v1/query over several series — an unknown
// one and a duplicate included — must deliver, per section and in
// request order, exactly the samples the store's sequential Query
// returns, with the unknown series as an in-body error line and the
// overall status still 200.
func TestBatchQueryMatchesSingle(t *testing.T) {
	fill := map[string][]float64{
		"a": sensorData(1300, 1),
		"b": sensorData(700, 2),
		"c": sensorData(90, 3),
	}
	db, srv := newTestServer(t, nil, Options{}, fill)
	names := []string{"b", "nope", "a", "b", "c"}
	body, _ := json.Marshal(map[string]any{"series": names})
	status, resp, hdr := httpPost(t, srv.URL+"/api/v1/query", "application/json", string(body))
	if status != http.StatusOK {
		t.Fatalf("batch query: %d: %s", status, resp)
	}
	if ct := hdr.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type = %q", ct)
	}
	sections := parseBatchNDJSON(t, resp)
	if len(sections) != len(names) {
		t.Fatalf("%d sections for %d requested series", len(sections), len(names))
	}
	for i, name := range names {
		sec := sections[i]
		if sec.Series != name {
			t.Fatalf("section %d is %q, want %q (request order)", i, sec.Series, name)
		}
		if name == "nope" {
			if sec.Err == "" {
				t.Fatalf("unknown series produced no error line: %+v", sec)
			}
			continue
		}
		if sec.Err != "" {
			t.Fatalf("section %q: %s", name, sec.Err)
		}
		want, err := db.Query(name, 0, len(fill[name]))
		if err != nil {
			t.Fatal(err)
		}
		if sec.Start != 0 || len(sec.Values) != len(want) {
			t.Fatalf("section %q: start %d, %d samples, want 0, %d", name, sec.Start, len(sec.Values), len(want))
		}
		for j := range want {
			if sec.Values[j] != want[j] {
				t.Fatalf("section %q: sample %d = %v, want %v", name, j, sec.Values[j], want[j])
			}
		}
	}
	if n := statuszServer(t, srv.URL).labeled(t, "cameo_http_requests_total", `endpoint="query_multi",status="2xx"`); n != 1 {
		t.Fatalf("query_multi 2xx requests = %v, want 1", n)
	}
}

// TestBatchQueryRangeAndEmptySection pins the explicit-range form and
// the empty-section contract: a series whose retained range misses the
// window still yields exactly one line, with empty values.
func TestBatchQueryRangeAndEmptySection(t *testing.T) {
	fill := map[string][]float64{
		"long":  sensorData(1200, 4),
		"short": sensorData(50, 5),
	}
	db, srv := newTestServer(t, nil, Options{}, fill)
	body := `{"series":["long","short"],"from":600,"to":900}`
	status, resp, _ := httpPost(t, srv.URL+"/api/v1/query", "application/json", body)
	if status != http.StatusOK {
		t.Fatalf("batch query: %d: %s", status, resp)
	}
	sections := parseBatchNDJSON(t, resp)
	if len(sections) != 2 {
		t.Fatalf("%d sections, want 2", len(sections))
	}
	want, err := db.Query("long", 600, 900)
	if err != nil {
		t.Fatal(err)
	}
	if sections[0].Start != 600 || len(sections[0].Values) != len(want) {
		t.Fatalf("long section: start %d len %d, want 600 len %d", sections[0].Start, len(sections[0].Values), len(want))
	}
	for j := range want {
		if sections[0].Values[j] != want[j] {
			t.Fatalf("long section sample %d = %v, want %v", j, sections[0].Values[j], want[j])
		}
	}
	// "short" has 50 samples: the [600, 900) window clamps to nothing,
	// but the section line must still be there.
	if sections[1].Series != "short" || sections[1].Err != "" || len(sections[1].Values) != 0 {
		t.Fatalf("short section = %+v, want empty values", sections[1])
	}
}

// TestBatchQueryValidation covers the request-level refusals: malformed
// JSON, an empty series list, and an inverted range are 400s; a body
// past MaxRequestBytes is a 413. None of them reach the store.
func TestBatchQueryValidation(t *testing.T) {
	_, srv := newTestServer(t, nil, Options{MaxRequestBytes: 256}, map[string][]float64{
		"a": sensorData(100, 6),
	})
	for _, tc := range []struct {
		name, body string
		status     int
	}{
		{"malformed JSON", `{"series":`, http.StatusBadRequest},
		{"empty series list", `{"series":[]}`, http.StatusBadRequest},
		{"inverted range", `{"series":["a"],"from":9,"to":3}`, http.StatusBadRequest},
		{"oversized body", `{"series":["` + strings.Repeat("x", 400) + `"]}`, http.StatusRequestEntityTooLarge},
	} {
		for _, ep := range []string{"/api/v1/query", "/api/v1/query_agg"} {
			status, body, _ := httpPost(t, srv.URL+ep, "application/json", tc.body)
			if status != tc.status {
				t.Fatalf("%s %s: %d (%s), want %d", tc.name, ep, status, strings.TrimSpace(body), tc.status)
			}
		}
	}
	// Aggregate-only refusals: a missing/zero step and an unknown aggfn.
	for _, body := range []string{
		`{"series":["a"]}`,
		`{"series":["a"],"step":24,"aggfn":"median"}`,
	} {
		status, resp, _ := httpPost(t, srv.URL+"/api/v1/query_agg", "application/json", body)
		if status != http.StatusBadRequest {
			t.Fatalf("query_agg %s: %d (%s), want 400", body, status, strings.TrimSpace(resp))
		}
	}
}

// TestBatchQueryAggMatchesSingle checks POST /api/v1/query_agg: one line
// per series in request order, values matching the store's QueryAgg, and
// an in-body error line for the unknown series.
func TestBatchQueryAggMatchesSingle(t *testing.T) {
	fill := map[string][]float64{
		"a": sensorData(1300, 7),
		"b": sensorData(700, 8),
	}
	db, srv := newTestServer(t, nil, Options{}, fill)
	names := []string{"a", "nope", "b"}
	body := `{"series":["a","nope","b"],"from":0,"to":696,"step":24,"aggfn":"max"}`
	status, resp, _ := httpPost(t, srv.URL+"/api/v1/query_agg", "application/json", body)
	if status != http.StatusOK {
		t.Fatalf("batch agg: %d: %s", status, resp)
	}
	lines := strings.Split(strings.TrimSpace(resp), "\n")
	if len(lines) != len(names) {
		t.Fatalf("%d lines for %d series", len(lines), len(names))
	}
	for i, name := range names {
		var line struct {
			Series string    `json:"series"`
			Step   int       `json:"step"`
			AggFn  string    `json:"aggfn"`
			Values []float64 `json:"values"`
			Error  string    `json:"error"`
		}
		if err := json.Unmarshal([]byte(lines[i]), &line); err != nil {
			t.Fatalf("line %d %q: %v", i, lines[i], err)
		}
		if line.Series != name {
			t.Fatalf("line %d is %q, want %q", i, line.Series, name)
		}
		if name == "nope" {
			if line.Error == "" {
				t.Fatalf("unknown series line carries no error: %q", lines[i])
			}
			continue
		}
		if line.Error != "" || line.Step != 24 || line.AggFn != "max" {
			t.Fatalf("line %d = %q", i, lines[i])
		}
		want, err := db.QueryAgg(name, 0, 696, 24, parseAggMust(t, "max"))
		if err != nil {
			t.Fatal(err)
		}
		if len(line.Values) != len(want) {
			t.Fatalf("%q: %d windows, want %d", name, len(line.Values), len(want))
		}
		for j := range want {
			if line.Values[j] != want[j] {
				t.Fatalf("%q window %d = %v, want %v", name, j, line.Values[j], want[j])
			}
		}
	}
	if n := statuszServer(t, srv.URL).labeled(t, "cameo_http_requests_total", `endpoint="query_agg_multi",status="2xx"`); n != 1 {
		t.Fatalf("query_agg_multi 2xx requests = %v, want 1", n)
	}
}

func parseAggMust(t *testing.T, name string) series.AggFunc {
	t.Helper()
	f, err := parseAggFunc(name)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// TestBatchQueryStreamsChunks checks the O(chunk·fanout) streaming
// contract indirectly: a multi-block section arrives as several chunk
// lines with contiguous starts, not one giant line per series.
func TestBatchQueryStreamsChunks(t *testing.T) {
	fill := map[string][]float64{"a": sensorData(4*512+37, 9)}
	_, srv := newTestServer(t, nil, Options{}, fill)
	status, resp, _ := httpPost(t, srv.URL+"/api/v1/query", "application/json", `{"series":["a"]}`)
	if status != http.StatusOK {
		t.Fatalf("batch query: %d", status)
	}
	lines := strings.Count(strings.TrimSpace(resp), "\n") + 1
	if lines < 4 {
		t.Fatalf("4-block series answered in %d chunk lines, want several (chunked streaming)", lines)
	}
	sections := parseBatchNDJSON(t, resp)
	if len(sections) != 1 || len(sections[0].Values) != len(fill["a"]) {
		t.Fatalf("reassembly: %d sections, %d samples", len(sections), len(sections[0].Values))
	}
}
