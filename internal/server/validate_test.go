package server

import (
	"net/http"
	"testing"
)

// TestQueryParamValidation is the table-driven boundary check of every
// query-side parameter edge: each malformed request must be answered with
// the right status and never reach deeper layers as a 500.
func TestQueryParamValidation(t *testing.T) {
	_, srv := newTestServer(t, nil, Options{}, map[string][]float64{"s": sensorData(600, 4)})

	cases := []struct {
		name string
		path string
		want int
	}{
		// /api/v1/query
		{"query-ok", "/api/v1/query?series=s&from=0&to=10", http.StatusOK},
		{"query-defaults", "/api/v1/query?series=s", http.StatusOK},
		{"query-missing-series", "/api/v1/query", http.StatusBadRequest},
		{"query-unknown-series", "/api/v1/query?series=nope", http.StatusNotFound},
		{"query-bad-from", "/api/v1/query?series=s&from=abc", http.StatusBadRequest},
		{"query-bad-to", "/api/v1/query?series=s&to=1.5", http.StatusBadRequest},
		{"query-inverted", "/api/v1/query?series=s&from=50&to=20", http.StatusBadRequest},
		{"query-bad-format", "/api/v1/query?series=s&format=xml", http.StatusBadRequest},
		{"query-clamped", "/api/v1/query?series=s&from=-100&to=99999", http.StatusOK},
		{"query-empty-range", "/api/v1/query?series=s&from=10&to=10", http.StatusOK},
		// /api/v1/query_agg
		{"agg-ok", "/api/v1/query_agg?series=s&from=0&to=600&step=60", http.StatusOK},
		{"agg-default-range", "/api/v1/query_agg?series=s&step=60&aggfn=max", http.StatusOK},
		{"agg-missing-step", "/api/v1/query_agg?series=s", http.StatusBadRequest},
		{"agg-zero-step", "/api/v1/query_agg?series=s&step=0", http.StatusBadRequest},
		{"agg-negative-step", "/api/v1/query_agg?series=s&step=-3", http.StatusBadRequest},
		{"agg-bad-step", "/api/v1/query_agg?series=s&step=sixty", http.StatusBadRequest},
		{"agg-unknown-fn", "/api/v1/query_agg?series=s&step=60&aggfn=median", http.StatusBadRequest},
		{"agg-inverted", "/api/v1/query_agg?series=s&from=50&to=20&step=5", http.StatusBadRequest},
		{"agg-missing-series", "/api/v1/query_agg?step=60", http.StatusBadRequest},
		{"agg-unknown-series", "/api/v1/query_agg?series=nope&step=60", http.StatusNotFound},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, body := httpGet(t, srv.URL+tc.path)
			if status != tc.want {
				t.Fatalf("GET %s = %d (%s), want %d", tc.path, status, body, tc.want)
			}
		})
	}

	// Wrong methods are 405 (the mux enforces the method patterns).
	// POST /api/v1/query is the batch form, so an empty body there is a
	// 400 (bad JSON), not a 405 — /api/v1/write covers the method check.
	status, _, _ := httpPost(t, srv.URL+"/api/v1/query?series=s", "text/plain", "")
	if status != http.StatusBadRequest {
		t.Fatalf("POST query with empty body: %d, want 400", status)
	}
	status, _, _ = httpPost(t, srv.URL+"/api/v1/series", "text/plain", "")
	if status != http.StatusMethodNotAllowed {
		t.Fatalf("POST series: %d, want 405", status)
	}
	resp, err := http.Get(srv.URL + "/api/v1/write")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET write: %d, want 405", resp.StatusCode)
	}
}
