package tsdb

import "sync/atomic"

// Prefetch job lifecycle. A job starts queued; exactly one CAS away from
// queued decides who owns it: the pool worker claims it and resolves the
// segment, or the cursor abandons it (claim-back in Next when the worker
// has not started yet, cancellation in Close). An abandoning cursor that
// wins the CAS knows the worker will do nothing — no buffer to reclaim,
// no wait. Losing the CAS means the worker is (or was) running, so the
// cursor waits on done and takes ownership of the job's pooled buffer.
const (
	prefetchQueued int32 = iota
	prefetchClaimed
	prefetchAbandoned
)

// prefetchJob is one readahead unit: resolve a durable segment's overlap
// into a pooled buffer on the worker pool while the cursor's caller is
// still consuming an earlier chunk. Jobs are only ever scheduled for
// durable, not-yet-resolved segments — a pool job waiting on a pending
// block could deadlock the FIFO pool (the block's own compression, or a
// streaming seal's persist step, may be queued behind it) — so a claimed
// job always runs to completion without blocking on anything but I/O.
type prefetchJob struct {
	state atomic.Int32
	done  chan struct{}
	chunk []float64 // resolved overlap; may alias buf or the block cache
	buf   []float64 // pooled decode buffer, owned by whoever consumes the job
	err   error
}

// schedulePrefetch tops the pipeline up to ra outstanding jobs covering
// the segments just past the one Next is about to resolve. Pending
// segments are skipped (Next resolves them inline on the caller's
// goroutine, where waiting is safe) and so are pre-resolved dense ones.
// When the pool queue is full the segment is simply not prefetched —
// readahead is opportunistic and never adds backpressure to the read
// path.
func (c *Cursor) schedulePrefetch() {
	for i := c.idx; i < len(c.snap.segs) && i < c.idx+c.ra; i++ {
		if _, ok := c.jobs[i]; ok {
			continue
		}
		s := c.snap.segs[i]
		if s.pending != nil || s.dense != nil {
			continue
		}
		j := &prefetchJob{done: make(chan struct{})}
		lo := max(c.snap.from, s.meta.start)
		hi := min(c.snap.to, s.meta.start+s.meta.n)
		db, snap := c.db, c.snap
		db.pool.reserve()
		ok := db.pool.trySubmit(compressJob{fn: func() {
			defer close(j.done)
			if !j.state.CompareAndSwap(prefetchQueued, prefetchClaimed) {
				return // claimed back or cancelled before the worker got here
			}
			j.chunk, j.err = db.segmentRange(snap, s, lo, hi, &j.buf)
		}})
		if !ok {
			db.pool.jobDone()
			return // queue full; stop scheduling this round
		}
		c.jobs[i] = j
	}
}

// consumePrefetch collects the prefetch job for the segment Next is about
// to yield. A job still queued is claimed back and resolved inline, so a
// backed-up pool never makes readahead slower than no readahead (it
// counts as neither hit nor waste — the pool never got to it). A job the
// worker claimed is waited for; its pooled buffer becomes the cursor's
// held buffer, released on the next Next or Close, because the returned
// chunk may alias it.
func (c *Cursor) consumePrefetch(j *prefetchJob, s cursorSeg, lo, hi int) ([]float64, error) {
	if j.state.CompareAndSwap(prefetchQueued, prefetchAbandoned) {
		return c.db.segmentRange(c.snap, s, lo, hi, &c.buf)
	}
	<-j.done
	if j.err != nil {
		if j.buf != nil {
			c.db.putBlockBuf(j.buf)
		}
		return nil, j.err
	}
	c.db.prefetchHits.Add(1)
	c.held = j.buf
	return j.chunk, nil
}

// releaseHeld returns the previously consumed prefetch buffer to the
// pool. Called at the top of Next and in Close — the chunk the caller
// just finished with may alias it.
func (c *Cursor) releaseHeld() {
	if c.held != nil {
		c.db.putBlockBuf(c.held)
		c.held = nil
	}
}

// cancelPrefetch abandons every outstanding job: still-queued jobs flip
// to abandoned before the worker allocates anything, running jobs are
// waited for and their pooled buffers returned. Each decode that
// completed but was never consumed counts as wasted readahead.
func (c *Cursor) cancelPrefetch() {
	for i, j := range c.jobs {
		delete(c.jobs, i)
		if j.state.CompareAndSwap(prefetchQueued, prefetchAbandoned) {
			continue
		}
		<-j.done
		if j.buf != nil {
			c.db.putBlockBuf(j.buf)
		}
		if j.err == nil {
			c.db.prefetchWasted.Add(1)
		}
	}
}
