package tsdb

import (
	"math"
	"testing"

	"repro/internal/codec"
	"repro/internal/series"
)

// bitstreamOptions builds a cache-less store over a bit-stream codec, so
// every read is a cold read: exactly the regime checkpoints exist for.
func bitstreamOptions(c codec.Codec, ckptInterval int) Options {
	return Options{
		Codec:              c,
		BlockSize:          1024,
		Shards:             2,
		Workers:            -1, // synchronous: blocks are durable when Append returns
		CacheBlocks:        -1,
		CheckpointInterval: ckptInterval,
	}
}

// TestColdPartialReadSeeksViaCheckpoints pins the tentpole end to end for
// every bit-stream codec: a small cold read in the middle of a block is
// bit-identical to the full query, is served through the checkpoint seek
// path (CheckpointSeeks, RangeDecodes), and traverses only O(overlap + k)
// compressed bytes rather than the whole block prefix.
func TestColdPartialReadSeeksViaCheckpoints(t *testing.T) {
	for _, c := range []codec.Codec{codec.Gorilla{}, codec.Chimp{}, codec.Elf{}} {
		t.Run(c.Name(), func(t *testing.T) {
			db, err := Open(t.TempDir(), bitstreamOptions(c, 128))
			if err != nil {
				t.Fatal(err)
			}
			defer db.Close()
			total := 2 * 1024
			data := sensorData(total, 21)
			if err := db.Append("s", data...); err != nil {
				t.Fatal(err)
			}
			if err := db.Sync(); err != nil {
				t.Fatal(err)
			}
			got, err := db.Query("s", 900, 964)
			if err != nil {
				t.Fatal(err)
			}
			for i, v := range got {
				if math.Float64bits(v) != math.Float64bits(data[900+i]) {
					t.Fatalf("sample %d: %v != %v", 900+i, v, data[900+i])
				}
			}
			s := db.Stats()
			if s.CheckpointSeeks != 1 || s.RangeDecodes != 1 {
				t.Fatalf("CheckpointSeeks = %d, RangeDecodes = %d, want 1 and 1", s.CheckpointSeeks, s.RangeDecodes)
			}
			// [900, 964) with k=128 resumes at sample 896: at most
			// 64 + 128 samples of stream, far below the ~900-sample prefix
			// a front replay would read. 80 bits/sample bounds every codec.
			if bound := uint64((64 + 128) * 80 / 8); s.CheckpointBytes == 0 || s.CheckpointBytes > bound {
				t.Fatalf("CheckpointBytes = %d, want in (0, %d]", s.CheckpointBytes, bound)
			}
		})
	}
}

// TestCheckpointedQueryAggFoldsWithoutMaterializing: a cold aggregate
// query over a bit-stream block must ride the checkpointed window fold
// (AggPushdowns + CheckpointSeeks) and agree exactly with the dense fold
// of the materialized samples.
func TestCheckpointedQueryAggFoldsWithoutMaterializing(t *testing.T) {
	db, err := Open(t.TempDir(), bitstreamOptions(codec.Gorilla{}, 128))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	total := 3 * 1024
	data := sensorData(total, 22)
	if err := db.Append("s", data...); err != nil {
		t.Fatal(err)
	}
	if err := db.Sync(); err != nil {
		t.Fatal(err)
	}
	from, to, step := 200, 2900, 100
	got, err := db.QueryAgg("s", from, to, step, series.AggMean)
	if err != nil {
		t.Fatal(err)
	}
	s := db.Stats()
	if s.AggPushdowns != 3 || s.CheckpointSeeks != 3 {
		t.Fatalf("AggPushdowns = %d, CheckpointSeeks = %d, want 3 and 3 (one per overlapped block)", s.AggPushdowns, s.CheckpointSeeks)
	}
	for i := range got {
		lo := from + i*step
		hi := min(lo+step, to)
		sum := 0.0
		for _, v := range data[lo:hi] {
			sum += v
		}
		if want := sum / float64(hi-lo); got[i] != want {
			t.Fatalf("window %d: %v != %v", i, got[i], want)
		}
	}
}

// TestCheckpointsDisabledFallsBackToFullDecode: a store opened with a
// negative CheckpointInterval writes version-1 sidecar-less blocks; cold
// partial reads then take the decode-and-cache path (no seeks counted)
// and still return identical samples — the compatibility story for blocks
// written by older builds, exercised through the same engine.
func TestCheckpointsDisabledFallsBackToFullDecode(t *testing.T) {
	opt := bitstreamOptions(codec.Gorilla{}, -1)
	opt.CacheBlocks = 4 // the fallback path wants to cache its full decode
	dir := t.TempDir()
	db, err := Open(dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	data := sensorData(2048, 23)
	if err := db.Append("s", data...); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	// Reopen with checkpoints enabled: the old sidecar-less blocks must
	// still be readable, served by the fallback, with no seeks counted.
	db, err = Open(dir, bitstreamOptions(codec.Gorilla{}, 128))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	got, err := db.Query("s", 900, 964)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if math.Float64bits(v) != math.Float64bits(data[900+i]) {
			t.Fatalf("sample %d: %v != %v", 900+i, v, data[900+i])
		}
	}
	if s := db.Stats(); s.CheckpointSeeks != 0 || s.CheckpointBytes != 0 {
		t.Fatalf("sidecar-less blocks counted checkpoint seeks: %+v", s)
	}
}

// TestCompactionRegeneratesCheckpointSidecars: merging under-filled
// bit-stream blocks must leave the merged block seekable — the sidecar is
// rebuilt for the merged stream, so cold partial reads after compaction
// still go through the checkpoint path and return identical samples.
func TestCompactionRegeneratesCheckpointSidecars(t *testing.T) {
	// Bit-stream codecs keep partial tails verbatim rather than cutting
	// under-filled blocks, so manufacture them the way operators do: write
	// full blocks under a small BlockSize, then reopen larger — the old
	// blocks now sit far below the fill threshold and compaction merges
	// them.
	small := bitstreamOptions(codec.Gorilla{}, 64)
	small.BlockSize = 256
	dir := t.TempDir()
	db, err := Open(dir, small)
	if err != nil {
		t.Fatal(err)
	}
	data := sensorData(6*256, 30)
	if err := db.Append("s", data...); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	opt := bitstreamOptions(codec.Gorilla{}, 64)
	opt.CompactMinFill = 0.9
	db, err = Open(dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := db.Maintain(); err != nil {
		t.Fatal(err)
	}
	if s := db.Stats(); s.CompactionRuns == 0 {
		t.Fatal("compaction did not run; the test premise is broken")
	}
	before := db.Stats().CheckpointSeeks
	got, err := db.Query("s", 700, 750)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if math.Float64bits(v) != math.Float64bits(data[700+i]) {
			t.Fatalf("post-compaction sample %d: %v != %v", 700+i, v, data[700+i])
		}
	}
	if s := db.Stats(); s.CheckpointSeeks == before {
		t.Fatalf("post-compaction cold read did not seek: %+v", s)
	}
}

// TestRollupTierBlocksAreCheckpointed: tier blocks are gorilla-coded with
// the store's checkpoint spacing, so a cold tier-served QueryAgg rides
// the checkpoint fold too — the tentpole reaching the coarsest read path.
func TestRollupTierBlocksAreCheckpointed(t *testing.T) {
	opt := Options{
		Codec:              codec.Gorilla{},
		BlockSize:          512,
		Shards:             1,
		Workers:            -1,
		CacheBlocks:        -1,
		CheckpointInterval: 32,
		Rollups:            []RollupSpec{{Step: 8}},
	}
	db, err := Open(t.TempDir(), opt)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	total := 16 * 512
	data := sensorData(total, 40)
	if err := db.Append("s", data...); err != nil {
		t.Fatal(err)
	}
	if err := db.Maintain(); err != nil {
		t.Fatal(err)
	}
	if s := db.Stats(); s.RollupSamples == 0 {
		t.Fatal("rollups did not materialize; the test premise is broken")
	}
	before := db.Stats()
	got, err := db.QueryAgg("s", 0, total, 64, series.AggSum)
	if err != nil {
		t.Fatal(err)
	}
	after := db.Stats()
	if after.CheckpointSeeks == before.CheckpointSeeks {
		t.Fatalf("tier-served QueryAgg did not use the checkpoint fold: %+v", after)
	}
	// The tier answer composes sums of materialized window sums; verify
	// against the raw data folded the same way (sum of 8-sample sums).
	for i, g := range got {
		want := 0.0
		for w := 0; w < 64/8; w++ {
			wsum := 0.0
			for _, v := range data[i*64+w*8 : i*64+(w+1)*8] {
				wsum += v
			}
			want += wsum
		}
		if g != want {
			t.Fatalf("tier window %d: %v != %v", i, g, want)
		}
	}
}
