package tsdb

import (
	"fmt"
	"os"
	"sort"
	"sync"
	"time"
)

// shard is one lock domain of the store. Series names are hashed across
// shards so operations on series in different shards proceed concurrently;
// each shard owns its slice of the decoded-block cache, so cache traffic
// never crosses shard boundaries either.
type shard struct {
	mu     sync.RWMutex
	series map[string]*seriesState
	cache  *blockCache // nil when caching is disabled
}

// blockMeta indexes one persisted block.
type blockMeta struct {
	start   int // first sample index
	n       int // samples covered
	path    string
	bytes   int64  // encoded size on disk
	codecID uint8  // codec that wrote the block (from its header)
	hdrOff  int    // payload offset past the block header (0 for legacy blocks)
	gen     uint64 // store-unique revision, part of the cache identity
}

// key is the block's decoded-cache identity. The generation keeps a
// recycled path (compaction rewrite, delete + re-ingest) from aliasing a
// stale cached reconstruction.
func (m blockMeta) key() cacheKey { return cacheKey{path: m.path, gen: m.gen} }

// pendingBlock is a block that has been cut from the tail but whose
// compression has not yet completed. Queries overlapping it wait on done;
// the worker fills recon (the decoded reconstruction) or err before
// closing the channel.
type pendingBlock struct {
	start int
	raw   []float64 // owned copy of the cut samples; nil once durable
	done  chan struct{}

	// Written by the worker under the shard lock before done is closed.
	recon []float64
	err   error
}

// seriesState is the in-memory view of one series.
type seriesState struct {
	blocks     []blockMeta           // durable, sorted by start
	pending    map[int]*pendingBlock // cut blocks still compressing, by start
	tail       []float64             // samples not yet cut into a block
	tailStamps []int                 // start stamps of on-disk tail files
	base       int                   // first retained sample index (older ones trimmed by retention)
	assigned   int                   // samples cut into blocks (durable + pending), counted from 0
	total      int                   // assigned + len(tail)
	flushing   int                   // active Flushes; while > 0, Append defers async cuts
	stream     *streamState          // incremental compression state (Options.Streaming only)
}

func (db *DB) newSeriesState() *seriesState {
	st := &seriesState{pending: make(map[int]*pendingBlock)}
	if db.opt.Streaming {
		st.stream = &streamState{}
	}
	return st
}

// addTailStamp records an on-disk tail file (idempotent: rewriting the
// same stamp reuses the same file).
func (st *seriesState) addTailStamp(start int) {
	for _, s := range st.tailStamps {
		if s == start {
			return
		}
	}
	st.tailStamps = append(st.tailStamps, start)
}

// durableFrontier is the end of the contiguous durable block prefix
// (anchored at the retention base): every sample between base and it
// survives a crash. Out-of-order worker completions can leave durable
// blocks beyond a hole; those don't extend the frontier (recovery
// discards them).
func (st *seriesState) durableFrontier() int {
	f := st.base
	for _, b := range st.blocks {
		if b.start != f {
			break
		}
		f += b.n
	}
	return f
}

// insertBlock adds a durable block, keeping blocks sorted by start (async
// workers may complete out of order).
func (st *seriesState) insertBlock(meta blockMeta) {
	i := sort.Search(len(st.blocks), func(i int) bool { return st.blocks[i].start >= meta.start })
	st.blocks = append(st.blocks, blockMeta{})
	copy(st.blocks[i+1:], st.blocks[i:])
	st.blocks[i] = meta
}

// sliceBlockLocked slices the oldest BlockSize samples off the tail into a
// new pending block (buffer drawn from the DB's recycle pool) and registers
// it in the pending set. The caller holds the shard lock.
func (db *DB) sliceBlockLocked(st *seriesState) *pendingBlock {
	block := db.getBlockBuf()
	copy(block, st.tail)
	st.tail = append(st.tail[:0], st.tail[db.opt.BlockSize:]...)
	pb := &pendingBlock{start: st.assigned, raw: block, done: make(chan struct{})}
	st.assigned += len(block)
	st.pending[pb.start] = pb
	return pb
}

// cutBlockLocked is sliceBlockLocked plus a worker-pool reservation (so a
// racing Sync counts the block before the lock is released). The caller
// holds the shard lock and must submit the block to the pool after
// releasing it. Streaming cuts use sliceBlockLocked directly: the
// appenders themselves do the compression, and the seal reserves the pool
// only for the final persist step.
func (db *DB) cutBlockLocked(st *seriesState) *pendingBlock {
	pb := db.sliceBlockLocked(st)
	db.pool.reserve()
	return pb
}

// shardFor hashes a series name to its shard (inline FNV-1a: this sits on
// every Append/Query, and hash.Hash32 would allocate per call).
func (db *DB) shardFor(name string) *shard {
	h := uint32(2166136261)
	for i := 0; i < len(name); i++ {
		h ^= uint32(name[i])
		h *= 16777619
	}
	return db.shards[h%uint32(len(db.shards))]
}

// Append adds samples to a series. Completed blocks are cut from the tail
// and handed to the compression worker pool (or, with Workers < 0,
// compressed inline); the append itself only buffers and slices, so ingest
// latency is decoupled from CAMEO's compression cost. With
// Options.Streaming, the append additionally performs a latency-capped
// slice of the in-progress block's compression (see stream.go), replacing
// the block-cut cost spike with a bounded per-append contribution. After
// an async block compression fails, Append refuses further writes until a
// Flush repairs the failed block, so callers find out about the failure
// before it is buried under acknowledged-but-undurable data.
//
// Every Append records its wall time in the DB.Stats latency histogram.
func (db *DB) Append(name string, values ...float64) error {
	start := time.Now()
	err := db.appendSamples(name, values)
	db.appendLatency.ObserveDuration(time.Since(start))
	return err
}

func (db *DB) appendSamples(name string, values []float64) error {
	if err := validateSeriesName(name); err != nil {
		return err
	}
	if err := db.err(); err != nil {
		return fmt.Errorf("tsdb: a block compression failed (Flush retries it): %w", err)
	}
	sh := db.shardFor(name)
	sh.mu.Lock()
	st := sh.series[name]
	if st == nil {
		if err := os.MkdirAll(db.seriesDir(name), 0o755); err != nil {
			sh.mu.Unlock()
			return err
		}
		st = db.newSeriesState()
		sh.series[name] = st
	}
	st.tail = append(st.tail, values...)
	st.total += len(values)
	if st.stream != nil {
		// Streaming mode: cuts and compression happen in streamDrain, off
		// the shard lock, behind the per-series stream token. Skip the
		// drain when there is provably nothing to do.
		needDrain := st.stream.busy() ||
			(len(st.tail) >= db.opt.BlockSize && st.flushing == 0)
		sh.mu.Unlock()
		if needDrain {
			db.streamDrain(sh, name, st, len(values))
		}
		return nil
	}
	var cut []*pendingBlock
	for len(st.tail) >= db.opt.BlockSize {
		if db.pool != nil && st.flushing > 0 {
			// A Flush is stamping this series. Cutting now would add a
			// pending block mid-flush and make its wait-for-in-flight loop
			// chase a moving target (an unbounded wait under sustained
			// ingest), so defer the cut: the flush persists the whole tail
			// itself, and any remainder is cut by the next Append.
			break
		}
		if db.pool == nil {
			// Synchronous mode: compress and persist under the shard lock,
			// and only trim the tail once the block is durable — a write
			// error leaves the samples buffered, and a later Append or
			// Flush re-attempts the cut. (Callers must not re-send the
			// failed values; they are still in the tail.)
			meta, recon, err := db.buildBlock(name, st.assigned, st.tail[:db.opt.BlockSize])
			if err != nil {
				sh.mu.Unlock()
				return err
			}
			st.insertBlock(meta)
			st.assigned += meta.n
			st.tail = append(st.tail[:0], st.tail[db.opt.BlockSize:]...)
			sh.cache.put(meta.key(), recon)
			continue
		}
		cut = append(cut, db.cutBlockLocked(st))
	}
	sh.mu.Unlock()
	// Submit outside the lock: a full queue applies backpressure to this
	// appender without blocking the whole shard.
	for _, pb := range cut {
		db.pool.submit(compressJob{name: name, sh: sh, st: st, pb: pb})
	}
	return nil
}
