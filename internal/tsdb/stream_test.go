package tsdb

import (
	"errors"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/series"
)

func streamOptions() Options {
	return Options{
		Compression: core.Options{Lags: 24, Epsilon: 0.02},
		BlockSize:   512,
		Streaming:   true,
	}
}

// TestStreamingMatchesBatchStore feeds identical samples to a streaming
// store and a synchronous batch store and requires every read path to
// return bit-identical results: streaming compression is a deterministic
// time-slicing of the batch algorithm, so the stores must be
// indistinguishable to readers, before and after a reopen.
func TestStreamingMatchesBatchStore(t *testing.T) {
	xs := sensorData(3000, 11)
	batchDir, streamDir := t.TempDir(), t.TempDir()

	batchOpt := dbOptions()
	batchOpt.Workers = -1 // inline: fully deterministic reference
	batch, err := Open(batchDir, batchOpt)
	if err != nil {
		t.Fatal(err)
	}
	stream, err := Open(streamDir, streamOptions())
	if err != nil {
		t.Fatal(err)
	}

	// Varied chunk sizes so cuts land mid-append, on the boundary, and
	// multiple blocks deep in a single call.
	chunks := []int{1, 7, 64, 512, 1300}
	for i, ci := 0, 0; i < len(xs); ci++ {
		c := chunks[ci%len(chunks)]
		if i+c > len(xs) {
			c = len(xs) - i
		}
		for _, db := range []*DB{batch, stream} {
			if err := db.Append("s", xs[i:i+c]...); err != nil {
				t.Fatal(err)
			}
		}
		i += c
	}
	if err := stream.Sync(); err != nil {
		t.Fatal(err)
	}

	compareStores(t, batch, stream, len(xs))

	st := stream.Stats()
	if want := uint64(len(xs) / 512); st.StreamBlocks != want {
		t.Fatalf("StreamBlocks = %d, want %d", st.StreamBlocks, want)
	}
	if st.Appends == 0 || st.AppendMax == 0 {
		t.Fatalf("append latency histogram not recording: %+v", st)
	}
	if st.AppendP50 > st.AppendP99 || st.AppendP99 > st.AppendMax {
		t.Fatalf("latency percentiles out of order: %+v", st)
	}

	// Reopen both stores (Close flushes each tail into a final block):
	// streaming blocks are standard self-describing blocks, so recovery and
	// reads work unchanged and the stores stay bit-identical.
	if err := stream.Close(); err != nil {
		t.Fatal(err)
	}
	if err := batch.Close(); err != nil {
		t.Fatal(err)
	}
	stream, err = Open(streamDir, streamOptions())
	if err != nil {
		t.Fatal(err)
	}
	batch, err = Open(batchDir, batchOpt)
	if err != nil {
		t.Fatal(err)
	}
	compareStores(t, batch, stream, len(xs))
	if err := stream.Close(); err != nil {
		t.Fatal(err)
	}
	if err := batch.Close(); err != nil {
		t.Fatal(err)
	}
}

// compareStores checks the full read surface (Query, Cursor, QueryAgg) for
// bit-identity between two stores holding the same series.
func compareStores(t *testing.T, a, b *DB, n int) {
	t.Helper()
	ga, err := a.Query("s", 0, n)
	if err != nil {
		t.Fatal(err)
	}
	gb, err := b.Query("s", 0, n)
	if err != nil {
		t.Fatal(err)
	}
	if len(ga) != len(gb) {
		t.Fatalf("query lengths differ: %d vs %d", len(ga), len(gb))
	}
	for i := range ga {
		if ga[i] != gb[i] {
			t.Fatalf("sample %d differs: %v vs %v", i, ga[i], gb[i])
		}
	}
	// Cursor over an unaligned sub-range.
	ca, err := a.Cursor("s", 100, n-100)
	if err != nil {
		t.Fatal(err)
	}
	cb, err := b.Cursor("s", 100, n-100)
	if err != nil {
		t.Fatal(err)
	}
	flatten := func(c *Cursor) []float64 {
		var out []float64
		for {
			chunk, ok := c.Next()
			if !ok {
				break
			}
			out = append(out, chunk...)
		}
		if err := c.Err(); err != nil {
			t.Fatal(err)
		}
		return out
	}
	fa, fb := flatten(ca), flatten(cb)
	if len(fa) != len(fb) {
		t.Fatalf("cursor lengths differ: %d vs %d", len(fa), len(fb))
	}
	for i := range fa {
		if fa[i] != fb[i] {
			t.Fatalf("cursor sample %d differs: %v vs %v", i, fa[i], fb[i])
		}
	}
	// Windowed aggregates (exercises the pushdown on compressed blocks).
	wa, err := a.QueryAgg("s", 0, n, 100, series.AggMean)
	if err != nil {
		t.Fatal(err)
	}
	wb, err := b.QueryAgg("s", 0, n, 100, series.AggMean)
	if err != nil {
		t.Fatal(err)
	}
	for i := range wa {
		if wa[i] != wb[i] {
			t.Fatalf("window %d aggregate differs: %v vs %v", i, wa[i], wb[i])
		}
	}
}

// TestStreamingReaderForcesFinish arranges a freshly cut, barely started
// streaming block and queries into it: the reader must finish the block on
// its own goroutine instead of waiting for appends that never come.
func TestStreamingReaderForcesFinish(t *testing.T) {
	opt := streamOptions()
	opt.MaxAppendLatency = time.Nanosecond // paced slices do almost no work
	db, err := Open(t.TempDir(), opt)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	xs := sensorData(513, 12)
	if err := db.Append("s", xs...); err != nil {
		t.Fatal(err)
	}
	got, err := db.Query("s", 0, len(xs)) // overlaps the in-progress block
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(xs) {
		t.Fatalf("query returned %d samples, want %d", len(got), len(xs))
	}
	if f := db.Stats().StreamForced; f == 0 {
		t.Fatal("expected the reader to force-finish the streaming block")
	}
}

// TestStreamingKnobValidation covers the Options surface: streaming
// requires a stream-capable codec, and the latency cap must be sane.
func TestStreamingKnobValidation(t *testing.T) {
	_, err := Open(t.TempDir(), Options{Codec: codec.Gorilla{}, BlockSize: 64, Streaming: true})
	if err == nil || !strings.Contains(err.Error(), "streaming encode path") {
		t.Fatalf("expected stream-capability error, got %v", err)
	}
	opt := streamOptions()
	opt.MaxAppendLatency = -time.Second
	if _, err := Open(t.TempDir(), opt); err == nil {
		t.Fatal("expected error for negative MaxAppendLatency")
	}
	// Default cap is applied when streaming is on.
	opt = streamOptions()
	db, err := Open(t.TempDir(), opt)
	if err != nil {
		t.Fatal(err)
	}
	if got := db.opt.MaxAppendLatency; got != time.Millisecond {
		t.Fatalf("default MaxAppendLatency = %v, want 1ms", got)
	}
	db.Close()
}

// TestStreamingFlushUnderIngest checks Flush correctness with a streaming
// block in flight: the flush force-finishes it, everything appended before
// the flush is durable, and the store reads back bit-identical to a batch
// store flushed at the same point.
func TestStreamingFlushUnderIngest(t *testing.T) {
	opt := streamOptions()
	opt.MaxAppendLatency = time.Nanosecond
	dir := t.TempDir()
	db, err := Open(dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	batchOpt := dbOptions()
	batchOpt.Workers = -1
	batch, err := Open(t.TempDir(), batchOpt)
	if err != nil {
		t.Fatal(err)
	}
	defer batch.Close()
	xs := sensorData(700, 13)
	for _, d := range []*DB{db, batch} {
		if err := d.Append("s", xs...); err != nil {
			t.Fatal(err)
		}
		if err := d.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db, err = Open(dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	compareStores(t, batch, db, len(xs))
}

// TestStreamingIngestSoak hammers a streaming store with concurrent
// writers, readers, and lifecycle passes. Run under -race this is the
// CI soak for the streaming ingest path.
func TestStreamingIngestSoak(t *testing.T) {
	opt := streamOptions()
	opt.Shards = 4
	opt.MaxAppendLatency = 100 * time.Microsecond
	db, err := Open(t.TempDir(), opt)
	if err != nil {
		t.Fatal(err)
	}
	const (
		writers   = 4
		perWriter = 1600
	)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Readers: random ranges and window aggregates across all series.
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				name := []string{"w0", "w1", "w2", "w3"}[rng.Intn(writers)]
				lo := rng.Intn(perWriter)
				if _, err := db.Query(name, lo, lo+rng.Intn(600)); err != nil && !errors.Is(err, ErrUnknownSeries) {
					t.Error(err)
					return
				}
				if _, err := db.QueryAgg(name, 0, perWriter, 128, series.AggMax); err != nil && !errors.Is(err, ErrUnknownSeries) {
					t.Error(err)
					return
				}
			}
		}(int64(100 + r))
	}
	// A maintenance ticker racing the ingest.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			case <-time.After(5 * time.Millisecond):
				if err := db.Maintain(); err != nil {
					t.Error(err)
					return
				}
			}
		}
	}()
	var writeWG sync.WaitGroup
	for w := 0; w < writers; w++ {
		writeWG.Add(1)
		go func(w int) {
			defer writeWG.Done()
			name := []string{"w0", "w1", "w2", "w3"}[w]
			xs := sensorData(perWriter, int64(w))
			for i := 0; i < len(xs); i += 37 {
				end := min(i+37, len(xs))
				if err := db.Append(name, xs[i:end]...); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	writeWG.Wait()
	close(stop)
	wg.Wait()
	if err := db.Sync(); err != nil {
		t.Fatal(err)
	}
	// Every writer's data reads back at full length, and compressed blocks
	// carry the configured ACF bound (checked cheaply via sample count).
	for w := 0; w < writers; w++ {
		name := []string{"w0", "w1", "w2", "w3"}[w]
		got, err := db.Query(name, 0, perWriter)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != perWriter {
			t.Fatalf("%s: %d samples, want %d", name, len(got), perWriter)
		}
	}
	st := db.Stats()
	if st.StreamBlocks == 0 {
		t.Fatal("soak produced no streaming blocks")
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
}
