package tsdb

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/series"
)

// multiFixture fills three series of deliberately different shapes:
// several full blocks plus a tail, exactly one block, and tail-only.
func multiFixture(t *testing.T, db *DB, blockSize int) map[string]int {
	t.Helper()
	lens := map[string]int{
		"s0": 3*blockSize + 100,
		"s1": blockSize,
		"s2": 37,
	}
	seed := int64(1)
	for name, n := range lens {
		if err := db.Append(name, sensorData(n, seed)...); err != nil {
			t.Fatal(err)
		}
		seed++
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	return lens
}

// checkMultiMatchesQuery asserts that a QueryMulti over names (which may
// include unknown series and duplicates) equals per-series sequential
// Query calls, bit for bit, in request order.
func checkMultiMatchesQuery(t *testing.T, db *DB, names []string, from, to int) {
	t.Helper()
	res, err := db.QueryMulti(names, from, to)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != len(names) {
		t.Fatalf("got %d results for %d names", len(res), len(names))
	}
	for i, name := range names {
		r := res[i]
		if r.Name != name {
			t.Fatalf("result %d is %q, want %q (order must match the request)", i, r.Name, name)
		}
		want, werr := db.Query(name, from, to)
		if werr != nil {
			if r.Err == nil || !errors.Is(r.Err, ErrUnknownSeries) != !errors.Is(werr, ErrUnknownSeries) {
				t.Fatalf("%q: Err = %v, sequential Query errored %v", name, r.Err, werr)
			}
			continue
		}
		if r.Err != nil {
			t.Fatalf("%q: unexpected section error %v", name, r.Err)
		}
		if len(r.Values) != len(want) {
			t.Fatalf("%q: %d samples, want %d", name, len(r.Values), len(want))
		}
		for j := range want {
			if r.Values[j] != want[j] {
				t.Fatalf("%q: sample %d = %v, want %v", name, j, r.Values[j], want[j])
			}
		}
	}
}

// TestQueryMultiMatchesQueryAllCodecs is the fan-out differential: for
// every codec, warm and cold, a batch query — unknown series and
// duplicates included — must return exactly what per-series sequential
// Query calls return, in request order, with the unknown series failing
// only its own section.
func TestQueryMultiMatchesQueryAllCodecs(t *testing.T) {
	for cname, c := range cursorCodecs() {
		t.Run(cname, func(t *testing.T) {
			opt := dbOptions()
			opt.Codec = c
			dir := t.TempDir()
			db, err := Open(dir, opt)
			if err != nil {
				t.Fatal(err)
			}
			multiFixture(t, db, opt.BlockSize)
			names := []string{"s1", "nope", "s0", "s1", "s2"}
			check := func() {
				t.Helper()
				checkMultiMatchesQuery(t, db, names, 0, 1<<30)
				checkMultiMatchesQuery(t, db, names, 100, 2*opt.BlockSize+5)
			}
			check() // warm
			if err := db.Close(); err != nil {
				t.Fatal(err)
			}
			if db, err = Open(dir, opt); err != nil {
				t.Fatal(err)
			}
			defer db.Close()
			check() // cold

			res, err := db.QueryMulti(names, 0, 10)
			if err != nil {
				t.Fatal(err)
			}
			if !errors.Is(res[1].Err, ErrUnknownSeries) {
				t.Fatalf("unknown series Err = %v, want ErrUnknownSeries", res[1].Err)
			}
		})
	}
}

// TestQueryMultiRequestValidation pins the request-level failure modes:
// only an inverted range fails the whole call, and an empty name list is
// an empty (successful) response.
func TestQueryMultiRequestValidation(t *testing.T) {
	db, err := Open(t.TempDir(), dbOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if _, err := db.QueryMulti([]string{"s"}, 5, 2); !errors.Is(err, ErrInvalidRange) {
		t.Fatalf("inverted range: %v, want ErrInvalidRange", err)
	}
	res, err := db.QueryMulti(nil, 0, 10)
	if err != nil || len(res) != 0 {
		t.Fatalf("empty name list: %v, %d results", err, len(res))
	}
}

// TestQueryMultiPendingBlocks covers sections whose snapshots include
// still-compressing blocks: the constructor settles them on the caller's
// goroutine (a section pool job must never wait behind a queued
// compression job), in both batch and streaming ingest modes. Under
// streaming mode this is also the deadlock regression: sealing a stream
// persists via a queued pool job, so a section job waiting on a pending
// block would wedge the single-worker pool.
func TestQueryMultiPendingBlocks(t *testing.T) {
	for _, streaming := range []bool{false, true} {
		t.Run(fmt.Sprintf("streaming=%v", streaming), func(t *testing.T) {
			opt := dbOptions()
			opt.Streaming = streaming
			db, err := Open(t.TempDir(), opt)
			if err != nil {
				t.Fatal(err)
			}
			defer db.Close()
			names := []string{"p0", "p1", "p2"}
			for i, name := range names {
				n := 2*opt.BlockSize + 50*(i+1)
				if err := db.Append(name, sensorData(n, int64(10+i))...); err != nil {
					t.Fatal(err)
				}
			}
			// No Flush: block compression may still be queued or in flight.
			checkMultiMatchesQuery(t, db, names, 0, 1<<30)
		})
	}
}

// TestQueryMultiFanoutModes runs the same batch through every dispatch
// shape — single-lane fan-out, wide fan-out, and the poolless inline
// path — and demands identical answers, then checks the FanoutQueries
// counter ticks per batch call.
func TestQueryMultiFanoutModes(t *testing.T) {
	for _, tc := range []struct {
		name            string
		workers, fanout int
	}{
		{"fanout-1", 0, 1},
		{"fanout-wide", 0, 8},
		{"no-pool", -1, 0},
	} {
		t.Run(tc.name, func(t *testing.T) {
			opt := dbOptions()
			opt.Workers = tc.workers
			opt.QueryFanout = tc.fanout
			db, err := Open(t.TempDir(), opt)
			if err != nil {
				t.Fatal(err)
			}
			defer db.Close()
			multiFixture(t, db, opt.BlockSize)
			before := db.Stats().FanoutQueries
			checkMultiMatchesQuery(t, db, []string{"s0", "s1", "s2", "s0"}, 0, 1<<30)
			if got := db.Stats().FanoutQueries; got <= before {
				t.Fatalf("FanoutQueries = %d, want > %d", got, before)
			}
		})
	}
}

// TestMultiCursorSectionWalk exercises the streaming surface directly:
// section order and names, Start clamping, and skipping a section after
// reading only its first chunk.
func TestMultiCursorSectionWalk(t *testing.T) {
	opt := dbOptions()
	db, err := Open(t.TempDir(), opt)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	multiFixture(t, db, opt.BlockSize)
	names := []string{"s0", "s2", "s1"}
	m, err := db.MultiCursor(names, 10, 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	for i := 0; ; i++ {
		idx, ok := m.Section()
		if !ok {
			if i != len(names) {
				t.Fatalf("walked %d sections, want %d", i, len(names))
			}
			break
		}
		if idx != i || m.Series() != names[i] {
			t.Fatalf("section %d: idx %d series %q", i, idx, m.Series())
		}
		want, err := db.Query(names[i], 10, 1<<30)
		if err != nil {
			t.Fatal(err)
		}
		wantStart := 10
		if len(want) == 0 {
			// Series shorter than from: nothing to pin about Start.
			wantStart = m.Start()
		}
		if m.Start() != wantStart {
			t.Fatalf("section %q Start = %d, want %d", names[i], m.Start(), wantStart)
		}
		// Read just the first chunk, verify it prefixes the sequential
		// answer, then abandon the rest of the section.
		chunk, ok := m.Next()
		if ok {
			if len(chunk) > len(want) {
				t.Fatalf("section %q: chunk longer than full result", names[i])
			}
			for j := range chunk {
				if chunk[j] != want[j] {
					t.Fatalf("section %q: chunk sample %d = %v, want %v", names[i], j, chunk[j], want[j])
				}
			}
		} else if m.Err() != nil {
			t.Fatalf("section %q: %v", names[i], m.Err())
		}
	}
}

// TestMultiCursorCloseReturnsBuffers is the fan-out half of the
// pool-leak regression: abandoning a MultiCursor at any point of the
// walk — before any Section, mid-section, after skipping sections —
// must return every pooled chunk copy, and Close must be idempotent.
func TestMultiCursorCloseReturnsBuffers(t *testing.T) {
	opt := dbOptions()
	opt.CacheBlocks = -1
	db, err := Open(t.TempDir(), opt)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	multiFixture(t, db, opt.BlockSize)
	names := []string{"s0", "s1", "s2", "s0"}
	db.pool.drain()
	base := db.blockBufBalance()
	balanced := func(label string) {
		t.Helper()
		db.pool.drain()
		if got := db.blockBufBalance(); got != base {
			t.Fatalf("%s: pooled-buffer balance %d, want %d", label, got, base)
		}
	}

	m, err := db.MultiCursor(names, 0, 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	m.Close() // never walked: section jobs already launched must unwind
	m.Close() // idempotent
	balanced("unwalked")

	m, err = db.MultiCursor(names, 0, 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	m.Section()
	m.Next() // hold one pooled chunk...
	m.Close()
	balanced("mid-section")

	m, err = db.MultiCursor(names, 0, 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, ok := m.Section(); !ok {
			break
		}
		// Skip every section without reading it.
	}
	m.Close()
	balanced("skipped-through")

	// Fully consumed for completeness.
	if _, err := db.QueryMulti(names, 0, 1<<30); err != nil {
		t.Fatal(err)
	}
	balanced("consumed")
}

// TestQueryAggMultiMatchesQueryAgg checks the batch aggregate against
// per-series QueryAgg — including over a store with a materialized
// rollup tier, where QueryAgg serves aligned windows from the tier —
// plus the unknown-series section error and request-level validation.
func TestQueryAggMultiMatchesQueryAgg(t *testing.T) {
	opt := dbOptions()
	opt.Rollups = []RollupSpec{{Step: 8}}
	db, err := Open(t.TempDir(), opt)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	total := 4 * opt.BlockSize
	for _, name := range []string{"a0", "a1"} {
		if err := db.Append(name, sensorData(total, 21)...); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := db.Maintain(); err != nil { // materialize the rollup tier
		t.Fatal(err)
	}
	names := []string{"a0", "nope", "a1", "a0"}
	for _, step := range []int{8, 64, 37} { // tier-aligned and not
		res, err := db.QueryAggMulti(names, 0, total, step, series.AggMean)
		if err != nil {
			t.Fatal(err)
		}
		for i, name := range names {
			r := res[i]
			if r.Name != name || r.Start != 0 {
				t.Fatalf("step %d result %d: name %q start %d", step, i, r.Name, r.Start)
			}
			if name == "nope" {
				if !errors.Is(r.Err, ErrUnknownSeries) {
					t.Fatalf("unknown series Err = %v", r.Err)
				}
				continue
			}
			want, err := db.QueryAgg(name, 0, total, step, series.AggMean)
			if err != nil {
				t.Fatal(err)
			}
			if len(r.Values) != len(want) {
				t.Fatalf("step %d %q: %d windows, want %d", step, name, len(r.Values), len(want))
			}
			for j := range want {
				if r.Values[j] != want[j] {
					t.Fatalf("step %d %q: window %d = %v, want %v", step, name, j, r.Values[j], want[j])
				}
			}
		}
	}

	if _, err := db.QueryAggMulti(names, 9, 3, 8, series.AggMean); !errors.Is(err, ErrInvalidRange) {
		t.Fatalf("inverted range: %v", err)
	}
	if _, err := db.QueryAggMulti(names, 0, total, 0, series.AggMean); err == nil {
		t.Fatal("step 0 accepted")
	}
	if _, err := db.QueryAggMulti(names, 0, total, 8, AggFunc(42)); err == nil {
		t.Fatal("bogus aggregate function accepted")
	}
}
