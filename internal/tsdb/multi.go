package tsdb

import (
	"fmt"
	"sync"
	"time"
)

// MultiResult is one series' section of a QueryMulti (or QueryAggMulti)
// response. Per-series failures — an unknown series, a block that no
// longer decodes — land in Err rather than failing the whole batch, so a
// dashboard fanning over 50 series renders the 49 that resolved.
type MultiResult struct {
	Name   string
	Start  int // absolute index of Values[0] (clamped from); 0 for aggregates
	Values []float64
	Err    error
}

// multiChunk is one unit flowing from a section job to the gatherer:
// either a pooled copy of a cursor chunk or the section's terminal error.
type multiChunk struct {
	vals []float64
	err  error
}

// multiSection is one series' lane in a MultiCursor. A launched section
// streams pooled chunk copies through ch (capacity 2, so server-side
// state stays O(chunk · fanout)); skip tells its job the consumer moved
// on. Sections that never got a pool slot (saturated queue, or no pool
// at all) resolve lazily through cur on the gatherer's goroutine instead.
type multiSection struct {
	name string
	snap *rangeSnapshot
	err  error // construction error: unknown series, pending-block failure

	ch   chan multiChunk // non-nil only while a pool job feeds the section
	skip chan struct{}

	cur *Cursor // inline fallback, opened on first Next
}

// MultiCursor streams a multi-series scatter-gather query section by
// section in the caller's series order: per-series scans run as worker
// pool jobs up to the fan-out cap, while the caller walks Section /
// Next like a flattened cursor. Chunks are valid only until the next
// Next, Section, or Close call. A MultiCursor is not safe for concurrent
// use; Close releases every pooled buffer and stops outstanding section
// jobs no matter how far the caller got.
type MultiCursor struct {
	db       *DB
	sections []*multiSection
	sec      int // current section; -1 before the first Section call
	launched int // sections whose job launch was attempted
	fanout   int // concurrent section cap; 0 = inline mode (no pool)
	held     []float64
	secErr   error
	closed   bool
}

// MultiCursor opens a scatter-gather read of [from, to) over several
// series. Snapshots are taken series by series on this goroutine — each
// section observes its series as of this call — and any still-compressing
// blocks are settled here too, because a pool job must never wait on a
// block whose compression may be queued behind it. Per-series failures
// surface through Err on that section; only an inverted range fails the
// call. Series appear exactly in the given order, duplicates included.
func (db *DB) MultiCursor(names []string, from, to int) (*MultiCursor, error) {
	if from > to {
		return nil, fmt.Errorf("%w: from %d > to %d", ErrInvalidRange, from, to)
	}
	db.fanoutQueries.Add(1)
	m := &MultiCursor{db: db, sec: -1}
	if db.pool != nil {
		m.fanout = db.effectiveFanout()
	}
	for _, name := range names {
		s := &multiSection{name: name}
		snap, err := db.snapshotRange(name, from, to)
		if err != nil {
			s.err = err
			m.sections = append(m.sections, s)
			continue
		}
		for i := range snap.segs {
			seg := &snap.segs[i]
			if seg.pending == nil {
				continue
			}
			dense, derr := db.pendingDense(snap, *seg)
			if derr != nil {
				s.err = derr
				break
			}
			seg.dense = dense
			seg.pending = nil
		}
		s.snap = snap
		m.sections = append(m.sections, s)
	}
	for m.launched < len(m.sections) && m.launched < m.fanout {
		m.launchSection(m.launched)
		m.launched++
	}
	return m, nil
}

// effectiveFanout is the per-call concurrency cap of the multi-series
// read path: QueryFanout, defaulting to the worker-pool width, never
// below 1.
func (db *DB) effectiveFanout() int {
	f := db.opt.QueryFanout
	if f == 0 {
		f = db.opt.Workers
	}
	return max(f, 1)
}

// launchSection submits one section's scan to the worker pool. The
// submit is non-blocking: with the gatherer goroutine also being the
// consumer of already-running sections, blocking here while workers wait
// on consumer-paced channel sends would deadlock — so under a saturated
// queue the section simply resolves inline when the consumer reaches it.
func (m *MultiCursor) launchSection(i int) {
	if m.fanout == 0 { // inline mode: no pool to scatter onto
		return
	}
	s := m.sections[i]
	if s.err != nil {
		return
	}
	db := m.db
	ch := make(chan multiChunk, 2)
	skip := make(chan struct{})
	db.pool.reserve()
	if !db.pool.trySubmit(compressJob{fn: func() { db.runSectionJob(s.snap, ch, skip) }}) {
		db.pool.jobDone()
		return
	}
	s.ch, s.skip = ch, skip
}

// runSectionJob scans one pre-settled snapshot sequentially and streams
// pooled copies of its chunks. Chunks are copied because the section
// cursor reuses its decode buffer across Next calls while the gatherer
// consumes asynchronously. The job holds no locks while blocked on the
// send; skip unblocks it when the consumer abandons the section. A
// terminal resolution error is sent as the final chunk.
func (db *DB) runSectionJob(snap *rangeSnapshot, ch chan multiChunk, skip chan struct{}) {
	defer close(ch)
	cur := &Cursor{db: db, snap: snap, opened: time.Now()}
	defer cur.Close()
	for {
		chunk, ok := cur.Next()
		if !ok {
			break
		}
		buf := append(db.getBlockBuf()[:0], chunk...)
		select {
		case ch <- multiChunk{vals: buf}:
		case <-skip:
			db.putBlockBuf(buf)
			return
		}
	}
	if err := cur.Err(); err != nil {
		select {
		case ch <- multiChunk{err: err}:
		case <-skip:
		}
	}
}

// Section advances to the next series' section, discarding whatever
// remains of the current one, and reports its index (the position in the
// request's name list). It returns false when every section has been
// visited. Advancing also tops the launch window up so at most fanout
// section jobs are in flight.
func (m *MultiCursor) Section() (int, bool) {
	if m.closed {
		return 0, false
	}
	if m.sec >= 0 && m.sec < len(m.sections) {
		m.finishSection(m.sections[m.sec])
	}
	m.releaseHeld()
	m.secErr = nil
	m.sec++
	if m.sec >= len(m.sections) {
		return 0, false
	}
	for m.launched < len(m.sections) && m.launched < m.sec+m.fanout {
		m.launchSection(m.launched)
		m.launched++
	}
	s := m.sections[m.sec]
	if s.err != nil {
		m.secErr = s.err
	}
	return m.sec, true
}

// Series returns the current section's series name.
func (m *MultiCursor) Series() string {
	return m.sections[m.sec].name
}

// Start returns the absolute index of the current section's first sample
// (the requested from, clamped to the series' retained range).
func (m *MultiCursor) Start() int {
	if s := m.sections[m.sec]; s.snap != nil {
		return s.snap.from
	}
	return 0
}

// Next returns the current section's next chunk, or (nil, false) when
// the section is exhausted or failed (check Err before moving on).
func (m *MultiCursor) Next() ([]float64, bool) {
	if m.closed || m.sec < 0 || m.sec >= len(m.sections) || m.secErr != nil {
		return nil, false
	}
	m.releaseHeld()
	s := m.sections[m.sec]
	if s.ch != nil {
		c, ok := <-s.ch
		if !ok {
			return nil, false
		}
		if c.err != nil {
			m.secErr = c.err
			return nil, false
		}
		m.held = c.vals
		return c.vals, true
	}
	if s.cur == nil {
		s.cur = &Cursor{db: m.db, snap: s.snap, opened: time.Now()}
	}
	chunk, ok := s.cur.Next()
	if !ok {
		m.secErr = s.cur.Err()
		return nil, false
	}
	return chunk, true
}

// Err returns the current section's terminal error, if any.
func (m *MultiCursor) Err() error { return m.secErr }

// Close releases every pooled buffer and winds down outstanding section
// jobs (each is told to stop, then drained so its in-flight buffers come
// back). Idempotent; safe at any point in the Section/Next walk.
func (m *MultiCursor) Close() {
	if m.closed {
		return
	}
	m.closed = true
	m.releaseHeld()
	for _, s := range m.sections {
		m.finishSection(s)
	}
}

// finishSection winds down one section: the inline cursor is closed, a
// still-running job is told to skip and its channel drained with every
// pooled chunk returned. Safe to call on unlaunched or already-finished
// sections.
func (m *MultiCursor) finishSection(s *multiSection) {
	if s.cur != nil {
		s.cur.Close()
		s.cur = nil
	}
	if s.ch == nil {
		return
	}
	close(s.skip)
	for c := range s.ch {
		if c.vals != nil {
			m.db.putBlockBuf(c.vals)
		}
	}
	s.ch, s.skip = nil, nil
}

func (m *MultiCursor) releaseHeld() {
	if m.held != nil {
		m.db.putBlockBuf(m.held)
		m.held = nil
	}
}

// QueryMulti answers one query over several series at once, scattering
// the per-series scans across the worker pool (up to Options.QueryFanout
// at a time) and gathering the materialized results in the caller's
// series order. Per-series failures land in the matching result's Err;
// the call itself fails only on an inverted range.
func (db *DB) QueryMulti(names []string, from, to int) ([]MultiResult, error) {
	m, err := db.MultiCursor(names, from, to)
	if err != nil {
		return nil, err
	}
	defer m.Close()
	out := make([]MultiResult, 0, len(names))
	for {
		if _, ok := m.Section(); !ok {
			break
		}
		r := MultiResult{Name: m.Series(), Start: m.Start()}
		for {
			chunk, ok := m.Next()
			if !ok {
				break
			}
			r.Values = append(r.Values, chunk...)
		}
		r.Err = m.Err()
		out = append(out, r)
	}
	return out, nil
}

// QueryAggMulti answers one window-aggregate query over several series
// at once, with at most Options.QueryFanout per-series QueryAgg calls in
// flight. The scans run on plain goroutines rather than pool jobs
// deliberately: QueryAgg may wait on a still-compressing block (raw or
// rollup tier) whose compression job is queued on the pool, and a pool
// worker waiting for queue progress is a self-deadlock. Results are in
// the caller's series order with Start always 0; per-series failures
// land in Err, and only invalid request parameters fail the call.
func (db *DB) QueryAggMulti(names []string, from, to, step int, f AggFunc) ([]MultiResult, error) {
	if from > to {
		return nil, fmt.Errorf("%w: from %d > to %d", ErrInvalidRange, from, to)
	}
	if err := validateAgg(step, f); err != nil {
		return nil, err
	}
	db.fanoutQueries.Add(1)
	out := make([]MultiResult, len(names))
	sem := make(chan struct{}, db.effectiveFanout())
	var wg sync.WaitGroup
	for i, name := range names {
		out[i].Name = name
		wg.Add(1)
		go func(i int, name string) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			out[i].Values, out[i].Err = db.QueryAgg(name, from, to, step, f)
		}(i, name)
	}
	wg.Wait()
	return out, nil
}
