package tsdb

import (
	"fmt"
	"slices"
	"sort"
	"sync/atomic"
	"time"

	"repro/internal/codec"
	"repro/internal/series"
)

// AggFunc identifies a window aggregation function for QueryAgg (the same
// enum the CAMEO on-aggregates mode uses: mean, sum, max, min).
type AggFunc = series.AggFunc

// cursorSeg is one snapshotted block overlapping a query range: durable
// (meta only), still compressing (pending non-nil), or already resolved
// to its dense reconstruction (dense non-nil — the multi-series path
// settles pending blocks up front on the caller's goroutine, because a
// worker-pool job must never wait on a block whose compression may be
// queued behind it).
type cursorSeg struct {
	meta    blockMeta
	pending *pendingBlock
	dense   []float64 // full reconstruction covering [start, start+n), when pre-resolved
}

// rangeSnapshot is the point-in-time view of a series that a Cursor (or
// QueryAgg) resolves lazily: the overlapping durable and pending blocks,
// merged in start order, plus a copy of the overlapping tail samples.
// Taking it holds the shard read lock only long enough to slice the
// already-sorted durable index (binary search for the first overlap),
// gather the few pending blocks, and copy the tail overlap — and the tail
// is not touched at all when the range ends before it.
type rangeSnapshot struct {
	name      string
	sh        *shard
	from, to  int // clamped to [0, total]
	segs      []cursorSeg
	tail      []float64 // copy of the overlapping tail samples (nil if unreached)
	tailStart int       // absolute index of tail[0]

	// cold is raised when any segment of this snapshot is resolved off the
	// compressed file rather than the decoded cache — the bit that routes
	// the query's wall time into the cold or warm latency histogram.
	// Atomic because prefetch jobs resolve segments on pool workers
	// concurrently with the cursor's own goroutine.
	cold atomic.Bool
}

// snapshotRange captures the segments of [from, to) under the shard read
// lock. from/to are clamped; an unknown series or an inverted range
// errors.
func (db *DB) snapshotRange(name string, from, to int) (*rangeSnapshot, error) {
	if from > to {
		return nil, fmt.Errorf("%w: from %d > to %d", ErrInvalidRange, from, to)
	}
	sh := db.shardFor(name)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	st := sh.series[name]
	if st == nil {
		return nil, fmt.Errorf("%w: %q", ErrUnknownSeries, name)
	}
	if from < st.base {
		// Samples below the retention base are gone; the query starts at
		// the first retained sample.
		from = st.base
	}
	if to > st.total {
		to = st.total
	}
	if to < from {
		to = from
	}
	snap := &rangeSnapshot{name: name, sh: sh, from: from, to: to}
	if from >= to {
		return snap, nil
	}
	// The durable index is kept sorted by insertBlock, so the overlapping
	// run is a binary search plus a contiguous slice — no per-query sort.
	i := sort.Search(len(st.blocks), func(i int) bool { return st.blocks[i].start+st.blocks[i].n > from })
	for ; i < len(st.blocks) && st.blocks[i].start < to; i++ {
		snap.segs = append(snap.segs, cursorSeg{meta: st.blocks[i]})
	}
	// Pending blocks are the few cut-but-not-yet-durable ones; sort only
	// those and merge them into the durable run.
	var pend []cursorSeg
	for _, pb := range st.pending {
		if pb.start+len(pb.raw) > from && pb.start < to {
			pend = append(pend, cursorSeg{meta: blockMeta{start: pb.start, n: len(pb.raw)}, pending: pb})
		}
	}
	if len(pend) > 0 {
		slices.SortFunc(pend, func(a, b cursorSeg) int { return a.meta.start - b.meta.start })
		snap.segs = mergeSegs(snap.segs, pend)
	}
	// Copy the tail overlap only when the range actually reaches the tail.
	if tailStart := st.total - len(st.tail); to > tailStart {
		lo := max(from, tailStart)
		snap.tailStart = lo
		snap.tail = append([]float64(nil), st.tail[lo-tailStart:to-tailStart]...)
	}
	return snap, nil
}

// mergeSegs merges two start-sorted segment runs.
func mergeSegs(a, b []cursorSeg) []cursorSeg {
	out := make([]cursorSeg, 0, len(a)+len(b))
	for len(a) > 0 && len(b) > 0 {
		if a[0].meta.start <= b[0].meta.start {
			out, a = append(out, a[0]), a[1:]
		} else {
			out, b = append(out, b[0]), b[1:]
		}
	}
	return append(append(out, a...), b...)
}

// Cursor streams the reconstruction of one query range chunk by chunk
// instead of materializing it: each Next yields the overlap with one block
// (so chunks are at most about BlockSize samples), resolved only when
// reached — cache-resident blocks are served as sub-slices without
// copying, cold blocks of a range-decoding codec decode only the
// overlapping samples into a pooled buffer, and blocks still being
// compressed are waited for per-chunk rather than up front.
//
// The returned chunk is read-only and valid only until the next Next or
// Close call (it may alias the shared decoded-block cache or the cursor's
// reused decode buffer); callers that retain samples must copy them out.
// A Cursor is not safe for concurrent use. Close releases the pooled
// buffer; Err reports the first resolution error after Next returns false.
type Cursor struct {
	db       *DB
	snap     *rangeSnapshot
	opened   time.Time // set at open; Close observes open→Close wall time
	idx      int       // next segment to resolve
	tailDone bool
	buf      []float64 // pooled scratch for cold range decodes
	err      error
	closed   bool

	// Prefetch pipeline (active when ra > 0 and the DB has a worker
	// pool): while the caller consumes chunk i, up to ra upcoming durable
	// segments resolve as pool jobs into their own pooled buffers.
	ra   int                  // readahead depth; 0 disables prefetch
	jobs map[int]*prefetchJob // outstanding jobs keyed by segment index
	held []float64            // consumed job's pooled buffer; the returned
	// chunk may alias it, so it is released only on the next Next or Close
}

// Cursor opens a streaming read over samples [from, to) of a series
// (bounds clamped like Query). The snapshot is taken immediately — the
// cursor observes the series as of this call — but block resolution is
// deferred to Next. When Options.ReadAhead is set and the DB has a worker
// pool, upcoming cold segments are prefetched on the pool while the
// caller consumes earlier chunks; the yielded stream is bit-identical to
// the prefetch-off path.
func (db *DB) Cursor(name string, from, to int) (*Cursor, error) {
	return db.cursorWithReadAhead(name, from, to, db.opt.ReadAhead)
}

// cursorWithReadAhead opens a cursor with an explicit readahead depth,
// letting tests pit prefetch-on and prefetch-off streams against each
// other on the same DB regardless of what Options.ReadAhead says.
func (db *DB) cursorWithReadAhead(name string, from, to, ra int) (*Cursor, error) {
	snap, err := db.snapshotRange(name, from, to)
	if err != nil {
		return nil, err
	}
	c := &Cursor{db: db, snap: snap, opened: time.Now()}
	if ra > 0 && db.pool != nil {
		c.ra = ra
		c.jobs = make(map[int]*prefetchJob, ra)
	}
	return c, nil
}

// Next returns the next chunk of the reconstruction, or (nil, false) when
// the range is exhausted, the cursor is closed, or an error occurred
// (check Err).
func (c *Cursor) Next() ([]float64, bool) {
	if c.closed || c.err != nil {
		return nil, false
	}
	c.releaseHeld()
	for c.idx < len(c.snap.segs) {
		i := c.idx
		s := c.snap.segs[i]
		c.idx++
		if c.ra > 0 {
			c.schedulePrefetch()
		}
		lo := max(c.snap.from, s.meta.start)
		hi := min(c.snap.to, s.meta.start+s.meta.n)
		var chunk []float64
		var err error
		if j, ok := c.jobs[i]; ok {
			delete(c.jobs, i)
			chunk, err = c.consumePrefetch(j, s, lo, hi)
		} else {
			chunk, err = c.db.segmentRange(c.snap, s, lo, hi, &c.buf)
		}
		if err != nil {
			c.err = err
			return nil, false
		}
		if len(chunk) > 0 {
			return chunk, true
		}
		c.releaseHeld()
	}
	if !c.tailDone {
		c.tailDone = true
		if len(c.snap.tail) > 0 {
			return c.snap.tail, true
		}
	}
	return nil, false
}

// Err returns the first error encountered while resolving chunks.
func (c *Cursor) Err() error { return c.err }

// Start returns the absolute index of the first sample the cursor yields
// (the requested from, clamped to the series' retained range).
func (c *Cursor) Start() int { return c.snap.from }

// Close releases the cursor's pooled buffers and cancels any outstanding
// prefetch jobs (still-queued jobs are abandoned before they allocate;
// running jobs are waited for and their buffers reclaimed), so every
// pooled buffer is returned no matter how the cursor ended — exhausted,
// errored mid-stream, or abandoned early. Close is idempotent. The cursor
// yields no further chunks; previously returned chunks must not be used
// afterwards. Close also records the open→Close wall time into the
// cold/warm query-latency histogram — the cursor is the read primitive
// every query path (Query, QueryInto, the HTTP streaming handlers,
// MultiCursor sections) drains, so observing here covers them all once.
func (c *Cursor) Close() {
	if c.closed {
		return
	}
	c.closed = true
	if !c.opened.IsZero() {
		c.db.observeQuery(c.opened, c.snap.cold.Load())
	}
	c.releaseHeld()
	if c.buf != nil {
		c.db.putBlockBuf(c.buf)
		c.buf = nil
	}
	c.cancelPrefetch()
}

// segmentRange resolves samples [lo, hi) (absolute indices) of one
// snapshotted segment. A durable block that went stale between snapshot
// and read (compaction replaced or superseded its file) is retried once
// against the live index: the merged replacement reconstructs the old
// span bit-identically, so the retry serves exactly the same samples.
func (db *DB) segmentRange(snap *rangeSnapshot, s cursorSeg, lo, hi int, buf *[]float64) ([]float64, error) {
	if s.dense != nil {
		return s.dense[lo-s.meta.start : hi-s.meta.start], nil
	}
	if s.pending != nil {
		dense, err := db.pendingDense(snap, s)
		if err != nil {
			return nil, err
		}
		return dense[lo-s.meta.start : hi-s.meta.start], nil
	}
	chunk, err := db.blockRange(snap, s.meta, lo-s.meta.start, hi-s.meta.start, buf)
	if isStaleBlock(err) {
		// The usual case: the swap already published the merged meta.
		if meta, ok := db.currentBlockFor(snap.sh, snap.name, lo); ok && meta.gen != s.meta.gen && meta.start <= lo && meta.start+meta.n >= hi {
			return db.blockRange(snap, meta, lo-meta.start, hi-meta.start, buf)
		}
		// Rename-before-swap window: the file already holds the merged
		// block but the index still points at the old meta. The file is
		// self-describing and the merge starts at the old block's start,
		// so serve straight from what is on disk.
		if chunk, rerr := db.readReplacedBlock(s.meta, lo, hi); rerr == nil {
			snap.cold.Store(true)
			return chunk, nil
		}
	}
	return chunk, err
}

// readReplacedBlock reads a block file that compaction republished before
// the index swap became visible: the file at the old meta's path is a
// valid merged block starting at the same sample index, bit-identical to
// the old blocks over their span. The result is decoded fresh and not
// cached (the replacement's cache generation is unknown here; the next
// index-resolved read caches it).
func (db *DB) readReplacedBlock(old blockMeta, lo, hi int) ([]float64, error) {
	data, release, err := db.readFilePooled(old.path)
	if err != nil {
		return nil, err
	}
	defer release()
	hdr, _, payload, err := codec.SplitBlock(data)
	if err != nil {
		return nil, err
	}
	if hi > old.start+hdr.N {
		return nil, fmt.Errorf("tsdb: replaced block %s covers %d samples, need %d", old.path, hdr.N, hi-old.start)
	}
	c, err := codec.ByID(hdr.CodecID)
	if err != nil {
		return nil, err
	}
	dense, err := c.Decode(payload, hdr.N)
	if err != nil {
		return nil, err
	}
	return dense[lo-old.start : hi-old.start], nil
}

// pendingDense waits for one in-flight block and returns its
// reconstruction, re-resolving against the durable index when the async
// compression failed but a concurrent Flush has since repaired it.
func (db *DB) pendingDense(snap *rangeSnapshot, s cursorSeg) ([]float64, error) {
	sh, name := snap.sh, snap.name
	if db.opt.Streaming {
		// A streaming block completes at arrival pace; a reader must not
		// wait on future appends, so finish it on this goroutine.
		sh.mu.RLock()
		st := sh.series[name]
		sh.mu.RUnlock()
		if st != nil {
			db.forceFinishStream(sh, name, st)
		}
	}
	<-s.pending.done
	if s.pending.err == nil {
		return s.pending.recon, nil
	}
	if meta, repaired := db.durableBlockAt(sh, name, s.meta.start); repaired {
		// A Flush repaired the failed block after our snapshot; the data is
		// durable, so serve it instead of the stale error.
		return db.readBlock(sh.cache, meta, &snap.cold)
	}
	return nil, fmt.Errorf("tsdb: block at %d: %w", s.meta.start, s.pending.err)
}

// blockRange returns samples [lo, hi) (block-relative) of a durable block.
// Cache-resident blocks are served as sub-slices without copying. A cold
// block whose overlap is partial and whose codec decodes ranges natively
// is range-decoded into the caller's pooled buffer and deliberately NOT
// cached (a partial reconstruction must never stand in for the block).
// Bit-stream blocks carrying a checkpoint sidecar take the analogous
// checkpointed path: seek to the last checkpoint at or below lo, replay
// at most CheckpointInterval extra samples, and decode only the overlap.
// Everything else — full overlaps, and sidecar-less bit-stream blocks —
// takes the full decode-and-cache path.
func (db *DB) blockRange(snap *rangeSnapshot, meta blockMeta, lo, hi int, buf *[]float64) ([]float64, error) {
	sh := snap.sh
	if hi-lo < meta.n {
		if dense, ok := sh.cache.get(meta.key()); ok {
			return dense[lo:hi], nil
		}
		c, err := db.codecFor(meta)
		if err != nil {
			return nil, fmt.Errorf("tsdb: block %s: %w", meta.path, err)
		}
		rd, native := c.(codec.RangeDecoder)
		cd, ckpt := c.(codec.CheckpointDecoder)
		if native || ckpt {
			payload, sidecar, release, err := db.openBlockPayload(meta)
			if err != nil {
				return nil, err
			}
			defer release()
			if *buf == nil {
				*buf = db.getBlockBuf()
			}
			snap.cold.Store(true)
			start := time.Now()
			var out []float64
			switch {
			case native:
				out, err = rd.DecodeRange(payload, meta.n, lo, hi, (*buf)[:0])
			case len(sidecar) > 0:
				var bits int
				out, bits, err = cd.DecodeRangeCheckpointed(payload, sidecar, meta.n, lo, hi, (*buf)[:0])
				if err == nil {
					db.noteCheckpointSeek(bits)
				}
			default:
				// A version-1 block without a sidecar: a partial decode would
				// replay from the front every time, so decode once and cache.
				dense, err := db.readBlock(sh.cache, meta, &snap.cold)
				if err != nil {
					return nil, err
				}
				return dense[lo:hi], nil
			}
			if err != nil {
				return nil, fmt.Errorf("tsdb: block %s: %w", meta.path, err)
			}
			db.observeDecode(meta.codecID, start)
			*buf = out
			db.rangeDecodes.Add(1)
			return out, nil
		}
	}
	dense, err := db.readBlock(sh.cache, meta, &snap.cold)
	if err != nil {
		return nil, err
	}
	return dense[lo:hi], nil
}

// QueryInto appends the reconstruction of samples [from, to) to dst and
// returns the extended slice, letting callers amortize the result
// allocation across queries. dst may be nil; the result is exactly what
// Query returns.
func (db *DB) QueryInto(name string, from, to int, dst []float64) ([]float64, error) {
	cur, err := db.Cursor(name, from, to)
	if err != nil {
		return nil, err
	}
	defer cur.Close() // observes the query-latency histogram
	if total := cur.snap.to - cur.snap.from; dst == nil && total > 0 {
		dst = make([]float64, 0, total)
	}
	for {
		chunk, ok := cur.Next()
		if !ok {
			break
		}
		dst = append(dst, chunk...)
	}
	if err := cur.Err(); err != nil {
		return nil, err
	}
	return dst, nil
}

// QueryAgg answers a downsampled aggregate query: samples [from, to) are
// cut into consecutive windows of step samples (the last window may be
// partial) and f is evaluated over each, yielding one value per window —
// the shape a dashboard asks for. For cold durable blocks whose codec
// implements codec.AggDecoder (the segment codecs and CAMEO), the
// aggregates are computed straight from the compressed segment forms
// without materializing any samples; cold bit-stream blocks with a
// checkpoint sidecar (codec.CheckpointDecoder) likewise fold their
// windows in one seek-assisted pass over the compressed stream. Other
// blocks — cache-resident, in-flight, or sidecar-less bit-stream — fall
// back to the cursor's chunk resolution and are folded densely.
func (db *DB) QueryAgg(name string, from, to, step int, f AggFunc) ([]float64, error) {
	if err := validateAgg(step, f); err != nil {
		return nil, err
	}
	if out, ok, err := db.rollupAgg(name, from, to, step, f); ok || err != nil {
		// The rollup path re-enters QueryAgg on the tier series, which
		// observes its own latency; don't double-count the wrapper.
		return out, err
	}
	start := time.Now()
	accs, _, cold, err := db.windowAggs(name, from, to, step)
	db.observeQuery(start, cold)
	if err != nil || accs == nil {
		return nil, err
	}
	out := make([]float64, len(accs))
	for i, a := range accs {
		out[i] = a.Eval(f)
	}
	return out, nil
}

// validateAgg checks the request-level QueryAgg parameters shared by the
// single- and multi-series forms.
func validateAgg(step int, f AggFunc) error {
	if step < 1 {
		return fmt.Errorf("tsdb: QueryAgg step must be at least 1, got %d", step)
	}
	switch f {
	case series.AggMean, series.AggSum, series.AggMax, series.AggMin:
		return nil
	default:
		return fmt.Errorf("tsdb: unsupported aggregate function %v", f)
	}
}

// windowAggs computes the per-window accumulators of QueryAgg: samples
// [from, to) cut into step-sized windows anchored at the clamped from
// (also returned). A nil accumulator slice means the clamped range was
// empty. The cold result reports whether any block was resolved off disk
// (routing the caller's latency observation). Both QueryAgg and rollup
// materialization build on it — one accumulator pass serves every
// aggregate function at once.
func (db *DB) windowAggs(name string, from, to, step int) (accs []codec.RangeAgg, clampedFrom int, cold bool, err error) {
	snap, err := db.snapshotRange(name, from, to)
	if err != nil {
		return nil, 0, false, err
	}
	from, to = snap.from, snap.to
	if from >= to {
		return nil, from, false, nil
	}
	nw := (to - from + step - 1) / step
	accs = make([]codec.RangeAgg, nw)
	for i := range accs {
		accs[i] = codec.NewRangeAgg()
	}
	var buf []float64
	defer func() {
		if buf != nil {
			db.putBlockBuf(buf)
		}
	}()
	for _, s := range snap.segs {
		lo := max(from, s.meta.start)
		hi := min(to, s.meta.start+s.meta.n)
		if s.pending == nil {
			handled, err := db.aggPushdown(snap, s.meta, from, step, lo, hi, accs)
			if err != nil {
				return nil, from, snap.cold.Load(), err
			}
			if handled {
				continue
			}
		}
		chunk, err := db.segmentRange(snap, s, lo, hi, &buf)
		if err != nil {
			return nil, from, snap.cold.Load(), err
		}
		foldWindows(accs, from, step, lo, chunk)
	}
	if len(snap.tail) > 0 {
		foldWindows(accs, from, step, snap.tailStart, snap.tail)
	}
	return accs, from, snap.cold.Load(), nil
}

// aggPushdown folds the window aggregates of one durable block's overlap
// [lo, hi) straight from the compressed payload — one DecodeWindowAggs
// call parses the piece stream once and fills every touched window, so no
// samples are materialized. Bit-stream blocks carrying a checkpoint
// sidecar aggregate through the checkpointed decoder instead: seek to the
// last checkpoint before lo, then fold each decoded sample into its
// window without materializing the range. It declines (false, nil) when
// the block's reconstruction is already cached — folding the resident
// samples is cheaper than re-parsing the payload — or when the codec can
// neither aggregate natively nor seek.
func (db *DB) aggPushdown(snap *rangeSnapshot, meta blockMeta, from, step, lo, hi int, accs []codec.RangeAgg) (bool, error) {
	if snap.sh.cache.contains(meta.key()) {
		return false, nil
	}
	c, err := db.codecFor(meta)
	if err != nil {
		return false, fmt.Errorf("tsdb: block %s: %w", meta.path, err)
	}
	ad, native := c.(codec.AggDecoder)
	cd, ckpt := c.(codec.CheckpointDecoder)
	if !native && !ckpt {
		return false, nil
	}
	payload, sidecar, release, err := db.openBlockPayload(meta)
	if err != nil {
		if isStaleBlock(err) {
			// Compaction moved the block out from under us; decline so the
			// dense fallback re-resolves against the live index.
			return false, nil
		}
		return false, err
	}
	defer release()
	// The engine's window grid is anchored at the query's from; shift it
	// into the block's coordinate space along with the overlap bounds.
	w0 := (lo - from) / step
	wEnd := (hi - 1 - from) / step
	start := time.Now()
	switch {
	case native:
		err = ad.DecodeWindowAggs(payload, meta.n,
			lo-meta.start, hi-meta.start, from-meta.start, step, accs[w0:wEnd+1])
	case len(sidecar) > 0:
		var bits int
		bits, err = cd.DecodeWindowAggsCheckpointed(payload, sidecar, meta.n,
			lo-meta.start, hi-meta.start, from-meta.start, step, accs[w0:wEnd+1])
		if err == nil {
			db.noteCheckpointSeek(bits)
		}
	default:
		// Sidecar-less version-1 bit-stream block: replaying it from the
		// front per QueryAgg would repeat work the dense path caches.
		return false, nil
	}
	if err != nil {
		return false, fmt.Errorf("tsdb: block %s: %w", meta.path, err)
	}
	snap.cold.Store(true)
	db.observeDecode(meta.codecID, start)
	db.aggPushdowns.Add(1)
	return true, nil
}

// foldWindows folds a materialized chunk starting at absolute index start
// into the per-window accumulators of a QueryAgg over [from, ...).
func foldWindows(accs []codec.RangeAgg, from, step, start int, chunk []float64) {
	for off := 0; off < len(chunk); {
		w := (start + off - from) / step
		whi := min(start+len(chunk), from+(w+1)*step)
		cnt := whi - (start + off)
		accs[w].Add(chunk[off : off+cnt])
		off += cnt
	}
}
