package tsdb

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/series"
)

// writeLegacySeries fabricates a series directory exactly as the
// pre-header engine laid it out: headerless block files holding raw CAMEO
// irregular-series encodings, plus a start-stamped verbatim tail. It
// returns the samples a query over the store must reconstruct.
func writeLegacySeries(t *testing.T, dir, name string, opt Options, nBlocks, tailLen int) []float64 {
	t.Helper()
	sdir := filepath.Join(dir, name) // names used here need no escaping
	if err := os.MkdirAll(sdir, 0o755); err != nil {
		t.Fatal(err)
	}
	var want []float64
	for b := 0; b < nBlocks; b++ {
		chunk := sensorData(opt.BlockSize, int64(100+b))
		res, err := core.Compress(chunk, opt.Compression)
		if err != nil {
			t.Fatal(err)
		}
		data := res.Compressed.Encode() // pre-header on-disk bytes: no codec framing
		path := filepath.Join(sdir, fmt.Sprintf("%012d.blk", b*opt.BlockSize))
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		want = append(want, res.Compressed.Decompress()...)
	}
	if tailLen > 0 {
		tail := sensorData(tailLen, 999)
		data := series.FromDense(tail).Encode()
		path := filepath.Join(sdir, fmt.Sprintf("%012d.tail", nBlocks*opt.BlockSize))
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		want = append(want, tail...)
	}
	return want
}

// TestLegacyHeaderlessStoreOpensAndQueriesIdentically is the
// backward-compat contract: a store directory written by the pre-header
// engine (raw CAM1 blocks, no codec header) opens under the refactored
// engine and returns byte-identical query results.
func TestLegacyHeaderlessStoreOpensAndQueriesIdentically(t *testing.T) {
	dir := t.TempDir()
	opt := dbOptions()
	want := writeLegacySeries(t, dir, "legacy", opt, 3, 100)

	db, err := Open(dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	got, err := db.Query("legacy", 0, len(want))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("query returned %d samples, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sample %d: %v, want %v", i, got[i], want[i])
		}
	}
	st, err := db.SeriesStats("legacy")
	if err != nil {
		t.Fatal(err)
	}
	if st.Samples != len(want) || st.Blocks != 3 {
		t.Fatalf("stats %+v, want %d samples in 3 blocks", st, len(want))
	}
}

// TestLegacyStoreAcceptsNewAppends verifies the mixed case: appends to a
// reopened legacy store write current-format (headered) blocks next to the
// headerless ones, and both generations stay queryable across another
// reopen.
func TestLegacyStoreAcceptsNewAppends(t *testing.T) {
	dir := t.TempDir()
	opt := dbOptions()
	opt.Workers = -1 // deterministic synchronous cuts
	legacy := writeLegacySeries(t, dir, "legacy", opt, 2, 0)

	db, err := Open(dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	fresh := sensorData(opt.BlockSize, 555)
	if err := db.Append("legacy", fresh...); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db, err = Open(dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	got, err := db.Query("legacy", 0, len(legacy)+opt.BlockSize)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(legacy)+opt.BlockSize {
		t.Fatalf("query returned %d samples", len(got))
	}
	for i := range legacy {
		if got[i] != legacy[i] {
			t.Fatalf("legacy sample %d changed: %v != %v", i, got[i], legacy[i])
		}
	}
	// The appended block went through CAMEO, so compare against its codec
	// reconstruction rather than the raw input.
	res, err := core.Compress(fresh, opt.Compression)
	if err != nil {
		t.Fatal(err)
	}
	recon := res.Compressed.Decompress()
	for i, v := range got[len(legacy):] {
		if v != recon[i] {
			t.Fatalf("new sample %d: %v, want %v", i, v, recon[i])
		}
	}
}

// codecStoreOptions builds store options for a non-CAMEO codec (small
// blocks, synchronous writes for determinism where needed).
func codecStoreOptions(c codec.Codec) Options {
	return Options{Codec: c, BlockSize: 256, Shards: 4, Workers: 2, CacheBlocks: 16}
}

// TestStoreRoundTripsUnderEachCodec writes, closes, reopens, and queries a
// store under cameo, gorilla, and elf (the acceptance matrix), asserting
// exact replay for the lossless codecs.
func TestStoreRoundTripsUnderEachCodec(t *testing.T) {
	type tc struct {
		name     string
		opt      Options
		lossless bool
	}
	cases := []tc{
		{"cameo", dbOptions(), false},
		{"gorilla", codecStoreOptions(codec.Gorilla{}), true},
		{"elf", codecStoreOptions(codec.Elf{}), true},
		{"swing", codecStoreOptions(codec.Swing{}), false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			dir := t.TempDir()
			input := sensorData(3*c.opt.BlockSize+57, 42)
			db, err := Open(dir, c.opt)
			if err != nil {
				t.Fatal(err)
			}
			if err := db.Append("s", input...); err != nil {
				t.Fatal(err)
			}
			first, err := func() ([]float64, error) {
				if err := db.Flush(); err != nil {
					return nil, err
				}
				return db.Query("s", 0, len(input))
			}()
			if err != nil {
				t.Fatal(err)
			}
			if err := db.Close(); err != nil {
				t.Fatal(err)
			}

			db, err = Open(dir, c.opt)
			if err != nil {
				t.Fatal(err)
			}
			defer db.Close()
			got, err := db.Query("s", 0, len(input))
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(input) {
				t.Fatalf("reopened query returned %d samples, want %d", len(got), len(input))
			}
			for i := range first {
				if got[i] != first[i] {
					t.Fatalf("sample %d changed across reopen: %v != %v", i, got[i], first[i])
				}
			}
			if c.lossless {
				for i := range input {
					if got[i] != input[i] {
						t.Fatalf("lossless codec altered sample %d: %v != %v", i, got[i], input[i])
					}
				}
			}
		})
	}
}

// TestStoreMixesCodecsAcrossReopens writes blocks under gorilla, reopens
// the store under swing, and verifies (a) the gorilla blocks still replay
// exactly (per-block headers select the decoder, not the store's codec)
// and (b) new blocks are written under the new codec.
func TestStoreMixesCodecsAcrossReopens(t *testing.T) {
	dir := t.TempDir()
	input := sensorData(2*256, 7)

	db, err := Open(dir, codecStoreOptions(codec.Gorilla{}))
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Append("s", input...); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db, err = Open(dir, codecStoreOptions(codec.Swing{}))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	got, err := db.Query("s", 0, len(input))
	if err != nil {
		t.Fatal(err)
	}
	for i := range input {
		if got[i] != input[i] {
			t.Fatalf("gorilla block sample %d changed under swing reopen: %v != %v", i, got[i], input[i])
		}
	}
	more := sensorData(256, 8)
	if err := db.Append("s", more...); err != nil {
		t.Fatal(err)
	}
	if err := db.Sync(); err != nil {
		t.Fatal(err)
	}
	// The new block's on-disk header must name swing.
	sh := db.shardFor("s")
	sh.mu.RLock()
	var newMeta blockMeta
	for _, b := range sh.series["s"].blocks {
		if b.start == len(input) {
			newMeta = b
		}
	}
	sh.mu.RUnlock()
	if newMeta.codecID != codec.IDSwing {
		t.Fatalf("new block codec ID = %d, want swing (%d)", newMeta.codecID, codec.IDSwing)
	}
	// And the old ones gorilla.
	sh.mu.RLock()
	oldID := sh.series["s"].blocks[0].codecID
	sh.mu.RUnlock()
	if oldID != codec.IDGorilla {
		t.Fatalf("old block codec ID = %d, want gorilla (%d)", oldID, codec.IDGorilla)
	}
}

// TestCorruptBlockHeaderFailsOpen plants garbage where a block header
// should be: Open must reject the store with a clear error instead of
// indexing a lie.
func TestCorruptBlockHeaderFailsOpen(t *testing.T) {
	dir := t.TempDir()
	sdir := filepath.Join(dir, "s")
	if err := os.MkdirAll(sdir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(sdir, "000000000000.blk"), []byte{0xDE, 0xAD, 0xBE, 0xEF}, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, dbOptions()); err == nil {
		t.Fatal("Open accepted a garbage block header")
	}
}

// TestTrickleFlushDoesNotFragmentMinBlockOneCodecs regression-tests the
// Flush tail policy for codecs without an encoding minimum: repeated
// Append-one-sample + Flush cycles must keep the partial tail in the
// replayable verbatim file (later cut into a full block), not mint a
// permanent one-sample .blk per Flush.
func TestTrickleFlushDoesNotFragmentMinBlockOneCodecs(t *testing.T) {
	dir := t.TempDir()
	opt := codecStoreOptions(codec.Gorilla{})
	db, err := Open(dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	var want []float64
	for i := 0; i < 5; i++ {
		v := float64(i) + 0.5
		want = append(want, v)
		if err := db.Append("s", v); err != nil {
			t.Fatal(err)
		}
		if err := db.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	st, err := db.SeriesStats("s")
	if err != nil {
		t.Fatal(err)
	}
	if st.Blocks != 0 {
		t.Fatalf("trickle flushes minted %d permanent blocks, want 0", st.Blocks)
	}
	got, err := db.Query("s", 0, len(want))
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sample %d: %v != %v", i, got[i], want[i])
		}
	}
	// A full block's worth of samples still cuts a real block.
	if err := db.Append("s", sensorData(opt.BlockSize, 3)...); err != nil {
		t.Fatal(err)
	}
	if err := db.Sync(); err != nil {
		t.Fatal(err)
	}
	st, err = db.SeriesStats("s")
	if err != nil {
		t.Fatal(err)
	}
	if st.Blocks == 0 {
		t.Fatal("full block was not cut")
	}
}
