package tsdb

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// TestCursorPrefetchMatchesSequentialAllCodecs is the readahead
// differential: for every codec, warm and cold, at several depths, a
// prefetch-on cursor must stream exactly the bytes the sequential path
// streams over a sweep of ranges crossing block boundaries and the tail.
func TestCursorPrefetchMatchesSequentialAllCodecs(t *testing.T) {
	for name, c := range cursorCodecs() {
		t.Run(name, func(t *testing.T) {
			opt := dbOptions()
			opt.Codec = c
			dir := t.TempDir()
			db, err := Open(dir, opt)
			if err != nil {
				t.Fatal(err)
			}
			total := 6*opt.BlockSize + 100 // 6 durable blocks + verbatim tail
			if err := db.Append("s", sensorData(total, 5)...); err != nil {
				t.Fatal(err)
			}
			if err := db.Flush(); err != nil {
				t.Fatal(err)
			}
			ranges := [][2]int{
				{0, total},
				{0, 1},
				{total - 1, total},
				{opt.BlockSize - 1, 4*opt.BlockSize + 1},
				{3 * opt.BlockSize, total},
				{700, 800},
			}
			check := func(label string) {
				t.Helper()
				for _, ra := range []int{1, 2, 4} {
					for _, r := range ranges {
						seq, err := db.cursorWithReadAhead("s", r[0], r[1], 0)
						if err != nil {
							t.Fatal(err)
						}
						want := collect(t, seq)
						seq.Close()
						pf, err := db.cursorWithReadAhead("s", r[0], r[1], ra)
						if err != nil {
							t.Fatal(err)
						}
						got := collect(t, pf)
						pf.Close()
						if len(got) != len(want) {
							t.Fatalf("%s ra=%d [%d,%d): %d samples, want %d", label, ra, r[0], r[1], len(got), len(want))
						}
						for i := range got {
							if got[i] != want[i] {
								t.Fatalf("%s ra=%d [%d,%d): sample %d = %v, want %v", label, ra, r[0], r[1], i, got[i], want[i])
							}
						}
					}
				}
			}
			check("warm")
			if err := db.Close(); err != nil {
				t.Fatal(err)
			}
			if db, err = Open(dir, opt); err != nil {
				t.Fatal(err)
			}
			check("cold")
			if err := db.Close(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestCursorPrefetchSoakRacingMaintain is the parallel-read soak: many
// concurrent cursors at mixed readahead depths scan the same cold series
// while a ticking Maintain loop compacts the under-filled blocks out
// from under them (exercising the stale-block retry inside prefetch
// jobs). Every stream must be bit-identical to the reconstruction taken
// before the churn started — compaction republishes merged blocks with
// identical reconstructions, so no interleaving may change a byte.
// Run under -race in CI.
func TestCursorPrefetchSoakRacingMaintain(t *testing.T) {
	opt := dbOptions()
	opt.CacheBlocks = -1     // every read decodes cold
	opt.CompactMinFill = 0.9 // all trickle-filled blocks are merge candidates
	db, err := Open(t.TempDir(), opt)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	const chunk = 128 // quarter of the 512-sample block: under-filled on purpose
	total := 0
	for i := 0; i < 16; i++ {
		if err := db.Append("s", sensorData(chunk, int64(i+1))...); err != nil {
			t.Fatal(err)
		}
		if err := db.Flush(); err != nil {
			t.Fatal(err)
		}
		total += chunk
	}
	want, err := db.Query("s", 0, total)
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	errc := make(chan error, 8)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		ra := g % 4 // mixed prefetch off/on depths: 0, 1, 2, 3
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				cur, err := db.cursorWithReadAhead("s", 0, total, ra)
				if err != nil {
					errc <- err
					return
				}
				got := make([]float64, 0, total)
				for {
					c, ok := cur.Next()
					if !ok {
						break
					}
					got = append(got, c...)
				}
				err = cur.Err()
				cur.Close()
				if err != nil {
					errc <- fmt.Errorf("ra=%d: %w", ra, err)
					return
				}
				if len(got) != len(want) {
					errc <- fmt.Errorf("ra=%d: %d samples, want %d", ra, len(got), len(want))
					return
				}
				for i := range got {
					if got[i] != want[i] {
						errc <- fmt.Errorf("ra=%d: sample %d = %v, want %v", ra, i, got[i], want[i])
						return
					}
				}
			}
		}()
	}
	// Churn the block index: each round appends another trickle block and
	// compacts, replacing blocks the racing cursors have snapshotted.
	for i := 16; i < 24; i++ {
		if err := db.Append("s", sensorData(chunk, int64(i+1))...); err != nil {
			t.Fatal(err)
		}
		if err := db.Flush(); err != nil {
			t.Fatal(err)
		}
		if err := db.Maintain(); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}
}

// TestCursorCloseReturnsPooledBuffers is the pool-leak regression test:
// whatever way a prefetching cursor ends — fully consumed, abandoned
// mid-stream with jobs queued, abandoned with jobs completed, or errored
// on a corrupt block — the DB's pooled-buffer balance must return to its
// resting value, and Close must be idempotent.
func TestCursorCloseReturnsPooledBuffers(t *testing.T) {
	opt := dbOptions()
	opt.CacheBlocks = -1 // partial cold reads must draw pooled decode buffers
	dir := t.TempDir()
	db, err := Open(dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	total := 6 * opt.BlockSize
	if err := db.Append("s", sensorData(total, 7)...); err != nil {
		t.Fatal(err)
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	db.pool.drain()
	base := db.blockBufBalance()
	balanced := func(label string) {
		t.Helper()
		db.pool.drain() // outstanding jobs return their buffers via Close already; drain settles compress-side churn
		if got := db.blockBufBalance(); got != base {
			t.Fatalf("%s: pooled-buffer balance %d, want %d", label, got, base)
		}
	}

	// Fully consumed. The range is offset so the edge blocks decode
	// partially into pooled buffers.
	cur, err := db.cursorWithReadAhead("s", 1, total-1, 2)
	if err != nil {
		t.Fatal(err)
	}
	collect(t, cur)
	cur.Close()
	balanced("consumed")

	// Abandoned immediately: outstanding jobs may be queued or running.
	cur, err = db.cursorWithReadAhead("s", 1, total-1, 4)
	if err != nil {
		t.Fatal(err)
	}
	cur.Next()
	cur.Close()
	balanced("abandoned-early")

	// Abandoned with every prefetched decode completed (drain forces the
	// jobs through before Close reclaims them as wasted).
	cur, err = db.cursorWithReadAhead("s", 1, total-1, 4)
	if err != nil {
		t.Fatal(err)
	}
	cur.Next()
	db.pool.drain()
	cur.Close()
	cur.Close() // idempotent
	if _, ok := cur.Next(); ok {
		t.Fatal("Next yielded a chunk after Close")
	}
	balanced("abandoned-completed")

	// Errored mid-stream: a corrupt block file fails resolution (inline or
	// in a prefetch job); Close must still return every buffer.
	victim := filepath.Join(dir, "s", fmt.Sprintf("%012d.blk", 2*opt.BlockSize))
	if err := os.WriteFile(victim, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, ra := range []int{0, 2} {
		cur, err = db.cursorWithReadAhead("s", 1, total-1, ra)
		if err != nil {
			t.Fatal(err)
		}
		for {
			if _, ok := cur.Next(); !ok {
				break
			}
		}
		if cur.Err() == nil {
			t.Fatalf("ra=%d: cursor over corrupt block reported no error", ra)
		}
		cur.Close()
		balanced(fmt.Sprintf("errored-ra%d", ra))
	}
}

// TestPrefetchCounters pins the observability: consumed readahead
// decodes count as hits, completed-but-unconsumed ones as wasted, and
// neither moves when prefetch is off.
func TestPrefetchCounters(t *testing.T) {
	opt := dbOptions()
	opt.CacheBlocks = -1
	db, err := Open(t.TempDir(), opt)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	total := 6 * opt.BlockSize
	if err := db.Append("s", sensorData(total, 9)...); err != nil {
		t.Fatal(err)
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}

	cur, err := db.cursorWithReadAhead("s", 0, total, 2)
	if err != nil {
		t.Fatal(err)
	}
	cur.Next()      // schedules the next two segments
	db.pool.drain() // both decodes complete before consumption
	collect(t, cur)
	cur.Close()
	if st := db.Stats(); st.PrefetchHits < 2 {
		t.Fatalf("PrefetchHits = %d after consuming drained prefetches, want >= 2", st.PrefetchHits)
	}

	wastedBefore := db.Stats().PrefetchWasted
	// Settle the queue first: claimed-back jobs from the consuming pass
	// above leave husk entries the worker has yet to discard, and a full
	// queue would make the next cursor's scheduling silently no-op.
	db.pool.drain()
	cur, err = db.cursorWithReadAhead("s", 0, total, 2)
	if err != nil {
		t.Fatal(err)
	}
	cur.Next()
	db.pool.drain() // the two scheduled decodes complete...
	cur.Close()     // ...and are thrown away
	if st := db.Stats(); st.PrefetchWasted < wastedBefore+2 {
		t.Fatalf("PrefetchWasted = %d, want >= %d", st.PrefetchWasted, wastedBefore+2)
	}

	before := db.Stats()
	cur, err = db.cursorWithReadAhead("s", 0, total, 0)
	if err != nil {
		t.Fatal(err)
	}
	collect(t, cur)
	cur.Close()
	after := db.Stats()
	if after.PrefetchHits != before.PrefetchHits || after.PrefetchWasted != before.PrefetchWasted {
		t.Fatalf("prefetch-off cursor moved the counters: %+v -> %+v", before, after)
	}
}
