package tsdb

import (
	"errors"
	"fmt"
	"io/fs"
	"math"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/codec"
	"repro/internal/series"
)

// trickleStore builds a store whose series "s" was trickle-ingested:
// chunks-many flushes of chunkLen samples each, producing chunks-many
// under-filled durable blocks. Synchronous workers keep the block layout
// deterministic.
func trickleStore(t *testing.T, dir string, opt Options, chunkLen, chunks int) (*DB, []float64) {
	t.Helper()
	db, err := Open(dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	xs := sensorData(chunkLen*chunks, 99)
	for i := 0; i < chunks; i++ {
		if err := db.Append("s", xs[i*chunkLen:(i+1)*chunkLen]...); err != nil {
			t.Fatal(err)
		}
		if err := db.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	return db, xs
}

func lifecycleOptions() Options {
	opt := dbOptions() // CAMEO lags 24 (min tail-block 96), BlockSize 512
	opt.Workers = -1
	return opt
}

func TestCompactionMergesUnderfilledBlocks(t *testing.T) {
	const chunkLen, chunks = 128, 52
	opt := lifecycleOptions()
	db, _ := trickleStore(t, t.TempDir(), opt, chunkLen, chunks)
	defer db.Close()
	if s, _ := db.SeriesStats("s"); s.Blocks != chunks {
		t.Fatalf("trickle ingest produced %d blocks, want %d", s.Blocks, chunks)
	}
	before, err := db.Query("s", 0, chunkLen*chunks)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Maintain(); err != nil {
		t.Fatal(err)
	}
	// 52 blocks of 128 pack 4-at-a-time into 512-sample blocks: 13 full.
	s, err := db.SeriesStats("s")
	if err != nil {
		t.Fatal(err)
	}
	if want := chunks * chunkLen / opt.BlockSize; s.Blocks != want {
		t.Fatalf("compacted to %d blocks, want %d", s.Blocks, want)
	}
	if s.Samples != chunkLen*chunks {
		t.Fatalf("compaction changed sample count: %d", s.Samples)
	}
	stats := db.Stats()
	if stats.CompactionRuns == 0 || stats.CompactedBlocks != chunks {
		t.Fatalf("counters = %d runs / %d blocks, want >0 / %d", stats.CompactionRuns, stats.CompactedBlocks, chunks)
	}
	after, err := db.Query("s", 0, chunkLen*chunks)
	if err != nil {
		t.Fatal(err)
	}
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("sample %d changed across compaction: %v -> %v", i, before[i], after[i])
		}
	}
	// The store reopens to the identical reconstruction.
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := Open(db.dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	reopened, err := db2.Query("s", 0, chunkLen*chunks)
	if err != nil {
		t.Fatal(err)
	}
	for i := range before {
		if before[i] != reopened[i] {
			t.Fatalf("sample %d changed across compaction+reopen: %v -> %v", i, before[i], reopened[i])
		}
	}
}

// TestCompactionBitIdenticalUnderConcurrentReaders is the acceptance
// criterion's "during": readers hammering the full range while compaction
// swaps the index must observe the exact pre-compaction reconstruction on
// every read.
func TestCompactionBitIdenticalUnderConcurrentReaders(t *testing.T) {
	const chunkLen, chunks = 128, 52
	opt := lifecycleOptions()
	opt.Workers = 2 // exercise the pool-parallel lifecycle path too
	db, _ := trickleStore(t, t.TempDir(), opt, chunkLen, chunks)
	defer db.Close()
	want, err := db.Query("s", 0, chunkLen*chunks)
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var readerErr atomic.Value
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				got, err := db.Query("s", 0, chunkLen*chunks)
				if err != nil {
					readerErr.Store(fmt.Errorf("query during compaction: %w", err))
					return
				}
				for i := range want {
					if got[i] != want[i] {
						readerErr.Store(fmt.Errorf("sample %d = %v during compaction, want %v", i, got[i], want[i]))
						return
					}
				}
			}
		}()
	}
	for pass := 0; pass < 3; pass++ {
		if err := db.Maintain(); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	if err := readerErr.Load(); err != nil {
		t.Fatal(err)
	}
}

func TestRetentionAgeBoundsSeries(t *testing.T) {
	const chunkLen, chunks = 128, 52
	opt := lifecycleOptions()
	opt.Retention = 1024
	opt.CompactMinFill = -1 // isolate retention: keep the 128-sample blocks
	dir := t.TempDir()
	db, xs := trickleStore(t, dir, opt, chunkLen, chunks)
	defer db.Close()
	if err := db.Maintain(); err != nil {
		t.Fatal(err)
	}
	total := chunkLen * chunks
	wantBase := total - opt.Retention // 5632, block-aligned
	s, err := db.SeriesStats("s")
	if err != nil {
		t.Fatal(err)
	}
	if s.FirstIndex != wantBase || s.Samples != opt.Retention {
		t.Fatalf("after retention: FirstIndex=%d Samples=%d, want %d/%d", s.FirstIndex, s.Samples, wantBase, opt.Retention)
	}
	if st := db.Stats(); st.TrimmedBlocks != uint64(wantBase/chunkLen) {
		t.Fatalf("TrimmedBlocks = %d, want %d", st.TrimmedBlocks, wantBase/chunkLen)
	}
	// A query over the full original range clamps to the retained suffix
	// and reproduces the pre-trim reconstruction of those samples.
	pre, err := db.Query("s", wantBase, total)
	if err != nil {
		t.Fatal(err)
	}
	full, err := db.Query("s", 0, total)
	if err != nil {
		t.Fatal(err)
	}
	if len(full) != opt.Retention {
		t.Fatalf("full-range query returned %d samples, want the %d retained", len(full), opt.Retention)
	}
	for i := range pre {
		if pre[i] != full[i] {
			t.Fatalf("retained sample %d mismatch", i)
		}
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	// Reopen: the trim base survives and the deleted blocks stay gone.
	db2, err := Open(dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	s2, err := db2.SeriesStats("s")
	if err != nil {
		t.Fatal(err)
	}
	if s2.FirstIndex != wantBase || s2.Samples != opt.Retention {
		t.Fatalf("after reopen: FirstIndex=%d Samples=%d, want %d/%d", s2.FirstIndex, s2.Samples, wantBase, opt.Retention)
	}
	_ = xs
}

func TestRetentionBytesBoundsStore(t *testing.T) {
	const chunkLen, chunks = 128, 52
	opt := lifecycleOptions()
	opt.CompactMinFill = -1
	db, _ := trickleStore(t, t.TempDir(), opt, chunkLen, chunks)
	defer db.Close()
	grown := db.Stats().DiskBytes
	opt2 := opt
	budget := grown / 3
	db.opt.RetainBytes = budget
	if err := db.Maintain(); err != nil {
		t.Fatal(err)
	}
	if got := db.Stats().DiskBytes; got > budget {
		t.Fatalf("DiskBytes %d exceeds budget %d after byte retention", got, budget)
	}
	if db.Stats().TrimmedBytes == 0 {
		t.Fatal("byte retention trimmed nothing")
	}
	// The retained suffix still reads cleanly.
	s, err := db.SeriesStats("s")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Query("s", s.FirstIndex, chunkLen*chunks); err != nil {
		t.Fatal(err)
	}
	_ = opt2
}

// TestDeleteSeriesReingestFreshReads is the deletion-safety regression for
// the decoded-block cache: deleting a series and re-ingesting different
// samples reuses the exact block paths, and reads must observe the new
// data, never a cached reconstruction of the old.
func TestDeleteSeriesReingestFreshReads(t *testing.T) {
	opt := lifecycleOptions()
	db, err := Open(t.TempDir(), opt)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	old := sensorData(opt.BlockSize, 3)
	if err := db.Append("s", old...); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Query("s", 0, opt.BlockSize); err != nil { // warm the cache
		t.Fatal(err)
	}
	if err := db.DeleteSeries("s"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Query("s", 0, opt.BlockSize); !errors.Is(err, ErrUnknownSeries) {
		t.Fatalf("query after delete: err = %v, want ErrUnknownSeries", err)
	}
	if _, err := os.Stat(db.seriesDir("s")); !errors.Is(err, fs.ErrNotExist) {
		t.Fatal("series directory survived DeleteSeries")
	}
	if err := db.DeleteSeries("s"); !errors.Is(err, ErrUnknownSeries) {
		t.Fatalf("second delete: err = %v, want ErrUnknownSeries", err)
	}
	fresh := make([]float64, opt.BlockSize)
	for i := range fresh {
		fresh[i] = -1000 - float64(i%7) // far from the old series' range
	}
	if err := db.Append("s", fresh...); err != nil {
		t.Fatal(err)
	}
	got, err := db.Query("s", 0, opt.BlockSize)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] > -900 {
			t.Fatalf("sample %d = %v: stale pre-delete data served from a recycled path", i, got[i])
		}
	}
	if db.Stats().SeriesDeleted != 1 {
		t.Fatalf("SeriesDeleted = %d, want 1", db.Stats().SeriesDeleted)
	}
}

// TestCompactionInvalidatesCachedBlocks targets the same hazard through
// compaction: the merged block reuses its first source's path, so a
// path-keyed cache would serve the old 128-sample reconstruction for a
// 512-sample block.
func TestCompactionInvalidatesCachedBlocks(t *testing.T) {
	const chunkLen, chunks = 128, 8
	opt := lifecycleOptions()
	db, _ := trickleStore(t, t.TempDir(), opt, chunkLen, chunks)
	defer db.Close()
	want, err := db.Query("s", 0, chunkLen*chunks) // warms every block's cache entry
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Maintain(); err != nil {
		t.Fatal(err)
	}
	got, err := db.Query("s", 0, chunkLen*chunks)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sample %d changed after compaction with a warm cache", i)
		}
	}
}

func TestRollupMaterializationAndTierQuery(t *testing.T) {
	opt := lifecycleOptions()
	opt.CacheBlocks = -1 // every read goes to disk: the deletion proof below is airtight
	opt.Rollups = []RollupSpec{{Step: 24}}
	dir := t.TempDir()
	db, err := Open(dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	const total = 24 * 512 // month-scale: 24 full raw blocks
	if err := db.Append("cpu", sensorData(total, 7)...); err != nil {
		t.Fatal(err)
	}
	// Raw answers, computed before any rollup exists.
	rawByFn := map[AggFunc][]float64{}
	for _, f := range []AggFunc{series.AggMean, series.AggSum, series.AggMin, series.AggMax} {
		out, err := db.QueryAgg("cpu", 0, total, 24, f)
		if err != nil {
			t.Fatal(err)
		}
		rawByFn[f] = out
	}
	if err := db.Maintain(); err != nil {
		t.Fatal(err)
	}
	if got := db.Stats().RollupSamples; got != 4*total/24 {
		t.Fatalf("RollupSamples = %d, want %d", got, 4*total/24)
	}
	names := db.Series()
	for _, f := range []AggFunc{series.AggMean, series.AggSum, series.AggMin, series.AggMax} {
		rn := rollupName("cpu", f, 24)
		found := false
		for _, n := range names {
			found = found || n == rn
		}
		if !found {
			t.Fatalf("rollup series %q not materialized (have %v)", rn, names)
		}
	}
	// Tier-step queries are bit-identical to the raw computation: the
	// materialization ran the exact same accumulator pass.
	for f, want := range rawByFn {
		got, err := db.QueryAgg("cpu", 0, total, 24, f)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("%v: %d windows, want %d", f, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%v window %d: rollup answer %v, raw %v", f, i, got[i], want[i])
			}
		}
	}
	// Coarser multiples of the tier step compose from rollup samples;
	// composition reorders float additions, so compare with tolerance.
	rawWide, _, _, err := db.windowAggs("cpu", 0, total, 48)
	if err != nil {
		t.Fatal(err)
	}
	wide, err := db.QueryAgg("cpu", 0, total, 48, series.AggMean)
	if err != nil {
		t.Fatal(err)
	}
	for i, a := range rawWide {
		if diff := math.Abs(wide[i] - a.Eval(series.AggMean)); diff > 1e-9 {
			t.Fatalf("wide window %d: rollup %v vs raw %v", i, wide[i], a.Eval(series.AggMean))
		}
	}
	// The deletion proof: with every raw block file gone, tier-aligned
	// queries still answer in full (they touch no raw block), while a
	// non-aligned step — which must fall back to raw — fails.
	matches, err := filepath.Glob(filepath.Join(db.seriesDir("cpu"), "*.blk"))
	if err != nil || len(matches) != 24 {
		t.Fatalf("raw block files = %d (%v), want 24", len(matches), err)
	}
	for _, m := range matches {
		if err := os.Remove(m); err != nil {
			t.Fatal(err)
		}
	}
	got, err := db.QueryAgg("cpu", 0, total, 24, series.AggMin)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range rawByFn[series.AggMin] {
		if got[i] != want {
			t.Fatalf("window %d after raw deletion: %v, want %v", i, got[i], want)
		}
	}
	if _, err := db.QueryAgg("cpu", 0, total, 23, series.AggMin); err == nil {
		t.Fatal("non-tier-aligned step answered without raw blocks — it must read them")
	}
}

// TestRollupAnswersTrimmedHistory pins the retention/rollup contract: a
// tier-aligned QueryAgg over the full original range keeps answering every
// window — bit-identically — after retention deletes the raw blocks
// beneath it. Materialization runs before trimming (and retainAge caps the
// raw horizon at rollup coverage), so this must never regress to the
// clamped raw answer.
func TestRollupAnswersTrimmedHistory(t *testing.T) {
	opt := lifecycleOptions()
	opt.Rollups = []RollupSpec{{Step: 24, Aggs: []AggFunc{series.AggMean}}}
	opt.Retention = 2048
	db, err := Open(t.TempDir(), opt)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	const total = 24 * 512 // tier-aligned series end
	if err := db.Append("cpu", sensorData(total, 11)...); err != nil {
		t.Fatal(err)
	}
	want, err := db.QueryAgg("cpu", 0, total, 24, series.AggMean)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Maintain(); err != nil {
		t.Fatal(err)
	}
	s, err := db.SeriesStats("cpu")
	if err != nil {
		t.Fatal(err)
	}
	if wantBase := total - opt.Retention; s.FirstIndex != wantBase {
		t.Fatalf("retention left FirstIndex=%d, want %d", s.FirstIndex, wantBase)
	}
	got, err := db.QueryAgg("cpu", 0, total, 24, series.AggMean)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("full-range tier query returned %d windows, want %d (trimmed history not tier-served)", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("window %d after trim: %v, want %v", i, got[i], want[i])
		}
	}
	// A step no tier divides still answers from the retained raw suffix
	// (clamped, re-anchored at the base) rather than erroring.
	if _, err := db.QueryAgg("cpu", 0, total, 23, series.AggMean); err != nil {
		t.Fatalf("clamped raw fallback: %v", err)
	}
}

// TestRollupTierTouchesNoRawBlock proves the pushdown with a counting
// codec: a month-scale tier-aligned QueryAgg decodes exactly one block —
// the rollup series' own — instead of the 24 raw blocks.
func TestRollupTierTouchesNoRawBlock(t *testing.T) {
	opt := lifecycleOptions()
	opt.CacheBlocks = -1
	opt.Rollups = []RollupSpec{{Step: 24, Aggs: []AggFunc{series.AggMean}}}
	dir := t.TempDir()
	db, err := Open(dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	const total = 24 * 512
	if err := db.Append("cpu", sensorData(total, 8)...); err != nil {
		t.Fatal(err)
	}
	if err := db.Maintain(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	cc := &countingCodec{inner: codec.NewCAMEO(opt.Compression)}
	opt.Codec = cc
	db, err = Open(dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if out, err := db.QueryAgg("cpu", 0, total, 24, series.AggMean); err != nil || len(out) != total/24 {
		t.Fatalf("tier query: %d windows, err %v", len(out), err)
	}
	// The rollup series' own blocks are lossless (Gorilla), so the counting
	// CAMEO codec sees zero decodes of any kind: not one raw block touched.
	touched := cc.fullDecodes.Load() + cc.rangeCalls.Load() + cc.aggCalls.Load()
	if touched != 0 {
		t.Fatalf("tier-aligned QueryAgg touched %d raw blocks, want 0", touched)
	}
	cc.fullDecodes.Store(0)
	cc.aggCalls.Store(0)
	cc.rangeCalls.Store(0)
	if _, err := db.QueryAgg("cpu", 0, total, 23, series.AggMean); err != nil {
		t.Fatal(err)
	}
	touched = cc.fullDecodes.Load() + cc.rangeCalls.Load() + cc.aggCalls.Load()
	if touched < 24 {
		t.Fatalf("non-aligned QueryAgg touched %d blocks, want all 24 raw blocks", touched)
	}
}

// mergeOnDisk performs the file-level half of a compaction by hand: merge
// the first k blocks' payloads and write the result over the first block's
// path, leaving the superseded source files in place — exactly the state a
// crash after the atomic rename but before the source deletes leaves.
func mergeOnDisk(t *testing.T, sdir string, k int) {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(sdir, "*.blk"))
	if err != nil || len(matches) < k {
		t.Fatalf("blocks = %d (%v), want at least %d", len(matches), err, k)
	}
	var payloads [][]byte
	var ns []int
	var c codec.Codec
	for _, m := range matches[:k] {
		data, err := os.ReadFile(m)
		if err != nil {
			t.Fatal(err)
		}
		hdr, off, err := codec.ParseBlockHeader(data)
		if err != nil {
			t.Fatal(err)
		}
		if c == nil {
			if c, err = codec.ByID(hdr.CodecID); err != nil {
				t.Fatal(err)
			}
		}
		payloads = append(payloads, data[off:])
		ns = append(ns, hdr.N)
	}
	merged, err := codec.MergeBlocks(c, payloads, ns)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(matches[0], merged, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestCrashMidCompactionRecovers reopens from both halves of a torn
// compaction — before the atomic publish (stray .tmp merge file) and
// after it (merged block live, superseded sources still on disk) — and
// asserts the store serves exactly the pre-operation sample set in the
// first case and the identical reconstruction in the second.
func TestCrashMidCompactionRecovers(t *testing.T) {
	const chunkLen, chunks = 128, 4
	opt := lifecycleOptions()
	dir := t.TempDir()
	db, _ := trickleStore(t, dir, opt, chunkLen, chunks)
	want, err := db.Query("s", 0, chunkLen*chunks)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	sdir := filepath.Join(dir, "s")

	// Crash before the rename: only a temp file of the merge exists.
	tmp := filepath.Join(sdir, "000000000000.blk.tmp")
	if err := os.WriteFile(tmp, []byte("torn merge"), 0o644); err != nil {
		t.Fatal(err)
	}
	db, err = Open(dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	if got, err := db.Query("s", 0, chunkLen*chunks); err != nil {
		t.Fatal(err)
	} else {
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("pre-publish crash: sample %d = %v, want %v", i, got[i], want[i])
			}
		}
	}
	if _, err := os.Stat(tmp); !errors.Is(err, fs.ErrNotExist) {
		t.Fatal("stale merge temp file survived recovery")
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// Crash after the rename: the merged block covers its sources, whose
	// files are still on disk. Recovery must drop them as superseded, not
	// double-count or discard the suffix.
	mergeOnDisk(t, sdir, 3)
	db, err = Open(dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	got, err := db.Query("s", 0, chunkLen*chunks)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("post-publish crash: %d samples, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("post-publish crash: sample %d = %v, want %v", i, got[i], want[i])
		}
	}
	s, err := db.SeriesStats("s")
	if err != nil {
		t.Fatal(err)
	}
	if s.Blocks != 2 { // merged(0..383) + untouched block 384..511
		t.Fatalf("recovered to %d blocks, want 2", s.Blocks)
	}
}

// TestCrashMidRetentionRecovers reopens from both halves of a torn trim:
// trim base recorded with no file yet deleted, and trim base recorded with
// only some of the doomed files deleted. Both must recover to exactly the
// post-trim sample set.
func TestCrashMidRetentionRecovers(t *testing.T) {
	const chunkLen, chunks = 128, 4
	opt := lifecycleOptions()
	for _, deleteHalf := range []bool{false, true} {
		dir := t.TempDir()
		db, _ := trickleStore(t, dir, opt, chunkLen, chunks)
		full, err := db.Query("s", 0, chunkLen*chunks)
		if err != nil {
			t.Fatal(err)
		}
		if err := db.Close(); err != nil {
			t.Fatal(err)
		}
		sdir := filepath.Join(dir, "s")
		base := 2 * chunkLen // trim the first two blocks
		if err := os.WriteFile(filepath.Join(sdir, trimFile), []byte("256"), 0o644); err != nil {
			t.Fatal(err)
		}
		if deleteHalf { // one of the two doomed blocks already gone
			if err := os.Remove(filepath.Join(sdir, "000000000000.blk")); err != nil {
				t.Fatal(err)
			}
		}
		db, err = Open(dir, opt)
		if err != nil {
			t.Fatal(err)
		}
		s, err := db.SeriesStats("s")
		if err != nil {
			t.Fatal(err)
		}
		if s.FirstIndex != base || s.Samples != chunkLen*chunks-base {
			t.Fatalf("deleteHalf=%v: FirstIndex=%d Samples=%d, want %d/%d", deleteHalf, s.FirstIndex, s.Samples, base, chunkLen*chunks-base)
		}
		got, err := db.Query("s", 0, chunkLen*chunks)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != chunkLen*chunks-base {
			t.Fatalf("deleteHalf=%v: %d samples, want %d", deleteHalf, len(got), chunkLen*chunks-base)
		}
		for i := range got {
			if got[i] != full[base+i] {
				t.Fatalf("deleteHalf=%v: sample %d mismatch", deleteHalf, i)
			}
		}
		// The doomed files are gone either way.
		for _, name := range []string{"000000000000.blk", "000000000128.blk"} {
			if _, err := os.Stat(filepath.Join(sdir, name)); !errors.Is(err, fs.ErrNotExist) {
				t.Fatalf("deleteHalf=%v: trimmed block %s survived recovery", deleteHalf, name)
			}
		}
		if err := db.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestPlantedTombstoneCompletesDeletion(t *testing.T) {
	opt := lifecycleOptions()
	dir := t.TempDir()
	db, err := Open(dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Append("doomed", sensorData(600, 3)...); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	sdir := filepath.Join(dir, "doomed")
	if err := os.WriteFile(filepath.Join(sdir, tombstoneFile), []byte("deleting"), 0o644); err != nil {
		t.Fatal(err)
	}
	db, err = Open(dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if _, err := db.Query("doomed", 0, 600); !errors.Is(err, ErrUnknownSeries) {
		t.Fatalf("tombstoned series resurrected: err = %v", err)
	}
	if _, err := os.Stat(sdir); !errors.Is(err, fs.ErrNotExist) {
		t.Fatal("tombstoned series directory survived recovery")
	}
}

// TestFlushReportsEverySeriesError is the errors.Join regression: when two
// series both fail to flush, the error must name both, not just the first.
func TestFlushReportsEverySeriesError(t *testing.T) {
	opt := lifecycleOptions()
	dir := t.TempDir()
	db, err := Open(dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	for _, name := range []string{"alpha", "beta"} {
		if err := db.Append(name, sensorData(200, 4)...); err != nil {
			t.Fatal(err)
		}
		// Replace the series directory with a file so the tail write fails.
		sdir := filepath.Join(dir, name)
		if err := os.RemoveAll(sdir); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(sdir, []byte("not a dir"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	err = db.Flush()
	if err == nil {
		t.Fatal("Flush succeeded with both series directories broken")
	}
	for _, name := range []string{`series "alpha"`, `series "beta"`} {
		if !strings.Contains(err.Error(), name) {
			t.Fatalf("Flush error hides %s: %v", name, err)
		}
	}
	// Clear the faults so Close's flush can drain cleanly.
	for _, name := range []string{"alpha", "beta"} {
		sdir := filepath.Join(dir, name)
		if err := os.Remove(sdir); err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(sdir, 0o755); err != nil {
			t.Fatal(err)
		}
	}
}

func TestRollupSpecValidation(t *testing.T) {
	base := lifecycleOptions()
	for _, tc := range []struct {
		name  string
		specs []RollupSpec
	}{
		{"step below 2", []RollupSpec{{Step: 1}}},
		{"duplicate step", []RollupSpec{{Step: 24}, {Step: 24}}},
		{"negative retention", []RollupSpec{{Step: 24, Retention: -1}}},
		{"bad agg", []RollupSpec{{Step: 24, Aggs: []AggFunc{AggFunc(42)}}}},
	} {
		opt := base
		opt.Rollups = tc.specs
		if _, err := Open(t.TempDir(), opt); err == nil {
			t.Fatalf("%s: Open accepted invalid rollup spec", tc.name)
		}
	}
	opt := base
	opt.Rollups = []RollupSpec{{Step: 6}, {Step: 144}, {Step: 24}}
	if err := opt.withDefaults(); err != nil {
		t.Fatal(err)
	}
	for i, want := range []int{144, 24, 6} { // sorted coarsest-first
		if opt.Rollups[i].Step != want {
			t.Fatalf("spec %d step = %d, want %d", i, opt.Rollups[i].Step, want)
		}
		if len(opt.Rollups[i].Aggs) != 4 {
			t.Fatalf("spec %d did not get the default agg set", i)
		}
	}
}

func TestParseRollupName(t *testing.T) {
	base, f, step, ok := parseRollupName("cpu@mean:24")
	if !ok || base != "cpu" || f != series.AggMean || step != 24 {
		t.Fatalf("parse = %q/%v/%d/%v", base, f, step, ok)
	}
	if base, _, _, ok := parseRollupName("a@b@max:6"); !ok || base != "a@b" {
		t.Fatalf("nested '@': base = %q, ok = %v", base, ok)
	}
	for _, name := range []string{"cpu", "cpu@mean", "cpu@median:24", "cpu@mean:x", "cpu@mean:1", "@mean:24x"} {
		if _, _, _, ok := parseRollupName(name); ok {
			t.Fatalf("%q parsed as a rollup name", name)
		}
	}
}

func TestPlanCompaction(t *testing.T) {
	mk := func(start, n int, id uint8) blockMeta { return blockMeta{start: start, n: n, codecID: id} }
	groups := planCompaction([]blockMeta{
		mk(0, 128, 1), mk(128, 128, 1), mk(256, 128, 1), mk(384, 128, 1), // one full group
		mk(512, 512, 1),                    // full block: breaks the run
		mk(1024, 128, 1),                   // codec changes after this one: it groups with nothing
		mk(1152, 128, 2), mk(1280, 200, 2), // same codec, 328 ≤ 512: a pair
		mk(1480, 200, 2), mk(1680, 200, 2), // 328+200 > 512 splits before 1480; this pair fits
	}, 0.5, 512)
	if len(groups) != 3 {
		t.Fatalf("planned %d groups, want 3: %+v", len(groups), groups)
	}
	if groups[0].n != 512 || len(groups[0].blocks) != 4 || groups[0].blocks[0].start != 0 {
		t.Fatalf("group 0 = %+v", groups[0])
	}
	if groups[1].n != 328 || len(groups[1].blocks) != 2 || groups[1].blocks[0].start != 1152 {
		t.Fatalf("group 1 = %+v", groups[1])
	}
	if groups[2].n != 400 || len(groups[2].blocks) != 2 || groups[2].blocks[0].start != 1480 {
		t.Fatalf("group 2 = %+v", groups[2])
	}
}

// TestLifecycleSoak runs trickle ingest, a fast background lifecycle loop
// (compaction + retention + rollups), and concurrent readers together —
// the -race CI job's integration check that the locking protocol holds up
// under fire.
func TestLifecycleSoak(t *testing.T) {
	opt := lifecycleOptions()
	opt.Workers = 2
	opt.Retention = 2048
	opt.Rollups = []RollupSpec{{Step: 24, Aggs: []AggFunc{series.AggMean}}}
	opt.LifecycleInterval = 2 * time.Millisecond
	db, err := Open(t.TempDir(), opt)
	if err != nil {
		t.Fatal(err)
	}
	xs := sensorData(40*128, 11)
	stop := make(chan struct{})
	var readerErr atomic.Value
	var wg sync.WaitGroup
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				// Readers race trims and deletes; vanished samples may
				// surface as ENOENT or an unknown series, never as wrong
				// data or a crash.
				if _, err := db.Query("s", 0, len(xs)); err != nil && !errors.Is(err, ErrUnknownSeries) && !errors.Is(err, fs.ErrNotExist) {
					readerErr.Store(err)
					return
				}
				if _, err := db.QueryAgg("s", 0, len(xs), 24, series.AggMean); err != nil && !errors.Is(err, ErrUnknownSeries) && !errors.Is(err, fs.ErrNotExist) {
					readerErr.Store(err)
					return
				}
			}
		}()
	}
	for i := 0; i < 40; i++ {
		if err := db.Append("s", xs[i*128:(i+1)*128]...); err != nil {
			t.Fatal(err)
		}
		if err := db.Flush(); err != nil {
			t.Fatal(err)
		}
		time.Sleep(time.Millisecond)
	}
	close(stop)
	wg.Wait()
	if err := readerErr.Load(); err != nil {
		t.Fatalf("reader: %v", err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	// Reopen and run one more pass: whatever state the loop left behind
	// must be recoverable and maintainable.
	db, err = Open(db.dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Maintain(); err != nil {
		t.Fatal(err)
	}
	s, err := db.SeriesStats("s")
	if err != nil {
		t.Fatal(err)
	}
	if s.Samples > opt.Retention+opt.BlockSize {
		t.Fatalf("retention left %d samples, budget %d", s.Samples, opt.Retention)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
}
