package tsdb

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// TestRejectsUnsafeSeriesNames covers the path-traversal fix: "", ".", and
// ".." survive url.PathEscape unchanged, so without validation Append("..")
// would create block files in the PARENT of the store root (and "."/".."
// series would silently vanish on reopen, since ReadDir never lists them).
func TestRejectsUnsafeSeriesNames(t *testing.T) {
	parent := t.TempDir()
	dir := filepath.Join(parent, "store")
	db, err := Open(dir, dbOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	for _, name := range []string{"", ".", ".."} {
		if err := db.Append(name, 1, 2, 3); !errors.Is(err, ErrBadSeriesName) {
			t.Fatalf("Append(%q) = %v, want ErrBadSeriesName", name, err)
		}
		if _, err := db.Query(name, 0, 10); !errors.Is(err, ErrUnknownSeries) {
			t.Fatalf("Query(%q) = %v, want ErrUnknownSeries", name, err)
		}
	}
	// A sibling name that merely contains dots must still work.
	if err := db.Append("a..b", 1, 2, 3); err != nil {
		t.Fatal(err)
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	// Nothing may have been written outside the store root.
	entries, err := os.ReadDir(parent)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "store" {
		names := make([]string, 0, len(entries))
		for _, e := range entries {
			names = append(names, e.Name())
		}
		t.Fatalf("store escaped its root; parent now holds %q", names)
	}
}

// TestOpenRejectsNonCanonicalSeriesDirs covers the reopen side of the
// traversal fix: a planted "%2E%2E" directory decodes to "..", whose
// seriesDir resolves to the PARENT of the store root, so loading it would
// let crash-artifact cleanup delete files outside the store. Open must
// refuse such a directory — and leave the parent untouched.
func TestOpenRejectsNonCanonicalSeriesDirs(t *testing.T) {
	parent := t.TempDir()
	dir := filepath.Join(parent, "store")
	db, err := Open(dir, dbOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Append("s", sensorData(100, 3)...); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	victim := filepath.Join(parent, "victim.tmp")
	if err := os.WriteFile(victim, []byte("precious"), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, planted := range []string{"%2E%2E", "%2E", "%73"} { // "..", ".", non-canonical "s"
		if err := os.Mkdir(filepath.Join(dir, planted), 0o755); err != nil {
			t.Fatal(err)
		}
		if _, err := Open(dir, dbOptions()); err == nil {
			t.Fatalf("Open accepted planted series directory %q", planted)
		}
		if err := os.Remove(filepath.Join(dir, planted)); err != nil {
			t.Fatal(err)
		}
	}
	if data, err := os.ReadFile(victim); err != nil || string(data) != "precious" {
		t.Fatalf("file outside the store root was touched: %q, %v", data, err)
	}
	// With the planted directories gone, the store opens fine again.
	db2, err := Open(dir, dbOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if st, err := db2.SeriesStats("s"); err != nil || st.Samples != 100 {
		t.Fatalf("legitimate series after recovery: %+v, %v", st, err)
	}
}

// plantPendingBlock moves the first n buffered tail samples of a series
// into a hand-built pending block, mimicking a cut whose compression is
// still in flight (done open) — the state an Append racing Flush's Sync
// drain produces. It returns the planted block; the caller plays the
// worker's role.
func plantPendingBlock(t *testing.T, db *DB, name string, n int) *pendingBlock {
	t.Helper()
	sh := db.shardFor(name)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	st := sh.series[name]
	if st == nil || len(st.tail) < n {
		t.Fatalf("series %q has no %d-sample tail to cut", name, n)
	}
	raw := append([]float64(nil), st.tail[:n]...)
	st.tail = append(st.tail[:0], st.tail[n:]...)
	pb := &pendingBlock{start: st.assigned, raw: raw, done: make(chan struct{})}
	st.pending[pb.start] = pb
	st.assigned += n
	return pb
}

// TestFlushWaitsForInflightCutBlocks covers the tail-stamp race: a block
// cut by an Append racing Flush's drain is still in flight when the tail
// is persisted. The old code stamped the tail at st.assigned anyway —
// counting the undurable block — so a crash before that block landed made
// recovery discard the tail as superseded, losing samples Flush had
// reported durable. Flush must instead wait for the in-flight block.
func TestFlushWaitsForInflightCutBlocks(t *testing.T) {
	opt := dbOptions()
	opt.Workers = -1 // no pool: the test plays the worker deterministically
	dir := t.TempDir()
	db, err := Open(dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	xs := sensorData(500, 7)
	if err := db.Append("s", xs...); err != nil { // < BlockSize: all buffered
		t.Fatal(err)
	}
	pb := plantPendingBlock(t, db, "s", 400)

	flushed := make(chan error, 1)
	go func() { flushed <- db.Flush() }()
	select {
	case err := <-flushed:
		t.Fatalf("Flush returned (%v) while a cut block was still in flight", err)
	case <-time.After(100 * time.Millisecond):
	}

	// Play the worker: persist the block, publish it, then signal done.
	meta, recon, err := db.buildBlock("s", pb.start, pb.raw)
	if err != nil {
		t.Fatal(err)
	}
	sh := db.shardFor("s")
	sh.mu.Lock()
	st := sh.series["s"]
	delete(st.pending, pb.start)
	st.insertBlock(meta)
	pb.recon = recon
	pb.raw = nil
	sh.mu.Unlock()
	close(pb.done)

	select {
	case err := <-flushed:
		if err != nil {
			t.Fatalf("Flush: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Flush did not return after the in-flight block landed")
	}
	sh.mu.RLock()
	frontier, assigned, npending := st.durableFrontier(), st.assigned, len(st.pending)
	sh.mu.RUnlock()
	if npending != 0 || frontier != assigned {
		t.Fatalf("after Flush: %d pending, frontier %d != assigned %d", npending, frontier, assigned)
	}

	// Crash (no Close) and reopen: the tail Flush stamped must survive,
	// because its stamp now matches the durable frontier.
	want, err := db.Query("s", 0, 500)
	if err != nil {
		t.Fatal(err)
	}
	db2, err := Open(dir, dbOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	got, err := db2.Query("s", 0, 500)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 500 {
		t.Fatalf("reopen lost samples: got %d, want 500", len(got))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("sample %d differs after crash+reopen: %v != %v", i, got[i], want[i])
		}
	}
}

// TestFlushDefersCutsSoWaitIsBounded covers the liveness side of the
// tail-stamp fix: while a Flush waits out a series' in-flight blocks,
// Appends must not cut new ones (they would make the wait chase a moving
// target, starving Flush under sustained ingest). Deferred samples ride
// along in the tail the flush persists; cutting resumes afterwards.
func TestFlushDefersCutsSoWaitIsBounded(t *testing.T) {
	opt := dbOptions()
	opt.Workers = 1 // real pool: Append takes the async-cut path
	db, err := Open(t.TempDir(), opt)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	xs := sensorData(1200, 11)
	if err := db.Append("s", xs[:500]...); err != nil { // < BlockSize: buffers
		t.Fatal(err)
	}
	pb := plantPendingBlock(t, db, "s", 400) // tail now 100

	flushed := make(chan error, 1)
	go func() { flushed <- db.Flush() }()
	sh := db.shardFor("s")
	waitFlushing := func() {
		for {
			sh.mu.RLock()
			f := sh.series["s"].flushing
			sh.mu.RUnlock()
			if f > 0 {
				return
			}
			time.Sleep(time.Millisecond)
		}
	}
	waitFlushing()

	// Enough samples to cut a block — but the flush is mid-wait, so the
	// cut must be deferred, not added to the pending set.
	if err := db.Append("s", xs[500:]...); err != nil { // tail 100+700 >= 512
		t.Fatal(err)
	}
	sh.mu.RLock()
	npending := len(sh.series["s"].pending)
	sh.mu.RUnlock()
	if npending != 1 {
		t.Fatalf("Append cut a block mid-flush: %d pending, want only the planted 1", npending)
	}

	// Let the planted block land; Flush must now finish and persist the
	// whole (oversized) tail.
	meta, recon, err := db.buildBlock("s", pb.start, pb.raw)
	if err != nil {
		t.Fatal(err)
	}
	sh.mu.Lock()
	st := sh.series["s"]
	delete(st.pending, pb.start)
	st.insertBlock(meta)
	pb.recon = recon
	pb.raw = nil
	sh.mu.Unlock()
	close(pb.done)
	select {
	case err := <-flushed:
		if err != nil {
			t.Fatalf("Flush: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Flush did not finish after the in-flight block landed")
	}
	stats, err := db.SeriesStats("s")
	if err != nil {
		t.Fatal(err)
	}
	if stats.TailLen != 0 || stats.Samples != 1200 {
		t.Fatalf("flush left tail %d / samples %d, want 0 / 1200", stats.TailLen, stats.Samples)
	}

	// Cutting resumes once the flush is done.
	sh.mu.RLock()
	flushing := st.flushing
	sh.mu.RUnlock()
	if flushing != 0 {
		t.Fatalf("flushing count %d after Flush, want 0", flushing)
	}
	if err := db.Append("s", sensorData(600, 12)...); err != nil {
		t.Fatal(err)
	}
	if err := db.Sync(); err != nil {
		t.Fatal(err)
	}
	if got, err := db.Query("s", 0, 1800); err != nil || len(got) != 1800 {
		t.Fatalf("after resume: len=%d err=%v", len(got), err)
	}
}

// TestQueryServesRepairedBlock covers the stale-error fix: a Query that
// snapshots a failed pending block, then loses the race with the Flush
// that repairs it, must serve the repaired durable block instead of the
// dead snapshot's error.
func TestQueryServesRepairedBlock(t *testing.T) {
	opt := dbOptions()
	opt.Workers = -1 // no pool: the test plays the worker deterministically
	db, err := Open(t.TempDir(), opt)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	xs := sensorData(500, 9)
	if err := db.Append("s", xs...); err != nil {
		t.Fatal(err)
	}
	// Leave fewer than minBlock (96) samples buffered so Flush keeps the
	// tail verbatim: the parked query's tail snapshot and the fresh
	// post-Flush query then agree exactly on the tail region too.
	pb := plantPendingBlock(t, db, "s", 420)

	// The query snapshots the pending block and parks on its done channel.
	type result struct {
		got []float64
		err error
	}
	res := make(chan result, 1)
	go func() {
		got, err := db.Query("s", 0, 500)
		res <- result{got, err}
	}()
	time.Sleep(100 * time.Millisecond)

	// Play the worker failing, then Flush repairing, before the parked
	// query gets to look at pb.err — the exact interleaving the old code
	// answered with the stale error.
	injected := errors.New("injected compression failure")
	sh := db.shardFor("s")
	sh.mu.Lock()
	pb.err = injected
	sh.mu.Unlock()
	db.noteFailure(injected)
	if err := db.Flush(); err != nil {
		t.Fatalf("Flush should repair the failed block: %v", err)
	}
	close(pb.done)

	select {
	case r := <-res:
		if r.err != nil {
			t.Fatalf("Query returned the stale pending error after repair: %v", r.err)
		}
		want, err := db.Query("s", 0, 500)
		if err != nil {
			t.Fatal(err)
		}
		if len(r.got) != len(want) {
			t.Fatalf("parked query returned %d samples, want %d", len(r.got), len(want))
		}
		for i := range want {
			if r.got[i] != want[i] {
				t.Fatalf("sample %d: parked query %v != fresh query %v", i, r.got[i], want[i])
			}
		}
	case <-time.After(5 * time.Second):
		t.Fatal("parked query never returned")
	}
}
