package tsdb

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
)

// TestConcurrentAppendQueryFlush hammers the engine with parallel
// appenders, queriers, and flushers across many series, then verifies no
// samples were lost and the store reopens to the same totals. Run with
// -race to exercise the shard/worker/cache synchronization.
func TestConcurrentAppendQueryFlush(t *testing.T) {
	appenders, rounds := 8, 36
	if testing.Short() {
		appenders, rounds = 4, 12
	}
	dir := t.TempDir()
	db, err := Open(dir, Options{
		Compression: core.Options{Lags: 16, Epsilon: 0.05},
		BlockSize:   256,
		Shards:      8,
		Workers:     4,
		CacheBlocks: 32,
	})
	if err != nil {
		t.Fatal(err)
	}

	const nSeries = 12
	name := func(i int) string { return fmt.Sprintf("sensor/%02d", i) }
	var appended [nSeries]atomic.Int64

	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Queriers: random ranges on random series. Results are not asserted —
	// concurrent appends interleave, and totals move between Query's
	// internal snapshot and any outside check — but errors other than
	// ErrUnknownSeries are failures, and the race detector watches the
	// shared state. (Exact result checking is the differential test's job.)
	for q := 0; q < 3; q++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				s := rng.Intn(nSeries)
				from := rng.Intn(2000)
				if _, err := db.Query(name(s), from, from+rng.Intn(500)); err != nil && !errors.Is(err, ErrUnknownSeries) {
					t.Errorf("query: %v", err)
					return
				}
				time.Sleep(time.Millisecond) // keep the spin from starving appenders under -race
			}
		}(int64(100 + q))
	}

	// A flusher running concurrently with ingest.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := db.Sync(); err != nil {
				t.Errorf("sync: %v", err)
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
	}()

	// Appenders: each owns a disjoint set of series so per-series counts
	// are exact.
	var appWG sync.WaitGroup
	for a := 0; a < appenders; a++ {
		appWG.Add(1)
		go func(id int) {
			defer appWG.Done()
			rng := rand.New(rand.NewSource(int64(id)))
			for r := 0; r < rounds; r++ {
				s := (id + r*appenders) % nSeries
				chunk := sensorData(1+rng.Intn(400), int64(id*1000+r))
				if err := db.Append(name(s), chunk...); err != nil {
					t.Errorf("append: %v", err)
					return
				}
				appended[s].Add(int64(len(chunk)))
			}
		}(a)
	}
	appWG.Wait()
	close(stop)
	wg.Wait()

	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	for s := 0; s < nSeries; s++ {
		want := int(appended[s].Load())
		if want == 0 {
			continue
		}
		st, err := db.SeriesStats(name(s))
		if err != nil {
			t.Fatal(err)
		}
		if st.Samples != want {
			t.Fatalf("series %d: %d samples stored, %d appended", s, st.Samples, want)
		}
		got, err := db.Query(name(s), 0, want)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != want {
			t.Fatalf("series %d: query returned %d of %d samples", s, len(got), want)
		}
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: totals and block contiguity must survive.
	db2, err := Open(dir, Options{
		Compression: core.Options{Lags: 16, Epsilon: 0.05},
		BlockSize:   256,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	for s := 0; s < nSeries; s++ {
		want := int(appended[s].Load())
		if want == 0 {
			continue
		}
		st, err := db2.SeriesStats(name(s))
		if err != nil {
			t.Fatal(err)
		}
		if st.Samples != want {
			t.Fatalf("series %d lost samples across reopen: %d vs %d", s, st.Samples, want)
		}
	}
}

// TestConcurrentSingleSeries checks that interleaved appenders on ONE
// series never lose or duplicate samples (ordering between goroutines is
// unspecified, counts are not).
func TestConcurrentSingleSeries(t *testing.T) {
	db, err := Open(t.TempDir(), Options{
		Compression: core.Options{Lags: 16, Epsilon: 0.05},
		BlockSize:   256,
		Shards:      4,
		Workers:     4,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	goroutines, per := 6, 25
	if testing.Short() {
		goroutines, per = 4, 8
	}
	var wg sync.WaitGroup
	var total atomic.Int64
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < per; i++ {
				chunk := sensorData(1+rng.Intn(300), seed*97+int64(i))
				if err := db.Append("shared", chunk...); err != nil {
					t.Errorf("append: %v", err)
					return
				}
				total.Add(int64(len(chunk)))
			}
		}(int64(g))
	}
	wg.Wait()
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	st, err := db.SeriesStats("shared")
	if err != nil {
		t.Fatal(err)
	}
	if st.Samples != int(total.Load()) {
		t.Fatalf("stored %d samples, appended %d", st.Samples, total.Load())
	}
	got, err := db.Query("shared", 0, st.Samples)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != st.Samples {
		t.Fatalf("query returned %d of %d", len(got), st.Samples)
	}
}
