package tsdb

// Storage lifecycle: the background jobs that keep a long-running store
// bounded. A Maintain pass runs, in order:
//
//  1. compaction — runs of under-filled adjacent durable blocks (the
//     signature of trickle-ingest flushes) are merged into full blocks via
//     codec.MergeBlocks, so the merged reconstruction is bit-identical to
//     the per-block reconstructions and queries cannot observe the merge.
//     The publish is atomic: the merged block is atomically renamed over
//     the first source block's path, the index entries are swapped under
//     the shard lock, and only then are the remaining source files
//     deleted. A crash at any point leaves either the old run or the new
//     block (never both or neither): loadSeries discards source blocks
//     fully covered by an earlier block as superseded.
//
//  2. rollup materialization — for each configured RollupSpec, the window
//     aggregates of every raw series' newly completed windows are computed
//     through the QueryAgg machinery (codec.DecodeWindowAggs pushdown — no
//     raw samples are materialized for pushdown-capable codecs) and
//     appended to ordinary series named "<series>@<agg>:<step>". Progress
//     is tracked by the rollup series' own lengths, so materialization is
//     idempotent across crashes and restarts.
//
//  3. retention — age first (Options.Retention bounds each raw series to
//     its newest samples; RollupSpec.Retention bounds each rollup tier),
//     then the store-wide byte budget (Options.RetainBytes deletes
//     oldest-first blocks from the largest series until the store fits).
//     Every trim writes the new base to the series' trim file before
//     deleting anything, so recovery lands on exactly the pre- or
//     post-trim sample set.
//
// Raw trims never outrun rollup materialization: a raw series' horizon is
// capped at its rollups' materialized coverage, so coarse tiers never
// develop holes because their source vanished first.

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/codec"
	"repro/internal/series"
)

// RollupSpec declares one downsampled tier.
type RollupSpec struct {
	// Step is the window size in samples; each rollup sample aggregates
	// Step consecutive raw samples. Must be at least 2.
	Step int
	// Aggs lists the aggregate functions materialized for this tier (one
	// rollup series per function). Empty defaults to mean, sum, min, max —
	// the full set QueryAgg can serve.
	Aggs []AggFunc
	// Retention, when positive, bounds each of this tier's rollup series
	// to its newest Retention samples (rollup samples, i.e. windows).
	// 0 keeps the tier forever.
	Retention int
}

// normalizeRollups validates and canonicalizes Options.Rollups: steps are
// unique and at least 2, empty agg lists get the default set, and specs
// are sorted by descending step so QueryAgg meets the coarsest tier first.
func (o *Options) normalizeRollups() error {
	if len(o.Rollups) == 0 {
		return nil
	}
	specs := make([]RollupSpec, len(o.Rollups))
	copy(specs, o.Rollups)
	seen := make(map[int]bool, len(specs))
	for i, sp := range specs {
		if sp.Step < 2 {
			return fmt.Errorf("tsdb: rollup step must be at least 2, got %d", sp.Step)
		}
		if seen[sp.Step] {
			return fmt.Errorf("tsdb: duplicate rollup step %d", sp.Step)
		}
		seen[sp.Step] = true
		if sp.Retention < 0 {
			return fmt.Errorf("tsdb: rollup retention must be non-negative, got %d", sp.Retention)
		}
		if len(sp.Aggs) == 0 {
			specs[i].Aggs = []AggFunc{series.AggMean, series.AggSum, series.AggMin, series.AggMax}
		} else {
			specs[i].Aggs = append([]AggFunc(nil), sp.Aggs...)
			for _, f := range sp.Aggs {
				switch f {
				case series.AggMean, series.AggSum, series.AggMax, series.AggMin:
				default:
					return fmt.Errorf("tsdb: unsupported rollup aggregate %v", f)
				}
			}
		}
	}
	sort.Slice(specs, func(i, j int) bool { return specs[i].Step > specs[j].Step })
	o.Rollups = specs
	return nil
}

// codecForSeries picks the codec for a newly written block of a series.
// Rollup series are always compressed losslessly (Gorilla): their samples
// are derived aggregates, and stacking the store's lossy codec on top of
// them would compound error and make tier-served QueryAgg answers drift
// from the materialized values. Raw series use the configured codec.
func (db *DB) codecForSeries(name string) codec.Codec {
	if len(db.opt.Rollups) > 0 {
		if _, _, _, ok := parseRollupName(name); ok {
			// Tier blocks inherit the store's checkpoint spacing so
			// tier-served aggregate reads seek like raw-series reads do.
			return codec.Gorilla{Interval: db.opt.CheckpointInterval}
		}
	}
	return db.opt.Codec
}

// rollupName derives the series name of one materialized tier, e.g.
// "cpu@mean:360" for the 360-sample mean rollup of "cpu".
func rollupName(name string, f AggFunc, step int) string {
	return fmt.Sprintf("%s@%s:%d", name, f, step)
}

// parseRollupName splits a rollup series name into its raw series, agg
// function, and step. ok is false for names that are not in the rollup
// scheme ("<series>@<agg>:<step>" with a known agg and a positive step) —
// those are ordinary raw series, '@' in the name or not.
func parseRollupName(name string) (base string, f AggFunc, step int, ok bool) {
	at := strings.LastIndexByte(name, '@')
	if at < 0 {
		return "", 0, 0, false
	}
	suffix := name[at+1:]
	colon := strings.IndexByte(suffix, ':')
	if colon < 0 {
		return "", 0, 0, false
	}
	switch suffix[:colon] {
	case "mean":
		f = series.AggMean
	case "sum":
		f = series.AggSum
	case "max":
		f = series.AggMax
	case "min":
		f = series.AggMin
	default:
		return "", 0, 0, false
	}
	step, err := strconv.Atoi(suffix[colon+1:])
	if err != nil || step < 2 {
		return "", 0, 0, false
	}
	return name[:at], f, step, true
}

// Maintain runs one synchronous lifecycle pass: compaction, rollup
// materialization, then retention. It is what the background loop calls on
// its ticker; callers without a LifecycleInterval invoke it directly (the
// facade and tests do). Passes are serialized — a pass that overlaps the
// next tick simply delays it — and lifecycle errors are returned (and
// counted) but never poison the store's append/flush error state: a failed
// merge or trim leaves the store exactly as queryable as before.
func (db *DB) Maintain() error {
	db.lifecycleMu.Lock()
	defer db.lifecycleMu.Unlock()
	start := time.Now()
	defer func() { db.lifecyclePass.ObserveDuration(time.Since(start)) }()
	var errs []error
	errs = append(errs, db.compactAll()...)
	errs = append(errs, db.materializeRollups()...)
	errs = append(errs, db.retainAge()...)
	errs = append(errs, db.retainBytes()...)
	db.lifecyclePasses.Add(1)
	err := errors.Join(errs...)
	if err != nil {
		db.lifecycleErrors.Add(1)
	}
	return err
}

// lifecycleLoop drives Maintain on a ticker until Close stops it.
func (db *DB) lifecycleLoop(interval time.Duration) {
	defer close(db.lifecycleDone)
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-db.lifecycleStop:
			return
		case <-t.C:
			db.Maintain() // errors are counted in LifecycleErrors
		}
	}
}

// forEachSeries snapshots the series names and invokes fn outside any
// shard lock.
func (db *DB) forEachSeries(fn func(sh *shard, name string)) {
	for _, sh := range db.shards {
		sh.mu.RLock()
		names := make([]string, 0, len(sh.series))
		for name := range sh.series {
			names = append(names, name)
		}
		sh.mu.RUnlock()
		sort.Strings(names)
		for _, name := range names {
			fn(sh, name)
		}
	}
}

// runParallel executes independent lifecycle tasks on the compression
// worker pool (bounded parallelism shared with ingest) or inline when the
// store is synchronous. Tasks must not submit pool jobs themselves.
func (db *DB) runParallel(tasks []func()) {
	if db.pool == nil || len(tasks) < 2 {
		for _, t := range tasks {
			t()
		}
		return
	}
	var wg sync.WaitGroup
	wg.Add(len(tasks))
	for _, t := range tasks {
		t := t
		db.pool.reserve()
		db.pool.submit(compressJob{fn: func() { defer wg.Done(); t() }})
	}
	wg.Wait()
}

// compactAll compacts every series (rollup series included — trickled
// rollup appends fragment just like raw ones), one pool task per series.
func (db *DB) compactAll() []error {
	if db.opt.CompactMinFill < 0 {
		return nil
	}
	var (
		mu    sync.Mutex
		errs  []error
		tasks []func()
	)
	db.forEachSeries(func(sh *shard, name string) {
		tasks = append(tasks, func() {
			if err := db.compactSeries(sh, name); err != nil {
				mu.Lock()
				errs = append(errs, fmt.Errorf("compacting series %q: %w", name, err))
				mu.Unlock()
			}
		})
	})
	db.runParallel(tasks)
	return errs
}

// compactGroup is one run of adjacent under-filled blocks to merge.
type compactGroup struct {
	blocks []blockMeta
	n      int // total samples
}

// compactSeries merges runs of under-filled adjacent durable blocks of one
// series into full blocks. The caller holds lifecycleMu, which guarantees
// the durable prefix only grows at the frontier while we work — so a
// snapshot of the prefix stays valid for the verify-and-swap below.
func (db *DB) compactSeries(sh *shard, name string) error {
	sh.mu.RLock()
	st := sh.series[name]
	if st == nil {
		sh.mu.RUnlock()
		return nil
	}
	// Only the contiguous durable prefix is eligible: blocks stranded
	// beyond a repairable hole are the pending set's business.
	prefix := make([]blockMeta, 0, len(st.blocks))
	f := st.base
	for _, b := range st.blocks {
		if b.start != f {
			break
		}
		prefix = append(prefix, b)
		f += b.n
	}
	sh.mu.RUnlock()

	var errs []error
	for _, g := range planCompaction(prefix, db.opt.CompactMinFill, db.opt.BlockSize) {
		if err := db.compactGroup(sh, name, g); err != nil {
			if errors.Is(err, codec.ErrCannotMerge) {
				continue // codec cannot merge losslessly; leave the run alone
			}
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

// planCompaction finds runs of adjacent under-filled same-codec blocks and
// greedily packs them into groups of up to blockSize samples. Only groups
// of at least two blocks are worth a merge.
func planCompaction(prefix []blockMeta, minFill float64, blockSize int) []compactGroup {
	under := func(b blockMeta) bool { return float64(b.n) < minFill*float64(blockSize) }
	var groups []compactGroup
	var cur compactGroup
	flush := func() {
		if len(cur.blocks) >= 2 {
			groups = append(groups, cur)
		}
		cur = compactGroup{}
	}
	for _, b := range prefix {
		if !under(b) {
			flush()
			continue
		}
		if len(cur.blocks) > 0 && (cur.blocks[0].codecID != b.codecID || cur.n+b.n > blockSize) {
			flush()
		}
		cur.blocks = append(cur.blocks, b)
		cur.n += b.n
	}
	flush()
	return groups
}

// compactGroup merges one run of blocks and atomically publishes the
// result: the merged block file is renamed over the first source block's
// path (the single atomic step — before it the old run is live, after it
// the merged block supersedes its sources on disk), the index swap happens
// under the shard lock, and the now-superseded remaining source files are
// deleted last. Queries racing the swap hold old metas; their reads detect
// the replaced or deleted file (errStaleBlock / ENOENT) and re-resolve
// against the new index, where the merged block reconstructs the same
// samples bit-for-bit.
func (db *DB) compactGroup(sh *shard, name string, g compactGroup) error {
	c, err := codec.ByID(g.blocks[0].codecID)
	if err != nil {
		return err
	}
	payloads := make([][]byte, len(g.blocks))
	ns := make([]int, len(g.blocks))
	for i, b := range g.blocks {
		data, err := os.ReadFile(b.path)
		if err != nil {
			return fmt.Errorf("reading block %s: %w", b.path, err)
		}
		payloads[i] = data[b.hdrOff:]
		ns[i] = b.n
	}
	merged, err := codec.MergeBlocks(c, payloads, ns)
	if err != nil {
		return err
	}
	hdr, hdrOff, err := codec.ParseBlockHeader(merged)
	if err != nil {
		return fmt.Errorf("merged block header: %w", err)
	}
	newPath := g.blocks[0].path
	if err := atomicWrite(newPath, merged); err != nil {
		return err
	}
	meta := blockMeta{
		start: g.blocks[0].start, n: hdr.N, path: newPath,
		bytes: int64(len(merged)), codecID: hdr.CodecID, hdrOff: hdrOff,
		gen: db.nextGen(),
	}
	sh.mu.Lock()
	st := sh.series[name]
	if st == nil {
		sh.mu.Unlock()
		return fmt.Errorf("series vanished during compaction")
	}
	i := sort.Search(len(st.blocks), func(i int) bool { return st.blocks[i].start >= meta.start })
	for j, b := range g.blocks {
		if i+j >= len(st.blocks) || st.blocks[i+j].start != b.start || st.blocks[i+j].gen != b.gen {
			// Defensive: lifecycleMu should make this unreachable, but a
			// shifted index must never be spliced blind. The merged file
			// already replaced newPath; recovery treats whichever state is
			// on disk as authoritative, so bail without touching the index.
			sh.mu.Unlock()
			return fmt.Errorf("block index changed during compaction")
		}
	}
	st.blocks[i] = meta
	st.blocks = append(st.blocks[:i+1], st.blocks[i+len(g.blocks):]...)
	sh.mu.Unlock()
	for _, b := range g.blocks[1:] {
		if err := os.Remove(b.path); err != nil {
			// The index no longer references the file; recovery will delete
			// it as superseded on the next open.
			return fmt.Errorf("removing merged source %s: %w", b.path, err)
		}
	}
	db.compactionRuns.Add(1)
	db.compactedBlocks.Add(uint64(len(g.blocks)))
	return nil
}

// seriesBounds snapshots a series' retention base and total length.
func (db *DB) seriesBounds(name string) (base, total int, ok bool) {
	sh := db.shardFor(name)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	st := sh.series[name]
	if st == nil {
		return 0, 0, false
	}
	return st.base, st.total, true
}

// materializeRollups appends newly completed windows of every raw series
// to its rollup series. Coverage is tracked by the rollup series' own
// lengths — a crash that loses unflushed rollup samples just re-derives
// them next pass — and only windows entirely below the raw durable
// frontier are materialized, so a rollup sample never aggregates samples
// that could still be lost.
func (db *DB) materializeRollups() []error {
	if len(db.opt.Rollups) == 0 {
		return nil
	}
	var errs []error
	db.forEachSeries(func(sh *shard, name string) {
		if _, _, _, isRollup := parseRollupName(name); isRollup {
			return
		}
		if err := db.materializeSeries(sh, name); err != nil {
			errs = append(errs, fmt.Errorf("rolling up series %q: %w", name, err))
		}
	})
	return errs
}

func (db *DB) materializeSeries(sh *shard, name string) error {
	sh.mu.RLock()
	st := sh.series[name]
	if st == nil {
		sh.mu.RUnlock()
		return nil
	}
	frontier := st.durableFrontier()
	base := st.base
	sh.mu.RUnlock()
	var errs []error
	for _, sp := range db.opt.Rollups {
		w1 := frontier / sp.Step // completed, durable windows
		// Resume from the least-covered agg series of this tier; the
		// per-agg appends below skip what an agg already has.
		w0 := w1
		for _, f := range sp.Aggs {
			covered := 0
			if _, total, ok := db.seriesBounds(rollupName(name, f, sp.Step)); ok {
				covered = total
			}
			if covered < w0 {
				w0 = covered
			}
		}
		if w0 >= w1 || w0*sp.Step < base {
			// Nothing new, or the raw samples for the next window were
			// already trimmed (possible only for rollups configured after
			// the fact); materialization cannot reconstruct them.
			continue
		}
		accs, from, _, err := db.windowAggs(name, w0*sp.Step, w1*sp.Step, sp.Step)
		if err != nil {
			errs = append(errs, err)
			continue
		}
		if from != w0*sp.Step || len(accs) != w1-w0 {
			errs = append(errs, fmt.Errorf("rollup window [%d,%d) clamped to %d/%d windows", w0*sp.Step, w1*sp.Step, from, len(accs)))
			continue
		}
		for _, f := range sp.Aggs {
			rname := rollupName(name, f, sp.Step)
			covered := 0
			if _, total, ok := db.seriesBounds(rname); ok {
				covered = total
			}
			if covered >= w1 {
				continue
			}
			if covered < w0 {
				covered = w0 // defensive; w0 is the min over aggs
			}
			vals := make([]float64, 0, w1-covered)
			for _, a := range accs[covered-w0:] {
				vals = append(vals, a.Eval(f))
			}
			if err := db.Append(rname, vals...); err != nil {
				errs = append(errs, err)
				continue
			}
			db.rollupSamples.Add(uint64(len(vals)))
		}
	}
	return errors.Join(errs...)
}

// rollupCoverage returns the least materialized raw-sample coverage across
// every configured rollup series of a raw series — the cap below which a
// raw trim would destroy samples no tier has absorbed yet.
func (db *DB) rollupCoverage(name string) int {
	cover := int(^uint(0) >> 1)
	for _, sp := range db.opt.Rollups {
		for _, f := range sp.Aggs {
			covered := 0
			if _, total, ok := db.seriesBounds(rollupName(name, f, sp.Step)); ok {
				covered = total
			}
			if c := covered * sp.Step; c < cover {
				cover = c
			}
		}
	}
	return cover
}

// retainAge enforces the sample-age horizons: Options.Retention for raw
// series, RollupSpec.Retention per tier.
func (db *DB) retainAge() []error {
	var errs []error
	db.forEachSeries(func(sh *shard, name string) {
		keep := db.opt.Retention
		_, _, step, isRollup := parseRollupName(name)
		if isRollup {
			keep = 0
			for _, sp := range db.opt.Rollups {
				if sp.Step == step {
					keep = sp.Retention
				}
			}
		}
		if keep <= 0 {
			return
		}
		_, total, ok := db.seriesBounds(name)
		if !ok {
			return
		}
		horizon := total - keep
		if !isRollup && len(db.opt.Rollups) > 0 {
			// Never trim raw samples no rollup tier has materialized yet.
			if c := db.rollupCoverage(name); c < horizon {
				horizon = c
			}
		}
		if horizon <= 0 {
			return
		}
		if _, err := db.trimSeries(sh, name, horizon); err != nil {
			errs = append(errs, fmt.Errorf("retention on series %q: %w", name, err))
		}
	})
	return errs
}

// retainBytes enforces the store-wide byte budget: while the durable block
// bytes exceed RetainBytes, the series holding the most block bytes loses
// its oldest block(s).
func (db *DB) retainBytes() []error {
	budget := db.opt.RetainBytes
	if budget <= 0 {
		return nil
	}
	var errs []error
	for {
		var (
			total   int64
			bigName string
			bigSh   *shard
			bigSize int64
		)
		db.forEachSeries(func(sh *shard, name string) {
			sh.mu.RLock()
			st := sh.series[name]
			var size int64
			if st != nil {
				for _, b := range st.blocks {
					size += b.bytes
				}
			}
			sh.mu.RUnlock()
			total += size
			if size > bigSize {
				bigName, bigSh, bigSize = name, sh, size
			}
		})
		if total <= budget || bigSh == nil {
			return errs
		}
		// Trim the largest series' oldest blocks until the store fits (or
		// the series runs out of whole blocks to give).
		need := total - budget
		bigSh.mu.RLock()
		st := bigSh.series[bigName]
		horizon, freed := 0, int64(0)
		if st != nil {
			f := st.base
			for _, b := range st.blocks {
				if b.start != f {
					break
				}
				f += b.n
				horizon, freed = f, freed+b.bytes
				if freed >= need {
					break
				}
			}
		}
		bigSh.mu.RUnlock()
		if horizon == 0 {
			return errs // largest series has no trimmable prefix; give up
		}
		n, err := db.trimSeries(bigSh, bigName, horizon)
		if err != nil {
			errs = append(errs, fmt.Errorf("byte retention on series %q: %w", bigName, err))
			return errs
		}
		if n == 0 {
			return errs // no progress; avoid spinning
		}
	}
}

// trimSeries deletes the whole durable blocks of one series lying entirely
// at or below horizon (sample index). The new base is written to the trim
// file before the index moves or any file dies — recovery then discards
// whatever prefix files a crash left behind as superseded — and the file
// deletes come last, after no reader can pick the blocks up from the
// index. Returns the number of blocks trimmed.
func (db *DB) trimSeries(sh *shard, name string, horizon int) (int, error) {
	sh.mu.RLock()
	st := sh.series[name]
	if st == nil {
		sh.mu.RUnlock()
		return 0, nil
	}
	newBase := st.base
	var victims []blockMeta
	f := st.base
	for _, b := range st.blocks {
		if b.start != f || b.start+b.n > horizon {
			break
		}
		f += b.n
		newBase = f
		victims = append(victims, b)
	}
	sh.mu.RUnlock()
	if len(victims) == 0 {
		return 0, nil
	}
	if err := atomicWrite(filepath.Join(db.seriesDir(name), trimFile), []byte(strconv.Itoa(newBase))); err != nil {
		return 0, err
	}
	sh.mu.Lock()
	st = sh.series[name]
	if st == nil {
		sh.mu.Unlock()
		return 0, nil
	}
	for len(victims) > 0 && (len(st.blocks) == 0 || st.blocks[0].start != victims[0].start || st.blocks[0].gen != victims[0].gen) {
		// Defensive: the block was already replaced (should not happen
		// under lifecycleMu); skip rather than delete the wrong file.
		victims = victims[1:]
	}
	st.blocks = append([]blockMeta(nil), st.blocks[len(victims):]...)
	if newBase > st.base {
		st.base = newBase
	}
	sh.mu.Unlock()
	var freed int64
	for _, b := range victims {
		if err := os.Remove(b.path); err != nil {
			return len(victims), fmt.Errorf("removing trimmed block %s: %w", b.path, err)
		}
		freed += b.bytes
	}
	db.trimmedBlocks.Add(uint64(len(victims)))
	db.trimmedBytes.Add(uint64(freed))
	return len(victims), nil
}

// DeleteSeries removes a series — and, for a raw series, every rollup
// series derived from it — from the index and from disk. The deletion is
// crash-safe: a tombstone file lands (fsynced) in the series directory
// before any content file dies, and Open finishes the removal of any
// directory still holding one. Concurrent queries over the series may
// observe ErrUnknownSeries or a read error, never partial data presented
// as complete.
func (db *DB) DeleteSeries(name string) error {
	if err := validateSeriesName(name); err != nil {
		return err
	}
	db.lifecycleMu.Lock()
	defer db.lifecycleMu.Unlock()
	targets := []string{name}
	for _, other := range db.Series() {
		if base, _, _, isRollup := parseRollupName(other); isRollup && base == name {
			targets = append(targets, other)
		}
	}
	deleted := false
	var errs []error
	for i, target := range targets {
		ok, err := db.deleteOneSeries(target)
		if err != nil {
			errs = append(errs, fmt.Errorf("deleting series %q: %w", target, err))
		}
		if ok && i == 0 {
			deleted = true
		}
	}
	if err := errors.Join(errs...); err != nil {
		return err
	}
	if !deleted {
		return fmt.Errorf("%w: %q", ErrUnknownSeries, name)
	}
	return nil
}

// deleteOneSeries removes a single series. It waits out in-flight block
// compressions first (with further cuts deferred, the pending set only
// shrinks), then unpublishes the series and removes its files while
// holding the shard lock, so no reader resolves the series mid-removal.
func (db *DB) deleteOneSeries(name string) (bool, error) {
	sh := db.shardFor(name)
	sh.mu.Lock()
	st := sh.series[name]
	if st == nil {
		sh.mu.Unlock()
		return false, nil
	}
	st.flushing++ // Append defers new cuts; the pending set only shrinks
	for {
		var inflight []chan struct{}
		for _, pb := range st.pending {
			if pb.err == nil {
				inflight = append(inflight, pb.done)
			}
		}
		if len(inflight) == 0 {
			break
		}
		sh.mu.Unlock()
		for _, done := range inflight {
			<-done
		}
		sh.mu.Lock()
	}
	// Blocks whose compression failed die with the series; clear their
	// failure marks so the store does not demand a repair of deleted data.
	for start, pb := range st.pending {
		delete(st.pending, start)
		if pb.raw != nil {
			db.putBlockBuf(pb.raw)
			pb.raw = nil
		}
		db.noteRepair()
	}
	delete(sh.series, name)
	sdir := db.seriesDir(name)
	if err := atomicWrite(filepath.Join(sdir, tombstoneFile), []byte("deleting")); err != nil {
		sh.mu.Unlock()
		return true, err
	}
	err := removeSeriesDir(sdir)
	sh.mu.Unlock()
	if err != nil {
		return true, err
	}
	db.seriesDeleted.Add(1)
	return true, nil
}

// rollupAgg tries to answer a QueryAgg from a materialized rollup tier.
// It applies when the query is tier-aligned — from and the (clamped) to
// fall on window boundaries of a configured step that divides the query
// step, the tier materializes the requested function, and the rollup
// series covers the whole range — and then delegates to QueryAgg on the
// rollup series with every parameter divided by the tier step, touching no
// raw block at all. The range may extend below the raw series' retention
// base: tiers are materialized before retention trims (retainAge caps the
// raw horizon at the rollup coverage), so month-scale history whose raw
// blocks are deleted stays answerable here. Specs are pre-sorted by
// descending step, so the coarsest satisfying tier (fewest rollup samples
// read) wins. ok reports whether a tier answered; (false, nil, nil) falls
// back to the raw path.
func (db *DB) rollupAgg(name string, from, to, step int, f AggFunc) ([]float64, bool, error) {
	if len(db.opt.Rollups) == 0 || from < 0 || from > to {
		return nil, false, nil
	}
	if _, _, _, isRollup := parseRollupName(name); isRollup {
		return nil, false, nil
	}
	_, total, ok := db.seriesBounds(name)
	if !ok {
		return nil, false, nil // raw path reports ErrUnknownSeries
	}
	// from below the raw base is NOT declined: answering history whose raw
	// blocks retention already deleted is the point of keeping tiers — the
	// materialization guard in retainAge guarantees every trimmed window
	// was rolled up first, and the rbase check below still verifies this
	// tier actually covers the range.
	toC := to
	if toC > total {
		toC = total
	}
	if toC <= from {
		return nil, false, nil
	}
	for _, sp := range db.opt.Rollups {
		t := sp.Step
		if step%t != 0 || from%t != 0 || toC%t != 0 {
			continue
		}
		if !containsAgg(sp.Aggs, f) {
			continue
		}
		rname := rollupName(name, f, t)
		rbase, rtotal, ok := db.seriesBounds(rname)
		if !ok || rbase > from/t || rtotal < toC/t {
			continue // tier not materialized far enough; try a finer one
		}
		// Every sub-window is complete (toC is tier-aligned), so
		// aggregates compose exactly: min of mins, max of maxes, sum of
		// sums, and mean of means over equal-sized windows.
		out, err := db.QueryAgg(rname, from/t, toC/t, step/t, f)
		return out, true, err
	}
	return nil, false, nil
}

func containsAgg(aggs []AggFunc, f AggFunc) bool {
	for _, a := range aggs {
		if a == f {
			return true
		}
	}
	return false
}
