package tsdb

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/codec"
)

// Streaming ingest (Options.Streaming) spreads each block's compression
// across the appends that feed it instead of paying the whole cost at
// block-cut time. The mechanism is a per-series codec.BlockStream that is
// advanced by small, latency-capped work slices on the appender's own
// goroutine, off every shard lock:
//
//   - Append buffers samples under the shard lock exactly as before, then
//     releases it and calls streamDrain, which serializes compression work
//     for the series behind a dedicated token (streamState.mu). Readers and
//     appends to other series never wait behind compression.
//   - When the tail reaches BlockSize, the drain cuts a pending block (no
//     worker-pool reservation — the appenders themselves are the workers)
//     and starts the stream on it; subsequent appends each advance it by a
//     slice sized to arrival rate and capped by Options.MaxAppendLatency.
//   - A finished block is sealed: encoded into the standard self-describing
//     block layout (byte-identical to batch compression of the same cut)
//     and handed to the worker pool for the fsync + publish step, or
//     persisted inline when the pool is disabled.
//   - Anyone who cannot wait for arrival-paced completion — a reader
//     hitting the pending block, Sync, Flush, or the next cut arriving
//     early — force-finishes the stream on its own goroutine (counted in
//     DBStats.StreamForced).
//
// Lock order: streamState.mu is taken only with no shard lock held, and
// the shard lock is taken inside drained sections as needed; never the
// reverse.
type streamState struct {
	mu sync.Mutex // drain token: serializes this series' compression work

	bs codec.BlockStream // lazily created on first cut; nil until then
	pb *pendingBlock     // block being compressed; nil when idle

	// inFlight mirrors pb != nil, readable without the token: Append's
	// fast path uses it to decide whether streamDrain is worth calling.
	inFlight atomic.Bool

	// Pacing state (guarded by mu): unitsPerPoint estimates compression
	// work per arriving sample from completed blocks; nsPerUnit estimates
	// wall cost per unit from recent slices; blockUnits counts work spent
	// on the current block.
	unitsPerPoint float64
	nsPerUnit     float64
	blockUnits    int
}

const (
	// paceHeadroom makes the paced schedule run 25% ahead of arrival, so a
	// block normally finishes before the next cut instead of exactly at it.
	paceHeadroom = 1.25
	// initUnitsPerPoint seeds pacing before the first block calibrates it.
	// An overestimate merely front-loads work (still latency-capped).
	initUnitsPerPoint = 128
	// initNsPerUnit seeds the per-unit wall-cost estimate (one CAMEO
	// impact evaluation at default options is a few hundred ns).
	initNsPerUnit = 300
	// maxStepUnits bounds one uninterrupted Advance slice so the latency
	// deadline is re-checked at fine granularity.
	maxStepUnits = 512
)

func (ss *streamState) busy() bool { return ss.inFlight.Load() }

// streamDrain performs this append's share of compression work for one
// series: an arrival-paced, latency-capped advance of the in-progress
// block, then any block cuts the grown tail allows. Called with no locks
// held; arrived is the number of samples this append buffered.
func (db *DB) streamDrain(sh *shard, name string, st *seriesState, arrived int) {
	ss := st.stream
	ss.mu.Lock()
	defer ss.mu.Unlock()
	if ss.pb != nil && ss.advance(db, arrived) {
		db.sealStream(sh, name, st)
	}
	for {
		sh.mu.Lock()
		if len(st.tail) < db.opt.BlockSize || st.flushing > 0 {
			// Nothing to cut (or a Flush is stamping this series — it
			// persists the whole tail itself; cutting now would make its
			// wait-for-in-flight loop chase a moving target).
			sh.mu.Unlock()
			return
		}
		if ss.pb != nil {
			// The next cut arrived before the current block finished
			// (arrival outpaced the pacing estimate). Finish it now — the
			// remaining work lands on this append, bounded by one block's
			// residue, and the forced counter records the pacing miss.
			sh.mu.Unlock()
			db.streamForced.Add(1)
			ss.runToCompletion()
			db.sealStream(sh, name, st)
			continue
		}
		pb := db.sliceBlockLocked(st)
		sh.mu.Unlock()
		db.beginStream(sh, pb, ss)
	}
}

// beginStream starts the per-series stream session on a freshly cut block.
// Caller holds the stream token and no shard lock.
func (db *DB) beginStream(sh *shard, pb *pendingBlock, ss *streamState) {
	if ss.bs == nil {
		bs, err := db.opt.Codec.(codec.StreamEncoder).NewBlockStream() // capability checked at Open
		if err != nil {
			db.failStreamBlock(sh, pb, err)
			return
		}
		ss.bs = bs
	}
	if err := ss.bs.Begin(pb.raw); err != nil {
		// Same contract as a failed async compression: the block stays
		// pending with its raw samples, Append surfaces the error, Flush
		// repairs (or re-reports) it.
		db.failStreamBlock(sh, pb, err)
		return
	}
	ss.pb = pb
	ss.blockUnits = 0
	ss.inFlight.Store(true)
}

// failStreamBlock marks a cut block failed before its compression could
// finish, mirroring the worker pool's failure path.
func (db *DB) failStreamBlock(sh *shard, pb *pendingBlock, err error) {
	sh.mu.Lock()
	pb.err = err
	db.noteFailure(err)
	sh.mu.Unlock()
	close(pb.done)
}

// advance performs the paced work slice for arrived newly buffered
// samples, capped by MaxAppendLatency, and reports whether the block
// finished. Caller holds the stream token.
func (ss *streamState) advance(db *DB, arrived int) bool {
	if ss.unitsPerPoint == 0 {
		ss.unitsPerPoint = initUnitsPerPoint
	}
	if ss.nsPerUnit == 0 {
		ss.nsPerUnit = initNsPerUnit
	}
	budget := int(ss.unitsPerPoint*float64(arrived)*paceHeadroom) + 1
	deadline := db.opt.MaxAppendLatency.Nanoseconds()
	var spent int64
	for budget > 0 {
		step := budget
		if step > maxStepUnits {
			step = maxStepUnits
		}
		if fit := int(float64(deadline-spent) / ss.nsPerUnit); fit < step {
			// Shrink the slice so the deadline is not overshot by a whole
			// step; always make at least minimal progress.
			step = max(fit, 16)
		}
		t0 := time.Now()
		used, done := ss.bs.Advance(step)
		el := time.Since(t0).Nanoseconds()
		ss.blockUnits += used
		if used > 0 && el > 0 {
			ss.nsPerUnit = 0.5*ss.nsPerUnit + 0.5*float64(el)/float64(used)
		}
		if done {
			return true
		}
		budget -= used
		spent += el
		if spent >= deadline {
			return false
		}
	}
	return false
}

// runToCompletion drives the current block to done, still accounting the
// units for pacing calibration. Caller holds the stream token.
func (ss *streamState) runToCompletion() {
	for {
		used, done := ss.bs.Advance(1 << 20)
		ss.blockUnits += used
		if done {
			return
		}
	}
}

// sealStream encodes the finished block, frees the stream for the next
// cut, and persists the result — on the worker pool when one exists (the
// fsync leaves the append path), inline otherwise. Caller holds the stream
// token and no shard lock; ss.pb must be finished.
func (db *DB) sealStream(sh *shard, name string, st *seriesState) {
	ss := st.stream
	pb := ss.pb
	n := len(pb.raw)
	if n > 0 && ss.blockUnits > 0 {
		ss.unitsPerPoint = 0.5*ss.unitsPerPoint + 0.5*float64(ss.blockUnits)/float64(n)
	}
	data, hdrOff, recon, err := codec.EncodeStreamBlock(db.opt.Codec, ss.bs, n)
	ss.pb = nil
	ss.inFlight.Store(false)
	if err != nil {
		db.failStreamBlock(sh, pb, err)
		return
	}
	db.streamBlocks.Add(1)
	persist := func() {
		meta, werr := db.writeBlockData(name, pb.start, data, hdrOff, db.opt.Codec.ID())
		meta.n = n
		var raw []float64
		sh.mu.Lock()
		if werr != nil {
			pb.err = werr
			db.noteFailure(werr)
		} else {
			delete(st.pending, pb.start)
			st.insertBlock(meta)
			pb.recon = recon
			raw, pb.raw = pb.raw, nil
			sh.cache.put(meta.key(), recon)
		}
		sh.mu.Unlock()
		close(pb.done)
		if raw != nil {
			db.putBlockBuf(raw)
		}
	}
	if db.pool != nil {
		// Reserve before releasing the stream token: a Sync that finds the
		// stream idle must still count this block in its drain barrier.
		db.pool.reserve()
		db.pool.submit(compressJob{fn: persist})
	} else {
		persist()
	}
}

// forceFinishStream completes the series' in-progress streaming block, if
// any, on the calling goroutine: readers that reached the pending block,
// Sync, and Flush use it, since arrival-paced completion would otherwise
// wait on future appends. Called with no locks held.
func (db *DB) forceFinishStream(sh *shard, name string, st *seriesState) {
	ss := st.stream
	if ss == nil || !ss.busy() {
		return
	}
	ss.mu.Lock()
	if ss.pb != nil {
		db.streamForced.Add(1)
		ss.runToCompletion()
		db.sealStream(sh, name, st)
	}
	ss.mu.Unlock()
}

// finishAllStreams force-finishes every series' in-progress streaming
// block (Sync's pre-drain step). Called with no locks held.
func (db *DB) finishAllStreams() {
	for _, sh := range db.shards {
		sh.mu.RLock()
		type pair struct {
			name string
			st   *seriesState
		}
		var busy []pair
		for name, st := range sh.series {
			if st.stream != nil && st.stream.busy() {
				busy = append(busy, pair{name, st})
			}
		}
		sh.mu.RUnlock()
		for _, p := range busy {
			db.forceFinishStream(sh, p.name, p.st)
		}
	}
}

// closeStreams releases every series' stream session (Close, after all
// blocks are sealed and the pool is stopped; must not race other calls).
func (db *DB) closeStreams() {
	for _, sh := range db.shards {
		for _, st := range sh.series {
			if st.stream != nil && st.stream.bs != nil {
				st.stream.bs.Close()
				st.stream.bs = nil
			}
		}
	}
}
