package tsdb

import (
	"errors"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/acf"
	"repro/internal/core"
	"repro/internal/stats"
)

func dbOptions() Options {
	return Options{
		Compression: core.Options{Lags: 24, Epsilon: 0.02},
		BlockSize:   512,
	}
}

func sensorData(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = 20 + 8*math.Sin(2*math.Pi*float64(i)/24) + 0.4*rng.NormFloat64()
	}
	return xs
}

func TestOpenValidatesOptions(t *testing.T) {
	if _, err := Open(t.TempDir(), Options{}); err == nil {
		t.Fatal("expected error for empty options")
	}
	if _, err := Open(t.TempDir(), Options{
		Compression: core.Options{Lags: 200, Epsilon: 0.01},
		BlockSize:   100,
	}); err == nil {
		t.Fatal("expected error for BlockSize below the statistic minimum")
	}
}

func TestAppendQueryRoundtrip(t *testing.T) {
	db, err := Open(t.TempDir(), dbOptions())
	if err != nil {
		t.Fatal(err)
	}
	xs := sensorData(1500, 1)
	if err := db.Append("room1", xs...); err != nil {
		t.Fatal(err)
	}
	got, err := db.Query("room1", 0, len(xs))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(xs) {
		t.Fatalf("query returned %d samples, want %d", len(got), len(xs))
	}
	// Reconstruction is lossy but each block's ACF deviation is bounded.
	for b := 0; b+512 <= len(xs); b += 512 {
		dev := stats.MAE(acf.ACF(xs[b:b+512], 24), acf.ACF(got[b:b+512], 24))
		if dev > 0.02+1e-9 {
			t.Fatalf("block at %d: ACF deviation %v exceeds bound", b, dev)
		}
	}
	// The uncompressed tail is exact.
	for i := 1024; i < 1500; i++ {
		if got[i] != xs[i] {
			t.Fatalf("tail sample %d: %v != %v", i, got[i], xs[i])
		}
	}
}

func TestQueryRange(t *testing.T) {
	db, err := Open(t.TempDir(), dbOptions())
	if err != nil {
		t.Fatal(err)
	}
	xs := sensorData(1200, 2)
	if err := db.Append("s", xs...); err != nil {
		t.Fatal(err)
	}
	// A range spanning a block boundary and part of the tail.
	got, err := db.Query("s", 500, 1100)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 600 {
		t.Fatalf("range query returned %d samples", len(got))
	}
	// Clamped and empty ranges.
	if got, _ := db.Query("s", -5, 3); len(got) != 3 {
		t.Fatalf("clamped range returned %d", len(got))
	}
	if got, _ := db.Query("s", 900, 900); got != nil {
		t.Fatal("empty range should return nil")
	}
	if got, _ := db.Query("s", 1100, 99999); len(got) != 100 {
		t.Fatal("over-long range should clamp to total")
	}
}

func TestQueryUnknownSeries(t *testing.T) {
	db, err := Open(t.TempDir(), dbOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Query("nope", 0, 10); !errors.Is(err, ErrUnknownSeries) {
		t.Fatalf("expected ErrUnknownSeries, got %v", err)
	}
	if _, err := db.SeriesStats("nope"); !errors.Is(err, ErrUnknownSeries) {
		t.Fatalf("expected ErrUnknownSeries, got %v", err)
	}
}

func TestReopenRestoresEverything(t *testing.T) {
	dir := t.TempDir()
	xs := sensorData(1300, 3)
	db, err := Open(dir, dbOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Append("a", xs...); err != nil {
		t.Fatal(err)
	}
	// Flush first: it may compress the tail into a block (lossy), so the
	// reference snapshot must be taken from the flushed state.
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	want, err := db.Query("a", 0, len(xs))
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := Open(dir, dbOptions())
	if err != nil {
		t.Fatal(err)
	}
	got, err := db2.Query("a", 0, len(xs))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("reopen lost samples: %d vs %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sample %d changed across reopen: %v vs %v", i, got[i], want[i])
		}
	}
}

func TestFlushPromotesLongTail(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, dbOptions())
	if err != nil {
		t.Fatal(err)
	}
	// 300 samples: below BlockSize but above the 4*Lags minimum.
	if err := db.Append("x", sensorData(300, 4)...); err != nil {
		t.Fatal(err)
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	st, err := db.SeriesStats("x")
	if err != nil {
		t.Fatal(err)
	}
	if st.Blocks != 1 {
		t.Fatalf("long tail should become a block, got %d blocks (tail %d)", st.Blocks, st.TailLen)
	}
	entries, err := os.ReadDir(filepath.Join(dir, "x"))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".tail") {
			t.Fatalf("tail file %s should be removed after promotion", e.Name())
		}
	}
}

func TestFlushKeepsShortTailVerbatim(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, dbOptions())
	if err != nil {
		t.Fatal(err)
	}
	short := []float64{1, 2, 3, 4, 5}
	if err := db.Append("y", short...); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := Open(dir, dbOptions())
	if err != nil {
		t.Fatal(err)
	}
	got, err := db2.Query("y", 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := range short {
		if got[i] != short[i] {
			t.Fatalf("verbatim tail corrupted at %d", i)
		}
	}
}

func TestMultipleSeries(t *testing.T) {
	db, err := Open(t.TempDir(), dbOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Append("b", sensorData(600, 5)...); err != nil {
		t.Fatal(err)
	}
	if err := db.Append("a", sensorData(700, 6)...); err != nil {
		t.Fatal(err)
	}
	names := db.Series()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("Series() = %v", names)
	}
}

func TestDiskFootprintSmallerThanRaw(t *testing.T) {
	db, err := Open(t.TempDir(), dbOptions())
	if err != nil {
		t.Fatal(err)
	}
	n := 4096
	if err := db.Append("big", sensorData(n, 7)...); err != nil {
		t.Fatal(err)
	}
	// DiskBytes covers durable blocks only; wait out the async workers.
	if err := db.Sync(); err != nil {
		t.Fatal(err)
	}
	st, err := db.SeriesStats("big")
	if err != nil {
		t.Fatal(err)
	}
	raw := int64(n * 8)
	if st.DiskBytes == 0 || st.DiskBytes >= raw/2 {
		t.Fatalf("disk %d bytes vs raw %d: compression ineffective", st.DiskBytes, raw)
	}
}

func TestCorruptBlockDetectedOnOpen(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, dbOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Append("c", sensorData(600, 8)...); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	// Corrupt the block file.
	blk := filepath.Join(dir, "c", "000000000000.blk")
	if err := os.WriteFile(blk, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, dbOptions()); err == nil {
		t.Fatal("expected error opening store with corrupt block")
	}
}
