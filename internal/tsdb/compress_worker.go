package tsdb

import "sync"

// compressJob asks a worker to compress and persist one cut block, then
// publish it into the owning series' durable block index. A job with fn
// set instead runs that closure — lifecycle passes use this to fan their
// per-series work across the same bounded pool ingest compressions share,
// so maintenance parallelism is capped by the same knob. Such closures
// must not submit pool jobs themselves (a full queue with every worker
// blocked on submit would deadlock).
type compressJob struct {
	name string
	sh   *shard
	st   *seriesState
	pb   *pendingBlock
	fn   func()
}

// workerPool runs block compressions on a fixed set of goroutines behind a
// bounded queue, and supports a drain barrier (Sync/Flush) that waits for
// every enqueued job — queued or executing — to finish.
type workerPool struct {
	db   *DB
	jobs chan compressJob
	wg   sync.WaitGroup

	mu          sync.Mutex
	cond        *sync.Cond
	outstanding int // queued + executing jobs
}

func newWorkerPool(db *DB, workers int) *workerPool {
	p := &workerPool{db: db, jobs: make(chan compressJob, 2*workers)}
	p.cond = sync.NewCond(&p.mu)
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go p.run()
	}
	return p
}

// reserve counts a cut block toward the drain barrier. Append calls it
// while still holding the shard lock, so a Sync racing the cut can never
// observe quiescence while a block is cut but not yet enqueued.
func (p *workerPool) reserve() {
	p.mu.Lock()
	p.outstanding++
	p.mu.Unlock()
}

// submit hands a reserved job to the pool, blocking (backpressure) when
// the queue is full.
func (p *workerPool) submit(j compressJob) {
	p.jobs <- j
}

// trySubmit hands a reserved job to the pool without blocking. When it
// returns false (queue full) the caller must undo its reserve with
// jobDone — the prefetch path uses this so readahead stays opportunistic
// instead of stalling the reader behind a saturated queue.
func (p *workerPool) trySubmit(j compressJob) bool {
	select {
	case p.jobs <- j:
		return true
	default:
		return false
	}
}

func (p *workerPool) run() {
	defer p.wg.Done()
	for j := range p.jobs {
		if j.fn != nil {
			j.fn()
			p.jobDone()
			continue
		}
		meta, recon, err := p.db.buildBlock(j.name, j.pb.start, j.pb.raw)
		var raw []float64
		j.sh.mu.Lock()
		if err != nil {
			// The block stays in st.pending with its raw samples; Flush
			// repairs it synchronously, and Append/Sync surface the error
			// until then.
			j.pb.err = err
			p.db.noteFailure(err)
		} else {
			delete(j.st.pending, j.pb.start)
			j.st.insertBlock(meta)
			j.pb.recon = recon
			raw, j.pb.raw = j.pb.raw, nil
			j.sh.cache.put(meta.key(), recon)
		}
		j.sh.mu.Unlock()
		close(j.pb.done)
		if raw != nil {
			// Durable: nothing references the raw samples anymore (queries
			// snapshot only the length under the shard lock), so the buffer
			// goes back to the cut pool.
			p.db.putBlockBuf(raw)
		}
		p.jobDone()
	}
}

func (p *workerPool) jobDone() {
	p.mu.Lock()
	p.outstanding--
	if p.outstanding == 0 {
		p.cond.Broadcast()
	}
	p.mu.Unlock()
}

// drain blocks until the pool has no queued or executing jobs. Jobs
// enqueued concurrently with drain extend the wait.
func (p *workerPool) drain() {
	p.mu.Lock()
	for p.outstanding > 0 {
		p.cond.Wait()
	}
	p.mu.Unlock()
}

// backlog reports (queued, executing) job counts for Stats.
func (p *workerPool) backlog() (queued, inflight int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	queued = len(p.jobs)
	inflight = p.outstanding - queued
	if inflight < 0 {
		inflight = 0
	}
	return queued, inflight
}

// stop closes the queue and waits for the workers to exit. The caller must
// guarantee no further enqueues.
func (p *workerPool) stop() {
	close(p.jobs)
	p.wg.Wait()
}
