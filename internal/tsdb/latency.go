package tsdb

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// latencyHist is a fixed-shape log-spaced latency histogram: bucket b
// counts observations with bits.Len64(ns) == b, i.e. power-of-two latency
// bands. The record path is two atomic operations and zero allocations, so
// it can sit on Append without perturbing the latency it measures;
// percentiles are derived at Stats() time. Quantile estimates report a
// band's upper bound, so they are conservative (never under-report) and
// accurate to within 2x, which is the useful resolution for a tail-latency
// health signal; the maximum is tracked exactly.
type latencyHist struct {
	buckets [65]atomic.Uint64 // bits.Len64 of the nanosecond count
	max     atomic.Uint64     // exact maximum, in ns
}

// record adds one observation. Safe for concurrent use.
func (h *latencyHist) record(d time.Duration) {
	ns := uint64(0)
	if d > 0 {
		ns = uint64(d)
	}
	h.buckets[bits.Len64(ns)].Add(1)
	for {
		cur := h.max.Load()
		if ns <= cur || h.max.CompareAndSwap(cur, ns) {
			return
		}
	}
}

// latencySnapshot is a point-in-time percentile summary.
type latencySnapshot struct {
	count    uint64
	p50, p99 time.Duration
	max      time.Duration
}

// snapshot walks the buckets once. Concurrent records may land between
// bucket loads; the summary is a consistent-enough health signal, not an
// exact census.
func (h *latencyHist) snapshot() latencySnapshot {
	var counts [65]uint64
	var total uint64
	for i := range h.buckets {
		counts[i] = h.buckets[i].Load()
		total += counts[i]
	}
	s := latencySnapshot{count: total, max: time.Duration(h.max.Load())}
	if total == 0 {
		return s
	}
	s.p50 = quantile(&counts, total, 0.50)
	s.p99 = quantile(&counts, total, 0.99)
	// A bucket's upper bound can exceed the exact maximum; clamp so the
	// summary always reads p50 <= p99 <= max.
	s.p99 = min(s.p99, s.max)
	s.p50 = min(s.p50, s.p99)
	return s
}

// quantile returns the upper bound of the bucket holding the q-quantile
// observation.
func quantile(counts *[65]uint64, total uint64, q float64) time.Duration {
	rank := uint64(q * float64(total))
	if rank >= total {
		rank = total - 1
	}
	var cum uint64
	for b, c := range counts {
		cum += c
		if cum > rank {
			if b == 0 {
				return 0
			}
			if b >= 63 {
				return time.Duration(1<<63 - 1)
			}
			return time.Duration(uint64(1)<<b - 1)
		}
	}
	return 0
}
