package tsdb

import (
	"repro/internal/codec"
	"repro/internal/metrics"
)

// RegisterMetrics registers a collector on reg exposing every DB.Stats
// field under the cameo_store_* namespace, plus the full bucket
// distributions of the append, query (cold/warm), per-codec decode,
// checkpoint-seek, and lifecycle histograms that DBStats only summarizes.
// The collector performs one Stats() pass per render, so a scrape costs
// the same as one /statusz-style snapshot; nothing is collected until a
// renderer runs.
func (db *DB) RegisterMetrics(reg *metrics.Registry) {
	reg.Collect(func(e *metrics.Emitter) {
		s := db.Stats()
		e.Gauge("cameo_store_series", "Distinct series in the store.", float64(s.Series))
		e.Gauge("cameo_store_samples", "Total samples across series, including tails.", float64(s.Samples))
		e.Counter("cameo_store_blocks_written_total", "Blocks persisted since Open.", s.BlocksWritten)
		e.Counter("cameo_store_bytes_written_total", "Compressed bytes persisted since Open.", s.BytesWritten)
		e.Gauge("cameo_store_disk_bytes", "Current durable block bytes across series.", float64(s.DiskBytes))
		e.Gauge("cameo_store_cache_shards", "Independent decoded-block caches (0 = caching off).", float64(s.CacheShards))
		e.Counter("cameo_store_cache_hits_total", "Decoded-block cache hits.", s.CacheHits)
		e.Counter("cameo_store_cache_misses_total", "Decoded-block cache misses (single-flight leaders).", s.CacheMisses)
		e.Counter("cameo_store_cache_waits_total", "Cold queries that waited on another query's in-flight decode.", s.CacheWaits)
		e.Counter("cameo_store_range_decodes_total", "Cold partial-range decodes pushed down to the codec.", s.RangeDecodes)
		e.Counter("cameo_store_agg_pushdowns_total", "Blocks aggregated straight from the compressed form.", s.AggPushdowns)
		e.Counter("cameo_store_prefetch_hits_total", "Prefetched chunks consumed by a cursor.", s.PrefetchHits)
		e.Counter("cameo_store_prefetch_wasted_total", "Prefetches completed but discarded.", s.PrefetchWasted)
		e.Counter("cameo_store_fanout_queries_total", "Multi-series scatter-gather query calls.", s.FanoutQueries)
		e.Counter("cameo_store_checkpoint_seeks_total", "Cold bit-stream block reads served via the checkpoint sidecar.", s.CheckpointSeeks)
		e.Counter("cameo_store_checkpoint_bytes_total", "Compressed stream bytes traversed by checkpoint-assisted reads.", s.CheckpointBytes)
		e.Gauge("cameo_store_queued_compressions", "Compressions waiting in the worker queue.", float64(s.Queued))
		e.Gauge("cameo_store_inflight_compressions", "Compressions currently executing.", float64(s.Inflight))
		e.Counter("cameo_store_stream_blocks_total", "Blocks compressed incrementally on the append path.", s.StreamBlocks)
		e.Counter("cameo_store_stream_forced_total", "Streaming blocks force-finished.", s.StreamForced)
		e.Counter("cameo_store_lifecycle_passes_total", "Completed Maintain passes.", s.LifecyclePasses)
		e.Counter("cameo_store_lifecycle_errors_total", "Maintain passes that reported at least one error.", s.LifecycleErrors)
		e.Counter("cameo_store_compaction_runs_total", "Block groups merged by compaction.", s.CompactionRuns)
		e.Counter("cameo_store_compacted_blocks_total", "Source blocks consumed by compaction merges.", s.CompactedBlocks)
		e.Counter("cameo_store_rollup_samples_total", "Samples appended to rollup series.", s.RollupSamples)
		e.Counter("cameo_store_trimmed_blocks_total", "Blocks deleted by retention.", s.TrimmedBlocks)
		e.Counter("cameo_store_trimmed_bytes_total", "Compressed bytes reclaimed by retention.", s.TrimmedBytes)
		e.Counter("cameo_store_series_deleted_total", "Series removed by DeleteSeries.", s.SeriesDeleted)

		e.Histogram("cameo_store_append_latency_seconds",
			"Append wall time (all modes).", 1e-9, db.appendLatency.Snapshot())
		e.HistogramL("cameo_store_query_latency_seconds",
			"Whole-query wall time by cache behavior (cold = touched disk).",
			metrics.Labels("cache", "cold"), 1e-9, db.queryCold.Snapshot())
		e.HistogramL("cameo_store_query_latency_seconds",
			"Whole-query wall time by cache behavior (cold = touched disk).",
			metrics.Labels("cache", "warm"), 1e-9, db.queryWarm.Snapshot())
		e.Histogram("cameo_store_checkpoint_seek_bytes",
			"Compressed bytes traversed per checkpoint-assisted read.", 1, db.ckptSeekBytes.Snapshot())
		e.Histogram("cameo_store_lifecycle_pass_seconds",
			"Maintain pass wall time.", 1e-9, db.lifecyclePass.Snapshot())
		for _, c := range codec.Registered() {
			h, ok := db.decodeHists[c.ID()]
			if !ok {
				continue
			}
			snap := h.Snapshot()
			if snap.Count == 0 {
				continue // keep the family to codecs this store actually decoded
			}
			e.HistogramL("cameo_store_block_decode_seconds",
				"Cold block decode wall time by codec.",
				metrics.Labels("codec", c.Name()), 1e-9, snap)
		}
	})
}
