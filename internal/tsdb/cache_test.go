package tsdb

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

// TestCacheSingleFlightMissPath parks a leader inside its fill, lets
// followers pile onto the same key, and asserts exactly one fill ran: the
// followers either waited on the leader's flight or hit the cache after it
// landed — never loaded redundantly.
func TestCacheSingleFlightMissPath(t *testing.T) {
	c := newBlockCache(4)
	started := make(chan struct{})
	release := make(chan struct{})
	var fills atomic.Int32
	const followers = 8

	var wg sync.WaitGroup
	results := make([][]float64, followers+1)
	errs := make([]error, followers+1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		results[0], errs[0] = c.getOrFill(cacheKey{path: "k"}, func() ([]float64, error) {
			fills.Add(1)
			close(started)
			<-release
			return []float64{1, 2, 3}, nil
		})
	}()
	<-started // the leader is mid-fill; the key is marked in flight
	for i := 1; i <= followers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = c.getOrFill(cacheKey{path: "k"}, func() ([]float64, error) {
				fills.Add(1)
				return nil, errors.New("redundant fill")
			})
		}(i)
	}
	close(release)
	wg.Wait()

	if got := fills.Load(); got != 1 {
		t.Fatalf("%d fills ran, want 1 (single-flight)", got)
	}
	for i, err := range errs {
		if err != nil {
			t.Fatalf("caller %d: %v", i, err)
		}
		if len(results[i]) != 3 || results[i][2] != 3 {
			t.Fatalf("caller %d got %v", i, results[i])
		}
	}
	if c.misses.Load() != 1 {
		t.Fatalf("misses = %d, want 1 (only the leader)", c.misses.Load())
	}
	if c.singleFlights.Load()+c.hits.Load() != followers {
		t.Fatalf("waits (%d) + hits (%d) != followers (%d)",
			c.singleFlights.Load(), c.hits.Load(), followers)
	}
}

// TestCacheSingleFlightErrorNotCached verifies a failed fill propagates to
// every waiter but leaves the key uncached, so the next query retries.
func TestCacheSingleFlightErrorNotCached(t *testing.T) {
	c := newBlockCache(4)
	boom := errors.New("disk gone")
	if _, err := c.getOrFill(cacheKey{path: "k"}, func() ([]float64, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	if c.len() != 0 {
		t.Fatalf("error cached: %d entries", c.len())
	}
	dense, err := c.getOrFill(cacheKey{path: "k"}, func() ([]float64, error) { return []float64{7}, nil })
	if err != nil || len(dense) != 1 {
		t.Fatalf("retry: %v, %v", dense, err)
	}
	if c.len() != 1 {
		t.Fatalf("retry not cached: %d entries", c.len())
	}
}

// TestStatsReportCacheShardsAndWaits checks the new observability fields:
// per-shard cache counts and the single-flight wait counter surface in
// DB.Stats.
func TestStatsReportCacheShardsAndWaits(t *testing.T) {
	opt := dbOptions()
	opt.Shards = 4
	opt.Workers = -1
	dir := t.TempDir()
	db, err := Open(dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Append("s", sensorData(2*opt.BlockSize, 11)...); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db, err = Open(dir, opt) // reopen: every block is cold
	if err != nil {
		t.Fatal(err)
	}
	s := db.Stats()
	if s.CacheShards != 4 {
		t.Fatalf("CacheShards = %d, want 4", s.CacheShards)
	}
	// Hammer one cold block from many goroutines with full-block queries
	// (partial queries of a range-decoding codec bypass the cache — see
	// below): exactly one loader may miss (single-flight); every other
	// query waited on that flight or hit the filled cache, and the three
	// counters account for all of them.
	const queries = 16
	var wg sync.WaitGroup
	for i := 0; i < queries; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := db.Query("s", 0, opt.BlockSize); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	s = db.Stats()
	if s.CacheMisses != 1 {
		t.Fatalf("CacheMisses = %d, want exactly 1 for one cold block", s.CacheMisses)
	}
	if s.CacheHits+s.CacheWaits != queries-1 {
		t.Fatalf("hits (%d) + waits (%d) != %d", s.CacheHits, s.CacheWaits, queries-1)
	}
	// A cold partial query of the second (uncached) block pushes the range
	// decode down to the codec instead of filling the cache, and the
	// pushdown counter surfaces it.
	if _, err := db.Query("s", opt.BlockSize, opt.BlockSize+10); err != nil {
		t.Fatal(err)
	}
	s = db.Stats()
	if s.RangeDecodes != 1 {
		t.Fatalf("RangeDecodes = %d, want 1 after a cold partial query", s.RangeDecodes)
	}
	if s.CacheMisses != 1 {
		t.Fatalf("CacheMisses = %d, want still 1 (partial decode must not fill the cache)", s.CacheMisses)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
}
