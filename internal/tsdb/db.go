// Package tsdb is an embedded time-series store with pluggable block
// compression, organized as a sharded, concurrent ingestion engine: series
// are hashed across independent shards so appends to different series never
// contend on a lock, full blocks are compressed off the append path by a
// bounded worker pool, and a per-shard LRU cache keeps recently decoded
// blocks in memory so repeated range queries skip the disk read and decode
// (cold misses for one block are single-flighted: one loader, everyone
// else waits).
//
// Block compression goes through the codec.Codec interface. The default is
// CAMEO (lossy, autocorrelation-preserving, built from Options.Compression)
// but any registered codec — the lossless XOR family (gorilla, chimp, elf)
// or the pointwise-error-bounded family (pmc, swing, simpiece) — can be
// selected per store via Options.Codec, trading fidelity for ratio per
// workload.
//
// On disk the layout is one directory per series, one compressed block
// file per BlockSize samples, plus an optional verbatim tail. Block files
// carry a small versioned header (magic, format version, codec ID, sample
// count, and — for bit-stream codecs — a checkpoint sidecar that lets cold
// partial reads seek instead of replaying the whole block), so a store may
// mix blocks written under different codecs and
// every block stays self-describing; headerless blocks written by the
// pre-codec engine are still recognized (by their CAM1 payload magic) and
// decoded as CAMEO. Every file is written with an fsynced atomic rename
// (data and directory entry reach stable storage before success), so the
// store is crash-consistent even across OS crashes and power loss, and
// always reopenable. Because async workers may persist blocks out of
// order, Open additionally recovers from crash artifacts: stale *.tmp
// files are deleted, block files orphaned beyond a hole in the sequence (a
// crash landed block k+1 but not k) are discarded so the contiguous prefix
// remains queryable, and .tail files whose start stamp predates the
// durable block frontier (their samples were since cut into a block) are
// dropped instead of replayed twice.
//
// Concurrency model: Append and Query may be called freely from any number
// of goroutines. Sync blocks until every queued compression is durable and
// surfaces the first worker error; Flush additionally persists in-memory
// tails. Close must not race with other calls. A Query that overlaps a
// block still being compressed waits for that block, so reads always
// observe the codec's reconstruction of completed blocks — never a
// raw/decoded mix that would change once the worker finishes.
package tsdb

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"net/url"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/series"
)

// Options configures a DB.
type Options struct {
	// Compression holds the CAMEO options applied to every full block
	// (Lags and Epsilon / TargetRatio required, as for core.Compress).
	// Consulted only when Codec is nil.
	Compression core.Options
	// Codec selects the block compressor. nil (the default) builds a CAMEO
	// codec from Compression, preserving the engine's original behavior;
	// any other registered codec — lossless (codec.Gorilla, codec.Chimp,
	// codec.Elf) or pointwise-lossy (codec.PMC, codec.Swing,
	// codec.SimPiece) — may be supplied instead, in which case Compression
	// is ignored. The codec governs how new blocks are written; reads
	// resolve each block's codec from its on-disk header, so reopening a
	// store under a different codec keeps every existing block readable.
	Codec codec.Codec
	// BlockSize is the number of samples per compressed block (default
	// 4096; must be at least the codec's minimum — for CAMEO the
	// streaming minimum 4x lags[*window]).
	BlockSize int
	// Shards is the number of independent lock domains series names are
	// hashed into (default 16). Appends and queries on series in different
	// shards never contend. Shards=1 restores a single global lock.
	Shards int
	// Workers sets the block-compression worker pool: 0 picks
	// runtime.GOMAXPROCS(0) workers, a positive value that many, and a
	// negative value disables the pool entirely so Append compresses
	// blocks inline (the original synchronous behavior).
	Workers int
	// CacheBlocks bounds the total decoded blocks kept in memory for
	// queries: 0 picks the default of 128 blocks, a positive value that
	// many, and a negative value disables caching. The budget is split
	// evenly across per-shard LRU caches, and all blocks of one series
	// hash to one shard — so a workload scanning a single hot series
	// should budget CacheBlocks at Shards times its working set (budgets
	// below Shards round up to one block per shard).
	CacheBlocks int
	// CheckpointInterval is the checkpoint spacing, in samples, that the
	// bit-stream codecs (gorilla, chimp, elf) record in each block's
	// sidecar so cold partial reads can seek instead of replaying the
	// whole block: 0 picks the codec default
	// (codec.DefaultCheckpointInterval, 128), a positive value
	// checkpoints every that many samples, and a negative value disables
	// checkpoints entirely (blocks stay on the version-1 layout). Smaller
	// intervals cut the replay work of a cold point read (O(overlap + k)
	// samples) at ~11 sidecar bytes per checkpoint; the compressed bit
	// stream itself is identical under every setting, so blocks written
	// under different intervals coexist and replay bit-identically. The
	// knob is ignored by codecs without checkpoint support.
	CheckpointInterval int

	// ReadAhead is the cursor prefetch depth: while a query consumes one
	// chunk, up to ReadAhead upcoming segments of the range are read and
	// decoded concurrently on the compression worker pool, so a cold
	// multi-block scan overlaps file reads and decodes with consumption
	// instead of paying them serially. The streamed samples are
	// bit-identical to the sequential path's — prefetch only moves work,
	// never changes it. 0 (the default) disables prefetch, which is the
	// right setting for single-core hosts where there is no idle CPU to
	// overlap onto; negative is an error. Ignored when Workers < 0 (no
	// pool to prefetch on).
	ReadAhead int
	// QueryFanout caps the per-call concurrency of the multi-series read
	// path (QueryMulti, QueryAggMulti, MultiCursor): at most this many
	// per-series scans run at once per call. 0 picks the worker-pool
	// width (Workers after defaulting); negative is an error.
	QueryFanout int

	// Streaming, when true, spreads each block's compression across the
	// appends that feed it (amortized ingest) instead of paying the whole
	// cost when a block cuts: every Append performs a small, latency-capped
	// slice of the in-progress block's compression on its own goroutine,
	// paced to finish slightly ahead of the next cut. Blocks written this
	// way are byte-identical to batch-compressed ones (the streaming engine
	// is a deterministic time-slicing of the batch algorithm), so every
	// reader and every recovery path treats them identically. Requires a
	// codec with a streaming encode path (CAMEO); readers that reach a
	// still-streaming block, and Sync/Flush, finish it on their own
	// goroutine rather than waiting for future appends.
	Streaming bool
	// MaxAppendLatency caps the compression work a single Append performs
	// in streaming mode: the paced work slice stops at this wall-clock
	// budget, deferring the remainder to later appends (or to the forced
	// finish at the next cut, when arrival outruns pacing). Default 1ms.
	// Ignored unless Streaming is set.
	MaxAppendLatency time.Duration

	// Retention, when positive, bounds every raw series to roughly its
	// newest Retention samples: each Maintain pass deletes the whole
	// durable blocks lying entirely below the horizon (total appended
	// samples minus Retention). Trims are recorded in a per-series trim
	// file before any file is deleted, so a crash mid-trim recovers to
	// either the pre- or the post-trim sample set. Rollup series are
	// governed by their spec's Retention instead, and raw trims never
	// outrun rollup materialization. 0 disables age retention.
	Retention int
	// RetainBytes, when positive, bounds the store's total durable block
	// bytes: each Maintain pass deletes oldest-first blocks from the
	// series holding the most block bytes until the store fits the
	// budget. 0 disables the byte budget.
	RetainBytes int64
	// CompactMinFill is the fill fraction below which adjacent durable
	// blocks become merge candidates: Maintain coalesces runs of blocks
	// each holding fewer than CompactMinFill*BlockSize samples (the
	// signature of trickle-ingest flushes) into blocks of up to BlockSize
	// samples, merging compressed payloads so queries stay bit-identical.
	// 0 picks 0.5; a negative value disables compaction.
	CompactMinFill float64
	// Rollups declares downsampled tiers: each Maintain pass materializes
	// the configured window aggregates of every raw series into ordinary
	// series named "<series>@<agg>:<step>" (via the aggregate pushdown —
	// no raw samples are materialized), and QueryAgg transparently
	// answers tier-aligned aggregate queries from the coarsest rollup
	// that covers them.
	Rollups []RollupSpec
	// LifecycleInterval, when positive, runs Maintain on a background
	// ticker between Open and Close. When zero, lifecycle jobs run only
	// when Maintain is called explicitly.
	LifecycleInterval time.Duration
}

func (o *Options) withDefaults() error {
	if o.BlockSize == 0 {
		o.BlockSize = 4096
	}
	if o.Shards == 0 {
		o.Shards = 16
	}
	if o.Shards < 0 {
		return fmt.Errorf("tsdb: Shards must be positive, got %d", o.Shards)
	}
	if o.Workers == 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.CacheBlocks == 0 {
		o.CacheBlocks = 128
	}
	if o.ReadAhead < 0 {
		return fmt.Errorf("tsdb: ReadAhead must be non-negative, got %d", o.ReadAhead)
	}
	if o.QueryFanout < 0 {
		return fmt.Errorf("tsdb: QueryFanout must be non-negative, got %d", o.QueryFanout)
	}
	if o.Codec == nil {
		if err := o.Compression.Validate(); err != nil {
			return err
		}
		o.Codec = codec.NewCAMEO(o.Compression)
	}
	o.Codec = codec.ConfigureCheckpointInterval(o.Codec, o.CheckpointInterval)
	if o.MaxAppendLatency < 0 {
		return fmt.Errorf("tsdb: MaxAppendLatency must be non-negative, got %v", o.MaxAppendLatency)
	}
	if o.Streaming {
		if _, ok := o.Codec.(codec.StreamEncoder); !ok {
			return fmt.Errorf("tsdb: Streaming requires a codec with a streaming encode path, %q has none", o.Codec.Name())
		}
		if o.MaxAppendLatency == 0 {
			o.MaxAppendLatency = time.Millisecond
		}
	}
	if o.BlockSize < o.minBlock() {
		return fmt.Errorf("tsdb: BlockSize %d below codec %q's minimum %d", o.BlockSize, o.Codec.Name(), o.minBlock())
	}
	if o.BlockSize > codec.MaxBlockSamples {
		return fmt.Errorf("tsdb: BlockSize %d above the block format's %d-sample cap", o.BlockSize, codec.MaxBlockSamples)
	}
	if o.Retention < 0 {
		return fmt.Errorf("tsdb: Retention must be non-negative, got %d", o.Retention)
	}
	if o.RetainBytes < 0 {
		return fmt.Errorf("tsdb: RetainBytes must be non-negative, got %d", o.RetainBytes)
	}
	if o.CompactMinFill == 0 {
		o.CompactMinFill = 0.5
	}
	if o.CompactMinFill > 1 {
		return fmt.Errorf("tsdb: CompactMinFill must be at most 1, got %v", o.CompactMinFill)
	}
	return o.normalizeRollups()
}

// minBlock is the smallest sample count the configured codec can encode
// (for CAMEO, the streaming minimum 4x lags, scaled by the aggregation
// window when one is set; 1 for codecs without a minimum). It answers for
// pre-withDefaults Options too — a nil Codec means the CAMEO default, so
// the minimum derives from Compression.
func (o *Options) minBlock() int {
	if o.Codec == nil {
		return codec.NewCAMEO(o.Compression).MinBlock()
	}
	return codec.MinBlock(o.Codec)
}

// ErrUnknownSeries is returned by queries on series never appended to.
var ErrUnknownSeries = errors.New("tsdb: unknown series")

// ErrBadSeriesName is returned by Append for series names that cannot be
// mapped to a directory of their own under the store root.
var ErrBadSeriesName = errors.New("tsdb: invalid series name")

// ErrInvalidRange is returned by Query, QueryInto, Cursor, and QueryAgg
// when from > to — an inverted range is a caller bug, and answering it
// with a silent empty result would hide that. (Out-of-bounds ranges in
// the right order still clamp: from < 0 reads from the start, to past the
// series end reads to the end, and from == to is a legitimate empty
// range.)
var ErrInvalidRange = errors.New("tsdb: invalid query range")

// validateSeriesName rejects the names whose escaped form would not be a
// plain child directory of the store root: url.PathEscape leaves '.'
// unescaped, so "." and ".." survive as-is and would address the root
// itself or its parent, and the empty name escapes to the empty string.
// Every other name escapes to a safe single path element.
func validateSeriesName(name string) error {
	switch name {
	case "", ".", "..":
		return fmt.Errorf("%w: %q", ErrBadSeriesName, name)
	}
	return nil
}

// ValidateSeriesName reports whether name could ever be appended to
// (ErrBadSeriesName otherwise) — the same check Append applies. Callers
// batching appends across several series (the HTTP server's write
// endpoint) use it to reject a bad batch up front, before any series in
// it has been mutated.
func ValidateSeriesName(name string) error {
	return validateSeriesName(name)
}

// DB is an embedded codec-compressed time-series store.
type DB struct {
	dir    string
	opt    Options
	shards []*shard
	pool   *workerPool // nil when compression is synchronous

	// blockBufs recycles the BlockSize-sample buffers that Append cuts
	// pending blocks into; workers return them once a block is durable, so
	// sustained ingest stops allocating one per block. readBufs recycles
	// the compressed-file byte buffers Query decodes blocks from.
	blockBufs sync.Pool
	readBufs  sync.Pool

	blocksWritten atomic.Uint64
	bytesWritten  atomic.Uint64
	rangeDecodes  atomic.Uint64 // cold partial decodes that skipped the full-block reconstruction (native or checkpointed)
	aggPushdowns  atomic.Uint64 // blocks aggregated straight from the compressed form without materializing

	// Parallel-read observability: hits are prefetched chunks a cursor
	// consumed (the overlap paid off), wasted are prefetches that completed
	// but were thrown away by an early Close or a mid-stream error, and
	// fanoutQueries counts multi-series scatter-gather calls.
	prefetchHits   atomic.Uint64
	prefetchWasted atomic.Uint64
	fanoutQueries  atomic.Uint64

	// blockBufGets/blockBufPuts audit the pooled-buffer protocol: every
	// buffer handed out by getBlockBuf must eventually come back through
	// putBlockBuf (tests assert the balance after Close — a drift is a
	// pool leak on some read or error path).
	blockBufGets atomic.Int64
	blockBufPuts atomic.Int64

	// Ingest-latency observability: every Append records its wall time in
	// the allocation-free histogram; streaming mode additionally counts
	// blocks compressed incrementally and streams force-finished (by a
	// reader, Sync/Flush, or a cut outrunning the pacing).
	appendLatency metrics.Histogram
	streamBlocks  atomic.Uint64
	streamForced  atomic.Uint64

	// Read-path latency histograms: whole-query wall time split by whether
	// the scan touched disk (cold — at least one block was read or decoded
	// off the compressed file) or was served entirely from the decoded
	// cache, pending reconstructions, and the tail (warm). decodeHists
	// times individual cold block decodes per codec, keyed by codec ID
	// (built at Open, read-only afterwards); ckptSeekBytes distributes the
	// compressed bytes traversed per checkpoint-assisted read, the per-seek
	// view of the CheckpointBytes total.
	queryCold     metrics.Histogram
	queryWarm     metrics.Histogram
	ckptSeekBytes metrics.Histogram
	lifecyclePass metrics.Histogram // Maintain pass wall time
	decodeHists   map[uint8]*metrics.Histogram

	// Checkpoint-sidecar observability: seeks counts cold reads of
	// bit-stream blocks served through the checkpoint sidecar (range and
	// window-aggregate decodes alike); bytes accumulates the compressed
	// stream bytes those reads actually traversed (the O(overlap + k)
	// guarantee, measurable).
	checkpointSeeks atomic.Uint64
	checkpointBytes atomic.Uint64

	// gen issues store-unique block revisions: every blockMeta carries one,
	// and the decoded-block cache keys on (path, gen), so a path recycled by
	// compaction or delete + re-ingest can never alias stale cached samples.
	gen atomic.Uint64

	// Lifecycle observability (see Maintain in lifecycle.go).
	compactionRuns  atomic.Uint64
	compactedBlocks atomic.Uint64
	rollupSamples   atomic.Uint64
	trimmedBlocks   atomic.Uint64
	trimmedBytes    atomic.Uint64
	seriesDeleted   atomic.Uint64
	lifecyclePasses atomic.Uint64
	lifecycleErrors atomic.Uint64

	// lifecycleMu serializes whole lifecycle operations (Maintain passes
	// and DeleteSeries): while one holds it, the durable block index only
	// changes by appending at the frontier, which is what lets compaction
	// and retention verify-and-swap snapshots safely.
	lifecycleMu   sync.Mutex
	lifecycleStop chan struct{} // closed by Close to stop the background loop
	lifecycleDone chan struct{} // closed by the loop goroutine on exit

	errMu    sync.Mutex
	failed   int   // failed block compressions awaiting repair
	firstErr error // first unrepaired failure, surfaced by Append/Sync/Flush
}

// nextGen issues a fresh block revision for cache identity.
func (db *DB) nextGen() uint64 { return db.gen.Add(1) }

// Open creates or reopens a store rooted at dir.
func Open(dir string, opt Options) (*DB, error) {
	if err := opt.withDefaults(); err != nil {
		return nil, err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	db := &DB{dir: dir, opt: opt}
	db.decodeHists = make(map[uint8]*metrics.Histogram)
	for _, c := range codec.Registered() {
		db.decodeHists[c.ID()] = &metrics.Histogram{}
	}
	db.shards = make([]*shard, opt.Shards)
	// The decoded-block budget is split evenly across per-shard caches (no
	// global cache mutex). All blocks of one series live in one shard, so a
	// single hot series sees CacheBlocks/Shards slots, not CacheBlocks —
	// size the budget for the shard count. A budget smaller than the shard
	// count rounds up to one slot per shard.
	perShard := opt.CacheBlocks / opt.Shards
	if perShard < 1 {
		perShard = 1
	}
	for i := range db.shards {
		db.shards[i] = &shard{series: make(map[string]*seriesState)}
		if opt.CacheBlocks > 0 {
			db.shards[i].cache = newBlockCache(perShard)
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		name, err := url.PathUnescape(e.Name())
		if err != nil {
			return nil, fmt.Errorf("tsdb: undecodable series directory %q: %w", e.Name(), err)
		}
		// Refuse directories that do not canonically encode a valid series
		// name: a planted "%2E%2E" decodes to "..", whose seriesDir resolves
		// to the PARENT of the store root, so loading it would read — and
		// crash-cleanup would delete — files outside the store. Legitimate
		// directories always round-trip (seriesDir writes url.PathEscape of
		// a validated name), so this rejects only tampering or corruption.
		if validateSeriesName(name) != nil || url.PathEscape(name) != e.Name() {
			return nil, fmt.Errorf("tsdb: series directory %q does not canonically encode a valid series name", e.Name())
		}
		sdir := filepath.Join(dir, e.Name())
		if _, serr := os.Stat(filepath.Join(sdir, tombstoneFile)); serr == nil {
			// A DeleteSeries crashed between writing its tombstone and
			// finishing the file removal; complete the deletion instead of
			// resurrecting a half-deleted series.
			if err := removeSeriesDir(sdir); err != nil {
				return nil, fmt.Errorf("tsdb: completing deletion of series %q: %w", name, err)
			}
			continue
		}
		st, err := db.loadSeries(name)
		if err != nil {
			return nil, fmt.Errorf("tsdb: loading series %q: %w", name, err)
		}
		db.shardFor(name).series[name] = st
	}
	if opt.Workers > 0 {
		db.pool = newWorkerPool(db, opt.Workers)
	}
	if opt.LifecycleInterval > 0 {
		db.lifecycleStop = make(chan struct{})
		db.lifecycleDone = make(chan struct{})
		go db.lifecycleLoop(opt.LifecycleInterval)
	}
	return db, nil
}

// Lifecycle bookkeeping files inside a series directory. trimFile records
// the retention base (first retained sample index) and is atomically
// written before any block below it is deleted; tombstoneFile marks a
// DeleteSeries in progress, so recovery finishes the deletion rather than
// resurrecting whatever files a crash left behind.
const (
	trimFile      = "trim"
	tombstoneFile = "tombstone"
)

// removeSeriesDir deletes a series directory in tombstone-last order:
// content files first, the tombstone second, the directory last. Whatever
// the interleaving of a crash, a surviving tombstone means the deletion
// resumes on the next Open, and a missing one means it completed.
func removeSeriesDir(sdir string) error {
	entries, err := os.ReadDir(sdir)
	if err != nil {
		return err
	}
	for _, e := range entries {
		if e.Name() == tombstoneFile {
			continue
		}
		if err := os.Remove(filepath.Join(sdir, e.Name())); err != nil {
			return err
		}
	}
	if err := os.Remove(filepath.Join(sdir, tombstoneFile)); err != nil && !errors.Is(err, fs.ErrNotExist) {
		return err
	}
	return os.Remove(sdir)
}

// seriesDir maps a series name to its directory, escaping path separators
// and other unsafe characters (names are user input; the store must never
// write outside its root). The names PathEscape cannot make safe — "", ".",
// ".." — are rejected by validateSeriesName before any directory is created.
func (db *DB) seriesDir(name string) string {
	return filepath.Join(db.dir, url.PathEscape(name))
}

// loadSeries scans a series directory, indexing its blocks, reading the
// tail file if one is still live, and cleaning up crash artifacts:
// leftover *.tmp files from interrupted atomic writes are removed, blocks
// entirely below the trim file's base or fully covered by an earlier
// block (a retention trim or compaction merge crashed before deleting its
// source files) are deleted, blocks beyond a hole in the start sequence
// (an async writer persisted a later block but crashed before an earlier
// one) are deleted so the remaining run is contiguous from the base, and
// tail files whose start stamp no longer matches the durable block
// frontier (the tail was cut into a block after the last Flush) are
// discarded rather than replayed as duplicate samples.
func (db *DB) loadSeries(name string) (*seriesState, error) {
	st := db.newSeriesState()
	sdir := db.seriesDir(name)
	entries, err := os.ReadDir(sdir)
	if err != nil {
		return nil, err
	}
	if data, err := os.ReadFile(filepath.Join(sdir, trimFile)); err == nil {
		v, perr := strconv.Atoi(strings.TrimSpace(string(data)))
		if perr != nil || v < 0 {
			return nil, fmt.Errorf("malformed trim file %q", strings.TrimSpace(string(data)))
		}
		st.base = v
	} else if !errors.Is(err, fs.ErrNotExist) {
		return nil, err
	}
	type tailFile struct {
		start int
		path  string
	}
	var tails []tailFile
	legacyTail := "" // pre-stamp "tail.raw" from the original engine
	for _, e := range entries {
		base := e.Name()
		switch {
		case base == trimFile || base == tombstoneFile:
			// Lifecycle bookkeeping, handled above / by Open.
		case base == "tail.raw":
			legacyTail = filepath.Join(sdir, base)
		case strings.HasSuffix(base, ".tmp"):
			// Leftover from an atomicWrite interrupted mid-crash.
			if err := os.Remove(filepath.Join(sdir, base)); err != nil {
				return nil, fmt.Errorf("removing stale tempfile %q: %w", base, err)
			}
		case strings.HasSuffix(base, ".blk"):
			start, err := strconv.Atoi(strings.TrimSuffix(base, ".blk"))
			if err != nil {
				return nil, fmt.Errorf("bad block name %q: %w", base, err)
			}
			path := filepath.Join(sdir, base)
			info, err := e.Info()
			if err != nil {
				return nil, err
			}
			// Index from the fixed-size header alone: Open stays O(blocks),
			// not O(samples), so reopening a large archive is a directory
			// scan, not a full decode. (Body corruption consequently
			// surfaces at Query time, not here; a mangled header still
			// fails the open.)
			n, codecID, hdrOff, err := readBlockHeader(path)
			if err != nil {
				return nil, fmt.Errorf("block %q: %w", base, err)
			}
			st.blocks = append(st.blocks, blockMeta{start: start, n: n, path: path, bytes: info.Size(), codecID: codecID, hdrOff: hdrOff, gen: db.nextGen()})
		case strings.HasSuffix(base, ".tail"):
			start, err := strconv.Atoi(strings.TrimSuffix(base, ".tail"))
			if err != nil {
				return nil, fmt.Errorf("bad tail name %q: %w", base, err)
			}
			tails = append(tails, tailFile{start: start, path: filepath.Join(sdir, base)})
		}
	}
	sort.Slice(st.blocks, func(i, j int) bool { return st.blocks[i].start < st.blocks[j].start })
	frontier := st.base
	var kept []blockMeta
scan:
	for i, b := range st.blocks {
		switch {
		case b.start+b.n <= frontier:
			// Fully covered by the retained run: below the trim base (an
			// interrupted retention delete) or inside an already-kept merged
			// block (a compaction that crashed before removing its sources).
			// Either way the samples live on in the coverage, so the file is
			// superseded.
			if err := os.Remove(b.path); err != nil {
				return nil, fmt.Errorf("removing superseded block %q: %w", b.path, err)
			}
		case b.start < frontier:
			// Straddles established coverage — no writer produces this (trims
			// and merges align to whole-block boundaries), so treat it as a
			// corrupt artifact rather than double-counting its samples.
			if err := os.Remove(b.path); err != nil {
				return nil, fmt.Errorf("removing overlapping block %q: %w", b.path, err)
			}
		case b.start == frontier:
			kept = append(kept, b)
			frontier += b.n
		default:
			// Orphaned beyond a crash hole: unreachable by contiguous
			// indexing, so discard the files and keep the prefix.
			for _, orphan := range st.blocks[i:] {
				if err := os.Remove(orphan.path); err != nil {
					return nil, fmt.Errorf("removing orphaned block %q: %w", orphan.path, err)
				}
			}
			break scan
		}
	}
	st.blocks = kept
	st.assigned = frontier
	for _, tf := range tails {
		if tf.start != st.assigned {
			// Superseded by a block cut after the Flush that wrote it.
			if err := os.Remove(tf.path); err != nil {
				return nil, fmt.Errorf("removing stale tail %q: %w", tf.path, err)
			}
			continue
		}
		data, err := os.ReadFile(tf.path)
		if err != nil {
			return nil, err
		}
		ir, err := series.DecodeIrregular(data)
		if err != nil {
			return nil, fmt.Errorf("tail %q: %w", tf.path, err)
		}
		st.tail = ir.Decompress()
		st.addTailStamp(tf.start)
	}
	if legacyTail != "" {
		// The original engine stored the tail as "tail.raw" with no start
		// stamp; it was always the live tail (appends were synchronous).
		// Migrate it to the stamped format rather than silently dropping
		// its samples — unless a stamped live tail already superseded it.
		if st.tail == nil {
			data, err := os.ReadFile(legacyTail)
			if err != nil {
				return nil, err
			}
			ir, err := series.DecodeIrregular(data)
			if err != nil {
				return nil, fmt.Errorf("tail %q: %w", legacyTail, err)
			}
			st.tail = ir.Decompress()
			if err := atomicWrite(db.tailPath(name, st.assigned), data); err != nil {
				return nil, err
			}
			st.addTailStamp(st.assigned)
		}
		if err := os.Remove(legacyTail); err != nil {
			return nil, err
		}
	}
	st.total = st.assigned + len(st.tail)
	return st, nil
}

// buildBlock compresses one block through the configured codec and
// atomically writes it with the versioned block header, returning its
// metadata and decoded reconstruction (the values a reader of the persisted
// block will observe). It performs no shard-state mutation, so workers call
// it without holding any lock.
func (db *DB) buildBlock(name string, start int, block []float64) (blockMeta, []float64, error) {
	c := db.codecForSeries(name)
	data, hdrOff, recon, err := codec.EncodeBlockRecon(c, block)
	if err != nil {
		return blockMeta{}, nil, err
	}
	meta, err := db.writeBlockData(name, start, data, hdrOff, c.ID())
	if err != nil {
		return blockMeta{}, nil, err
	}
	meta.n = len(block)
	return meta, recon, nil
}

// writeBlockData atomically persists an already-encoded block and accounts
// it, returning its metadata (sample count left for the caller to fill —
// buildBlock and the streaming seal both know it without re-parsing the
// header). Shared by the batch path (buildBlock) and the streaming seal,
// whose encode happened incrementally on the append path.
func (db *DB) writeBlockData(name string, start int, data []byte, hdrOff int, codecID uint8) (blockMeta, error) {
	path := filepath.Join(db.seriesDir(name), fmt.Sprintf("%012d.blk", start))
	if err := atomicWrite(path, data); err != nil {
		return blockMeta{}, err
	}
	db.blocksWritten.Add(1)
	db.bytesWritten.Add(uint64(len(data)))
	return blockMeta{start: start, path: path, bytes: int64(len(data)), codecID: codecID, hdrOff: hdrOff, gen: db.nextGen()}, nil
}

// Sync blocks until every queued block compression has been persisted and
// returns the first asynchronous worker error, if any. In streaming mode
// it first finishes every in-progress streaming block on the calling
// goroutine (their completion otherwise rides on future appends).
func (db *DB) Sync() error {
	if db.opt.Streaming {
		db.finishAllStreams()
	}
	if db.pool != nil {
		db.pool.drain()
	}
	return db.err()
}

// Flush drains in-flight compressions, synchronously retries any block
// whose async compression failed, then persists the in-memory tail of
// every series: long tails are compressed as a final block, short ones
// stored verbatim in a start-stamped .tail file. Tails of unaffected
// series are persisted even when another series has a failure, so one bad
// block cannot cost every series its buffered samples; once every failed
// block is repaired the store resumes normal operation. Failures across
// series are aggregated with errors.Join — an operator reading a shutdown
// log sees every series that lost its flush, not just the first.
func (db *DB) Flush() error {
	db.Sync() // drain the bulk; failures are retried below and re-checked at return
	var errs []error
	for _, sh := range db.shards {
		sh.mu.RLock()
		names := make([]string, 0, len(sh.series))
		for name := range sh.series {
			names = append(names, name)
		}
		sh.mu.RUnlock()
		for _, name := range names {
			if err := db.flushSeries(sh, name); err != nil {
				errs = append(errs, fmt.Errorf("series %q: %w", name, err))
			}
		}
	}
	if err := errors.Join(errs...); err != nil {
		return err
	}
	return db.err()
}

// flushSeries repairs failed blocks and persists the tail of one series.
// An Append racing the Sync drain above can cut a block that is still in
// flight when we get here; stamping the tail at st.assigned then would
// count that undurable block, and a crash before it lands would make
// recovery discard the tail as superseded — silently losing samples Flush
// reported durable. So before stamping, wait (without holding the shard
// lock, which the workers need to publish) until no healthy pending block
// remains; only failed blocks, which the repair below persists
// synchronously, may still be pending at the stamp. Raising st.flushing
// first makes Append defer further cuts for this series, so the pending
// set only shrinks and the wait is bounded even under sustained ingest —
// deferred samples simply accumulate in the tail, which this flush
// persists anyway.
func (db *DB) flushSeries(sh *shard, name string) error {
	sh.mu.Lock()
	st := sh.series[name]
	if st == nil {
		sh.mu.Unlock()
		return nil
	}
	st.flushing++
	cutDone := false
	for {
		var inflight []chan struct{}
		for _, pb := range st.pending {
			if pb.err == nil {
				inflight = append(inflight, pb.done)
			}
		}
		if len(inflight) > 0 {
			sh.mu.Unlock()
			if db.opt.Streaming {
				// A streaming block completes at arrival pace; with ingest
				// paused (or this flush deferring cuts) that could be never.
				// Finish it here so the waits below are bounded.
				db.forceFinishStream(sh, name, st)
			}
			for _, done := range inflight {
				<-done
			}
			sh.mu.Lock()
			continue
		}
		if !cutDone && db.pool != nil && len(st.tail) >= db.opt.BlockSize {
			// Cuts deferred while we waited can have grown the tail well
			// past BlockSize. Cut the full blocks now and compress them on
			// the pool — off the shard lock and in parallel — rather than
			// letting flushTailLocked compress one oversized block under
			// the exclusive lock, stalling every series in the shard. One
			// pass only: otherwise sustained ingest could re-extend the
			// flush each round, forever.
			cutDone = true
			var cut []*pendingBlock
			for len(st.tail) >= db.opt.BlockSize {
				cut = append(cut, db.cutBlockLocked(st))
			}
			sh.mu.Unlock()
			for _, pb := range cut {
				db.pool.submit(compressJob{name: name, sh: sh, st: st, pb: pb})
			}
			for _, pb := range cut {
				<-pb.done
			}
			sh.mu.Lock()
			continue
		}
		err := db.repairPendingLocked(sh, name, st)
		if err == nil {
			err = db.flushTailLocked(sh, name, st)
		}
		st.flushing--
		sh.mu.Unlock()
		return err
	}
}

// repairPendingLocked synchronously re-persists blocks whose async
// compression failed (their raw samples were retained); the caller holds
// the shard lock. Without this, a single failed block would leave a
// permanent hole that crash recovery resolves by discarding everything
// after it.
func (db *DB) repairPendingLocked(sh *shard, name string, st *seriesState) error {
	for start, pb := range st.pending {
		if pb.err == nil {
			continue // still in flight; flushSeries waits these out before the tail stamp
		}
		meta, recon, err := db.buildBlock(name, start, pb.raw)
		if err != nil {
			return err
		}
		delete(st.pending, start)
		st.insertBlock(meta)
		db.putBlockBuf(pb.raw)
		pb.raw = nil
		sh.cache.put(meta.key(), recon)
		db.noteRepair()
	}
	return nil
}

// tailPath names the verbatim tail file for a series; the start stamp lets
// Open distinguish a live tail from one superseded by a later block cut.
func (db *DB) tailPath(name string, start int) string {
	return filepath.Join(db.seriesDir(name), fmt.Sprintf("%012d.tail", start))
}

// pruneTailStampsLocked removes the on-disk tail files of a series whose
// coverage is fully durable: a tail stamped at start s is superseded once
// contiguous durable blocks reach past s, because the block cut at s
// covers at least the tail's samples. Files stamped at or beyond the
// frontier are kept — deleting them on the promise of an in-flight block
// would lose durable data if a crash kept that block from ever landing.
// The stamps are tracked in memory, so no directory scan is needed.
func (db *DB) pruneTailStampsLocked(name string, st *seriesState) {
	frontier := st.durableFrontier()
	keep := st.tailStamps[:0]
	for _, s := range st.tailStamps {
		if s < frontier {
			_ = os.Remove(db.tailPath(name, s))
		} else {
			keep = append(keep, s)
		}
	}
	st.tailStamps = keep
}

// flushTailLocked persists one series' tail; the caller holds the shard
// lock. The tail can still exceed BlockSize when Appends raced the flush's
// final cut round (see flushSeries); it is then compressed as a single
// oversized block, which the index supports — blocks are keyed by start
// and sample count, not assumed uniform.
func (db *DB) flushTailLocked(sh *shard, name string, st *seriesState) error {
	threshold := db.opt.minBlock()
	if threshold <= 1 {
		// A codec without an encoding minimum gains nothing from cutting a
		// partial tail into a permanent block at every Flush — under
		// trickle ingest with periodic flushes that would fragment the
		// store into tiny blocks that never coalesce. Keep partial tails
		// in the replayable verbatim file until a full block accumulates;
		// CAMEO (whose minimum reflects its statistic) still compresses
		// tails past that minimum, as the engine always has.
		threshold = db.opt.BlockSize
	}
	switch {
	case len(st.tail) == 0:
		// Nothing buffered; superseded tail files are pruned below.
	case len(st.tail) >= threshold:
		meta, recon, err := db.buildBlock(name, st.assigned, st.tail)
		if err != nil {
			return err
		}
		st.insertBlock(meta)
		st.assigned += meta.n
		st.tail = st.tail[:0]
		sh.cache.put(meta.key(), recon)
	default:
		ir := series.FromDense(st.tail)
		if err := atomicWrite(db.tailPath(name, st.assigned), ir.Encode()); err != nil {
			return err
		}
		st.addTailStamp(st.assigned)
	}
	db.pruneTailStampsLocked(name, st)
	return nil
}

// Query reconstructs samples [from, to) of a series, reading only the
// blocks that overlap the range — a thin collect-the-cursor wrapper around
// Cursor, kept for callers that want the whole range as one slice. Durable
// blocks are served from the decoded LRU cache when possible, cold blocks
// of range-decoding codecs decode only the overlap, and blocks whose
// compression is still in flight are waited for, so the result always
// reflects the compressed reconstruction.
func (db *DB) Query(name string, from, to int) ([]float64, error) {
	return db.QueryInto(name, from, to, nil)
}

// durableBlockAt looks up the durable block starting at start, if the
// series has one. Query uses it to recheck a pending block that failed:
// a concurrent Flush may have repaired the block (moving it from the
// pending set into the durable index) after the query snapshotted it.
func (db *DB) durableBlockAt(sh *shard, name string, start int) (blockMeta, bool) {
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	st := sh.series[name]
	if st == nil {
		return blockMeta{}, false
	}
	i := sort.Search(len(st.blocks), func(i int) bool { return st.blocks[i].start >= start })
	if i < len(st.blocks) && st.blocks[i].start == start {
		return st.blocks[i], true
	}
	return blockMeta{}, false
}

// getBlockBuf returns a zeroed-length buffer with BlockSize capacity for a
// pending block's raw samples; putBlockBuf recycles one after its block is
// durable.
func (db *DB) getBlockBuf() []float64 {
	db.blockBufGets.Add(1)
	if v := db.blockBufs.Get(); v != nil {
		return (*(v.(*[]float64)))[:db.opt.BlockSize]
	}
	return make([]float64, db.opt.BlockSize)
}

func (db *DB) putBlockBuf(buf []float64) {
	db.blockBufPuts.Add(1)
	if cap(buf) < db.opt.BlockSize {
		return // undersized stray; counted returned, just not recycled
	}
	db.blockBufs.Put(&buf)
}

// blockBufBalance reports outstanding pooled sample buffers (gets minus
// puts) — zero once every cursor and pending block has released its
// buffer. Tests use it to pin the no-leak invariant of the read path.
func (db *DB) blockBufBalance() int64 {
	return db.blockBufGets.Load() - db.blockBufPuts.Load()
}

// readFilePooled reads a whole file into a pooled byte buffer. The caller
// must call the release func once the contents are no longer referenced
// (codecs decode into fresh slices, so release after Decode is safe).
func (db *DB) readFilePooled(path string) (data []byte, release func(), err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	info, err := f.Stat()
	if err != nil {
		return nil, nil, err
	}
	size := int(info.Size())
	var buf []byte
	if v := db.readBufs.Get(); v != nil && cap(*(v.(*[]byte))) >= size {
		buf = (*(v.(*[]byte)))[:size]
	} else {
		buf = make([]byte, size)
	}
	if _, err := io.ReadFull(f, buf); err != nil {
		db.readBufs.Put(&buf)
		return nil, nil, err
	}
	return buf, func() { db.readBufs.Put(&buf) }, nil
}

// codecFor resolves the codec that decodes a block: the store's own codec
// when the IDs match, else the registry entry for the header's ID (the
// block was written under a different codec — the store was reopened with
// a new Options.Codec, or predates it).
func (db *DB) codecFor(meta blockMeta) (codec.Codec, error) {
	if c := db.opt.Codec; c.ID() == meta.codecID {
		return c, nil
	}
	return codec.ByID(meta.codecID)
}

// errStaleBlock reports that a block file no longer holds what a
// snapshotted blockMeta describes: compaction republished the start-named
// path with a wider merged block. Readers holding the old meta re-resolve
// against the live index (see currentBlockFor) — the merged
// reconstruction is bit-identical over the old span, so the retry serves
// exactly the same samples.
var errStaleBlock = errors.New("tsdb: block file replaced since snapshot")

// isStaleBlock reports whether a block read failed because the
// snapshotted file was replaced (compaction) or deleted (retention,
// DeleteSeries) after the snapshot was taken.
func isStaleBlock(err error) bool {
	return errors.Is(err, errStaleBlock) || errors.Is(err, fs.ErrNotExist)
}

// currentBlockFor returns the durable block currently covering absolute
// sample index idx. Readers whose snapshotted block went stale
// mid-compaction use it to find the merged replacement.
func (db *DB) currentBlockFor(sh *shard, name string, idx int) (blockMeta, bool) {
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	st := sh.series[name]
	if st == nil {
		return blockMeta{}, false
	}
	i := sort.Search(len(st.blocks), func(i int) bool { return st.blocks[i].start+st.blocks[i].n > idx })
	if i < len(st.blocks) && st.blocks[i].start <= idx {
		return st.blocks[i], true
	}
	return blockMeta{}, false
}

// openBlockPayload is the shared preamble of every cold-block read: it
// reads the block file into a pooled buffer and returns the codec payload
// past the header, plus the checkpoint sidecar when the block carries one
// (nil otherwise). The caller must invoke release once neither slice is
// referenced any longer (codecs decode into fresh or caller-owned buffers,
// so releasing after decode is safe). The header is re-parsed and checked
// against the snapshotted meta: block files are named by start index, so
// a compaction can republish this path with a merged block of different
// geometry — decoding the new payload under the old geometry must fail
// loudly (errStaleBlock) and trigger re-resolution, never misread.
func (db *DB) openBlockPayload(meta blockMeta) (payload, sidecar []byte, release func(), err error) {
	data, release, err := db.readFilePooled(meta.path)
	if err != nil {
		return nil, nil, nil, err
	}
	h, sidecar, payload, perr := codec.SplitBlock(data)
	switch {
	case perr == nil:
		if len(data)-len(payload) != meta.hdrOff || h.N != meta.n || h.CodecID != meta.codecID {
			release()
			return nil, nil, nil, fmt.Errorf("%w: %s", errStaleBlock, meta.path)
		}
	case errors.Is(perr, codec.ErrNotBlockFormat) && meta.hdrOff == 0:
		// Legacy headerless CAMEO block, still as indexed.
		payload, sidecar = data, nil
	default:
		release()
		return nil, nil, nil, fmt.Errorf("tsdb: block %s: %w", meta.path, perr)
	}
	return payload, sidecar, release, nil
}

// readBlock returns the decoded reconstruction of a durable block, serving
// it from the owning shard's LRU cache when present. Cold misses for the
// same block are single-flighted through the cache: one goroutine reads
// and decodes, concurrent queries wait for its result. cold, when non-nil,
// is raised if the loader actually ran (the calling query touched disk
// rather than the cache).
func (db *DB) readBlock(cache *blockCache, meta blockMeta, cold *atomic.Bool) ([]float64, error) {
	return cache.getOrFill(meta.key(), func() ([]float64, error) {
		if cold != nil {
			cold.Store(true)
		}
		c, err := db.codecFor(meta)
		if err != nil {
			return nil, fmt.Errorf("tsdb: block %s: %w", meta.path, err)
		}
		payload, _, release, err := db.openBlockPayload(meta)
		if err != nil {
			return nil, err
		}
		defer release()
		start := time.Now()
		dense, err := c.Decode(payload, meta.n)
		if err != nil {
			return nil, fmt.Errorf("tsdb: block %s: %w", meta.path, err)
		}
		db.observeDecode(meta.codecID, start)
		return dense, nil
	})
}

// observeDecode records one cold block decode into the per-codec decode
// histogram (a no-op for codec IDs registered after Open — the map is
// built once so the hot path stays lock-free).
func (db *DB) observeDecode(codecID uint8, start time.Time) {
	if h, ok := db.decodeHists[codecID]; ok {
		h.ObserveDuration(time.Since(start))
	}
}

// noteCheckpointSeek accounts one checkpoint-assisted cold read that
// traversed bits compressed bits: the running totals (CheckpointSeeks,
// CheckpointBytes) plus the per-seek byte distribution.
func (db *DB) noteCheckpointSeek(bits int) {
	b := uint64(bits+7) / 8
	db.checkpointSeeks.Add(1)
	db.checkpointBytes.Add(b)
	db.ckptSeekBytes.Observe(b)
}

// observeQuery records one whole-query wall time into the cold or warm
// histogram (cold: the scan read or decoded at least one block off disk).
func (db *DB) observeQuery(start time.Time, cold bool) {
	d := time.Since(start)
	if cold {
		db.queryCold.ObserveDuration(d)
	} else {
		db.queryWarm.ObserveDuration(d)
	}
}

// Stats summarizes one series.
type Stats struct {
	Samples    int
	Blocks     int
	TailLen    int
	DiskBytes  int64
	FirstIndex int // absolute index of the first retained sample (advanced by retention)
}

// SeriesStats reports sample/block/byte counts for a series. Samples
// includes in-flight and tail samples; Blocks and DiskBytes cover only
// durable blocks (call Sync first for a fully settled view).
func (db *DB) SeriesStats(name string) (Stats, error) {
	sh := db.shardFor(name)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	st := sh.series[name]
	if st == nil {
		return Stats{}, fmt.Errorf("%w: %q", ErrUnknownSeries, name)
	}
	s := Stats{Samples: st.total - st.base, Blocks: len(st.blocks), TailLen: len(st.tail), FirstIndex: st.base}
	for _, b := range st.blocks {
		s.DiskBytes += b.bytes
	}
	return s, nil
}

// LatencySummary is a conservative percentile summary of one log-bucket
// latency histogram: P50/P99 are bucket upper bounds (within 2x of the
// true quantile, never under-reporting), Max is exact.
type LatencySummary struct {
	Count uint64        // observations recorded
	P50   time.Duration // median, conservative
	P99   time.Duration // 99th percentile, conservative
	Max   time.Duration // exact worst case since Open
}

func summarize(h *metrics.Histogram) LatencySummary {
	s := h.Snapshot()
	p50, p99, max := s.Summary()
	return LatencySummary{
		Count: s.Count,
		P50:   time.Duration(p50),
		P99:   time.Duration(p99),
		Max:   time.Duration(max),
	}
}

// DBStats aggregates engine-level observability counters across all shards.
type DBStats struct {
	Series        int    // distinct series
	Samples       int    // total samples across series (incl. tails)
	BlocksWritten uint64 // blocks persisted since Open
	BytesWritten  uint64 // compressed bytes persisted since Open
	DiskBytes     int64  // current durable block bytes across series
	CacheShards   int    // independent decoded-block caches (one per shard; 0 = caching off)
	CacheHits     uint64 // decoded-block cache hits, summed across shard caches
	CacheMisses   uint64 // decoded-block cache misses (single-flight leaders), summed
	CacheWaits    uint64 // cold queries that waited on another query's in-flight decode instead of redundantly loading (single-flight followers)
	RangeDecodes  uint64 // cold partial-range decodes pushed down to the codec (no full-block reconstruction; all codecs, native or checkpointed)
	AggPushdowns  uint64 // blocks answered by QueryAgg straight from the compressed form (no samples materialized)

	// Parallel-read counters (zero unless Options.ReadAhead > 0 or the
	// multi-series query path is used).
	PrefetchHits   uint64 // prefetched chunks consumed by a cursor (overlap paid off)
	PrefetchWasted uint64 // prefetches completed but discarded (early Close or mid-stream error)
	FanoutQueries  uint64 // multi-series scatter-gather calls (QueryMulti, QueryAggMulti, MultiCursor)

	// Checkpoint-sidecar effectiveness for the bit-stream codecs.
	CheckpointSeeks uint64 // cold bit-stream block reads served via the checkpoint sidecar (range + aggregate)
	CheckpointBytes uint64 // compressed stream bytes those reads traversed (lower = seeks paying off)
	Queued          int    // compressions waiting in the worker queue
	Inflight        int    // compressions currently executing

	// Append-latency histogram (every Append, all modes; log-spaced
	// buckets, so P50/P99 are conservative upper bounds accurate to within
	// 2x; AppendMax is exact).
	Appends   uint64        // Append calls observed
	AppendP50 time.Duration // median Append wall time
	AppendP99 time.Duration // 99th-percentile Append wall time
	AppendMax time.Duration // worst Append wall time since Open

	// Read-path latency histograms. A Query/QueryInto/QueryAgg call counts
	// as cold when its scan read or decoded at least one block off the
	// compressed file, warm when served entirely from the decoded cache,
	// pending reconstructions, and the tail. DecodeByCodec times individual
	// cold block decodes, keyed by codec name; only codecs with at least one
	// observation appear. LifecyclePass times whole Maintain passes.
	QueryCold     LatencySummary
	QueryWarm     LatencySummary
	DecodeByCodec map[string]LatencySummary
	LifecyclePass LatencySummary

	// Streaming-ingest counters (zero unless Options.Streaming).
	StreamBlocks uint64 // blocks compressed incrementally on the append path
	StreamForced uint64 // streaming blocks force-finished (reader, Sync/Flush, or a cut outrunning the pacing)

	// Lifecycle counters (all zero unless compaction/retention/rollups are
	// configured or Maintain is called explicitly).
	LifecyclePasses uint64 // completed Maintain passes
	LifecycleErrors uint64 // Maintain passes that reported at least one error
	CompactionRuns  uint64 // block groups merged by compaction
	CompactedBlocks uint64 // source blocks consumed by those merges
	RollupSamples   uint64 // samples appended to rollup series
	TrimmedBlocks   uint64 // blocks deleted by retention
	TrimmedBytes    uint64 // compressed bytes reclaimed by retention
	SeriesDeleted   uint64 // series removed by DeleteSeries
}

// Stats reports engine-level totals: write volume, cache effectiveness, and
// worker-pool backlog.
func (db *DB) Stats() DBStats {
	s := DBStats{
		BlocksWritten:   db.blocksWritten.Load(),
		BytesWritten:    db.bytesWritten.Load(),
		RangeDecodes:    db.rangeDecodes.Load(),
		AggPushdowns:    db.aggPushdowns.Load(),
		PrefetchHits:    db.prefetchHits.Load(),
		PrefetchWasted:  db.prefetchWasted.Load(),
		FanoutQueries:   db.fanoutQueries.Load(),
		CheckpointSeeks: db.checkpointSeeks.Load(),
		CheckpointBytes: db.checkpointBytes.Load(),
		LifecyclePasses: db.lifecyclePasses.Load(),
		LifecycleErrors: db.lifecycleErrors.Load(),
		CompactionRuns:  db.compactionRuns.Load(),
		CompactedBlocks: db.compactedBlocks.Load(),
		RollupSamples:   db.rollupSamples.Load(),
		TrimmedBlocks:   db.trimmedBlocks.Load(),
		TrimmedBytes:    db.trimmedBytes.Load(),
		SeriesDeleted:   db.seriesDeleted.Load(),
		StreamBlocks:    db.streamBlocks.Load(),
		StreamForced:    db.streamForced.Load(),
	}
	lat := summarize(&db.appendLatency)
	s.Appends = lat.Count
	s.AppendP50, s.AppendP99, s.AppendMax = lat.P50, lat.P99, lat.Max
	s.QueryCold = summarize(&db.queryCold)
	s.QueryWarm = summarize(&db.queryWarm)
	s.LifecyclePass = summarize(&db.lifecyclePass)
	for _, c := range codec.Registered() {
		h, ok := db.decodeHists[c.ID()]
		if !ok || h.Snapshot().Count == 0 {
			continue
		}
		if s.DecodeByCodec == nil {
			s.DecodeByCodec = make(map[string]LatencySummary)
		}
		s.DecodeByCodec[c.Name()] = summarize(h)
	}
	for _, sh := range db.shards {
		sh.mu.RLock()
		for _, st := range sh.series {
			s.Series++
			s.Samples += st.total
			for _, b := range st.blocks {
				s.DiskBytes += b.bytes
			}
		}
		sh.mu.RUnlock()
		if sh.cache != nil {
			s.CacheShards++
			s.CacheHits += sh.cache.hits.Load()
			s.CacheMisses += sh.cache.misses.Load()
			s.CacheWaits += sh.cache.singleFlights.Load()
		}
	}
	if db.pool != nil {
		s.Queued, s.Inflight = db.pool.backlog()
	}
	return s
}

// cacheLen reports the total number of cached decoded blocks across all
// shard caches (for tests).
func (db *DB) cacheLen() int {
	n := 0
	for _, sh := range db.shards {
		n += sh.cache.len()
	}
	return n
}

// Series lists the stored series names in lexicographically sorted order.
// The ordering is a documented guarantee (the facade re-states it), so
// callers may binary-search or diff successive listings.
func (db *DB) Series() []string {
	var names []string
	for _, sh := range db.shards {
		sh.mu.RLock()
		for n := range sh.series {
			names = append(names, n)
		}
		sh.mu.RUnlock()
	}
	sort.Strings(names)
	return names
}

// Close stops the background lifecycle loop, flushes all tails, and stops
// the worker pool. The DB must not be used afterwards, and Close must not
// race with Append or Query.
func (db *DB) Close() error {
	if db.lifecycleStop != nil {
		close(db.lifecycleStop)
		<-db.lifecycleDone
		db.lifecycleStop = nil
	}
	err := db.Flush()
	if db.pool != nil {
		db.pool.stop()
		db.pool = nil
	}
	if db.opt.Streaming {
		db.closeStreams()
	}
	return err
}

// noteFailure records a failed block compression. The block stays in its
// series' pending set (raw samples retained) until a Flush repairs it.
func (db *DB) noteFailure(err error) {
	db.errMu.Lock()
	db.failed++
	if db.firstErr == nil {
		db.firstErr = err
	}
	db.errMu.Unlock()
}

// noteRepair marks one failed block as successfully re-persisted; once no
// failures remain the store resumes normal operation.
func (db *DB) noteRepair() {
	db.errMu.Lock()
	db.failed--
	if db.failed == 0 {
		db.firstErr = nil
	}
	db.errMu.Unlock()
}

func (db *DB) err() error {
	db.errMu.Lock()
	defer db.errMu.Unlock()
	return db.firstErr
}

// readBlockHeader reads just enough of a block file to recover its dense
// sample count, codec ID, and payload offset. Current-format blocks carry
// the versioned codec header; headerless blocks from the pre-codec engine
// are raw CAMEO irregular-series encodings (recognized by their own CAM1
// magic) whose payload starts at offset 0.
func readBlockHeader(path string) (n int, codecID uint8, hdrOff int, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, 0, err
	}
	defer f.Close()
	bufLen := codec.MaxHeaderLen
	if series.HeaderLen > bufLen {
		bufLen = series.HeaderLen
	}
	buf := make([]byte, bufLen)
	k, err := io.ReadFull(f, buf)
	if err == io.ErrUnexpectedEOF || err == io.EOF {
		err = nil // tiny block: the header may be the whole file
	}
	if err != nil {
		return 0, 0, 0, err
	}
	h, off, err := codec.ParseBlockHeader(buf[:k])
	if err == nil {
		return h.N, h.CodecID, off, nil
	}
	if !errors.Is(err, codec.ErrNotBlockFormat) {
		return 0, 0, 0, err
	}
	n, err = series.DecodeHeader(buf[:k])
	if err != nil {
		return 0, 0, 0, err
	}
	if n > codec.MaxBlockSamples {
		// Legacy headers carry their own laxer bound; hold them to the
		// block cap too, or a planted count would inflate the series
		// total and the allocations sized by it.
		return 0, 0, 0, fmt.Errorf("tsdb: legacy block claims %d samples, above the %d-sample cap", n, codec.MaxBlockSamples)
	}
	return n, codec.IDCAMEO, 0, nil
}

// atomicWrite writes via a temp file + fsync + rename + directory fsync,
// so a crash — of the process, the OS, or power — never leaves a
// half-written or empty block behind the name: the data is on stable
// storage before the rename, and the rename itself is persisted before we
// report success. (Open removes any *.tmp leftovers from crashes between
// the write and the rename.)
func atomicWrite(path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return err
	}
	dir, err := os.Open(filepath.Dir(path))
	if err != nil {
		return err
	}
	defer dir.Close()
	return dir.Sync()
}
