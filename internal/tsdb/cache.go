package tsdb

import (
	"container/list"
	"sync"
	"sync/atomic"
)

// cacheKey identifies one decoded block revision. Block files are named
// by start index, so a path alone is not a stable identity: compaction
// rewrites a path with merged content and DeleteSeries + re-ingest reuses
// the same names for entirely new data. The generation — assigned once
// per blockMeta, never reused — makes a stale cache entry unreachable the
// moment the index stops pointing at it, instead of silently serving old
// samples under a recycled path.
type cacheKey struct {
	path string
	gen  uint64
}

// blockCache is a small LRU of decoded blocks keyed by (path, generation).
// Repeated range queries over warm blocks skip the disk read and the block
// decode. Each tsdb shard owns its own blockCache, so cache traffic never
// crosses shard boundaries and there is no global cache mutex to contend
// on. A nil *blockCache is valid and caches nothing, so callers never
// branch on the CacheBlocks option.
//
// The miss path is single-flighted: concurrent cold queries for the same
// block elect one loader; the rest wait for its result instead of
// redundantly reading and decoding the same file.
type blockCache struct {
	hits          atomic.Uint64
	misses        atomic.Uint64
	singleFlights atomic.Uint64 // loads avoided by waiting on another's miss

	mu       sync.Mutex
	cap      int
	order    *list.List // front = most recently used; values are *cacheEntry
	entries  map[cacheKey]*list.Element
	inflight map[cacheKey]*flightCall // keys being loaded right now
}

type cacheEntry struct {
	key   cacheKey
	dense []float64
}

// flightCall is one in-progress cache fill; followers wait on done and
// read dense/err afterwards.
type flightCall struct {
	done  chan struct{}
	dense []float64
	err   error
}

func newBlockCache(capacity int) *blockCache {
	return &blockCache{
		cap:      capacity,
		order:    list.New(),
		entries:  make(map[cacheKey]*list.Element, capacity),
		inflight: make(map[cacheKey]*flightCall),
	}
}

// get returns the cached reconstruction for a block, if resident, marking
// it recently used. Unlike getOrFill it never loads: the cursor's partial-
// decode path peeks first and, on a miss, range-decodes without caching.
func (c *blockCache) get(key cacheKey) ([]float64, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	el, ok := c.entries[key]
	if !ok {
		c.mu.Unlock()
		return nil, false
	}
	c.order.MoveToFront(el)
	dense := el.Value.(*cacheEntry).dense
	c.mu.Unlock()
	c.hits.Add(1)
	return dense, true
}

// contains reports residency without touching recency or the hit
// counters; QueryAgg uses it to decide between folding the cached
// reconstruction and pushing the aggregate down to the codec.
func (c *blockCache) contains(key cacheKey) bool {
	if c == nil {
		return false
	}
	c.mu.Lock()
	_, ok := c.entries[key]
	c.mu.Unlock()
	return ok
}

// getOrFill returns the cached reconstruction for a block, loading it with
// fill on a miss. Concurrent misses for one key are single-flighted: the
// first caller runs fill, the rest wait for its result. Errors are returned
// to every waiter but not cached, so a transient read failure is retried by
// the next query.
func (c *blockCache) getOrFill(key cacheKey, fill func() ([]float64, error)) ([]float64, error) {
	if c == nil {
		return fill()
	}
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.order.MoveToFront(el)
		dense := el.Value.(*cacheEntry).dense
		c.mu.Unlock()
		c.hits.Add(1)
		return dense, nil
	}
	if fc, ok := c.inflight[key]; ok {
		c.mu.Unlock()
		<-fc.done
		c.singleFlights.Add(1)
		return fc.dense, fc.err
	}
	fc := &flightCall{done: make(chan struct{})}
	c.inflight[key] = fc
	c.mu.Unlock()
	c.misses.Add(1)
	fc.dense, fc.err = fill()
	c.mu.Lock()
	delete(c.inflight, key)
	if fc.err == nil {
		c.storeLocked(key, fc.dense)
	}
	c.mu.Unlock()
	close(fc.done)
	return fc.dense, fc.err
}

// put stores a block reconstruction, evicting the least recently used
// entry when over capacity. (Workers use it to prime the cache with blocks
// they just compressed, so the first query needs no disk read.)
func (c *blockCache) put(key cacheKey, dense []float64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.storeLocked(key, dense)
	c.mu.Unlock()
}

// storeLocked inserts or refreshes an entry; the caller holds c.mu.
func (c *blockCache) storeLocked(key cacheKey, dense []float64) {
	if el, ok := c.entries[key]; ok {
		el.Value.(*cacheEntry).dense = dense
		c.order.MoveToFront(el)
		return
	}
	c.entries[key] = c.order.PushFront(&cacheEntry{key: key, dense: dense})
	for c.order.Len() > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
	}
}

// len reports the number of cached blocks (for tests).
func (c *blockCache) len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
