package tsdb

import (
	"container/list"
	"sync"
	"sync/atomic"
)

// blockCache is a small LRU of decoded blocks keyed by block-file path
// (unique per series + start). Repeated range queries over warm blocks
// skip the disk read and the irregular-encoding decode. A nil *blockCache
// is valid and caches nothing, so callers never branch on the CacheBlocks
// option.
type blockCache struct {
	hits   atomic.Uint64
	misses atomic.Uint64

	mu      sync.Mutex
	cap     int
	order   *list.List // front = most recently used; values are *cacheEntry
	entries map[string]*list.Element
}

type cacheEntry struct {
	key   string
	dense []float64
}

func newBlockCache(capacity int) *blockCache {
	return &blockCache{
		cap:     capacity,
		order:   list.New(),
		entries: make(map[string]*list.Element, capacity),
	}
}

// get returns the cached reconstruction for a block, marking it most
// recently used. Callers must treat the returned slice as read-only.
func (c *blockCache) get(key string) ([]float64, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	el, ok := c.entries[key]
	if !ok {
		c.mu.Unlock()
		c.misses.Add(1)
		return nil, false
	}
	c.order.MoveToFront(el)
	dense := el.Value.(*cacheEntry).dense
	c.mu.Unlock()
	c.hits.Add(1)
	return dense, true
}

// put stores a block reconstruction, evicting the least recently used
// entry when over capacity.
func (c *blockCache) put(key string, dense []float64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		el.Value.(*cacheEntry).dense = dense
		c.order.MoveToFront(el)
		c.mu.Unlock()
		return
	}
	c.entries[key] = c.order.PushFront(&cacheEntry{key: key, dense: dense})
	for c.order.Len() > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
	}
	c.mu.Unlock()
}

// len reports the number of cached blocks (for tests).
func (c *blockCache) len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
