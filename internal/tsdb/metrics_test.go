package tsdb

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/metrics"
)

// TestQueryLatencyColdWarmSplit pins the cold/warm classification: the
// first query over durable blocks decodes off disk (cold), a repeat of
// the same range is served from the decoded cache (warm), and the decode
// itself lands in the per-codec histogram.
func TestQueryLatencyColdWarmSplit(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, dbOptions())
	if err != nil {
		t.Fatal(err)
	}
	xs := sensorData(2048, 1)
	if err := w.Append("cpu", xs...); err != nil {
		t.Fatal(err)
	}
	// Reopen so the decoded-block cache starts empty: writers cache each
	// block's reconstruction as they persist it, which would make the
	// first query warm on a freshly written store.
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	db, err := Open(dir, dbOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if _, err := db.Query("cpu", 0, 1024); err != nil { // cold: decodes blocks
		t.Fatal(err)
	}
	if _, err := db.Query("cpu", 0, 1024); err != nil { // warm: cache-resident
		t.Fatal(err)
	}
	s := db.Stats()
	if s.QueryCold.Count == 0 {
		t.Fatalf("no cold query observed: %+v", s.QueryCold)
	}
	if s.QueryWarm.Count == 0 {
		t.Fatalf("no warm query observed: %+v", s.QueryWarm)
	}
	if len(s.DecodeByCodec) == 0 {
		t.Fatal("no per-codec decode observed")
	}
	if d, ok := s.DecodeByCodec["cameo"]; !ok || d.Count == 0 {
		t.Fatalf("cameo decode histogram empty: %+v", s.DecodeByCodec)
	}
	if s.QueryCold.P50 > s.QueryCold.P99 || s.QueryCold.P99 > s.QueryCold.Max {
		t.Fatalf("cold summary ordering: %+v", s.QueryCold)
	}

	if err := db.Maintain(); err != nil {
		t.Fatal(err)
	}
	if got := db.Stats().LifecyclePass.Count; got == 0 {
		t.Fatal("Maintain pass not observed")
	}
}

// TestRegisterMetricsCoversStats renders the registry both ways and pins
// the exposition against a direct DB.Stats read: every counter family
// must carry the exact value Stats reports, and the append histogram's
// _count must equal Stats().Appends.
func TestRegisterMetricsCoversStats(t *testing.T) {
	db, err := Open(t.TempDir(), dbOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := db.Append("cpu", sensorData(1500, 2)...); err != nil {
		t.Fatal(err)
	}
	if err := db.Sync(); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Query("cpu", 0, 1500); err != nil {
		t.Fatal(err)
	}

	reg := metrics.NewRegistry()
	db.RegisterMetrics(reg)
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	s := db.Stats()

	pin := func(format string, args ...any) {
		t.Helper()
		line := fmt.Sprintf(format, args...)
		if !strings.Contains(out, line+"\n") {
			t.Fatalf("exposition missing %q\n%s", line, out)
		}
	}
	pin("cameo_store_series %d", s.Series)
	pin("cameo_store_samples %d", s.Samples)
	pin("cameo_store_blocks_written_total %d", s.BlocksWritten)
	pin("cameo_store_bytes_written_total %d", s.BytesWritten)
	pin("cameo_store_disk_bytes %d", s.DiskBytes)
	pin("cameo_store_cache_hits_total %d", s.CacheHits)
	pin("cameo_store_cache_misses_total %d", s.CacheMisses)
	pin("cameo_store_append_latency_seconds_count %d", s.Appends)
	pin(`cameo_store_query_latency_seconds_count{cache="cold"} %d`, s.QueryCold.Count)
	pin(`cameo_store_query_latency_seconds_count{cache="warm"} %d`, s.QueryWarm.Count)
	if d, ok := s.DecodeByCodec["cameo"]; ok {
		pin(`cameo_store_block_decode_seconds_count{codec="cameo"} %d`, d.Count)
	}

	var jb strings.Builder
	if err := reg.WriteJSON(&jb); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"cameo_store_samples"`, `"cameo_store_append_latency_seconds"`} {
		if !strings.Contains(jb.String(), key) {
			t.Fatalf("JSON view missing %s:\n%s", key, jb.String())
		}
	}
}
