package tsdb

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
)

// refSeries is an in-memory reference model of one series under the
// engine's semantics: appends buffer in a tail, every BlockSize chunk is
// compressed (deterministically, with the same core options) the moment it
// is cut, and flush promotes a long-enough tail to a final block. Query
// results from the real store must match this model bit-for-bit at any
// point in the schedule, because the engine guarantees queries always see
// the compressed reconstruction of cut blocks — never transient raw data.
type refSeries struct {
	opt    Options
	blocks [][]float64 // reconstructions, in order
	tail   []float64
}

func (r *refSeries) compressed(chunk []float64) []float64 {
	res, err := core.Compress(chunk, r.opt.Compression)
	if err != nil {
		panic(err)
	}
	return res.Compressed.Decompress()
}

func (r *refSeries) append(vals []float64) {
	r.tail = append(r.tail, vals...)
	for len(r.tail) >= r.opt.BlockSize {
		chunk := append([]float64(nil), r.tail[:r.opt.BlockSize]...)
		r.tail = append(r.tail[:0], r.tail[r.opt.BlockSize:]...)
		r.blocks = append(r.blocks, r.compressed(chunk))
	}
}

func (r *refSeries) flush() {
	if len(r.tail) >= r.opt.minBlock() {
		r.blocks = append(r.blocks, r.compressed(r.tail))
		r.tail = nil
	}
}

func (r *refSeries) total() int {
	n := len(r.tail)
	for _, b := range r.blocks {
		n += len(b)
	}
	return n
}

func (r *refSeries) query(from, to int) []float64 {
	if from < 0 {
		from = 0
	}
	if t := r.total(); to > t {
		to = t
	}
	if from >= to {
		return nil
	}
	var flat []float64
	for _, b := range r.blocks {
		flat = append(flat, b...)
	}
	flat = append(flat, r.tail...)
	return flat[from:to]
}

// TestDifferentialRandomSchedule replays a random append/flush/reopen/query
// schedule against the reference model and asserts every query result is
// identical, with the decoded-block cache both enabled and disabled.
func TestDifferentialRandomSchedule(t *testing.T) {
	for _, cache := range []struct {
		name   string
		blocks int
	}{
		{"cache-on", 16},
		{"cache-off", -1},
	} {
		t.Run(cache.name, func(t *testing.T) {
			opt := Options{
				Compression: core.Options{Lags: 16, Epsilon: 0.05},
				BlockSize:   256,
				Shards:      4,
				Workers:     2,
				CacheBlocks: cache.blocks,
			}
			dir := t.TempDir()
			db, err := Open(dir, opt)
			if err != nil {
				t.Fatal(err)
			}
			defer func() { db.Close() }()

			names := []string{"a", "b/c", "d d"}
			refs := map[string]*refSeries{}
			for _, n := range names {
				refs[n] = &refSeries{opt: opt}
			}
			steps := 180
			if testing.Short() {
				steps = 60
			}
			rng := rand.New(rand.NewSource(42))
			for i := 0; i < steps; i++ {
				name := names[rng.Intn(len(names))]
				ref := refs[name]
				switch op := rng.Intn(10); {
				case op < 6: // append a random chunk
					chunk := sensorData(1+rng.Intn(400), rng.Int63())
					if err := db.Append(name, chunk...); err != nil {
						t.Fatalf("step %d append: %v", i, err)
					}
					ref.append(chunk)
				case op < 7: // flush everything
					if err := db.Flush(); err != nil {
						t.Fatalf("step %d flush: %v", i, err)
					}
					for _, r := range refs {
						r.flush()
					}
				case op < 8: // close + reopen (Close flushes)
					if err := db.Close(); err != nil {
						t.Fatalf("step %d close: %v", i, err)
					}
					for _, r := range refs {
						r.flush()
					}
					if db, err = Open(dir, opt); err != nil {
						t.Fatalf("step %d reopen: %v", i, err)
					}
				default: // query a random range
					total := ref.total()
					if total == 0 {
						continue
					}
					from := rng.Intn(total) - 5
					to := from + rng.Intn(total/2+10)
					got, err := db.Query(name, from, to)
					if err != nil {
						t.Fatalf("step %d query: %v", i, err)
					}
					want := ref.query(from, to)
					if len(got) != len(want) {
						t.Fatalf("step %d %q [%d,%d): %d samples, want %d", i, name, from, to, len(got), len(want))
					}
					for j := range want {
						if got[j] != want[j] {
							t.Fatalf("step %d %q [%d,%d): sample %d = %v, want %v", i, name, from, to, j, got[j], want[j])
						}
					}
				}
			}
			// Final settle: flush, reopen, and compare the full series.
			if err := db.Close(); err != nil {
				t.Fatal(err)
			}
			for _, r := range refs {
				r.flush()
			}
			db, err = Open(dir, opt)
			if err != nil {
				t.Fatal(err)
			}
			for _, name := range names {
				ref := refs[name]
				if ref.total() == 0 {
					continue
				}
				got, err := db.Query(name, 0, ref.total())
				if err != nil {
					t.Fatal(err)
				}
				want := ref.query(0, ref.total())
				if len(got) != len(want) {
					t.Fatalf("%q after final reopen: %d samples, want %d", name, len(got), len(want))
				}
				for j := range want {
					if got[j] != want[j] {
						t.Fatalf("%q after final reopen: sample %d = %v, want %v", name, j, got[j], want[j])
					}
				}
			}
		})
	}
}

// TestStaleTempFilesRemovedOnOpen plants orphaned atomicWrite tempfiles (as
// a crash between write and rename would leave) and verifies reopen deletes
// them without disturbing the series.
func TestStaleTempFilesRemovedOnOpen(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, dbOptions())
	if err != nil {
		t.Fatal(err)
	}
	xs := sensorData(700, 31)
	if err := db.Append("s", xs...); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	sdir := filepath.Join(dir, "s")
	planted := []string{
		filepath.Join(sdir, "000000000512.blk.tmp"),
		filepath.Join(sdir, "tail.raw.tmp"),
	}
	for _, p := range planted {
		if err := os.WriteFile(p, []byte("half-written"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	db2, err := Open(dir, dbOptions())
	if err != nil {
		t.Fatalf("reopen with stale tempfiles: %v", err)
	}
	defer db2.Close()
	for _, p := range planted {
		if _, err := os.Stat(p); !os.IsNotExist(err) {
			t.Fatalf("stale tempfile %s survived reopen", p)
		}
	}
	st, err := db2.SeriesStats("s")
	if err != nil {
		t.Fatal(err)
	}
	if st.Samples != len(xs) {
		t.Fatalf("cleanup disturbed the series: %d samples, want %d", st.Samples, len(xs))
	}
}

// TestOrphanedBlocksDiscardedOnOpen simulates a crash where an async worker
// persisted block k+1 but not block k: reopen must drop the unreachable
// later blocks and keep the contiguous prefix queryable.
func TestOrphanedBlocksDiscardedOnOpen(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, dbOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Append("s", sensorData(4*512, 33)...); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	// Punch a hole: delete the second of four blocks.
	victim := filepath.Join(dir, "s", fmt.Sprintf("%012d.blk", 512))
	if err := os.Remove(victim); err != nil {
		t.Fatal(err)
	}
	db2, err := Open(dir, dbOptions())
	if err != nil {
		t.Fatalf("reopen with block hole: %v", err)
	}
	defer db2.Close()
	st, err := db2.SeriesStats("s")
	if err != nil {
		t.Fatal(err)
	}
	if st.Blocks != 1 || st.Samples != 512 {
		t.Fatalf("expected the contiguous prefix (1 block, 512 samples), got %d blocks, %d samples", st.Blocks, st.Samples)
	}
	for _, start := range []int{2 * 512, 3 * 512} {
		if _, err := os.Stat(filepath.Join(dir, "s", fmt.Sprintf("%012d.blk", start))); !os.IsNotExist(err) {
			t.Fatalf("orphaned block at %d not removed", start)
		}
	}
	if got, err := db2.Query("s", 0, 512); err != nil || len(got) != 512 {
		t.Fatalf("prefix query after recovery: %d samples, err %v", len(got), err)
	}
}

// TestStaleTailNotReplayedOnOpen simulates a crash after a Flush-written
// tail was absorbed into a durable block but before the next Flush pruned
// the tail file: reopen must detect the stale start stamp and discard the
// file rather than replay its samples as duplicates.
func TestStaleTailNotReplayedOnOpen(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, dbOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Short tail, flushed verbatim: 000000000000.tail holds 50 samples.
	if err := db.Append("s", sensorData(50, 41)...); err != nil {
		t.Fatal(err)
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	tailFile := filepath.Join(dir, "s", "000000000000.tail")
	if _, err := os.Stat(tailFile); err != nil {
		t.Fatalf("expected flushed tail file: %v", err)
	}
	// More appends cut a 512-sample block covering those 50 samples; Sync
	// makes it durable but — unlike Flush — never prunes the tail file.
	// Skipping Close simulates the crash.
	if err := db.Append("s", sensorData(462, 42)...); err != nil {
		t.Fatal(err)
	}
	if err := db.Sync(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(tailFile); err != nil {
		t.Fatalf("precondition: stale tail file should still exist pre-crash: %v", err)
	}

	db2, err := Open(dir, dbOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	st, err := db2.SeriesStats("s")
	if err != nil {
		t.Fatal(err)
	}
	if st.Samples != 512 || st.TailLen != 0 {
		t.Fatalf("stale tail replayed: %d samples (tail %d), want exactly 512", st.Samples, st.TailLen)
	}
	if _, err := os.Stat(tailFile); !os.IsNotExist(err) {
		t.Fatal("stale tail file not removed on reopen")
	}
}

// TestPruneTailFilesRespectsDurableFrontier checks the rule that protects
// durable data when Flush races in-flight compressions: a tail file may
// only be deleted once contiguous durable blocks reach past its stamp —
// never on the promise of a block that is still pending.
func TestPruneTailFilesRespectsDurableFrontier(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, dbOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := db.Append("s", 1, 2, 3); err != nil {
		t.Fatal(err)
	}
	sdir := filepath.Join(dir, "s")
	old := filepath.Join(sdir, "000000000000.tail")
	cur := filepath.Join(sdir, "000000000512.tail")
	for _, p := range []string{old, cur} {
		if err := os.WriteFile(p, []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	sh := db.shardFor("s")
	sh.mu.Lock()
	st := sh.series["s"]
	st.tailStamps = []int{0, 512}
	// Frontier 0 (no durable blocks — the covering block is still in
	// flight): both files must survive; the old one is the only durable
	// copy of its samples.
	db.pruneTailStampsLocked("s", st)
	sh.mu.Unlock()
	for _, p := range []string{old, cur} {
		if _, err := os.Stat(p); err != nil {
			t.Fatalf("prune at frontier 0 removed %s", p)
		}
	}
	// Frontier 512 (block durable): the superseded file goes, the live
	// tail stays.
	sh.mu.Lock()
	st.blocks = append(st.blocks, blockMeta{start: 0, n: 512})
	db.pruneTailStampsLocked("s", st)
	st.blocks = st.blocks[:0]
	sh.mu.Unlock()
	if _, err := os.Stat(old); !os.IsNotExist(err) {
		t.Fatal("superseded tail not pruned at frontier 512")
	}
	if _, err := os.Stat(cur); err != nil {
		t.Fatal("live tail wrongly pruned")
	}
}

// TestFailedCompressionRepairedByFlush injects a write failure into an
// async block compression (the series directory is replaced by a file),
// then checks the contract: Append fails fast while the failure is
// outstanding, Flush repairs the block synchronously once the fault is
// cleared, and no samples are lost.
func TestFailedCompressionRepairedByFlush(t *testing.T) {
	opt := dbOptions()
	opt.Workers = 1
	dir := t.TempDir()
	db, err := Open(dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	xs := sensorData(600, 51)
	if err := db.Append("s", xs[:500]...); err != nil { // buffers only
		t.Fatal(err)
	}
	// Break the series directory so the worker's block write fails
	// (chmod tricks don't work for root, so replace the dir with a file).
	sdir := filepath.Join(dir, "s")
	if err := os.RemoveAll(sdir); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(sdir, []byte("not a dir"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := db.Append("s", xs[500:]...); err != nil { // cuts the block
		t.Fatal(err)
	}
	if err := db.Sync(); err == nil {
		t.Fatal("Sync should surface the failed compression")
	}
	if err := db.Append("s", 1.0); err == nil {
		t.Fatal("Append should fail fast while a failure is outstanding")
	}
	// Clear the fault and repair via Flush.
	if err := os.Remove(sdir); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(sdir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := db.Flush(); err != nil {
		t.Fatalf("Flush should repair the failed block: %v", err)
	}
	if err := db.Sync(); err != nil {
		t.Fatalf("error should clear once repaired: %v", err)
	}
	st, err := db.SeriesStats("s")
	if err != nil {
		t.Fatal(err)
	}
	if st.Samples != 600 {
		t.Fatalf("samples lost across failure+repair: %d, want 600", st.Samples)
	}
	if got, err := db.Query("s", 0, 600); err != nil || len(got) != 600 {
		t.Fatalf("query after repair: len=%d err=%v", len(got), err)
	}
	// The repaired store must also reopen cleanly.
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := Open(dir, dbOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if st, err := db2.SeriesStats("s"); err != nil || st.Samples != 600 {
		t.Fatalf("reopen after repair: %+v, %v", st, err)
	}
}

// TestLegacyTailRawMigratedOnOpen plants the original engine's unstamped
// tail.raw file and verifies reopen migrates it to the stamped format
// instead of silently dropping its samples.
func TestLegacyTailRawMigratedOnOpen(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, dbOptions())
	if err != nil {
		t.Fatal(err)
	}
	xs := sensorData(600, 52) // one 512 block + 88-sample tail
	if err := db.Append("s", xs...); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	// Rewrite the stamped tail as the legacy layout.
	sdir := filepath.Join(dir, "s")
	stamped := filepath.Join(sdir, "000000000512.tail")
	data, err := os.ReadFile(stamped)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Rename(stamped, filepath.Join(sdir, "tail.raw")); err != nil {
		t.Fatal(err)
	}
	db2, err := Open(dir, dbOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	st, err := db2.SeriesStats("s")
	if err != nil {
		t.Fatal(err)
	}
	if st.Samples != 600 || st.TailLen != 88 {
		t.Fatalf("legacy tail dropped: %d samples (tail %d), want 600 (88)", st.Samples, st.TailLen)
	}
	if _, err := os.Stat(filepath.Join(sdir, "tail.raw")); !os.IsNotExist(err) {
		t.Fatal("legacy tail.raw not removed after migration")
	}
	migrated, err := os.ReadFile(stamped)
	if err != nil {
		t.Fatalf("stamped tail not recreated: %v", err)
	}
	if string(migrated) != string(data) {
		t.Fatal("migration altered the tail bytes")
	}
}

// TestCacheEvictionAndStats exercises the LRU bound and the hit/miss
// counters surfaced through DB.Stats.
func TestCacheEvictionAndStats(t *testing.T) {
	opt := dbOptions()
	opt.CacheBlocks = 2
	opt.Shards = 1   // one shard so the per-shard cache budget is exactly 2
	opt.Workers = -1 // deterministic synchronous writes
	db, err := Open(t.TempDir(), opt)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := db.Append("s", sensorData(4*512, 35)...); err != nil {
		t.Fatal(err)
	}
	if db.cacheLen() != 2 {
		t.Fatalf("cache holds %d blocks, cap 2", db.cacheLen())
	}
	// Blocks 0 and 1 were evicted by 2 and 3: querying them misses, then
	// an immediate re-query hits.
	if _, err := db.Query("s", 0, 512); err != nil {
		t.Fatal(err)
	}
	before := db.Stats()
	if _, err := db.Query("s", 0, 512); err != nil {
		t.Fatal(err)
	}
	after := db.Stats()
	if after.CacheHits != before.CacheHits+1 {
		t.Fatalf("re-query did not hit the cache: hits %d -> %d", before.CacheHits, after.CacheHits)
	}
	if after.BlocksWritten != 4 {
		t.Fatalf("BlocksWritten = %d, want 4", after.BlocksWritten)
	}
	if after.DiskBytes == 0 || after.BytesWritten == 0 {
		t.Fatalf("byte counters empty: %+v", after)
	}
}
