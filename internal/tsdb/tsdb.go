// Package tsdb is a small embedded time-series store built on CAMEO block
// compression: regularly sampled series are appended in memory, compressed
// block-by-block under an ACF-deviation guarantee, and persisted in the
// compact binary encoding. It demonstrates how the paper's compressor slots
// into the storage layer of a time series database (the deployment §1
// motivates: IoT archives where both bytes and analytics fidelity matter).
//
// The store is deliberately minimal — one directory per series, one file
// per compressed block, an in-memory tail — but is crash-consistent
// (blocks are written with atomic renames) and reopenable.
package tsdb

import (
	"errors"
	"fmt"
	"net/url"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/series"
)

// Options configures a DB.
type Options struct {
	// Compression holds the CAMEO options applied to every full block
	// (Lags and Epsilon / TargetRatio required, as for core.Compress).
	Compression core.Options
	// BlockSize is the number of samples per compressed block
	// (default 4096; must satisfy the streaming minimum 4x lags[*window]).
	BlockSize int
}

func (o *Options) withDefaults() error {
	if o.BlockSize == 0 {
		o.BlockSize = 4096
	}
	if err := o.Compression.Validate(); err != nil {
		return err
	}
	minBlock := 4 * o.Compression.Lags
	if o.Compression.AggWindow >= 2 {
		minBlock *= o.Compression.AggWindow
	}
	if o.BlockSize < minBlock {
		return fmt.Errorf("tsdb: BlockSize %d below the statistic's minimum %d", o.BlockSize, minBlock)
	}
	return nil
}

// ErrUnknownSeries is returned by queries on series never appended to.
var ErrUnknownSeries = errors.New("tsdb: unknown series")

// DB is an embedded CAMEO-compressed time-series store.
type DB struct {
	dir string
	opt Options

	mu     sync.RWMutex
	series map[string]*seriesState
}

// blockMeta indexes one persisted block.
type blockMeta struct {
	start int // first sample index
	n     int // samples covered
	path  string
}

// seriesState is the in-memory view of one series.
type seriesState struct {
	blocks []blockMeta // sorted by start
	tail   []float64   // samples not yet compressed
	total  int         // blocks' samples + tail
}

// Open creates or reopens a store rooted at dir.
func Open(dir string, opt Options) (*DB, error) {
	if err := opt.withDefaults(); err != nil {
		return nil, err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	db := &DB{dir: dir, opt: opt, series: make(map[string]*seriesState)}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		name, err := url.PathUnescape(e.Name())
		if err != nil {
			return nil, fmt.Errorf("tsdb: undecodable series directory %q: %w", e.Name(), err)
		}
		st, err := db.loadSeries(name)
		if err != nil {
			return nil, fmt.Errorf("tsdb: loading series %q: %w", name, err)
		}
		db.series[name] = st
	}
	return db, nil
}

// seriesDir maps a series name to its directory, escaping path separators
// and other unsafe characters (names are user input; the store must never
// write outside its root).
func (db *DB) seriesDir(name string) string {
	return filepath.Join(db.dir, url.PathEscape(name))
}

// loadSeries scans a series directory, indexing its blocks and reading the
// tail file if present.
func (db *DB) loadSeries(name string) (*seriesState, error) {
	st := &seriesState{}
	sdir := db.seriesDir(name)
	entries, err := os.ReadDir(sdir)
	if err != nil {
		return nil, err
	}
	for _, e := range entries {
		base := e.Name()
		switch {
		case strings.HasSuffix(base, ".blk"):
			start, err := strconv.Atoi(strings.TrimSuffix(base, ".blk"))
			if err != nil {
				return nil, fmt.Errorf("bad block name %q: %w", base, err)
			}
			data, err := os.ReadFile(filepath.Join(sdir, base))
			if err != nil {
				return nil, err
			}
			ir, err := series.DecodeIrregular(data)
			if err != nil {
				return nil, fmt.Errorf("block %q: %w", base, err)
			}
			st.blocks = append(st.blocks, blockMeta{start: start, n: ir.N, path: filepath.Join(sdir, base)})
		case base == "tail.raw":
			data, err := os.ReadFile(filepath.Join(sdir, base))
			if err != nil {
				return nil, err
			}
			ir, err := series.DecodeIrregular(data)
			if err != nil {
				return nil, fmt.Errorf("tail: %w", err)
			}
			st.tail = ir.Decompress()
		}
	}
	sort.Slice(st.blocks, func(i, j int) bool { return st.blocks[i].start < st.blocks[j].start })
	for i, b := range st.blocks {
		expect := 0
		if i > 0 {
			expect = st.blocks[i-1].start + st.blocks[i-1].n
		}
		if b.start != expect {
			return nil, fmt.Errorf("block gap: have start %d, want %d", b.start, expect)
		}
		st.total += b.n
	}
	st.total += len(st.tail)
	return st, nil
}

// Append adds samples to a series, compressing and persisting every
// completed block.
func (db *DB) Append(name string, values ...float64) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	st := db.series[name]
	if st == nil {
		st = &seriesState{}
		if err := os.MkdirAll(db.seriesDir(name), 0o755); err != nil {
			return err
		}
		db.series[name] = st
	}
	st.tail = append(st.tail, values...)
	st.total += len(values)
	for len(st.tail) >= db.opt.BlockSize {
		if err := db.persistBlock(name, st, st.tail[:db.opt.BlockSize], false); err != nil {
			return err
		}
		st.tail = append(st.tail[:0], st.tail[db.opt.BlockSize:]...)
	}
	return nil
}

// persistBlock compresses (unless verbatim) and atomically writes a block.
func (db *DB) persistBlock(name string, st *seriesState, block []float64, verbatim bool) error {
	start := 0
	if k := len(st.blocks); k > 0 {
		start = st.blocks[k-1].start + st.blocks[k-1].n
	}
	var ir *series.Irregular
	if verbatim {
		ir = series.FromDense(block)
	} else {
		res, err := core.Compress(block, db.opt.Compression)
		if err != nil {
			return err
		}
		ir = res.Compressed
	}
	path := filepath.Join(db.seriesDir(name), fmt.Sprintf("%012d.blk", start))
	if err := atomicWrite(path, ir.Encode()); err != nil {
		return err
	}
	st.blocks = append(st.blocks, blockMeta{start: start, n: ir.N, path: path})
	return nil
}

// Flush persists the in-memory tail of every series: long tails are
// compressed as a final block, short ones stored verbatim in tail.raw.
func (db *DB) Flush() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	for name, st := range db.series {
		if len(st.tail) == 0 {
			// Remove a stale tail file if the tail was promoted to a block.
			_ = os.Remove(filepath.Join(db.seriesDir(name), "tail.raw"))
			continue
		}
		minBlock := 4 * db.opt.Compression.Lags
		if db.opt.Compression.AggWindow >= 2 {
			minBlock *= db.opt.Compression.AggWindow
		}
		if len(st.tail) >= minBlock {
			if err := db.persistBlock(name, st, st.tail, false); err != nil {
				return err
			}
			st.tail = st.tail[:0]
			_ = os.Remove(filepath.Join(db.seriesDir(name), "tail.raw"))
			continue
		}
		ir := series.FromDense(st.tail)
		if err := atomicWrite(filepath.Join(db.seriesDir(name), "tail.raw"), ir.Encode()); err != nil {
			return err
		}
	}
	return nil
}

// Query reconstructs samples [from, to) of a series, reading only the
// blocks that overlap the range.
func (db *DB) Query(name string, from, to int) ([]float64, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	st := db.series[name]
	if st == nil {
		return nil, fmt.Errorf("%w: %q", ErrUnknownSeries, name)
	}
	if from < 0 {
		from = 0
	}
	if to > st.total {
		to = st.total
	}
	if from >= to {
		return nil, nil
	}
	out := make([]float64, 0, to-from)
	for _, b := range st.blocks {
		if b.start+b.n <= from || b.start >= to {
			continue
		}
		data, err := os.ReadFile(b.path)
		if err != nil {
			return nil, err
		}
		ir, err := series.DecodeIrregular(data)
		if err != nil {
			return nil, fmt.Errorf("tsdb: block %s: %w", b.path, err)
		}
		dense := ir.Decompress()
		lo := max(from, b.start) - b.start
		hi := min(to, b.start+b.n) - b.start
		out = append(out, dense[lo:hi]...)
	}
	tailStart := st.total - len(st.tail)
	if to > tailStart {
		lo := max(from, tailStart) - tailStart
		hi := to - tailStart
		out = append(out, st.tail[lo:hi]...)
	}
	return out, nil
}

// Stats summarizes one series.
type Stats struct {
	Samples   int
	Blocks    int
	TailLen   int
	DiskBytes int64
}

// SeriesStats reports sample/block/byte counts for a series.
func (db *DB) SeriesStats(name string) (Stats, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	st := db.series[name]
	if st == nil {
		return Stats{}, fmt.Errorf("%w: %q", ErrUnknownSeries, name)
	}
	s := Stats{Samples: st.total, Blocks: len(st.blocks), TailLen: len(st.tail)}
	for _, b := range st.blocks {
		if fi, err := os.Stat(b.path); err == nil {
			s.DiskBytes += fi.Size()
		}
	}
	return s, nil
}

// Series lists the stored series names, sorted.
func (db *DB) Series() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	names := make([]string, 0, len(db.series))
	for n := range db.series {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Close flushes all tails. The DB must not be used afterwards.
func (db *DB) Close() error { return db.Flush() }

// atomicWrite writes via a temp file + rename so crashes never leave a
// half-written block.
func atomicWrite(path string, data []byte) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
