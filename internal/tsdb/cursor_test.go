package tsdb

import (
	"errors"
	"math"
	"sync/atomic"
	"testing"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/series"
)

// cursorCodecs enumerates one encode-capable instance of every registered
// codec for the read-path differential tests.
func cursorCodecs() map[string]codec.Codec {
	return map[string]codec.Codec{
		"cameo":    codec.NewCAMEO(core.Options{Lags: 24, Epsilon: 0.05}),
		"gorilla":  codec.Gorilla{},
		"chimp":    codec.Chimp{},
		"elf":      codec.Elf{},
		"pmc":      codec.PMC{},
		"swing":    codec.Swing{},
		"simpiece": codec.SimPiece{},
	}
}

// collect drains a cursor into one slice, failing the test on a cursor
// error.
func collect(t *testing.T, cur *Cursor) []float64 {
	t.Helper()
	var out []float64
	for {
		chunk, ok := cur.Next()
		if !ok {
			break
		}
		out = append(out, chunk...)
	}
	if err := cur.Err(); err != nil {
		t.Fatalf("cursor: %v", err)
	}
	return out
}

// TestCursorMatchesQueryAllCodecs is the read-path differential: across
// every codec, warm and cold, the cursor-collected output, QueryInto, and
// the legacy slice Query agree bit for bit over a sweep of ranges that
// cross block boundaries and reach into the tail.
func TestCursorMatchesQueryAllCodecs(t *testing.T) {
	for name, c := range cursorCodecs() {
		t.Run(name, func(t *testing.T) {
			opt := dbOptions()
			opt.Codec = c
			dir := t.TempDir()
			db, err := Open(dir, opt)
			if err != nil {
				t.Fatal(err)
			}
			total := 3*opt.BlockSize + 100 // 3 durable blocks + verbatim tail
			if err := db.Append("s", sensorData(total, 5)...); err != nil {
				t.Fatal(err)
			}
			if err := db.Sync(); err != nil {
				t.Fatal(err)
			}
			ranges := [][2]int{
				{0, total}, {0, 1}, {total - 1, total}, {100, opt.BlockSize + 100},
				{opt.BlockSize - 1, opt.BlockSize + 1}, {3 * opt.BlockSize, total},
				{3*opt.BlockSize - 50, total - 20}, {700, 800},
			}
			check := func(stage string) {
				t.Helper()
				for _, r := range ranges {
					want, err := db.Query("s", r[0], r[1])
					if err != nil {
						t.Fatalf("%s: Query(%d,%d): %v", stage, r[0], r[1], err)
					}
					cur, err := db.Cursor("s", r[0], r[1])
					if err != nil {
						t.Fatalf("%s: Cursor(%d,%d): %v", stage, r[0], r[1], err)
					}
					got := collect(t, cur)
					cur.Close()
					if len(got) != len(want) {
						t.Fatalf("%s: cursor(%d,%d) yielded %d samples, Query %d", stage, r[0], r[1], len(got), len(want))
					}
					for i := range want {
						if got[i] != want[i] {
							t.Fatalf("%s: cursor(%d,%d)[%d] = %v, Query has %v", stage, r[0], r[1], i, got[i], want[i])
						}
					}
					into, err := db.QueryInto("s", r[0], r[1], make([]float64, 0, 8))
					if err != nil {
						t.Fatalf("%s: QueryInto(%d,%d): %v", stage, r[0], r[1], err)
					}
					for i := range want {
						if into[i] != want[i] {
							t.Fatalf("%s: QueryInto(%d,%d)[%d] = %v, Query has %v", stage, r[0], r[1], i, into[i], want[i])
						}
					}
				}
			}
			check("warm")
			if err := db.Close(); err != nil {
				t.Fatal(err)
			}
			db, err = Open(dir, opt) // cold: every block decodes from disk
			if err != nil {
				t.Fatal(err)
			}
			defer db.Close()
			check("cold")
		})
	}
}

// TestCursorAndQueryEdgeCases pins the boundary semantics shared by
// Query, QueryInto, Cursor, and QueryAgg: clamped bounds, empty ranges,
// and unknown series.
func TestCursorAndQueryEdgeCases(t *testing.T) {
	opt := dbOptions()
	db, err := Open(t.TempDir(), opt)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	total := opt.BlockSize + 40
	xs := sensorData(total, 9)
	if err := db.Append("s", xs...); err != nil {
		t.Fatal(err)
	}

	if _, err := db.Cursor("nope", 0, 10); !errors.Is(err, ErrUnknownSeries) {
		t.Fatalf("Cursor on unknown series: %v", err)
	}
	if _, err := db.QueryAgg("nope", 0, 10, 5, series.AggMean); !errors.Is(err, ErrUnknownSeries) {
		t.Fatalf("QueryAgg on unknown series: %v", err)
	}

	// from < 0 and to > total clamp to the full series.
	got, err := db.Query("s", -100, total+999)
	if err != nil || len(got) != total {
		t.Fatalf("clamped Query: %d samples, err %v", len(got), err)
	}
	cur, err := db.Cursor("s", -100, total+999)
	if err != nil {
		t.Fatal(err)
	}
	if c := collect(t, cur); len(c) != total {
		t.Fatalf("clamped cursor: %d samples", len(c))
	}
	cur.Close()

	// Inverted ranges are caller bugs and error (ErrInvalidRange) instead
	// of returning a silent empty, uniformly across the read surface.
	if _, err := db.Query("s", 50, 20); !errors.Is(err, ErrInvalidRange) {
		t.Fatalf("inverted Query: %v", err)
	}
	if _, err := db.QueryInto("s", 50, 20, nil); !errors.Is(err, ErrInvalidRange) {
		t.Fatalf("inverted QueryInto: %v", err)
	}
	if _, err := db.Cursor("s", 50, 20); !errors.Is(err, ErrInvalidRange) {
		t.Fatalf("inverted Cursor: %v", err)
	}
	if _, err := db.QueryAgg("s", 50, 20, 4, series.AggSum); !errors.Is(err, ErrInvalidRange) {
		t.Fatalf("inverted QueryAgg: %v", err)
	}

	// Empty ranges yield nil without error, matching the legacy Query.
	for _, r := range [][2]int{{10, 10}, {total, total + 5}, {-5, -1}} {
		if got, err := db.Query("s", r[0], r[1]); err != nil || got != nil {
			t.Fatalf("empty Query(%d,%d) = %v, %v", r[0], r[1], got, err)
		}
		cur, err := db.Cursor("s", r[0], r[1])
		if err != nil {
			t.Fatal(err)
		}
		if chunk, ok := cur.Next(); ok {
			t.Fatalf("empty cursor(%d,%d) yielded %d samples", r[0], r[1], len(chunk))
		}
		cur.Close()
		if agg, err := db.QueryAgg("s", r[0], r[1], 4, series.AggSum); err != nil || agg != nil {
			t.Fatalf("empty QueryAgg(%d,%d) = %v, %v", r[0], r[1], agg, err)
		}
	}

	// Close is idempotent and stops iteration.
	cur, err = db.Cursor("s", 0, total)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := cur.Next(); !ok {
		t.Fatal("first Next failed")
	}
	cur.Close()
	cur.Close()
	if _, ok := cur.Next(); ok {
		t.Fatal("Next after Close yielded a chunk")
	}

	// QueryAgg validates its step and aggregate function.
	if _, err := db.QueryAgg("s", 0, total, 0, series.AggMean); err == nil {
		t.Fatal("QueryAgg accepted step 0")
	}
	if _, err := db.QueryAgg("s", 0, total, -3, series.AggMean); err == nil {
		t.Fatal("QueryAgg accepted negative step")
	}
	if _, err := db.QueryAgg("s", 0, total, 8, AggFunc(99)); err == nil {
		t.Fatal("QueryAgg accepted an unknown aggregate")
	}
}

// gatedCodec wraps a codec so the test can hold Encode until released,
// keeping a cut block in the pending set at snapshot time.
type gatedCodec struct {
	codec.Codec
	gate chan struct{} // closed to release encodes
}

func (g *gatedCodec) Encode(xs []float64) ([]byte, error) {
	<-g.gate
	return g.Codec.Encode(xs)
}

// TestCursorSpansDurablePendingAndTail snapshots a range that crosses a
// durable block, a block whose compression is intentionally stalled, and
// the in-memory tail — all at once — and checks the cursor only waits for
// the pending block when iteration reaches it.
func TestCursorSpansDurablePendingAndTail(t *testing.T) {
	g := &gatedCodec{Codec: codec.Gorilla{}, gate: make(chan struct{})}
	opt := dbOptions()
	opt.Codec = g
	opt.Workers = 1
	opt.Shards = 1
	db, err := Open(t.TempDir(), opt)
	if err != nil {
		t.Fatal(err)
	}
	bs := opt.BlockSize
	xs := sensorData(2*bs+100, 3)

	// First block: let it land durably.
	close(g.gate)
	if err := db.Append("s", xs[:bs]...); err != nil {
		t.Fatal(err)
	}
	if err := db.Sync(); err != nil {
		t.Fatal(err)
	}
	// Second block: stall its compression so it stays pending; the rest
	// stays in the tail.
	g.gate = make(chan struct{})
	if err := db.Append("s", xs[bs:]...); err != nil {
		t.Fatal(err)
	}

	cur, err := db.Cursor("s", bs/2, 2*bs+60)
	if err != nil {
		t.Fatal(err)
	}
	if len(cur.snap.segs) != 2 || cur.snap.segs[1].pending == nil {
		t.Fatalf("snapshot: %d segments, pending=%v — want durable+pending", len(cur.snap.segs), cur.snap.segs[1].pending != nil)
	}
	if len(cur.snap.tail) != 60-(0) && len(cur.snap.tail) != 60 {
		t.Fatalf("snapshot tail holds %d samples, want 60", len(cur.snap.tail))
	}

	// The durable chunk arrives without waiting on the stalled block.
	first, ok := cur.Next()
	if !ok || len(first) != bs-bs/2 {
		t.Fatalf("first chunk: ok=%v len=%d, want %d", ok, len(first), bs-bs/2)
	}
	// Release the compression, then drain: pending chunk + tail chunk.
	close(g.gate)
	rest := collect(t, cur)
	cur.Close()
	got := append(append([]float64(nil), first...), rest...)
	want := xs[bs/2 : 2*bs+60]
	if len(got) != len(want) {
		t.Fatalf("got %d samples, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] { // gorilla is lossless: exact replay
			t.Fatalf("sample %d: %v, want %v", i, got[i], want[i])
		}
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
}

// countingCodec wraps a random-access codec and counts what the engine
// decodes: full-block decodes, range-decoded samples, and aggregate
// pushdowns. It reuses the wrapped codec's ID, so a store reopened with it
// routes all decoding through the counters.
type countingCodec struct {
	inner        codec.Codec
	fullDecodes  atomic.Int64
	rangeSamples atomic.Int64
	rangeCalls   atomic.Int64
	aggCalls     atomic.Int64
}

func (c *countingCodec) Name() string { return c.inner.Name() }
func (c *countingCodec) ID() uint8    { return c.inner.ID() }
func (c *countingCodec) Lossy() bool  { return c.inner.Lossy() }
func (c *countingCodec) Encode(xs []float64) ([]byte, error) {
	return c.inner.Encode(xs)
}
func (c *countingCodec) Decode(data []byte, n int) ([]float64, error) {
	c.fullDecodes.Add(1)
	return c.inner.Decode(data, n)
}
func (c *countingCodec) DecodeRange(data []byte, n, lo, hi int, dst []float64) ([]float64, error) {
	c.rangeCalls.Add(1)
	c.rangeSamples.Add(int64(hi - lo))
	return c.inner.(codec.RangeDecoder).DecodeRange(data, n, lo, hi, dst)
}
func (c *countingCodec) DecodeRangeAgg(data []byte, n, lo, hi int) (codec.RangeAgg, error) {
	c.aggCalls.Add(1)
	return c.inner.(codec.AggDecoder).DecodeRangeAgg(data, n, lo, hi)
}
func (c *countingCodec) DecodeWindowAggs(data []byte, n, lo, hi, anchor, step int, aggs []codec.RangeAgg) error {
	c.aggCalls.Add(1)
	return c.inner.(codec.AggDecoder).DecodeWindowAggs(data, n, lo, hi, anchor, step, aggs)
}

// TestColdRangeQueryDecodesOnlyOverlap proves the pushdown acceptance
// criterion: a cold range query touching k of B blocks decodes exactly the
// overlapping samples for a segment codec — edge blocks by range decode,
// fully-covered interior blocks by (cached-path) full decode — never the
// full B-block reconstruction.
func TestColdRangeQueryDecodesOnlyOverlap(t *testing.T) {
	opt := dbOptions()
	opt.Codec = codec.Swing{}
	opt.Workers = -1
	dir := t.TempDir()
	db, err := Open(dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	bs := opt.BlockSize
	const blocks = 4
	if err := db.Append("s", sensorData(blocks*bs, 13)...); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	cc := &countingCodec{inner: codec.Swing{}}
	opt.Codec = cc
	opt.CacheBlocks = -1 // cold every time: decode counts are exact
	db, err = Open(dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	// Partial range inside one block: only hi-lo samples decode.
	if _, err := db.Query("s", 100, 200); err != nil {
		t.Fatal(err)
	}
	if got := cc.rangeSamples.Load(); got != 100 {
		t.Fatalf("decoded %d samples for a 100-sample range", got)
	}
	if got := cc.fullDecodes.Load(); got != 0 {
		t.Fatalf("%d full-block decodes for a sub-block range", got)
	}

	// A range spanning k=3 of B=4 blocks with partial edges: the two edge
	// overlaps range-decode, the fully-covered interior block decodes
	// whole — total decoded samples == the query overlap, and the
	// untouched 4th block contributes nothing.
	cc.rangeSamples.Store(0)
	from, to := bs-50, 2*bs+70
	if _, err := db.Query("s", from, to); err != nil {
		t.Fatal(err)
	}
	edge := cc.rangeSamples.Load()
	full := cc.fullDecodes.Load()
	if edge != 50+70 || full != 1 {
		t.Fatalf("k-block query decoded %d edge samples (want %d) and %d full blocks (want 1)",
			edge, 50+70, full)
	}
	if s := db.Stats(); s.RangeDecodes != 3 {
		t.Fatalf("Stats.RangeDecodes = %d, want 3 (two edges + first query)", s.RangeDecodes)
	}
}

// TestQueryAggPushdownNeverMaterializes proves the aggregate acceptance
// criterion: over a cold PMC/Swing/SimPiece/CAMEO store, QueryAgg answers
// fully-covered blocks through DecodeRangeAgg alone — zero Decode and zero
// DecodeRange calls — and the window values match folding the materialized
// Query output.
func TestQueryAggPushdownNeverMaterializes(t *testing.T) {
	segmentCodecs := map[string]codec.Codec{
		"pmc":      codec.PMC{},
		"swing":    codec.Swing{},
		"simpiece": codec.SimPiece{},
		"cameo":    codec.NewCAMEO(core.Options{Lags: 24, Epsilon: 0.05}),
	}
	for name, inner := range segmentCodecs {
		t.Run(name, func(t *testing.T) {
			opt := dbOptions()
			opt.Codec = inner
			opt.Workers = -1
			dir := t.TempDir()
			db, err := Open(dir, opt)
			if err != nil {
				t.Fatal(err)
			}
			bs := opt.BlockSize
			total := 3 * bs
			if err := db.Append("s", sensorData(total, 21)...); err != nil {
				t.Fatal(err)
			}
			if err := db.Close(); err != nil {
				t.Fatal(err)
			}

			cc := &countingCodec{inner: inner}
			opt.Codec = cc
			opt.CacheBlocks = -1
			db, err = Open(dir, opt)
			if err != nil {
				t.Fatal(err)
			}
			defer db.Close()

			step := 100
			for _, f := range []AggFunc{series.AggMean, series.AggSum, series.AggMax, series.AggMin} {
				cc.fullDecodes.Store(0)
				cc.rangeCalls.Store(0)
				got, err := db.QueryAgg("s", 0, total, step, f)
				if err != nil {
					t.Fatal(err)
				}
				if cc.fullDecodes.Load() != 0 || cc.rangeCalls.Load() != 0 {
					t.Fatalf("%v: QueryAgg materialized samples (%d full decodes, %d range decodes)",
						f, cc.fullDecodes.Load(), cc.rangeCalls.Load())
				}
				if cc.aggCalls.Load() == 0 {
					t.Fatalf("%v: no aggregate pushdown happened", f)
				}
				// Reference: fold the materialized reconstruction.
				dense, err := db.Query("s", 0, total)
				if err != nil {
					t.Fatal(err)
				}
				want := make([]float64, 0, (total+step-1)/step)
				for lo := 0; lo < total; lo += step {
					want = append(want, f.Apply(dense[lo:min(lo+step, total)]))
				}
				if len(got) != len(want) {
					t.Fatalf("%v: %d windows, want %d", f, len(got), len(want))
				}
				for i := range want {
					if math.Abs(got[i]-want[i]) > 1e-9*(math.Abs(want[i])+1) {
						t.Fatalf("%v window %d: %v, want %v", f, i, got[i], want[i])
					}
				}
			}
			if s := db.Stats(); s.AggPushdowns == 0 {
				t.Fatal("Stats.AggPushdowns did not count the pushdowns")
			}
		})
	}
}

// TestQueryAggWindowsAndFallback checks window boundary semantics (partial
// last window, step beyond the range, ranges starting mid-window source)
// and the dense fallback paths: a bit-stream codec (no AggDecoder), warm
// cache, and the in-memory tail.
func TestQueryAggWindowsAndFallback(t *testing.T) {
	opt := dbOptions()
	opt.Codec = codec.Gorilla{} // no native aggregates: everything folds densely
	db, err := Open(t.TempDir(), opt)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	total := opt.BlockSize + 130 // one durable block + tail
	xs := sensorData(total, 31)
	if err := db.Append("s", xs...); err != nil {
		t.Fatal(err)
	}
	if err := db.Sync(); err != nil {
		t.Fatal(err)
	}

	check := func(from, to, step int, f AggFunc) {
		t.Helper()
		got, err := db.QueryAgg("s", from, to, step, f)
		if err != nil {
			t.Fatal(err)
		}
		dense, err := db.Query("s", from, to)
		if err != nil {
			t.Fatal(err)
		}
		var want []float64
		for lo := 0; lo < len(dense); lo += step {
			want = append(want, f.Apply(dense[lo:min(lo+step, len(dense))]))
		}
		if len(got) != len(want) {
			t.Fatalf("QueryAgg(%d,%d,%d): %d windows, want %d", from, to, step, len(got), len(want))
		}
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-9*(math.Abs(want[i])+1) {
				t.Fatalf("QueryAgg(%d,%d,%d) window %d: %v, want %v", from, to, step, i, got[i], want[i])
			}
		}
	}
	check(0, total, 64, series.AggMean)               // partial last window
	check(0, total, total+500, series.AggSum)         // one window covering everything
	check(37, total-13, 50, series.AggMax)            // range not window-aligned
	check(opt.BlockSize-10, total, 7, series.AggMin)  // block edge + tail
	check(opt.BlockSize+5, total, 16, series.AggMean) // tail only
}
