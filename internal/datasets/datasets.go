// Package datasets provides synthetic replicas of the eight public datasets
// of the paper's evaluation (§5.1, Table 1), plus CSV I/O so the pipelines
// can also run on the real data when available.
//
// Substitution note (see DESIGN.md): the real archives are not available
// offline, so each replica is a generator parameterized to reproduce the
// characteristics Table 1 reports — length, seasonal period and lag/window
// configuration, value range, median, dispersion, up/equal/down step
// probabilities (e.g. SolarPower's 75% flat night steps), and the strong
// seasonal ACF the paper's dataset selection demanded. The compression and
// analytics algorithms only interact with values and autocorrelation
// structure, so the who-wins conclusions carry over.
package datasets

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/series"
)

// Spec describes one dataset replica: its generation recipe and the
// statistic configuration (lags, aggregation) the paper uses for it.
type Spec struct {
	// Name is the paper's dataset name.
	Name string
	// Length is the paper's reported series length.
	Length int
	// Lags is the ACF lag count used for this dataset ("L" or "L on kappa").
	Lags int
	// AggWindow is the tumbling-window size kappa for group-2 datasets
	// (0 for group 1, which preserves the ACF directly).
	AggWindow int
	// AggFunc is the aggregation function for AggWindow.
	AggFunc series.AggFunc
	// Period is the seasonal period in raw samples.
	Period int

	gen func(n int, rng *rand.Rand) []float64
}

// Group2 reports whether the spec preserves the ACF on window aggregates.
func (s Spec) Group2() bool { return s.AggWindow >= 2 }

// Generate produces the full-length replica for the given seed.
func (s Spec) Generate(seed int64) []float64 { return s.GenerateN(s.Length, seed) }

// GenerateN produces an n-point replica (experiments scale lengths down to
// keep runtimes reasonable; the generators are length-invariant).
func (s Spec) GenerateN(n int, seed int64) []float64 {
	return s.gen(n, rand.New(rand.NewSource(seed)))
}

// ar1 produces zero-mean AR(1) noise with coefficient phi and innovation
// standard deviation sd, giving the replicas realistic ACF decay.
func ar1(n int, phi, sd float64, rng *rand.Rand) []float64 {
	out := make([]float64, n)
	v := 0.0
	for i := range out {
		v = phi*v + sd*rng.NormFloat64()
		out[i] = v
	}
	return out
}

// seasonalBase sums sinusoidal harmonics of the given period.
func seasonalBase(i int, period float64, amps []float64, phase float64) float64 {
	var v float64
	for h, a := range amps {
		v += a * math.Sin(2*math.Pi*float64(h+1)*float64(i)/period+phase)
	}
	return v
}

// Replicas returns the eight dataset replicas in the paper's Table 1 order.
func Replicas() []Spec {
	return []Spec{
		ElecPower(), MinTemp(), Pedestrian(), UKElecDem(),
		AUSElecDem(), Humidity(), IRBioTemp(), SolarPower(),
	}
}

// ByName looks a replica up by its paper name (case-sensitive).
func ByName(name string) (Spec, error) {
	for _, s := range Replicas() {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("datasets: unknown dataset %q", name)
}

// ElecPower replicates the household electric power consumption dataset
// [40]: 15-minute sampling, strongly right-skewed low values (median 0.29,
// range 5.7), daily cycle captured with 48 lags.
func ElecPower() Spec {
	period := 48
	return Spec{
		Name: "ElecPower", Length: 2977, Lags: 48, Period: period,
		gen: func(n int, rng *rand.Rand) []float64 {
			noise := ar1(n, 0.9, 0.09, rng)
			out := make([]float64, n)
			spike := 0.0
			for i := range out {
				// Low base load with evening peaks; exponentiate to skew.
				s := seasonalBase(i, float64(period), []float64{0.8, 0.35}, 0)
				v := 0.12*math.Exp(1.1*(s+noise[i])) + 0.08
				// Occasional multi-sample appliance spikes (decay keeps
				// consecutive values correlated, matching ACF1 ~ 0.77).
				if rng.Float64() < 0.01 {
					spike = 1.5 + 2.5*rng.Float64()
				}
				v += spike
				spike *= 0.6
				if v > 5.8 {
					v = 5.8
				}
				out[i] = v
			}
			return out
		},
	}
}

// MinTemp replicates daily minimum temperatures in Melbourne [75]: yearly
// seasonality over 10 years, range ~26, median ~11.
func MinTemp() Spec {
	period := 365
	return Spec{
		Name: "MinTemp", Length: 3652, Lags: 365, Period: period,
		gen: func(n int, rng *rand.Rand) []float64 {
			noise := ar1(n, 0.6, 2.2, rng)
			out := make([]float64, n)
			for i := range out {
				out[i] = 11.2 + 6.5*math.Cos(2*math.Pi*float64(i)/float64(period)+math.Pi) + noise[i]
			}
			return out
		},
	}
}

// Pedestrian replicates hourly pedestrian counts [37]: non-negative,
// zero-inflated at night, large daytime peaks (range ~5600, median ~400),
// daily cycle of 24.
func Pedestrian() Spec {
	period := 24
	return Spec{
		Name: "Pedestrian", Length: 8766, Lags: 24, Period: period,
		gen: func(n int, rng *rand.Rand) []float64 {
			noise := ar1(n, 0.5, 0.35, rng)
			out := make([]float64, n)
			for i := range out {
				hour := i % period
				// Day/night profile with morning and evening peaks.
				profile := math.Exp(-math.Pow(float64(hour)-8.5, 2)/8) +
					1.3*math.Exp(-math.Pow(float64(hour)-17.5, 2)/10)
				weekendDamp := 1.0
				if day := (i / 24) % 7; day >= 5 {
					weekendDamp = 0.55
				}
				v := 2400 * profile * weekendDamp * math.Exp(noise[i])
				if hour <= 4 {
					v *= 0.04 // deep night
				}
				out[i] = math.Round(math.Max(0, v))
			}
			return out
		},
	}
}

// UKElecDem replicates Great Britain's half-hourly national demand [32]:
// very smooth (ACF1 0.988), daily period 48, high level around 27,000 MW.
func UKElecDem() Spec {
	period := 48
	return Spec{
		Name: "UKElecDem", Length: 17520, Lags: 48, Period: period,
		gen: func(n int, rng *rand.Rand) []float64 {
			noise := ar1(n, 0.95, 350, rng)
			out := make([]float64, n)
			for i := range out {
				daily := seasonalBase(i, float64(period), []float64{5200, 1600, 600}, -0.5)
				yearly := 2600 * math.Cos(2*math.Pi*float64(i)/(float64(period)*365))
				out[i] = 27500 + daily + yearly + noise[i]
			}
			return out
		},
	}
}

// AUSElecDem replicates Victoria's half-hourly demand [37]: group 2 —
// aggregate 48 half-hours into days, preserve 7 lags (weekly cycle).
func AUSElecDem() Spec {
	period := 48 * 7
	return Spec{
		Name: "AUSElecDem", Length: 230736, Lags: 7, AggWindow: 48,
		AggFunc: series.AggMean, Period: period,
		gen: func(n int, rng *rand.Rand) []float64 {
			noise := ar1(n, 0.9, 160, rng)
			// Persistent weather-driven day-to-day level (AR over days):
			// this is what puts the reported ACF1 ~ 0.76 on the daily means.
			days := n/48 + 2
			dayLevel := ar1(days, 0.85, 320, rng)
			out := make([]float64, n)
			for i := range out {
				daily := seasonalBase(i, 48, []float64{900, 350}, -0.7)
				day := i / 48
				weekday := 1.0
				if day%7 >= 5 {
					weekday = 0.92 // weekend dip drives the 7-lag cycle
				}
				annual := 550 * math.Cos(2*math.Pi*float64(i)/(48*365.25))
				out[i] = (6800+daily+dayLevel[day])*weekday + annual + noise[i]
			}
			return out
		},
	}
}

// Humidity replicates NEON relative humidity [73]: group 2 — aggregate 60
// one-minute samples into hours, preserve 24 lags; smooth, high median,
// capped near saturation.
func Humidity() Spec {
	period := 1440
	return Spec{
		Name: "Humidity", Length: 397440, Lags: 24, AggWindow: 60,
		AggFunc: series.AggMean, Period: period,
		gen: func(n int, rng *rand.Rand) []float64 {
			noise := ar1(n, 0.995, 0.35, rng)
			out := make([]float64, n)
			for i := range out {
				daily := -14 * math.Sin(2*math.Pi*(float64(i)/float64(period)-0.2))
				v := 78 + daily + noise[i]
				if v > 99.9 {
					v = 99.9
				}
				if v < 13 {
					v = 13
				}
				out[i] = v
			}
			return out
		},
	}
}

// IRBioTemp replicates NEON infrared biological temperature [72]: group 2 —
// hourly aggregation of minutes, 24 lags, strong diurnal swing plus a slow
// annual drift.
func IRBioTemp() Spec {
	period := 1440
	return Spec{
		Name: "IRBioTemp", Length: 878400, Lags: 24, AggWindow: 60,
		AggFunc: series.AggMean, Period: period,
		gen: func(n int, rng *rand.Rand) []float64 {
			noise := ar1(n, 0.99, 0.22, rng)
			out := make([]float64, n)
			for i := range out {
				daily := 9 * math.Sin(2*math.Pi*(float64(i)/float64(period)-0.3))
				annual := 11 * math.Sin(2*math.Pi*float64(i)/(float64(period)*365.25))
				out[i] = 22.5 + daily + annual + noise[i]
			}
			return out
		},
	}
}

// SolarPower replicates 30-second solar production [37]: group 2 — aggregate
// 120 samples into hours, 24 lags. Zero at night (the paper reports 75%
// equal steps — long flat zero runs), bell-shaped during the day.
func SolarPower() Spec {
	period := 2880 // one day at 30-second sampling
	return Spec{
		Name: "SolarPower", Length: 986297, Lags: 24, AggWindow: 120,
		AggFunc: series.AggMean, Period: period,
		gen: func(n int, rng *rand.Rand) []float64 {
			noise := ar1(n, 0.97, 2.0, rng)
			out := make([]float64, n)
			for i := range out {
				frac := float64(i%period) / float64(period) // 0..1 through the day
				// Daylight between 0.25 and 0.75 of the cycle.
				if frac < 0.25 || frac > 0.75 {
					out[i] = 0
					continue
				}
				bell := math.Sin(math.Pi * (frac - 0.25) / 0.5)
				cloud := 1 + noise[i]/60
				if cloud < 0.05 {
					cloud = 0.05
				}
				v := 110 * bell * bell * cloud
				if v < 0 {
					v = 0
				}
				if v > 116.5 {
					v = 116.5
				}
				out[i] = v
			}
			return out
		},
	}
}
