package datasets

import (
	"bytes"
	"math"
	"path/filepath"
	"testing"

	"repro/internal/acf"
	"repro/internal/series"
	"repro/internal/stats"
)

func TestReplicasCountAndNames(t *testing.T) {
	specs := Replicas()
	if len(specs) != 8 {
		t.Fatalf("got %d replicas, want 8", len(specs))
	}
	want := []string{"ElecPower", "MinTemp", "Pedestrian", "UKElecDem",
		"AUSElecDem", "Humidity", "IRBioTemp", "SolarPower"}
	for i, s := range specs {
		if s.Name != want[i] {
			t.Errorf("replica %d = %q, want %q", i, s.Name, want[i])
		}
	}
}

func TestByName(t *testing.T) {
	s, err := ByName("Pedestrian")
	if err != nil || s.Name != "Pedestrian" {
		t.Fatalf("ByName failed: %v", err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("expected error for unknown name")
	}
}

func TestLengthsMatchTable1(t *testing.T) {
	want := map[string]int{
		"ElecPower": 2977, "MinTemp": 3652, "Pedestrian": 8766,
		"UKElecDem": 17520, "AUSElecDem": 230736, "Humidity": 397440,
		"IRBioTemp": 878400, "SolarPower": 986297,
	}
	for _, s := range Replicas() {
		if s.Length != want[s.Name] {
			t.Errorf("%s length %d, want %d", s.Name, s.Length, want[s.Name])
		}
	}
}

func TestGroupAssignment(t *testing.T) {
	group2 := map[string]bool{"AUSElecDem": true, "Humidity": true, "IRBioTemp": true, "SolarPower": true}
	for _, s := range Replicas() {
		if s.Group2() != group2[s.Name] {
			t.Errorf("%s Group2 = %v", s.Name, s.Group2())
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	s := Pedestrian()
	a := s.GenerateN(500, 7)
	b := s.GenerateN(500, 7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("generation not deterministic for equal seeds")
		}
	}
	c := s.GenerateN(500, 8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical data")
	}
}

// TestReplicaCharacteristics checks each replica against the Table 1
// shape constraints that matter to the algorithms: seasonal ACF at the
// configured lag structure, value ranges, and sign constraints.
func TestReplicaCharacteristics(t *testing.T) {
	for _, s := range Replicas() {
		n := 20 * s.Period
		if n > 60000 {
			n = 60000
		}
		if n < 4*s.Period {
			n = 4 * s.Period
		}
		xs := s.GenerateN(n, 1)

		// Strong lag-1 autocorrelation on the (possibly aggregated) series,
		// as all Table 1 datasets have ACF1 >= 0.76.
		data := xs
		if s.Group2() {
			data = series.Aggregate(xs, s.AggWindow, s.AggFunc)
		}
		a := acf.ACF(data, 2)
		if a[0] < 0.5 {
			t.Errorf("%s: aggregated ACF1 = %v, want >= 0.5", s.Name, a[0])
		}

		switch s.Name {
		case "Pedestrian", "SolarPower":
			if stats.Min(xs) < 0 {
				t.Errorf("%s: negative values", s.Name)
			}
		case "Humidity":
			if stats.Max(xs) > 100 {
				t.Errorf("Humidity above 100%%: %v", stats.Max(xs))
			}
		case "UKElecDem":
			if stats.Min(xs) < 10000 || stats.Max(xs) > 50000 {
				t.Errorf("UKElecDem out of plausible range: [%v, %v]", stats.Min(xs), stats.Max(xs))
			}
		}
	}
}

func TestSolarPowerZeroInflation(t *testing.T) {
	s := SolarPower()
	xs := s.GenerateN(4*s.Period, 3)
	zero := 0
	for _, v := range xs {
		if v == 0 {
			zero++
		}
	}
	frac := float64(zero) / float64(len(xs))
	// Table 1 reports 75% equal steps (night zeros): expect roughly half
	// the cycle at zero with our 0.25-0.75 daylight window.
	if frac < 0.35 || frac > 0.65 {
		t.Fatalf("SolarPower zero fraction = %v, want ~0.5", frac)
	}
}

func TestSeasonalACFPeakAtPeriod(t *testing.T) {
	// The replicas must show an ACF peak at the configured seasonal lag on
	// the aggregated series — that is the property the paper's lag
	// selection relies on.
	for _, s := range []Spec{Pedestrian(), UKElecDem()} {
		xs := s.GenerateN(40*s.Period, 2)
		a := acf.ACF(xs, s.Period)
		peak := a[s.Period-1]
		mid := a[s.Period/2-1]
		if peak < mid {
			t.Errorf("%s: ACF at period %v < at half period %v", s.Name, peak, mid)
		}
	}
}

func TestCSVRoundtrip(t *testing.T) {
	xs := []float64{1.5, -2.25, 3.125, 0, 1e-9}
	dir := t.TempDir()
	path := filepath.Join(dir, "test.csv")
	if err := SaveCSV(path, "value", xs); err != nil {
		t.Fatal(err)
	}
	got, err := LoadCSV(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(xs) {
		t.Fatalf("len = %d", len(got))
	}
	for i := range xs {
		if got[i] != xs[i] {
			t.Fatalf("roundtrip[%d] = %v, want %v", i, got[i], xs[i])
		}
	}
}

func TestReadCSVHeaderAndErrors(t *testing.T) {
	data := "value\n1.5\n2.5\n"
	got, err := ReadCSV(bytes.NewBufferString(data), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != 1.5 {
		t.Fatalf("got %v", got)
	}
	if _, err := ReadCSV(bytes.NewBufferString("1,2\n3\n"), 1); err == nil {
		t.Fatal("expected error for missing column")
	}
	if _, err := ReadCSV(bytes.NewBufferString("1\nbad\n"), 0); err == nil {
		t.Fatal("expected error for non-numeric body row")
	}
}

func TestAnomalySuiteGroundTruth(t *testing.T) {
	suite := AnomalySuite(10, 2000, 1)
	if len(suite) != 10 {
		t.Fatalf("suite size = %d", len(suite))
	}
	for i, c := range suite {
		if len(c.Data) != 2000 {
			t.Fatalf("case %d length %d", i, len(c.Data))
		}
		if c.Start < 1000 || c.End > 2000 || c.Start >= c.End {
			t.Fatalf("case %d anomaly span [%d, %d) invalid (must be in second half)", i, c.Start, c.End)
		}
		for _, v := range c.Data {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("case %d contains non-finite values", i)
			}
		}
	}
}

func TestAnomalySuiteCoversAllKinds(t *testing.T) {
	suite := AnomalySuite(int(numAnomalyKinds), 1500, 2)
	seen := map[AnomalyKind]bool{}
	for _, c := range suite {
		seen[c.Kind] = true
	}
	if len(seen) != int(numAnomalyKinds) {
		t.Fatalf("only %d kinds generated", len(seen))
	}
}

func TestAnomalyIsDetectableInPrinciple(t *testing.T) {
	// The planted spike must actually perturb the series: compare the
	// anomalous window's deviation from a clean seed regeneration.
	suite := AnomalySuite(5, 3000, 3)
	for _, c := range suite {
		if c.Kind == AnomalyFlatline || c.Kind == AnomalyFrequencyShift {
			continue // these change shape, not amplitude
		}
		var inside, outside float64
		cnt := 0
		for i := c.Start; i < c.End; i++ {
			inside += math.Abs(c.Data[i])
			cnt++
		}
		inside /= float64(cnt)
		for i := 0; i < c.Start-100; i++ {
			outside += math.Abs(c.Data[i])
		}
		outside /= float64(c.Start - 100)
		if c.Kind == AnomalySpike && inside < outside {
			t.Fatalf("%s: anomaly not visible (inside %v vs outside %v)", c.Name, inside, outside)
		}
	}
}
