package datasets

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"strconv"
)

// LoadCSV reads a numeric column (0-based index) from a CSV file. A first
// row that does not parse as a number is treated as a header and skipped;
// later unparsable rows are an error.
func LoadCSV(path string, column int) ([]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadCSV(f, column)
}

// ReadCSV is LoadCSV over any reader.
func ReadCSV(r io.Reader, column int) ([]float64, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	var out []float64
	row := 0
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		row++
		if column >= len(rec) {
			return nil, fmt.Errorf("datasets: row %d has %d columns, need %d", row, len(rec), column+1)
		}
		v, err := strconv.ParseFloat(rec[column], 64)
		if err != nil {
			if row == 1 {
				continue // header
			}
			return nil, fmt.Errorf("datasets: row %d column %d: %w", row, column, err)
		}
		out = append(out, v)
	}
	return out, nil
}

// SaveCSV writes values as a single-column CSV with the given header.
func SaveCSV(path, header string, xs []float64) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return WriteCSV(f, header, xs)
}

// WriteCSV is SaveCSV over any writer.
func WriteCSV(w io.Writer, header string, xs []float64) error {
	cw := csv.NewWriter(w)
	if header != "" {
		if err := cw.Write([]string{header}); err != nil {
			return err
		}
	}
	for _, v := range xs {
		if err := cw.Write([]string{strconv.FormatFloat(v, 'g', -1, 64)}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
