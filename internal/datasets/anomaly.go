package datasets

import (
	"math"
	"math/rand"
)

// AnomalyKind enumerates the planted anomaly types of the UCR-style suite.
type AnomalyKind int

// Planted anomaly types, mirroring the discord classes of the UCR anomaly
// archive [93] that the Matrix Profile detects.
const (
	AnomalySpike AnomalyKind = iota
	AnomalyDip
	AnomalyNoiseBurst
	AnomalyFrequencyShift
	AnomalyFlatline
	numAnomalyKinds
)

// String names the anomaly kind.
func (k AnomalyKind) String() string {
	switch k {
	case AnomalySpike:
		return "spike"
	case AnomalyDip:
		return "dip"
	case AnomalyNoiseBurst:
		return "noise-burst"
	case AnomalyFrequencyShift:
		return "frequency-shift"
	case AnomalyFlatline:
		return "flatline"
	default:
		return "unknown"
	}
}

// AnomalyCase is one series of the suite with its ground-truth anomaly span.
type AnomalyCase struct {
	Name  string
	Kind  AnomalyKind
	Data  []float64
	Start int // inclusive anomaly start
	End   int // exclusive anomaly end
}

// AnomalySuite generates a UCR-style benchmark: num seasonal series of the
// given length, each with exactly one planted anomaly in the second half
// (the UCR archive convention: the first half is the anomaly-free training
// prefix).
func AnomalySuite(num, length int, seed int64) []AnomalyCase {
	rng := rand.New(rand.NewSource(seed))
	out := make([]AnomalyCase, 0, num)
	for c := 0; c < num; c++ {
		kind := AnomalyKind(c % int(numAnomalyKinds))
		period := 40 + rng.Intn(80)
		phase := rng.Float64() * 2 * math.Pi
		amp := 1 + rng.Float64()*2
		noiseSD := 0.05 + rng.Float64()*0.15
		data := make([]float64, length)
		for i := range data {
			data[i] = amp*math.Sin(2*math.Pi*float64(i)/float64(period)+phase) +
				0.4*amp*math.Sin(4*math.Pi*float64(i)/float64(period)) +
				noiseSD*rng.NormFloat64()
		}
		width := period/2 + rng.Intn(period)
		start := length/2 + rng.Intn(length/2-width-1)
		end := start + width
		switch kind {
		case AnomalySpike:
			for i := start; i < end; i++ {
				data[i] += 3 * amp * math.Sin(math.Pi*float64(i-start)/float64(width))
			}
		case AnomalyDip:
			for i := start; i < end; i++ {
				data[i] -= 3 * amp * math.Sin(math.Pi*float64(i-start)/float64(width))
			}
		case AnomalyNoiseBurst:
			for i := start; i < end; i++ {
				data[i] += amp * rng.NormFloat64()
			}
		case AnomalyFrequencyShift:
			for i := start; i < end; i++ {
				data[i] = amp*math.Sin(2*math.Pi*3.1*float64(i)/float64(period)+phase) +
					noiseSD*rng.NormFloat64()
			}
		case AnomalyFlatline:
			level := data[start]
			for i := start; i < end; i++ {
				data[i] = level + 0.01*noiseSD*rng.NormFloat64()
			}
		}
		out = append(out, AnomalyCase{
			Name:  kind.String(),
			Kind:  kind,
			Data:  data,
			Start: start,
			End:   end,
		})
	}
	return out
}
