package stats

import (
	"math"
	"sort"
)

// Min returns the minimum of xs, or NaN for empty input.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs, or NaN for empty input.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

// Mean returns the arithmetic mean of xs, or NaN for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	return Sum(xs) / float64(len(xs))
}

// Variance returns the population variance of xs (divisor n), matching the
// convention used by the ACF estimator, or NaN for empty input.
func Variance(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// Std returns the population standard deviation of xs.
func Std(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Median returns the median of xs, or NaN for empty input.
func Median(xs []float64) float64 {
	return Quantile(xs, 0.5)
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of xs using linear
// interpolation between order statistics, or NaN for empty input.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 || q < 0 || q > 1 {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Description summarizes a series with the statistics reported in the
// paper's Table 1.
type Description struct {
	Length    int
	Min       float64
	Max       float64
	Range     float64
	Median    float64
	Std       float64
	PUp       float64 // probability that x[i] > x[i-1]
	PEq       float64 // probability that x[i] == x[i-1]
	PDown     float64 // probability that x[i] < x[i-1]
	MeanDelta float64 // mean of consecutive differences
}

// Describe computes the Table 1 summary statistics for xs.
func Describe(xs []float64) Description {
	d := Description{Length: len(xs)}
	if len(xs) == 0 {
		d.Min, d.Max, d.Range, d.Median, d.Std, d.MeanDelta = math.NaN(), math.NaN(), math.NaN(), math.NaN(), math.NaN(), math.NaN()
		return d
	}
	d.Min = Min(xs)
	d.Max = Max(xs)
	d.Range = d.Max - d.Min
	d.Median = Median(xs)
	d.Std = Std(xs)
	if len(xs) < 2 {
		return d
	}
	var up, eq, down int
	var deltaSum float64
	for i := 1; i < len(xs); i++ {
		delta := xs[i] - xs[i-1]
		deltaSum += delta
		switch {
		case delta > 0:
			up++
		case delta < 0:
			down++
		default:
			eq++
		}
	}
	steps := float64(len(xs) - 1)
	d.PUp = float64(up) / steps
	d.PEq = float64(eq) / steps
	d.PDown = float64(down) / steps
	d.MeanDelta = deltaSum / steps
	return d
}
