// Package stats provides the quality measures, descriptive statistics, and
// value transforms the CAMEO framework depends on (paper §2.3, §5.1, §5.8).
//
// All measures operate on plain []float64 slices. Pairwise measures require
// both slices to have the same length and at least one element; they return
// NaN on malformed input rather than panicking so they can be used safely in
// exploratory sweeps.
package stats

import "math"

// Measure identifies a pairwise deviation measure D(a, b).
type Measure int

// Supported deviation measures (paper §2.3 and EXP1 in §5.8).
const (
	MeasureMAE Measure = iota
	MeasureMSE
	MeasureRMSE
	MeasureNRMSE
	MeasureMAPE
	MeasureSMAPE
	MeasureChebyshev
)

// String returns the conventional abbreviation of the measure.
func (m Measure) String() string {
	switch m {
	case MeasureMAE:
		return "MAE"
	case MeasureMSE:
		return "MSE"
	case MeasureRMSE:
		return "RMSE"
	case MeasureNRMSE:
		return "NRMSE"
	case MeasureMAPE:
		return "MAPE"
	case MeasureSMAPE:
		return "mSMAPE"
	case MeasureChebyshev:
		return "CHEB"
	default:
		return "unknown"
	}
}

// Eval computes the measure between a and b.
func (m Measure) Eval(a, b []float64) float64 {
	switch m {
	case MeasureMAE:
		return MAE(a, b)
	case MeasureMSE:
		return MSE(a, b)
	case MeasureRMSE:
		return RMSE(a, b)
	case MeasureNRMSE:
		return NRMSE(a, b)
	case MeasureMAPE:
		return MAPE(a, b)
	case MeasureSMAPE:
		return MSMAPE(a, b)
	case MeasureChebyshev:
		return Chebyshev(a, b)
	default:
		return math.NaN()
	}
}

func pairOK(a, b []float64) bool { return len(a) == len(b) && len(a) > 0 }

// MAE returns the mean absolute error between a and b.
func MAE(a, b []float64) float64 {
	if !pairOK(a, b) {
		return math.NaN()
	}
	var s float64
	for i := range a {
		s += math.Abs(a[i] - b[i])
	}
	return s / float64(len(a))
}

// MSE returns the mean squared error between a and b.
func MSE(a, b []float64) float64 {
	if !pairOK(a, b) {
		return math.NaN()
	}
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s / float64(len(a))
}

// RMSE returns the root mean squared error between a and b.
func RMSE(a, b []float64) float64 { return math.Sqrt(MSE(a, b)) }

// NRMSE returns the RMSE normalized by the value range of a (the reference
// series), as defined in paper §2.3. If a is constant, NRMSE returns 0 when
// the RMSE is 0 and +Inf otherwise.
func NRMSE(a, b []float64) float64 {
	if !pairOK(a, b) {
		return math.NaN()
	}
	rmse := RMSE(a, b)
	lo, hi := Min(a), Max(a)
	if hi == lo {
		if rmse == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return rmse / (hi - lo)
}

// MAPE returns the mean absolute percentage error of b against reference a,
// skipping reference zeros (which make the classical MAPE undefined).
func MAPE(a, b []float64) float64 {
	if !pairOK(a, b) {
		return math.NaN()
	}
	var s float64
	n := 0
	for i := range a {
		if a[i] == 0 {
			continue
		}
		s += math.Abs((a[i] - b[i]) / a[i])
		n++
	}
	if n == 0 {
		return math.NaN()
	}
	return s / float64(n)
}

// MSMAPE returns the Modified Symmetric Mean Absolute Percentage Error
// (paper §2.3): the symmetric APE with a running-dispersion stabilizer S_i in
// the denominator, which keeps the measure finite around zero values.
func MSMAPE(a, b []float64) float64 {
	if !pairOK(a, b) {
		return math.NaN()
	}
	var (
		sum     float64
		prevSum float64 // sum of a[0..i-1]
		absDev  float64 // sum of |a[k] - mean(a[0..i-2])| for k < i
	)
	for i := range a {
		si := 0.0
		if i >= 1 {
			si = absDev / float64(i)
		}
		den := math.Abs(a[i]+b[i])/2 + si
		if den != 0 {
			sum += math.Abs(a[i]-b[i]) / den
		}
		// Maintain S for the next iteration: mean of first i elements and
		// mean absolute deviation of a[0..i] around the mean of a[0..i-1].
		if i >= 1 {
			mean := prevSum / float64(i)
			absDev += math.Abs(a[i] - mean)
		}
		prevSum += a[i]
	}
	return sum / float64(len(a))
}

// Chebyshev returns the L-infinity distance max_i |a_i - b_i|.
func Chebyshev(a, b []float64) float64 {
	if !pairOK(a, b) {
		return math.NaN()
	}
	var m float64
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

// PSNR returns the peak signal-to-noise ratio in dB of b against reference a,
// using the value range of a as peak. Identical series yield +Inf.
func PSNR(a, b []float64) float64 {
	if !pairOK(a, b) {
		return math.NaN()
	}
	mse := MSE(a, b)
	if mse == 0 {
		return math.Inf(1)
	}
	peak := Max(a) - Min(a)
	if peak == 0 {
		return math.Inf(-1)
	}
	return 10 * math.Log10(peak*peak/mse)
}

// Pearson returns the Pearson correlation coefficient between a and b.
// It returns NaN when either series has zero variance.
func Pearson(a, b []float64) float64 {
	if !pairOK(a, b) {
		return math.NaN()
	}
	ma, mb := Mean(a), Mean(b)
	var sab, saa, sbb float64
	for i := range a {
		da, db := a[i]-ma, b[i]-mb
		sab += da * db
		saa += da * da
		sbb += db * db
	}
	if saa == 0 || sbb == 0 {
		return math.NaN()
	}
	return sab / math.Sqrt(saa*sbb)
}
