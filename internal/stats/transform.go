package stats

import (
	"errors"
	"math"
)

// ErrNonPositive is returned by Box-Cox transforms on inputs that are not
// strictly positive (the transform is only defined for x > 0).
var ErrNonPositive = errors.New("stats: box-cox requires strictly positive data")

// BoxCox applies the Box-Cox power transform with parameter lambda:
//
//	y = (x^lambda - 1) / lambda   (lambda != 0)
//	y = ln(x)                     (lambda == 0)
//
// The input must be strictly positive.
func BoxCox(xs []float64, lambda float64) ([]float64, error) {
	out := make([]float64, len(xs))
	for i, x := range xs {
		if x <= 0 {
			return nil, ErrNonPositive
		}
		if lambda == 0 {
			out[i] = math.Log(x)
		} else {
			out[i] = (math.Pow(x, lambda) - 1) / lambda
		}
	}
	return out, nil
}

// BoxCoxInverse inverts BoxCox with the same lambda. Values that would map
// outside the transform's domain are clamped to the domain boundary.
func BoxCoxInverse(ys []float64, lambda float64) []float64 {
	out := make([]float64, len(ys))
	for i, y := range ys {
		if lambda == 0 {
			out[i] = math.Exp(y)
			continue
		}
		v := lambda*y + 1
		if v < 0 {
			v = 0
		}
		out[i] = math.Pow(v, 1/lambda)
	}
	return out
}

// GuerreroLambda picks a Box-Cox lambda from a small candidate grid using
// Guerrero's method: over tumbling seasonal blocks it minimizes the
// coefficient of variation of std_block / mean_block^(1-lambda), which is
// constant exactly when the chosen lambda stabilizes the variance (paper
// EXP1 preprocessing). Falls back to 1 (identity) for short or non-positive
// input.
func GuerreroLambda(xs []float64, period int) float64 {
	if period < 2 || len(xs) < 2*period {
		return 1
	}
	for _, x := range xs {
		if x <= 0 {
			return 1 // transform undefined; fall back to identity
		}
	}
	candidates := []float64{-0.5, 0, 0.25, 0.5, 0.75, 1}
	best, bestCV := 1.0, math.Inf(1)
	for _, lam := range candidates {
		cv := guerreroCV(xs, period, lam)
		if !math.IsNaN(cv) && cv < bestCV {
			best, bestCV = lam, cv
		}
	}
	return best
}

// guerreroCV returns the coefficient of variation of the per-block ratios
// std_block / mean_block^(1-lambda) over tumbling blocks of length period.
func guerreroCV(xs []float64, period int, lambda float64) float64 {
	var ratios []float64
	for i := 0; i+period <= len(xs); i += period {
		block := xs[i : i+period]
		m := Mean(block)
		if m <= 0 {
			continue
		}
		ratios = append(ratios, Std(block)/math.Pow(m, 1-lambda))
	}
	if len(ratios) < 2 {
		return math.NaN()
	}
	m := Mean(ratios)
	if m == 0 {
		return math.NaN()
	}
	return Std(ratios) / m
}

// Standardize returns (xs - mean) / std along with the mean and std used.
// A zero-variance series is returned centered but unscaled (std reported 1).
func Standardize(xs []float64) (out []float64, mean, std float64) {
	mean = Mean(xs)
	std = Std(xs)
	if std == 0 || math.IsNaN(std) {
		std = 1
	}
	out = make([]float64, len(xs))
	for i, x := range xs {
		out[i] = (x - mean) / std
	}
	return out, mean, std
}

// Destandardize inverts Standardize given the recorded mean and std.
func Destandardize(ys []float64, mean, std float64) []float64 {
	out := make([]float64, len(ys))
	for i, y := range ys {
		out[i] = y*std + mean
	}
	return out
}
